#!/usr/bin/env python3
"""Markdown link checker for the repo docs (stdlib only, used in CI).

Checks, for every markdown file given on the command line:
  * relative links point at files/directories that exist
    (``[text](docs/WORKLOADS.md)``, ``[text](../src/net/pcap.hpp)``)
  * intra-file anchors (``[text](#building-and-testing)``) match a
    heading in the same file, using GitHub's slug rules (lowercased,
    punctuation stripped, spaces to dashes)
  * cross-file anchors (``[text](docs/X.md#section)``) match a heading
    in the target file

External links (http/https/mailto) are not fetched — CI stays
network-independent; they are only checked for obvious emptiness.

Exit status: 0 when every link resolves, 1 otherwise (broken links are
listed on stderr).
"""

import functools
import re
import sys
from pathlib import Path

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must exist too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markdown emphasis/code, lowercase,
    drop punctuation, spaces/dashes collapse to single dashes."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def headings_of(path: Path) -> set[str]:
    body = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(h) for h in HEADING_RE.findall(body)}


def check_file(path: Path) -> list[str]:
    errors = []
    body = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(body):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in headings_of(path):
                errors.append(f"{path}: broken anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in headings_of(resolved):
                errors.append(f"{path}: broken anchor {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path))
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"{len(argv) - 1} files, all links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
