#!/usr/bin/env python3
"""Diff Google-Benchmark JSON artifacts against BENCH_baseline.json.

Fails (exit 1) when a headline counter regresses by more than the
threshold (default 15%) against the committed baseline snapshot.
Stdlib-only, like tools/check_links.py.

    python3 tools/bench_compare.py --baseline BENCH_baseline.json \
        bench_datapath.json bench_crypto.json bench_sharding.json \
        bench_runtime.json

Each artifact is a plain `--benchmark_out_format=json` file; the suite
key is the file stem (bench_datapath.json -> "bench_datapath"), which is
also how the baseline file nests its snapshots.

What is compared
----------------
Headline benchmarks only (the table below): `items_per_second` of each,
current >= baseline * (1 - threshold). Two machine-independent gate
kinds ride along for suites that define them: counter ceilings
(COUNTER_CEILINGS — e.g. bench_sim's burst delivery must stay at or
under 2 engine events per packet, an absolute structural bound) and
same-run speedups (SPEEDUPS — e.g. burst-mode Fig. 1 replay must beat
per-packet mode by the stated factor within one artifact, so hardware
cancels out; the floor gets the same leniency threshold as the
baseline comparison). Absolute numbers are hardware-
dependent, so regenerate the baseline when the reference machine
changes; the committed snapshot intentionally comes from a slow box so
faster CI runners compare against a lenient floor and the check catches
*structural* regressions (an accidentally serialized batch path, a
disabled backend, a runtime that stopped scaling), not machine noise.

A headline entry that is missing, errored (Google Benchmark's
SkipWithError leaves error_occurred=true and exits 0), or reports a
zero rate is a FAILURE, not a skip — those are exactly the silent
breakages the gate exists to catch. The one legitimate skip: thread-
scaling entries where the *current* run's context.num_cpus is below
what the row needs (N workers for BM_Runtime*/N, Q+M threads for
BM_RuntimeForwardMQ/Q/M, 2Q+1 for BM_UdpIngest/Q, 2Q+2 for
BM_UdpAppliance/Q — see cores_needed)
— a 4-thread row measured on one core is a statement about the host,
not the code. (A baseline taken on fewer cores still gates; its floor
is just lenient.) Every skipped row prints its reason inline and is
re-listed with it in the end-of-run summary, so a skip can never pass
for coverage. Checking nothing at all is likewise a failure.
"""

import argparse
import json
import re
import sys
from pathlib import Path

# Headline counters per suite: the numbers the ROADMAP quotes and the
# scaling stories PRs are judged by. Everything else in the artifacts is
# trajectory data, not a gate.
HEADLINES = {
    "bench_datapath": [
        "BM_NeutralizedForward",
        "BM_BatchForward/64",
        "BM_ForwardImix/Batch/64",
    ],
    "bench_crypto": [
        "BM_BackendCbcDecryptCmac112/portable",
        "BM_BackendCbcDecryptCmac112/aesni",
        "BM_BackendDeriveKeysBatch/aesni",
    ],
    "bench_sharding": [
        "BM_ShardedForward/1/manual_time",
        "BM_ShardedForward/4/manual_time",
        "BM_ShardedForwardImix/4/manual_time",
    ],
    "bench_runtime": [
        "BM_RuntimeForward/1/manual_time",
        "BM_RuntimeForward/4/manual_time",
        "BM_RuntimeForwardImix/4/manual_time",
        "BM_RuntimeForwardMQ/2/2/manual_time",
        "BM_UdpIngest/1/manual_time",
        "BM_UdpAppliance/1/manual_time",
    ],
    "bench_sim": [
        "BM_LinkDeliveryEvents/burst/manual_time",
        "BM_Fig1ImixSim/burst/manual_time",
    ],
    "bench_control": [
        "BM_KeySetupBatch/64",
        "BM_RekeyStorm/1048576",
    ],
    "bench_persist": [
        "BM_Snapshot/1048576",
        "BM_Restore/1048576",
        "BM_JournalAppend",
    ],
}

# (name, counter, ceiling): the counter must stay at or below the
# ceiling. Absolute and machine-independent — these encode structural
# claims (event-amortization), not throughput, so no threshold applies.
COUNTER_CEILINGS = {
    "bench_sim": [
        ("BM_LinkDeliveryEvents/burst/manual_time", "events_per_packet", 2.0),
        ("BM_Fig1ImixSim/burst/manual_time", "events_per_packet", 2.0),
    ],
    "bench_control": [
        # The epoch-rekey storm over a million resident sessions must
        # not allocate: the whole point of the arena-backed session
        # table is that full-population control sweeps run on
        # preallocated state.
        ("BM_RekeyStorm/1048576", "storm_allocs", 0.0),
    ],
    "bench_persist": [
        # Steady-state WAL appends must stay off the heap — the batch
        # buffer is sized by the first group and recycled forever after.
        ("BM_JournalAppend", "journal_allocs", 0.0),
    ],
}

# (name, counter): the counter must stay at or below baseline * (1 +
# threshold) — a *relative* ceiling for footprint-style counters where
# growth, not shrinkage, is the regression (e.g. resident bytes per
# session: a node-based table sneaking back in would blow it).
COUNTER_MAXIMA = {
    "bench_control": [
        ("BM_RekeyStorm/1048576", "bytes_per_session"),
    ],
    "bench_persist": [
        # On-disk footprint per resident session: format bloat (a
        # fatter record, a chattier container) is the regression here.
        ("BM_Snapshot/1048576", "bytes_per_session_disk"),
    ],
}

# (fast, slow, factor): within one artifact, items_per_second of `fast`
# must be >= factor * that of `slow` (after the leniency threshold).
SPEEDUPS = {
    "bench_sim": [
        ("BM_Fig1ImixSim/burst/manual_time",
         "BM_Fig1ImixSim/perpacket/manual_time", 2.0),
    ],
    # The PR 7 acceptance line: two ingress queues must clear the
    # single-dispatcher path at the same worker count. Same-run, so
    # runner speed cancels; skipped (like any thread row) when the
    # machine lacks the cores to host both producers and both workers.
    "bench_runtime": [
        ("BM_RuntimeForwardMQ/2/2/manual_time",
         "BM_RuntimeForward/2/manual_time", 1.0),
    ],
    # Durability tax bound: churn with a commit-per-event WAL (the
    # worst-case commit frequency — one CRC-sealed batch per control
    # event) must hold >= 0.7x the plain replay rate (same artifact,
    # hardware cancels). Measured ~0.73x on the reference box.
    "bench_persist": [
        ("BM_SessionChurnJournaled/20000",
         "BM_SessionChurnPlain/20000", 0.7),
    ],
}

# Thread-scaling rows are only meaningful with enough cores to host
# every thread the row spawns.
MQ_ROW = re.compile(r"^BM_RuntimeForwardMQ/(\d+)/(\d+)(/|$)")
UDP_ROW = re.compile(r"^BM_UdpIngest/(\d+)(/|$)")
APPLIANCE_ROW = re.compile(r"^BM_UdpAppliance/(\d+)(/|$)")
THREADED = re.compile(r"^BM_Runtime\w*/(\d+)(/|$)")


def cores_needed(name):
    """Minimum num_cpus for the row to measure the code, not the host.

    Returns None for rows with no thread-count requirement.
    MQ rows run Q producer + M worker threads; the UDP ingest rows run
    Q socket readers + Q workers + the sender; the appliance rows add
    one transmit thread on top of that; plain runtime rows run N
    workers fed from the (otherwise idle) bench thread.
    """
    m = MQ_ROW.match(name)
    if m:
        return int(m.group(1)) + int(m.group(2))
    m = UDP_ROW.match(name)
    if m:
        return 2 * int(m.group(1)) + 1
    m = APPLIANCE_ROW.match(name)
    if m:
        return 2 * int(m.group(1)) + 2
    m = THREADED.match(name)
    if m:
        return int(m.group(1))
    return None


def load_suite(doc):
    """name -> benchmark entry, plus the context block."""
    entries = {b["name"]: b for b in doc.get("benchmarks", [])}
    return entries, doc.get("context", {})


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", type=Path,
                        help="bench_<suite>.json files from this run")
    parser.add_argument("--baseline", type=Path,
                        default=Path("BENCH_baseline.json"))
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    failures = []
    skips = []
    checked = 0

    def skip(row, reason):
        """Every skipped row states its reason, inline and in the
        summary — a silent skip is indistinguishable from coverage."""
        skips.append((row, reason))
        print(f"[skip] {row}: {reason}")

    for artifact in args.artifacts:
        suite = artifact.stem
        current_doc = json.loads(artifact.read_text())
        current, cur_ctx = load_suite(current_doc)
        if suite not in baseline:
            print(f"[      FAIL] {suite}: no baseline snapshot — "
                  f"regenerate BENCH_baseline.json")
            failures.append(f"{suite}:<no baseline>")
            continue
        base, base_ctx = load_suite(baseline[suite])

        for name in HEADLINES.get(suite, []):
            if name not in current:
                print(f"[      FAIL] {suite}:{name}: not in this run "
                      f"(renamed? filtered out?)")
                failures.append(f"{suite}:{name}")
                continue
            if name not in base:
                print(f"[      FAIL] {suite}:{name}: not in baseline — "
                      f"regenerate BENCH_baseline.json")
                failures.append(f"{suite}:{name}")
                continue
            if current[name].get("error_occurred"):
                print(f"[      FAIL] {suite}:{name}: benchmark errored: "
                      f"{current[name].get('error_message', '?')}")
                failures.append(f"{suite}:{name}")
                continue
            need = cores_needed(name)
            if need is not None:
                cur_cpus = cur_ctx.get("num_cpus", 0)
                if cur_cpus < need:
                    skip(f"{suite}:{name}",
                         f"thread-scaling row needs {need} cores, this "
                         f"machine has {cur_cpus} (baseline: "
                         f"{base_ctx.get('num_cpus', 0)})")
                    continue
            cur_v = current[name].get("items_per_second")
            base_v = base[name].get("items_per_second")
            if not base_v:
                print(f"[      FAIL] {suite}:{name}: baseline has no "
                      f"items_per_second — regenerate the snapshot")
                failures.append(f"{suite}:{name}")
                continue
            if not cur_v:  # missing or 0.0: a dead benchmark, not noise
                print(f"[      FAIL] {suite}:{name}: no items_per_second "
                      f"in this run")
                failures.append(f"{suite}:{name}")
                continue
            floor = base_v * (1.0 - args.threshold)
            checked += 1
            verdict = "ok" if cur_v >= floor else "REGRESSION"
            print(f"[{verdict:>10}] {suite}:{name}: "
                  f"{cur_v / 1e6:.2f} M/s vs baseline {base_v / 1e6:.2f} M/s "
                  f"(floor {floor / 1e6:.2f})")
            if cur_v < floor:
                failures.append(f"{suite}:{name}")

        for name, counter, ceiling in COUNTER_CEILINGS.get(suite, []):
            entry = current.get(name)
            if entry is None or entry.get("error_occurred"):
                print(f"[      FAIL] {suite}:{name}: missing or errored "
                      f"(needed for {counter} ceiling)")
                failures.append(f"{suite}:{name}:{counter}")
                continue
            value = entry.get(counter)
            if value is None:
                print(f"[      FAIL] {suite}:{name}: no {counter} counter "
                      f"in this run")
                failures.append(f"{suite}:{name}:{counter}")
                continue
            checked += 1
            verdict = "ok" if value <= ceiling else "REGRESSION"
            print(f"[{verdict:>10}] {suite}:{name}: {counter}="
                  f"{value:.3f} (ceiling {ceiling})")
            if value > ceiling:
                failures.append(f"{suite}:{name}:{counter}")

        for name, counter in COUNTER_MAXIMA.get(suite, []):
            entry = current.get(name)
            if entry is None or entry.get("error_occurred"):
                print(f"[      FAIL] {suite}:{name}: missing or errored "
                      f"(needed for the {counter} maximum)")
                failures.append(f"{suite}:{name}:{counter}")
                continue
            value = entry.get(counter)
            base_v = base.get(name, {}).get(counter)
            if value is None or base_v is None:
                print(f"[      FAIL] {suite}:{name}: {counter} missing "
                      f"(run: {value}, baseline: {base_v}) — regenerate "
                      f"BENCH_baseline.json?")
                failures.append(f"{suite}:{name}:{counter}")
                continue
            cap = base_v * (1.0 + args.threshold)
            checked += 1
            verdict = "ok" if value <= cap else "REGRESSION"
            print(f"[{verdict:>10}] {suite}:{name}: {counter}="
                  f"{value:.1f} vs baseline {base_v:.1f} (cap {cap:.1f})")
            if value > cap:
                failures.append(f"{suite}:{name}:{counter}")

        for fast, slow, factor in SPEEDUPS.get(suite, []):
            need = max((n for n in (cores_needed(fast), cores_needed(slow))
                        if n is not None), default=None)
            if need is not None and cur_ctx.get("num_cpus", 0) < need:
                skip(f"{suite}:{fast} vs {slow}",
                     f"speedup needs {need} cores, this machine has "
                     f"{cur_ctx.get('num_cpus', 0)}")
                continue
            rates = []
            for name in (fast, slow):
                entry = current.get(name)
                rate = None if entry is None or entry.get("error_occurred") \
                    else entry.get("items_per_second")
                if not rate:
                    print(f"[      FAIL] {suite}:{name}: missing, errored, "
                          f"or rateless (needed for the {fast} speedup)")
                    failures.append(f"{suite}:{fast}:speedup")
                    break
                rates.append(rate)
            if len(rates) != 2:
                continue
            ratio = rates[0] / rates[1]
            floor = factor * (1.0 - args.threshold)
            checked += 1
            verdict = "ok" if ratio >= floor else "REGRESSION"
            print(f"[{verdict:>10}] {suite}:{fast}: {ratio:.2f}x over "
                  f"{slow} (floor {floor:.2f}x, target {factor}x)")
            if ratio < floor:
                failures.append(f"{suite}:{fast}:speedup")

    print(f"\n{checked} headline counter(s) checked, "
          f"{len(skips)} skipped, {len(failures)} failure(s)")
    for row, reason in skips:
        print(f"  SKIP {row}: {reason}")
    if failures:
        for f in failures:
            print(f"  FAIL {f}", file=sys.stderr)
        return 1
    if checked == 0:
        print("FAIL: nothing was comparable "
              "(wrong artifact names or stale baseline?)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
