// E2 — neutralizer data-path throughput vs vanilla forwarding
// (paper §4: 64-byte payloads, 112-byte packets; "the neutralizer is
// able to output packets with decrypted destination IP addresses at
// 422 kpps … [vs] vanilla IP packets of the same size at 600 kpps").
//
// The reproducible claim is the *ratio*: neutralization costs one CMAC
// (key recompute) + one 4-byte AES-CTR (address decrypt) + header
// rewrite per packet, which should keep neutralized forwarding within
// the same order of magnitude as plain forwarding (paper: 70%).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/neutralizer.hpp"
#include "core/replay.hpp"
#include "crypto/aes_backend.hpp"
#include "crypto/aes_modes.hpp"
#include "crypto/chacha.hpp"
#include "net/arena.hpp"
#include "net/shim.hpp"
#include "sim/trace_workload.hpp"

namespace {

using namespace nn;

const net::Ipv4Addr kAnycast(200, 0, 0, 1);
const net::Ipv4Addr kAnn(10, 1, 0, 2);
const net::Ipv4Addr kGoogle(20, 0, 0, 10);

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

/// 112-byte neutralized data packet, exactly the paper's wire size:
/// 20 (IP) + 12 (shim) + 4 (inner addr) + 64 (payload) + 12 (padding).
net::Packet paper_data_packet(const crypto::AesKey& ks, std::uint64_t nonce,
                              std::uint8_t flags = 0) {
  net::ShimHeader shim;
  shim.type = net::ShimType::kDataForward;
  shim.flags = flags;
  shim.key_epoch = 0;
  shim.nonce = nonce;
  shim.inner_addr = crypto::crypt_address(ks, nonce, false, kGoogle.value());
  std::size_t pad = 112 - (net::kIpv4HeaderSize + shim.serialized_size() + 64);
  std::vector<std::uint8_t> payload(64 + pad, 0xE5);
  return net::make_shim_packet(kAnn, kAnycast, shim, payload);
}

crypto::AesKey source_key(std::uint64_t nonce) {
  const core::MasterKeySchedule sched(root_key());
  return crypto::derive_source_key(sched.current_key(0), nonce,
                                   kAnn.value());
}

// The neutralizer forward path on the paper's 112-byte packet.
void BM_NeutralizedForward(benchmark::State& state) {
  core::Neutralizer service(service_config(), root_key());
  const std::uint64_t nonce = 0x1122334455667788ULL;
  const auto packet = paper_data_packet(source_key(nonce), nonce);
  if (packet.size() != 112) state.SkipWithError("packet size != 112");

  for (auto _ : state) {
    auto copy = packet;
    auto out = service.process(std::move(copy), 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["kpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NeutralizedForward);

// Return direction: encrypt customer address instead of decrypting the
// destination — same cost structure.
void BM_NeutralizedReturn(benchmark::State& state) {
  core::Neutralizer service(service_config(), root_key());
  const std::uint64_t nonce = 0x1122334455667788ULL;
  net::ShimHeader shim;
  shim.type = net::ShimType::kDataReturn;
  shim.nonce = nonce;
  shim.inner_addr = kAnn.value();
  std::vector<std::uint8_t> payload(76, 0xE5);
  const auto packet = net::make_shim_packet(kGoogle, kAnycast, shim, payload);

  for (auto _ : state) {
    auto copy = packet;
    auto out = service.process(std::move(copy), 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["kpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NeutralizedReturn);

// Rekey-stamping packets additionally mint and stamp (nonce', Ks').
void BM_NeutralizedForwardWithRekey(benchmark::State& state) {
  core::Neutralizer service(service_config(), root_key());
  const std::uint64_t nonce = 0x1122334455667788ULL;
  const auto packet = paper_data_packet(source_key(nonce), nonce,
                                        net::ShimFlags::kKeyRequest);
  for (auto _ : state) {
    auto copy = packet;
    auto out = service.process(std::move(copy), 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NeutralizedForwardWithRekey);

// --- Scalar vs batch on identical workloads -------------------------
//
// Both benchmarks refill a batch of paper packets from recycled arena
// buffers (no allocation in steady state) and then neutralize them;
// the only difference is per-packet process() vs process_batch(). The
// batch path resolves the per-epoch master key + keyed CMAC once per
// batch instead of once per packet, so its kpps must come out >= the
// scalar path's at every batch size.

void BM_ScalarForwardPerPacket(benchmark::State& state) {
  core::Neutralizer service(service_config(), root_key());
  const std::uint64_t nonce = 0x1122334455667788ULL;
  const auto tmpl = paper_data_packet(source_key(nonce), nonce);
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  net::PacketArena arena;
  std::vector<net::Packet> batch;
  batch.reserve(batch_size);

  for (auto _ : state) {
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(arena.clone(tmpl));
    }
    for (auto& pkt : batch) {
      auto out = service.process(std::move(pkt), 0);
      benchmark::DoNotOptimize(out);
      if (out.has_value()) arena.release(std::move(*out));
    }
    batch.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_size));
  state.counters["kpps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch_size) / 1000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScalarForwardPerPacket)->Arg(8)->Arg(64)->Arg(256);

void BM_BatchForward(benchmark::State& state) {
  core::Neutralizer service(service_config(), root_key());
  const std::uint64_t nonce = 0x1122334455667788ULL;
  const auto tmpl = paper_data_packet(source_key(nonce), nonce);
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  net::PacketArena arena;
  std::vector<net::Packet> batch;
  batch.reserve(batch_size);

  for (auto _ : state) {
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(arena.clone(tmpl));
    }
    const std::size_t n = service.process_batch(
        {batch.data(), batch.size()}, 0, &arena);
    benchmark::DoNotOptimize(n);
    for (std::size_t i = 0; i < n; ++i) {
      arena.release(std::move(batch[i]));
    }
    batch.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_size));
  state.counters["kpps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch_size) / 1000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchForward)->Arg(8)->Arg(64)->Arg(256);

// --- portable vs accelerated crypto backend on the full datapath -----
//
// Same workload as BM_ScalarForwardPerPacket / BM_BatchForward, but
// registered once per AES backend available on this machine with the
// dispatch pinned (suffix /portable, /aesni). The spread between the
// two suffixes is the end-to-end win of hardware crypto on the paper's
// 112-byte packet; batch-vs-scalar at a fixed suffix isolates the
// batched key-derivation prepass.
void BM_ForwardBackend(benchmark::State& state,
                       const crypto::AesBackendOps* ops, bool batched) {
  // The override must outlive every cipher the service builds, and the
  // per-packet address decrypt keys a fresh cipher inside process(), so
  // it pins the whole benchmark body.
  const crypto::ScopedBackendOverride force(*ops);
  core::Neutralizer service(service_config(), root_key());
  const std::uint64_t nonce = 0x1122334455667788ULL;
  const auto tmpl = paper_data_packet(source_key(nonce), nonce);
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  net::PacketArena arena;
  std::vector<net::Packet> batch;
  batch.reserve(batch_size);

  for (auto _ : state) {
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(arena.clone(tmpl));
    }
    if (batched) {
      const std::size_t n = service.process_batch(
          {batch.data(), batch.size()}, 0, &arena);
      benchmark::DoNotOptimize(n);
      for (std::size_t i = 0; i < n; ++i) {
        arena.release(std::move(batch[i]));
      }
    } else {
      for (auto& pkt : batch) {
        auto out = service.process(std::move(pkt), 0);
        benchmark::DoNotOptimize(out);
        if (out.has_value()) arena.release(std::move(*out));
      }
    }
    batch.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_size));
  state.counters["kpps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch_size) / 1000.0,
      benchmark::Counter::kIsRate);
}

void register_backend_benches() {
  for (const crypto::AesBackendOps* ops : crypto::available_backends()) {
    const std::string suffix = "/" + std::string(ops->name);
    benchmark::RegisterBenchmark(("BM_ScalarForward" + suffix).c_str(),
                                 BM_ForwardBackend, ops, false)
        ->Arg(64);
    benchmark::RegisterBenchmark(("BM_BatchForward" + suffix).c_str(),
                                 BM_ForwardBackend, ops, true)
        ->Arg(64)
        ->Arg(256);
  }
}
[[maybe_unused]] const int kBackendBenchesRegistered =
    (register_backend_benches(), 0);

// --- IMIX workloads --------------------------------------------------
//
// The 112-byte benches above are the paper's fixed-size headline; these
// run the same scalar-vs-batch comparison on the classic 7:4:1
// 40/576/1500-byte Internet mix over many flows, which is what a real
// border box sees. Per-packet crypto cost is size-independent
// (header-only), so kpps should track the 112-byte numbers while
// bytes/s reflects the ~340-byte mean wire size.

/// Neutralized data packets sized by an IMIX draw across `flows`
/// distinct (source, nonce) sessions, in trace order (shared mapping:
/// core/replay.hpp).
std::vector<net::Packet> imix_packets(std::size_t count, std::size_t flows) {
  sim::ImixConfig icfg;
  icfg.flows = flows;
  icfg.packets_per_second = static_cast<double>(count);
  icfg.duration = sim::kSecond;
  icfg.seed = 0x117;
  const auto trace = sim::imix_trace(icfg);

  const core::MasterKeySchedule sched(root_key());
  std::vector<net::Packet> out;
  out.reserve(trace.size());
  for (const auto& rec : trace) {
    out.push_back(core::synth_forward_packet(
        sched, kAnycast, kGoogle, rec.flow_id, rec.wire_size,
        0x1122334455660000ULL));
  }
  return out;
}

void BM_ForwardImix(benchmark::State& state, bool batched) {
  core::Neutralizer service(service_config(), root_key());
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  const auto tmpls = imix_packets(1024, 64);
  std::uint64_t tmpl_bytes = 0;
  for (const auto& p : tmpls) tmpl_bytes += p.size();
  net::PacketArena arena;
  std::vector<net::Packet> batch;
  batch.reserve(batch_size);
  std::size_t cursor = 0;

  for (auto _ : state) {
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(arena.clone(tmpls[cursor]));
      if (++cursor == tmpls.size()) cursor = 0;
    }
    if (batched) {
      const std::size_t n =
          service.process_batch({batch.data(), batch.size()}, 0, &arena);
      benchmark::DoNotOptimize(n);
      for (std::size_t i = 0; i < n; ++i) {
        arena.release(std::move(batch[i]));
      }
    } else {
      for (auto& pkt : batch) {
        auto out = service.process(std::move(pkt), 0);
        benchmark::DoNotOptimize(out);
        if (out.has_value()) arena.release(std::move(*out));
      }
    }
    batch.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_size));
  state.SetBytesProcessed(static_cast<int64_t>(
      static_cast<double>(state.iterations() * batch_size) *
      static_cast<double>(tmpl_bytes) / static_cast<double>(tmpls.size())));
  state.counters["kpps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch_size) / 1000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_ForwardImix, Scalar, false)->Arg(64);
BENCHMARK_CAPTURE(BM_ForwardImix, Batch, true)->Arg(64)->Arg(256);

// Vanilla IP forwarding baseline: same 112-byte packet, TTL decrement +
// checksum rewrite only (what a plain router does per hop).
void BM_VanillaForward(benchmark::State& state) {
  const std::uint64_t nonce = 0x1122334455667788ULL;
  const auto packet = paper_data_packet(source_key(nonce), nonce);

  for (auto _ : state) {
    auto copy = packet;
    --copy.bytes[8];
    copy.bytes[10] = 0;
    copy.bytes[11] = 0;
    const std::uint16_t sum = net::internet_checksum(
        std::span<const std::uint8_t>(copy.bytes).subspan(0,
                                                          net::kIpv4HeaderSize));
    copy.bytes[10] = static_cast<std::uint8_t>(sum >> 8);
    copy.bytes[11] = static_cast<std::uint8_t>(sum);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["kpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VanillaForward);

// Fuller vanilla baseline: what a software router actually does per
// packet — buffer copy, header parse + checksum verify, TTL rewrite.
// The paper's 600 kpps "vanilla" Click path was dominated by exactly
// this kind of per-packet fixed cost; comparing the neutralizer against
// it (rather than against the bare 3-instruction TTL rewrite) is the
// honest analog of the paper's 422-vs-600 ratio.
void BM_VanillaForwardFullPath(benchmark::State& state) {
  const std::uint64_t nonce = 0x1122334455667788ULL;
  const auto packet = paper_data_packet(source_key(nonce), nonce);

  for (auto _ : state) {
    auto copy = packet;
    const auto parsed = net::parse_packet(copy.view());
    benchmark::DoNotOptimize(parsed);
    --copy.bytes[8];
    copy.bytes[10] = 0;
    copy.bytes[11] = 0;
    const std::uint16_t sum = net::internet_checksum(
        std::span<const std::uint8_t>(copy.bytes).subspan(0,
                                                          net::kIpv4HeaderSize));
    copy.bytes[10] = static_cast<std::uint8_t>(sum >> 8);
    copy.bytes[11] = static_cast<std::uint8_t>(sum);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["kpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VanillaForwardFullPath);

// Payload-size sweep: the neutralizer cost is per-packet (header-only
// crypto), so throughput in pps should be nearly flat in payload size.
void BM_NeutralizedForwardPayloadSize(benchmark::State& state) {
  core::Neutralizer service(service_config(), root_key());
  const std::uint64_t nonce = 0x99;
  const auto ks = source_key(nonce);
  net::ShimHeader shim;
  shim.type = net::ShimType::kDataForward;
  shim.nonce = nonce;
  shim.inner_addr = crypto::crypt_address(ks, nonce, false, kGoogle.value());
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0xE5);
  const auto packet = net::make_shim_packet(kAnn, kAnycast, shim, payload);

  for (auto _ : state) {
    auto copy = packet;
    auto out = service.process(std::move(copy), 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packet.size()));
}
BENCHMARK(BM_NeutralizedForwardPayloadSize)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1400);

}  // namespace
