// E1 — neutralizer key-setup throughput (paper §4: "the neutralizer can
// output response packets at 24.4 kpps … a commodity PC can
// simultaneously serve 88 million sources for key setup").
//
// Measures the full key-setup path of the real implementation: parse
// the setup packet, mint (nonce, Ks), PKCS#1-pad and RSA-512 e=3
// encrypt, build the response packet. The derived "sources served per
// hour" counter reproduces the paper's 88 M figure (rate × 3600, one
// setup per source per master-key lifetime).
#include <benchmark/benchmark.h>

#include "core/neutralizer.hpp"
#include "crypto/chacha.hpp"
#include "net/shim.hpp"

namespace {

using namespace nn;

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = net::Ipv4Addr(200, 0, 0, 1);
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

net::Packet make_setup_packet(const crypto::RsaPublicKey& pub,
                              net::Ipv4Addr src) {
  net::ShimHeader shim;
  shim.type = net::ShimType::kKeySetup;
  shim.nonce = 0x42;
  return net::make_shim_packet(src, net::Ipv4Addr(200, 0, 0, 1), shim,
                               pub.serialize());
}

// Full key-setup path, one-time RSA-512 source keys (the paper's
// configuration).
void BM_KeySetupResponse(benchmark::State& state) {
  crypto::ChaChaRng rng(1);
  const auto onetime = crypto::rsa_generate(rng, 512, 3);
  core::Neutralizer service(service_config(), root_key());
  const auto packet = make_setup_packet(onetime.pub, net::Ipv4Addr(10, 1, 0, 2));

  for (auto _ : state) {
    auto copy = packet;
    auto response = service.process(std::move(copy), 0);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["setup_pps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  // Paper's derived capacity metric: one setup per source per master-key
  // hour, so capacity = rate × 3600 (the 88 M figure).
  state.counters["sources_per_hour"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * 3600.0,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KeySetupResponse);

// Sweep the one-time key size: the paper argues 512-bit keys are the
// efficiency sweet spot because they are single-use.
void BM_KeySetupResponseKeyBits(benchmark::State& state) {
  crypto::ChaChaRng rng(2);
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto onetime = crypto::rsa_generate(rng, bits, 3);
  core::Neutralizer service(service_config(), root_key());
  const auto packet = make_setup_packet(onetime.pub, net::Ipv4Addr(10, 1, 0, 2));
  for (auto _ : state) {
    auto copy = packet;
    auto response = service.process(std::move(copy), 0);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KeySetupResponseKeyBits)->Arg(512)->Arg(768)->Arg(1024);

// Offload mode (§3.2): the box only stamps (nonce, Ks) and re-targets
// the packet; the RSA moves to a customer.
void BM_KeySetupOffloadAtBox(benchmark::State& state) {
  crypto::ChaChaRng rng(3);
  const auto onetime = crypto::rsa_generate(rng, 512, 3);
  auto cfg = service_config();
  cfg.offload_enabled = true;
  cfg.offload_helper = net::Ipv4Addr(20, 0, 0, 10);
  core::Neutralizer service(cfg, root_key());
  const auto packet = make_setup_packet(onetime.pub, net::Ipv4Addr(10, 1, 0, 2));
  for (auto _ : state) {
    auto copy = packet;
    auto redirected = service.process(std::move(copy), 0);
    benchmark::DoNotOptimize(redirected);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KeySetupOffloadAtBox);

// The source side of the handshake: one-time keygen + response
// decryption. This is the cost the design deliberately exports from the
// middlebox to the edge.
void BM_KeySetupSourceSide(benchmark::State& state) {
  crypto::ChaChaRng rng(4);
  core::Neutralizer service(service_config(), root_key());
  for (auto _ : state) {
    const auto onetime = crypto::rsa_generate(rng, 512, 3);
    auto response = service.process(
        make_setup_packet(onetime.pub, net::Ipv4Addr(10, 1, 0, 2)), 0);
    const auto parsed = net::parse_packet(response->view());
    auto plain = crypto::rsa_decrypt(onetime, parsed.payload);
    benchmark::DoNotOptimize(plain);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KeySetupSourceSide)->Unit(benchmark::kMillisecond);

}  // namespace
