// Engine-event economics of batch-aware link delivery (the PR-6
// tentpole). Two headlines:
//
//   BM_LinkDeliveryEvents/{perpacket,burst}: a saturated link serving a
//   same-instant blast; the events_per_packet counter is the number of
//   engine events the link spends per packet moved. Classic per-packet
//   delivery costs exactly 2 (delivery + free); burst mode amortizes
//   both over trains, and the gate in tools/bench_compare.py holds it
//   at <= 2.
//
//   BM_Fig1ImixSim/{perpacket,burst}: wall-clock simulation throughput
//   (Mpps of delivered traffic) of the Fig. 1 topology replaying the
//   classic 7:4:1 IMIX over a congested AT&T uplink. Plain (cleartext)
//   flows so event dispatch, not per-packet crypto, is what is being
//   measured; the burst/perpacket ratio is the speedup the mode buys.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "scenario/fig1.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"

namespace {

using namespace nn;

net::Packet data_packet(std::uint32_t tag) {
  std::vector<std::uint8_t> body(84, 0);  // 112 bytes on the wire
  body[0] = static_cast<std::uint8_t>(tag);
  body[1] = static_cast<std::uint8_t>(tag >> 8);
  return net::make_udp_packet(net::Ipv4Addr(10, 1, 0, 2),
                              net::Ipv4Addr(20, 0, 0, 10), 5060, 5060, body);
}

/// One iteration = one congested link draining a kPackets blast.
void link_delivery_body(benchmark::State& state, std::size_t window) {
  constexpr std::size_t kPackets = 4096;
  std::vector<net::Packet> blast;
  blast.reserve(kPackets);
  for (std::uint32_t i = 0; i < kPackets; ++i) blast.push_back(data_packet(i));

  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    sim::Engine engine;
    sim::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;
    cfg.propagation = sim::kMillisecond;
    cfg.queue_bytes = SIZE_MAX;
    cfg.burst_packets = window;
    std::size_t got = 0;
    sim::Link link(engine, cfg, [&](net::Packet&&) { ++got; });
    link.set_burst_deliver(
        [&](std::span<sim::Delivery> train) { got += train.size(); });
    // Direct sends at t=0 keep the event count pure link machinery.
    for (const net::Packet& pkt : blast) link.send(net::Packet{pkt});
    const auto start = std::chrono::steady_clock::now();
    engine.run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(elapsed.count());
    if (got != kPackets) {
      state.SkipWithError("blast not fully delivered");
      return;
    }
    events += engine.executed();
    delivered += got;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.counters["events_per_packet"] =
      delivered > 0 ? static_cast<double>(events) / static_cast<double>(delivered)
                    : 0.0;
}

void BM_LinkDeliveryEvents_perpacket(benchmark::State& state) {
  link_delivery_body(state, 1);
}
void BM_LinkDeliveryEvents_burst(benchmark::State& state) {
  link_delivery_body(state, 64);
}
BENCHMARK(BM_LinkDeliveryEvents_perpacket)
    ->Name("BM_LinkDeliveryEvents/perpacket")
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LinkDeliveryEvents_burst)
    ->Name("BM_LinkDeliveryEvents/burst")
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// One iteration = a fresh Fig. 1 run: two IMIX flows from one access
/// customer crossing the congested uplink for a quarter second.
void fig1_imix_body(benchmark::State& state, std::size_t window) {
  using namespace nn::scenario;
  constexpr sim::SimTime kSpan = sim::kSecond / 4;
  std::uint64_t delivered = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    Fig1Config cfg;
    cfg.workload = WorkloadKind::kImix;
    cfg.att_uplink_bps = 12e6;
    cfg.link_burst_packets = window;
    // The fast path pairs burst links with windowed trace replay; the
    // stamps keep the virtual timeline exact for plain transports
    // (Differential.BatchedPlainReplayStaysExact).
    if (window > 1) cfg.source_batch_window = 5 * sim::kMillisecond;
    Fig1 fig(cfg);
    fig.schedule_voip(VoipMode::kPlain, fig.ann, fig.google, 1, 2000,
                      10 * sim::kMillisecond, kSpan);
    fig.schedule_voip(VoipMode::kPlain, fig.ann, fig.youtube, 2, 2800,
                      10 * sim::kMillisecond, kSpan);
    const auto start = std::chrono::steady_clock::now();
    fig.engine.run_until(kSpan + sim::kSecond);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(elapsed.count());
    delivered += fig.collect(fig.google, 1).received;
    delivered += fig.collect(fig.youtube, 2).received;
    events += fig.engine.executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(delivered) / 1e6, benchmark::Counter::kIsRate);
  state.counters["events_per_packet"] =
      delivered > 0 ? static_cast<double>(events) / static_cast<double>(delivered)
                    : 0.0;
}

void BM_Fig1ImixSim_perpacket(benchmark::State& state) {
  fig1_imix_body(state, 1);
}
void BM_Fig1ImixSim_burst(benchmark::State& state) {
  fig1_imix_body(state, 32);
}
BENCHMARK(BM_Fig1ImixSim_perpacket)
    ->Name("BM_Fig1ImixSim/perpacket")
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig1ImixSim_burst)
    ->Name("BM_Fig1ImixSim/burst")
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
