// E7 — key-setup floods vs pushback (paper §3.6: "a neutralizer can
// invoke DoS defense mechanisms such as pushback to get rid of attack
// trafficking … [pushback] does not rely on source addresses to filter
// attack traffic").
//
// Attackers flood spoofed KeySetup packets at the neutralizer's anycast
// address across a bottleneck link. A legitimate client keeps doing
// key setups + data. Swept over flood intensity, with and without the
// pushback policy at the bottleneck router:
//   * without: the bottleneck queue fills and legitimate handshakes and
//     data drown;
//   * with: the (dst=anycast, type=KeySetup) aggregate is limited, the
//     legitimate *data* aggregate is untouched, and legitimate setups
//     share the aggregate's residual rate (bounded collateral damage).
#include <benchmark/benchmark.h>

#include "core/box.hpp"
#include "host/host.hpp"
#include "pushback/pushback.hpp"
#include "scenario/fig1.hpp"
#include "sim/workload.hpp"

namespace {

using namespace nn;

struct FloodResult {
  double victim_goodput_pct;   // legitimate data delivered / sent
  double victim_mean_ms;
  std::uint64_t setups_served;  // legitimate client's completed handshakes
};

FloodResult run_flood(double flood_pps, bool with_pushback) {
  scenario::Fig1Config cfg;
  cfg.core_bps = 20e6;  // peering bottleneck floods can fill
  scenario::Fig1 fig(cfg);

  if (with_pushback) {
    pushback::PushbackPolicy::Config pcfg;
    pcfg.capacity_bps = 20e6 / 8.0;  // bytes/s of the bottleneck
    pcfg.detect_fraction = 0.5;
    pcfg.window = 50 * sim::kMillisecond;
    pcfg.limit_bps = 50e3;
    auto at_peering = std::make_shared<pushback::PushbackPolicy>(pcfg);
    auto at_access = std::make_shared<pushback::PushbackPolicy>(pcfg);
    at_peering->set_upstream(at_access);
    fig.att_peering->add_policy(at_peering);
    fig.att_access->add_policy(at_access);
  }

  // Attack: Bob's node emits spoofed key setups at flood_pps.
  sim::TrafficSource::Config attack;
  attack.flow_id = 66;
  attack.payload_size = 70;
  attack.packets_per_second = flood_pps;
  attack.start = 0;
  attack.stop = 12 * sim::kSecond;
  attack.seed = 666;
  sim::Host* bot = fig.bob.node;
  SplitMix64 spoof_rng(13);
  auto attacker = std::make_unique<sim::TrafficSource>(
      fig.engine, attack, [bot, &spoof_rng](std::vector<std::uint8_t>&& p) {
        net::ShimHeader shim;
        shim.type = net::ShimType::kKeySetup;
        shim.nonce = spoof_rng.next_u64();
        const net::Ipv4Addr spoofed(
            0x0A010000u | static_cast<std::uint32_t>(spoof_rng.uniform(60000)));
        bot->transmit(net::make_shim_packet(spoofed, scenario::kAnycast, shim,
                                            p));
      });
  attacker->start();

  // Victim: Ann's neutralized VoIP flow to Google (includes her real
  // key setup at flow start).
  const auto result =
      fig.run_voip(scenario::VoipMode::kNeutralized, fig.ann, fig.google, 1,
                   50, sim::kSecond, 10 * sim::kSecond);

  FloodResult out;
  out.victim_goodput_pct =
      100.0 * static_cast<double>(result.received) / (50.0 * 10.0);
  out.victim_mean_ms = result.mean_latency_ms;
  out.setups_served = fig.ann.stack->stats().keys_established;
  return out;
}

void run_case(benchmark::State& state, bool with_pushback) {
  const double flood_pps = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto r = run_flood(flood_pps, with_pushback);
    state.counters["victim_goodput_pct"] = r.victim_goodput_pct;
    state.counters["victim_mean_ms"] = r.victim_mean_ms;
    state.counters["victim_handshakes_ok"] =
        static_cast<double>(r.setups_served);
  }
}

void BM_FloodNoDefense(benchmark::State& state) { run_case(state, false); }
BENCHMARK(BM_FloodNoDefense)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(30000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_FloodWithPushback(benchmark::State& state) { run_case(state, true); }
BENCHMARK(BM_FloodWithPushback)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(30000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
