// Persistence subsystem scale (crash-consistent snapshot + journal):
//
//   * BM_Snapshot/1048576  — serialize a million resident sessions
//                            (items/sec = sessions/sec; bytes/sec is
//                            the streaming GB/s figure), with
//                            bytes_per_session_disk — the on-disk
//                            footprint the compare tool caps.
//   * BM_Restore/1048576   — parse + validate + rebuild from that
//                            snapshot into a cold box.
//   * BM_JournalAppend     — WAL appends/sec under group commit, with
//                            journal_allocs gated to 0: steady-state
//                            journaling must never touch the heap.
//   * BM_SessionChurnPlain / BM_SessionChurnJournaled — the same churn
//                            replay with and without a commit-per-event
//                            journal; the compare tool holds the
//                            journaled rate to >=0.7x plain (same-run,
//                            so hardware cancels), bounding the
//                            control-plane durability tax at its
//                            worst-case commit frequency.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/neutralizer.hpp"
#include "net/shim.hpp"
#include "persist/io.hpp"
#include "persist/journal.hpp"
#include "persist/recover.hpp"
#include "persist/state.hpp"
#include "sim/session_churn.hpp"
#include "util/bytes.hpp"

// ---- global allocation counter (one definition per bench binary) ------
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace nn;

const net::Ipv4Addr kAnycast(200, 0, 0, 1);

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  cfg.dynamic_pool = net::Ipv4Prefix::from_string("10.0.0.0/8");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

// Builds an n-session resident population, the same way BM_RekeyStorm
// does (allocator-direct: the serialization benches measure the
// persistence path, not request parsing).
void populate(core::Neutralizer& service, std::size_t n) {
  auto* alloc = service.dynamic_allocator();
  alloc->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    alloc->allocate(
        net::Ipv4Addr(0x14000000 + static_cast<std::uint32_t>(i & 0xFFFF)));
  }
}

// ---- snapshot serialization -------------------------------------------
void BM_Snapshot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Neutralizer service(service_config(), root_key());
  populate(service, n);

  std::uint64_t written = 0;
  for (auto _ : state) {
    persist::NullSink sink;
    persist::save_neutralizer(service, sink);
    written = sink.written();
    benchmark::DoNotOptimize(written);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(written));
  state.counters["sessions_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
  state.counters["bytes_per_session_disk"] =
      static_cast<double>(written) / static_cast<double>(n);
}
BENCHMARK(BM_Snapshot)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

// ---- snapshot restore -------------------------------------------------
void BM_Restore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Neutralizer service(service_config(), root_key());
  populate(service, n);
  persist::MemorySink sink;
  persist::save_neutralizer(service, sink);
  const auto bytes = sink.take();

  for (auto _ : state) {
    state.PauseTiming();
    core::Neutralizer cold(service_config(), root_key());
    state.ResumeTiming();
    persist::MemorySource source(bytes);
    persist::load_neutralizer(cold, source);
    benchmark::DoNotOptimize(cold.dynamic_sessions());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
  state.counters["sessions_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Restore)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

// ---- journal appends --------------------------------------------------
void BM_JournalAppend(benchmark::State& state) {
  persist::NullSink sink;
  persist::JournalWriter writer(sink, {.group_commit_records = 256});
  // Warm the batch buffer: the first group sizes it, after which
  // appends (and the group commits they trigger) are heap-free.
  for (int i = 0; i < 256; ++i) {
    writer.append({persist::JournalOp::kArrive, 0, 0x14000001u, 1});
  }

  std::uint64_t appends = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    writer.append({persist::JournalOp::kRenew,
                   static_cast<sim::SimTime>(appends), 0x0A000001u, appends});
    allocs += g_news.load(std::memory_order_relaxed) - before;
    ++appends;
  }
  writer.commit();
  state.SetItemsProcessed(static_cast<int64_t>(appends));
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(appends), benchmark::Counter::kIsRate);
  state.counters["journal_allocs"] = static_cast<double>(allocs);
}
BENCHMARK(BM_JournalAppend);

// ---- churn with and without the WAL -----------------------------------
// Identical event loops; the journaled variant appends every mutation
// and group-commits at each event boundary (the box's end-of-instant
// quiescence point) — the worst-case commit frequency, so the measured
// gap upper-bounds the real durability tax.
void run_churn(benchmark::State& state, bool journaled) {
  sim::SessionChurnConfig ccfg;
  ccfg.sessions = static_cast<std::size_t>(state.range(0));
  ccfg.arrivals_per_second = 2e6;
  ccfg.poisson = true;
  ccfg.lease = 2 * sim::kMillisecond;
  ccfg.renew_probability = 0.6;
  ccfg.max_renewals = 3;
  ccfg.rekey_interval = 5 * sim::kMillisecond;
  ccfg.horizon = 50 * sim::kMillisecond;
  ccfg.seed = 7;
  const auto schedule = sim::churn_schedule(ccfg);

  auto cfg = service_config();
  cfg.dyn_lease = ccfg.lease;

  std::vector<std::uint32_t> addr_of(ccfg.sessions, 0);
  std::uint64_t journal_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Neutralizer service(cfg, root_key());
    service.dynamic_allocator()->reserve(ccfg.sessions);
    std::fill(addr_of.begin(), addr_of.end(), 0);
    persist::NullSink sink;
    persist::ControlJournal journal(sink);
    state.ResumeTiming();

    for (const auto& ev : schedule) {
      service.expire_dynamic_sessions(ev.at);
      switch (ev.kind) {
        case sim::SessionEvent::Kind::kArrive: {
          net::ShimHeader shim;
          shim.type = net::ShimType::kDynAddrRequest;
          shim.nonce = ev.session;
          const net::Ipv4Addr customer(
              0x14000000 + static_cast<std::uint32_t>(ev.session & 0xFFFF));
          if (journaled) journal.arrive(customer, ev.session, ev.at);
          auto resp = service.process(
              net::make_shim_packet(customer, kAnycast, shim, {}), ev.at);
          if (resp.has_value()) {
            const auto parsed = net::parse_packet(resp->view());
            ByteReader r(parsed.payload);
            addr_of[ev.session] = r.u32();
          }
          break;
        }
        case sim::SessionEvent::Kind::kRenew:
          if (addr_of[ev.session] != 0) {
            const net::Ipv4Addr dyn(addr_of[ev.session]);
            if (service.renew_dynamic(dyn, ev.at) && journaled) {
              journal.renew(dyn, ev.at);
            }
          }
          break;
        case sim::SessionEvent::Kind::kDepart:
          if (addr_of[ev.session] != 0) {
            const net::Ipv4Addr dyn(addr_of[ev.session]);
            if (service.release_dynamic(dyn) && journaled) {
              journal.depart(dyn, ev.at);
            }
            addr_of[ev.session] = 0;
          }
          break;
        case sim::SessionEvent::Kind::kRekeyStorm:
          service.rekey_dynamic_sessions(ev.at);
          if (journaled) journal.rekey_storm(ev.at);
          break;
      }
      if (journaled) journal.commit();
    }
    journal_bytes = journal.writer().bytes_written();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(schedule.size()));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(schedule.size()),
      benchmark::Counter::kIsRate);
  if (journaled) {
    state.counters["journal_bytes_per_event"] =
        static_cast<double>(journal_bytes) /
        static_cast<double>(schedule.size());
  }
}

void BM_SessionChurnPlain(benchmark::State& state) {
  run_churn(state, /*journaled=*/false);
}
void BM_SessionChurnJournaled(benchmark::State& state) {
  run_churn(state, /*journaled=*/true);
}
BENCHMARK(BM_SessionChurnPlain)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SessionChurnJournaled)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
