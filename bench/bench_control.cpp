// Control-plane scale (§3.2 + §3.4): key-setup throughput through the
// batched prepass, session churn through the dynamic-address control
// plane, and the epoch-rekey storm over a million resident sessions.
//
// Headline counters (gated by tools/bench_compare.py):
//   * BM_KeySetupBatch/64      — setups/sec through process_batch
//   * BM_RekeyStorm/1048576    — sessions rekeyed/sec at 1M resident,
//                                with storm_allocs (must stay 0: the
//                                storm is allocation-free) and
//                                bytes_per_session (capped relative to
//                                the baseline — the memory ceiling).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/neutralizer.hpp"
#include "crypto/chacha.hpp"
#include "net/shim.hpp"
#include "sim/session_churn.hpp"
#include "util/bytes.hpp"

// ---- global allocation counter ----------------------------------------
// Counts every operator-new in the process; benchmarks snapshot it
// around their hot region. Same technique as the churn soak test.
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace nn;

const net::Ipv4Addr kAnycast(200, 0, 0, 1);

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

// ---- key-setup throughput ---------------------------------------------
// N distinct-source setups per batch: every packet takes the minting
// prepass (batched CMAC) and the scratch-arena RSA path. This is the
// "setups/sec per shard" headline — shards share nothing, so a cluster
// multiplies it by the shard count.
void BM_KeySetupBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  crypto::ChaChaRng rng(1);
  const auto onetime = crypto::rsa_generate(rng, 512, 3);
  const auto pub = onetime.pub.serialize();
  core::Neutralizer service(service_config(), root_key());

  std::vector<net::Packet> templates;
  templates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::ShimHeader shim;
    shim.type = net::ShimType::kKeySetup;
    shim.nonce = 0x42 + i;
    templates.push_back(net::make_shim_packet(
        net::Ipv4Addr(static_cast<std::uint32_t>(0x0A010000 + i)), kAnycast,
        shim, pub));
  }

  std::vector<net::Packet> batch;
  batch.reserve(n);
  net::PacketArena arena;
  for (auto _ : state) {
    batch.clear();
    for (const auto& t : templates) batch.push_back(t);
    const std::size_t out =
        service.process_batch({batch.data(), batch.size()}, 0, &arena);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.counters["setups_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KeySetupBatch)->Arg(64)->Arg(256);

// ---- session churn ----------------------------------------------------
// Replays a churn_schedule against the real control plane: arrivals are
// full kDynAddrRequest packets through Neutralizer::process, renewals
// and departures hit the control APIs, storms rekey the population, and
// every event runs the lease collector — the same event loop the Fig. 1
// scenario drives, minus the simulated topology.
void BM_SessionChurn(benchmark::State& state) {
  sim::SessionChurnConfig ccfg;
  ccfg.sessions = static_cast<std::size_t>(state.range(0));
  ccfg.arrivals_per_second = 2e6;
  ccfg.poisson = true;
  ccfg.lease = 2 * sim::kMillisecond;
  ccfg.renew_probability = 0.6;
  ccfg.max_renewals = 3;
  ccfg.rekey_interval = 5 * sim::kMillisecond;
  ccfg.horizon = 50 * sim::kMillisecond;
  ccfg.seed = 7;
  const auto schedule = sim::churn_schedule(ccfg);

  auto cfg = service_config();
  cfg.dynamic_pool = net::Ipv4Prefix::from_string("100.64.0.0/10");
  cfg.dyn_lease = ccfg.lease;

  std::vector<std::uint32_t> addr_of(ccfg.sessions, 0);
  std::size_t peak = 0;
  std::size_t pool_bytes = 0;
  double load_factor = 0;
  std::size_t max_probe = 0;
  std::uint64_t rehashes = 0;
  std::size_t table_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Neutralizer service(cfg, root_key());
    service.dynamic_allocator()->reserve(ccfg.sessions);
    std::fill(addr_of.begin(), addr_of.end(), 0);
    state.ResumeTiming();

    for (const auto& ev : schedule) {
      service.expire_dynamic_sessions(ev.at);
      switch (ev.kind) {
        case sim::SessionEvent::Kind::kArrive: {
          net::ShimHeader shim;
          shim.type = net::ShimType::kDynAddrRequest;
          shim.nonce = ev.session;
          auto resp = service.process(
              net::make_shim_packet(
                  net::Ipv4Addr(0x14000000 +
                                static_cast<std::uint32_t>(ev.session & 0xFFFF)),
                  kAnycast, shim, {}),
              ev.at);
          if (resp.has_value()) {
            const auto parsed = net::parse_packet(resp->view());
            ByteReader r(parsed.payload);
            addr_of[ev.session] = r.u32();
          }
          break;
        }
        case sim::SessionEvent::Kind::kRenew:
          if (addr_of[ev.session] != 0) {
            service.renew_dynamic(net::Ipv4Addr(addr_of[ev.session]), ev.at);
          }
          break;
        case sim::SessionEvent::Kind::kDepart:
          if (addr_of[ev.session] != 0) {
            service.release_dynamic(net::Ipv4Addr(addr_of[ev.session]));
            addr_of[ev.session] = 0;
          }
          break;
        case sim::SessionEvent::Kind::kRekeyStorm:
          service.rekey_dynamic_sessions(ev.at);
          break;
      }
      peak = std::max(peak, service.dynamic_sessions());
    }
    const auto* alloc = service.dynamic_allocator();
    pool_bytes = alloc->memory_bytes();
    load_factor = alloc->table().load_factor();
    max_probe = alloc->table().max_probe_length();
    rehashes = alloc->table().stats().rehashes;
    table_bytes = alloc->table().memory_bytes();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(schedule.size()));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(schedule.size()),
      benchmark::Counter::kIsRate);
  state.counters["sessions_peak"] = static_cast<double>(peak);
  if (peak > 0) {
    state.counters["bytes_per_session"] =
        static_cast<double>(pool_bytes) / static_cast<double>(peak);
  }
  // Table-depth diagnostics (end-of-run): occupancy, worst probe chain,
  // and load-forced rehashes (reserve() pre-sizes, so this reads 0 —
  // the compare tool holds it there).
  state.counters["table_load_factor"] = load_factor;
  state.counters["table_max_probe"] = static_cast<double>(max_probe);
  state.counters["table_rehashes"] = static_cast<double>(rehashes);
  state.counters["table_memory_bytes"] = static_cast<double>(table_bytes);
}
BENCHMARK(BM_SessionChurn)->Arg(20000)->Unit(benchmark::kMillisecond);

// ---- the million-session rekey storm ----------------------------------
// Builds the resident population once, then measures full-population
// epoch rekeys: every iteration advances the master-key epoch and
// re-derives all N session keys through the batched key-derivation
// seam. storm_allocs counts operator-new calls inside the timed region
// (gated to 0 — the storm must be allocation-free at any population);
// bytes_per_session is the resident footprint the compare tool caps.
void BM_RekeyStorm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto cfg = service_config();
  cfg.dynamic_pool = net::Ipv4Prefix::from_string("10.0.0.0/8");
  core::Neutralizer service(cfg, root_key());
  auto* alloc = service.dynamic_allocator();
  alloc->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    alloc->allocate(
        net::Ipv4Addr(0x14000000 + static_cast<std::uint32_t>(i & 0xFFFF)));
  }

  const sim::SimTime rotation = service.config().rotation_period;
  sim::SimTime now = rotation;
  // Warm the derivation scratch (first storm may size buffers).
  service.rekey_dynamic_sessions(now);

  std::uint64_t rekeyed = 0;
  std::uint64_t storm_allocs = 0;
  for (auto _ : state) {
    now += rotation;  // next epoch: every resident session is stale
    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    rekeyed += service.rekey_dynamic_sessions(now);
    storm_allocs +=
        g_news.load(std::memory_order_relaxed) - before;
  }
  state.SetItemsProcessed(static_cast<int64_t>(rekeyed));
  state.counters["sessions_resident"] =
      static_cast<double>(service.dynamic_sessions());
  state.counters["storm_allocs"] = static_cast<double>(storm_allocs);
  state.counters["bytes_per_session"] =
      static_cast<double>(alloc->memory_bytes()) / static_cast<double>(n);
  state.counters["table_load_factor"] = alloc->table().load_factor();
  state.counters["table_max_probe"] =
      static_cast<double>(alloc->table().max_probe_length());
  state.counters["table_rehashes"] =
      static_cast<double>(alloc->table().stats().rehashes);
  state.counters["table_memory_bytes"] =
      static_cast<double>(alloc->table().memory_bytes());
}
BENCHMARK(BM_RekeyStorm)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

}  // namespace
