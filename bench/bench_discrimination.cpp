// E5 — "a discriminatory ISP cannot deterministically harm a
// competitor's service" (paper §1/§3, Fig. 1 scenario).
//
// AT&T tries to degrade the VoIP service Vonage sells to AT&T's own
// customer Ann, using progressively weaker handles as defenses come up:
//   plain        — DPI on the SIP signature + destination address: works.
//   e2e_only     — contents hidden, but dst = Vonage still matches: works.
//   neutralized  — dst is Cogent's anycast address: nothing matches;
//                  only the blunt "throttle all of Cogent" remains,
//                  which also hurts AT&T's relationship with every other
//                  Cogent destination (the paper's intended end state).
//
// Reported per variant: received packets, mean latency, loss, MOS.
// Expected shape: MOS(plain) ≈ MOS(e2e) ≪ MOS(neutralized), and
// rule-hit counters showing WHY (which classifier still fires).
#include <benchmark/benchmark.h>

#include "discrim/policy.hpp"
#include "scenario/fig1.hpp"

namespace {

using namespace nn;
using scenario::Fig1;
using scenario::VoipMode;

std::shared_ptr<discrim::DiscriminationPolicy> att_anti_vonage_policy() {
  auto policy = std::make_shared<discrim::DiscriminationPolicy>(
      "att-anti-vonage", /*seed=*/11);
  // Rule 1: DPI — SIP/RTP signatures toward the competitor (AT&T's own
  // VoIP must keep working, so the rule is scoped to Vonage).
  auto dpi = discrim::MatchCriteria::against_signature("SIP/2.0");
  dpi.dst_prefix = net::Ipv4Prefix(scenario::kVonageAddr, 32);
  policy->add_rule("dpi-sip-to-vonage", dpi,
                   discrim::DiscriminationAction::degrade(
                       0.25, 60 * sim::kMillisecond));
  // Rule 2: address-based — all traffic to/from Vonage's published IP.
  auto to_vonage = discrim::MatchCriteria::against_destination(
      net::Ipv4Prefix(scenario::kVonageAddr, 32));
  policy->add_rule("dst-vonage", to_vonage,
                   discrim::DiscriminationAction::degrade(
                       0.25, 60 * sim::kMillisecond));
  auto from_vonage = discrim::MatchCriteria::against_source(
      net::Ipv4Prefix(scenario::kVonageAddr, 32));
  policy->add_rule("src-vonage", from_vonage,
                   discrim::DiscriminationAction::degrade(
                       0.25, 60 * sim::kMillisecond));
  return policy;
}

void report(benchmark::State& state, const Fig1::FlowResult& r,
            const discrim::DiscriminationPolicy& policy) {
  state.counters["received"] = static_cast<double>(r.received);
  state.counters["mean_ms"] = r.mean_latency_ms;
  state.counters["loss_pct"] = r.loss * 100.0;
  state.counters["mos"] = r.mos;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < policy.rule_count(); ++i) {
    hits += policy.rule_stats(i).hits;
  }
  state.counters["rule_hits"] = static_cast<double>(hits);
}

void run_variant(benchmark::State& state, VoipMode mode) {
  for (auto _ : state) {
    Fig1 fig;
    auto policy = att_anti_vonage_policy();
    fig.att->apply_policy(policy);
    const auto result =
        fig.run_voip(mode, fig.ann, fig.vonage, 1, /*pps=*/50,
                     /*start=*/sim::kSecond, /*duration=*/10 * sim::kSecond);
    report(state, result, *policy);
  }
}

void BM_VoipPlain(benchmark::State& state) {
  run_variant(state, VoipMode::kPlain);
}
BENCHMARK(BM_VoipPlain)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_VoipE2eOnly(benchmark::State& state) {
  run_variant(state, VoipMode::kE2eOnly);
}
BENCHMARK(BM_VoipE2eOnly)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_VoipNeutralized(benchmark::State& state) {
  run_variant(state, VoipMode::kNeutralized);
}
BENCHMARK(BM_VoipNeutralized)->Iterations(1)->Unit(benchmark::kMillisecond);

// The §3.6 residual: AT&T can still throttle *all* traffic toward the
// neutral ISP (customers' and neutralizer's addresses). That degrades
// Vonage — but identically degrades Ann's traffic to every other Cogent
// site, so it is no longer *targeted* harm. We measure both the victim
// and an innocent flow (Ann -> Google) under the blunt rule.
void BM_VoipNeutralizedBluntThrottle(benchmark::State& state) {
  for (auto _ : state) {
    Fig1 fig;
    auto policy = std::make_shared<discrim::DiscriminationPolicy>(
        "att-blunt", 13);
    discrim::MatchCriteria all_cogent;
    all_cogent.dst_prefix = net::Ipv4Prefix(scenario::kAnycast, 8);
    policy->add_rule("all-cogent", all_cogent,
                     discrim::DiscriminationAction::degrade(
                         0.15, 40 * sim::kMillisecond));
    fig.att->apply_policy(policy);

    const auto victim =
        fig.run_voip(VoipMode::kNeutralized, fig.ann, fig.vonage, 1, 50,
                     sim::kSecond, 10 * sim::kSecond);
    const auto innocent =
        fig.run_voip(VoipMode::kNeutralized, fig.bob, fig.google, 2, 50,
                     fig.engine.now(), 10 * sim::kSecond);
    state.counters["victim_mos"] = victim.mos;
    state.counters["innocent_mos"] = innocent.mos;
    state.counters["victim_loss_pct"] = victim.loss * 100;
    state.counters["innocent_loss_pct"] = innocent.loss * 100;
  }
}
BENCHMARK(BM_VoipNeutralizedBluntThrottle)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Control: AT&T's own VoIP offering rides clean either way — the
// asymmetry that motivates the paper ("give a high priority service to
// their own VoIP service and intentionally slow down a competitor's").
void BM_VoipAttOwnService(benchmark::State& state) {
  for (auto _ : state) {
    Fig1 fig;
    auto policy = att_anti_vonage_policy();
    fig.att->apply_policy(policy);
    const auto result =
        fig.run_voip(VoipMode::kPlain, fig.ann, fig.att_voip, 3, 50,
                     sim::kSecond, 10 * sim::kSecond, 60);
    report(state, result, *policy);
  }
}
BENCHMARK(BM_VoipAttOwnService)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
