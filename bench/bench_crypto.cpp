// E3 — raw cryptographic operation rates (paper §4: "Our openssl speed
// tests show that the CPU of the neutralizer can perform the
// cryptographic operations at 2.35 million per second").
//
// Reproduces the `openssl speed` analog for every primitive on the
// neutralizer datapath. Absolute rates are hardware-dependent; the
// *shape* the paper relies on is (a) symmetric ops in the millions/sec,
// (b) RSA-512 e=3 encryption orders of magnitude cheaper than RSA
// decryption, (c) decryption cost pushed to the source.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>  // __rdtsc for bytes/cycle reporting
#endif

#include "crypto/aes_backend.hpp"
#include "crypto/aes_modes.hpp"
#include "crypto/chacha.hpp"
#include "crypto/rsa.hpp"

namespace {

using namespace nn;
using namespace nn::crypto;

AesKey bench_key() {
  AesKey k;
  k.fill(0x42);
  return k;
}

void BM_AesBlockEncrypt(benchmark::State& state) {
  const Aes128 aes(bench_key());
  AesBlock block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesBlockEncrypt);

void BM_AesBlockDecrypt(benchmark::State& state) {
  const Aes128 aes(bench_key());
  AesBlock block{};
  for (auto _ : state) {
    block = aes.decrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesBlockDecrypt);

// The neutralizer's per-packet "hash": Ks = CMAC(KM, nonce ‖ srcIP).
void BM_DeriveSourceKey(benchmark::State& state) {
  const AesKey km = bench_key();
  std::uint64_t nonce = 1;
  for (auto _ : state) {
    auto ks = derive_source_key(km, nonce++, 0x0A010002);
    benchmark::DoNotOptimize(ks);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DeriveSourceKey);

// The neutralizer's per-packet address decrypt (4-byte AES-CTR).
void BM_CryptAddress(benchmark::State& state) {
  const AesKey ks = bench_key();
  std::uint32_t addr = 0x14000001;
  for (auto _ : state) {
    addr = crypt_address(ks, 7, false, addr);
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CryptAddress);

void BM_Cmac64Bytes(benchmark::State& state) {
  const Cmac cmac(bench_key());
  std::vector<std::uint8_t> msg(64, 0x5A);
  for (auto _ : state) {
    auto tag = cmac.mac(msg);
    benchmark::DoNotOptimize(tag);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Cmac64Bytes);

void BM_ChaCha20Block(benchmark::State& state) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  std::array<std::uint8_t, 64> out{};
  std::uint32_t ctr = 0;
  for (auto _ : state) {
    chacha20_block(key, ctr++, nonce, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ChaCha20Block);

// RSA-512 e=3 encryption: the neutralizer's per-key-setup cost ("as few
// as two multiplications", §3.2).
void BM_Rsa512EncryptE3(benchmark::State& state) {
  ChaChaRng rng(1);
  const auto key = rsa_generate(rng, 512, 3);
  const BigUInt m = BigUInt::random_below(rng, key.pub.n);
  for (auto _ : state) {
    auto c = rsa_public_op(key.pub, m);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa512EncryptE3);

// RSA-512 decryption: the *source's* cost, deliberately the heavy side.
void BM_Rsa512DecryptCrt(benchmark::State& state) {
  ChaChaRng rng(2);
  const auto key = rsa_generate(rng, 512, 3);
  const RsaDecryptor dec(key);
  const BigUInt c = rsa_public_op(key.pub, BigUInt{123456789});
  for (auto _ : state) {
    auto m = dec.private_op(c);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa512DecryptCrt);

void BM_Rsa1024EncryptE3(benchmark::State& state) {
  ChaChaRng rng(3);
  const auto key = rsa_generate(rng, 1024, 3);
  const BigUInt m = BigUInt::random_below(rng, key.pub.n);
  for (auto _ : state) {
    auto c = rsa_public_op(key.pub, m);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa1024EncryptE3);

void BM_Rsa1024DecryptCrt(benchmark::State& state) {
  ChaChaRng rng(4);
  const auto key = rsa_generate(rng, 1024, 3);
  const RsaDecryptor dec(key);
  const BigUInt c = rsa_public_op(key.pub, BigUInt{987654321});
  for (auto _ : state) {
    auto m = dec.private_op(c);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa1024DecryptCrt);

// --- portable vs accelerated backend comparison ----------------------
//
// Registered once per backend available on this machine (suffix
// /portable, /aesni), so a single run shows the hardware speedup
// directly. Counters: items/s, bytes/s, and — on x86 — bytes/cycle via
// rdtsc, the unit kernel-crypto papers quote.

std::uint64_t read_tsc() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return 0;
#endif
}

void set_cycle_counter(benchmark::State& state, std::uint64_t cycles,
                       std::int64_t bytes) {
  if (cycles > 0) {
    state.counters["bytes_per_cycle"] = benchmark::Counter(
        static_cast<double>(bytes) / static_cast<double>(cycles));
  }
}

// Single-block latency: one block serializes on the AES round chain.
void BM_BackendBlockEncrypt(benchmark::State& state,
                            const AesBackendOps* ops) {
  const Aes128 aes(bench_key(), *ops);
  AesBlock block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Batched ECB throughput: 64 independent blocks per call, the shape of
// batched key derivation. Accelerated backends keep 8 in flight.
void BM_BackendEcbBatch(benchmark::State& state, const AesBackendOps* ops) {
  const Aes128 aes(bench_key(), *ops);
  constexpr std::size_t kBlocks = 64;
  std::vector<std::uint8_t> buf(16 * kBlocks, 0x5A);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const std::uint64_t t0 = read_tsc();
    aes.encrypt_blocks(buf.data(), buf.data(), kBlocks);
    cycles += read_tsc() - t0;
    benchmark::DoNotOptimize(buf.data());
  }
  const auto bytes =
      static_cast<int64_t>(state.iterations()) * 16 * kBlocks;
  state.SetBytesProcessed(bytes);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBlocks);
  set_cycle_counter(state, cycles, bytes);
}

// The acceptance workload: a batch of 64 paper-sized (112-byte) blobs,
// each CMAC-verified and CBC-decrypted — the symmetric cost of a
// neutralizer batch with whole-payload crypto. CMAC pipelines across
// the batch (64 lanes), CBC decrypt within each item (7 blocks).
void BM_BackendCbcDecryptCmac112(benchmark::State& state,
                                 const AesBackendOps* ops) {
  constexpr std::size_t kBatch = 64;
  constexpr std::size_t kMsgBytes = 112;
  const Cmac cmac(bench_key(), *ops);
  const Cbc cbc(bench_key(), *ops);
  std::vector<std::uint8_t> msgs(kBatch * kMsgBytes, 0xE5);
  std::vector<AesBlock> tags(kBatch);
  AesBlock iv{};
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const std::uint64_t t0 = read_tsc();
    cmac.mac_batch(msgs.data(), kMsgBytes, kBatch, tags.data());
    for (std::size_t i = 0; i < kBatch; ++i) {
      cbc.decrypt(iv, {msgs.data() + i * kMsgBytes, kMsgBytes});
    }
    cycles += read_tsc() - t0;
    benchmark::DoNotOptimize(tags.data());
    benchmark::DoNotOptimize(msgs.data());
  }
  const auto bytes = static_cast<int64_t>(state.iterations()) *
                     static_cast<int64_t>(kBatch * kMsgBytes);
  state.SetBytesProcessed(bytes);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
  set_cycle_counter(state, cycles, bytes);
}

// Batched per-source key derivation, the datapath prepass primitive.
void BM_BackendDeriveKeysBatch(benchmark::State& state,
                               const AesBackendOps* ops) {
  constexpr std::size_t kBatch = 64;
  const Cmac keyed(bench_key(), *ops);
  std::vector<KeyDeriveRequest> reqs(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    reqs[i] = {0x1122334455667700ULL + i,
               0x0A010000u + static_cast<std::uint32_t>(i), false};
  }
  std::vector<AesKey> keys(kBatch);
  for (auto _ : state) {
    derive_keys_batch(keyed, reqs, keys.data());
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
}

void register_backend_benches() {
  for (const AesBackendOps* ops : nn::crypto::available_backends()) {
    const std::string suffix = "/" + std::string(ops->name);
    benchmark::RegisterBenchmark(("BM_BackendBlockEncrypt" + suffix).c_str(),
                                 BM_BackendBlockEncrypt, ops);
    benchmark::RegisterBenchmark(("BM_BackendEcbBatch" + suffix).c_str(),
                                 BM_BackendEcbBatch, ops);
    benchmark::RegisterBenchmark(
        ("BM_BackendCbcDecryptCmac112" + suffix).c_str(),
        BM_BackendCbcDecryptCmac112, ops);
    benchmark::RegisterBenchmark(
        ("BM_BackendDeriveKeysBatch" + suffix).c_str(),
        BM_BackendDeriveKeysBatch, ops);
  }
}
[[maybe_unused]] const int kBackendBenchesRegistered =
    (register_backend_benches(), 0);

// One-time key generation: the source pays this once per key setup.
void BM_Rsa512KeyGen(benchmark::State& state) {
  ChaChaRng rng(5);
  for (auto _ : state) {
    auto key = rsa_generate(rng, 512, 3);
    benchmark::DoNotOptimize(key);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa512KeyGen)->Unit(benchmark::kMillisecond);

}  // namespace
