// E3 — raw cryptographic operation rates (paper §4: "Our openssl speed
// tests show that the CPU of the neutralizer can perform the
// cryptographic operations at 2.35 million per second").
//
// Reproduces the `openssl speed` analog for every primitive on the
// neutralizer datapath. Absolute rates are hardware-dependent; the
// *shape* the paper relies on is (a) symmetric ops in the millions/sec,
// (b) RSA-512 e=3 encryption orders of magnitude cheaper than RSA
// decryption, (c) decryption cost pushed to the source.
#include <benchmark/benchmark.h>

#include "crypto/aes_modes.hpp"
#include "crypto/chacha.hpp"
#include "crypto/rsa.hpp"

namespace {

using namespace nn;
using namespace nn::crypto;

AesKey bench_key() {
  AesKey k;
  k.fill(0x42);
  return k;
}

void BM_AesBlockEncrypt(benchmark::State& state) {
  const Aes128 aes(bench_key());
  AesBlock block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesBlockEncrypt);

void BM_AesBlockDecrypt(benchmark::State& state) {
  const Aes128 aes(bench_key());
  AesBlock block{};
  for (auto _ : state) {
    block = aes.decrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesBlockDecrypt);

// The neutralizer's per-packet "hash": Ks = CMAC(KM, nonce ‖ srcIP).
void BM_DeriveSourceKey(benchmark::State& state) {
  const AesKey km = bench_key();
  std::uint64_t nonce = 1;
  for (auto _ : state) {
    auto ks = derive_source_key(km, nonce++, 0x0A010002);
    benchmark::DoNotOptimize(ks);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DeriveSourceKey);

// The neutralizer's per-packet address decrypt (4-byte AES-CTR).
void BM_CryptAddress(benchmark::State& state) {
  const AesKey ks = bench_key();
  std::uint32_t addr = 0x14000001;
  for (auto _ : state) {
    addr = crypt_address(ks, 7, false, addr);
    benchmark::DoNotOptimize(addr);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CryptAddress);

void BM_Cmac64Bytes(benchmark::State& state) {
  const Cmac cmac(bench_key());
  std::vector<std::uint8_t> msg(64, 0x5A);
  for (auto _ : state) {
    auto tag = cmac.mac(msg);
    benchmark::DoNotOptimize(tag);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Cmac64Bytes);

void BM_ChaCha20Block(benchmark::State& state) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  std::array<std::uint8_t, 64> out{};
  std::uint32_t ctr = 0;
  for (auto _ : state) {
    chacha20_block(key, ctr++, nonce, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ChaCha20Block);

// RSA-512 e=3 encryption: the neutralizer's per-key-setup cost ("as few
// as two multiplications", §3.2).
void BM_Rsa512EncryptE3(benchmark::State& state) {
  ChaChaRng rng(1);
  const auto key = rsa_generate(rng, 512, 3);
  const BigUInt m = BigUInt::random_below(rng, key.pub.n);
  for (auto _ : state) {
    auto c = rsa_public_op(key.pub, m);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa512EncryptE3);

// RSA-512 decryption: the *source's* cost, deliberately the heavy side.
void BM_Rsa512DecryptCrt(benchmark::State& state) {
  ChaChaRng rng(2);
  const auto key = rsa_generate(rng, 512, 3);
  const RsaDecryptor dec(key);
  const BigUInt c = rsa_public_op(key.pub, BigUInt{123456789});
  for (auto _ : state) {
    auto m = dec.private_op(c);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa512DecryptCrt);

void BM_Rsa1024EncryptE3(benchmark::State& state) {
  ChaChaRng rng(3);
  const auto key = rsa_generate(rng, 1024, 3);
  const BigUInt m = BigUInt::random_below(rng, key.pub.n);
  for (auto _ : state) {
    auto c = rsa_public_op(key.pub, m);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa1024EncryptE3);

void BM_Rsa1024DecryptCrt(benchmark::State& state) {
  ChaChaRng rng(4);
  const auto key = rsa_generate(rng, 1024, 3);
  const RsaDecryptor dec(key);
  const BigUInt c = rsa_public_op(key.pub, BigUInt{987654321});
  for (auto _ : state) {
    auto m = dec.private_op(c);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa1024DecryptCrt);

// One-time key generation: the source pays this once per key setup.
void BM_Rsa512KeyGen(benchmark::State& state) {
  ChaChaRng rng(5);
  for (auto _ : state) {
    auto key = rsa_generate(rng, 512, 3);
    benchmark::DoNotOptimize(key);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Rsa512KeyGen)->Unit(benchmark::kMillisecond);

}  // namespace
