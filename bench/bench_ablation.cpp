// E8 — ablations of the §3.2 design choices.
//
//  (a) Stateless recompute vs stateful table: per-packet datapath cost
//      and state bytes as sources grow. The stateless design pays one
//      CMAC per packet; the stateful one pays a hash lookup but holds
//      per-source memory and cannot fail over.
//  (b) The rejected alternative key setup ("lets a source encrypt a
//      destination address using a neutralizer's public key"): the
//      neutralizer would perform an RSA *decryption* per setup, which
//      cannot be offloaded. Measured as setups/sec of both designs.
#include <benchmark/benchmark.h>

#include "baseline/stateful.hpp"
#include "core/box.hpp"
#include "core/neutralizer.hpp"
#include "crypto/chacha.hpp"
#include "net/shim.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"

namespace {

using namespace nn;

const net::Ipv4Addr kAnycast(200, 0, 0, 1);
const net::Ipv4Addr kAnn(10, 1, 0, 2);
const net::Ipv4Addr kGoogle(20, 0, 0, 10);

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

net::Packet forward_packet(std::uint64_t nonce, const crypto::AesKey& ks) {
  net::ShimHeader shim;
  shim.type = net::ShimType::kDataForward;
  shim.nonce = nonce;
  shim.inner_addr = crypto::crypt_address(ks, nonce, false, kGoogle.value());
  return net::make_shim_packet(kAnn, kAnycast, shim,
                               std::vector<std::uint8_t>(76, 0xE5));
}

// (a) stateless datapath --------------------------------------------------

void BM_DatapathStateless(benchmark::State& state) {
  core::Neutralizer service(service_config(), root_key());
  const core::MasterKeySchedule sched(root_key());
  const std::uint64_t nonce = 7;
  const auto ks =
      crypto::derive_source_key(sched.current_key(0), nonce, kAnn.value());
  const auto packet = forward_packet(nonce, ks);
  for (auto _ : state) {
    auto copy = packet;
    benchmark::DoNotOptimize(service.process(std::move(copy), 0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["state_bytes"] = static_cast<double>(sizeof(crypto::AesKey));
}
BENCHMARK(BM_DatapathStateless);

// (a) stateful datapath, table pre-populated with `Arg` sources.
void BM_DatapathStateful(benchmark::State& state) {
  baseline::StatefulNeutralizer service(service_config());
  crypto::ChaChaRng rng(1);
  const auto onetime = crypto::rsa_generate(rng, 512, 3);

  auto do_setup = [&](net::Ipv4Addr src) {
    net::ShimHeader shim;
    shim.type = net::ShimType::kKeySetup;
    shim.nonce = 1;
    auto resp = service.process(
        net::make_shim_packet(src, kAnycast, shim, onetime.pub.serialize()),
        0);
    const auto parsed = net::parse_packet(resp->view());
    const auto plain = crypto::rsa_decrypt(onetime, parsed.payload);
    ByteReader r(*plain);
    const std::uint64_t nonce = r.u64();
    crypto::AesKey ks{};
    const auto key = r.take(16);
    std::copy(key.begin(), key.end(), ks.begin());
    return std::pair(nonce, ks);
  };

  const auto sources = static_cast<std::uint32_t>(state.range(0));
  std::pair<std::uint64_t, crypto::AesKey> ann_key{};
  for (std::uint32_t i = 0; i < sources; ++i) {
    const net::Ipv4Addr src(0x0A010000u + i);
    const auto key = do_setup(src);
    if (src == kAnn) ann_key = key;
  }
  const auto packet = forward_packet(ann_key.first, ann_key.second);
  for (auto _ : state) {
    auto copy = packet;
    benchmark::DoNotOptimize(service.process(std::move(copy), 0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["state_bytes"] = static_cast<double>(service.state_bytes());
  state.counters["table_entries"] =
      static_cast<double>(service.table_entries());
}
BENCHMARK(BM_DatapathStateful)->Arg(3)->Arg(1000)->Arg(100000);

// (b) chosen vs rejected key-setup design ----------------------------------

// Chosen: neutralizer RSA-*encrypts* under the source's one-time key.
void BM_SetupChosenDesign(benchmark::State& state) {
  crypto::ChaChaRng rng(2);
  const auto onetime = crypto::rsa_generate(rng, 512, 3);
  core::Neutralizer service(service_config(), root_key());
  net::ShimHeader shim;
  shim.type = net::ShimType::kKeySetup;
  shim.nonce = 0x42;
  const auto packet =
      net::make_shim_packet(kAnn, kAnycast, shim, onetime.pub.serialize());
  for (auto _ : state) {
    auto copy = packet;
    benchmark::DoNotOptimize(service.process(std::move(copy), 0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SetupChosenDesign);

// (c) What does neutralizer processing cost an application end to end?
// Box service times are charged per packet in the simulator at the
// rates measured by bench_datapath/bench_keysetup, and compared with a
// zero-cost box. The paper's implicit claim — middlebox crypto is
// negligible against network latency — gets a number.
void BM_EndToEndLatencyVsBoxCost(benchmark::State& state) {
  // Charged costs: measured ~1.5 us/data packet, ~4 us/key setup,
  // scaled by Arg (0 = free box, 1 = measured, 10 = a 10x slower box).
  const auto scale = static_cast<sim::SimTime>(state.range(0));
  for (auto _ : state) {
    // Local include-free mini-run to keep this binary scenario-free:
    // measure through the raw box on a 3-node chain instead.
    sim::Engine engine;
    sim::Network net(engine);
    auto& src = net.add<sim::Host>("src");
    core::BoxCosts costs;
    costs.data_path = scale * 1500;  // ns
    costs.key_setup = scale * 4000;
    auto cfg = service_config();
    auto& box = net.add<core::NeutralizerBox>("box", cfg, root_key(), 1,
                                              costs);
    auto& dst = net.add<sim::Host>("dst");
    sim::LinkConfig link;
    link.propagation = 2 * sim::kMillisecond;
    net.connect(src, box, link);
    net.connect(box, dst, link);
    net.assign_address(src, kAnn);
    net.assign_address(dst, kGoogle);
    net.assign_address(box, net::Ipv4Addr(20, 0, 255, 1));
    box.join_service_anycast(net);
    net.compute_routes();

    const core::MasterKeySchedule sched(root_key());
    const std::uint64_t nonce = 7;
    const auto ks =
        crypto::derive_source_key(sched.current_key(0), nonce, kAnn.value());
    sim::SimTime arrival = -1;
    dst.set_handler([&](net::Packet&&) { arrival = engine.now(); });
    src.transmit(forward_packet(nonce, ks));
    engine.run();
    state.counters["one_way_ms"] =
        static_cast<double>(arrival) / static_cast<double>(sim::kMillisecond);
  }
}
BENCHMARK(BM_EndToEndLatencyVsBoxCost)
    ->Arg(0)
    ->Arg(1)
    ->Arg(10)
    ->Arg(1000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Rejected alternative: the neutralizer holds a certified key pair and
// RSA-*decrypts* each source's setup message. One decryption per setup,
// not offloadable. We model the per-setup cost with the neutralizer's
// own 1024-bit key (a certified service key would not be short-lived,
// so 512 bits would be unsafe here — another drawback).
void BM_SetupRejectedAlternative(benchmark::State& state) {
  crypto::ChaChaRng rng(3);
  const auto service_key = crypto::rsa_generate(rng, 1024, 3);
  const crypto::RsaDecryptor dec(service_key);
  // Source-encrypted (dst, key) blob, as the alternative would carry.
  std::vector<std::uint8_t> msg(20, 0xAB);
  const auto ct = crypto::rsa_encrypt(rng, service_key.pub, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decrypt(ct));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SetupRejectedAlternative);

}  // namespace
