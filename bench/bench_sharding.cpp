// Scaling benchmark for the sharded neutralizer cluster: 1/2/4/8
// shards draining batch-64 bursts of the paper's 112-byte data packets
// (the §4 workload) through per-shard process_batch + PacketArena.
//
// Shards share no mutable state — that is the point of the paper's
// stateless design — so a deployment runs one shard per core and the
// aggregate rate of the cluster is total packets over the *slowest*
// shard's time (the critical path). That is what BM_ShardedForward
// reports: each shard's drain is timed in isolation and the iteration
// time is the max across shards (UseManualTime), which measures the
// parallel deployment's throughput without depending on the harness
// machine's core count or a thread scheduler's mood. The workload is
// 256 flows spread by the same RSS-style hash the box uses, with every
// shard given an equal packet budget (the balanced case; the hash's
// actual spread is what bench consumers should watch via max_shard).
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "core/replay.hpp"
#include "core/sharded_box.hpp"
#include "net/arena.hpp"
#include "sim/trace_workload.hpp"

namespace {

using namespace nn;

const net::Ipv4Addr kAnycast(200, 0, 0, 1);
const net::Ipv4Addr kGoogle(20, 0, 0, 10);

constexpr std::size_t kBatch = 64;
constexpr std::size_t kFlows = 256;
constexpr std::size_t kPacketsPerIter = 65536;

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

/// Neutralized data packet for one flow at the given total wire size
/// (0 = the paper's 112 bytes: 20 IP + 12 shim + 4 inner addr + 76
/// payload). Shared mapping: core/replay.hpp.
net::Packet flow_packet(std::size_t flow, std::size_t wire_size = 0) {
  const core::MasterKeySchedule sched(root_key());
  return core::synth_forward_packet(sched, kAnycast, kGoogle,
                                    static_cast<std::uint16_t>(flow),
                                    wire_size == 0 ? 112 : wire_size,
                                    0x1122334455660000ULL);
}

net::Packet paper_packet(std::size_t flow) { return flow_packet(flow); }

/// Shared body for the fixed-size and IMIX scaling benchmarks; `imix`
/// swaps the uniform 112-byte templates for classic-IMIX-sized ones
/// (sizes drawn per flow, deterministic).
void sharded_forward_body(benchmark::State& state, bool imix) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  core::ShardedNeutralizer cluster(shards, service_config(), root_key());

  // IMIX sizes per flow: one deterministic draw over the classic mix.
  sim::ImixConfig icfg;
  icfg.flows = kFlows;
  icfg.packets_per_second = static_cast<double>(kFlows);
  icfg.duration = sim::kSecond;
  icfg.seed = 0x517;
  const auto draws = sim::imix_trace(icfg);

  // Flow templates, pre-partitioned by the box's own dispatch hash.
  std::vector<std::vector<net::Packet>> flows(shards);
  for (std::size_t f = 0; f < kFlows; ++f) {
    net::Packet pkt =
        imix ? flow_packet(f, draws[f % draws.size()].wire_size)
             : flow_packet(f);
    if (!imix && pkt.size() != 112) {
      state.SkipWithError("packet size != 112");
      return;
    }
    flows[cluster.shard_for(pkt)].push_back(std::move(pkt));
  }
  for (const auto& per_shard : flows) {
    if (per_shard.empty()) {
      state.SkipWithError("hash left a shard without flows");
      return;
    }
  }

  const std::size_t per_shard = kPacketsPerIter / shards;
  // Exact wire bytes one iteration pushes: each shard cycles its own
  // template list for per_shard packets (the hash spread is uneven, so
  // a global mean would misreport bytes/s).
  std::uint64_t iter_bytes = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t k = 0; k < per_shard; ++k) {
      iter_bytes += flows[s][k % flows[s].size()].size();
    }
  }

  std::vector<net::Packet> batch;
  batch.reserve(kBatch);
  for (auto _ : state) {
    double critical_path = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      auto& service = cluster.shard(s);
      auto& arena = cluster.arena(s);
      const auto& tmpls = flows[s];
      const auto start = std::chrono::steady_clock::now();
      std::size_t done = 0;
      while (done < per_shard) {
        const std::size_t n = std::min(kBatch, per_shard - done);
        for (std::size_t k = 0; k < n; ++k) {
          batch.push_back(arena.clone(tmpls[(done + k) % tmpls.size()]));
        }
        const std::size_t survivors =
            service.process_batch({batch.data(), batch.size()}, 0, &arena);
        benchmark::DoNotOptimize(survivors);
        for (std::size_t k = 0; k < survivors; ++k) {
          arena.release(std::move(batch[k]));
        }
        batch.clear();
        done += n;
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      critical_path = std::max(critical_path, elapsed.count());
    }
    state.SetIterationTime(critical_path);
  }
  const std::int64_t total =
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(per_shard * shards);
  state.SetItemsProcessed(total);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(state.iterations()) * iter_bytes));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(total) / 1e6, benchmark::Counter::kIsRate);
  state.counters["shards"] = static_cast<double>(shards);
}

void BM_ShardedForward(benchmark::State& state) {
  sharded_forward_body(state, false);
}
BENCHMARK(BM_ShardedForward)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseManualTime();

// Same critical-path measurement over the classic 7:4:1 IMIX: the
// realistic-mix headline now that the box sees variable-size traffic.
void BM_ShardedForwardImix(benchmark::State& state) {
  sharded_forward_body(state, true);
}
BENCHMARK(BM_ShardedForwardImix)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime();

// Dispatch overhead: the per-packet cost of the RSS-style hash the box
// pays before a batch is formed (it is a handful of ns — the point of
// measuring is keeping it honest as the hash evolves).
void BM_ShardDispatch(benchmark::State& state) {
  std::vector<net::Packet> packets;
  for (std::size_t f = 0; f < kFlows; ++f) packets.push_back(paper_packet(f));
  std::size_t i = 0;
  std::size_t acc = 0;
  for (auto _ : state) {
    acc += core::shard_for_packet(packets[i], 8);
    if (++i == packets.size()) i = 0;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardDispatch);

}  // namespace
