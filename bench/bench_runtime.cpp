// Wall-clock scaling benchmark for the threaded shard runtime: unlike
// bench_sharding — which times each shard's drain in isolation and
// reports the critical path, i.e. what an ideal parallel deployment
// *would* do — this benchmark actually runs the worker threads and
// measures aggregate Mpps end to end: dispatch hash, SPSC hand-off,
// per-worker process_batch, backpressure and all. On a machine with
// enough cores the 4-thread row should hold >= 2x the 1-thread row on
// the batch-64 112-byte workload (the PR's acceptance line); on a
// single-core host the rows collapse to ~1x and the interesting signal
// is that threading overhead stays small. context.num_cpus in the JSON
// output says which machine you are looking at (tools/bench_compare.py
// skips thread-scaling checks when cores < threads).
//
// Closed loop: survivors are recycled into the worker arenas
// (collect_egress=false), and each iteration's input packets are
// copied from per-flow templates outside the timed region.
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "core/replay.hpp"
#include "runtime/shard_runtime.hpp"
#include "sim/trace_workload.hpp"

namespace {

using namespace nn;

const net::Ipv4Addr kAnycast(200, 0, 0, 1);
const net::Ipv4Addr kGoogle(20, 0, 0, 10);

constexpr std::size_t kFlows = 256;
constexpr std::size_t kPacketsPerIter = 65536;

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

/// Per-flow neutralized templates: the paper's 112-byte packet, or
/// classic-IMIX sizes drawn per flow (same draw as bench_sharding).
std::vector<net::Packet> flow_templates(bool imix) {
  const core::MasterKeySchedule sched(root_key());
  sim::ImixConfig icfg;
  icfg.flows = kFlows;
  icfg.packets_per_second = static_cast<double>(kFlows);
  icfg.duration = sim::kSecond;
  icfg.seed = 0x517;
  const auto draws = sim::imix_trace(icfg);
  std::vector<net::Packet> tmpls;
  tmpls.reserve(kFlows);
  for (std::size_t f = 0; f < kFlows; ++f) {
    tmpls.push_back(core::synth_forward_packet(
        sched, kAnycast, kGoogle, static_cast<std::uint16_t>(f),
        imix ? draws[f % draws.size()].wire_size : 112,
        0x1122334455660000ULL));
  }
  return tmpls;
}

void runtime_forward_body(benchmark::State& state, bool imix) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  runtime::RuntimeOptions options;
  options.ring_capacity = 2048;
  options.max_batch = 64;
  options.collect_egress = false;  // closed loop: survivors recycle
  runtime::ShardRuntime runtime(threads, service_config(), root_key(),
                                options);

  const auto tmpls = flow_templates(imix);
  std::uint64_t iter_bytes = 0;
  for (std::size_t i = 0; i < kPacketsPerIter; ++i) {
    iter_bytes += tmpls[i % tmpls.size()].size();
  }

  std::vector<net::Packet> wave;
  wave.reserve(kPacketsPerIter);
  for (auto _ : state) {
    // Untimed: refill the wave from the templates (buffer copies only).
    wave.clear();
    for (std::size_t i = 0; i < kPacketsPerIter; ++i) {
      wave.push_back(net::Packet(tmpls[i % tmpls.size()]));
    }
    const auto start = std::chrono::steady_clock::now();
    for (auto& pkt : wave) {
      runtime.submit(std::move(pkt), 0);
    }
    runtime.flush();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(elapsed.count());
  }
  runtime.stop();
  if (runtime.aggregate_stats().data_forwarded !=
      state.iterations() * kPacketsPerIter) {
    state.SkipWithError("not every packet was forwarded");
    return;
  }

  const std::int64_t total = static_cast<std::int64_t>(state.iterations()) *
                             static_cast<std::int64_t>(kPacketsPerIter);
  state.SetItemsProcessed(total);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(state.iterations()) * iter_bytes));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(total) / 1e6, benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["blocked_waits"] = static_cast<double>(
      runtime.stats().total().blocked_waits);
}

void BM_RuntimeForward(benchmark::State& state) {
  runtime_forward_body(state, false);
}
BENCHMARK(BM_RuntimeForward)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseManualTime();

void BM_RuntimeForwardImix(benchmark::State& state) {
  runtime_forward_body(state, true);
}
BENCHMARK(BM_RuntimeForwardImix)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime();

// The dispatch + SPSC hand-off cost alone, with the consumer draining
// and discarding as fast as it can: the per-packet toll the dispatcher
// thread pays before any neutralization happens. Single worker so the
// number is a clean producer-side figure.
void BM_RuntimeDispatchHandoff(benchmark::State& state) {
  runtime::RuntimeOptions options;
  options.ring_capacity = 4096;
  options.collect_egress = false;
  core::NeutralizerConfig cfg = service_config();
  runtime::ShardRuntime runtime(1, cfg, root_key(), options);
  // Garbage packets (too short to parse) are rejected by the worker in
  // one branch — the measurement is the hand-off, not the datapath.
  const net::Packet junk{std::vector<std::uint8_t>(16, 0)};
  for (auto _ : state) {
    runtime.submit(net::Packet(junk), 0);
  }
  runtime.flush();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RuntimeDispatchHandoff);

}  // namespace
