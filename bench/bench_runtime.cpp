// Wall-clock scaling benchmark for the threaded shard runtime: unlike
// bench_sharding — which times each shard's drain in isolation and
// reports the critical path, i.e. what an ideal parallel deployment
// *would* do — this benchmark actually runs the worker threads and
// measures aggregate Mpps end to end: dispatch hash, SPSC hand-off,
// per-worker process_batch, backpressure and all.
//
// Three families:
//   BM_RuntimeForward[Imix]/M — the PR 5 shape: ONE ingress port fed
//     from the bench thread, M workers. bench_runtime showed this
//     single dispatcher is the ceiling (flat Mpps from 1 to 8 workers).
//   BM_RuntimeForwardMQ/Q/M — the RSS shape: Q ingress ports, each
//     driven by its own producer thread, M workers over the Q x M ring
//     fabric. On a machine with >= Q+M cores the 2-queue rows must
//     beat the single-dispatcher headline — that is this PR's
//     acceptance line, gated in tools/bench_compare.py as a same-run
//     speedup so runner speed cancels out.
//   BM_UdpIngest/Q — the real-I/O front end: packets leave through
//     actual UDP sockets on loopback and re-enter through UdpIngestor's
//     SO_REUSEPORT socket per queue (recvmmsg batches), so the rate
//     includes the kernel socket path. Items = datagrams that made it
//     through the whole pipe (kernel drops under blast are excluded
//     from the count, reported via the drop counter).
//
// On a single-core host the thread rows collapse to ~1x and the
// interesting signal is that threading overhead stays small;
// context.num_cpus in the JSON output says which machine you are
// looking at (tools/bench_compare.py skips thread-scaling checks when
// cores are insufficient).
//
// Closed loop: survivors are recycled into the worker arenas
// (EgressMode::kRecycle), and each iteration's input packets are
// copied from per-flow templates outside the timed region.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/replay.hpp"
#include "net/udp.hpp"
#include "runtime/shard_runtime.hpp"
#include "runtime/udp_egress.hpp"
#include "runtime/udp_ingest.hpp"
#include "sim/trace_workload.hpp"

namespace {

using namespace nn;

const net::Ipv4Addr kAnycast(200, 0, 0, 1);
const net::Ipv4Addr kGoogle(20, 0, 0, 10);

constexpr std::size_t kFlows = 256;
constexpr std::size_t kPacketsPerIter = 65536;

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

/// Per-flow neutralized templates: the paper's 112-byte packet, or
/// classic-IMIX sizes drawn per flow (same draw as bench_sharding).
std::vector<net::Packet> flow_templates(bool imix) {
  const core::MasterKeySchedule sched(root_key());
  sim::ImixConfig icfg;
  icfg.flows = kFlows;
  icfg.packets_per_second = static_cast<double>(kFlows);
  icfg.duration = sim::kSecond;
  icfg.seed = 0x517;
  const auto draws = sim::imix_trace(icfg);
  std::vector<net::Packet> tmpls;
  tmpls.reserve(kFlows);
  for (std::size_t f = 0; f < kFlows; ++f) {
    tmpls.push_back(core::synth_forward_packet(
        sched, kAnycast, kGoogle, static_cast<std::uint16_t>(f),
        imix ? draws[f % draws.size()].wire_size : 112,
        0x1122334455660000ULL));
  }
  return tmpls;
}

void runtime_forward_body(benchmark::State& state, bool imix) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  runtime::RuntimeConfig config;
  config.ring_capacity = 2048;
  config.max_batch = 64;
  config.egress = runtime::EgressMode::kRecycle;  // survivors recycle
  runtime::ShardRuntime runtime(threads, service_config(), root_key(),
                                config);
  runtime::IngressPort ingress = runtime.port(0);

  const auto tmpls = flow_templates(imix);
  std::uint64_t iter_bytes = 0;
  for (std::size_t i = 0; i < kPacketsPerIter; ++i) {
    iter_bytes += tmpls[i % tmpls.size()].size();
  }

  std::vector<net::Packet> wave;
  wave.reserve(kPacketsPerIter);
  for (auto _ : state) {
    // Untimed: refill the wave from the templates (buffer copies only).
    wave.clear();
    for (std::size_t i = 0; i < kPacketsPerIter; ++i) {
      wave.push_back(net::Packet(tmpls[i % tmpls.size()]));
    }
    const auto start = std::chrono::steady_clock::now();
    ingress.submit_burst(wave, 0);
    runtime.flush();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(elapsed.count());
  }
  runtime.stop();
  if (runtime.aggregate_stats().data_forwarded !=
      state.iterations() * kPacketsPerIter) {
    state.SkipWithError("not every packet was forwarded");
    return;
  }

  const std::int64_t total = static_cast<std::int64_t>(state.iterations()) *
                             static_cast<std::int64_t>(kPacketsPerIter);
  state.SetItemsProcessed(total);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(state.iterations()) * iter_bytes));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(total) / 1e6, benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["blocked_waits"] = static_cast<double>(
      runtime.stats().total().blocked_waits);
}

void BM_RuntimeForward(benchmark::State& state) {
  runtime_forward_body(state, false);
}
BENCHMARK(BM_RuntimeForward)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseManualTime();

void BM_RuntimeForwardImix(benchmark::State& state) {
  runtime_forward_body(state, true);
}
BENCHMARK(BM_RuntimeForwardImix)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime();

// Multi-queue RSS ingestion: Q producer threads, each owning one
// IngressPort, submit disjoint slices of the wave concurrently into
// the Q x M ring fabric. This is the row that must clear the
// single-dispatcher ceiling on a multi-core runner.
void BM_RuntimeForwardMQ(benchmark::State& state) {
  const std::size_t queues = static_cast<std::size_t>(state.range(0));
  const std::size_t workers = static_cast<std::size_t>(state.range(1));
  runtime::RuntimeConfig config;
  config.ingress_queues = queues;
  config.ring_capacity = 2048;
  config.max_batch = 64;
  config.egress = runtime::EgressMode::kRecycle;
  runtime::ShardRuntime runtime(workers, service_config(), root_key(),
                                config);

  const auto tmpls = flow_templates(false);
  // Per-queue waves, refilled untimed each iteration.
  std::vector<std::vector<net::Packet>> waves(queues);
  const std::size_t per_queue = kPacketsPerIter / queues;
  for (auto& w : waves) w.reserve(per_queue);

  for (auto _ : state) {
    for (std::size_t q = 0; q < queues; ++q) {
      waves[q].clear();
      for (std::size_t i = 0; i < per_queue; ++i) {
        waves[q].push_back(
            net::Packet(tmpls[(q * per_queue + i) % tmpls.size()]));
      }
    }
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    producers.reserve(queues);
    for (std::size_t q = 0; q < queues; ++q) {
      producers.emplace_back([&runtime, &waves, q, workers] {
        (void)runtime::pin_current_thread(runtime::placement_cpu_for_ingress(
            runtime.config(), q, workers));
        runtime.port(q).submit_burst(waves[q], 0);
      });
    }
    for (auto& t : producers) t.join();
    runtime.flush();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(elapsed.count());
  }
  runtime.stop();
  const std::uint64_t expect =
      state.iterations() * static_cast<std::uint64_t>(per_queue * queues);
  if (runtime.aggregate_stats().data_forwarded != expect) {
    state.SkipWithError("not every packet was forwarded");
    return;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(expect));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(expect) / 1e6, benchmark::Counter::kIsRate);
  state.counters["queues"] = static_cast<double>(queues);
  state.counters["threads"] = static_cast<double>(workers);
}
BENCHMARK(BM_RuntimeForwardMQ)
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({4, 4})
    ->UseManualTime();

// The dispatch + SPSC hand-off cost alone, with the consumer draining
// and discarding as fast as it can: the per-packet toll one ingress
// thread pays before any neutralization happens. Single worker so the
// number is a clean producer-side figure.
void BM_RuntimeDispatchHandoff(benchmark::State& state) {
  runtime::RuntimeConfig config;
  config.ring_capacity = 4096;
  config.egress = runtime::EgressMode::kRecycle;
  core::NeutralizerConfig cfg = service_config();
  runtime::ShardRuntime runtime(1, cfg, root_key(), config);
  runtime::IngressPort ingress = runtime.port(0);
  // Garbage packets (too short to parse) are rejected by the worker in
  // one branch — the measurement is the hand-off, not the datapath.
  const net::Packet junk{std::vector<std::uint8_t>(16, 0)};
  for (auto _ : state) {
    ingress.submit(net::Packet(junk), 0);
  }
  runtime.flush();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RuntimeDispatchHandoff);

// Socket-path ingestion rate: a sender thread blasts the 112-byte
// workload through real loopback UDP datagrams; UdpIngestor's per-queue
// SO_REUSEPORT sockets recvmmsg them into the ring fabric. Items are
// the packets that completed the whole kernel->ring->worker pipe.
void BM_UdpIngest(benchmark::State& state) {
  const std::size_t queues = static_cast<std::size_t>(state.range(0));
  runtime::RuntimeConfig config;
  config.ingress_queues = queues;
  config.ring_capacity = 4096;
  config.max_batch = 64;
  config.egress = runtime::EgressMode::kRecycle;
  runtime::ShardRuntime runtime(queues, service_config(), root_key(),
                                config);
  runtime::UdpIngestConfig icfg;
  icfg.rcvbuf_bytes = 8 << 20;
  runtime::UdpIngestor ingest(runtime, icfg);
  ingest.start();
  if (!ingest.running()) {
    state.SkipWithError("UDP ingestor failed to start (no loopback?)");
    return;
  }

  const auto tmpls = flow_templates(false);
  constexpr std::size_t kBurst = 16384;
  // Several sender sockets: SO_REUSEPORT spreads load by 4-tuple hash,
  // so one source socket would pin every datagram to one queue.
  std::vector<net::UdpSocket> senders;
  for (std::size_t s = 0; s < 4 * queues; ++s) {
    auto sock = net::UdpSocket::open();
    if (!sock.valid()) {
      state.SkipWithError("cannot open sender socket");
      return;
    }
    senders.push_back(std::move(sock));
  }
  const net::Ipv4Addr loop(127, 0, 0, 1);

  std::uint64_t received_total = 0;
  double seconds = 0;
  for (auto _ : state) {
    const std::uint64_t before = ingest.stats_total().submitted;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kBurst; ++i) {
      const auto& pkt = tmpls[i % tmpls.size()];
      (void)senders[i % senders.size()].send_to(loop, ingest.port(),
                                                pkt.view());
    }
    // Quiesce: wait until the ingest counter stops moving and every
    // accepted packet has been processed. Kernel-dropped datagrams
    // (receiver outrun under blast) simply never arrive.
    std::uint64_t last = ingest.stats_total().submitted;
    for (int stable = 0; stable < 3;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const std::uint64_t now_count = ingest.stats_total().submitted;
      stable = now_count == last ? stable + 1 : 0;
      last = now_count;
    }
    runtime.flush();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(elapsed.count());
    seconds += elapsed.count();
    received_total += last - before;
  }
  ingest.stop();
  runtime.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(received_total));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(received_total) / 1e6, benchmark::Counter::kIsRate);
  state.counters["queues"] = static_cast<double>(queues);
  const std::uint64_t sent =
      state.iterations() * static_cast<std::uint64_t>(kBurst);
  state.counters["kernel_drop_frac"] =
      sent == 0 ? 0.0
                : static_cast<double>(sent - received_total) /
                      static_cast<double>(sent);
  (void)seconds;
}
BENCHMARK(BM_UdpIngest)->Arg(1)->Arg(2)->UseManualTime();

// The closed appliance loop: datagrams enter through UdpIngestor's
// sockets, cross the ring fabric, and the survivors leave through
// UdpEgressor's sendmmsg batches to a sink socket — receive,
// neutralize, transmit, all inside the timed region. Items are the
// datagrams that completed the WHOLE loop (the transmitted counter);
// kernel drops under blast show up in kernel_drop_frac, exactly as in
// BM_UdpIngest. Q ingress queues, Q workers, one transmit thread.
void BM_UdpAppliance(benchmark::State& state) {
  const std::size_t queues = static_cast<std::size_t>(state.range(0));
  runtime::RuntimeConfig config;
  config.ingress_queues = queues;
  config.ring_capacity = 4096;
  config.max_batch = 64;
  config.egress = runtime::EgressMode::kForward;
  runtime::ShardRuntime runtime(queues, service_config(), root_key(),
                                config);
  runtime::UdpIngestConfig icfg;
  icfg.rcvbuf_bytes = 8 << 20;
  runtime::UdpIngestor ingest(runtime, icfg);

  // The sink is never drained: loopback sends into a full receive
  // buffer still count as kernel-accepted, which is the cost being
  // measured (the transmit path, not a receiver).
  net::UdpSocket sink = net::UdpSocket::bind_loopback(0, false);
  if (!sink.valid()) {
    state.SkipWithError("cannot bind sink socket");
    return;
  }
  runtime::UdpEgressConfig ecfg;
  ecfg.dest_port = sink.local_port();
  ecfg.tx_threads = 1;
  runtime::UdpEgressor egress(runtime, ecfg);
  if (!egress.start()) {
    state.SkipWithError(("egress: " + egress.error()).c_str());
    return;
  }
  ingest.start();
  if (!ingest.running()) {
    state.SkipWithError("UDP ingestor failed to start (no loopback?)");
    return;
  }

  const auto tmpls = flow_templates(false);
  constexpr std::size_t kBurst = 16384;
  std::vector<net::UdpSocket> senders;
  for (std::size_t s = 0; s < 4 * queues; ++s) {
    auto sock = net::UdpSocket::open();
    if (!sock.valid()) {
      state.SkipWithError("cannot open sender socket");
      return;
    }
    senders.push_back(std::move(sock));
  }
  const net::Ipv4Addr loop(127, 0, 0, 1);

  std::uint64_t completed_total = 0;
  for (auto _ : state) {
    const std::uint64_t before = egress.stats_total().transmitted;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kBurst; ++i) {
      const auto& pkt = tmpls[i % tmpls.size()];
      (void)senders[i % senders.size()].send_to(loop, ingest.port(),
                                                pkt.view());
    }
    // Quiesce the whole pipe: ingest counter stable, every accepted
    // packet processed, every survivor handed to the kernel.
    std::uint64_t last = ingest.stats_total().submitted;
    for (int stable = 0; stable < 3;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const std::uint64_t now_count = ingest.stats_total().submitted;
      stable = now_count == last ? stable + 1 : 0;
      last = now_count;
    }
    runtime.flush();
    egress.flush();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(elapsed.count());
    completed_total += egress.stats_total().transmitted - before;
  }
  ingest.stop();
  egress.stop();
  runtime.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(completed_total));
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(completed_total) / 1e6,
      benchmark::Counter::kIsRate);
  state.counters["queues"] = static_cast<double>(queues);
  const std::uint64_t sent =
      state.iterations() * static_cast<std::uint64_t>(kBurst);
  state.counters["kernel_drop_frac"] =
      sent == 0 ? 0.0
                : static_cast<double>(sent - completed_total) /
                      static_cast<double>(sent);
}
BENCHMARK(BM_UdpAppliance)->Arg(1)->Arg(2)->UseManualTime();

}  // namespace
