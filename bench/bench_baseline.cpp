// E4 — neutralizer vs anonymous routing (paper §5: "our design is
// considerably more efficient and scalable in terms of resource
// consumption. In our design, routers don't keep per-flow state, and
// perform much fewer public key encryption/decryption operations.")
//
// Three comparisons against a Tor-style onion baseline:
//   * per-flow setup cost (public-key operations at the infrastructure),
//   * per-packet datapath cost,
//   * infrastructure state as the number of flows grows.
#include <benchmark/benchmark.h>

#include "baseline/onion.hpp"
#include "core/neutralizer.hpp"
#include "crypto/chacha.hpp"
#include "net/shim.hpp"

namespace {

using namespace nn;

const net::Ipv4Addr kAnycast(200, 0, 0, 1);
const net::Ipv4Addr kAnn(10, 1, 0, 2);
const net::Ipv4Addr kGoogle(20, 0, 0, 10);

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

std::vector<baseline::OnionRelay>& shared_relays() {
  static std::vector<baseline::OnionRelay> relays = [] {
    crypto::ChaChaRng rng(0xBEEF);
    std::vector<baseline::OnionRelay> out;
    for (int i = 0; i < 3; ++i) {
      out.emplace_back(crypto::rsa_generate(rng, 1024, 3));
    }
    return out;
  }();
  return relays;
}

// --- per-flow setup ---------------------------------------------------------

// Onion circuit build: 3 RSA-1024 encryptions at the client and, more
// importantly, 3 RSA-1024 *decryptions* inside the infrastructure.
void BM_SetupOnionCircuit3Hops(benchmark::State& state) {
  auto& relays = shared_relays();
  baseline::OnionClient client(1);
  std::vector<baseline::OnionRelay*> path;
  for (auto& r : relays) path.push_back(&r);
  std::uint64_t infra_rsa = 0;
  for (auto _ : state) {
    auto circuit = client.build_circuit(path);
    infra_rsa += circuit.path.size();
    benchmark::DoNotOptimize(circuit);
    // Tear down so relay tables don't grow across iterations.
    state.PauseTiming();
    for (std::size_t i = 0; i < circuit.path.size(); ++i) {
      circuit.path[i]->destroy_circuit(circuit.circuit_ids[i]);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["infra_rsa_ops_per_flow"] = 3;
}
BENCHMARK(BM_SetupOnionCircuit3Hops)->Unit(benchmark::kMicrosecond);

// Neutralizer "setup" per flow: zero. One key setup per *source* per
// master-key epoch covers every flow to every customer (§3.2). Measured
// here as the infrastructure cost of an additional flow for a source
// that already holds Ks: nothing.
void BM_SetupNeutralizerAdditionalFlow(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(state.iterations());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["infra_rsa_ops_per_flow"] = 0;
}
BENCHMARK(BM_SetupNeutralizerAdditionalFlow);

// --- per-packet datapath ----------------------------------------------------

void BM_PacketOnion3Hops(benchmark::State& state) {
  auto& relays = shared_relays();
  baseline::OnionClient client(2);
  std::vector<baseline::OnionRelay*> path;
  for (auto& r : relays) path.push_back(&r);
  auto circuit = client.build_circuit(path);
  std::vector<std::uint8_t> payload(112, 0xE5);

  for (auto _ : state) {
    auto cell = client.wrap(circuit, payload);
    auto out = baseline::OnionClient::transit(circuit, std::move(cell));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  for (std::size_t i = 0; i < circuit.path.size(); ++i) {
    circuit.path[i]->destroy_circuit(circuit.circuit_ids[i]);
  }
}
BENCHMARK(BM_PacketOnion3Hops);

void BM_PacketNeutralizer(benchmark::State& state) {
  core::Neutralizer service(service_config(), root_key());
  const core::MasterKeySchedule sched(root_key());
  const std::uint64_t nonce = 7;
  const auto ks =
      crypto::derive_source_key(sched.current_key(0), nonce, kAnn.value());
  net::ShimHeader shim;
  shim.type = net::ShimType::kDataForward;
  shim.nonce = nonce;
  shim.inner_addr = crypto::crypt_address(ks, nonce, false, kGoogle.value());
  std::vector<std::uint8_t> payload(76, 0xE5);
  const auto packet = net::make_shim_packet(kAnn, kAnycast, shim, payload);

  for (auto _ : state) {
    auto copy = packet;
    auto out = service.process(std::move(copy), 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketNeutralizer);

// --- state growth -----------------------------------------------------------

// Relay state after N circuits vs neutralizer state after N sources.
// Reported via counters; runtime is the setup loop.
void BM_StateVsFlows(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  crypto::ChaChaRng rng(3);
  for (auto _ : state) {
    baseline::OnionRelay relay(
        [] {
          crypto::ChaChaRng krng(0xBEE5);
          return crypto::rsa_generate(krng, 1024, 3);
        }());
    baseline::OnionClient client(4);
    state.PauseTiming();
    std::vector<std::uint8_t> wrapped;
    state.ResumeTiming();
    for (std::size_t i = 0; i < flows; ++i) {
      crypto::AesKey key;
      rng.fill(key);
      wrapped = crypto::rsa_encrypt(rng, relay.public_key(), key);
      benchmark::DoNotOptimize(relay.create_circuit(wrapped));
    }
    state.counters["onion_state_bytes"] =
        static_cast<double>(relay.state_bytes());
    // The stateless neutralizer: master key + config, independent of N.
    state.counters["neutralizer_state_bytes"] =
        static_cast<double>(sizeof(crypto::AesKey) +
                            sizeof(core::NeutralizerConfig));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(flows));
}
BENCHMARK(BM_StateVsFlows)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
