// E9 — multi-homed sites (paper §3.5): a site publishes one neutralizer
// address per provider; sources pick among them, so "the ISP-level path
// … is controlled by how other sources pick the neutralizers". When one
// provider is congested, a fixed choice may land on the bad path, while
// the paper's trial-and-error suggestion finds the working one.
//
// Topology: Ann reaches a dual-homed site via provider A (congested,
// 300 ms queueing + loss) or provider B (clean). Strategies: fixed on A,
// uniform random, probe (epsilon-greedy trial-and-error).
// Metric: delivery rate and mean latency of Ann's flow.
#include <benchmark/benchmark.h>

#include "core/box.hpp"
#include "host/host.hpp"
#include "multihome/selector.hpp"
#include "scenario/fig1.hpp"
#include "sim/workload.hpp"

namespace {

using namespace nn;

const net::Ipv4Addr kAnycastA(200, 0, 0, 1);
const net::Ipv4Addr kAnycastB(201, 0, 0, 1);
const net::Ipv4Addr kAnnAddr(10, 1, 0, 2);
const net::Ipv4Addr kSiteAddr(20, 0, 0, 10);

struct MultihomeResult {
  double delivered_pct;
  double mean_ms;
  double picked_a_pct;
};

MultihomeResult run_strategy(multihome::Strategy strategy) {
  sim::Engine engine;
  sim::Network net(engine);

  auto& ann_node = net.add<sim::Host>("ann");
  auto& att = net.add<sim::Router>("att");
  crypto::AesKey root;
  root.fill(0xD0);

  core::NeutralizerConfig cfg_a;
  cfg_a.anycast_addr = kAnycastA;
  cfg_a.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  auto& box_a = net.add<core::NeutralizerBox>("provider-a-box", cfg_a, root, 1);
  core::NeutralizerConfig cfg_b = cfg_a;
  cfg_b.anycast_addr = kAnycastB;
  auto& box_b = net.add<core::NeutralizerBox>("provider-b-box", cfg_b, root, 2);
  auto& site_node = net.add<sim::Host>("site");

  sim::LinkConfig clean;
  clean.bandwidth_bps = 100e6;
  clean.propagation = 2 * sim::kMillisecond;
  // Provider A's path: thin and long (congested provider) — alive, but
  // queueing delay dominates.
  sim::LinkConfig congested = clean;
  congested.bandwidth_bps = 1e6;
  congested.propagation = 120 * sim::kMillisecond;
  congested.queue_bytes = 16 * 1024;

  net.connect(ann_node, att, clean);
  net.connect(att, box_a, congested);
  net.connect(att, box_b, clean);
  net.connect(box_a, site_node, clean);
  net.connect(box_b, site_node, clean);

  net.assign_address(ann_node, kAnnAddr);
  net.assign_address(site_node, kSiteAddr);
  net.assign_address(box_a, net::Ipv4Addr(20, 0, 255, 1));
  net.assign_address(box_b, net::Ipv4Addr(20, 0, 255, 2));
  box_a.join_service_anycast(net);
  box_b.join_service_anycast(net);
  net.compute_routes();

  // Site: standard inside-stack homed on BOTH services (multi-homed,
  // §3.5 — it publishes both anycast addresses).
  crypto::ChaChaRng krng(0x517E);
  static const auto site_identity = crypto::rsa_generate(krng, 1024, 3);
  static const auto ann_identity = crypto::rsa_generate(krng, 1024, 3);

  host::HostConfig site_cfg;
  site_cfg.self = kSiteAddr;
  site_cfg.inside_neutral_domain = true;
  site_cfg.home_anycast = kAnycastA;
  host::NeutralizedHost site_stack(
      site_cfg, site_identity,
      [&site_node](net::Packet&& p) { site_node.transmit(std::move(p)); },
      &engine, 31);
  sim::FlowSink site_sink;
  site_node.set_handler([&](net::Packet&& pkt) {
    site_stack.on_packet(std::move(pkt), engine.now());
  });
  site_stack.set_app_handler([&](net::Ipv4Addr,
                                 std::span<const std::uint8_t> payload,
                                 sim::SimTime now) {
    site_sink.on_payload(payload, now);
  });

  // Ann: two stacks' worth of peer info — one per provider path — and a
  // selector choosing per flow segment. We re-register the peer with the
  // currently selected anycast before each burst (per-flow selection).
  host::HostConfig ann_cfg;
  ann_cfg.self = kAnnAddr;
  host::NeutralizedHost ann_stack(
      ann_cfg, ann_identity,
      [&ann_node](net::Packet&& p) { ann_node.transmit(std::move(p)); },
      &engine, 32);
  ann_node.set_handler([&](net::Packet&& pkt) {
    ann_stack.on_packet(std::move(pkt), engine.now());
  });

  multihome::NeutralizerSelector selector(
      strategy, {{kAnycastA, 1.0}, {kAnycastB, 1.0}}, 77);

  // Probe feedback: the site echoes every payload; Ann's app handler
  // reports RTT to the selector.
  site_stack.set_app_handler([&](net::Ipv4Addr peer,
                                 std::span<const std::uint8_t> payload,
                                 sim::SimTime now) {
    site_sink.on_payload(payload, now);
    site_stack.send(peer, std::vector<std::uint8_t>(payload.begin(),
                                                    payload.end()),
                    now);
  });
  sim::FlowSink ann_sink;
  net::Ipv4Addr current_choice = kAnycastA;
  std::uint64_t picked_a = 0, picks = 0;
  ann_stack.set_app_handler([&](net::Ipv4Addr,
                                std::span<const std::uint8_t> payload,
                                sim::SimTime now) {
    const auto header = sim::AppHeader::parse(payload);
    if (header.has_value()) {
      const double rtt_ms = static_cast<double>(now - header->sent_at) /
                            static_cast<double>(sim::kMillisecond);
      selector.report(current_choice, true, rtt_ms);
    }
    ann_sink.on_payload(payload, now);
  });

  // 100 bursts of 10 packets; the selector picks a provider per burst.
  const int kBursts = 100;
  const int kPerBurst = 10;
  std::uint32_t seq = 0;
  for (int burst = 0; burst < kBursts; ++burst) {
    current_choice = selector.pick();
    ++picks;
    if (current_choice == kAnycastA) ++picked_a;
    host::PeerInfo info;
    info.addr = kSiteAddr;
    info.anycast = current_choice;
    info.public_key = site_identity.pub;
    ann_stack.add_peer(info);  // §3.5: source picks the published address

    for (int i = 0; i < kPerBurst; ++i) {
      sim::AppHeader h;
      h.flow_id = 1;
      h.seq = seq++;
      h.sent_at = engine.now();
      ann_stack.send(kSiteAddr, h.build_payload(160), engine.now());
      engine.run_until(engine.now() + 20 * sim::kMillisecond);
    }
    // Unanswered bursts: negative feedback (trial-and-error, §3.5).
    if (strategy == multihome::Strategy::kProbe) {
      selector.report(current_choice,
                      ann_sink.flow(1).received > 0 || burst == 0, 500.0);
    }
  }
  engine.run_until(engine.now() + 2 * sim::kSecond);

  MultihomeResult out;
  out.delivered_pct = 100.0 *
                      static_cast<double>(ann_sink.flow(1).received) /
                      static_cast<double>(seq);
  out.mean_ms = ann_sink.flow(1).latency_ms.mean() / 2.0;  // one-way approx
  out.picked_a_pct = 100.0 * static_cast<double>(picked_a) /
                     static_cast<double>(picks);
  return out;
}

void run_case(benchmark::State& state, multihome::Strategy strategy) {
  for (auto _ : state) {
    const auto r = run_strategy(strategy);
    state.counters["delivered_pct"] = r.delivered_pct;
    state.counters["rtt_ms"] = r.mean_ms * 2.0;
    state.counters["picked_congested_pct"] = r.picked_a_pct;
  }
}

void BM_MultihomeFixedCongested(benchmark::State& state) {
  run_case(state, multihome::Strategy::kFixed);
}
BENCHMARK(BM_MultihomeFixedCongested)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MultihomeRandom(benchmark::State& state) {
  run_case(state, multihome::Strategy::kRandom);
}
BENCHMARK(BM_MultihomeRandom)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MultihomeProbe(benchmark::State& state) {
  run_case(state, multihome::Strategy::kProbe);
}
BENCHMARK(BM_MultihomeProbe)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
