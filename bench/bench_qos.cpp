// E6 — tiered service survives neutralization (paper §3.4: "a
// neutralizer will not modify the Differentiated Services Code Point …
// The discriminatory ISP may provide differentiated services according
// to the DSCPs in packet headers").
//
// The shared AT&T uplink is the 2 Mbps bottleneck, saturated by
// best-effort cross traffic. Two *neutralized* probe flows differ only
// in purchased tier (EF vs best effort).
//
// Expected shape:
//   * strict-priority uplink: EF latency/loss stays low, BE suffers —
//     tiered service works on anonymized traffic;
//   * FIFO uplink (control): both tiers suffer identically — the
//     difference really is the DSCP scheduling, not the neutralizer.
#include <benchmark/benchmark.h>

#include "qos/scheduler.hpp"
#include "scenario/fig1.hpp"

namespace {

using namespace nn;
using scenario::Fig1;

struct TierResult {
  double ef_mean_ms, ef_loss, be_mean_ms, be_loss;
};

TierResult run_tiered(bool priority_uplink) {
  scenario::Fig1Config cfg;
  cfg.att_uplink_bps = 2e6;  // the bottleneck
  if (priority_uplink) {
    cfg.att_uplink_queue = [] {
      return std::make_unique<qos::StrictPriorityQueue>(64 * 1024);
    };
  }
  Fig1 fig(cfg);

  // Purchased tiers (§3.4): Ann bought EF, Bob rides best effort.
  fig.ann.stack->set_dscp(net::Dscp::kExpeditedForwarding);
  fig.bob.stack->set_dscp(net::Dscp::kBestEffort);

  // Saturating best-effort cross traffic over the same uplink.
  sim::TrafficSource::Config cross;
  cross.flow_id = 9;
  cross.payload_size = 1400;
  cross.packets_per_second = 200;  // ~2.3 Mbps > 2 Mbps uplink
  cross.start = 0;
  cross.stop = 13 * sim::kSecond;
  cross.seed = 99;
  sim::Host* att_voip_node = fig.att_voip.node;
  sim::TrafficSource cross_src(
      fig.engine, cross, [att_voip_node](std::vector<std::uint8_t>&& p) {
        att_voip_node->transmit(net::make_udp_packet(
            att_voip_node->address(), scenario::kVonageAddr, 7000, 7000, p,
            net::Dscp::kBestEffort));
      });
  cross_src.start();

  // Both probes share the congested uplink concurrently.
  fig.schedule_voip(scenario::VoipMode::kNeutralized, fig.ann, fig.google, 1,
                    50, sim::kSecond, 10 * sim::kSecond);
  fig.schedule_voip(scenario::VoipMode::kNeutralized, fig.bob, fig.google, 2,
                    50, sim::kSecond, 10 * sim::kSecond);
  fig.engine.run_until(13 * sim::kSecond);
  const auto ef = fig.collect(fig.google, 1);
  const auto be = fig.collect(fig.google, 2);
  return {ef.mean_latency_ms, ef.loss, be.mean_latency_ms, be.loss};
}

void BM_TieredServiceStrictPriority(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = run_tiered(true);
    state.counters["ef_mean_ms"] = r.ef_mean_ms;
    state.counters["ef_loss_pct"] = r.ef_loss * 100;
    state.counters["be_mean_ms"] = r.be_mean_ms;
    state.counters["be_loss_pct"] = r.be_loss * 100;
  }
}
BENCHMARK(BM_TieredServiceStrictPriority)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_TieredServiceFifoControl(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = run_tiered(false);
    state.counters["ef_mean_ms"] = r.ef_mean_ms;
    state.counters["ef_loss_pct"] = r.ef_loss * 100;
    state.counters["be_mean_ms"] = r.be_mean_ms;
    state.counters["be_loss_pct"] = r.be_loss * 100;
  }
}
BENCHMARK(BM_TieredServiceFifoControl)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
