#include "pushback/pushback.hpp"

namespace nn::pushback {

AggregateKey PushbackPolicy::classify(const net::Packet& pkt) const noexcept {
  AggregateKey key;
  if (pkt.size() < net::kIpv4HeaderSize) return key;
  const std::uint32_t dst =
      (static_cast<std::uint32_t>(pkt.bytes[16]) << 24) |
      (static_cast<std::uint32_t>(pkt.bytes[17]) << 16) |
      (static_cast<std::uint32_t>(pkt.bytes[18]) << 8) | pkt.bytes[19];
  const std::uint32_t mask =
      config_.prefix_len == 0
          ? 0
          : ~std::uint32_t{0} << (32 - config_.prefix_len);
  key.dst_prefix = dst & mask;
  if (pkt.bytes[9] == static_cast<std::uint8_t>(net::IpProto::kShim) &&
      pkt.size() > net::kIpv4HeaderSize) {
    key.shim_type = pkt.bytes[net::kIpv4HeaderSize];
  }
  return key;
}

void PushbackPolicy::roll_window(sim::SimTime now) {
  if (now - window_start_ < config_.window) return;
  const double elapsed_s = static_cast<double>(now - window_start_) /
                           static_cast<double>(sim::kSecond);
  if (elapsed_s > 0) {
    const double arrival_bps = window_bytes_ / elapsed_s;
    if (arrival_bps > config_.capacity_bps * config_.detect_fraction) {
      // Flag the dominant aggregate of the congested window.
      AggregateKey worst{};
      double worst_bytes = 0;
      for (const auto& [key, bytes] : window_per_agg_) {
        if (bytes > worst_bytes) {
          worst = key;
          worst_bytes = bytes;
        }
      }
      if (worst_bytes > 0 && !limiters_.contains(worst)) {
        install_limiter(worst, /*depth=*/0);
      }
    }
  }
  window_start_ = now;
  window_bytes_ = 0;
  window_per_agg_.clear();
}

void PushbackPolicy::install_limiter(AggregateKey key, int depth) {
  if (!limiters_.contains(key)) {
    limiters_.emplace(key, qos::TokenBucket(config_.limit_bps,
                                            config_.limit_bps / 4));
    ++stats_.aggregates_flagged;
  }
  // Recursive propagation toward the sources ("pushback"), bounded to
  // avoid cycles in misconfigured topologies.
  if (upstream_ && depth < 8) {
    ++stats_.pushback_propagations;
    upstream_->install_limiter(key, depth + 1);
  }
}

sim::PolicyDecision PushbackPolicy::process(const net::Packet& pkt,
                                            sim::SimTime now) {
  roll_window(now);
  const AggregateKey key = classify(pkt);
  window_bytes_ += static_cast<double>(pkt.size());
  window_per_agg_[key] += static_cast<double>(pkt.size());

  if (const auto it = limiters_.find(key); it != limiters_.end()) {
    // limit_bps == 0 squelches the flagged aggregate entirely. (The
    // bucket itself treats rate <= 0 as *unlimited*, the convention of
    // configs that simply skip building a limiter — here a limiter was
    // deliberately installed, so zero means zero.)
    if (config_.limit_bps <= 0 || !it->second.try_consume(pkt.size(), now)) {
      ++stats_.limited_drops;
      return sim::PolicyDecision::dropped();
    }
  }
  return sim::PolicyDecision::forward();
}

}  // namespace nn::pushback
