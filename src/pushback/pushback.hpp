// Pushback-style DoS defense (paper §3.6, after Mahajan et al. [15]):
// detect high-bandwidth aggregates at a congested router, rate-limit
// them locally, and propagate the limit upstream. Works with anonymized
// (or spoofed) sources because aggregates are identified by what can be
// seen — destination and protocol/shim type — never by source address.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/shim.hpp"
#include "qos/token_bucket.hpp"
#include "sim/node.hpp"

namespace nn::pushback {

/// Aggregate identity: (destination /prefix, shim type or 0 for
/// non-shim). Source addresses are deliberately excluded (§3.6: "does
/// not rely on source addresses to filter attack traffic").
struct AggregateKey {
  std::uint32_t dst_prefix = 0;
  std::uint8_t shim_type = 0;

  friend bool operator==(AggregateKey, AggregateKey) noexcept = default;
};

struct AggregateKeyHash {
  std::size_t operator()(AggregateKey k) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.dst_prefix) << 8) | k.shim_type);
  }
};

struct PushbackStats {
  std::uint64_t limited_drops = 0;
  std::uint64_t aggregates_flagged = 0;
  std::uint64_t pushback_propagations = 0;
};

class PushbackPolicy final : public sim::TransitPolicy {
 public:
  struct Config {
    /// Output capacity this policy protects (bytes/second).
    double capacity_bps = 1.25e6;  // 10 Mbps
    /// Detection triggers when window arrivals exceed this fraction of
    /// capacity.
    double detect_fraction = 0.9;
    sim::SimTime window = 100 * sim::kMillisecond;
    /// Rate granted to a flagged aggregate.
    double limit_bps = 1.25e5;
    int prefix_len = 32;
  };

  explicit PushbackPolicy(Config config) : config_(config) {}

  sim::PolicyDecision process(const net::Packet& pkt,
                              sim::SimTime now) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "pushback";
  }

  /// Upstream neighbor (toward traffic sources); flagged aggregates are
  /// propagated there, moving drops closer to the attackers.
  void set_upstream(std::shared_ptr<PushbackPolicy> upstream) {
    upstream_ = std::move(upstream);
  }

  [[nodiscard]] const PushbackStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool is_limited(AggregateKey key) const {
    return limiters_.contains(key);
  }

 private:
  Config config_;
  std::shared_ptr<PushbackPolicy> upstream_;
  PushbackStats stats_;

  sim::SimTime window_start_ = 0;
  double window_bytes_ = 0;
  std::unordered_map<AggregateKey, double, AggregateKeyHash> window_per_agg_;
  std::unordered_map<AggregateKey, qos::TokenBucket, AggregateKeyHash>
      limiters_;

  [[nodiscard]] AggregateKey classify(const net::Packet& pkt) const noexcept;
  void roll_window(sim::SimTime now);
  void install_limiter(AggregateKey key, int depth);
};

}  // namespace nn::pushback
