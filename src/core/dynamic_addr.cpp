#include "core/dynamic_addr.hpp"

#include <stdexcept>

namespace nn::core {

DynamicAddressAllocator::DynamicAddressAllocator(net::Ipv4Prefix pool)
    : pool_(pool) {
  if (pool.length() > 30) {
    throw std::invalid_argument(
        "DynamicAddressAllocator: pool must hold at least 4 addresses");
  }
  capacity_ = (~pool.mask());  // host portion, minus offset-0 base
}

std::optional<net::Ipv4Addr> DynamicAddressAllocator::allocate(
    net::Ipv4Addr customer) {
  if (mapping_.size() >= capacity_) return std::nullopt;
  // Linear probe from next_offset_ (wrapping) until a free slot.
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    const std::uint32_t offset = 1 + (next_offset_ - 1 + i) % capacity_;
    const net::Ipv4Addr candidate = pool_.at(offset);
    if (!mapping_.contains(candidate)) {
      mapping_[candidate] = customer;
      next_offset_ = 1 + offset % capacity_;
      return candidate;
    }
  }
  return std::nullopt;
}

std::optional<net::Ipv4Addr> DynamicAddressAllocator::resolve(
    net::Ipv4Addr dynamic) const {
  const auto it = mapping_.find(dynamic);
  if (it == mapping_.end()) return std::nullopt;
  return it->second;
}

void DynamicAddressAllocator::release(net::Ipv4Addr dynamic) {
  mapping_.erase(dynamic);
}

}  // namespace nn::core
