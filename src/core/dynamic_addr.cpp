#include "core/dynamic_addr.hpp"

#include <algorithm>
#include <stdexcept>

namespace nn::core {

DynamicAddressAllocator::DynamicAddressAllocator(net::Ipv4Prefix pool)
    : pool_(pool) {
  if (pool.length() > 30) {
    throw std::invalid_argument(
        "DynamicAddressAllocator: pool must hold at least 4 addresses");
  }
  capacity_ = (~pool.mask());  // host portion, minus offset-0 base
}

std::optional<net::Ipv4Addr> DynamicAddressAllocator::allocate(
    net::Ipv4Addr customer, sim::SimTime now, sim::SimTime lease) {
  // Fresh offsets first (delays address reuse — an observer correlating
  // dynamic addresses across sessions sees every address once before
  // any repeats), then the recycled stack. Both are O(1).
  std::uint32_t offset;
  if (next_fresh_ <= capacity_) {
    offset = next_fresh_++;
  } else if (!free_offsets_.empty()) {
    offset = free_offsets_.back();
    free_offsets_.pop_back();
  } else {
    ++counters_.rejected;  // pool exhausted
    return std::nullopt;
  }
  const net::Ipv4Addr dyn = pool_.at(offset);
  SessionRecord* rec = table_.insert(dyn.value());
  // Offsets are handed out exactly once between releases, so the key
  // cannot already be resident.
  rec->customer = customer.value();
  if (lease > 0) {
    rec->expiry = now + lease;
    arm_lease(dyn.value(), rec->expiry);
  }
  ++counters_.allocated;
  return dyn;
}

std::optional<net::Ipv4Addr> DynamicAddressAllocator::resolve(
    net::Ipv4Addr dynamic) const {
  const SessionRecord* rec = table_.find(dynamic.value());
  if (rec == nullptr) return std::nullopt;
  return net::Ipv4Addr(rec->customer);
}

bool DynamicAddressAllocator::release(net::Ipv4Addr dynamic) {
  if (!table_.erase(dynamic.value())) return false;
  free_offsets_.push_back(dynamic.value() & ~pool_.mask());
  ++counters_.released;
  // Any armed lease entry for this address goes stale; expire_due()
  // skips it when it surfaces.
  return true;
}

bool DynamicAddressAllocator::renew(net::Ipv4Addr dynamic, sim::SimTime now,
                                    sim::SimTime lease) {
  SessionRecord* rec = table_.find(dynamic.value());
  if (rec == nullptr) return false;
  rec->expiry = lease > 0 ? now + lease : SessionRecord::kNoExpiry;
  if (lease > 0) arm_lease(dynamic.value(), rec->expiry);
  ++counters_.renewed;
  return true;
}

std::size_t DynamicAddressAllocator::expire_due(sim::SimTime now) {
  std::size_t expired = 0;
  while (!lease_heap_.empty() && lease_heap_.front().expiry <= now) {
    const LeaseEntry due = lease_heap_.front();
    std::pop_heap(lease_heap_.begin(), lease_heap_.end(), LeaseLater{});
    lease_heap_.pop_back();
    // Lazy invalidation: the record may have been released, renewed
    // (newer deadline), or released-and-reallocated (kNoExpiry or a
    // different deadline) since this entry was armed.
    const SessionRecord* rec = table_.find(due.dyn_value);
    if (rec == nullptr || rec->expiry != due.expiry) continue;
    table_.erase(due.dyn_value);
    free_offsets_.push_back(due.dyn_value & ~pool_.mask());
    ++counters_.expired;
    ++expired;
  }
  return expired;
}

std::optional<sim::SimTime> DynamicAddressAllocator::next_expiry()
    const noexcept {
  if (lease_heap_.empty()) return std::nullopt;
  return lease_heap_.front().expiry;
}

void DynamicAddressAllocator::arm_lease(std::uint32_t dyn_value,
                                        sim::SimTime expiry) {
  lease_heap_.push_back({expiry, dyn_value});
  std::push_heap(lease_heap_.begin(), lease_heap_.end(), LeaseLater{});
}

void DynamicAddressAllocator::reserve(std::size_t n) {
  table_.reserve(n);
  free_offsets_.reserve(n);
  // Stale entries (renewals, releases) pile up until their old deadline
  // passes; give the heap headroom so a renew-heavy steady state stays
  // off the heap too.
  lease_heap_.reserve(2 * n);
}

std::size_t DynamicAddressAllocator::memory_bytes() const noexcept {
  return table_.memory_bytes() +
         free_offsets_.capacity() * sizeof(std::uint32_t) +
         lease_heap_.capacity() * sizeof(LeaseEntry);
}

}  // namespace nn::core
