// Deterministic synthesis of valid neutralized data packets for
// replay-style harnesses — benches, examples, and tests that push
// traffic straight into a Neutralizer/ShardedNeutralizer without a
// host stack. One definition so the (source, nonce, session-key)
// mapping cannot drift between the byte-identity checks that rely on
// it being "the same packets".
#pragma once

#include <cstdint>
#include <vector>

#include "core/master_key.hpp"
#include "crypto/aes_modes.hpp"
#include "net/packet.hpp"
#include "net/shim.hpp"

namespace nn::core {

/// A kDataForward shim packet for synthetic flow `flow`, padded to
/// `wire_size` total bytes (clamped so the payload keeps >= 1 byte).
/// The session is a pure function of the flow id: source address
/// 10.1.hi.(lo|1), nonce = `nonce_base` + flow, session key derived
/// from `sched`'s epoch-0 master key; the inner address is `customer`
/// encrypted under that session. Epoch field 0, payload fill 0xE5.
[[nodiscard]] inline net::Packet synth_forward_packet(
    const MasterKeySchedule& sched, net::Ipv4Addr anycast,
    net::Ipv4Addr customer, std::uint16_t flow, std::size_t wire_size,
    std::uint64_t nonce_base = 0xF1E00000ULL) {
  const net::Ipv4Addr src(10, 1, static_cast<std::uint8_t>(flow >> 8),
                          static_cast<std::uint8_t>(flow) | 1);
  const std::uint64_t nonce = nonce_base + flow;
  const auto ks =
      crypto::derive_source_key(sched.current_key(0), nonce, src.value());
  net::ShimHeader shim;
  shim.type = net::ShimType::kDataForward;
  shim.key_epoch = 0;
  shim.nonce = nonce;
  shim.inner_addr = crypto::crypt_address(ks, nonce, false, customer.value());
  const std::size_t header = net::kIpv4HeaderSize + shim.serialized_size();
  return net::make_shim_packet(
      src, anycast, shim,
      std::vector<std::uint8_t>(
          wire_size > header ? wire_size - header : 1, 0xE5));
}

}  // namespace nn::core
