// The neutralizer (paper §3): an efficient, stateless service at the
// border of a cooperating ISP that hides which customer of that ISP an
// outside host is talking to.
//
// Datapath summary (Fig. 2):
//
//   KeySetup        outside source sends a one-time RSA public key; we
//                   mint (nonce, Ks = CMAC(KM, nonce ‖ srcIP)) and return
//                   it RSA-encrypted. Cheap for us (e = 3 encryption),
//                   expensive for the source (decryption) — the DoS
//                   asymmetry the paper wants. No state is kept: Ks is
//                   recomputable from any later packet header.
//   KeyLease        inside customer asks for a key in the clear (§3.3).
//   DataForward     outside -> customer. We recompute Ks from
//                   (epoch, nonce, srcIP), decrypt the inner destination,
//                   rewrite dst to the true customer, put our anycast
//                   address in the inner field (the return handle,
//                   Fig. 2 packet 4), and stamp a fresh (nonce', Ks')
//                   when the source requested one.
//   DataReturn      customer -> outside. We recompute Ks, encrypt the
//                   *customer's* address into the inner field, rewrite
//                   src to our anycast address, dst to the initiator.
//
// The class is pure packet-in/packet-out and knows nothing about the
// simulator; sim adapters live in core/box.hpp. Statelessness is a
// tested invariant: two Neutralizer instances sharing a root key are
// interchangeable mid-flow.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/dynamic_addr.hpp"
#include "core/master_key.hpp"
#include "crypto/aes_modes.hpp"
#include "crypto/rsa.hpp"
#include "net/arena.hpp"
#include "net/packet.hpp"
#include "qos/token_bucket.hpp"

namespace nn::persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace nn::persist

namespace nn::core {

struct NeutralizerConfig {
  /// The service's anycast address, shared by all replicas of a domain.
  net::Ipv4Addr anycast_addr;
  /// Addresses of the customers this service protects; decrypted
  /// destinations outside this space are rejected (otherwise the
  /// neutralizer would be an open relay).
  net::Ipv4Prefix customer_space;
  sim::SimTime rotation_period = MasterKeySchedule::kDefaultRotation;
  /// When set, key setups are not answered locally: the packet is
  /// re-targeted at `offload_helper`, a customer that performs the RSA
  /// encryption and answers on the service's behalf (§3.2).
  bool offload_enabled = false;
  net::Ipv4Addr offload_helper;
  /// §3.6 self-protection: cap served key setups (per replica) in
  /// setups/second; 0 = unlimited. "If attackers flood key setup
  /// packets at line speed, a neutralizer may be overloaded" — this cap
  /// bounds the RSA work an attacker can force, complementing pushback.
  double setup_rate_limit = 0;
  /// §3.4: address pool for guaranteed-service sessions. When set, the
  /// service allocates dynamic addresses on request and translates
  /// inbound packets addressed to them. This is deliberate, opt-in,
  /// per-*session* state — the packet datapath stays stateless.
  std::optional<net::Ipv4Prefix> dynamic_pool;
  /// Lease duration for dynamic-address sessions; 0 = sessions live
  /// until released. Leased sessions are retired in bulk by
  /// expire_dynamic_sessions(), never scanned on the packet path.
  sim::SimTime dyn_lease = 0;
};

struct NeutralizerStats {
  std::uint64_t key_setups = 0;
  std::uint64_t key_leases = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_returned = 0;
  std::uint64_t rekeys_stamped = 0;
  std::uint64_t offloaded = 0;
  std::uint64_t dyn_allocated = 0;
  std::uint64_t dyn_translated = 0;
  std::uint64_t dyn_released = 0;
  std::uint64_t dyn_renewed = 0;
  std::uint64_t dyn_expired = 0;
  std::uint64_t dyn_rejected = 0;  // pool exhausted (also counted rejected)
  std::uint64_t sessions_rekeyed = 0;
  std::uint64_t setup_rate_limited = 0;
  std::uint64_t rejected = 0;  // malformed, bad epoch, non-customer, …

  NeutralizerStats& operator+=(const NeutralizerStats& o) noexcept {
    key_setups += o.key_setups;
    key_leases += o.key_leases;
    data_forwarded += o.data_forwarded;
    data_returned += o.data_returned;
    rekeys_stamped += o.rekeys_stamped;
    offloaded += o.offloaded;
    dyn_allocated += o.dyn_allocated;
    dyn_translated += o.dyn_translated;
    dyn_released += o.dyn_released;
    dyn_renewed += o.dyn_renewed;
    dyn_expired += o.dyn_expired;
    dyn_rejected += o.dyn_rejected;
    sessions_rekeyed += o.sessions_rekeyed;
    setup_rate_limited += o.setup_rate_limited;
    rejected += o.rejected;
    return *this;
  }

  friend bool operator==(const NeutralizerStats&,
                         const NeutralizerStats&) = default;
};

class Neutralizer {
 public:
  /// All replicas of a domain are constructed with the same `root_key`.
  /// Every value the service mints (session nonces, rekey nonces, RSA
  /// padding) is derived from the epoch master key and the request —
  /// never from replica-local RNG state — so any two replicas (or any
  /// two shards of a ShardedNeutralizerBox) answer the same request
  /// byte-identically. `nonce_seed` is retained for API compatibility
  /// and no longer observable.
  Neutralizer(const NeutralizerConfig& config, const crypto::AesKey& root_key,
              std::uint64_t nonce_seed = 1);

  /// Processes one packet addressed to the service and returns the
  /// packet to emit, or nullopt when the input is dropped.
  [[nodiscard]] std::optional<net::Packet> process(net::Packet&& pkt,
                                                   sim::SimTime now);

  /// Batched datapath. Processes every packet of `batch` in order with
  /// exactly the per-packet semantics of process() — byte-identical
  /// outputs, identical stats — but the per-epoch key material (master
  /// key derivation + keyed CMAC lookup) is resolved once per batch
  /// instead of once per packet, and the per-packet session keys of all
  /// data packets are derived up front through the batched CMAC entry
  /// point (crypto::derive_keys_batch), which keeps several AES blocks
  /// in flight on accelerated backends. Surviving packets are compacted
  /// to the front of `batch` (relative order preserved) and their count
  /// returned. Data packets are rewritten in place, so the hot path
  /// performs no allocation in steady state (the prepass scratch
  /// buffers are members whose capacity persists across calls); when
  /// `arena` is supplied, the buffers of dropped packets and of
  /// control-packet inputs are recycled through it and the tail slots
  /// `[count, batch.size())` are left empty.
  std::size_t process_batch(std::span<net::Packet> batch, sim::SimTime now,
                            net::PacketArena* arena = nullptr);

  /// Drain seam shared by the simulated boxes and the threaded
  /// ShardRuntime: processes `pending` as one burst through
  /// process_batch (so the whole prepass machinery applies), appends
  /// the survivors to `out` in order, clears `pending`, and returns the
  /// survivor count. Keeping this the single code path is what makes
  /// "runtime output == simulated-box output" a structural property
  /// rather than a test-enforced one.
  std::size_t drain_into(std::vector<net::Packet>& pending, sim::SimTime now,
                         net::PacketArena* arena,
                         std::vector<net::Packet>& out);

  [[nodiscard]] const NeutralizerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const NeutralizerStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const MasterKeySchedule& keys() const noexcept {
    return keys_;
  }
  /// True if `addr` belongs to the dynamic pool this service manages.
  [[nodiscard]] bool owns_dynamic(net::Ipv4Addr addr) const noexcept {
    return config_.dynamic_pool.has_value() &&
           config_.dynamic_pool->contains(addr);
  }
  /// Translates an inbound packet addressed to a dynamic address to its
  /// customer (§3.4); nullopt (drop) for unallocated addresses.
  [[nodiscard]] std::optional<net::Packet> translate_dynamic(
      net::Packet&& pkt);
  [[nodiscard]] std::size_t dynamic_sessions() const noexcept {
    return allocator_ ? allocator_->active_sessions() : 0;
  }

  // ---- §3.4 session control plane -------------------------------------
  // Lifecycle operations on dynamic-address sessions. These are control
  // actions, not packets; the sim scenario (scenario/fig1.*) drives them
  // from SessionChurnWorkload events, and every one is O(1) or
  // O(affected sessions) — never O(resident population) — so a
  // million-session box absorbs churn without scanning.

  /// Releases a dynamic-address session; false if `dynamic` is unknown.
  bool release_dynamic(net::Ipv4Addr dynamic);
  /// Extends a session's lease by config().dyn_lease from `now`; false
  /// if `dynamic` is unknown. No-op (true) for unleased deployments.
  bool renew_dynamic(net::Ipv4Addr dynamic, sim::SimTime now);
  /// Retires every session whose lease expired at or before `now`;
  /// returns how many were collected.
  std::size_t expire_dynamic_sessions(sim::SimTime now);
  /// Epoch-rekey storm (§3.2 rotation meets §3.4 sessions): re-derives
  /// the session key of every resident session not already at the
  /// current epoch, batched through crypto::derive_keys_batch in fixed
  /// stack chunks — allocation-free regardless of population. Returns
  /// the number of sessions rekeyed.
  std::size_t rekey_dynamic_sessions(sim::SimTime now);

  [[nodiscard]] DynamicAddressAllocator* dynamic_allocator() noexcept {
    return allocator_.has_value() ? &*allocator_ : nullptr;
  }
  [[nodiscard]] const DynamicAddressAllocator* dynamic_allocator()
      const noexcept {
    return allocator_.has_value() ? &*allocator_ : nullptr;
  }

  // ---- crash-consistent persistence (defined in persist/state.cpp) ----
  // export_state streams the whole control-plane state — a config
  // fingerprint ('NCFG'), the service counters ('NSTA'), then the
  // allocator's chunks — into an open SnapshotWriter (the caller owns
  // finish()). restore_state consumes a SnapshotReader to the end chunk
  // and overwrites the live control-plane state; it throws
  // persist::StateError when the snapshot was taken by an incompatibly
  // configured or differently-keyed box. Both run at quiescence points
  // only (after flush()/end-of-instant), like every other cross-thread
  // peek at this class. Datapath state is untouched: the datapath is
  // stateless by design, which is exactly why snapshot + journal replay
  // can make a restarted box byte-identical to an uncrashed one.

  void export_state(persist::SnapshotWriter& writer) const;
  void restore_state(persist::SnapshotReader& reader);

 private:
  // Everything the batch prepass derived ahead of the per-packet loop.
  // `ks == nullopt` memoizes a rejection (bad epoch for data packets,
  // rate limit for setups); `crypted` is the packet's address transform
  // (decrypted true destination for DataForward, encrypted customer
  // address for DataReturn), computed through the multi-key ECB
  // pipeline when the key was prederived. For control packets (setup /
  // lease) the prepass batch-mints: `mint_seed` is the CMAC'd minting
  // block (the setup handler reconstructs its padding RNG from it) and
  // `mint_nonce` the first draw, with `ks` the minted session key.
  struct Prederived {
    std::optional<crypto::AesKey> ks;
    std::optional<std::uint32_t> crypted;
    std::optional<crypto::AesBlock> mint_seed;
    std::uint64_t mint_nonce = 0;
    bool rate_limited = false;
  };

  // Per-batch memo of everything the datapath derives from the clock:
  // epoch validity, the keyed per-epoch CMAC, and the current master
  // key used for rekey stamping. One lives on the stack per
  // process_batch() call (per packet for scalar process()), hoisting
  // the master-key derivation out of the per-packet loop.
  struct BatchKeyCache {
    struct Slot {
      std::uint16_t epoch = 0;
      const crypto::Cmac* keyed = nullptr;
      bool used = false;
    };
    // Positive entries only; at any fixed `now` at most two epochs
    // (current + previous) can validate, so two slots always suffice.
    std::array<Slot, 2> slots;
    // Out-of-window epochs memoized separately (round-robin) so a mix
    // of crafted bad epochs cannot starve the positive slots.
    std::array<std::optional<std::uint16_t>, 2> rejected;
    std::size_t next_reject = 0;
    std::optional<std::pair<std::uint16_t, crypto::AesKey>> current;
    // Set by process_batch() for the packet currently in flight when
    // its session key was derived by the prepass; the data handlers
    // then skip session_key() entirely. Null on the scalar path.
    const Prederived* pre = nullptr;
  };

  NeutralizerConfig config_;
  MasterKeySchedule keys_;
  NeutralizerStats stats_;
  // Keyed-CMAC cache per epoch (the datapath's per-packet "hash" then
  // skips the AES key schedule). Four fixed LRU slots, no heap: at any
  // fixed `now` at most two epochs validate (current + previous) and a
  // batch runs at a single `now`, so the two slots a batch touches are
  // always the two most recently stamped — eviction can only hit an
  // epoch no batch has referenced since, which keeps the Cmac pointers
  // BatchKeyCache holds stable for the batch's whole lifetime.
  struct EpochCmacSlot {
    std::uint16_t epoch = 0;
    std::uint64_t stamp = 0;
    std::optional<crypto::Cmac> keyed;
  };
  mutable std::array<EpochCmacSlot, 4> cmac_slots_;
  mutable std::uint64_t cmac_stamp_ = 0;
  std::optional<DynamicAddressAllocator> allocator_;
  std::optional<qos::TokenBucket> setup_limiter_;
  // Prepass scratch, reused across process_batch() calls so the steady
  // state allocates nothing (capacity grows once). `pre_scratch_` is
  // indexed 1:1 with the batch; an outer nullopt means "not prederived"
  // (non-data packet, parse failure, or a handler precondition the
  // prepass saw failing) and the handler falls back to session_key().
  std::vector<std::optional<Prederived>> pre_scratch_;
  std::vector<crypto::KeyDeriveRequest> req_scratch_;
  std::vector<std::size_t> req_idx_scratch_;
  std::vector<const crypto::Cmac*> req_keyed_scratch_;
  std::vector<crypto::KeyDeriveRequest> group_req_scratch_;
  std::vector<std::size_t> group_idx_scratch_;
  std::vector<crypto::AesKey> group_key_scratch_;
  // Address-crypt requests (data packets only — control requests mint
  // but never transform an address), their batch indices, and results.
  std::vector<crypto::AddressCryptRequest> addr_req_scratch_;
  std::vector<std::size_t> addr_idx_scratch_;
  std::vector<std::uint32_t> addr_out_scratch_;
  // Minting blocks/seeds for the control packets of the current batch
  // (setups + leases), CMAC'd in one mac_single_blocks sweep.
  std::vector<crypto::AesBlock> mint_block_scratch_;
  std::vector<crypto::AesBlock> mint_seed_scratch_;
  std::vector<std::size_t> mint_idx_scratch_;
  // RSA scratch: bigint temporaries + padded block + ciphertext, reused
  // across setups so the control path stops allocating once warm.
  crypto::RsaScratch rsa_scratch_;
  std::vector<std::uint8_t> ciphertext_scratch_;

  [[nodiscard]] const crypto::Cmac& keyed_master(std::uint16_t epoch,
                                                 const crypto::AesKey& km)
      const;

  /// Batch prepass: derives the session key of every data packet in
  /// `batch` through crypto::derive_keys_batch into `pre_scratch_`.
  void prederive_batch_keys(std::span<net::Packet> batch, sim::SimTime now,
                            BatchKeyCache& cache);

  /// Shared dispatcher behind process()/process_batch(). The cache
  /// scopes key memoization: per packet (scalar) or per batch. `arena`
  /// (nullable) is where control-path responses are serialized from —
  /// on the batched path that recycles the same batch's spent buffers,
  /// closing the last allocation on the wire path.
  [[nodiscard]] std::optional<net::Packet> process_one(
      net::Packet&& pkt, sim::SimTime now, BatchKeyCache& cache,
      net::PacketArena* arena);

  [[nodiscard]] std::optional<net::Packet> handle_key_setup(
      const net::ParsedPacket& p, sim::SimTime now, BatchKeyCache& cache,
      net::PacketArena* arena);
  [[nodiscard]] std::optional<net::Packet> handle_key_lease(
      const net::ParsedPacket& p, sim::SimTime now, BatchKeyCache& cache,
      net::PacketArena* arena);
  [[nodiscard]] std::optional<net::Packet> handle_data_forward(
      net::Packet&& pkt, sim::SimTime now, BatchKeyCache& cache);
  [[nodiscard]] std::optional<net::Packet> handle_data_return(
      net::Packet&& pkt, sim::SimTime now, BatchKeyCache& cache);
  [[nodiscard]] std::optional<net::Packet> handle_dyn_request(
      const net::ParsedPacket& p, sim::SimTime now, BatchKeyCache& cache,
      net::PacketArena* arena);

  /// Epoch window check + keyed-CMAC lookup shared by the scalar path
  /// and the batch prepass; nullptr when the epoch does not validate at
  /// `now` (memoized in `cache` either way).
  [[nodiscard]] const crypto::Cmac* resolve_keyed(std::uint16_t epoch,
                                                  sim::SimTime now,
                                                  BatchKeyCache& cache) const;
  [[nodiscard]] std::optional<crypto::AesKey> session_key(
      std::uint16_t epoch, std::uint8_t flags, std::uint64_t nonce,
      net::Ipv4Addr outside_addr, sim::SimTime now,
      BatchKeyCache& cache) const;
  /// (epoch, master key) for minting fresh keys at `now`, memoized in
  /// `cache` when one is supplied.
  [[nodiscard]] const std::pair<std::uint16_t, crypto::AesKey>& minting_key(
      sim::SimTime now, BatchKeyCache& cache) const;
};

}  // namespace nn::core
