#include "core/box.hpp"

#include <algorithm>

#include "net/shim.hpp"

namespace nn::core {

sim::SimTime service_cost(const BoxCosts& costs,
                          const net::Packet& pkt) noexcept {
  if (pkt.size() > net::kIpv4HeaderSize) {
    const auto type =
        static_cast<net::ShimType>(pkt.bytes[net::kIpv4HeaderSize]);
    if (type == net::ShimType::kKeySetup ||
        type == net::ShimType::kKeySetupResponse) {
      return costs.key_setup;
    }
  }
  return costs.data_path;
}

void NeutralizerBox::consume(net::Packet&& pkt) {
  // §3.4 inbound leg: packets to a dynamic address are translated to
  // the owning customer and re-sent (any protocol, not just shim).
  if (pkt.size() >= net::kIpv4HeaderSize) {
    if (service_.owns_dynamic(net::packet_dst(pkt))) {
      auto translated = service_.translate_dynamic(std::move(pkt));
      if (translated.has_value()) send(std::move(*translated));
      return;
    }
  }

  if (batch_drain_) {
    // Park the packet; every arrival in this simulated instant joins
    // the same batch, drained once the instant's deliveries are done.
    pending_.push_back(std::move(pkt));
    if (pending_.size() == 1) {
      network().engine().defer([this] { drain_pending(); });
    }
    return;
  }

  auto result = service_.process(std::move(pkt), network().now());
  if (result.has_value()) emit(std::move(*result));
}

void NeutralizerBox::drain_pending() {
  if (pending_.empty()) return;
  batch_stats_.batches += 1;
  batch_stats_.batched_packets += pending_.size();
  batch_stats_.max_batch =
      std::max<std::uint64_t>(batch_stats_.max_batch, pending_.size());
  const std::size_t survivors = service_.process_batch(
      {pending_.data(), pending_.size()}, network().now(), &arena_);
  for (std::size_t i = 0; i < survivors; ++i) {
    emit(std::move(pending_[i]));
  }
  pending_.clear();
}

void NeutralizerBox::emit(net::Packet&& pkt) {
  // Charge the configured service time before the result leaves.
  const sim::SimTime cost = service_cost(costs_, pkt);
  if (cost > 0) {
    network().engine().schedule_in(
        cost, [this, p = std::move(pkt)]() mutable { send(std::move(p)); });
  } else {
    send(std::move(pkt));
  }
}

}  // namespace nn::core
