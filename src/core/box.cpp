#include "core/box.hpp"

#include <algorithm>

#include "net/shim.hpp"

namespace nn::core {

sim::SimTime service_cost(const BoxCosts& costs,
                          const net::Packet& pkt) noexcept {
  if (pkt.size() > net::kIpv4HeaderSize) {
    const auto type =
        static_cast<net::ShimType>(pkt.bytes[net::kIpv4HeaderSize]);
    if (type == net::ShimType::kKeySetup ||
        type == net::ShimType::kKeySetupResponse) {
      return costs.key_setup;
    }
  }
  return costs.data_path;
}

void NeutralizerBox::consume_at(net::Packet&& pkt, sim::SimTime at) {
  // §3.4 inbound leg: packets to a dynamic address are translated to
  // the owning customer and re-sent (any protocol, not just shim).
  if (pkt.size() >= net::kIpv4HeaderSize) {
    if (service_.owns_dynamic(net::packet_dst(pkt))) {
      auto translated = service_.translate_dynamic(std::move(pkt));
      if (translated.has_value()) send(std::move(*translated), at);
      return;
    }
  }

  if (batch_drain_) {
    // Park the stamped packet; every arrival in this simulated instant
    // (a burst-mode link hands a whole train over in one event) joins
    // the drain at the end of the instant.
    pending_.push_back(sim::Delivery{std::move(pkt), at});
    network().engine().defer_once(this, [this] { drain_pending(); });
    return;
  }

  auto result = service_.process(std::move(pkt), at);
  if (result.has_value()) emit(std::move(*result), at);
}

void NeutralizerBox::drain_pending() {
  if (pending_.empty()) return;
  // A coalesced train spans virtual time, so the parked deliveries can
  // carry distinct stamps. Process stamp groups in order: each batch
  // sees exactly the clock per-packet mode would have given it, and
  // batch_stats_ counts one batch per instant either way.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const sim::Delivery& a, const sim::Delivery& b) {
                     return a.at < b.at;
                   });
  std::size_t i = 0;
  while (i < pending_.size()) {
    const sim::SimTime at = pending_[i].at;
    std::size_t j = i;
    while (j < pending_.size() && pending_[j].at == at) ++j;
    batch_.clear();
    batch_.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) {
      batch_.push_back(std::move(pending_[k].pkt));
    }
    batch_stats_.batches += 1;
    batch_stats_.batched_packets += batch_.size();
    batch_stats_.max_batch =
        std::max<std::uint64_t>(batch_stats_.max_batch, batch_.size());
    const std::size_t survivors =
        service_.process_batch({batch_.data(), batch_.size()}, at, &arena_);
    for (std::size_t k = 0; k < survivors; ++k) {
      emit(std::move(batch_[k]), at);
    }
    i = j;
  }
  pending_.clear();
  batch_.clear();
}

void NeutralizerBox::emit(net::Packet&& pkt, sim::SimTime at) {
  // Charge the configured service time before the result leaves; the
  // departure rides the packet's own timeline (Link::send defers a
  // future-stamped emission to its own instant).
  const sim::SimTime cost = service_cost(costs_, pkt);
  send(std::move(pkt), cost > 0 ? at + cost : at);
}

}  // namespace nn::core
