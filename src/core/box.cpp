#include "core/box.hpp"

#include "net/shim.hpp"

namespace nn::core {

void NeutralizerBox::consume(net::Packet&& pkt) {
  // §3.4 inbound leg: packets to a dynamic address are translated to
  // the owning customer and re-sent (any protocol, not just shim).
  if (pkt.size() >= net::kIpv4HeaderSize) {
    const net::Ipv4Addr dst(
        (static_cast<std::uint32_t>(pkt.bytes[16]) << 24) |
        (static_cast<std::uint32_t>(pkt.bytes[17]) << 16) |
        (static_cast<std::uint32_t>(pkt.bytes[18]) << 8) | pkt.bytes[19]);
    if (service_.owns_dynamic(dst)) {
      auto translated = service_.translate_dynamic(std::move(pkt));
      if (translated.has_value()) send(std::move(*translated));
      return;
    }
  }
  // Charge the configured service time before the result leaves.
  sim::SimTime cost = costs_.data_path;
  if (pkt.size() > net::kIpv4HeaderSize &&
      pkt.bytes[net::kIpv4HeaderSize] ==
          static_cast<std::uint8_t>(net::ShimType::kKeySetup)) {
    cost = costs_.key_setup;
  }

  auto result = service_.process(std::move(pkt), network().now());
  if (!result.has_value()) return;

  if (cost > 0) {
    network().engine().schedule_in(
        cost, [this, p = std::move(*result)]() mutable { send(std::move(p)); });
  } else {
    send(std::move(*result));
  }
}

}  // namespace nn::core
