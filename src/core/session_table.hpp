// Open-addressing session table for the §3.4 control plane.
//
// The datapath is stateless, but dynamic-address sessions are deliberate
// per-session state, and at production scale ("10M+ concurrent sessions",
// ROADMAP) the node-based std::unordered_map that seeded this layer is
// the wrong shape: one heap allocation per session, pointer-chasing on
// every packet-path lookup, and ~56 bytes of node overhead before the
// record itself. This table applies the net::PacketArena idiom to
// session records instead of packet buffers:
//
//   * Records live in a slab (one contiguous vector), recycled through a
//     freelist exactly like arena buffers — erase parks the slot,
//     insert reuses it, and steady-state churn touches the heap never.
//   * The index is a flat power-of-two bucket array of u32 slot ids
//     probed linearly; deletion uses backward-shift compaction (no
//     tombstones), so probe chains stay short under brutal churn.
//   * Growth policy: buckets double at 7/8 load; slab grows by vector
//     doubling. reserve() front-loads both so a sized deployment never
//     rehashes. Rehashing relocates only the u32 index — records never
//     move — and is observationally invisible (pinned by
//     tests/core/test_session_table.cpp across forced rehash points).
//
// Single-threaded by design, like the Neutralizer shard that owns it
// (the allocator lives on shard 0; see core/sharded_box.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "crypto/aes.hpp"
#include "sim/engine.hpp"

namespace nn::persist {
class SnapshotWriter;
}  // namespace nn::persist

namespace nn::core {

/// One resident dynamic-address session. Value-type, slab-resident: the
/// table owns the storage and hands out pointers that stay valid until
/// the record is erased or the slab grows (callers that cache pointers
/// across inserts must reserve() first, same contract as std::vector).
struct SessionRecord {
  /// No lease: the session lives until released.
  static constexpr sim::SimTime kNoExpiry =
      std::numeric_limits<sim::SimTime>::max();

  std::uint32_t dyn_value = 0;  ///< the dynamic address (table key)
  std::uint32_t customer = 0;   ///< the hidden real customer address
  sim::SimTime expiry = kNoExpiry;
  std::uint16_t key_epoch = 0;  ///< epoch session_key was derived under
  crypto::AesKey session_key{};
};

struct SessionTableStats {
  /// Records that had to extend the slab (cf. PacketArenaStats::
  /// heap_allocations); everything else came off the freelist.
  std::uint64_t slab_growths = 0;
  std::uint64_t freelist_reuses = 0;
  std::uint64_t rehashes = 0;
};

class SessionTable {
 public:
  explicit SessionTable(std::size_t initial_buckets = 16) {
    std::size_t n = 16;
    while (n < initial_buckets) n <<= 1;
    buckets_.assign(n, kEmpty);
  }

  /// Inserts a fresh record for `key` and returns it (fields default-
  /// initialized except dyn_value). Returns nullptr if `key` is already
  /// present — sessions are unique by dynamic address.
  SessionRecord* insert(std::uint32_t key) {
    if ((size_ + 1) * 8 > buckets_.size() * 7) rehash(buckets_.size() * 2);
    std::size_t b = home(key);
    for (;; b = next(b)) {
      const std::uint32_t slot = buckets_[b];
      if (slot == kEmpty) break;
      if (slab_[slot].dyn_value == key) return nullptr;
    }
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      ++stats_.freelist_reuses;
      slab_[slot] = SessionRecord{};
    } else {
      slot = static_cast<std::uint32_t>(slab_.size());
      if (slab_.size() == slab_.capacity()) ++stats_.slab_growths;
      slab_.emplace_back();
    }
    slab_[slot].dyn_value = key;
    buckets_[b] = slot;
    ++size_;
    return &slab_[slot];
  }

  [[nodiscard]] SessionRecord* find(std::uint32_t key) noexcept {
    for (std::size_t b = home(key);; b = next(b)) {
      const std::uint32_t slot = buckets_[b];
      if (slot == kEmpty) return nullptr;
      if (slab_[slot].dyn_value == key) return &slab_[slot];
    }
  }
  [[nodiscard]] const SessionRecord* find(std::uint32_t key) const noexcept {
    return const_cast<SessionTable*>(this)->find(key);
  }

  /// Erases `key`; the record's slot is parked on the freelist. Probe
  /// chains are repaired by backward-shift compaction, so lookups never
  /// step over tombstones no matter how long the churn runs.
  bool erase(std::uint32_t key) noexcept {
    std::size_t b = home(key);
    for (;; b = next(b)) {
      const std::uint32_t slot = buckets_[b];
      if (slot == kEmpty) return false;
      if (slab_[slot].dyn_value == key) break;
    }
    free_slots_.push_back(buckets_[b]);
    // Backward shift: pull every displaced follower into the hole.
    std::size_t hole = b;
    for (std::size_t j = next(b);; j = next(j)) {
      const std::uint32_t slot = buckets_[j];
      if (slot == kEmpty) break;
      const std::size_t h = home(slab_[slot].dyn_value);
      // The entry at j may move into the hole iff its home position is
      // cyclically outside (hole, j] — i.e. it probed past the hole.
      if (distance(h, j) >= distance(hole, j)) {
        buckets_[hole] = slot;
        hole = j;
      }
    }
    buckets_[hole] = kEmpty;
    --size_;
    return true;
  }

  /// Pre-sizes both the slab and the bucket array for `n` resident
  /// sessions so steady-state churn below `n` never touches the heap.
  /// Not counted in stats().rehashes — that counter observes growth
  /// forced by load, and a reserved deployment must read 0 there.
  void reserve(std::size_t n) {
    slab_.reserve(n);
    free_slots_.reserve(n);
    std::size_t want = buckets_.size();
    while (n * 8 > want * 7) want <<= 1;
    if (want > buckets_.size()) resize_index(want);
  }

  /// Visits every resident record (index order — membership is exact,
  /// visit order depends on the bucket layout; the epoch-rekey storm
  /// iterates here and derives each record independently, so order
  /// never reaches an observable result).
  template <typename F>
  void for_each(F&& fn) {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (buckets_[b] != kEmpty) fn(slab_[buckets_[b]]);
    }
  }
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (buckets_[b] != kEmpty) fn(slab_[buckets_[b]]);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  /// Resident footprint: slab + index + freelist, the bytes/session
  /// numerator bench_control reports.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slab_.capacity() * sizeof(SessionRecord) +
           buckets_.capacity() * sizeof(std::uint32_t) +
           free_slots_.capacity() * sizeof(std::uint32_t);
  }
  [[nodiscard]] const SessionTableStats& stats() const noexcept {
    return stats_;
  }
  /// Occupancy of the bucket array (0..7/8 by the growth policy).
  [[nodiscard]] double load_factor() const noexcept {
    return static_cast<double>(size_) / static_cast<double>(buckets_.size());
  }
  /// Longest probe chain any resident key rides (1 = every key sits at
  /// home). On-demand scan over the index — diagnostics, not the packet
  /// path.
  [[nodiscard]] std::size_t max_probe_length() const noexcept {
    std::size_t worst = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      const std::uint32_t slot = buckets_[b];
      if (slot == kEmpty) continue;
      const std::size_t len = distance(home(slab_[slot].dyn_value), b) + 1;
      if (len > worst) worst = len;
    }
    return worst;
  }

  /// Streams every resident record out as fixed-size 'SREC' chunks.
  /// Defined in persist/state.cpp with the rest of the state hooks.
  void export_state(persist::SnapshotWriter& writer) const;
  /// Restores the records of one 'SREC' chunk payload into the table
  /// (additive — reserve() first, then feed chunks in file order).
  /// Throws persist::FormatError / persist::StateError on malformed or
  /// duplicate records.
  void restore_records(std::span<const std::uint8_t> payload);

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  [[nodiscard]] std::size_t home(std::uint32_t key) const noexcept {
    // SplitMix64 finalizer — same spread the shard dispatch hash uses.
    std::uint64_t z = key + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(z ^ (z >> 31)) & (buckets_.size() - 1);
  }
  [[nodiscard]] std::size_t next(std::size_t b) const noexcept {
    return (b + 1) & (buckets_.size() - 1);
  }
  /// Cyclic probe distance from `from` to `to`.
  [[nodiscard]] std::size_t distance(std::size_t from,
                                     std::size_t to) const noexcept {
    return (to - from) & (buckets_.size() - 1);
  }

  void rehash(std::size_t new_buckets) {
    ++stats_.rehashes;
    resize_index(new_buckets);
  }

  void resize_index(std::size_t new_buckets) {
    std::vector<std::uint32_t> old = std::move(buckets_);
    buckets_.assign(new_buckets, kEmpty);
    for (const std::uint32_t slot : old) {
      if (slot == kEmpty) continue;
      std::size_t b = home(slab_[slot].dyn_value);
      while (buckets_[b] != kEmpty) b = next(b);
      buckets_[b] = slot;
    }
  }

  std::vector<std::uint32_t> buckets_;
  std::vector<SessionRecord> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t size_ = 0;
  SessionTableStats stats_;
};

}  // namespace nn::core
