// Sharded neutralizer cluster: N independent Neutralizer instances
// sharing one root key behind a single anycast address, modeling one
// box per core. Arrivals are dispatched by an RSS-style hash over
// (outside address, flow nonce), so both legs of a session always land
// on the same shard and arrive in order; and because the datapath is
// stateless (tests/core/test_stateless_property.cpp) and control-path
// minting is a PRF of the master key and the request, *any* dispatch is
// semantically equivalent to a single box — shard-count equivalence is
// byte-exact (tests/core/test_sharded_box.cpp).
//
// Shards share no mutable state at all, which is what the paper's
// stateless design buys: a deployment runs one shard per core (or one
// box per rack) with zero coordination, and capacity scales with the
// shard count. bench_sharding measures that scaling on the paper's
// 112-byte workload.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/box.hpp"
#include "core/neutralizer.hpp"
#include "net/arena.hpp"
#include "runtime/shard_runtime.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace nn::core {

/// RSS-style flow hash (SplitMix64 finalizer rather than a NIC's
/// Toeplitz, but the property is the same: deterministic, seedless,
/// well spread over (outside address, nonce)).
[[nodiscard]] std::uint32_t flow_hash(std::uint32_t outside_addr,
                                      std::uint64_t nonce) noexcept;

/// Shard index for a serialized packet, reading only the fields the
/// dispatch needs (no full parse, never throws). Data packets hash
/// (outside address, session nonce) — the outside address is the IP
/// source for DataForward and the inner (initiator) address for
/// DataReturn, so forward and return legs co-locate. Control packets
/// hash (IP source, request id). Dynamic-address requests pin to shard
/// 0, where the deliberate per-session state lives. Garbage — short,
/// non-IPv4, or non-shim buffers — hashes whatever source bytes exist;
/// every shard rejects it identically.
[[nodiscard]] std::size_t shard_for_packet(const net::Packet& pkt,
                                           std::size_t shard_count) noexcept;

/// The cluster itself, simulator-agnostic: per-shard Neutralizer +
/// PacketArena + pending burst. Distinct shards touch disjoint state,
/// so different shards may be drained from different threads (the
/// scaling benchmark does); dispatch (enqueue) is single-threaded by
/// design, like the packet sources that feed it.
class ShardedNeutralizer {
 public:
  ShardedNeutralizer(std::size_t shard_count, const NeutralizerConfig& config,
                     const crypto::AesKey& root_key);

  /// Number of shards, fixed at construction (>= 1).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Shard i's Neutralizer. Precondition: i < shard_count().
  [[nodiscard]] Neutralizer& shard(std::size_t i) { return shards_[i].service; }
  [[nodiscard]] const Neutralizer& shard(std::size_t i) const {
    return shards_[i].service;
  }
  /// Shard i's private buffer arena (drains recycle through it).
  [[nodiscard]] net::PacketArena& arena(std::size_t i) {
    return shards_[i].arena;
  }
  /// Where the dispatch hash sends `pkt` (< shard_count(), no parse,
  /// never throws).
  [[nodiscard]] std::size_t shard_for(const net::Packet& pkt) const noexcept {
    return shard_for_packet(pkt, shards_.size());
  }
  /// The NeutralizerConfig every shard shares.
  [[nodiscard]] const NeutralizerConfig& config() const noexcept {
    return shards_.front().service.config();
  }
  /// Sum of every shard's NeutralizerStats.
  [[nodiscard]] NeutralizerStats aggregate_stats() const;

  /// True when `addr` is a §3.4 dynamic address allocated by this
  /// cluster (the allocator lives on shard 0).
  [[nodiscard]] bool owns_dynamic(net::Ipv4Addr addr) const noexcept {
    return shards_.front().service.owns_dynamic(addr);
  }
  /// Dynamic-address translation; the allocator lives on shard 0.
  [[nodiscard]] std::optional<net::Packet> translate_dynamic(
      net::Packet&& pkt) {
    return shards_.front().service.translate_dynamic(std::move(pkt));
  }

  /// Parks `pkt` on its shard's pending burst; returns the shard index.
  std::size_t enqueue(net::Packet&& pkt);
  /// Packets parked on shard i since its last drain.
  [[nodiscard]] std::size_t pending(std::size_t i) const noexcept {
    return shards_[i].pending.size();
  }
  /// Drains shard `i`'s pending burst through process_batch with the
  /// shard's arena; survivors are appended to `out` in order. Returns
  /// the survivor count.
  std::size_t drain_shard(std::size_t i, sim::SimTime now,
                          std::vector<net::Packet>& out);

 private:
  struct Shard {
    Shard(const NeutralizerConfig& config, const crypto::AesKey& root_key)
        : service(config, root_key) {}
    Neutralizer service;
    net::PacketArena arena;
    std::vector<net::Packet> pending;
  };
  std::vector<Shard> shards_;
};

/// Simulator adapter, the sharded sibling of NeutralizerBox: a border
/// router hosting the whole cluster behind one anycast address. Every
/// same-instant burst is dispatched on arrival and drained per shard at
/// the end of the instant (Engine::defer). Unlike NeutralizerBox, which
/// charges BoxCosts as a fixed per-packet latency, each shard here is
/// an independent serial server — one core — so a burst's completion
/// time shrinks with the shard count; join_service_anycast advertises
/// that capacity to anycast routing.
class ShardedNeutralizerBox final : public sim::Router {
 public:
  ShardedNeutralizerBox(std::string name, std::size_t shard_count,
                        const NeutralizerConfig& config,
                        const crypto::AesKey& root_key, BoxCosts costs = {})
      : Router(std::move(name)),
        cluster_(shard_count, config, root_key),
        costs_(costs),
        root_key_(root_key),
        shard_busy_until_(cluster_.shard_count(), 0) {}

  /// Switches the box to execute its drains on a real ShardRuntime
  /// (one worker thread per shard) through the IngressPort surface
  /// instead of the in-process cluster. The sim thread submits each
  /// stamp group through the ports, flushes, and emits the per-shard
  /// egress exactly where the in-process drain would have — so with
  /// the default single ingress queue the emitted wire bytes are
  /// identical to the in-process mode, packet for packet
  /// (tests/core/test_sharded_box.cpp pins this). With
  /// `config.ingress_queues > 1` the sim thread round-robins the ports
  /// and per-shard output is multiset-identical but may interleave
  /// differently. Must be called before any traffic reaches the box;
  /// `egress` is forced to kCollect (the box needs the survivors).
  /// Throws std::invalid_argument on an invalid RuntimeConfig.
  void back_with_runtime(runtime::RuntimeConfig config = {});

  /// The backing runtime, or nullptr when running in-process.
  [[nodiscard]] runtime::ShardRuntime* backing_runtime() noexcept {
    return runtime_.get();
  }

  /// The hosted cluster (for per-shard inspection in tests/examples).
  [[nodiscard]] ShardedNeutralizer& cluster() noexcept { return cluster_; }
  [[nodiscard]] const ShardedNeutralizer& cluster() const noexcept {
    return cluster_;
  }
  /// Sum of every shard's NeutralizerStats (from the backing runtime
  /// when one is attached — the in-process cluster is idle then).
  [[nodiscard]] NeutralizerStats aggregate_stats() const {
    return runtime_ ? runtime_->aggregate_stats()
                    : cluster_.aggregate_stats();
  }
  /// Aggregate over all shard drains: one "batch" per shard per instant.
  [[nodiscard]] const BoxBatchStats& batch_stats() const noexcept {
    return batch_stats_;
  }
  /// The service anycast address the cluster answers on.
  [[nodiscard]] net::Ipv4Addr anycast_addr() const noexcept {
    return cluster_.config().anycast_addr;
  }

  /// Registers the box in the service's anycast group, advertising its
  /// shard count (or the explicit BoxCosts::capacity) as the weight.
  void join_service_anycast(sim::Network& net);

 protected:
  [[nodiscard]] bool is_local_destination(net::Ipv4Addr dst) const override {
    return dst == anycast_addr() || owns_dynamic(dst) ||
           sim::Router::is_local_destination(dst);
  }
  void consume_at(net::Packet&& pkt, sim::SimTime at) override;

 private:
  ShardedNeutralizer cluster_;
  BoxCosts costs_;
  crypto::AesKey root_key_;  // kept for deferred runtime construction
  std::unique_ptr<runtime::ShardRuntime> runtime_;
  BoxBatchStats batch_stats_;
  // Per-shard serial-server horizon: the time the shard's core frees up.
  std::vector<sim::SimTime> shard_busy_until_;
  // Stamped arrivals parked until the end-of-instant drain (a burst-mode
  // link delivers a whole train in one event; stamp groups are
  // dispatched to the cluster one at a time, in order).
  std::vector<sim::Delivery> pending_;
  std::vector<net::Packet> drained_;  // scratch, reused across drains

  // Shard-0 dynamic-address state, wherever it lives (runtime worker 0
  // when backed, cluster shard 0 otherwise). Safe off the worker
  // threads: the runtime is quiescent between instants (every drain
  // ends with flush()).
  [[nodiscard]] bool owns_dynamic(net::Ipv4Addr dst) const noexcept {
    return runtime_ ? runtime_->shard(0).owns_dynamic(dst)
                    : cluster_.owns_dynamic(dst);
  }

  void drain_all();
  void drain_group_on_runtime(std::size_t first, std::size_t last,
                              sim::SimTime at);
  void emit_from_shard(std::size_t shard, net::Packet&& pkt, sim::SimTime at);
};

}  // namespace nn::core
