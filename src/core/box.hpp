// Simulator adapter: a border router that also hosts the neutralizer
// service ("these neutralizers can either be inline boxes or part of a
// border router's functionality", paper §3). It intercepts packets
// addressed to the service anycast address, runs them through the
// Neutralizer, and re-emits the result — optionally after a configurable
// processing delay so simulations can model the measured crypto costs.
#pragma once

#include <memory>
#include <vector>

#include "core/neutralizer.hpp"
#include "net/arena.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace nn::core {

struct BoxCosts {
  /// Service time charged per key-setup packet (models the RSA
  /// encryption; e.g. 1e9/24400 ns to mirror the paper's 24.4 kpps).
  sim::SimTime key_setup = 0;
  /// Service time per data packet (CMAC + AES address decrypt).
  sim::SimTime data_path = 0;
  /// Service capacity advertised to anycast routing: equidistant
  /// replicas of a group are tie-broken toward the highest weight, so a
  /// bigger box attracts the traffic. 0 = auto (1 for a NeutralizerBox,
  /// the shard count for a ShardedNeutralizerBox).
  std::size_t capacity = 0;
};

struct BoxBatchStats {
  std::uint64_t batches = 0;
  std::uint64_t batched_packets = 0;
  std::uint64_t max_batch = 0;
};

/// Service-time class of an emitted packet: key-setup traffic (request
/// or response) bills `key_setup`, everything else the data rate. The
/// class is read off the *emitted* packet — only a key setup produces a
/// kKeySetupResponse (or an offloaded kKeySetup), so this matches
/// charging by input type while surviving batch compaction. Shared by
/// NeutralizerBox and ShardedNeutralizerBox so the cost models cannot
/// drift.
[[nodiscard]] sim::SimTime service_cost(const BoxCosts& costs,
                                        const net::Packet& pkt) noexcept;

class NeutralizerBox final : public sim::Router {
 public:
  NeutralizerBox(std::string name, const NeutralizerConfig& config,
                 const crypto::AesKey& root_key, std::uint64_t nonce_seed = 1,
                 BoxCosts costs = {})
      : Router(std::move(name)),
        service_(config, root_key, nonce_seed),
        costs_(costs) {}

  [[nodiscard]] const Neutralizer& service() const noexcept {
    return service_;
  }
  /// Mutable service access for the §3.4 control plane (renew/release/
  /// expire/rekey between packets).
  [[nodiscard]] Neutralizer& service() noexcept { return service_; }
  /// Opt-in batch drain: instead of running the service once per
  /// delivery event, arrivals are parked and the whole burst is drained
  /// through Neutralizer::process_batch at the end of the simulated
  /// instant (Engine::defer), with dropped buffers recycled through the
  /// box arena. Same packets out, amortized key derivation.
  void set_batch_drain(bool enabled) noexcept { batch_drain_ = enabled; }
  [[nodiscard]] bool batch_drain() const noexcept { return batch_drain_; }
  [[nodiscard]] const BoxBatchStats& batch_stats() const noexcept {
    return batch_stats_;
  }
  [[nodiscard]] const net::PacketArena& arena() const noexcept {
    return arena_;
  }
  [[nodiscard]] net::Ipv4Addr anycast_addr() const noexcept {
    return service_.config().anycast_addr;
  }

  /// Registers the box in the service's anycast group. Call once per
  /// box after topology construction.
  void join_service_anycast(sim::Network& net) {
    net.join_anycast(*this, anycast_addr(),
                     costs_.capacity == 0 ? 1 : costs_.capacity);
    if (service_.config().dynamic_pool.has_value()) {
      net.assign_prefix(*this, *service_.config().dynamic_pool);
    }
  }

 protected:
  [[nodiscard]] bool is_local_destination(
      net::Ipv4Addr dst) const override {
    return dst == anycast_addr() || service_.owns_dynamic(dst) ||
           sim::Router::is_local_destination(dst);
  }

  void consume_at(net::Packet&& pkt, sim::SimTime at) override;

 private:
  Neutralizer service_;
  BoxCosts costs_;
  bool batch_drain_ = false;
  // Parked stamped arrivals awaiting the end-of-instant drain, and the
  // scratch batch handed to Neutralizer::process_batch per stamp group.
  std::vector<sim::Delivery> pending_;
  std::vector<net::Packet> batch_;
  net::PacketArena arena_;
  BoxBatchStats batch_stats_;

  void drain_pending();
  void emit(net::Packet&& pkt, sim::SimTime at);
};

}  // namespace nn::core
