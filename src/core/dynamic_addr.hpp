// Dynamic address allocation for guaranteed (per-flow) QoS sessions,
// paper §3.4: anonymized traffic defeats per-flow reservations, so "a
// neutralizer [may] assign a dynamic address to a customer that
// initiates a QoS session. This dynamic address allows the
// discriminatory ISP to identify a flow, but does not allow it to map
// the flow to a specific customer."
//
// Unlike the datapath, this is deliberately stateful — it exists only
// for customers that opt into RSVP-style sessions, and the state is
// per-session, not per-packet.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/addr.hpp"

namespace nn::core {

class DynamicAddressAllocator {
 public:
  /// `pool` must not overlap the customer space (the addresses must be
  /// meaningless to outside observers).
  explicit DynamicAddressAllocator(net::Ipv4Prefix pool);

  /// Allocates a fresh dynamic address mapped to `customer`; nullopt
  /// when the pool is exhausted. One customer may hold many sessions.
  [[nodiscard]] std::optional<net::Ipv4Addr> allocate(
      net::Ipv4Addr customer);

  /// Resolves a dynamic address back to the real customer (neutralizer
  /// internal use only — this mapping is the secret).
  [[nodiscard]] std::optional<net::Ipv4Addr> resolve(
      net::Ipv4Addr dynamic) const;

  void release(net::Ipv4Addr dynamic);

  [[nodiscard]] std::size_t active_sessions() const noexcept {
    return mapping_.size();
  }
  [[nodiscard]] const net::Ipv4Prefix& pool() const noexcept { return pool_; }

 private:
  net::Ipv4Prefix pool_;
  std::uint32_t next_offset_ = 1;
  std::uint32_t capacity_;
  std::unordered_map<net::Ipv4Addr, net::Ipv4Addr> mapping_;
};

}  // namespace nn::core
