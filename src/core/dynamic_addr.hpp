// Dynamic address allocation for guaranteed (per-flow) QoS sessions,
// paper §3.4: anonymized traffic defeats per-flow reservations, so "a
// neutralizer [may] assign a dynamic address to a customer that
// initiates a QoS session. This dynamic address allows the
// discriminatory ISP to identify a flow, but does not allow it to map
// the flow to a specific customer."
//
// Unlike the datapath, this is deliberately stateful — it exists only
// for customers that opt into RSVP-style sessions, and the state is
// per-session, not per-packet. Sessions live in an open-addressing
// SessionTable (slab records, no per-session heap nodes); address
// assignment is O(1) — a bump cursor over never-used offsets plus a
// LIFO stack of recycled ones — replacing the seed's O(capacity)
// linear probe. Leases are optional: allocate with a lease duration and
// expire_due() retires overdue sessions off a lazy min-heap, so the
// packet path never scans the population.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/session_table.hpp"
#include "net/addr.hpp"
#include "sim/engine.hpp"

namespace nn::persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace nn::persist

namespace nn::core {

/// Exact lifecycle accounting: at any instant
///   allocated == released + expired + active_sessions()
/// (renewed and rejected count events, not residents). The churn soak
/// asserts this identity after hours of compressed arrivals.
struct DynSessionCounters {
  std::uint64_t allocated = 0;
  std::uint64_t released = 0;
  std::uint64_t expired = 0;
  std::uint64_t renewed = 0;
  std::uint64_t rejected = 0;  ///< pool exhausted

  friend bool operator==(const DynSessionCounters&,
                         const DynSessionCounters&) = default;
};

class DynamicAddressAllocator {
 public:
  /// `pool` must not overlap the customer space (the addresses must be
  /// meaningless to outside observers).
  explicit DynamicAddressAllocator(net::Ipv4Prefix pool);

  /// Allocates a fresh dynamic address mapped to `customer`; nullopt
  /// when the pool is exhausted. One customer may hold many sessions.
  /// `lease` > 0 arms an expiry at `now + lease` (collected by
  /// expire_due); 0 allocates an unleased session.
  [[nodiscard]] std::optional<net::Ipv4Addr> allocate(net::Ipv4Addr customer,
                                                      sim::SimTime now = 0,
                                                      sim::SimTime lease = 0);

  /// Resolves a dynamic address back to the real customer (neutralizer
  /// internal use only — this mapping is the secret).
  [[nodiscard]] std::optional<net::Ipv4Addr> resolve(
      net::Ipv4Addr dynamic) const;

  /// Releases a resident session; false if `dynamic` is not resident.
  bool release(net::Ipv4Addr dynamic);

  /// Extends a leased (or unleased) session to expire at `now + lease`;
  /// false if `dynamic` is not resident. lease == 0 clears the lease.
  bool renew(net::Ipv4Addr dynamic, sim::SimTime now, sim::SimTime lease);

  /// Retires every session whose lease deadline is <= `now`; returns
  /// how many. O(expired log heap) — independent of the resident count.
  std::size_t expire_due(sim::SimTime now);

  /// Earliest armed lease deadline, or nullopt when none is armed
  /// (lets callers schedule the next sweep instead of polling).
  [[nodiscard]] std::optional<sim::SimTime> next_expiry() const noexcept;

  /// Pre-sizes table, offset stack, and lease heap for `n` resident
  /// sessions: churn below that population is then allocation-free.
  void reserve(std::size_t n);

  [[nodiscard]] std::size_t active_sessions() const noexcept {
    return table_.size();
  }
  [[nodiscard]] const net::Ipv4Prefix& pool() const noexcept { return pool_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const DynSessionCounters& counters() const noexcept {
    return counters_;
  }
  /// Resident footprint in bytes (table + allocator bookkeeping) — the
  /// bytes/session numerator.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// The session table itself (per-record state: lease deadline,
  /// session key, key epoch). The epoch-rekey storm iterates here.
  [[nodiscard]] SessionTable& table() noexcept { return table_; }
  [[nodiscard]] const SessionTable& table() const noexcept { return table_; }

  // --- persistence hooks (defined in persist/state.cpp) ---------------
  //
  // export_state writes 'DALC' (cursor + counters + pool fingerprint),
  // 'DFRE' (the recycled-offset stack, order preserved — it is LIFO
  // state), then delegates to the table's 'SREC' chunks. Restoring is
  // chunk-at-a-time so core::Neutralizer can drive one SnapshotReader
  // over its own chunks and the allocator's: feed each payload through
  // restore_chunk() and call finish_restore() once — it rebuilds the
  // lease heap and cross-checks counters against the accounting
  // identity before declaring the state live. restore_state() is the
  // standalone loop over a reader that holds only allocator chunks.

  void export_state(persist::SnapshotWriter& writer) const;
  void restore_state(persist::SnapshotReader& reader);
  /// True if `tag` belongs to the allocator ('DALC'/'DFRE'/'SREC') and
  /// the payload was consumed. 'DALC' must arrive first — it resets the
  /// allocator to empty and pre-sizes everything that follows.
  bool restore_chunk(std::uint32_t tag, std::span<const std::uint8_t> payload);
  /// Validates the restored state (residency/freelist conservation,
  /// duplicate or out-of-pool offsets, the counter identity) and
  /// rebuilds the lease heap. Throws persist::StateError on any lie.
  void finish_restore();

 private:
  // Lease deadlines are a lazy min-heap: renew/release leave the old
  // entry in place and expire_due() skips entries whose deadline no
  // longer matches the live record (or whose session is gone).
  struct LeaseEntry {
    sim::SimTime expiry = 0;
    std::uint32_t dyn_value = 0;
  };
  struct LeaseLater {
    bool operator()(const LeaseEntry& a, const LeaseEntry& b) const noexcept {
      return a.expiry > b.expiry;
    }
  };

  void arm_lease(std::uint32_t dyn_value, sim::SimTime expiry);

  net::Ipv4Prefix pool_;
  std::uint32_t capacity_;
  std::uint32_t next_fresh_ = 1;  // first never-used host offset
  std::vector<std::uint32_t> free_offsets_;
  SessionTable table_;
  std::vector<LeaseEntry> lease_heap_;
  DynSessionCounters counters_;

  // Restore-in-progress bookkeeping ('DALC' declares what finish_restore
  // must find).
  bool restoring_ = false;
  std::uint64_t restore_expect_resident_ = 0;
  std::uint64_t restore_expect_free_ = 0;
};

}  // namespace nn::core
