#include "core/sharded_box.hpp"

#include <algorithm>

#include "net/shim.hpp"

namespace nn::core {

namespace {

std::uint32_t read_u32(const std::vector<std::uint8_t>& b,
                       std::size_t off) noexcept {
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) | b[off + 3];
}

std::uint64_t read_u64(const std::vector<std::uint8_t>& b,
                       std::size_t off) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | b[off + i];
  return v;
}

}  // namespace

std::uint32_t flow_hash(std::uint32_t outside_addr,
                        std::uint64_t nonce) noexcept {
  std::uint64_t x = (static_cast<std::uint64_t>(outside_addr) << 32) ^ nonce ^
                    0x9E3779B97F4A7C15ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x ^ (x >> 32));
}

std::size_t shard_for_packet(const net::Packet& pkt,
                             std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  const auto& b = pkt.bytes;
  std::uint32_t outside = 0;
  std::uint64_t nonce = 0;
  if (b.size() >= net::kIpv4HeaderSize) outside = read_u32(b, 12);
  if (b.size() >= net::kIpv4HeaderSize + net::kShimBaseSize &&
      (b[0] >> 4) == 4 &&
      b[9] == static_cast<std::uint8_t>(net::IpProto::kShim)) {
    const auto type = static_cast<net::ShimType>(b[net::kIpv4HeaderSize]);
    if (type == net::ShimType::kDynAddrRequest) return 0;
    nonce = read_u64(b, net::kIpv4HeaderSize + 4);
    if (type == net::ShimType::kDataReturn &&
        b.size() >= net::kIpv4HeaderSize + net::kShimBaseSize +
                        net::kShimInnerAddrSize) {
      outside = read_u32(b, net::kIpv4HeaderSize + net::kShimBaseSize);
    }
  }
  return flow_hash(outside, nonce) % shard_count;
}

ShardedNeutralizer::ShardedNeutralizer(std::size_t shard_count,
                                       const NeutralizerConfig& config,
                                       const crypto::AesKey& root_key) {
  shards_.reserve(shard_count == 0 ? 1 : shard_count);
  for (std::size_t i = 0; i < (shard_count == 0 ? 1 : shard_count); ++i) {
    shards_.emplace_back(config, root_key);
  }
}

NeutralizerStats ShardedNeutralizer::aggregate_stats() const {
  NeutralizerStats total;
  for (const Shard& s : shards_) total += s.service.stats();
  return total;
}

std::size_t ShardedNeutralizer::enqueue(net::Packet&& pkt) {
  const std::size_t s = shard_for(pkt);
  shards_[s].pending.push_back(std::move(pkt));
  return s;
}

std::size_t ShardedNeutralizer::drain_shard(std::size_t i, sim::SimTime now,
                                            std::vector<net::Packet>& out) {
  Shard& s = shards_[i];
  return s.service.drain_into(s.pending, now, &s.arena, out);
}

void ShardedNeutralizerBox::join_service_anycast(sim::Network& net) {
  net.join_anycast(*this, anycast_addr(),
                   costs_.capacity == 0 ? cluster_.shard_count()
                                        : costs_.capacity);
  if (cluster_.config().dynamic_pool.has_value()) {
    net.assign_prefix(*this, *cluster_.config().dynamic_pool);
  }
}

void ShardedNeutralizerBox::back_with_runtime(runtime::RuntimeConfig config) {
  config.egress = runtime::EgressMode::kCollect;  // the box re-emits survivors
  runtime_ = std::make_unique<runtime::ShardRuntime>(
      cluster_.shard_count(), cluster_.config(), root_key_, config);
}

void ShardedNeutralizerBox::consume_at(net::Packet&& pkt, sim::SimTime at) {
  // §3.4 inbound leg: dynamic-address translation, served by shard 0
  // where the (deliberate, per-session) allocator state lives.
  if (pkt.size() >= net::kIpv4HeaderSize) {
    if (owns_dynamic(net::packet_dst(pkt))) {
      auto translated =
          runtime_ ? runtime_->shard_mut(0).translate_dynamic(std::move(pkt))
                   : cluster_.translate_dynamic(std::move(pkt));
      if (translated.has_value()) send(std::move(*translated), at);
      return;
    }
  }

  pending_.push_back(sim::Delivery{std::move(pkt), at});
  network().engine().defer_once(this, [this] { drain_all(); });
}

void ShardedNeutralizerBox::drain_all() {
  if (pending_.empty()) return;
  // A coalesced train spans virtual time, so the parked deliveries can
  // carry distinct stamps. Dispatch and drain one stamp group at a
  // time, in order: every shard batch then sees exactly the clock
  // per-packet mode would have given it.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const sim::Delivery& a, const sim::Delivery& b) {
                     return a.at < b.at;
                   });
  std::size_t i = 0;
  while (i < pending_.size()) {
    const sim::SimTime at = pending_[i].at;
    std::size_t j = i;
    while (j < pending_.size() && pending_[j].at == at) ++j;
    if (runtime_) {
      drain_group_on_runtime(i, j, at);
      i = j;
      continue;
    }
    for (std::size_t k = i; k < j; ++k) {
      cluster_.enqueue(std::move(pending_[k].pkt));
    }
    for (std::size_t s = 0; s < cluster_.shard_count(); ++s) {
      const std::size_t burst = cluster_.pending(s);
      if (burst == 0) continue;
      batch_stats_.batches += 1;
      batch_stats_.batched_packets += burst;
      batch_stats_.max_batch =
          std::max<std::uint64_t>(batch_stats_.max_batch, burst);
      drained_.clear();
      cluster_.drain_shard(s, at, drained_);
      for (auto& pkt : drained_) emit_from_shard(s, std::move(pkt), at);
    }
    i = j;
  }
  pending_.clear();
  drained_.clear();
}

// One stamp group on the backing runtime: submit through the ingress
// ports (round-robin when there are several), flush to quiescence, and
// emit each worker's egress from the shard position the in-process
// drain would have used. With one ingress queue the per-shard lane is
// a single FIFO, so the emission sequence is byte-identical to the
// in-process path.
void ShardedNeutralizerBox::drain_group_on_runtime(std::size_t first,
                                                   std::size_t last,
                                                   sim::SimTime at) {
  std::vector<std::size_t> burst(runtime_->worker_count(), 0);
  const std::size_t queues = runtime_->ingress_queues();
  for (std::size_t k = first; k < last; ++k) {
    burst[cluster_.shard_for(pending_[k].pkt)] += 1;
    runtime_->port((k - first) % queues)
        .submit(std::move(pending_[k].pkt), at);
  }
  runtime_->flush();
  for (std::size_t s = 0; s < runtime_->worker_count(); ++s) {
    if (burst[s] == 0) continue;
    batch_stats_.batches += 1;
    batch_stats_.batched_packets += burst[s];
    batch_stats_.max_batch =
        std::max<std::uint64_t>(batch_stats_.max_batch, burst[s]);
    auto& egress = runtime_->shard_egress(s);
    for (auto& pkt : egress) emit_from_shard(s, std::move(pkt), at);
    egress.clear();
  }
}

void ShardedNeutralizerBox::emit_from_shard(std::size_t shard,
                                            net::Packet&& pkt,
                                            sim::SimTime at) {
  const sim::SimTime cost = service_cost(costs_, pkt);
  if (cost <= 0) {
    send(std::move(pkt), at);
    return;
  }
  // One serial server per shard: the next departure waits for the
  // shard's core to free up, so a burst's completion time scales down
  // with the shard count (NeutralizerBox instead charges a fixed
  // latency per packet). The departure rides the packet's own timeline;
  // Link::send defers a future-stamped emission to its own instant.
  sim::SimTime& busy = shard_busy_until_[shard];
  const sim::SimTime depart = std::max(busy, at) + cost;
  busy = depart;
  send(std::move(pkt), depart);
}

}  // namespace nn::core
