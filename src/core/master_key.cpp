#include "core/master_key.hpp"

#include <stdexcept>

namespace nn::core {

MasterKeySchedule::MasterKeySchedule(const crypto::AesKey& root,
                                     sim::SimTime rotation_period)
    : root_(root), rotation_period_(rotation_period), root_keyed_(root) {
  if (rotation_period <= 0) {
    throw std::invalid_argument("MasterKeySchedule: rotation must be > 0");
  }
}

std::uint16_t MasterKeySchedule::epoch_at(sim::SimTime now) const noexcept {
  if (now < 0) return 0;
  // 16-bit epoch wraps after ~7.5 years at hourly rotation; acceptable
  // for both simulation and the paper's deployment story.
  return static_cast<std::uint16_t>(now / rotation_period_);
}

crypto::AesKey MasterKeySchedule::derive(std::uint16_t epoch) const {
  for (const auto& slot : memo_) {
    if (slot && slot->first == epoch) return slot->second;
  }
  std::array<std::uint8_t, 8> msg = {'K', 'M', 'E', 'P',
                                     0,   0,   static_cast<std::uint8_t>(epoch >> 8),
                                     static_cast<std::uint8_t>(epoch)};
  const crypto::AesBlock tag = root_keyed_.mac(msg);
  crypto::AesKey out;
  std::copy(tag.begin(), tag.end(), out.begin());
  memo_[next_memo_] = {epoch, out};
  next_memo_ = (next_memo_ + 1) % memo_.size();
  return out;
}

std::optional<crypto::AesKey> MasterKeySchedule::key_for_epoch(
    std::uint16_t epoch, sim::SimTime now) const {
  const std::uint16_t current = epoch_at(now);
  if (epoch == current || (current > 0 && epoch == current - 1)) {
    return derive(epoch);
  }
  return std::nullopt;
}

crypto::AesKey MasterKeySchedule::current_key(sim::SimTime now) const {
  return derive(epoch_at(now));
}

}  // namespace nn::core
