// Master-key schedule for the neutralizer service (paper §3.2/§4).
//
// The paper assumes "a neutralizer's master key lasts for an hour" and
// that all neutralizers of a domain share it. We derive epoch keys
// deterministically from a long-lived root secret:
//
//     KM_epoch = CMAC(root, epoch)
//
// so every replica sharing the root computes identical keys with O(1)
// state and zero synchronization — preserving the design's "stateless
// and fault-tolerant feature of IP routing". Data packets carry their
// epoch in the shim; the service accepts the current and the previous
// epoch (grace window for in-flight packets across a rotation).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "crypto/aes_modes.hpp"
#include "sim/engine.hpp"

namespace nn::core {

class MasterKeySchedule {
 public:
  static constexpr sim::SimTime kDefaultRotation = 3600 * sim::kSecond;

  explicit MasterKeySchedule(const crypto::AesKey& root,
                             sim::SimTime rotation_period = kDefaultRotation);

  [[nodiscard]] std::uint16_t epoch_at(sim::SimTime now) const noexcept;

  /// Key for `epoch`, but only if `epoch` is the current or previous
  /// epoch at `now` (otherwise the packet is too old / from the future
  /// and must be dropped).
  [[nodiscard]] std::optional<crypto::AesKey> key_for_epoch(
      std::uint16_t epoch, sim::SimTime now) const;

  [[nodiscard]] crypto::AesKey current_key(sim::SimTime now) const;

  [[nodiscard]] sim::SimTime rotation_period() const noexcept {
    return rotation_period_;
  }

 private:
  crypto::AesKey root_;
  sim::SimTime rotation_period_;
  crypto::Cmac root_keyed_;
  // The root-keyed CMAC (one AES key schedule, built once) and a small
  // epoch-key memo: the datapath asks for the same one or two epochs
  // thousands of times per batch, and the seed's derive() rebuilt a
  // full Cmac per call. Two slots cover the current + previous grace
  // window; eviction is round-robin. Mutable memo in a const API —
  // a schedule is confined to one thread (each Neutralizer shard and
  // each host owns its own), like every other mutable cache here.
  mutable std::array<std::optional<std::pair<std::uint16_t, crypto::AesKey>>,
                     2>
      memo_;
  mutable std::size_t next_memo_ = 0;

  [[nodiscard]] crypto::AesKey derive(std::uint16_t epoch) const;
};

}  // namespace nn::core
