#include "core/neutralizer.hpp"

#include "crypto/aes_modes.hpp"
#include "crypto/chacha.hpp"
#include "net/shim.hpp"
#include "util/bytes.hpp"

namespace nn::core {

using net::ShimFlags;
using net::ShimHeader;
using net::ShimPacketView;
using net::ShimType;

namespace {

// Per-request randomness in the RFC 6979 spirit: everything the
// service mints (nonces, RSA padding) is a PRF of the epoch master key
// and the request, never a draw from replica-local RNG state. This
// extends the paper's stateless invariant to the control path — any
// replica, or any shard of a ShardedNeutralizerBox, answers a given
// request byte-identically within an epoch, and replayed requests are
// answered idempotently instead of minting throwaway keys.
// Same one-block layout as the key-derivation messages in
// aes_modes.cpp — value ‖ addr ‖ 4-byte tag — with the tag in the
// trailing position, where the attacker-chosen request nonce can
// never reach: "NNM?" vs "NNKS"/"NNKL" keeps the minting PRF
// domain-separated from live session keys under the same keyed CMAC.
crypto::AesBlock mint_block(char tag, std::uint32_t addr,
                            std::uint64_t request_nonce) {
  crypto::AesBlock block{};
  for (int i = 0; i < 8; ++i) {
    block[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(request_nonce >> (56 - 8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    block[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(addr >> (24 - 8 * i));
  }
  block[12] = 'N';
  block[13] = 'N';
  block[14] = 'M';
  block[15] = static_cast<std::uint8_t>(tag);
  return block;
}

crypto::ChaChaRng rng_from_seed(const crypto::AesBlock& seed) {
  std::array<std::uint8_t, 32> key{};
  std::copy(seed.begin(), seed.end(), key.begin());
  std::copy(seed.begin(), seed.end(), key.begin() + 16);
  return crypto::ChaChaRng(key);
}

// Per-request randomness in the RFC 6979 spirit: everything the
// service mints (nonces, RSA padding) is a PRF of the epoch master key
// and the request, never a draw from replica-local RNG state, so any
// replica or shard answers a given request byte-identically within an
// epoch. The PRF is one CMAC over mint_block(); the batch prepass runs
// that CMAC through Cmac::mac_single_blocks for a whole batch of
// control packets at once, and this scalar form stays for process()
// and rekey stamping.
crypto::ChaChaRng mint_rng(const crypto::Cmac& keyed_master, char tag,
                           std::uint32_t addr, std::uint64_t request_nonce) {
  return rng_from_seed(keyed_master.mac(mint_block(tag, addr, request_nonce)));
}

}  // namespace

Neutralizer::Neutralizer(const NeutralizerConfig& config,
                         const crypto::AesKey& root_key,
                         std::uint64_t /*nonce_seed*/)
    : config_(config), keys_(root_key, config.rotation_period) {
  if (config_.dynamic_pool.has_value()) {
    allocator_.emplace(*config_.dynamic_pool);
  }
  if (config_.setup_rate_limit > 0) {
    // Tokens are counted in setups; allow a quarter-second burst.
    setup_limiter_.emplace(config_.setup_rate_limit,
                           std::max(1.0, config_.setup_rate_limit / 4.0));
  }
}

const crypto::Cmac& Neutralizer::keyed_master(
    std::uint16_t epoch, const crypto::AesKey& km) const {
  // Fixed-slot LRU, no heap. Safety of the BatchKeyCache pointers: a
  // batch touches at most two distinct epochs (the window at its single
  // `now`), so the victim is always a slot no live batch references —
  // see the member comment in neutralizer.hpp.
  EpochCmacSlot* victim = nullptr;
  for (auto& s : cmac_slots_) {
    if (s.keyed.has_value() && s.epoch == epoch) {
      s.stamp = ++cmac_stamp_;
      return *s.keyed;
    }
    // Victim preference: any empty slot, else the stalest stamp.
    if (victim == nullptr ||
        (victim->keyed.has_value() &&
         (!s.keyed.has_value() || s.stamp < victim->stamp))) {
      victim = &s;
    }
  }
  victim->epoch = epoch;
  victim->stamp = ++cmac_stamp_;
  victim->keyed.emplace(km);
  return *victim->keyed;
}

const crypto::Cmac* Neutralizer::resolve_keyed(std::uint16_t epoch,
                                               sim::SimTime now,
                                               BatchKeyCache& cache) const {
  BatchKeyCache::Slot* slot = nullptr;
  for (auto& s : cache.slots) {
    if (s.used && s.epoch == epoch) return s.keyed;
    if (slot == nullptr && !s.used) slot = &s;
  }
  for (const auto& r : cache.rejected) {
    if (r == epoch) return nullptr;  // memoized rejection
  }
  const auto km = keys_.key_for_epoch(epoch, now);
  if (!km.has_value()) {
    // Remember the bad epoch (round-robin, separate from the
    // positive slots) so a flood of stale packets costs one window
    // check per distinct epoch instead of one per packet.
    cache.rejected[cache.next_reject++ % cache.rejected.size()] = epoch;
    return nullptr;
  }
  const crypto::Cmac* keyed = &keyed_master(epoch, *km);
  if (slot != nullptr) *slot = {epoch, keyed, true};
  return keyed;
}

std::optional<crypto::AesKey> Neutralizer::session_key(
    std::uint16_t epoch, std::uint8_t flags, std::uint64_t nonce,
    net::Ipv4Addr outside_addr, sim::SimTime now,
    BatchKeyCache& cache) const {
  const crypto::Cmac* keyed = resolve_keyed(epoch, now, cache);
  if (keyed == nullptr) return std::nullopt;
  if (flags & ShimFlags::kLeaseKey) {
    return crypto::derive_lease_key(*keyed, nonce);
  }
  return crypto::derive_source_key(*keyed, nonce, outside_addr.value());
}

const std::pair<std::uint16_t, crypto::AesKey>& Neutralizer::minting_key(
    sim::SimTime now, BatchKeyCache& cache) const {
  if (!cache.current.has_value()) {
    cache.current.emplace(keys_.epoch_at(now), keys_.current_key(now));
  }
  return *cache.current;
}

std::optional<net::Packet> Neutralizer::process(net::Packet&& pkt,
                                                sim::SimTime now) {
  // A fresh single-packet cache keeps the scalar and batched paths on
  // the same code while batching amortizes it across the whole span.
  BatchKeyCache cache;
  return process_one(std::move(pkt), now, cache, nullptr);
}

std::size_t Neutralizer::process_batch(std::span<net::Packet> batch,
                                       sim::SimTime now,
                                       net::PacketArena* arena) {
  BatchKeyCache cache;
  prederive_batch_keys(batch, now, cache);
  std::size_t count = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& pre = pre_scratch_[i];
    cache.pre = pre.has_value() ? &*pre : nullptr;
    auto out = process_one(std::move(batch[i]), now, cache, arena);
    // The data path hands the input buffer back through `out`; control
    // packets and drops leave it (or its remains) in the slot. Recycle
    // whatever is left before the slot is overwritten or abandoned.
    if (arena != nullptr) arena->release(std::move(batch[i]));
    if (out.has_value()) {
      batch[count++] = *std::move(out);
    }
  }
  return count;
}

std::size_t Neutralizer::drain_into(std::vector<net::Packet>& pending,
                                    sim::SimTime now, net::PacketArena* arena,
                                    std::vector<net::Packet>& out) {
  if (pending.empty()) return 0;
  const std::size_t n =
      process_batch({pending.data(), pending.size()}, now, arena);
  for (std::size_t k = 0; k < n; ++k) out.push_back(std::move(pending[k]));
  pending.clear();
  return n;
}

void Neutralizer::prederive_batch_keys(std::span<net::Packet> batch,
                                       sim::SimTime now,
                                       BatchKeyCache& cache) {
  pre_scratch_.assign(batch.size(), std::nullopt);
  req_scratch_.clear();
  req_idx_scratch_.clear();
  req_keyed_scratch_.clear();
  addr_req_scratch_.clear();
  addr_idx_scratch_.clear();
  mint_block_scratch_.clear();
  mint_idx_scratch_.clear();

  // Pass 1: collect one derivation request per data packet whose
  // handler will reach session_key(), and one minting block per control
  // packet (setup/lease) the handler will answer. Packets the prepass
  // skips (other types, parse failures, return packets from
  // non-customers) simply take the scalar path inside their handler.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    net::Ipv4Addr outside_addr;
    std::uint16_t epoch;
    std::uint8_t flags;
    std::uint64_t nonce;
    std::uint32_t crypt_addr;
    bool return_direction;
    try {
      const ShimPacketView view(batch[i].mutable_view());
      const ShimType type = view.type();
      if (type == ShimType::kDataForward) {
        outside_addr = view.src();
        crypt_addr = view.inner_addr();  // encrypted true destination
        return_direction = false;
      } else if (type == ShimType::kDataReturn) {
        if (!config_.customer_space.contains(view.src())) continue;
        outside_addr = net::Ipv4Addr(view.inner_addr());
        crypt_addr = view.src().value();  // customer address to hide
        return_direction = true;
      } else if (type == ShimType::kKeySetup) {
        // The rate limiter is consumed here, in batch order — exactly
        // the sequence of draws the scalar handlers would make, since
        // only setups consume and the whole batch shares one `now`.
        if (setup_limiter_.has_value() &&
            !setup_limiter_->try_consume(1, now)) {
          auto& pre = pre_scratch_[i].emplace();
          pre.rate_limited = true;
          continue;
        }
        mint_block_scratch_.push_back(
            mint_block('S', view.src().value(), view.nonce()));
        mint_idx_scratch_.push_back(i);
        continue;
      } else if (type == ShimType::kKeyLease) {
        if (!config_.customer_space.contains(view.src())) continue;
        mint_block_scratch_.push_back(
            mint_block('L', view.src().value(), view.nonce()));
        mint_idx_scratch_.push_back(i);
        continue;
      } else {
        continue;
      }
      epoch = view.key_epoch();
      flags = view.flags();
      nonce = view.nonce();
    } catch (const ParseError&) {
      continue;
    }
    const crypto::Cmac* keyed = resolve_keyed(epoch, now, cache);
    if (keyed == nullptr) {
      // Same verdict session_key() would reach; memoize the rejection
      // so the handler counts the drop without re-checking the window.
      pre_scratch_[i].emplace();
      continue;
    }
    req_scratch_.push_back({nonce, outside_addr.value(),
                            (flags & ShimFlags::kLeaseKey) != 0});
    req_idx_scratch_.push_back(i);
    req_keyed_scratch_.push_back(keyed);
    addr_req_scratch_.push_back(
        {crypto::AesKey{}, nonce, return_direction, crypt_addr});
    addr_idx_scratch_.push_back(i);
  }

  // Pass 1b: batch-mint the control packets. One mac_single_blocks
  // sweep under the minting (current-epoch) keyed CMAC produces every
  // seed; the nonce is the seed-RNG's first draw, and the session key
  // joins the same derive_keys_batch groups as the data packets. The
  // minting block encodes (tag, addr) at fixed offsets, so the request
  // parameters are read back out of it rather than re-parsed.
  if (!mint_block_scratch_.empty()) {
    const auto& [epoch, km] = minting_key(now, cache);
    const crypto::Cmac& keyed = keyed_master(epoch, km);
    mint_seed_scratch_.resize(mint_block_scratch_.size());
    keyed.mac_single_blocks(mint_block_scratch_.data(),
                            mint_seed_scratch_.data(),
                            mint_block_scratch_.size());
    for (std::size_t k = 0; k < mint_seed_scratch_.size(); ++k) {
      const crypto::AesBlock& blk = mint_block_scratch_[k];
      const std::uint32_t src = (std::uint32_t{blk[8]} << 24) |
                                (std::uint32_t{blk[9]} << 16) |
                                (std::uint32_t{blk[10]} << 8) |
                                std::uint32_t{blk[11]};
      const bool lease = blk[15] == 'L';
      const std::size_t i = mint_idx_scratch_[k];
      auto& pre = pre_scratch_[i].emplace();
      pre.mint_seed = mint_seed_scratch_[k];
      pre.mint_nonce = rng_from_seed(mint_seed_scratch_[k]).next_u64();
      req_scratch_.push_back({pre.mint_nonce, src, lease});
      req_idx_scratch_.push_back(i);
      req_keyed_scratch_.push_back(&keyed);
    }
  }

  // Pass 2: batch-derive per keyed master. At any fixed `now` at most
  // two epochs validate (and minting uses the current one), so this
  // outer loop runs at most twice. Consumed entries are nulled so each
  // group is derived exactly once.
  for (std::size_t start = 0; start < req_scratch_.size(); ++start) {
    const crypto::Cmac* keyed = req_keyed_scratch_[start];
    if (keyed == nullptr) continue;
    group_req_scratch_.clear();
    group_idx_scratch_.clear();
    for (std::size_t j = start; j < req_scratch_.size(); ++j) {
      if (req_keyed_scratch_[j] == keyed) {
        group_req_scratch_.push_back(req_scratch_[j]);
        group_idx_scratch_.push_back(req_idx_scratch_[j]);
        req_keyed_scratch_[j] = nullptr;
      }
    }
    group_key_scratch_.resize(group_req_scratch_.size());
    crypto::derive_keys_batch(*keyed, group_req_scratch_,
                              group_key_scratch_.data());
    for (std::size_t j = 0; j < group_idx_scratch_.size(); ++j) {
      auto& pre = pre_scratch_[group_idx_scratch_[j]];
      if (!pre.has_value()) pre.emplace();
      pre->ks = group_key_scratch_[j];
    }
  }

  // Pass 3: with every session key in hand, run the per-packet address
  // transforms (decrypt of the inner destination for forwards, encrypt
  // of the customer address for returns) through the multi-key ECB
  // pipeline. Each packet is keyed by its own session key, so this is
  // the one stage the single-key batch entry points cannot cover.
  for (std::size_t j = 0; j < addr_req_scratch_.size(); ++j) {
    addr_req_scratch_[j].ks = *pre_scratch_[addr_idx_scratch_[j]]->ks;
  }
  addr_out_scratch_.resize(addr_req_scratch_.size());
  crypto::crypt_address_batch(addr_req_scratch_, addr_out_scratch_.data());
  for (std::size_t j = 0; j < addr_req_scratch_.size(); ++j) {
    pre_scratch_[addr_idx_scratch_[j]]->crypted = addr_out_scratch_[j];
  }
}

std::optional<net::Packet> Neutralizer::process_one(net::Packet&& pkt,
                                                    sim::SimTime now,
                                                    BatchKeyCache& cache,
                                                    net::PacketArena* arena) {
  ShimType type;
  try {
    const ShimPacketView view(pkt.mutable_view());
    type = view.type();
  } catch (const ParseError&) {
    ++stats_.rejected;
    return std::nullopt;
  }

  switch (type) {
    case ShimType::kDataForward:
      return handle_data_forward(std::move(pkt), now, cache);
    case ShimType::kDataReturn:
      return handle_data_return(std::move(pkt), now, cache);
    case ShimType::kKeySetup:
    case ShimType::kKeyLease: {
      // Control packets are parsed fully (payload included).
      net::ParsedPacket parsed;
      try {
        parsed = net::parse_packet(pkt.view());
      } catch (const ParseError&) {
        ++stats_.rejected;
        return std::nullopt;
      }
      return type == ShimType::kKeySetup
                 ? handle_key_setup(parsed, now, cache, arena)
                 : handle_key_lease(parsed, now, cache, arena);
    }
    case ShimType::kDynAddrRequest: {
      net::ParsedPacket parsed;
      try {
        parsed = net::parse_packet(pkt.view());
      } catch (const ParseError&) {
        ++stats_.rejected;
        return std::nullopt;
      }
      return handle_dyn_request(parsed, now, cache, arena);
    }
    case ShimType::kKeySetupResponse:
    case ShimType::kKeyLeaseResponse:
    case ShimType::kDynAddrResponse:
      break;  // responses are never addressed to the service
  }
  ++stats_.rejected;
  return std::nullopt;
}

std::optional<net::Packet> Neutralizer::handle_dyn_request(
    const net::ParsedPacket& p, sim::SimTime now, BatchKeyCache& cache,
    net::PacketArena* arena) {
  if (!allocator_.has_value() ||
      !config_.customer_space.contains(p.ip.src)) {
    ++stats_.rejected;
    return std::nullopt;
  }
  const auto dyn = allocator_->allocate(p.ip.src, now, config_.dyn_lease);
  if (!dyn.has_value()) {
    ++stats_.rejected;  // pool exhausted: counted, never grown
    ++stats_.dyn_rejected;
    return std::nullopt;
  }
  // Seed the session record's key material. Per-session keys follow
  // the same PRF convention as everything else: Ks = CMAC(KM_epoch,
  // dyn_addr ‖ customer), so any replica sharing the root re-derives
  // them — and the epoch-rekey storm refreshes them in bulk.
  const auto& [epoch, km] = minting_key(now, cache);
  const crypto::Cmac& keyed = keyed_master(epoch, km);
  SessionRecord* rec = allocator_->table().find(dyn->value());
  rec->session_key =
      crypto::derive_source_key(keyed, dyn->value(), p.ip.src.value());
  rec->key_epoch = epoch;
  ByteWriter msg(4);
  msg.u32(dyn->value());
  ShimHeader shim;
  shim.type = ShimType::kDynAddrResponse;
  shim.nonce = p.shim->nonce;  // request id
  ++stats_.dyn_allocated;
  return net::make_shim_packet(config_.anycast_addr, p.ip.src, shim,
                               msg.view(), p.ip.dscp, 64, arena);
}

bool Neutralizer::release_dynamic(net::Ipv4Addr dynamic) {
  if (!allocator_.has_value() || !allocator_->release(dynamic)) return false;
  ++stats_.dyn_released;
  return true;
}

bool Neutralizer::renew_dynamic(net::Ipv4Addr dynamic, sim::SimTime now) {
  if (!allocator_.has_value() ||
      !allocator_->renew(dynamic, now, config_.dyn_lease)) {
    return false;
  }
  ++stats_.dyn_renewed;
  return true;
}

std::size_t Neutralizer::expire_dynamic_sessions(sim::SimTime now) {
  if (!allocator_.has_value()) return 0;
  const std::size_t n = allocator_->expire_due(now);
  stats_.dyn_expired += n;
  return n;
}

std::size_t Neutralizer::rekey_dynamic_sessions(sim::SimTime now) {
  if (!allocator_.has_value()) return 0;
  BatchKeyCache cache;
  const auto& [epoch, km] = minting_key(now, cache);
  const crypto::Cmac& keyed = keyed_master(epoch, km);
  // Fixed stack chunks through the batched derivation seam: a storm
  // over N resident sessions costs ceil(N / kChunk) batch calls and
  // zero heap traffic, whatever N is.
  constexpr std::size_t kChunk = 256;
  std::array<crypto::KeyDeriveRequest, kChunk> reqs;
  std::array<crypto::AesKey, kChunk> fresh;
  std::array<SessionRecord*, kChunk> recs;
  std::size_t n = 0;
  std::size_t total = 0;
  const auto flush = [&] {
    if (n == 0) return;
    crypto::derive_keys_batch(keyed, {reqs.data(), n}, fresh.data());
    for (std::size_t i = 0; i < n; ++i) {
      recs[i]->session_key = fresh[i];
      recs[i]->key_epoch = epoch;
    }
    total += n;
    n = 0;
  };
  allocator_->table().for_each([&](SessionRecord& rec) {
    if (rec.key_epoch == epoch) return;  // already current
    reqs[n] = {rec.dyn_value, rec.customer, false};
    recs[n] = &rec;
    if (++n == kChunk) flush();
  });
  flush();
  stats_.sessions_rekeyed += total;
  return total;
}

std::optional<net::Packet> Neutralizer::translate_dynamic(net::Packet&& pkt) {
  if (!allocator_.has_value() || pkt.size() < net::kIpv4HeaderSize) {
    ++stats_.rejected;
    return std::nullopt;
  }
  const auto customer = allocator_->resolve(net::packet_dst(pkt));
  if (!customer.has_value()) {
    ++stats_.rejected;
    return std::nullopt;
  }
  pkt.bytes[16] = static_cast<std::uint8_t>(customer->value() >> 24);
  pkt.bytes[17] = static_cast<std::uint8_t>(customer->value() >> 16);
  pkt.bytes[18] = static_cast<std::uint8_t>(customer->value() >> 8);
  pkt.bytes[19] = static_cast<std::uint8_t>(customer->value());
  pkt.bytes[10] = 0;
  pkt.bytes[11] = 0;
  const std::uint16_t sum = net::internet_checksum(
      std::span<const std::uint8_t>(pkt.bytes).subspan(0,
                                                       net::kIpv4HeaderSize));
  pkt.bytes[10] = static_cast<std::uint8_t>(sum >> 8);
  pkt.bytes[11] = static_cast<std::uint8_t>(sum);
  ++stats_.dyn_translated;
  return std::move(pkt);
}

std::optional<net::Packet> Neutralizer::handle_key_setup(
    const net::ParsedPacket& p, sim::SimTime now, BatchKeyCache& cache,
    net::PacketArena* arena) {
  // On the batched path the prepass already consumed the limiter (in
  // batch order) and minted (nonce, Ks) through the batch CMAC entry
  // points; the scalar path does both here.
  const Prederived* pre = cache.pre;
  if (pre != nullptr && pre->rate_limited) {
    ++stats_.setup_rate_limited;
    return std::nullopt;
  }
  if (pre == nullptr && setup_limiter_.has_value() &&
      !setup_limiter_->try_consume(1, now)) {
    ++stats_.setup_rate_limited;  // shed before any RSA work
    return std::nullopt;
  }
  crypto::RsaPublicKey source_key;
  try {
    source_key = crypto::RsaPublicKey::parse(p.payload);
  } catch (const ParseError&) {
    ++stats_.rejected;
    return std::nullopt;
  }

  // Mint the symmetric key. It is never stored: any replica recomputes
  // it from (epoch, nonce, srcIP) when data packets arrive.
  const auto& [epoch, km] = minting_key(now, cache);
  crypto::ChaChaRng rng =
      pre != nullptr && pre->mint_seed.has_value()
          ? rng_from_seed(*pre->mint_seed)
          : mint_rng(keyed_master(epoch, km), 'S', p.ip.src.value(),
                     p.shim->nonce);
  const std::uint64_t nonce = rng.next_u64();
  const crypto::AesKey ks =
      pre != nullptr && pre->ks.has_value()
          ? *pre->ks
          : crypto::derive_source_key(keyed_master(epoch, km), nonce,
                                      p.ip.src.value());

  if (config_.offload_enabled && !config_.offload_helper.is_unspecified()) {
    // §3.2 offload: hand (nonce, Ks) and the source's public key to a
    // willing customer. The stamped extension only crosses our own
    // domain, where the threat model permits cleartext keys.
    ShimHeader shim;
    shim.type = ShimType::kKeySetup;
    shim.flags = ShimFlags::kRekeyFilled;
    shim.key_epoch = epoch;
    shim.nonce = p.shim->nonce;  // the source's request id, echoed back
    shim.rekey = net::RekeyExt{nonce, epoch, ks};
    ++stats_.key_setups;
    ++stats_.offloaded;
    return net::make_shim_packet(p.ip.src, config_.offload_helper, shim,
                                 p.payload, p.ip.dscp, 64, arena);
  }

  // Normal path: RSA-encrypt (nonce ‖ Ks) under the one-time key. For
  // e = 3 this is two modular multiplications (§3.2). The bigint
  // temporaries and the ciphertext live in member scratch, so a warm
  // setup path performs no heap allocation.
  ByteWriter msg(24);
  msg.u64(nonce);
  msg.raw(ks);
  try {
    crypto::rsa_encrypt_into(rng, source_key, msg.view(), rsa_scratch_,
                             ciphertext_scratch_);
  } catch (const std::invalid_argument&) {
    ++stats_.rejected;  // degenerate public key
    return std::nullopt;
  }

  ShimHeader shim;
  shim.type = ShimType::kKeySetupResponse;
  shim.key_epoch = epoch;
  shim.nonce = p.shim->nonce;
  ++stats_.key_setups;
  return net::make_shim_packet(config_.anycast_addr, p.ip.src, shim,
                               ciphertext_scratch_, p.ip.dscp, 64, arena);
}

std::optional<net::Packet> Neutralizer::handle_key_lease(
    const net::ParsedPacket& p, sim::SimTime now, BatchKeyCache& cache,
    net::PacketArena* arena) {
  if (!config_.customer_space.contains(p.ip.src)) {
    ++stats_.rejected;  // leases are a courtesy to our own customers
    return std::nullopt;
  }
  const auto& [epoch, km] = minting_key(now, cache);
  const Prederived* pre = cache.pre;
  std::uint64_t nonce;
  crypto::AesKey ks;
  if (pre != nullptr && pre->mint_seed.has_value() && pre->ks.has_value()) {
    nonce = pre->mint_nonce;
    ks = *pre->ks;
  } else {
    const crypto::Cmac& keyed = keyed_master(epoch, km);
    nonce = mint_rng(keyed, 'L', p.ip.src.value(), p.shim->nonce).next_u64();
    ks = crypto::derive_lease_key(keyed, nonce);
  }

  ByteWriter msg(24);
  msg.u64(nonce);
  msg.raw(ks);

  ShimHeader shim;
  shim.type = ShimType::kKeyLeaseResponse;
  shim.flags = ShimFlags::kLeaseKey;
  shim.key_epoch = epoch;
  shim.nonce = p.shim->nonce;
  ++stats_.key_leases;
  return net::make_shim_packet(config_.anycast_addr, p.ip.src, shim,
                               msg.view(), p.ip.dscp, 64, arena);
}

std::optional<net::Packet> Neutralizer::handle_data_forward(
    net::Packet&& pkt, sim::SimTime now, BatchKeyCache& cache) {
  ShimPacketView view(pkt.mutable_view());
  const auto ks = cache.pre != nullptr
                      ? cache.pre->ks
                      : session_key(view.key_epoch(), view.flags(),
                                    view.nonce(), view.src(), now, cache);
  if (!ks.has_value()) {
    ++stats_.rejected;  // expired or future epoch
    return std::nullopt;
  }
  const net::Ipv4Addr true_dst(
      cache.pre != nullptr && cache.pre->crypted.has_value()
          ? *cache.pre->crypted
          : crypto::crypt_address(*ks, view.nonce(),
                                  /*return_direction=*/false,
                                  view.inner_addr()));
  if (!config_.customer_space.contains(true_dst)) {
    ++stats_.rejected;  // not our customer: refuse to relay
    return std::nullopt;
  }

  if ((view.flags() & ShimFlags::kKeyRequest) &&
      !(view.flags() & ShimFlags::kRekeyFilled)) {
    // Stamp a strong replacement key (Fig. 2 packet 4). It travels in
    // clear only inside our own domain; the customer echoes it to the
    // source under end-to-end encryption.
    const auto& [epoch, km] = minting_key(now, cache);
    const crypto::Cmac& keyed = keyed_master(epoch, km);
    const std::uint64_t fresh_nonce =
        mint_rng(keyed, 'R', view.src().value(), view.nonce()).next_u64();
    const crypto::AesKey fresh_ks =
        crypto::derive_source_key(keyed, fresh_nonce, view.src().value());
    view.stamp_rekey(fresh_nonce, epoch, fresh_ks);
    ++stats_.rekeys_stamped;
  }

  view.set_dst(true_dst);
  // Fig. 2 packet 4: the forwarded packet carries the neutralizer's
  // address as the customer's return handle.
  view.set_inner_addr(config_.anycast_addr.value());
  view.refresh_ip_checksum();
  ++stats_.data_forwarded;
  return std::move(pkt);
}

std::optional<net::Packet> Neutralizer::handle_data_return(
    net::Packet&& pkt, sim::SimTime now, BatchKeyCache& cache) {
  ShimPacketView view(pkt.mutable_view());
  if (!config_.customer_space.contains(view.src())) {
    ++stats_.rejected;  // only our customers may return through us
    return std::nullopt;
  }
  const net::Ipv4Addr initiator(view.inner_addr());
  const auto ks = cache.pre != nullptr
                      ? cache.pre->ks
                      : session_key(view.key_epoch(), view.flags(),
                                    view.nonce(), initiator, now, cache);
  if (!ks.has_value()) {
    ++stats_.rejected;
    return std::nullopt;
  }
  // Hide the customer: their address leaves encrypted in the inner
  // field; the outside header pair becomes (anycast -> initiator).
  const std::uint32_t hidden_customer =
      cache.pre != nullptr && cache.pre->crypted.has_value()
          ? *cache.pre->crypted
          : crypto::crypt_address(*ks, view.nonce(),
                                  /*return_direction=*/true,
                                  view.src().value());
  view.set_inner_addr(hidden_customer);
  view.set_src(config_.anycast_addr);
  view.set_dst(initiator);
  // Never stamp rekeys on the return direction: the extension would
  // cross the discriminatory ISP in clear text.
  view.refresh_ip_checksum();
  ++stats_.data_returned;
  return std::move(pkt);
}

}  // namespace nn::core
