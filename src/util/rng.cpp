#include "util/rng.hpp"

#include <cmath>

namespace nn {

void Rng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8; ++b) {
      out[i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(v >> (8 * b));
    }
    i += 8;
  }
  if (i < out.size()) {
    std::uint64_t v = next_u64();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling: draw until the value falls below the largest
  // multiple of `bound`, which removes modulo bias.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      (std::numeric_limits<std::uint64_t>::max() % bound + 1) % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v > limit && limit != std::numeric_limits<std::uint64_t>::max());
  return v % bound;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform_double();
  } while (u <= 0.0);  // avoid log(0)
  return -mean * std::log(u);
}

}  // namespace nn
