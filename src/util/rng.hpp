// Random-number source abstraction. Everything in the project that needs
// randomness (crypto key generation, nonces, simulated workloads) takes an
// Rng&, so experiments are reproducible by seeding deterministically.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

namespace nn {

/// Abstract random source. Implementations: SplitMix64 (fast,
/// non-cryptographic, for simulation workloads) and crypto::ChaChaRng
/// (a ChaCha20-based DRBG for key material).
class Rng {
 public:
  virtual ~Rng() = default;

  /// Next 64 uniformly random bits.
  virtual std::uint64_t next_u64() = 0;

  /// Fills `out` with random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Uniform value in [0, bound). `bound` must be nonzero. Uses
  /// rejection sampling, so the result is exactly uniform.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform_double() < p; }

  /// Exponentially distributed value with the given mean (for Poisson
  /// inter-arrival times in workload generators).
  double exponential(double mean);
};

/// SplitMix64: tiny, fast, statistically solid PRNG. NOT for key
/// material — simulation and workload generation only.
class SplitMix64 final : public Rng {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next_u64() override {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace nn
