#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nn {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  // Linear interpolation between closest ranks.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " p50=" << median()
     << " p95=" << p95() << " p99=" << p99() << " max=" << max();
  return os.str();
}

}  // namespace nn
