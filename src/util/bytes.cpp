#include "util/bytes.hpp"

namespace nn {

std::uint16_t ByteReader::u16() {
  auto b = take(2);
  return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
}

std::uint32_t ByteReader::u32() {
  auto b = take(4);
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

std::uint64_t ByteReader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

std::span<const std::uint8_t> ByteReader::take(std::size_t n) {
  if (n > remaining()) {
    throw ParseError("ByteReader: truncated input (need " + std::to_string(n) +
                     " bytes, have " + std::to_string(remaining()) + ")");
  }
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::vector<std::uint8_t> ByteReader::bytes(std::size_t n) {
  auto v = take(n);
  return {v.begin(), v.end()};
}

ByteWriter& ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
  return *this;
}

ByteWriter& ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
  return *this;
}

ByteWriter& ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
  return *this;
}

ByteWriter& ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  return *this;
}

ByteWriter& ByteWriter::zeros(std::size_t n) {
  buf_.insert(buf_.end(), n, 0);
  return *this;
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) {
    throw std::out_of_range("ByteWriter::patch_u16 out of bounds");
  }
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw ParseError("from_hex: odd-length input");
  }
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw ParseError("from_hex: invalid hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ct_equal(std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace nn
