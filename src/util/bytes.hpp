// Byte-order-safe serialization helpers used by every wire format in the
// project. All multi-byte integers on the wire are big-endian (network
// order), matching the IPv4/UDP/shim header layouts in DESIGN.md §5.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nn {

/// Error thrown when a reader runs past the end of its buffer or a
/// decoder meets malformed input. Wire-facing code catches this at the
/// packet boundary and drops the packet.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequential big-endian reader over a non-owning byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Returns a view of the next `n` bytes and advances.
  std::span<const std::uint8_t> take(std::size_t n);

  /// Copies the next `n` bytes into an owned vector and advances.
  std::vector<std::uint8_t> bytes(std::size_t n);

  /// Skips `n` bytes; throws ParseError if fewer remain.
  void skip(std::size_t n) { (void)take(n); }

  /// Everything not yet consumed, without advancing.
  [[nodiscard]] std::span<const std::uint8_t> rest() const noexcept {
    return data_.subspan(pos_);
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Append-only big-endian writer backed by a growable vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Adopts `recycle` as the backing store (cleared, capacity kept), so
  /// a serializer can build into a buffer recycled from a PacketArena
  /// instead of allocating — the control-path responses use this.
  explicit ByteWriter(std::vector<std::uint8_t>&& recycle) noexcept
      : buf_(std::move(recycle)) {
    buf_.clear();
  }

  ByteWriter& u8(std::uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  ByteWriter& u16(std::uint16_t v);
  ByteWriter& u32(std::uint32_t v);
  ByteWriter& u64(std::uint64_t v);
  ByteWriter& raw(std::span<const std::uint8_t> bytes);
  ByteWriter& zeros(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return buf_;
  }
  /// Moves the accumulated bytes out; the writer is empty afterwards.
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

  /// Overwrites two bytes at `offset` (used to patch checksums/lengths
  /// after the fact). Throws std::out_of_range if out of bounds.
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t> buf_;
};

/// Lowercase hex encoding of a byte span.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

/// Decodes a hex string (case-insensitive, even length). Throws
/// ParseError on bad characters or odd length.
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex);

/// Constant-time byte-span equality (length leak only), for comparing
/// MAC tags without creating a timing oracle.
[[nodiscard]] bool ct_equal(std::span<const std::uint8_t> a,
                            std::span<const std::uint8_t> b) noexcept;

}  // namespace nn
