// Streaming statistics used by the simulator's flow monitors and the
// benchmark harnesses: online mean/variance (Welford) and a sampling
// histogram with percentile queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nn {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores every sample (doubles) and answers percentile queries by
/// sorting on demand. Fine for simulation scale (≤ millions of samples).
class Histogram {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept;
  /// p in [0,100]; returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double min() const { return percentile(0); }
  [[nodiscard]] double median() const { return percentile(50); }
  [[nodiscard]] double p95() const { return percentile(95); }
  [[nodiscard]] double p99() const { return percentile(99); }
  [[nodiscard]] double max() const { return percentile(100); }

  /// "n=.. mean=.. p50=.. p95=.. p99=.. max=.." summary line.
  [[nodiscard]] std::string summary() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace nn
