// Token bucket rate limiter over simulated time. Shared by the
// diffserv schedulers, the discriminatory ISP's throttles, and the
// pushback rate limiters.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/engine.hpp"

namespace nn::qos {

class TokenBucket {
 public:
  /// rate is in bytes/second; burst is the bucket depth in bytes.
  /// A rate <= 0 means *unlimited* (every consume succeeds), matching
  /// the "0 = no limit" convention of the configs that embed one. A
  /// zero burst with a positive rate is the opposite degenerate case:
  /// the bucket can never hold a token and every consume fails.
  TokenBucket(double rate_bytes_per_sec, double burst_bytes) noexcept
      : rate_(rate_bytes_per_sec),
        burst_(burst_bytes),
        tokens_(burst_bytes) {}

  /// Consumes `bytes` if available at `now`; returns false (no side
  /// effect) otherwise.
  bool try_consume(std::size_t bytes, sim::SimTime now) noexcept {
    if (rate_ <= 0) return true;  // unlimited
    refill(now);
    const double need = static_cast<double>(bytes);
    if (tokens_ < need) return false;
    tokens_ -= need;
    return true;
  }

  [[nodiscard]] double tokens(sim::SimTime now) noexcept {
    refill(now);
    return tokens_;
  }
  [[nodiscard]] double rate() const noexcept { return rate_; }

  void set_rate(double rate_bytes_per_sec) noexcept {
    rate_ = rate_bytes_per_sec;
  }

 private:
  double rate_;
  double burst_;
  double tokens_;
  sim::SimTime last_ = 0;

  void refill(sim::SimTime now) noexcept {
    if (now <= last_) return;
    const double elapsed_s =
        static_cast<double>(now - last_) / static_cast<double>(sim::kSecond);
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
    last_ = now;
  }
};

}  // namespace nn::qos
