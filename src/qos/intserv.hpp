// IntServ-style per-flow guaranteed service (RFC 1633): a reservation
// table keyed by (source, destination).
//
// This exists to demonstrate the paper's §3.4 observation: once traffic
// is anonymized behind the neutralizer's anycast address, a
// discriminatory ISP "can no longer keep per flow state (a flow refers
// to a source and a destination pair)". The two remedies the paper
// offers — neutralizer-assigned dynamic addresses, or opting out of
// anonymization — are exercised against this table in tests and E6/E8.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "net/addr.hpp"

namespace nn::qos {

struct FlowKey {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;

  friend bool operator==(FlowKey, FlowKey) noexcept = default;
};

struct FlowKeyHash {
  std::size_t operator()(FlowKey k) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.src.value()) << 32) | k.dst.value());
  }
};

/// Admission-controlled reservation table for one bottleneck.
class ReservationTable {
 public:
  explicit ReservationTable(double capacity_bps) noexcept
      : capacity_bps_(capacity_bps) {}

  /// Reserves bandwidth for the flow; false if admission fails (or the
  /// flow already holds a reservation — RSVP refresh would update, but
  /// a second *different* reservation for the same key is the collision
  /// the paper warns about, surfaced to callers via reservation_for).
  bool reserve(FlowKey key, double bps);
  void release(FlowKey key);

  [[nodiscard]] std::optional<double> reservation_for(FlowKey key) const;
  [[nodiscard]] double allocated_bps() const noexcept { return allocated_; }
  [[nodiscard]] double capacity_bps() const noexcept { return capacity_bps_; }
  [[nodiscard]] std::size_t flow_count() const noexcept {
    return reservations_.size();
  }

 private:
  double capacity_bps_;
  double allocated_ = 0;
  std::unordered_map<FlowKey, double, FlowKeyHash> reservations_;
};

}  // namespace nn::qos
