#include "qos/intserv.hpp"

namespace nn::qos {

bool ReservationTable::reserve(FlowKey key, double bps) {
  if (reservations_.contains(key)) return false;
  if (allocated_ + bps > capacity_bps_) return false;
  reservations_[key] = bps;
  allocated_ += bps;
  return true;
}

void ReservationTable::release(FlowKey key) {
  const auto it = reservations_.find(key);
  if (it == reservations_.end()) return;
  allocated_ -= it->second;
  reservations_.erase(it);
}

std::optional<double> ReservationTable::reservation_for(FlowKey key) const {
  const auto it = reservations_.find(key);
  if (it == reservations_.end()) return std::nullopt;
  return it->second;
}

}  // namespace nn::qos
