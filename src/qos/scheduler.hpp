// DSCP-aware link schedulers: strict priority and deficit-round-robin
// WFQ. These implement the paper's premise that tiered service is
// legitimate (§3.4): an ISP schedules by DSCP, which the neutralizer
// never touches, so tiered service and neutralization compose.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/queue.hpp"

namespace nn::qos {

/// Maps a DSCP to a service band; band 0 is the highest priority.
[[nodiscard]] int default_band(net::Dscp dscp) noexcept;

/// Reads the DSCP straight from packet bytes (works for any protocol).
[[nodiscard]] net::Dscp packet_dscp(const net::Packet& pkt) noexcept;

/// Strict-priority queue discipline: always serves the lowest-numbered
/// non-empty band; each band has its own byte capacity.
class StrictPriorityQueue final : public sim::QueueDisc {
 public:
  static constexpr int kBands = 3;

  explicit StrictPriorityQueue(std::size_t per_band_capacity_bytes) noexcept
      : capacity_(per_band_capacity_bytes) {}

  bool enqueue(net::Packet&& pkt) override;
  std::optional<net::Packet> dequeue() override;
  std::size_t dequeue_burst(std::size_t max_packets, std::size_t max_bytes,
                            std::vector<net::Packet>& out) override;
  void requeue_front(std::vector<net::Packet>&& pkts) override;
  [[nodiscard]] std::size_t packet_count() const noexcept override;
  [[nodiscard]] std::size_t byte_count() const noexcept override;

  [[nodiscard]] std::size_t band_packets(int band) const noexcept {
    return bands_[static_cast<std::size_t>(band)].queue.size();
  }

 private:
  struct Band {
    std::deque<net::Packet> queue;
    std::size_t bytes = 0;
  };
  std::array<Band, kBands> bands_{};
  std::size_t capacity_;
};

/// Deficit-round-robin approximation of weighted fair queuing across
/// DSCP bands. Weights are per band, proportional to throughput share.
class WfqQueue final : public sim::QueueDisc {
 public:
  WfqQueue(std::vector<std::uint32_t> weights,
           std::size_t per_band_capacity_bytes);

  bool enqueue(net::Packet&& pkt) override;
  std::optional<net::Packet> dequeue() override;
  std::size_t dequeue_burst(std::size_t max_packets, std::size_t max_bytes,
                            std::vector<net::Packet>& out) override;
  /// Restores the pre-pop DRR state (per-band deficits and the round-
  /// robin cursor) from the snapshot taken when the suffix's first
  /// packet was popped, so a burst-abort is invisible to fairness.
  void requeue_front(std::vector<net::Packet>&& pkts) override;
  [[nodiscard]] std::size_t packet_count() const noexcept override;
  [[nodiscard]] std::size_t byte_count() const noexcept override;

 private:
  struct Band {
    std::deque<net::Packet> queue;
    std::size_t bytes = 0;
    std::size_t deficit = 0;
    std::uint32_t weight = 1;
  };
  /// Scheduler state captured before each dequeue_burst pop, keyed by
  /// position in the burst (requeue_front restores the one at the
  /// suffix boundary).
  struct DrrSnapshot {
    std::vector<std::size_t> deficits;
    std::size_t next_band = 0;
  };
  std::vector<Band> bands_;
  std::size_t capacity_;
  std::size_t next_band_ = 0;
  std::vector<DrrSnapshot> burst_undo_;
  static constexpr std::size_t kQuantumPerWeight = 512;
};

}  // namespace nn::qos
