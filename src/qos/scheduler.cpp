#include "qos/scheduler.hpp"

namespace nn::qos {

int default_band(net::Dscp dscp) noexcept {
  switch (dscp) {
    case net::Dscp::kExpeditedForwarding:
      return 0;
    case net::Dscp::kAf41:
    case net::Dscp::kAf31:
    case net::Dscp::kAf21:
    case net::Dscp::kAf11:
      return 1;
    case net::Dscp::kBestEffort:
      return 2;
  }
  return 2;
}

net::Dscp packet_dscp(const net::Packet& pkt) noexcept {
  if (pkt.size() < 2) return net::Dscp::kBestEffort;
  return static_cast<net::Dscp>(pkt.bytes[1] >> 2);
}

bool StrictPriorityQueue::enqueue(net::Packet&& pkt) {
  auto& band =
      bands_[static_cast<std::size_t>(default_band(packet_dscp(pkt)))];
  if (band.bytes + pkt.size() > capacity_) return false;
  band.bytes += pkt.size();
  band.queue.push_back(std::move(pkt));
  return true;
}

std::optional<net::Packet> StrictPriorityQueue::dequeue() {
  for (auto& band : bands_) {
    if (!band.queue.empty()) {
      net::Packet pkt = std::move(band.queue.front());
      band.queue.pop_front();
      band.bytes -= pkt.size();
      return pkt;
    }
  }
  return std::nullopt;
}

std::size_t StrictPriorityQueue::packet_count() const noexcept {
  std::size_t n = 0;
  for (const auto& band : bands_) n += band.queue.size();
  return n;
}

std::size_t StrictPriorityQueue::byte_count() const noexcept {
  std::size_t n = 0;
  for (const auto& band : bands_) n += band.bytes;
  return n;
}

WfqQueue::WfqQueue(std::vector<std::uint32_t> weights,
                   std::size_t per_band_capacity_bytes)
    : capacity_(per_band_capacity_bytes) {
  if (weights.empty()) weights.push_back(1);
  bands_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    bands_[i].weight = weights[i] == 0 ? 1 : weights[i];
  }
}

bool WfqQueue::enqueue(net::Packet&& pkt) {
  const auto idx = static_cast<std::size_t>(default_band(packet_dscp(pkt)));
  auto& band = bands_[idx < bands_.size() ? idx : bands_.size() - 1];
  if (band.bytes + pkt.size() > capacity_) return false;
  band.bytes += pkt.size();
  band.queue.push_back(std::move(pkt));
  return true;
}

std::optional<net::Packet> WfqQueue::dequeue() {
  if (packet_count() == 0) return std::nullopt;
  // Deficit round robin: visit bands cyclically, adding quantum, and
  // serve the head-of-line packet once the deficit covers it.
  for (std::size_t visited = 0; visited < 2 * bands_.size() + 1; ++visited) {
    auto& band = bands_[next_band_];
    if (band.queue.empty()) {
      band.deficit = 0;  // idle bands don't accumulate credit
      next_band_ = (next_band_ + 1) % bands_.size();
      continue;
    }
    band.deficit += kQuantumPerWeight * band.weight;
    if (band.queue.front().size() <= band.deficit) {
      net::Packet pkt = std::move(band.queue.front());
      band.queue.pop_front();
      band.bytes -= pkt.size();
      band.deficit -= pkt.size();
      if (band.queue.empty()) band.deficit = 0;
      return pkt;
    }
    next_band_ = (next_band_ + 1) % bands_.size();
  }
  // Quantum guarantees progress within a full cycle for any non-empty
  // band, so this is unreachable; kept defensive.
  for (auto& band : bands_) {
    if (!band.queue.empty()) {
      net::Packet pkt = std::move(band.queue.front());
      band.queue.pop_front();
      band.bytes -= pkt.size();
      return pkt;
    }
  }
  return std::nullopt;
}

std::size_t WfqQueue::packet_count() const noexcept {
  std::size_t n = 0;
  for (const auto& band : bands_) n += band.queue.size();
  return n;
}

std::size_t WfqQueue::byte_count() const noexcept {
  std::size_t n = 0;
  for (const auto& band : bands_) n += band.bytes;
  return n;
}

}  // namespace nn::qos
