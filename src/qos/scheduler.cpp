#include "qos/scheduler.hpp"

#include <cassert>

namespace nn::qos {

int default_band(net::Dscp dscp) noexcept {
  switch (dscp) {
    case net::Dscp::kExpeditedForwarding:
      return 0;
    case net::Dscp::kAf41:
    case net::Dscp::kAf31:
    case net::Dscp::kAf21:
    case net::Dscp::kAf11:
      return 1;
    case net::Dscp::kBestEffort:
      return 2;
  }
  return 2;
}

net::Dscp packet_dscp(const net::Packet& pkt) noexcept {
  if (pkt.size() < 2) return net::Dscp::kBestEffort;
  return static_cast<net::Dscp>(pkt.bytes[1] >> 2);
}

bool StrictPriorityQueue::enqueue(net::Packet&& pkt) {
  auto& band =
      bands_[static_cast<std::size_t>(default_band(packet_dscp(pkt)))];
  if (pkt.size() > capacity_ - band.bytes) {
    note_drop(pkt);
    return false;
  }
  band.bytes += pkt.size();
  band.queue.push_back(std::move(pkt));
  return true;
}

std::optional<net::Packet> StrictPriorityQueue::dequeue() {
  for (auto& band : bands_) {
    if (!band.queue.empty()) {
      net::Packet pkt = std::move(band.queue.front());
      band.queue.pop_front();
      band.bytes -= pkt.size();
      return pkt;
    }
  }
  return std::nullopt;
}

std::size_t StrictPriorityQueue::dequeue_burst(std::size_t max_packets,
                                               std::size_t max_bytes,
                                               std::vector<net::Packet>& out) {
  std::size_t popped = 0;
  std::size_t taken = 0;
  // Serving a band never un-empties a higher-priority one, so one pass
  // over the bands pops the same sequence repeated dequeue() would.
  for (auto& band : bands_) {
    while (!band.queue.empty() && popped < max_packets && taken < max_bytes) {
      net::Packet pkt = std::move(band.queue.front());
      band.queue.pop_front();
      band.bytes -= pkt.size();
      taken += pkt.size();
      out.push_back(std::move(pkt));
      ++popped;
    }
  }
  return popped;
}

void StrictPriorityQueue::requeue_front(std::vector<net::Packet>&& pkts) {
  for (auto it = pkts.rbegin(); it != pkts.rend(); ++it) {
    auto& band =
        bands_[static_cast<std::size_t>(default_band(packet_dscp(*it)))];
    band.bytes += it->size();
    band.queue.push_front(std::move(*it));
  }
  pkts.clear();
}

std::size_t StrictPriorityQueue::packet_count() const noexcept {
  std::size_t n = 0;
  for (const auto& band : bands_) n += band.queue.size();
  return n;
}

std::size_t StrictPriorityQueue::byte_count() const noexcept {
  std::size_t n = 0;
  for (const auto& band : bands_) n += band.bytes;
  return n;
}

WfqQueue::WfqQueue(std::vector<std::uint32_t> weights,
                   std::size_t per_band_capacity_bytes)
    : capacity_(per_band_capacity_bytes) {
  if (weights.empty()) weights.push_back(1);
  bands_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    bands_[i].weight = weights[i] == 0 ? 1 : weights[i];
  }
}

bool WfqQueue::enqueue(net::Packet&& pkt) {
  const auto idx = static_cast<std::size_t>(default_band(packet_dscp(pkt)));
  auto& band = bands_[idx < bands_.size() ? idx : bands_.size() - 1];
  if (pkt.size() > capacity_ - band.bytes) {
    note_drop(pkt);
    return false;
  }
  band.bytes += pkt.size();
  band.queue.push_back(std::move(pkt));
  return true;
}

std::optional<net::Packet> WfqQueue::dequeue() {
  if (packet_count() == 0) return std::nullopt;
  // Deficit round robin: visit bands cyclically, adding quantum, and
  // serve the head-of-line packet once the deficit covers it.
  for (std::size_t visited = 0; visited < 2 * bands_.size() + 1; ++visited) {
    auto& band = bands_[next_band_];
    if (band.queue.empty()) {
      band.deficit = 0;  // idle bands don't accumulate credit
      next_band_ = (next_band_ + 1) % bands_.size();
      continue;
    }
    band.deficit += kQuantumPerWeight * band.weight;
    if (band.queue.front().size() <= band.deficit) {
      net::Packet pkt = std::move(band.queue.front());
      band.queue.pop_front();
      band.bytes -= pkt.size();
      band.deficit -= pkt.size();
      if (band.queue.empty()) band.deficit = 0;
      return pkt;
    }
    next_band_ = (next_band_ + 1) % bands_.size();
  }
  // Quantum guarantees progress within a full cycle for any non-empty
  // band, so this is unreachable; kept defensive.
  for (auto& band : bands_) {
    if (!band.queue.empty()) {
      net::Packet pkt = std::move(band.queue.front());
      band.queue.pop_front();
      band.bytes -= pkt.size();
      return pkt;
    }
  }
  return std::nullopt;
}

std::size_t WfqQueue::dequeue_burst(std::size_t max_packets,
                                    std::size_t max_bytes,
                                    std::vector<net::Packet>& out) {
  // Pops exactly what repeated dequeue() would, but snapshots the DRR
  // state before each pop so requeue_front() can roll an aborted
  // suffix back without perturbing fairness.
  burst_undo_.clear();
  std::size_t popped = 0;
  std::size_t taken = 0;
  while (popped < max_packets && taken < max_bytes) {
    DrrSnapshot snap;
    snap.deficits.reserve(bands_.size());
    for (const Band& band : bands_) snap.deficits.push_back(band.deficit);
    snap.next_band = next_band_;
    auto pkt = dequeue();
    if (!pkt.has_value()) break;
    burst_undo_.push_back(std::move(snap));
    taken += pkt->size();
    out.push_back(std::move(*pkt));
    ++popped;
  }
  return popped;
}

void WfqQueue::requeue_front(std::vector<net::Packet>&& pkts) {
  if (pkts.empty()) return;
  assert(pkts.size() <= burst_undo_.size() &&
         "requeue_front: not a suffix of the last dequeue_burst");
  const std::size_t keep = burst_undo_.size() - pkts.size();
  const DrrSnapshot& snap = burst_undo_[keep];
  for (std::size_t i = 0; i < bands_.size(); ++i) {
    bands_[i].deficit = snap.deficits[i];
  }
  next_band_ = snap.next_band;
  for (auto it = pkts.rbegin(); it != pkts.rend(); ++it) {
    const auto idx = static_cast<std::size_t>(default_band(packet_dscp(*it)));
    auto& band = bands_[idx < bands_.size() ? idx : bands_.size() - 1];
    band.bytes += it->size();
    band.queue.push_front(std::move(*it));
  }
  burst_undo_.resize(keep);
  pkts.clear();
}

std::size_t WfqQueue::packet_count() const noexcept {
  std::size_t n = 0;
  for (const auto& band : bands_) n += band.queue.size();
  return n;
}

std::size_t WfqQueue::byte_count() const noexcept {
  std::size_t n = 0;
  for (const auto& band : bands_) n += band.bytes;
  return n;
}

}  // namespace nn::qos
