// NeutralizedHost: the end-host protocol stack of the paper, covering
// every packet sequence in Fig. 2 and §3.3:
//
//  * outside initiator:  one-time RSA-512 key setup -> encrypted-
//    destination DataForward with a rekey request on the first packet ->
//    adoption of the neutralizer-stamped strong key (nonce', Ks') echoed
//    back under end-to-end encryption;
//  * customer responder: records the return handle (anycast, nonce,
//    epoch), echoes stamped keys, replies via DataReturn;
//  * customer initiator (§3.3): clear-text key lease, key transport of
//    (session key, lease) under the peer's public key;
//  * outside responder (§3.3): falls back to its RSA identity when no
//    cached key matches (nonce, neutralizer address), then replies via
//    DataForward with the leased key;
//  * offload helper (§3.2): answers key setups on the service's behalf.
//
// The class is transport-only: applications hand it payload bytes and
// get payload bytes back. It is simulator-agnostic except for the
// optional Engine used for retransmission timers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/master_key.hpp"
#include "crypto/chacha.hpp"
#include "crypto/rsa.hpp"
#include "host/e2e.hpp"
#include "host/masking.hpp"
#include "host/wire.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace nn::host {

/// Bootstrap information about a remote peer, as published in its DNS
/// records (paper §3.1): address, neutralizer anycast address(es), and
/// public key.
struct PeerInfo {
  net::Ipv4Addr addr;
  /// The peer's neutralizer service; unspecified = peer is not behind a
  /// neutralizer (sending to it will fail by design).
  net::Ipv4Addr anycast;
  crypto::RsaPublicKey public_key;
};

struct HostConfig {
  net::Ipv4Addr self;
  /// Set for customers of a neutral ISP; enables key leases and the
  /// offload-helper role.
  bool inside_neutral_domain = false;
  net::Ipv4Addr home_anycast;
  /// Master-key rotation period of the neutralizer service(s); hosts
  /// use it to refresh keys proactively.
  sim::SimTime rotation_period = core::MasterKeySchedule::kDefaultRotation;
  std::size_t onetime_rsa_bits = 512;
  net::Dscp dscp = net::Dscp::kBestEffort;
  /// Traffic-analysis countermeasure (paper §2 future work): pad every
  /// e2e plaintext to a size bucket so packet lengths stop identifying
  /// applications. Both conversation endpoints must agree.
  bool mask_payload_sizes = false;
  /// Retransmission timeout for lost key handshakes (0 = no retries;
  /// requires an Engine to be active).
  sim::SimTime handshake_timeout = 250 * sim::kMillisecond;
  int max_handshake_retries = 5;
};

struct HostStats {
  std::uint64_t key_setups_sent = 0;
  std::uint64_t key_leases_sent = 0;
  std::uint64_t keys_established = 0;
  std::uint64_t handshake_retries = 0;
  std::uint64_t rekeys_adopted = 0;
  std::uint64_t echoes_sent = 0;
  std::uint64_t offload_served = 0;
  std::uint64_t app_sent = 0;
  std::uint64_t app_delivered = 0;
  std::uint64_t queued_sends = 0;
  std::uint64_t decrypt_failures = 0;
  std::uint64_t send_failures = 0;  // no peer info / no route / expired
};

class NeutralizedHost {
 public:
  using TransmitFn = std::function<void(net::Packet&&)>;
  using AppReceiveFn = std::function<void(
      net::Ipv4Addr peer, std::span<const std::uint8_t> payload,
      sim::SimTime now)>;

  /// `identity` is the host's published RSA key pair (1024-bit in the
  /// experiments); `engine` may be null (no retransmission timers).
  NeutralizedHost(HostConfig config, crypto::RsaPrivateKey identity,
                  TransmitFn transmit, sim::Engine* engine = nullptr,
                  std::uint64_t seed = 1);

  void set_app_handler(AppReceiveFn handler) {
    app_handler_ = std::move(handler);
  }
  /// Changes the DSCP used for subsequent packets (the "purchased
  /// tier", §3.4 — the neutralizer preserves it end to end).
  void set_dscp(net::Dscp dscp) noexcept { config_.dscp = dscp; }
  void add_peer(const PeerInfo& info) { peers_[info.addr] = info; }

  /// Application send. Queues transparently while key handshakes are in
  /// flight.
  void send(net::Ipv4Addr peer, std::vector<std::uint8_t> payload,
            sim::SimTime now);

  /// Network delivery entry point (wire Host::set_handler to this).
  void on_packet(net::Packet&& pkt, sim::SimTime now);

  [[nodiscard]] const HostStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const crypto::RsaPublicKey& public_key() const noexcept {
    return identity_.key().pub;
  }
  [[nodiscard]] net::Ipv4Addr address() const noexcept {
    return config_.self;
  }
  /// True once a strong (rekeyed) service key replaced the short-RSA
  /// bootstrap key for `anycast`.
  [[nodiscard]] bool has_strong_key(net::Ipv4Addr anycast) const;

  /// Garbage-collects sessions idle for longer than `max_age` (a server
  /// like Google talks to millions of short-lived peers; per-peer state
  /// must be reclaimable). Returns the number of sessions dropped.
  std::size_t purge_idle_sessions(sim::SimTime now, sim::SimTime max_age);
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }

 private:
  struct ServiceKey {
    std::uint16_t epoch = 0;
    std::uint64_t nonce = 0;
    crypto::AesKey ks{};
    bool lease = false;
    bool strong = false;  // false: short-RSA bootstrap, keep requesting rekey
  };

  struct PendingSend {
    net::Ipv4Addr peer;
    std::vector<std::uint8_t> payload;
  };

  /// Handshake/key state toward one neutralizer service.
  struct ServiceState {
    enum class Status { kNone, kPending, kReady };
    Status status = Status::kNone;
    bool lease_mode = false;  // KeyLease (inside) vs KeySetup (outside)
    std::optional<ServiceKey> current;
    std::optional<crypto::RsaPrivateKey> onetime;  // while pending
    std::uint64_t request_id = 0;
    int retries = 0;
    std::deque<PendingSend> queue;
  };

  /// Per-peer conversation state.
  struct Session {
    std::optional<E2eSession> e2e;
    bool transport_sent = false;  // we still resend KeyBlock until peer talks
    // Reply routing:
    enum class Route {
      kNone,
      kViaPeerService,   // we initiated: DataForward through peer's service
      kRespond,          // peer initiated from outside world: DataReturn
      kReverseOutside,   // peer (a customer) initiated to us: DataForward
                         // with the leased key it gave us
    };
    Route route = Route::kNone;
    net::Ipv4Addr via_anycast;
    std::uint64_t nonce = 0;  // kRespond / kReverseOutside flow key handle
    std::uint16_t epoch = 0;
    bool lease = false;
    crypto::AesKey flow_ks{};              // kReverseOutside only
    std::optional<RekeyEcho> pending_echo;  // responder -> initiator
    sim::SimTime last_active = 0;
  };

  HostConfig config_;
  crypto::RsaDecryptor identity_;
  TransmitFn transmit_;
  sim::Engine* engine_;
  crypto::ChaChaRng rng_;
  AppReceiveFn app_handler_;
  HostStats stats_;
  SizeMasker masker_;

  std::unordered_map<net::Ipv4Addr, PeerInfo> peers_;
  std::unordered_map<net::Ipv4Addr, ServiceState> services_;
  std::unordered_map<net::Ipv4Addr, Session> sessions_;
  // Every service key we hold, for decrypting returns:
  // (anycast, nonce) -> key material.
  struct KnownKeyId {
    std::uint64_t packed_addr_hi;  // anycast address
    std::uint64_t nonce;
    friend bool operator==(const KnownKeyId&, const KnownKeyId&) = default;
  };
  struct KnownKeyIdHash {
    std::size_t operator()(const KnownKeyId& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.packed_addr_hi * 0x9E3779B97F4A7C15ULL ^
                                        k.nonce);
    }
  };
  std::unordered_map<KnownKeyId, crypto::AesKey, KnownKeyIdHash> known_keys_;

  [[nodiscard]] std::uint16_t local_epoch_estimate(sim::SimTime now) const {
    return static_cast<std::uint16_t>(now / config_.rotation_period);
  }

  void start_handshake(net::Ipv4Addr anycast, ServiceState& st,
                       sim::SimTime now);
  void schedule_handshake_retry(net::Ipv4Addr anycast);
  void transmit_data(net::Ipv4Addr peer, Session& sess,
                     std::span<const std::uint8_t> payload, sim::SimTime now);

  void handle_key_response(const net::ParsedPacket& p, bool lease,
                           sim::SimTime now);
  void handle_forward_delivery(net::Packet&& pkt, sim::SimTime now);
  void handle_return_delivery(net::Packet&& pkt, sim::SimTime now);
  void handle_offload_request(const net::ParsedPacket& p, sim::SimTime now);

  void adopt_echo(net::Ipv4Addr anycast, const RekeyEcho& echo);
  void remember_key(net::Ipv4Addr anycast, std::uint64_t nonce,
                    const crypto::AesKey& ks);
  [[nodiscard]] const crypto::AesKey* lookup_key(net::Ipv4Addr anycast,
                                                 std::uint64_t nonce) const;
  void deliver(net::Ipv4Addr peer, Session& sess,
               std::span<const std::uint8_t> sealed, sim::SimTime now);
};

}  // namespace nn::host
