#include "host/e2e.hpp"

#include "util/bytes.hpp"

namespace nn::host {

namespace {
std::array<std::uint8_t, 12> iv_from_seq(std::uint64_t seq,
                                         bool direction) noexcept {
  std::array<std::uint8_t, 12> iv{};
  for (int i = 0; i < 8; ++i) {
    iv[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  }
  iv[8] = 'E';
  iv[9] = '2';
  iv[10] = 'E';
  iv[11] = direction ? 1 : 0;
  return iv;
}
}  // namespace

std::vector<std::uint8_t> E2eSession::seal(
    std::span<const std::uint8_t> plaintext) {
  const std::uint64_t seq = ++send_seq_;
  ByteWriter w(kE2eSealOverhead + plaintext.size());
  w.u64(seq);
  w.raw(plaintext);
  // Encrypt in place after the seq field.
  auto bytes = w.take();
  const std::span<std::uint8_t> body(bytes.data() + 8, plaintext.size());
  ctr_.crypt(iv_from_seq(seq, !initiator_), body);
  // Tag over seq ‖ ciphertext.
  const auto tag = cmac_.mac_truncated(bytes, kE2eTagSize);
  bytes.insert(bytes.end(), tag.begin(), tag.end());
  return bytes;
}

std::optional<std::vector<std::uint8_t>> E2eSession::open(
    std::span<const std::uint8_t> sealed) {
  if (sealed.size() < kE2eSealOverhead) return std::nullopt;
  const auto body = sealed.first(sealed.size() - kE2eTagSize);
  const auto tag = sealed.subspan(sealed.size() - kE2eTagSize);
  const auto expected = cmac_.mac_truncated(body, kE2eTagSize);
  if (!ct_equal(tag, expected)) return std::nullopt;

  ByteReader r(body);
  const std::uint64_t seq = r.u64();
  if (any_recv_ && seq <= highest_recv_) return std::nullopt;  // replay
  std::vector<std::uint8_t> plaintext(r.rest().begin(), r.rest().end());
  ctr_.crypt(iv_from_seq(seq, initiator_), plaintext);
  highest_recv_ = seq;
  any_recv_ = true;
  return plaintext;
}

std::vector<std::uint8_t> wrap_key(Rng& rng,
                                   const crypto::RsaPublicKey& peer_key,
                                   std::span<const std::uint8_t> key_block) {
  return crypto::rsa_encrypt(rng, peer_key, key_block);
}

std::optional<std::vector<std::uint8_t>> unwrap_key(
    const crypto::RsaDecryptor& identity,
    std::span<const std::uint8_t> wrapped) {
  return identity.decrypt(wrapped);
}

}  // namespace nn::host
