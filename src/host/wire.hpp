// Host-level framing inside the shim payload of Data packets.
//
//   frame := [u8 frame_type] body
//     kKeyTransport: [u16 len][RSA ciphertext][sealed...]   first packet
//     kSealed:       [sealed...]                            steady state
//
//   RSA key-transport plaintext (KeyBlock):
//     [16 session key][u8 has_lease][u16 epoch][u64 nonce][16 lease Ks]
//     (lease fields are the reverse-direction §3.3 handshake: "the
//      customer encrypts the shared key with its intended destination's
//      public key and sends the encrypted key")
//
//   sealed plaintext (AppFrame):
//     [u8 flags][echo? u16 epoch u64 nonce 16B key][app payload...]
//     The echo is how a destination returns the neutralizer-stamped
//     (nonce', Ks') to the source under end-to-end encryption (Fig. 2
//      packets 5/6).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/aes.hpp"
#include "util/bytes.hpp"

namespace nn::host {

enum class FrameType : std::uint8_t {
  kKeyTransport = 1,
  kSealed = 2,
};

struct KeyBlock {
  crypto::AesKey session_key{};
  bool has_lease = false;
  std::uint16_t lease_epoch = 0;
  std::uint64_t lease_nonce = 0;
  crypto::AesKey lease_key{};

  static constexpr std::size_t kSize = 16 + 1 + 2 + 8 + 16;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<KeyBlock> parse(std::span<const std::uint8_t> data);
};

struct RekeyEcho {
  std::uint16_t epoch = 0;
  std::uint64_t nonce = 0;
  crypto::AesKey key{};

  friend bool operator==(const RekeyEcho&, const RekeyEcho&) = default;
};

struct AppFrame {
  std::optional<RekeyEcho> echo;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<AppFrame> parse(std::span<const std::uint8_t> data);
};

/// Outer frame helpers.
[[nodiscard]] std::vector<std::uint8_t> frame_key_transport(
    std::span<const std::uint8_t> wrapped_key,
    std::span<const std::uint8_t> sealed);
[[nodiscard]] std::vector<std::uint8_t> frame_sealed(
    std::span<const std::uint8_t> sealed);

struct ParsedFrame {
  FrameType type;
  std::span<const std::uint8_t> wrapped_key;  // kKeyTransport only
  std::span<const std::uint8_t> sealed;
};

[[nodiscard]] std::optional<ParsedFrame> parse_frame(
    std::span<const std::uint8_t> data);

}  // namespace nn::host
