// End-to-end encryption layer. The paper treats this as a black box
// ("End-to-end encryption can use standard techniques such as IPsec",
// §3.1); we implement a concrete ESP-like hybrid scheme:
//
//   * key transport: the initiator picks a random AES-128 session key
//     and sends it RSA-1024-encrypted under the peer's published key;
//   * data: AES-CTR with a per-packet sequence-derived IV, authenticated
//     by a truncated AES-CMAC tag over (seq ‖ ciphertext).
//
// What matters for the reproduction is that payloads crossing a
// discriminatory ISP are indistinguishable high-entropy bytes — that is
// what defeats content/application-type discrimination.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/aes_modes.hpp"
#include "crypto/rsa.hpp"
#include "util/rng.hpp"

namespace nn::host {

inline constexpr std::size_t kE2eTagSize = 8;
inline constexpr std::size_t kE2eSealOverhead = 8 + kE2eTagSize;  // seq + tag

/// Symmetric session state (one per peer pair, either direction).
class E2eSession {
 public:
  /// `initiator` selects the keystream direction: the two sides of a
  /// session share one key but must never reuse (IV, seq) pairs, so the
  /// party that generated the key seals with direction 0 and its peer
  /// with direction 1.
  E2eSession(const crypto::AesKey& key, bool initiator) noexcept
      : key_(key), ctr_(key), cmac_(key), initiator_(initiator) {}

  /// seq(8) ‖ AES-CTR(ciphertext) ‖ CMAC-tag(8). The sequence number
  /// increments per packet and doubles as the IV source.
  [[nodiscard]] std::vector<std::uint8_t> seal(
      std::span<const std::uint8_t> plaintext);

  /// Verifies and decrypts; nullopt on tampering/truncation. Replays
  /// (seq <= highest seen) are rejected.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> open(
      std::span<const std::uint8_t> sealed);

  [[nodiscard]] std::uint64_t sent() const noexcept { return send_seq_; }
  [[nodiscard]] const crypto::AesKey& key() const noexcept { return key_; }

 private:
  crypto::AesKey key_;
  crypto::Ctr ctr_;
  crypto::Cmac cmac_;
  bool initiator_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t highest_recv_ = 0;
  bool any_recv_ = false;
};

/// RSA key transport: wraps a session key (and optional extra bytes)
/// under the peer's public key.
[[nodiscard]] std::vector<std::uint8_t> wrap_key(
    Rng& rng, const crypto::RsaPublicKey& peer_key,
    std::span<const std::uint8_t> key_block);

[[nodiscard]] std::optional<std::vector<std::uint8_t>> unwrap_key(
    const crypto::RsaDecryptor& identity,
    std::span<const std::uint8_t> wrapped);

}  // namespace nn::host
