// Traffic masking (paper §2, future work): "If in the practical
// deployment ISPs can use traffic analysis to successfully
// discriminate, we will consider incorporating mechanisms such as
// adaptive traffic masking [19] to defeat such attacks."
//
// This implements the size half of that defense: payloads are padded up
// to a small set of buckets before encryption, so packet length carries
// at most log2(#buckets) bits instead of identifying the application.
// (Timing masking — cover traffic and jitter — is modeled by the
// traffic sources' Poisson mode and is out of scope here, as in the
// paper.)
//
// Wire format inside the e2e payload: [u16 true_length] payload pad...
// The length prefix is encrypted along with everything else, so only
// the receiver learns the real size.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace nn::host {

/// Pads `payload` (prefixed with its true length) to the smallest
/// bucket that fits. Buckets must be sorted ascending; payloads larger
/// than the last bucket are padded to a multiple of it.
class SizeMasker {
 public:
  /// Default buckets follow common MTU-ish breakpoints.
  explicit SizeMasker(std::vector<std::size_t> buckets = {128, 256, 512,
                                                          1024, 1400});

  [[nodiscard]] std::vector<std::uint8_t> mask(
      std::span<const std::uint8_t> payload) const;

  /// Recovers the true payload; nullopt on malformed input.
  [[nodiscard]] static std::optional<std::vector<std::uint8_t>> unmask(
      std::span<const std::uint8_t> masked);

  [[nodiscard]] std::size_t bucket_for(std::size_t payload_size) const;
  [[nodiscard]] const std::vector<std::size_t>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::vector<std::size_t> buckets_;
};

}  // namespace nn::host
