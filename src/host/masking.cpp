#include "host/masking.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bytes.hpp"

namespace nn::host {

SizeMasker::SizeMasker(std::vector<std::size_t> buckets)
    : buckets_(std::move(buckets)) {
  if (buckets_.empty() || !std::is_sorted(buckets_.begin(), buckets_.end()) ||
      buckets_.front() < 3) {
    throw std::invalid_argument(
        "SizeMasker: buckets must be sorted, nonempty, and >= 3 bytes");
  }
}

std::size_t SizeMasker::bucket_for(std::size_t payload_size) const {
  const std::size_t need = payload_size + 2;  // length prefix
  for (const std::size_t b : buckets_) {
    if (need <= b) return b;
  }
  // Oversized: round up to a multiple of the largest bucket so large
  // transfers still quantize.
  const std::size_t top = buckets_.back();
  return ((need + top - 1) / top) * top;
}

std::vector<std::uint8_t> SizeMasker::mask(
    std::span<const std::uint8_t> payload) const {
  if (payload.size() > 0xFFFF) {
    throw std::invalid_argument("SizeMasker: payload too large");
  }
  const std::size_t target = bucket_for(payload.size());
  ByteWriter w(target);
  w.u16(static_cast<std::uint16_t>(payload.size()));
  w.raw(payload);
  w.zeros(target - 2 - payload.size());
  return w.take();
}

std::optional<std::vector<std::uint8_t>> SizeMasker::unmask(
    std::span<const std::uint8_t> masked) {
  if (masked.size() < 2) return std::nullopt;
  ByteReader r(masked);
  const std::uint16_t true_len = r.u16();
  if (true_len > r.remaining()) return std::nullopt;
  const auto body = r.take(true_len);
  return std::vector<std::uint8_t>(body.begin(), body.end());
}

}  // namespace nn::host
