#include "host/host.hpp"

#include "crypto/aes_modes.hpp"
#include "net/shim.hpp"

namespace nn::host {

using net::ShimFlags;
using net::ShimHeader;
using net::ShimType;

NeutralizedHost::NeutralizedHost(HostConfig config,
                                 crypto::RsaPrivateKey identity,
                                 TransmitFn transmit, sim::Engine* engine,
                                 std::uint64_t seed)
    : config_(config),
      identity_(std::move(identity)),
      transmit_(std::move(transmit)),
      engine_(engine),
      rng_(seed) {}

std::size_t NeutralizedHost::purge_idle_sessions(sim::SimTime now,
                                                 sim::SimTime max_age) {
  std::size_t purged = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_active > max_age) {
      it = sessions_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

bool NeutralizedHost::has_strong_key(net::Ipv4Addr anycast) const {
  const auto it = services_.find(anycast);
  return it != services_.end() && it->second.current.has_value() &&
         it->second.current->strong;
}

void NeutralizedHost::remember_key(net::Ipv4Addr anycast, std::uint64_t nonce,
                                   const crypto::AesKey& ks) {
  known_keys_[KnownKeyId{anycast.value(), nonce}] = ks;
}

const crypto::AesKey* NeutralizedHost::lookup_key(net::Ipv4Addr anycast,
                                                  std::uint64_t nonce) const {
  const auto it = known_keys_.find(KnownKeyId{anycast.value(), nonce});
  return it == known_keys_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Handshakes
// ---------------------------------------------------------------------------

void NeutralizedHost::start_handshake(net::Ipv4Addr anycast, ServiceState& st,
                                      sim::SimTime now) {
  (void)now;
  st.status = ServiceState::Status::kPending;
  st.request_id = rng_.next_u64();

  ShimHeader shim;
  shim.nonce = st.request_id;
  if (st.lease_mode) {
    // §3.3: a customer "may simply request a nonce and a symmetric key
    // from a neutralizer without encryption".
    shim.type = ShimType::kKeyLease;
    ++stats_.key_leases_sent;
    transmit_(net::make_shim_packet(config_.self, anycast, shim, {},
                                    config_.dscp));
  } else {
    // §3.2: generate a short one-time RSA key; the neutralizer performs
    // the cheap encryption, we will perform the expensive decryption.
    if (!st.onetime.has_value()) {
      st.onetime = crypto::rsa_generate(rng_, config_.onetime_rsa_bits, 3);
    }
    const auto pub = st.onetime->pub.serialize();
    shim.type = ShimType::kKeySetup;
    ++stats_.key_setups_sent;
    transmit_(net::make_shim_packet(config_.self, anycast, shim, pub,
                                    config_.dscp));
  }
  schedule_handshake_retry(anycast);
}

void NeutralizedHost::schedule_handshake_retry(net::Ipv4Addr anycast) {
  if (engine_ == nullptr || config_.handshake_timeout <= 0) return;
  engine_->schedule_in(config_.handshake_timeout, [this, anycast] {
    auto it = services_.find(anycast);
    if (it == services_.end()) return;
    ServiceState& st = it->second;
    if (st.status != ServiceState::Status::kPending) return;
    if (st.retries >= config_.max_handshake_retries) {
      // Give up; fail queued sends.
      stats_.send_failures += st.queue.size();
      st.queue.clear();
      st.status = ServiceState::Status::kNone;
      st.onetime.reset();
      st.retries = 0;
      return;
    }
    ++st.retries;
    ++stats_.handshake_retries;
    start_handshake(anycast, st, engine_->now());
  });
}

void NeutralizedHost::handle_key_response(const net::ParsedPacket& p,
                                          bool lease, sim::SimTime now) {
  (void)now;
  const net::Ipv4Addr anycast = p.ip.src;
  auto it = services_.find(anycast);
  if (it == services_.end()) return;
  ServiceState& st = it->second;
  if (st.status != ServiceState::Status::kPending ||
      p.shim->nonce != st.request_id) {
    return;  // stale or unsolicited
  }

  std::uint64_t nonce = 0;
  crypto::AesKey ks{};
  if (lease) {
    if (p.payload.size() != 24) return;
    ByteReader r(p.payload);
    nonce = r.u64();
    const auto key = r.take(16);
    std::copy(key.begin(), key.end(), ks.begin());
  } else {
    if (!st.onetime.has_value()) return;
    // The expensive RSA decryption, deliberately placed on the source
    // (paper §3.2).
    const auto plain = crypto::rsa_decrypt(*st.onetime, p.payload);
    if (!plain.has_value() || plain->size() != 24) {
      ++stats_.decrypt_failures;
      return;
    }
    ByteReader r(*plain);
    nonce = r.u64();
    const auto key = r.take(16);
    std::copy(key.begin(), key.end(), ks.begin());
  }

  ServiceKey key;
  key.epoch = p.shim->key_epoch;
  key.nonce = nonce;
  key.ks = ks;
  key.lease = lease;
  // A leased key never crossed a hostile network; a setup key came via
  // a short one-time RSA exchange and should be upgraded (kKeyRequest).
  key.strong = lease;
  st.current = key;
  st.status = ServiceState::Status::kReady;
  st.onetime.reset();
  st.retries = 0;
  ++stats_.keys_established;
  remember_key(anycast, nonce, ks);

  // Flush sends queued behind the handshake.
  auto queue = std::move(st.queue);
  st.queue.clear();
  for (auto& pending : queue) {
    send(pending.peer, std::move(pending.payload), now);
  }
}

// ---------------------------------------------------------------------------
// Application send path
// ---------------------------------------------------------------------------

void NeutralizedHost::send(net::Ipv4Addr peer,
                           std::vector<std::uint8_t> payload,
                           sim::SimTime now) {
  Session& sess = sessions_[peer];

  // Established reply routes take precedence (responder roles).
  if (sess.route == Session::Route::kRespond ||
      sess.route == Session::Route::kReverseOutside) {
    transmit_data(peer, sess, payload, now);
    return;
  }

  // Initiator roles need a service key first.
  const bool via_home = config_.inside_neutral_domain;
  net::Ipv4Addr anycast;
  if (via_home) {
    anycast = config_.home_anycast;
  } else {
    const auto info = peers_.find(peer);
    if (info == peers_.end() || info->second.anycast.is_unspecified()) {
      ++stats_.send_failures;
      return;
    }
    anycast = info->second.anycast;
  }

  ServiceState& st = services_[anycast];
  st.lease_mode = via_home;

  // Proactive refresh across master-key rotations: a key older than the
  // previous epoch will be rejected by the service.
  if (st.status == ServiceState::Status::kReady && st.current.has_value()) {
    const std::uint16_t expected = local_epoch_estimate(now);
    if (st.current->epoch + 1 < expected ||
        (st.current->epoch < expected && st.current->lease)) {
      st.status = ServiceState::Status::kNone;  // full re-handshake
      st.current.reset();
    } else if (st.current->epoch < expected) {
      st.current->strong = false;  // ask for a re-stamp on the next packet
    }
  }

  if (st.status != ServiceState::Status::kReady) {
    st.queue.push_back(PendingSend{peer, std::move(payload)});
    ++stats_.queued_sends;
    if (st.status == ServiceState::Status::kNone) {
      start_handshake(anycast, st, now);
    }
    return;
  }

  sess.route = Session::Route::kViaPeerService;  // also used for via-home
  sess.via_anycast = anycast;
  transmit_data(peer, sess, payload, now);
}

void NeutralizedHost::transmit_data(net::Ipv4Addr peer, Session& sess,
                                    std::span<const std::uint8_t> payload,
                                    sim::SimTime now) {
  sess.last_active = now;
  // Build the inner application frame (with a rekey echo when owed).
  AppFrame frame;
  if (sess.pending_echo.has_value()) {
    frame.echo = sess.pending_echo;
    sess.pending_echo.reset();
    ++stats_.echoes_sent;
  }
  frame.payload.assign(payload.begin(), payload.end());
  auto frame_bytes = frame.serialize();
  if (config_.mask_payload_sizes) {
    frame_bytes = masker_.mask(frame_bytes);  // §2: defeat size analysis
  }

  // Establish e2e lazily (we are the conversation initiator if no
  // session exists yet).
  const bool need_transport = !sess.e2e.has_value() || sess.transport_sent;
  if (!sess.e2e.has_value()) {
    crypto::AesKey session_key;
    rng_.fill(session_key);
    sess.e2e.emplace(session_key, /*initiator=*/true);
    sess.transport_sent = true;
  }
  const auto sealed = sess.e2e->seal(frame_bytes);

  std::vector<std::uint8_t> shim_payload;
  if (need_transport) {
    const auto info = peers_.find(peer);
    if (info == peers_.end()) {
      ++stats_.send_failures;
      return;
    }
    KeyBlock kb;
    kb.session_key = sess.e2e->key();
    if (config_.inside_neutral_domain &&
        sess.route == Session::Route::kViaPeerService) {
      // §3.3: ship the leased neutralizer key to the outside peer so it
      // can address us through our neutralizer.
      const auto& st = services_.at(sess.via_anycast);
      kb.has_lease = true;
      kb.lease_epoch = st.current->epoch;
      kb.lease_nonce = st.current->nonce;
      kb.lease_key = st.current->ks;
    }
    const auto wrapped = wrap_key(rng_, info->second.public_key, kb.serialize());
    shim_payload = frame_key_transport(wrapped, sealed);
  } else {
    shim_payload = frame_sealed(sealed);
  }

  // Build the shim header per route.
  ShimHeader shim;
  switch (sess.route) {
    case Session::Route::kViaPeerService: {
      const auto& st = services_.at(sess.via_anycast);
      const ServiceKey& key = *st.current;
      if (config_.inside_neutral_domain) {
        // Customer-initiated (§3.3): leave via our own neutralizer.
        shim.type = ShimType::kDataReturn;
        shim.flags = ShimFlags::kLeaseKey;
        shim.inner_addr = peer.value();  // clear inside our domain
      } else {
        shim.type = ShimType::kDataForward;
        shim.flags = key.lease ? ShimFlags::kLeaseKey : 0;
        if (!key.strong) shim.flags |= ShimFlags::kKeyRequest;
        shim.inner_addr =
            crypto::crypt_address(key.ks, key.nonce, false, peer.value());
      }
      shim.key_epoch = key.epoch;
      shim.nonce = key.nonce;
      break;
    }
    case Session::Route::kRespond:
      // We are the customer answering an outside initiator (Fig. 2
      // packet 5): dst is the return handle, the initiator's address
      // rides in clear inside our domain.
      shim.type = ShimType::kDataReturn;
      shim.flags = sess.lease ? ShimFlags::kLeaseKey : 0;
      shim.key_epoch = sess.epoch;
      shim.nonce = sess.nonce;
      shim.inner_addr = peer.value();
      break;
    case Session::Route::kReverseOutside:
      // We are the outside party of a customer-initiated flow (§3.3),
      // sending back with the leased key it gave us.
      shim.type = ShimType::kDataForward;
      shim.flags = ShimFlags::kLeaseKey;
      shim.key_epoch = sess.epoch;
      shim.nonce = sess.nonce;
      shim.inner_addr =
          crypto::crypt_address(sess.flow_ks, sess.nonce, false, peer.value());
      break;
    case Session::Route::kNone:
      ++stats_.send_failures;
      return;
  }

  ++stats_.app_sent;
  transmit_(net::make_shim_packet(config_.self, sess.via_anycast, shim,
                                  shim_payload, config_.dscp));
}

// ---------------------------------------------------------------------------
// Receive paths
// ---------------------------------------------------------------------------

void NeutralizedHost::on_packet(net::Packet&& pkt, sim::SimTime now) {
  net::ParsedPacket p;
  try {
    p = net::parse_packet(pkt.view());
  } catch (const ParseError&) {
    return;
  }
  if (!p.shim.has_value()) return;

  switch (p.shim->type) {
    case ShimType::kKeySetupResponse:
      handle_key_response(p, /*lease=*/false, now);
      return;
    case ShimType::kKeyLeaseResponse:
      handle_key_response(p, /*lease=*/true, now);
      return;
    case ShimType::kKeySetup:
      // Only reaches a host via the offload path (§3.2).
      if (config_.inside_neutral_domain && p.shim->rekey.has_value()) {
        handle_offload_request(p, now);
      }
      return;
    case ShimType::kDataForward:
      handle_forward_delivery(std::move(pkt), now);
      return;
    case ShimType::kDataReturn:
      handle_return_delivery(std::move(pkt), now);
      return;
    case ShimType::kKeyLease:
    case ShimType::kDynAddrRequest:
    case ShimType::kDynAddrResponse:
      // Key leases are never addressed to hosts; dynamic-address
      // control messages are consumed by QoS-session applications that
      // install their own handlers (see tests/core/test_dynamic_datapath).
      return;
  }
}

void NeutralizedHost::deliver(net::Ipv4Addr peer, Session& sess,
                              std::span<const std::uint8_t> sealed,
                              sim::SimTime now) {
  sess.last_active = now;
  if (!sess.e2e.has_value()) {
    ++stats_.decrypt_failures;
    return;
  }
  auto plain = sess.e2e->open(sealed);
  if (!plain.has_value()) {
    ++stats_.decrypt_failures;
    return;
  }
  if (config_.mask_payload_sizes) {
    plain = SizeMasker::unmask(*plain);
    if (!plain.has_value()) {
      ++stats_.decrypt_failures;
      return;
    }
  }
  const auto frame = AppFrame::parse(*plain);
  if (!frame.has_value()) {
    ++stats_.decrypt_failures;
    return;
  }
  if (frame->echo.has_value() &&
      sess.route == Session::Route::kViaPeerService) {
    adopt_echo(sess.via_anycast, *frame->echo);
  }
  // A successfully opened frame proves the peer holds the session key;
  // stop resending the key transport.
  sess.transport_sent = false;
  ++stats_.app_delivered;
  if (app_handler_) app_handler_(peer, frame->payload, now);
}

void NeutralizedHost::adopt_echo(net::Ipv4Addr anycast,
                                 const RekeyEcho& echo) {
  auto it = services_.find(anycast);
  if (it == services_.end()) return;
  ServiceState& st = it->second;
  ServiceKey key;
  key.epoch = echo.epoch;
  key.nonce = echo.nonce;
  key.ks = echo.key;
  key.lease = false;
  key.strong = true;  // stamped by the neutralizer, never exposed
  st.current = key;
  remember_key(anycast, echo.nonce, echo.key);
  ++stats_.rekeys_adopted;
}

void NeutralizedHost::handle_forward_delivery(net::Packet&& pkt,
                                              sim::SimTime now) {
  net::ShimPacketView view(pkt.mutable_view());
  const net::Ipv4Addr peer = view.src();
  const net::Ipv4Addr return_anycast(view.inner_addr());

  Session& sess = sessions_[peer];
  // Record/refresh the reply route (Fig. 2 packet 4 -> 5). Established
  // initiator routes are kept: both endpoints of a §3.3 flow may send
  // forward packets.
  if (sess.route == Session::Route::kNone ||
      sess.route == Session::Route::kRespond) {
    sess.route = Session::Route::kRespond;
    sess.via_anycast = return_anycast;
    sess.nonce = view.nonce();
    sess.epoch = view.key_epoch();
    sess.lease = (view.flags() & ShimFlags::kLeaseKey) != 0;
  }
  if (view.flags() & ShimFlags::kRekeyFilled) {
    const auto ext = view.rekey();
    sess.pending_echo = RekeyEcho{ext.epoch, ext.nonce, ext.key};
  }

  const auto frame = parse_frame(view.payload());
  if (!frame.has_value()) {
    ++stats_.decrypt_failures;
    return;
  }
  if (frame->type == FrameType::kKeyTransport) {
    const auto block_bytes = unwrap_key(identity_, frame->wrapped_key);
    const auto block =
        block_bytes ? KeyBlock::parse(*block_bytes) : std::nullopt;
    if (!block.has_value()) {
      ++stats_.decrypt_failures;
      return;
    }
    // Adopt the transported key; a *different* key means the peer
    // restarted the session (e.g. after GC) and the old state is stale.
    if (!sess.e2e.has_value() || sess.e2e->key() != block->session_key) {
      sess.e2e.emplace(block->session_key, /*initiator=*/false);
    }
  }
  deliver(peer, sess, frame->sealed, now);
}

void NeutralizedHost::handle_return_delivery(net::Packet&& pkt,
                                             sim::SimTime now) {
  net::ShimPacketView view(pkt.mutable_view());
  const net::Ipv4Addr anycast = view.src();
  const std::uint64_t nonce = view.nonce();

  if (const crypto::AesKey* ks = lookup_key(anycast, nonce)) {
    // Normal return leg: recover the hidden peer, then open.
    const net::Ipv4Addr peer(
        crypto::crypt_address(*ks, nonce, true, view.inner_addr()));
    const auto sit = sessions_.find(peer);
    if (sit == sessions_.end()) {
      ++stats_.decrypt_failures;
      return;
    }
    const auto frame = parse_frame(view.payload());
    if (!frame.has_value()) {
      ++stats_.decrypt_failures;
      return;
    }
    deliver(peer, sit->second, frame->sealed, now);
    return;
  }

  // Unknown (nonce, neutralizer): §3.3 — "it will attempt to use its
  // public key to decrypt the packet".
  const auto frame = parse_frame(view.payload());
  if (!frame.has_value() || frame->type != FrameType::kKeyTransport) {
    ++stats_.decrypt_failures;
    return;
  }
  const auto block_bytes = unwrap_key(identity_, frame->wrapped_key);
  const auto block = block_bytes ? KeyBlock::parse(*block_bytes) : std::nullopt;
  if (!block.has_value() || !block->has_lease ||
      block->lease_nonce != nonce) {
    ++stats_.decrypt_failures;
    return;
  }
  // The leased key both names the flow and unhides the customer.
  const net::Ipv4Addr peer(
      crypto::crypt_address(block->lease_key, nonce, true, view.inner_addr()));
  remember_key(anycast, nonce, block->lease_key);

  Session& sess = sessions_[peer];
  sess.route = Session::Route::kReverseOutside;
  sess.via_anycast = anycast;
  sess.nonce = nonce;
  sess.epoch = block->lease_epoch;
  sess.lease = true;
  sess.flow_ks = block->lease_key;
  if (!sess.e2e.has_value() || sess.e2e->key() != block->session_key) {
    sess.e2e.emplace(block->session_key, /*initiator=*/false);
  }
  deliver(peer, sess, frame->sealed, now);
}

void NeutralizedHost::handle_offload_request(const net::ParsedPacket& p,
                                             sim::SimTime now) {
  (void)now;
  // §3.2: the neutralizer forwarded a key setup to us with (nonce, Ks)
  // stamped; we do the RSA encryption and answer as the service.
  crypto::RsaPublicKey source_key;
  try {
    source_key = crypto::RsaPublicKey::parse(p.payload);
  } catch (const ParseError&) {
    return;
  }
  const net::RekeyExt& ext = *p.shim->rekey;
  ByteWriter msg(24);
  msg.u64(ext.nonce);
  msg.raw(ext.key);
  std::vector<std::uint8_t> ciphertext;
  try {
    ciphertext = crypto::rsa_encrypt(rng_, source_key, msg.view());
  } catch (const std::invalid_argument&) {
    return;
  }

  ShimHeader shim;
  shim.type = ShimType::kKeySetupResponse;
  shim.key_epoch = ext.epoch;
  shim.nonce = p.shim->nonce;  // request id
  ++stats_.offload_served;
  // Answer with the service's source address: indistinguishable from a
  // locally-answered setup (our domain permits this spoof).
  transmit_(net::make_shim_packet(config_.home_anycast, p.ip.src, shim,
                                  ciphertext, p.ip.dscp));
}

}  // namespace nn::host
