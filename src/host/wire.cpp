#include "host/wire.hpp"

namespace nn::host {

std::vector<std::uint8_t> KeyBlock::serialize() const {
  ByteWriter w(kSize);
  w.raw(session_key);
  w.u8(has_lease ? 1 : 0);
  w.u16(lease_epoch);
  w.u64(lease_nonce);
  w.raw(lease_key);
  return w.take();
}

std::optional<KeyBlock> KeyBlock::parse(std::span<const std::uint8_t> data) {
  if (data.size() != kSize) return std::nullopt;
  ByteReader r(data);
  KeyBlock kb;
  const auto sk = r.take(16);
  std::copy(sk.begin(), sk.end(), kb.session_key.begin());
  kb.has_lease = r.u8() != 0;
  kb.lease_epoch = r.u16();
  kb.lease_nonce = r.u64();
  const auto lk = r.take(16);
  std::copy(lk.begin(), lk.end(), kb.lease_key.begin());
  return kb;
}

namespace {
constexpr std::uint8_t kFlagHasEcho = 0x01;
}

std::vector<std::uint8_t> AppFrame::serialize() const {
  ByteWriter w(1 + (echo ? 26 : 0) + payload.size());
  w.u8(echo ? kFlagHasEcho : 0);
  if (echo) {
    w.u16(echo->epoch);
    w.u64(echo->nonce);
    w.raw(echo->key);
  }
  w.raw(payload);
  return w.take();
}

std::optional<AppFrame> AppFrame::parse(std::span<const std::uint8_t> data) {
  if (data.empty()) return std::nullopt;
  ByteReader r(data);
  const std::uint8_t flags = r.u8();
  AppFrame frame;
  try {
    if (flags & kFlagHasEcho) {
      RekeyEcho echo;
      echo.epoch = r.u16();
      echo.nonce = r.u64();
      const auto key = r.take(16);
      std::copy(key.begin(), key.end(), echo.key.begin());
      frame.echo = echo;
    }
  } catch (const ParseError&) {
    return std::nullopt;
  }
  frame.payload.assign(r.rest().begin(), r.rest().end());
  return frame;
}

std::vector<std::uint8_t> frame_key_transport(
    std::span<const std::uint8_t> wrapped_key,
    std::span<const std::uint8_t> sealed) {
  ByteWriter w(3 + wrapped_key.size() + sealed.size());
  w.u8(static_cast<std::uint8_t>(FrameType::kKeyTransport));
  w.u16(static_cast<std::uint16_t>(wrapped_key.size()));
  w.raw(wrapped_key);
  w.raw(sealed);
  return w.take();
}

std::vector<std::uint8_t> frame_sealed(std::span<const std::uint8_t> sealed) {
  ByteWriter w(1 + sealed.size());
  w.u8(static_cast<std::uint8_t>(FrameType::kSealed));
  w.raw(sealed);
  return w.take();
}

std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> data) {
  if (data.empty()) return std::nullopt;
  ByteReader r(data);
  const std::uint8_t type = r.u8();
  ParsedFrame out{};
  try {
    if (type == static_cast<std::uint8_t>(FrameType::kKeyTransport)) {
      out.type = FrameType::kKeyTransport;
      const std::uint16_t len = r.u16();
      out.wrapped_key = r.take(len);
      out.sealed = r.rest();
      return out;
    }
    if (type == static_cast<std::uint8_t>(FrameType::kSealed)) {
      out.type = FrameType::kSealed;
      out.sealed = r.rest();
      return out;
    }
  } catch (const ParseError&) {
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace nn::host
