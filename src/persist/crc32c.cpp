#include "persist/crc32c.hpp"

#include <array>

namespace nn::persist {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
};

constexpr Tables build_tables() {
  Tables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
    tb.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tb.t[0][i];
    for (std::size_t j = 1; j < 8; ++j) {
      c = tb.t[0][c & 0xFF] ^ (c >> 8);
      tb.t[j][i] = c;
    }
  }
  return tb;
}

constexpr Tables kTables = build_tables();

std::uint32_t advance(std::uint32_t crc,
                      std::span<const std::uint8_t> data) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // Slice-by-8 over aligned-enough middles; head/tail bytewise. The
  // 64-bit load is assembled from bytes, so alignment and endianness
  // never matter (the compiler folds it into one load on LE targets).
  while (n >= 8) {
    const std::uint64_t word =
        (static_cast<std::uint64_t>(p[0])) |
        (static_cast<std::uint64_t>(p[1]) << 8) |
        (static_cast<std::uint64_t>(p[2]) << 16) |
        (static_cast<std::uint64_t>(p[3]) << 24) |
        (static_cast<std::uint64_t>(p[4]) << 32) |
        (static_cast<std::uint64_t>(p[5]) << 40) |
        (static_cast<std::uint64_t>(p[6]) << 48) |
        (static_cast<std::uint64_t>(p[7]) << 56);
    const std::uint64_t x = word ^ crc;
    crc = kTables.t[7][x & 0xFF] ^ kTables.t[6][(x >> 8) & 0xFF] ^
          kTables.t[5][(x >> 16) & 0xFF] ^ kTables.t[4][(x >> 24) & 0xFF] ^
          kTables.t[3][(x >> 32) & 0xFF] ^ kTables.t[2][(x >> 40) & 0xFF] ^
          kTables.t[1][(x >> 48) & 0xFF] ^ kTables.t[0][(x >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace

void Crc32c::update(std::span<const std::uint8_t> data) noexcept {
  state_ = advance(state_, data);
}

std::uint32_t crc32c(std::span<const std::uint8_t> data) noexcept {
  return ~advance(~std::uint32_t{0}, data);
}

}  // namespace nn::persist
