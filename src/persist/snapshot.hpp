// Versioned, CRC-protected, chunked snapshot container — the on-disk
// format a restarted neutralizer box rebuilds its session state from.
//
// Layout (all integers big-endian, like every wire format here):
//
//   file header   magic 'NNSN' u32 | version u16 | flags u16 |
//                 crc32c(first 8 bytes) u32
//   chunk         tag u32 | payload_len u32 | payload bytes |
//                 crc32c(tag ‖ payload_len ‖ payload) u32
//   ...           (any number of chunks, any tags)
//   end chunk     tag 'NEND', payload = u32 chunk count so far
//
// The container knows nothing about what the chunks mean — the state
// hooks (core::SessionTable::export_state and friends, defined in
// persist/state.cpp) own their tags. Contract highlights:
//
//   * Streaming: a chunk is buffered in a reused scratch ByteWriter and
//     flushed to the ByteSink whole, so exporting a million sessions
//     costs a bounded working set and zero steady-state allocation once
//     the scratch is warm (records go out in fixed-size SREC chunks).
//   * Every loader failure is a typed persist::FormatError with an
//     exact message; truncation anywhere (header, chunk header, payload,
//     CRC, missing end chunk) is detected, a flipped bit anywhere is
//     caught by the per-chunk CRC, and a version bump is rejected
//     before any payload is interpreted. Hostile input never reaches
//     undefined behavior (tests/persist/test_loader_fuzz.cpp).
//   * Snapshots are taken at quiescence points only — after flush() /
//     end-of-instant, when no batch is in flight — the same contract as
//     every other cross-thread read of neutralizer state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "persist/io.hpp"
#include "util/bytes.hpp"

namespace nn::persist {

inline constexpr std::uint32_t kSnapshotMagic = 0x4E4E534Eu;  // 'NNSN'
inline constexpr std::uint16_t kSnapshotVersion = 1;
/// Absurd-length guard: no chunk this codebase writes approaches it, so
/// a declared length beyond the cap is corruption, not data.
inline constexpr std::uint32_t kMaxChunkLen = 1u << 30;

/// Four-character chunk tag, e.g. chunk_tag("SREC").
constexpr std::uint32_t chunk_tag(const char (&s)[5]) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3]));
}

inline constexpr std::uint32_t kEndTag = chunk_tag("NEND");

class SnapshotWriter {
 public:
  /// Writes the file header immediately.
  explicit SnapshotWriter(ByteSink& sink);

  /// Opens a chunk; write the payload through the returned ByteWriter
  /// (scratch reused across chunks). One chunk open at a time.
  ByteWriter& begin_chunk(std::uint32_t tag);
  /// Seals the open chunk: CRC computed, bytes pushed to the sink.
  void end_chunk();
  /// Writes the end chunk and flushes the sink. No chunks may follow.
  void finish();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint32_t chunks_written() const noexcept {
    return chunks_;
  }

 private:
  ByteSink& sink_;
  std::optional<ByteWriter> chunk_;
  std::vector<std::uint8_t> scratch_;  // payload buffer recycled per chunk
  std::uint32_t chunk_tag_ = 0;
  std::uint32_t chunks_ = 0;
  std::uint64_t bytes_written_ = 0;
  bool finished_ = false;

  void emit_chunk(std::uint32_t tag, std::span<const std::uint8_t> payload);
};

class SnapshotReader {
 public:
  /// Reads and validates the file header; throws FormatError on bad
  /// magic, version skew, truncation, or a corrupted header CRC.
  explicit SnapshotReader(ByteSource& source);

  struct Chunk {
    std::uint32_t tag = 0;
    /// Valid until the next next() call (scratch-backed).
    std::span<const std::uint8_t> payload;
  };

  /// Next chunk, or nullopt exactly once after a valid end chunk.
  /// Throws FormatError on truncation, CRC mismatch, absurd lengths,
  /// trailing garbage after the end chunk, or a chunk-count mismatch in
  /// the end chunk.
  std::optional<Chunk> next();

  /// True once the end chunk has been consumed.
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::uint32_t chunks_read() const noexcept { return chunks_; }

 private:
  ByteSource& source_;
  std::vector<std::uint8_t> scratch_;
  std::uint32_t chunks_ = 0;
  bool finished_ = false;

  void read_exact(std::span<std::uint8_t> out, const char* what);
};

}  // namespace nn::persist
