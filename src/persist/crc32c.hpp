// CRC-32C (Castagnoli, the iSCSI/ext4 polynomial) over byte spans —
// the integrity check every snapshot chunk and journal batch carries.
// Software slice-by-8: one table lookup per input byte across eight
// parallel tables, ~multi-GB/s without any ISA extension, so the
// portable build keeps the same on-disk format and throughput class as
// an accelerated one would. Incremental: feed chunks through
// Crc32c::update() or hash a whole span with crc32c().
#pragma once

#include <cstdint>
#include <span>

namespace nn::persist {

class Crc32c {
 public:
  void update(std::span<const std::uint8_t> data) noexcept;
  /// Finalized (inverted) CRC of everything fed so far. The accumulator
  /// keeps running — interleave value() and update() freely.
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }
  void reset() noexcept { state_ = ~std::uint32_t{0}; }

 private:
  std::uint32_t state_ = ~std::uint32_t{0};
};

[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data) noexcept;

}  // namespace nn::persist
