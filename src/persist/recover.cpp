#include "persist/recover.hpp"

#include <string>
#include <utility>

#include "net/packet.hpp"
#include "net/shim.hpp"
#include "persist/state.hpp"

namespace nn::persist {

RecoverStats recover(core::Neutralizer& service, ByteSource& snapshot,
                     ByteSource* journal, RecoverConfig config) {
  load_neutralizer(service, snapshot);
  RecoverStats stats;
  stats.sessions_restored = service.dynamic_sessions();
  if (journal == nullptr) return stats;

  JournalReader reader(*journal, config.torn_tail);
  while (auto record = reader.next()) {
    // The live box ran its lease collector ahead of every control
    // message (scenario/fig1.cpp does exactly this); replay must too,
    // or a recycled address could come back in a different order.
    service.expire_dynamic_sessions(record->at);
    switch (record->op) {
      case JournalOp::kArrive: {
        net::ShimHeader shim;
        shim.type = net::ShimType::kDynAddrRequest;
        shim.nonce = record->nonce;
        auto response = service.process(
            net::make_shim_packet(net::Ipv4Addr(record->addr),
                                  service.config().anycast_addr, shim, {}),
            record->at);
        // The response (if any) was already delivered before the crash;
        // determinism guarantees it carried these same bytes.
        (void)response;
        ++stats.arrivals_replayed;
        break;
      }
      case JournalOp::kRenew:
        if (!service.renew_dynamic(net::Ipv4Addr(record->addr), record->at)) {
          throw StateError(
              "recover: journaled renew for unknown session " +
              net::Ipv4Addr(record->addr).to_string() +
              " (journal does not continue this snapshot)");
        }
        ++stats.renews_replayed;
        break;
      case JournalOp::kDepart:
        if (!service.release_dynamic(net::Ipv4Addr(record->addr))) {
          throw StateError(
              "recover: journaled depart for unknown session " +
              net::Ipv4Addr(record->addr).to_string() +
              " (journal does not continue this snapshot)");
        }
        ++stats.departs_replayed;
        break;
      case JournalOp::kRekeyStorm:
        service.rekey_dynamic_sessions(record->at);
        ++stats.storms_replayed;
        break;
    }
    stats.last_at = record->at;
  }
  stats.journal_records = reader.records_read();
  stats.journal_batches = reader.batches_read();
  stats.torn_tail = reader.torn();
  return stats;
}

}  // namespace nn::persist
