// State hooks: how the core control-plane classes serialize themselves
// into the chunked snapshot container and rebuild from it. Lives here —
// not in core/ — so the core headers only ever forward-declare persist
// types; being member functions, the hooks still reach the private
// representation they must capture exactly.

#include <algorithm>
#include <string>
#include <vector>

#include "core/dynamic_addr.hpp"
#include "core/neutralizer.hpp"
#include "core/session_table.hpp"
#include "persist/state.hpp"
#include "util/bytes.hpp"

namespace nn {
namespace {

std::string tag_name(std::uint32_t tag) {
  std::string s;
  for (int shift = 24; shift >= 0; shift -= 8) {
    const char c = static_cast<char>((tag >> shift) & 0xFF);
    s.push_back((c >= 0x20 && c < 0x7F) ? c : '?');
  }
  return s;
}

/// ByteReader overruns inside a chunk mean the chunk body lies about its
/// own layout — surface that as a format problem, not a parse one.
[[noreturn]] void malformed(const char* tag) {
  throw persist::FormatError(std::string("snapshot: malformed '") + tag +
                             "' chunk");
}

}  // namespace

namespace core {

// --------------------------------------------------------------------
// SessionTable
// --------------------------------------------------------------------

void SessionTable::export_state(persist::SnapshotWriter& writer) const {
  // Scan from just past the first empty bucket (one always exists at
  // <= 7/8 load) so every probe cluster is visited from its true start
  // and never split across the scan origin. Restoring then re-inserts
  // each cluster in position order, which reproduces the exact bucket
  // layout — making the exported bytes a pure function of the resident
  // state, not of the insertion history (the round-trip identity and
  // golden-fixture tests pin this).
  std::size_t origin = 0;
  while (origin < buckets_.size() && buckets_[origin] != kEmpty) ++origin;
  std::size_t pending = 0;
  ByteWriter* w = nullptr;
  for (std::size_t i = 1; i <= buckets_.size(); ++i) {
    const std::size_t b = (origin + i) & (buckets_.size() - 1);
    if (buckets_[b] == kEmpty) continue;
    if (w == nullptr) w = &writer.begin_chunk(persist::kTagSessionRecords);
    const SessionRecord& rec = slab_[buckets_[b]];
    w->u32(rec.dyn_value)
        .u32(rec.customer)
        .u64(static_cast<std::uint64_t>(rec.expiry))
        .u16(rec.key_epoch)
        .raw(rec.session_key);
    if (++pending == persist::kSessionRecordsPerChunk) {
      writer.end_chunk();
      w = nullptr;
      pending = 0;
    }
  }
  if (w != nullptr) writer.end_chunk();
}

void SessionTable::restore_records(std::span<const std::uint8_t> payload) {
  if (payload.size() % persist::kSessionRecordBytes != 0) {
    throw persist::FormatError(
        "snapshot: 'SREC' chunk length " + std::to_string(payload.size()) +
        " is not a multiple of " + std::to_string(persist::kSessionRecordBytes));
  }
  ByteReader r(payload);
  while (!r.empty()) {
    const std::uint32_t dyn = r.u32();
    SessionRecord* rec = insert(dyn);
    if (rec == nullptr) {
      throw persist::StateError(
          "snapshot: duplicate session record for dynamic address " +
          net::Ipv4Addr(dyn).to_string());
    }
    rec->customer = r.u32();
    const std::uint64_t expiry = r.u64();
    if (expiry > static_cast<std::uint64_t>(SessionRecord::kNoExpiry)) {
      throw persist::StateError(
          "snapshot: session expiry out of range for dynamic address " +
          net::Ipv4Addr(dyn).to_string());
    }
    rec->expiry = static_cast<sim::SimTime>(expiry);
    rec->key_epoch = r.u16();
    const auto key = r.take(rec->session_key.size());
    std::copy(key.begin(), key.end(), rec->session_key.begin());
  }
}

// --------------------------------------------------------------------
// DynamicAddressAllocator
// --------------------------------------------------------------------

void DynamicAddressAllocator::export_state(
    persist::SnapshotWriter& writer) const {
  {
    ByteWriter& w = writer.begin_chunk(persist::kTagAllocator);
    w.u32(pool_.base().value())
        .u8(static_cast<std::uint8_t>(pool_.length()))
        .u32(capacity_)
        .u32(next_fresh_)
        .u64(counters_.allocated)
        .u64(counters_.released)
        .u64(counters_.expired)
        .u64(counters_.renewed)
        .u64(counters_.rejected)
        .u64(table_.size())
        .u64(free_offsets_.size());
    writer.end_chunk();
  }
  ByteWriter* w = nullptr;
  std::size_t pending = 0;
  for (const std::uint32_t offset : free_offsets_) {
    if (w == nullptr) w = &writer.begin_chunk(persist::kTagFreeList);
    w->u32(offset);
    if (++pending == persist::kFreeOffsetsPerChunk) {
      writer.end_chunk();
      w = nullptr;
      pending = 0;
    }
  }
  if (w != nullptr) writer.end_chunk();
  table_.export_state(writer);
}

bool DynamicAddressAllocator::restore_chunk(
    std::uint32_t tag, std::span<const std::uint8_t> payload) {
  if (tag == persist::kTagAllocator) {
    if (restoring_) {
      throw persist::StateError("snapshot: duplicate 'DALC' chunk");
    }
    if (payload.size() != 69) malformed("DALC");
    ByteReader r(payload);
    const net::Ipv4Addr base{r.u32()};
    const int length = r.u8();
    if (length > 32 || net::Ipv4Prefix(base, length) != pool_) {
      throw persist::StateError(
          "snapshot: dynamic pool mismatch (snapshot " + base.to_string() +
          "/" + std::to_string(length) + ", this box " + pool_.to_string() +
          ")");
    }
    if (r.u32() != capacity_) {
      throw persist::StateError("snapshot: dynamic pool capacity mismatch");
    }
    const std::uint32_t next_fresh = r.u32();
    if (next_fresh < 1 || next_fresh > capacity_ + 1) {
      throw persist::StateError("snapshot: allocator cursor " +
                                std::to_string(next_fresh) +
                                " outside [1, capacity+1]");
    }
    DynSessionCounters counters;
    counters.allocated = r.u64();
    counters.released = r.u64();
    counters.expired = r.u64();
    counters.renewed = r.u64();
    counters.rejected = r.u64();
    const std::uint64_t resident = r.u64();
    const std::uint64_t free_depth = r.u64();
    // Conservation: every offset the cursor ever passed is resident or
    // recycled, exactly once.
    if (resident + free_depth != next_fresh - 1) {
      throw persist::StateError(
          "snapshot: allocator conservation violated (" +
          std::to_string(resident) + " resident + " +
          std::to_string(free_depth) + " free != " +
          std::to_string(next_fresh - 1) + " handed out)");
    }
    if (counters.allocated != counters.released + counters.expired + resident) {
      throw persist::StateError(
          "snapshot: allocator counters violate the accounting identity "
          "(allocated != released + expired + resident)");
    }
    // Reset to empty, then pre-size: the restore path must not rehash.
    table_ = SessionTable{};
    free_offsets_.clear();
    lease_heap_.clear();
    next_fresh_ = next_fresh;
    counters_ = counters;
    reserve(static_cast<std::size_t>(resident));
    free_offsets_.reserve(static_cast<std::size_t>(free_depth));
    restoring_ = true;
    restore_expect_resident_ = resident;
    restore_expect_free_ = free_depth;
    return true;
  }
  if (tag == persist::kTagFreeList) {
    if (!restoring_) {
      throw persist::StateError("snapshot: 'DFRE' chunk before 'DALC'");
    }
    if (payload.size() % 4 != 0) malformed("DFRE");
    ByteReader r(payload);
    while (!r.empty()) {
      const std::uint32_t offset = r.u32();
      if (offset < 1 || offset >= next_fresh_) {
        throw persist::StateError("snapshot: recycled offset " +
                                  std::to_string(offset) +
                                  " outside [1, cursor)");
      }
      if (free_offsets_.size() >= restore_expect_free_) {
        throw persist::StateError(
            "snapshot: more recycled offsets than 'DALC' declared");
      }
      free_offsets_.push_back(offset);
    }
    return true;
  }
  if (tag == persist::kTagSessionRecords) {
    if (!restoring_) {
      throw persist::StateError("snapshot: 'SREC' chunk before 'DALC'");
    }
    table_.restore_records(payload);
    if (table_.size() > restore_expect_resident_) {
      throw persist::StateError(
          "snapshot: more session records than 'DALC' declared");
    }
    return true;
  }
  return false;
}

void DynamicAddressAllocator::finish_restore() {
  if (!restoring_) {
    throw persist::StateError("snapshot: missing 'DALC' chunk");
  }
  restoring_ = false;
  if (table_.size() != restore_expect_resident_) {
    throw persist::StateError(
        "snapshot: 'DALC' declares " +
        std::to_string(restore_expect_resident_) + " resident session(s), " +
        "records restore " + std::to_string(table_.size()));
  }
  if (free_offsets_.size() != restore_expect_free_) {
    throw persist::StateError(
        "snapshot: 'DALC' declares " + std::to_string(restore_expect_free_) +
        " recycled offset(s), free list restores " +
        std::to_string(free_offsets_.size()));
  }
  // Each handed-out offset must appear exactly once across {resident,
  // recycled}. Counts already match next_fresh_ - 1, so detecting any
  // duplicate proves the partition.
  std::vector<char> seen(next_fresh_, 0);
  for (const std::uint32_t offset : free_offsets_) {
    if (seen[offset] != 0) {
      throw persist::StateError("snapshot: recycled offset " +
                                std::to_string(offset) + " listed twice");
    }
    seen[offset] = 1;
  }
  bool bad_member = false;
  bool bad_overlap = false;
  table_.for_each([&](const SessionRecord& rec) {
    if (!pool_.contains(net::Ipv4Addr(rec.dyn_value))) {
      bad_member = true;
      return;
    }
    const std::uint32_t offset = rec.dyn_value & ~pool_.mask();
    if (offset < 1 || offset >= next_fresh_ || seen[offset] != 0) {
      bad_overlap = true;
      return;
    }
    seen[offset] = 1;
    if (rec.expiry != SessionRecord::kNoExpiry) {
      arm_lease(rec.dyn_value, rec.expiry);
    }
  });
  if (bad_member) {
    throw persist::StateError(
        "snapshot: session record outside the dynamic pool");
  }
  if (bad_overlap) {
    throw persist::StateError(
        "snapshot: session record collides with the cursor or free list");
  }
}

void DynamicAddressAllocator::restore_state(persist::SnapshotReader& reader) {
  while (auto chunk = reader.next()) {
    if (!restore_chunk(chunk->tag, chunk->payload)) {
      throw persist::StateError("snapshot: unrecognized chunk '" +
                                tag_name(chunk->tag) + "'");
    }
  }
  finish_restore();
}

// --------------------------------------------------------------------
// Neutralizer
// --------------------------------------------------------------------

namespace {

/// Root-key fingerprint: the first 8 bytes of the epoch-0 master key.
/// Enough to refuse a snapshot from a differently-keyed domain without
/// ever writing key material a single CMAC inversion could expose more
/// of than one epoch key prefix.
std::uint64_t root_fingerprint(const MasterKeySchedule& keys) {
  const crypto::AesKey k0 = keys.current_key(0);
  std::uint64_t fp = 0;
  for (int i = 0; i < 8; ++i) {
    fp = (fp << 8) | k0[static_cast<std::size_t>(i)];
  }
  return fp;
}

}  // namespace

void Neutralizer::export_state(persist::SnapshotWriter& writer) const {
  {
    ByteWriter& w = writer.begin_chunk(persist::kTagConfig);
    w.u64(root_fingerprint(keys_))
        .u32(config_.anycast_addr.value())
        .u32(config_.customer_space.base().value())
        .u8(static_cast<std::uint8_t>(config_.customer_space.length()))
        .u64(static_cast<std::uint64_t>(config_.rotation_period))
        .u64(static_cast<std::uint64_t>(config_.dyn_lease))
        .u8(config_.dynamic_pool.has_value() ? 1 : 0)
        .u32(config_.dynamic_pool ? config_.dynamic_pool->base().value() : 0)
        .u8(config_.dynamic_pool
                ? static_cast<std::uint8_t>(config_.dynamic_pool->length())
                : 0);
    writer.end_chunk();
  }
  {
    ByteWriter& w = writer.begin_chunk(persist::kTagStats);
    w.u64(stats_.key_setups)
        .u64(stats_.key_leases)
        .u64(stats_.data_forwarded)
        .u64(stats_.data_returned)
        .u64(stats_.rekeys_stamped)
        .u64(stats_.offloaded)
        .u64(stats_.dyn_allocated)
        .u64(stats_.dyn_translated)
        .u64(stats_.dyn_released)
        .u64(stats_.dyn_renewed)
        .u64(stats_.dyn_expired)
        .u64(stats_.dyn_rejected)
        .u64(stats_.sessions_rekeyed)
        .u64(stats_.setup_rate_limited)
        .u64(stats_.rejected);
    writer.end_chunk();
  }
  if (allocator_.has_value()) allocator_->export_state(writer);
}

void Neutralizer::restore_state(persist::SnapshotReader& reader) {
  bool saw_config = false;
  bool saw_stats = false;
  while (auto chunk = reader.next()) {
    if (!saw_config) {
      if (chunk->tag != persist::kTagConfig) {
        throw persist::StateError(
            "snapshot: first chunk must be 'NCFG', found '" +
            tag_name(chunk->tag) + "'");
      }
      if (chunk->payload.size() != 39) malformed("NCFG");
      ByteReader r(chunk->payload);
      if (r.u64() != root_fingerprint(keys_)) {
        throw persist::StateError(
            "snapshot: root key fingerprint mismatch — snapshot taken by a "
            "differently-keyed box");
      }
      const char* mismatch = nullptr;
      if (net::Ipv4Addr(r.u32()) != config_.anycast_addr) {
        mismatch = "anycast address";
      }
      const net::Ipv4Addr cust_base{r.u32()};
      const int cust_len = r.u8();
      if (mismatch == nullptr &&
          (cust_len > 32 ||
           net::Ipv4Prefix(cust_base, cust_len) != config_.customer_space)) {
        mismatch = "customer space";
      }
      if (r.u64() != static_cast<std::uint64_t>(config_.rotation_period) &&
          mismatch == nullptr) {
        mismatch = "rotation period";
      }
      if (r.u64() != static_cast<std::uint64_t>(config_.dyn_lease) &&
          mismatch == nullptr) {
        mismatch = "lease duration";
      }
      const bool has_pool = r.u8() != 0;
      const net::Ipv4Addr pool_base{r.u32()};
      const int pool_len = r.u8();
      if (mismatch == nullptr) {
        if (has_pool != config_.dynamic_pool.has_value()) {
          mismatch = "dynamic pool";
        } else if (has_pool &&
                   (pool_len > 32 || net::Ipv4Prefix(pool_base, pool_len) !=
                                         *config_.dynamic_pool)) {
          mismatch = "dynamic pool";
        }
      }
      if (mismatch != nullptr) {
        throw persist::StateError(std::string("snapshot: config mismatch (") +
                                  mismatch + ")");
      }
      saw_config = true;
      continue;
    }
    if (chunk->tag == persist::kTagConfig) {
      throw persist::StateError("snapshot: duplicate 'NCFG' chunk");
    }
    if (chunk->tag == persist::kTagStats) {
      if (saw_stats) {
        throw persist::StateError("snapshot: duplicate 'NSTA' chunk");
      }
      if (chunk->payload.size() != 15 * 8) malformed("NSTA");
      ByteReader r(chunk->payload);
      stats_.key_setups = r.u64();
      stats_.key_leases = r.u64();
      stats_.data_forwarded = r.u64();
      stats_.data_returned = r.u64();
      stats_.rekeys_stamped = r.u64();
      stats_.offloaded = r.u64();
      stats_.dyn_allocated = r.u64();
      stats_.dyn_translated = r.u64();
      stats_.dyn_released = r.u64();
      stats_.dyn_renewed = r.u64();
      stats_.dyn_expired = r.u64();
      stats_.dyn_rejected = r.u64();
      stats_.sessions_rekeyed = r.u64();
      stats_.setup_rate_limited = r.u64();
      stats_.rejected = r.u64();
      saw_stats = true;
      continue;
    }
    if (allocator_.has_value() &&
        allocator_->restore_chunk(chunk->tag, chunk->payload)) {
      continue;
    }
    throw persist::StateError("snapshot: unrecognized chunk '" +
                              tag_name(chunk->tag) + "'");
  }
  if (!saw_config) {
    throw persist::StateError("snapshot: missing 'NCFG' chunk");
  }
  if (!saw_stats) {
    throw persist::StateError("snapshot: missing 'NSTA' chunk");
  }
  if (allocator_.has_value()) allocator_->finish_restore();
}

}  // namespace core

namespace persist {

void save_neutralizer(const core::Neutralizer& service, ByteSink& sink) {
  SnapshotWriter writer(sink);
  service.export_state(writer);
  writer.finish();
}

void load_neutralizer(core::Neutralizer& service, ByteSource& source) {
  SnapshotReader reader(source);
  service.restore_state(reader);
}

}  // namespace persist
}  // namespace nn
