// Crash recovery: latest valid snapshot + replay of the committed
// journal tail = the exact control-plane state of the box that crashed.
//
// Replay is re-execution, not patching. Every value the control plane
// mints is a deterministic function of (root key, epoch, request) —
// session keys are CMAC PRFs, dynamic addresses come off a deterministic
// cursor/LIFO stack — so feeding each journaled mutation back through
// the real handlers (process() for arrivals, renew/release/rekey for the
// rest, with the lease collector run at each record's timestamp exactly
// as the live box ran it) reproduces byte-for-byte the addresses, keys,
// and counters the crashed box held. The crash differential test
// (tests/persist/test_crash_recover.cpp) pins this end to end: a box
// crash-recovered at an arbitrary event boundary answers the rest of
// the workload byte-identically to one that never crashed.
//
// ControlJournal is the write half: a typed wrapper over JournalWriter
// that the scenario layer calls once per control-plane mutation, with
// commit() at the end-of-instant quiescence point (group commit).
#pragma once

#include "core/neutralizer.hpp"
#include "persist/journal.hpp"

namespace nn::persist {

/// Typed append API over the WAL — one call per control-plane mutation,
/// recorded *after* the handler succeeded (journal and state then agree
/// record-for-record; an arrival the box rejected is journaled too,
/// because replaying it recreates the same rejection and counters).
class ControlJournal {
 public:
  explicit ControlJournal(ByteSink& sink, JournalConfig config = {})
      : writer_(sink, config) {}

  void arrive(net::Ipv4Addr customer, std::uint64_t request_id,
              sim::SimTime at) {
    writer_.append({JournalOp::kArrive, at, customer.value(), request_id});
  }
  void renew(net::Ipv4Addr dynamic, sim::SimTime at) {
    writer_.append({JournalOp::kRenew, at, dynamic.value(), 0});
  }
  void depart(net::Ipv4Addr dynamic, sim::SimTime at) {
    writer_.append({JournalOp::kDepart, at, dynamic.value(), 0});
  }
  void rekey_storm(sim::SimTime at) {
    writer_.append({JournalOp::kRekeyStorm, at, 0, 0});
  }
  /// Group commit — call at end-of-instant / flush().
  void commit() { writer_.commit(); }

  [[nodiscard]] JournalWriter& writer() noexcept { return writer_; }

 private:
  JournalWriter writer_;
};

struct RecoverConfig {
  /// Crash semantics by default: a batch the crash cut short never
  /// committed, so it never happened. kReject turns any torn tail into
  /// a FormatError (integrity audit of a file that should be complete).
  TornTail torn_tail = TornTail::kTolerate;
};

struct RecoverStats {
  std::uint64_t sessions_restored = 0;  ///< resident after the snapshot
  std::uint64_t journal_batches = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t arrivals_replayed = 0;
  std::uint64_t renews_replayed = 0;
  std::uint64_t departs_replayed = 0;
  std::uint64_t storms_replayed = 0;
  bool torn_tail = false;       ///< tail was torn and tolerated
  sim::SimTime last_at = 0;     ///< timestamp of the last replayed record
};

/// Rebuilds `service` from `snapshot` and, when non-null, replays the
/// committed tail of `journal` through the real control-plane handlers.
/// Throws FormatError/StateError exactly as the loaders underneath do;
/// additionally throws StateError when a journaled renew/depart names a
/// session the replayed state does not hold (journal and snapshot are
/// from different histories).
RecoverStats recover(core::Neutralizer& service, ByteSource& snapshot,
                     ByteSource* journal, RecoverConfig config = {});

}  // namespace nn::persist
