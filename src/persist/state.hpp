// Chunk vocabulary + whole-box convenience entry points for the session
// control plane's snapshot format. The container (persist/snapshot.hpp)
// is tag-agnostic; this header is where the tags mean something:
//
//   'NCFG'  config fingerprint (39 bytes): root-key fingerprint u64,
//           anycast u32, customer space u32+u8, rotation u64, lease u64,
//           has_pool u8, pool u32+u8. Restore refuses a snapshot taken
//           by an incompatibly configured or differently-keyed box.
//   'NSTA'  NeutralizerStats, 15 × u64 in declaration order.
//   'DALC'  allocator cursor state (69 bytes): pool u32+u8, capacity
//           u32, next_fresh u32, 5 × u64 counters, resident u64,
//           free-stack depth u64. Always first of the allocator chunks —
//           it resets the allocator and pre-sizes what follows.
//   'DFRE'  recycled-offset stack, u32 offsets in stack order (LIFO
//           order is allocator state: the next allocation pops the
//           back). Split across chunks at kFreeOffsetsPerChunk.
//   'SREC'  resident session records, kSessionRecordBytes each:
//           dyn u32 | customer u32 | expiry u64 | epoch u16 | key 16B.
//           Split across chunks at kSessionRecordsPerChunk.
//
// The hooks themselves are member functions of the core classes
// (declared in their headers, defined in persist/state.cpp so the core
// headers never include persist ones). save_neutralizer() /
// load_neutralizer() wrap a whole writer/reader lifecycle around them.
#pragma once

#include "persist/io.hpp"
#include "persist/snapshot.hpp"

namespace nn::core {
class Neutralizer;
}  // namespace nn::core

namespace nn::persist {

inline constexpr std::uint32_t kTagConfig = chunk_tag("NCFG");
inline constexpr std::uint32_t kTagStats = chunk_tag("NSTA");
inline constexpr std::uint32_t kTagAllocator = chunk_tag("DALC");
inline constexpr std::uint32_t kTagFreeList = chunk_tag("DFRE");
inline constexpr std::uint32_t kTagSessionRecords = chunk_tag("SREC");

inline constexpr std::size_t kSessionRecordBytes = 34;
inline constexpr std::size_t kSessionRecordsPerChunk = 4096;
inline constexpr std::size_t kFreeOffsetsPerChunk = 1u << 16;

/// Snapshots the box's entire control-plane state into `sink` (header,
/// state chunks, end chunk, flush). Quiescence-point only.
void save_neutralizer(const core::Neutralizer& service, ByteSink& sink);

/// Restores a snapshot into `service`, overwriting its control-plane
/// state. Throws FormatError on damaged bytes and StateError on a
/// config/root-key mismatch; on throw the target's control-plane state
/// is unspecified — discard the box or restore again.
void load_neutralizer(core::Neutralizer& service, ByteSource& source);

}  // namespace nn::persist
