#include "persist/io.hpp"

#include <cerrno>
#include <cstring>

namespace nn::persist {

namespace {
[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw IoError(op + " '" + path + "': " + std::strerror(errno));
}
}  // namespace

FileSink::FileSink(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) throw_errno("persist: cannot create", path);
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(std::span<const std::uint8_t> bytes) {
  if (file_ == nullptr) {
    throw IoError("persist: write to closed sink '" + path_ + "'");
  }
  if (bytes.empty()) return;
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    throw_errno("persist: short write to", path_);
  }
}

void FileSink::flush() {
  if (file_ != nullptr && std::fflush(file_) != 0) {
    throw_errno("persist: flush of", path_);
  }
}

void FileSink::close() {
  if (file_ == nullptr) return;
  flush();
  std::fclose(file_);
  file_ = nullptr;
}

FileSource::FileSource(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) throw_errno("persist: cannot open", path);
}

FileSource::~FileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

std::size_t FileSource::read(std::span<std::uint8_t> out) {
  if (out.empty()) return 0;
  const std::size_t n = std::fread(out.data(), 1, out.size(), file_);
  if (n < out.size() && std::ferror(file_) != 0) {
    throw_errno("persist: read from", path_);
  }
  return n;
}

}  // namespace nn::persist
