#include "persist/snapshot.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "persist/crc32c.hpp"

namespace nn::persist {
namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::string tag_name(std::uint32_t tag) {
  std::string s;
  for (int shift = 24; shift >= 0; shift -= 8) {
    const char c = static_cast<char>((tag >> shift) & 0xFF);
    s.push_back((c >= 0x20 && c < 0x7F) ? c : '?');
  }
  return s;
}

}  // namespace

SnapshotWriter::SnapshotWriter(ByteSink& sink) : sink_(sink) {
  std::array<std::uint8_t, 12> header{};
  put_u32(header.data(), kSnapshotMagic);
  header[4] = static_cast<std::uint8_t>(kSnapshotVersion >> 8);
  header[5] = static_cast<std::uint8_t>(kSnapshotVersion);
  header[6] = 0;  // flags
  header[7] = 0;
  put_u32(header.data() + 8, crc32c({header.data(), 8}));
  sink_.write(header);
  bytes_written_ = header.size();
}

ByteWriter& SnapshotWriter::begin_chunk(std::uint32_t tag) {
  if (finished_) {
    throw StateError("snapshot: begin_chunk after finish()");
  }
  if (chunk_.has_value()) {
    throw StateError("snapshot: begin_chunk with a chunk already open");
  }
  chunk_tag_ = tag;
  chunk_.emplace(std::move(scratch_));
  return *chunk_;
}

void SnapshotWriter::end_chunk() {
  if (!chunk_.has_value()) {
    throw StateError("snapshot: end_chunk without an open chunk");
  }
  emit_chunk(chunk_tag_, chunk_->view());
  // Recover the payload buffer's capacity for the next chunk.
  scratch_ = chunk_->take();
  chunk_.reset();
  ++chunks_;
}

void SnapshotWriter::finish() {
  if (chunk_.has_value()) {
    throw StateError("snapshot: finish() with a chunk still open");
  }
  if (finished_) return;
  std::array<std::uint8_t, 4> count{};
  put_u32(count.data(), chunks_);
  emit_chunk(kEndTag, count);
  finished_ = true;
  sink_.flush();
}

void SnapshotWriter::emit_chunk(std::uint32_t tag,
                                std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxChunkLen) {
    throw StateError("snapshot: chunk payload exceeds kMaxChunkLen");
  }
  std::array<std::uint8_t, 8> head{};
  put_u32(head.data(), tag);
  put_u32(head.data() + 4, static_cast<std::uint32_t>(payload.size()));
  Crc32c crc;
  crc.update(head);
  crc.update(payload);
  std::array<std::uint8_t, 4> trailer{};
  put_u32(trailer.data(), crc.value());
  sink_.write(head);
  sink_.write(payload);
  sink_.write(trailer);
  bytes_written_ += head.size() + payload.size() + trailer.size();
}

SnapshotReader::SnapshotReader(ByteSource& source) : source_(source) {
  std::array<std::uint8_t, 12> header{};
  read_exact(header, "file header");
  const std::uint32_t magic = get_u32(header.data());
  if (magic != kSnapshotMagic) {
    throw FormatError("snapshot: bad magic 0x" + to_hex({header.data(), 4}) +
                      " (expected 'NNSN')");
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>((header[4] << 8) | header[5]);
  if (version != kSnapshotVersion) {
    throw FormatError("snapshot: unsupported version " +
                      std::to_string(version) + " (this build reads version " +
                      std::to_string(kSnapshotVersion) + ")");
  }
  if (get_u32(header.data() + 8) != crc32c({header.data(), 8})) {
    throw FormatError("snapshot: file header CRC mismatch");
  }
}

std::optional<SnapshotReader::Chunk> SnapshotReader::next() {
  if (finished_) return std::nullopt;
  std::array<std::uint8_t, 8> head{};
  read_exact(head, "chunk header");
  const std::uint32_t tag = get_u32(head.data());
  const std::uint32_t len = get_u32(head.data() + 4);
  if (len > kMaxChunkLen) {
    throw FormatError("snapshot: chunk '" + tag_name(tag) +
                      "' declares absurd length " + std::to_string(len));
  }
  // Fill scratch_ in bounded steps rather than pre-sizing to `len`: the
  // length word is untrusted until the CRC check, and a corrupt (but
  // sub-kMaxChunkLen) value must not be able to commandeer a gigabyte
  // of zero-filled heap before the truncation is even noticed.
  scratch_.clear();
  while (scratch_.size() < len) {
    const std::size_t step =
        std::min<std::size_t>(len - scratch_.size(), std::size_t{1} << 20);
    const std::size_t have = scratch_.size();
    scratch_.resize(have + step);
    if (source_.read({scratch_.data() + have, step}) != step) {
      throw FormatError("snapshot: truncated chunk payload");
    }
  }
  std::array<std::uint8_t, 4> trailer{};
  read_exact(trailer, "chunk CRC");
  Crc32c crc;
  crc.update(head);
  crc.update(scratch_);
  if (get_u32(trailer.data()) != crc.value()) {
    throw FormatError("snapshot: CRC mismatch in chunk '" + tag_name(tag) +
                      "' (#" + std::to_string(chunks_) + ")");
  }
  if (tag == kEndTag) {
    if (len != 4) {
      throw FormatError("snapshot: end chunk has length " +
                        std::to_string(len) + " (expected 4)");
    }
    if (get_u32(scratch_.data()) != chunks_) {
      throw FormatError("snapshot: end chunk counts " +
                        std::to_string(get_u32(scratch_.data())) +
                        " chunks, file has " + std::to_string(chunks_));
    }
    // Anything after the end chunk is not ours.
    std::uint8_t probe = 0;
    if (source_.read({&probe, 1}) != 0) {
      throw FormatError("snapshot: trailing bytes after end chunk");
    }
    finished_ = true;
    return std::nullopt;
  }
  ++chunks_;
  return Chunk{tag, scratch_};
}

void SnapshotReader::read_exact(std::span<std::uint8_t> out,
                                const char* what) {
  if (source_.read(out) != out.size()) {
    throw FormatError(std::string("snapshot: truncated ") + what);
  }
}

}  // namespace nn::persist
