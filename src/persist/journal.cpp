#include "persist/journal.hpp"

#include <array>
#include <string>

#include "persist/crc32c.hpp"
#include "util/bytes.hpp"

namespace nn::persist {
namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  put_u32(p, static_cast<std::uint32_t>(v >> 32));
  put_u32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(get_u32(p)) << 32) | get_u32(p + 4);
}

}  // namespace

JournalWriter::JournalWriter(ByteSink& sink, JournalConfig config)
    : sink_(sink), config_(config) {
  if (config_.group_commit_records == 0 ||
      config_.group_commit_records > kMaxBatchRecords) {
    throw StateError("journal: group_commit_records must be in [1, " +
                     std::to_string(kMaxBatchRecords) + "]");
  }
  std::array<std::uint8_t, 12> header{};
  put_u32(header.data(), kJournalMagic);
  header[4] = static_cast<std::uint8_t>(kJournalVersion >> 8);
  header[5] = static_cast<std::uint8_t>(kJournalVersion);
  header[6] = 0;  // flags
  header[7] = 0;
  put_u32(header.data() + 8, crc32c({header.data(), 8}));
  sink_.write(header);
  bytes_written_ = header.size();
  batch_.reserve(config_.group_commit_records * kJournalRecordBytes);
}

void JournalWriter::append(const JournalRecord& record) {
  std::array<std::uint8_t, kJournalRecordBytes> rec{};
  rec[0] = static_cast<std::uint8_t>(record.op);
  put_u64(rec.data() + 1, static_cast<std::uint64_t>(record.at));
  put_u32(rec.data() + 9, record.addr);
  put_u64(rec.data() + 13, record.nonce);
  batch_.insert(batch_.end(), rec.begin(), rec.end());
  ++pending_;
  ++appended_;
  if (pending_ >= config_.group_commit_records) commit();
}

void JournalWriter::commit() {
  if (pending_ == 0) return;
  std::array<std::uint8_t, 16> head{};
  put_u32(head.data(), kJournalBatchMarker);
  put_u32(head.data() + 4, static_cast<std::uint32_t>(batch_.size()));
  put_u64(head.data() + 8, appended_ - pending_);  // first_seq
  // count lives in its own word so the reader can sanity-check both.
  std::array<std::uint8_t, 4> count{};
  put_u32(count.data(), static_cast<std::uint32_t>(pending_));
  Crc32c crc;
  crc.update(head);
  crc.update(count);
  crc.update(batch_);
  std::array<std::uint8_t, 4> trailer{};
  put_u32(trailer.data(), crc.value());
  sink_.write(head);
  sink_.write(count);
  sink_.write(batch_);
  sink_.write(trailer);
  sink_.flush();
  bytes_written_ +=
      head.size() + count.size() + batch_.size() + trailer.size();
  batch_.clear();  // capacity kept — steady-state appends stay heap-free
  pending_ = 0;
  ++batches_;
}

JournalReader::JournalReader(ByteSource& source, TornTail policy)
    : source_(source), policy_(policy) {
  std::array<std::uint8_t, 12> header{};
  if (source_.read(header) != header.size()) {
    throw FormatError("journal: truncated file header");
  }
  if (get_u32(header.data()) != kJournalMagic) {
    throw FormatError("journal: bad magic 0x" + to_hex({header.data(), 4}) +
                      " (expected 'NNJL')");
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>((header[4] << 8) | header[5]);
  if (version != kJournalVersion) {
    throw FormatError("journal: unsupported version " +
                      std::to_string(version) + " (this build reads version " +
                      std::to_string(kJournalVersion) + ")");
  }
  if (get_u32(header.data() + 8) != crc32c({header.data(), 8})) {
    throw FormatError("journal: file header CRC mismatch");
  }
}

bool JournalReader::load_batch() {
  std::array<std::uint8_t, 16> head{};
  const std::size_t got = source_.read(head);
  if (got == 0) return false;  // clean end-of-log
  const auto torn = [&](const char* what) -> bool {
    if (policy_ == TornTail::kTolerate) {
      torn_ = true;
      return false;
    }
    throw FormatError(std::string("journal: torn batch (truncated ") + what +
                      ") after " + std::to_string(records_) + " record(s)");
  };
  if (got < head.size()) return torn("batch header");
  if (get_u32(head.data()) != kJournalBatchMarker) {
    throw FormatError("journal: bad batch marker at batch " +
                      std::to_string(batches_));
  }
  const std::uint32_t payload_len = get_u32(head.data() + 4);
  const std::uint64_t first_seq = get_u64(head.data() + 8);
  std::array<std::uint8_t, 4> count_word{};
  if (source_.read(count_word) < count_word.size()) {
    return torn("record count");
  }
  const std::uint32_t count = get_u32(count_word.data());
  if (count == 0 || count > kMaxBatchRecords ||
      payload_len != static_cast<std::uint64_t>(count) * kJournalRecordBytes) {
    throw FormatError("journal: batch " + std::to_string(batches_) +
                      " declares " + std::to_string(count) + " record(s) in " +
                      std::to_string(payload_len) + " payload bytes");
  }
  if (first_seq != records_) {
    throw FormatError("journal: batch " + std::to_string(batches_) +
                      " starts at sequence " + std::to_string(first_seq) +
                      ", expected " + std::to_string(records_) +
                      " (spliced or reordered log)");
  }
  batch_.resize(payload_len);
  if (source_.read(batch_) < batch_.size()) return torn("batch payload");
  std::array<std::uint8_t, 4> trailer{};
  if (source_.read(trailer) < trailer.size()) return torn("batch CRC");
  Crc32c crc;
  crc.update(head);
  crc.update(count_word);
  crc.update(batch_);
  if (get_u32(trailer.data()) != crc.value()) {
    // A fully-present batch with a wrong CRC is bit rot, not a torn
    // write — never tolerated.
    throw FormatError("journal: CRC mismatch in batch " +
                      std::to_string(batches_));
  }
  batch_pos_ = 0;
  ++batches_;
  return true;
}

std::optional<JournalRecord> JournalReader::next() {
  if (done_) return std::nullopt;
  if (batch_pos_ >= batch_.size()) {
    if (!load_batch()) {
      done_ = true;
      return std::nullopt;
    }
  }
  const std::uint8_t* p = batch_.data() + batch_pos_;
  batch_pos_ += kJournalRecordBytes;
  JournalRecord rec;
  const std::uint8_t op = p[0];
  if (op < static_cast<std::uint8_t>(JournalOp::kArrive) ||
      op > static_cast<std::uint8_t>(JournalOp::kRekeyStorm)) {
    throw FormatError("journal: unknown op " + std::to_string(op) +
                      " in record " + std::to_string(records_));
  }
  rec.op = static_cast<JournalOp>(op);
  rec.at = static_cast<sim::SimTime>(get_u64(p + 1));
  rec.addr = get_u32(p + 9);
  rec.nonce = get_u64(p + 13);
  ++records_;
  return rec;
}

}  // namespace nn::persist
