// Byte-stream abstraction for the persistence layer (snapshot +
// journal): a ByteSink absorbs sequential writes, a ByteSource yields
// sequential reads. Two backends each — in-memory (tests, benches, the
// crash injector) and stdio files (the real appliance) — so every
// format above this seam is exercised without touching a filesystem.
//
// Error taxonomy (all under persist::Error):
//   IoError      the medium failed (open/read/write/flush)
//   FormatError  the bytes are not a valid snapshot/journal (bad magic,
//                version skew, CRC mismatch, truncation, absurd length)
//   StateError   the bytes are valid but do not fit the live object
//                (config fingerprint mismatch, missing chunk, duplicate
//                restore)
// Loaders throw with exact, actionable messages; they never exhibit UB
// on hostile input (pinned by tests/persist/test_loader_fuzz.cpp under
// the ASan/UBSan CI job).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace nn::persist {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// Sequential write target. Implementations may buffer; flush() must
/// make every byte written so far durable-as-the-medium-allows (for
/// FileSink that is fflush; fsync-grade durability is the deployment's
/// mount options, not this layer's contract).
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void write(std::span<const std::uint8_t> bytes) = 0;
  virtual void flush() {}
};

/// Sequential read source. read() fills as much of `out` as it can and
/// returns the byte count — short only at end of stream.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  [[nodiscard]] virtual std::size_t read(std::span<std::uint8_t> out) = 0;
};

/// Growable in-memory sink. `bytes()` is the stream so far; move the
/// vector out (or wrap it in a MemorySource) to feed a loader.
class MemorySink final : public ByteSink {
 public:
  void write(std::span<const std::uint8_t> b) override {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }
  void clear() noexcept { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Byte-counting sink that discards its input — the serialization-rate
/// benchmarks use it so the medium never shadows the encoder.
class NullSink final : public ByteSink {
 public:
  void write(std::span<const std::uint8_t> b) override {
    written_ += b.size();
  }
  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

 private:
  std::uint64_t written_ = 0;
};

/// Reads from a caller-owned byte buffer (non-owning view).
class MemorySource final : public ByteSource {
 public:
  explicit MemorySource(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::size_t read(std::span<std::uint8_t> out) override {
    const std::size_t n = std::min(out.size(), data_.size() - pos_);
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), n,
                out.begin());
    pos_ += n;
    return n;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// stdio-backed sink; creates/truncates `path`. Move-only.
class FileSink final : public ByteSink {
 public:
  explicit FileSink(const std::string& path);
  FileSink(FileSink&& o) noexcept : file_(o.file_), path_(std::move(o.path_)) {
    o.file_ = nullptr;
  }
  FileSink& operator=(FileSink&&) = delete;
  ~FileSink() override;

  void write(std::span<const std::uint8_t> bytes) override;
  void flush() override;
  /// Flushes and closes; further writes throw. Idempotent.
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// stdio-backed source over an existing file. Move-only.
class FileSource final : public ByteSource {
 public:
  explicit FileSource(const std::string& path);
  FileSource(FileSource&& o) noexcept
      : file_(o.file_), path_(std::move(o.path_)) {
    o.file_ = nullptr;
  }
  FileSource& operator=(FileSource&&) = delete;
  ~FileSource() override;

  [[nodiscard]] std::size_t read(std::span<std::uint8_t> out) override;

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace nn::persist
