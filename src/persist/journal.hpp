// Append-only journal (WAL) of control-plane mutations. Between
// snapshots, every session-lifecycle operation the box performs —
// arrive / renew / depart / epoch-rekey marker — is appended here, so
// persist::recover() can rebuild the exact post-crash state as
//
//     latest valid snapshot  +  replay of the committed journal tail.
//
// Group commit keeps the appends off the packet path: append() only
// serializes into an in-memory batch buffer (zero steady-state
// allocation once warm), and the batch reaches the ByteSink as one
// CRC-sealed unit on commit() — called at the box's quiescence points
// (end-of-instant / flush()) or automatically when the batch fills.
// Crash consistency is commit-granular: a record is durable iff its
// batch was committed; an in-flight batch lost to a crash simply never
// happened (the client never saw a response the journal does not
// cover, because commit precedes response release at the quiescence
// point).
//
// Layout (big-endian):
//
//   file header   magic 'NNJL' u32 | version u16 | flags u16 |
//                 crc32c(first 8 bytes) u32
//   batch         marker 'NNJB' u32 | payload_len u32 | first_seq u64 |
//                 count u32 | count × record |
//                 crc32c(marker ‖ … ‖ records) u32
//   record        op u8 | at u64 | addr u32 | nonce u64   (21 bytes)
//
// The reader distinguishes two failure shapes deliberately: a batch cut
// short by end-of-file is a *torn tail* — the classic crash-mid-write
// artifact, tolerated under TornTail::kTolerate as "end of log" — while
// a CRC mismatch on a fully-present batch, a bad marker, a sequence
// discontinuity, or version skew is corruption and always throws
// FormatError.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "persist/io.hpp"
#include "sim/engine.hpp"

namespace nn::persist {

inline constexpr std::uint32_t kJournalMagic = 0x4E4E4A4Cu;   // 'NNJL'
inline constexpr std::uint32_t kJournalBatchMarker = 0x4E4E4A42u;  // 'NNJB'
inline constexpr std::uint16_t kJournalVersion = 1;
inline constexpr std::size_t kJournalRecordBytes = 21;
/// Absurd-batch guard, same spirit as kMaxChunkLen.
inline constexpr std::uint32_t kMaxBatchRecords = 1u << 20;

/// Control-plane mutations the journal captures. Field meaning per op:
///   kArrive      addr = requesting customer, nonce = request id
///   kRenew       addr = resident dynamic address
///   kDepart      addr = resident dynamic address
///   kRekeyStorm  epoch marker; only `at` is meaningful
enum class JournalOp : std::uint8_t {
  kArrive = 1,
  kRenew = 2,
  kDepart = 3,
  kRekeyStorm = 4,
};

struct JournalRecord {
  JournalOp op = JournalOp::kArrive;
  sim::SimTime at = 0;
  std::uint32_t addr = 0;
  std::uint64_t nonce = 0;

  friend bool operator==(const JournalRecord&,
                         const JournalRecord&) = default;
};

struct JournalConfig {
  /// append() seals and writes the pending batch when it reaches this
  /// many records (explicit commit() flushes earlier). Group size
  /// trades commit frequency against replay granularity, never
  /// correctness.
  std::size_t group_commit_records = 256;
};

class JournalWriter {
 public:
  /// Writes the file header immediately.
  explicit JournalWriter(ByteSink& sink, JournalConfig config = {});

  /// Buffers one record; auto-commits a full group.
  void append(const JournalRecord& record);
  /// Seals the pending batch (if any) and flushes the sink. Call at
  /// quiescence points — a record is recoverable only once committed.
  void commit();

  [[nodiscard]] std::uint64_t records_appended() const noexcept {
    return appended_;
  }
  [[nodiscard]] std::uint64_t batches_committed() const noexcept {
    return batches_;
  }
  [[nodiscard]] std::size_t pending_records() const noexcept {
    return pending_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  ByteSink& sink_;
  JournalConfig config_;
  std::vector<std::uint8_t> batch_;  // serialized records, reused
  std::size_t pending_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// What to do with a batch cut short by end-of-file.
enum class TornTail : std::uint8_t {
  kReject,    ///< throw FormatError (strict integrity audit)
  kTolerate,  ///< treat as end-of-log (crash recovery semantics)
};

class JournalReader {
 public:
  /// Reads and validates the file header.
  explicit JournalReader(ByteSource& source,
                         TornTail policy = TornTail::kReject);

  /// Next committed record, or nullopt at end-of-log (clean EOF, or a
  /// tolerated torn tail — check torn()). Throws FormatError on any
  /// corruption that is not a pure tail truncation.
  std::optional<JournalRecord> next();

  /// True once a torn tail was encountered and tolerated.
  [[nodiscard]] bool torn() const noexcept { return torn_; }
  [[nodiscard]] std::uint64_t records_read() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t batches_read() const noexcept {
    return batches_;
  }

 private:
  ByteSource& source_;
  TornTail policy_;
  std::vector<std::uint8_t> batch_;  // current batch's records
  std::size_t batch_pos_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t batches_ = 0;
  bool done_ = false;
  bool torn_ = false;

  /// Loads the next batch into batch_; false at end-of-log.
  bool load_batch();
};

}  // namespace nn::persist
