// Differential neutrality probe, in the spirit of Glasnost/Wehe: before
// anyone deploys a neutralizer, users need evidence that their access
// ISP discriminates (paper §1: the Whitacre statement and the Vonage
// scenario are exactly what this detects).
//
// Method: run paired probe flows that differ in exactly one classifiable
// feature (application signature, destination, or entropy) and compare
// delivered quality. A significant gap on the controlled feature is
// evidence of discrimination on that feature.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/workload.hpp"

namespace nn::probe {

/// One flow's measured outcome.
struct FlowMeasurement {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  double mean_latency_ms = 0;

  [[nodiscard]] double loss() const noexcept {
    return sent == 0
               ? 0.0
               : 1.0 - static_cast<double>(received) / static_cast<double>(sent);
  }
};

/// Verdict for one paired comparison.
struct Verdict {
  std::string feature;    // what differed between the pair
  bool discriminated = false;
  double loss_gap = 0;    // target loss - control loss
  double latency_gap_ms = 0;

  [[nodiscard]] std::string summary() const;
};

/// Decision thresholds. Defaults: flag if the targeted flow loses 5+
/// percentage points more, or runs 20+ ms slower, than its control.
struct ProbeThresholds {
  double min_loss_gap = 0.05;
  double min_latency_gap_ms = 20.0;
  /// Minimum packets per flow for a meaningful comparison.
  std::uint64_t min_samples = 50;
};

/// Compares a (target, control) measurement pair.
[[nodiscard]] Verdict compare(const std::string& feature,
                              const FlowMeasurement& target,
                              const FlowMeasurement& control,
                              const ProbeThresholds& thresholds = {});

/// Aggregates verdicts over repeated trials: discrimination is reported
/// only if a majority of trials agree (robust to one noisy run).
[[nodiscard]] Verdict majority(const std::vector<Verdict>& trials);

/// Helper: turns a FlowSink flow into a measurement.
[[nodiscard]] FlowMeasurement measure(const sim::FlowSink& sink,
                                      std::uint16_t flow_id,
                                      std::uint64_t sent);

}  // namespace nn::probe
