#include "probe/probe.hpp"

#include <sstream>

namespace nn::probe {

std::string Verdict::summary() const {
  std::ostringstream os;
  os << feature << ": "
     << (discriminated ? "DISCRIMINATION DETECTED" : "no evidence")
     << " (loss gap " << loss_gap * 100 << " pp, latency gap "
     << latency_gap_ms << " ms)";
  return os.str();
}

Verdict compare(const std::string& feature, const FlowMeasurement& target,
                const FlowMeasurement& control,
                const ProbeThresholds& thresholds) {
  Verdict v;
  v.feature = feature;
  v.loss_gap = target.loss() - control.loss();
  v.latency_gap_ms = target.mean_latency_ms - control.mean_latency_ms;
  if (target.sent < thresholds.min_samples ||
      control.sent < thresholds.min_samples) {
    return v;  // not enough data: never flag
  }
  v.discriminated = v.loss_gap >= thresholds.min_loss_gap ||
                    v.latency_gap_ms >= thresholds.min_latency_gap_ms;
  return v;
}

Verdict majority(const std::vector<Verdict>& trials) {
  Verdict out;
  if (trials.empty()) return out;
  out.feature = trials.front().feature;
  std::size_t flagged = 0;
  for (const auto& t : trials) {
    if (t.discriminated) ++flagged;
    out.loss_gap += t.loss_gap;
    out.latency_gap_ms += t.latency_gap_ms;
  }
  out.loss_gap /= static_cast<double>(trials.size());
  out.latency_gap_ms /= static_cast<double>(trials.size());
  out.discriminated = 2 * flagged > trials.size();
  return out;
}

FlowMeasurement measure(const sim::FlowSink& sink, std::uint16_t flow_id,
                        std::uint64_t sent) {
  FlowMeasurement m;
  m.sent = sent;
  const auto& stats = sink.flow(flow_id);
  m.received = stats.received;
  m.mean_latency_ms = stats.latency_ms.mean();
  return m;
}

}  // namespace nn::probe
