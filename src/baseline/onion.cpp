#include "baseline/onion.hpp"

#include <stdexcept>

namespace nn::baseline {

namespace {
std::array<std::uint8_t, 12> cell_iv(std::uint64_t counter) noexcept {
  std::array<std::uint8_t, 12> iv{};
  for (int i = 0; i < 8; ++i) {
    iv[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(counter >> (56 - 8 * i));
  }
  iv[8] = 'O';
  iv[9] = 'N';
  return iv;
}
}  // namespace

OnionRelay::OnionRelay(crypto::RsaPrivateKey identity)
    : identity_(std::move(identity)) {}

std::optional<std::uint32_t> OnionRelay::create_circuit(
    std::span<const std::uint8_t> wrapped_key) {
  ++stats_.rsa_decryptions;
  const auto key_bytes = identity_.decrypt(wrapped_key);
  if (!key_bytes.has_value() || key_bytes->size() != crypto::kAesKeySize) {
    return std::nullopt;
  }
  Circuit c;
  std::copy(key_bytes->begin(), key_bytes->end(), c.key.begin());
  const std::uint32_t id = next_circuit_id_++;
  circuits_[id] = c;
  return id;
}

bool OnionRelay::process_cell(std::uint32_t circuit_id,
                              std::vector<std::uint8_t>& cell) {
  const auto it = circuits_.find(circuit_id);
  if (it == circuits_.end()) return false;
  Circuit& c = it->second;
  crypto::Ctr(c.key).crypt(cell_iv(c.cells), cell);
  ++c.cells;
  ++stats_.cells_processed;
  return true;
}

void OnionRelay::destroy_circuit(std::uint32_t circuit_id) {
  circuits_.erase(circuit_id);
}

std::size_t OnionRelay::state_bytes() const noexcept {
  // Key + counter + table-entry bookkeeping per circuit: the number a
  // router architect would budget, not the allocator's exact figure.
  constexpr std::size_t kPerCircuit =
      sizeof(std::uint32_t) + sizeof(Circuit) + 16 /* hash-table slot */;
  return circuits_.size() * kPerCircuit;
}

OnionClient::Circuit OnionClient::build_circuit(
    const std::vector<OnionRelay*>& path) {
  Circuit circuit;
  circuit.path = path;
  for (OnionRelay* relay : path) {
    crypto::AesKey key;
    rng_.fill(key);
    const auto wrapped = crypto::rsa_encrypt(rng_, relay->public_key(), key);
    ++rsa_encryptions_;
    const auto id = relay->create_circuit(wrapped);
    if (!id.has_value()) {
      throw std::runtime_error("OnionClient: relay rejected CREATE");
    }
    circuit.circuit_ids.push_back(*id);
    circuit.keys.push_back(key);
  }
  return circuit;
}

std::vector<std::uint8_t> OnionClient::wrap(
    Circuit& circuit, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> cell(payload.begin(), payload.end());
  // Innermost layer first (exit), outermost last: relays peel in path
  // order with their per-direction counters.
  for (std::size_t i = circuit.path.size(); i-- > 0;) {
    crypto::Ctr(circuit.keys[i]).crypt(cell_iv(circuit.cells_sent), cell);
  }
  ++circuit.cells_sent;
  return cell;
}

std::optional<std::vector<std::uint8_t>> OnionClient::transit(
    Circuit& circuit, std::vector<std::uint8_t> cell) {
  for (std::size_t i = 0; i < circuit.path.size(); ++i) {
    if (!circuit.path[i]->process_cell(circuit.circuit_ids[i], cell)) {
      return std::nullopt;
    }
  }
  return cell;
}

}  // namespace nn::baseline
