// Simplified onion-routing baseline for the paper's §5 comparison:
// "Anonymous routing aims to anonymize both the source and destination
// addresses … our design is considerably more efficient and scalable in
// terms of resource consumption. In our design, routers don't keep
// per-flow state, and perform much fewer public key operations."
//
// This is a faithful *resource* model of a Tor-style design (telescoped
// circuits, per-hop RSA key establishment, layered AES, per-circuit
// relay state); cell padding, directory services and flow control are
// out of scope because E4 measures state bytes and crypto operations.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/aes_modes.hpp"
#include "crypto/chacha.hpp"
#include "crypto/rsa.hpp"
#include "util/rng.hpp"

namespace nn::baseline {

struct RelayStats {
  std::uint64_t rsa_decryptions = 0;
  std::uint64_t cells_processed = 0;
};

class OnionRelay {
 public:
  /// Relays hold long-term RSA identities (1024-bit in the benches).
  explicit OnionRelay(crypto::RsaPrivateKey identity);

  /// CREATE cell: RSA-unwrap the circuit key, allocate a circuit id.
  /// Returns nullopt on malformed cells.
  [[nodiscard]] std::optional<std::uint32_t> create_circuit(
      std::span<const std::uint8_t> wrapped_key);

  /// RELAY cell: strips this relay's onion layer in place.
  /// Returns false for unknown circuits.
  bool process_cell(std::uint32_t circuit_id,
                    std::vector<std::uint8_t>& cell);

  void destroy_circuit(std::uint32_t circuit_id);

  [[nodiscard]] const crypto::RsaPublicKey& public_key() const noexcept {
    return identity_.key().pub;
  }
  [[nodiscard]] std::size_t circuit_count() const noexcept {
    return circuits_.size();
  }
  /// Approximate resident state: per-circuit table entries.
  [[nodiscard]] std::size_t state_bytes() const noexcept;
  [[nodiscard]] const RelayStats& stats() const noexcept { return stats_; }

 private:
  struct Circuit {
    crypto::AesKey key;
    std::uint64_t cells = 0;  // per-direction counter = CTR IV source
  };

  crypto::RsaDecryptor identity_;
  std::unordered_map<std::uint32_t, Circuit> circuits_;
  std::uint32_t next_circuit_id_ = 1;
  RelayStats stats_;
};

/// Client side: builds a circuit over an ordered relay path and wraps
/// payloads in onion layers.
class OnionClient {
 public:
  explicit OnionClient(std::uint64_t seed) : rng_(seed) {}

  struct Circuit {
    std::vector<OnionRelay*> path;
    std::vector<std::uint32_t> circuit_ids;  // per relay
    std::vector<crypto::AesKey> keys;        // outermost first
    std::uint64_t cells_sent = 0;
  };

  /// Establishes per-hop keys (one RSA encryption per hop here, one RSA
  /// decryption per hop at the relays). Throws std::runtime_error if a
  /// relay rejects.
  [[nodiscard]] Circuit build_circuit(const std::vector<OnionRelay*>& path);

  /// Wraps `payload` in onion layers (innermost = exit).
  [[nodiscard]] std::vector<std::uint8_t> wrap(Circuit& circuit,
                                               std::span<const std::uint8_t>
                                                   payload);

  /// Pushes a wrapped cell through every relay of the circuit; returns
  /// the fully peeled payload (what the exit sees), or nullopt if any
  /// relay fails.
  [[nodiscard]] static std::optional<std::vector<std::uint8_t>> transit(
      Circuit& circuit, std::vector<std::uint8_t> cell);

  [[nodiscard]] std::uint64_t rsa_encryptions() const noexcept {
    return rsa_encryptions_;
  }

 private:
  crypto::ChaChaRng rng_;
  std::uint64_t rsa_encryptions_ = 0;
};

}  // namespace nn::baseline
