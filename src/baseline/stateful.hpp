// Ablation baseline: a *stateful* neutralizer that stores (nonce → Ks,
// source) in a table at key-setup time instead of recomputing
// Ks = CMAC(KM, nonce, srcIP) per packet.
//
// The paper's design argument (§3.2) is that statelessness buys
// (a) O(1) memory independent of source count, and (b) replica
// interchangeability under a shared master key. This variant exists so
// E8 can put numbers on (a) and tests can demonstrate (b) breaking.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/neutralizer.hpp"
#include "crypto/chacha.hpp"

namespace nn::baseline {

class StatefulNeutralizer {
 public:
  StatefulNeutralizer(const core::NeutralizerConfig& config,
                      std::uint64_t nonce_seed = 1);

  /// Same packet-in/packet-out contract as core::Neutralizer::process.
  [[nodiscard]] std::optional<net::Packet> process(net::Packet&& pkt,
                                                   sim::SimTime now);

  [[nodiscard]] std::size_t table_entries() const noexcept {
    return table_.size();
  }
  /// Budget-style state estimate (key + source + table slot per entry).
  [[nodiscard]] std::size_t state_bytes() const noexcept {
    constexpr std::size_t kPerEntry =
        sizeof(std::uint64_t) + sizeof(Entry) + 16;
    return table_.size() * kPerEntry;
  }
  [[nodiscard]] const core::NeutralizerStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const core::NeutralizerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Entry {
    crypto::AesKey ks;
    net::Ipv4Addr source;
  };

  core::NeutralizerConfig config_;
  crypto::ChaChaRng rng_;
  std::unordered_map<std::uint64_t, Entry> table_;
  core::NeutralizerStats stats_;
};

}  // namespace nn::baseline
