#include "baseline/stateful.hpp"

#include "crypto/aes_modes.hpp"
#include "net/shim.hpp"
#include "util/bytes.hpp"

namespace nn::baseline {

using net::ShimHeader;
using net::ShimPacketView;
using net::ShimType;

StatefulNeutralizer::StatefulNeutralizer(const core::NeutralizerConfig& config,
                                         std::uint64_t nonce_seed)
    : config_(config), rng_(nonce_seed) {}

std::optional<net::Packet> StatefulNeutralizer::process(net::Packet&& pkt,
                                                        sim::SimTime now) {
  (void)now;  // no epochs: state lives until purged
  try {
    ShimPacketView view(pkt.mutable_view());
    switch (view.type()) {
      case ShimType::kKeySetup: {
        const auto parsed = net::parse_packet(pkt.view());
        const auto source_key = crypto::RsaPublicKey::parse(parsed.payload);
        const std::uint64_t nonce = rng_.next_u64();
        Entry entry;
        rng_.fill(entry.ks);  // random key: nothing to recompute from
        entry.source = parsed.ip.src;
        table_[nonce] = entry;

        ByteWriter msg(24);
        msg.u64(nonce);
        msg.raw(entry.ks);
        const auto ct = crypto::rsa_encrypt(rng_, source_key, msg.view());
        ShimHeader shim;
        shim.type = ShimType::kKeySetupResponse;
        shim.nonce = parsed.shim->nonce;
        ++stats_.key_setups;
        return net::make_shim_packet(config_.anycast_addr, parsed.ip.src,
                                     shim, ct, parsed.ip.dscp);
      }
      case ShimType::kDataForward: {
        const auto it = table_.find(view.nonce());
        if (it == table_.end() || it->second.source != view.src()) {
          ++stats_.rejected;
          return std::nullopt;
        }
        const net::Ipv4Addr true_dst(crypto::crypt_address(
            it->second.ks, view.nonce(), false, view.inner_addr()));
        if (!config_.customer_space.contains(true_dst)) {
          ++stats_.rejected;
          return std::nullopt;
        }
        view.set_dst(true_dst);
        view.set_inner_addr(config_.anycast_addr.value());
        view.refresh_ip_checksum();
        ++stats_.data_forwarded;
        return std::move(pkt);
      }
      case ShimType::kDataReturn: {
        if (!config_.customer_space.contains(view.src())) {
          ++stats_.rejected;
          return std::nullopt;
        }
        const auto it = table_.find(view.nonce());
        if (it == table_.end()) {
          ++stats_.rejected;
          return std::nullopt;
        }
        const net::Ipv4Addr initiator(view.inner_addr());
        view.set_inner_addr(crypto::crypt_address(
            it->second.ks, view.nonce(), true, view.src().value()));
        view.set_src(config_.anycast_addr);
        view.set_dst(initiator);
        view.refresh_ip_checksum();
        ++stats_.data_returned;
        return std::move(pkt);
      }
      default:
        ++stats_.rejected;
        return std::nullopt;
    }
  } catch (const ParseError&) {
    ++stats_.rejected;
    return std::nullopt;
  }
}

}  // namespace nn::baseline
