// Reusable experiment scenario: the paper's Fig. 1 topology with a
// discriminatory access ISP (AT&T), a neutral transit ISP (Cogent)
// running the neutralizer, content providers behind it, and the access
// ISP's own competing service.
//
//   ann ┐                                        ┌ vonage (20.0.0.20)
//   bob ┴ att-access ── att-peering ══ [box] ── cogent ┼ google (20.0.0.10)
//   att-voip ┘ (10.1.0.9)                               └ youtube (20.0.0.11)
//
// Used by the E5/E6 benches and the examples; policies are attached by
// the caller (AT&T's routers are exposed).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/box.hpp"
#include "core/sharded_box.hpp"
#include "host/e2e.hpp"
#include "host/host.hpp"
#include "persist/io.hpp"
#include "sim/isp.hpp"
#include "sim/network.hpp"
#include "sim/session_churn.hpp"
#include "sim/trace_workload.hpp"
#include "sim/workload.hpp"

namespace nn::scenario {

inline const net::Ipv4Addr kAnycast(200, 0, 0, 1);
inline const net::Ipv4Addr kAnnAddr(10, 1, 0, 2);
inline const net::Ipv4Addr kBobAddr(10, 1, 0, 3);
inline const net::Ipv4Addr kAttVoipAddr(10, 1, 0, 9);
inline const net::Ipv4Addr kVonageAddr(20, 0, 0, 20);
inline const net::Ipv4Addr kGoogleAddr(20, 0, 0, 10);
inline const net::Ipv4Addr kYouTubeAddr(20, 0, 0, 11);

/// How scheduled flows shape their packets (Fig1Config::workload).
enum class WorkloadKind {
  /// Fixed-size CBR/Poisson at the call's payload_size — the classic
  /// synthetic stream the early experiments used.
  kFixedSize,
  /// Per-packet sizes drawn from Fig1Config::imix's size classes
  /// (default: the classic 7:4:1 40/576/1500 mix). The call's pps and
  /// duration still set the rate and span.
  kImix,
  /// Timing and sizes replayed from the capture at
  /// Fig1Config::pcap_path, rescaled to the call's duration; the
  /// call's pps is ignored.
  kPcap,
};

/// How application traffic is protected in a flow run.
enum class VoipMode {
  kPlain,        // cleartext UDP with a SIP signature: fully classifiable
  kE2eOnly,      // end-to-end encrypted, addresses exposed
  kNeutralized,  // encrypted + neutralizer (the paper's design)
};

/// A simulation host plus (optionally) its protocol stack and a flow
/// sink that aggregates whatever the host receives.
struct ScenarioHost {
  sim::Host* node = nullptr;
  std::unique_ptr<host::NeutralizedHost> stack;
  sim::FlowSink sink;
  // Receiver side of a kE2eOnly flow (shared-key session).
  std::optional<host::E2eSession> plain_rx;
  /// Pre-hook run before the normal stamped handler; return true to
  /// consume the packet (how schedule_session_churn captures
  /// kDynAddrResponse messages without disturbing the host stack).
  std::function<bool(const net::Packet& pkt, sim::SimTime at)> shim_tap;

  [[nodiscard]] net::Ipv4Addr addr() const { return node->address(); }
};

struct Fig1Config {
  core::BoxCosts box_costs{};
  /// Shard count of the Cogent neutralizer box. 0 (default) builds the
  /// classic NeutralizerBox (`box`, fixed per-packet latency); >= 1
  /// builds a ShardedNeutralizerBox (`sharded_box`, one serial server
  /// per shard) on the same topology slot.
  std::size_t box_shards = 0;
  double access_bps = 100e6;
  double core_bps = 1e9;
  /// Bandwidth of the shared AT&T uplink (att-access <-> att-peering);
  /// 0 means core_bps. Lowering it creates the congestion point for the
  /// tiered-service experiments.
  double att_uplink_bps = 0;
  /// Optional queue discipline for the AT&T uplink (e.g. a DSCP-aware
  /// qos::StrictPriorityQueue factory); default drop-tail FIFO.
  sim::QueueFactory att_uplink_queue;
  sim::SimTime propagation = 2 * sim::kMillisecond;
  /// Packet-size/timing shape of every flow schedule_voip creates.
  WorkloadKind workload = WorkloadKind::kFixedSize;
  /// Size classes / arrival process / seed for kImix (flows, pps and
  /// duration come from the schedule_voip call, not from here).
  sim::ImixConfig imix;
  /// Capture replayed under kPcap (parsed once, on first use).
  std::string pcap_path;
  /// Burst coalescing window applied to every link in the topology
  /// (LinkConfig::burst_packets / burst_bytes). 1 keeps the classic
  /// per-packet delivery — the differential-testing baseline.
  std::size_t link_burst_packets = 1;
  std::size_t link_burst_bytes = SIZE_MAX;
  /// Batch window for trace-driven sources (TraceWorkload::Config::
  /// batch_window): 0 emits one engine event per record; a positive
  /// window emits each window's records in one event, past-stamped.
  /// Exact for kPlain/kE2eOnly transports (they thread the stamp);
  /// kNeutralized departures shift to the window boundary.
  sim::SimTime source_batch_window = 0;
  /// §3.4 dynamic-address pool handed to the box. Setting it enables
  /// the session control plane (and schedule_session_churn).
  std::optional<net::Ipv4Prefix> dynamic_pool;
  /// Lease stamped on dynamic allocations (0 = leases never expire).
  sim::SimTime dyn_lease = 0;
  /// Session-scale churn schedule replayed by schedule_session_churn.
  std::optional<sim::SessionChurnConfig> session_churn;
  /// Batch window for the churn replay (SessionChurnWorkload::Config).
  sim::SimTime churn_batch_window = 0;
  /// Crash-drill fault injection, passed through to the churn replay
  /// (SessionChurnWorkload::Config::crash_after / on_crash): after
  /// exactly `churn_crash_after` delivered events, `churn_on_crash`
  /// fires once, between events — the natural place to checkpoint via
  /// Fig1::export_control_state and resurrect via restore_control_state.
  /// 0 = never.
  std::uint64_t churn_crash_after = 0;
  std::function<void(sim::SimTime now)> churn_on_crash;
};

class Fig1 {
 public:
  explicit Fig1(Fig1Config config = {});

  sim::Engine engine;
  sim::Network net{engine};

  ScenarioHost ann, bob, att_voip, vonage, google, youtube;
  sim::Router* att_access = nullptr;
  sim::Router* att_peering = nullptr;
  sim::Router* cogent_core = nullptr;
  /// Exactly one of `box` / `sharded_box` is non-null (see
  /// Fig1Config::box_shards).
  core::NeutralizerBox* box = nullptr;
  core::ShardedNeutralizerBox* sharded_box = nullptr;
  std::unique_ptr<sim::Isp> att;
  std::unique_ptr<sim::Isp> cogent;

  struct FlowResult {
    std::uint64_t received = 0;
    double mean_latency_ms = 0;
    double p95_latency_ms = 0;
    double loss = 0;
    double mos = 1.0;
  };

  /// Schedules a one-way "VoIP" flow without advancing time (for
  /// experiments with concurrent flows), shaped by Fig1Config::workload.
  /// `payload_size` applies only to the kFixedSize shape; kImix/kPcap
  /// take sizes (and for kPcap, timing) from the trace.
  void schedule_voip(VoipMode mode, ScenarioHost& from, ScenarioHost& to,
                     std::uint16_t flow_id, double pps, sim::SimTime start,
                     sim::SimTime duration, std::size_t payload_size = 160);

  /// Receiver-side quality metrics for a finished flow.
  [[nodiscard]] FlowResult collect(const ScenarioHost& to,
                                   std::uint16_t flow_id) const;

  /// Neutralizer service stats regardless of box flavor (aggregated
  /// across shards for a sharded box).
  [[nodiscard]] core::NeutralizerStats service_stats() const;

  /// The Neutralizer instance owning the §3.4 session state, regardless
  /// of box flavor: the classic box's service, shard 0 of a sharded
  /// cluster (dynamic-address requests pin there), or runtime worker
  /// 0's shard when the sharded box is runtime-backed (safe between
  /// instants — the runtime is quiescent then).
  [[nodiscard]] core::Neutralizer& control_service();

  /// Per-event outcome counters of the churn replay.
  struct ChurnCounters {
    std::uint64_t arrivals = 0;  ///< kArrive requests transmitted
    std::uint64_t responses = 0; ///< kDynAddrResponse messages captured
    std::uint64_t renews = 0;    ///< successful renew_dynamic calls
    std::uint64_t departs = 0;   ///< successful release_dynamic calls
    std::uint64_t storms = 0;    ///< rekey storms run
    std::uint64_t unmapped = 0;  ///< renew/depart before/after residency
  };

  /// Schedules the Fig1Config::session_churn replay from `from`
  /// (without advancing time): kArrive transmits a dynamic-address
  /// request through the topology, a shim_tap on `from` captures the
  /// response, and renew/depart/storm events drive control_service()
  /// directly. Requires dynamic_pool and session_churn to be set.
  void schedule_session_churn(ScenarioHost& from);

  [[nodiscard]] const ChurnCounters& churn_counters() const noexcept {
    return churn_counters_;
  }
  /// The replaying workload (null until schedule_session_churn).
  [[nodiscard]] sim::SessionChurnWorkload* churn_workload() noexcept {
    return churn_.get();
  }
  /// The dynamic address session `id` currently holds (unset when the
  /// response has not arrived or the session departed).
  [[nodiscard]] std::optional<net::Ipv4Addr> churn_address(
      std::uint64_t session) const;

  /// Snapshots the §3.4 control plane (control_service()) into `sink`:
  /// header, state chunks, end chunk, flush. Same quiescence contract
  /// as control_service() itself — between instants only. The crash
  /// drills pair this with SessionChurnWorkload::Config::on_crash to
  /// checkpoint and resurrect the box mid-churn.
  void export_control_state(persist::ByteSink& sink);
  /// Restores a snapshot over the live control plane (throws
  /// persist::FormatError/StateError exactly as persist::
  /// load_neutralizer does).
  void restore_control_state(persist::ByteSource& source);

  /// schedule_voip + run to completion + collect, for one-at-a-time
  /// experiments.
  FlowResult run_voip(VoipMode mode, ScenarioHost& from, ScenarioHost& to,
                      std::uint16_t flow_id, double pps, sim::SimTime start,
                      sim::SimTime duration, std::size_t payload_size = 160);

 private:
  Fig1Config config_;
  std::vector<std::unique_ptr<sim::TrafficSource>> sources_;
  std::vector<std::unique_ptr<sim::TraceWorkload>> trace_sources_;
  std::optional<net::PcapFile> pcap_;  // kPcap capture, parsed once
  std::uint64_t e2e_seed_ = 900;
  std::unique_ptr<sim::SessionChurnWorkload> churn_;
  // Session id -> resident dynamic address (0 = none; pool addresses
  // are never 0.0.0.0). Dense ids, so a flat vector.
  std::vector<std::uint32_t> churn_addr_;
  ChurnCounters churn_counters_;

  void wire(ScenarioHost& sh, bool inside, std::uint64_t seed,
            const crypto::RsaPrivateKey& identity);
  /// The trace one schedule_voip call replays under kImix/kPcap, with
  /// every record carrying the call's flow id.
  [[nodiscard]] std::vector<sim::TracePacket> flow_trace(
      std::uint16_t flow_id, double pps, sim::SimTime duration);
};

/// Shared (cached) RSA identities so scenario construction stays fast.
const crypto::RsaPrivateKey& scenario_identity(int which);

}  // namespace nn::scenario
