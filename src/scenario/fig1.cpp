#include "scenario/fig1.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/chacha.hpp"
#include "persist/state.hpp"
#include "util/bytes.hpp"

namespace nn::scenario {

const crypto::RsaPrivateKey& scenario_identity(int which) {
  static const std::vector<crypto::RsaPrivateKey> keys = [] {
    crypto::ChaChaRng rng(0xF161);
    std::vector<crypto::RsaPrivateKey> out;
    for (int i = 0; i < 6; ++i) {
      out.push_back(crypto::rsa_generate(rng, 1024, 3));
    }
    return out;
  }();
  return keys[static_cast<std::size_t>(which) % keys.size()];
}

void Fig1::wire(ScenarioHost& sh, bool inside, std::uint64_t seed,
                const crypto::RsaPrivateKey& identity) {
  host::HostConfig cfg;
  cfg.self = sh.node->address();
  cfg.inside_neutral_domain = inside;
  if (inside) cfg.home_anycast = kAnycast;
  sim::Host* node = sh.node;
  sh.stack = std::make_unique<host::NeutralizedHost>(
      cfg, identity,
      [node](net::Packet&& p) { node->transmit(std::move(p)); }, &engine,
      seed);

  ScenarioHost* shp = &sh;
  // Stamped handler: `at` is the packet's exact arrival even when a
  // burst-mode link delivered its whole train in one engine event, so
  // latency metrics are identical across delivery modes.
  sh.node->set_stamped_handler([shp](net::Packet&& pkt, sim::SimTime at) {
    if (shp->shim_tap && shp->shim_tap(pkt, at)) return;
    net::ParsedPacket p;
    try {
      p = net::parse_packet(pkt.view());
    } catch (const ParseError&) {
      return;
    }
    if (p.ip.protocol == static_cast<std::uint8_t>(net::IpProto::kShim)) {
      shp->stack->on_packet(std::move(pkt), at);
      return;
    }
    if (p.udp.has_value()) {
      if (shp->plain_rx.has_value()) {
        const auto opened = shp->plain_rx->open(p.payload);
        if (opened.has_value()) shp->sink.on_payload(*opened, at);
        return;
      }
      shp->sink.on_payload(p.payload, at);
    }
  });
  sh.stack->set_app_handler([shp](net::Ipv4Addr,
                                  std::span<const std::uint8_t> payload,
                                  sim::SimTime now) {
    shp->sink.on_payload(payload, now);
  });
}

Fig1::Fig1(Fig1Config config) : config_(std::move(config)) {
  auto& ann_node = net.add<sim::Host>("ann");
  auto& bob_node = net.add<sim::Host>("bob");
  auto& att_voip_node = net.add<sim::Host>("att-voip");
  att_access = &net.add<sim::Router>("att-access");
  att_peering = &net.add<sim::Router>("att-peering");

  core::NeutralizerConfig ncfg;
  ncfg.anycast_addr = kAnycast;
  ncfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  ncfg.dynamic_pool = config_.dynamic_pool;
  ncfg.dyn_lease = config_.dyn_lease;
  crypto::AesKey root;
  root.fill(0xD0);
  sim::Router* box_router = nullptr;
  if (config_.box_shards > 0) {
    sharded_box = &net.add<core::ShardedNeutralizerBox>(
        "cogent-box", config_.box_shards, ncfg, root, config_.box_costs);
    box_router = sharded_box;
  } else {
    box = &net.add<core::NeutralizerBox>("cogent-box", ncfg, root, 1,
                                         config_.box_costs);
    box_router = box;
  }
  cogent_core = &net.add<sim::Router>("cogent-core");
  auto& vonage_node = net.add<sim::Host>("vonage");
  auto& google_node = net.add<sim::Host>("google");
  auto& youtube_node = net.add<sim::Host>("youtube");

  sim::LinkConfig access;
  access.bandwidth_bps = config_.access_bps;
  access.propagation = config_.propagation;
  access.burst_packets = config_.link_burst_packets;
  access.burst_bytes = config_.link_burst_bytes;
  sim::LinkConfig core;
  core.bandwidth_bps = config_.core_bps;
  core.propagation = config_.propagation;
  core.burst_packets = config_.link_burst_packets;
  core.burst_bytes = config_.link_burst_bytes;

  net.connect(ann_node, *att_access, access);
  net.connect(bob_node, *att_access, access);
  net.connect(att_voip_node, *att_access, access);
  sim::LinkConfig uplink = core;
  if (config_.att_uplink_bps > 0) uplink.bandwidth_bps = config_.att_uplink_bps;
  if (config_.att_uplink_queue) uplink.queue_factory = config_.att_uplink_queue;
  net.connect(*att_access, *att_peering, uplink);
  net.connect(*att_peering, *box_router, core);
  net.connect(*box_router, *cogent_core, core);
  net.connect(*cogent_core, vonage_node, access);
  net.connect(*cogent_core, google_node, access);
  net.connect(*cogent_core, youtube_node, access);

  net.assign_address(ann_node, kAnnAddr);
  net.assign_address(bob_node, kBobAddr);
  net.assign_address(att_voip_node, kAttVoipAddr);
  net.assign_address(vonage_node, kVonageAddr);
  net.assign_address(google_node, kGoogleAddr);
  net.assign_address(youtube_node, kYouTubeAddr);
  net.assign_address(*box_router, net::Ipv4Addr(20, 0, 255, 1));
  if (box != nullptr) {
    box->join_service_anycast(net);
  } else {
    sharded_box->join_service_anycast(net);
  }
  net.compute_routes();

  att = std::make_unique<sim::Isp>("AT&T",
                                   net::Ipv4Prefix::from_string("10.1.0.0/16"));
  att->add_router(*att_access);
  att->add_router(*att_peering);
  cogent = std::make_unique<sim::Isp>(
      "Cogent", net::Ipv4Prefix::from_string("20.0.0.0/16"));
  cogent->add_router(*cogent_core);

  ann.node = &ann_node;
  bob.node = &bob_node;
  att_voip.node = &att_voip_node;
  vonage.node = &vonage_node;
  google.node = &google_node;
  youtube.node = &youtube_node;

  wire(ann, false, 201, scenario_identity(0));
  wire(bob, false, 202, scenario_identity(1));
  wire(att_voip, false, 203, scenario_identity(2));
  wire(vonage, true, 204, scenario_identity(3));
  wire(google, true, 205, scenario_identity(4));
  wire(youtube, true, 206, scenario_identity(5));

  // §3.1 bootstrap information, as if resolved from DNS.
  struct Entry {
    ScenarioHost* host;
    const crypto::RsaPrivateKey* key;
    bool inside;
  };
  const Entry entries[] = {
      {&ann, &scenario_identity(0), false},
      {&bob, &scenario_identity(1), false},
      {&att_voip, &scenario_identity(2), false},
      {&vonage, &scenario_identity(3), true},
      {&google, &scenario_identity(4), true},
      {&youtube, &scenario_identity(5), true},
  };
  for (const auto& a : entries) {
    for (const auto& b : entries) {
      if (a.host == b.host) continue;
      host::PeerInfo info;
      info.addr = b.host->addr();
      info.anycast = b.inside ? kAnycast : net::Ipv4Addr{};
      info.public_key = b.key->pub;
      a.host->stack->add_peer(info);
    }
  }
}

void Fig1::schedule_voip(VoipMode mode, ScenarioHost& from, ScenarioHost& to,
                         std::uint16_t flow_id, double pps, sim::SimTime start,
                         sim::SimTime duration, std::size_t payload_size) {
  // Stamped transport: `at` is the packet's virtual departure time,
  // equal to "now" for per-record replay and the record's own (past)
  // instant under Fig1Config::source_batch_window.
  std::function<void(std::vector<std::uint8_t>&&, sim::SimTime)> send;
  switch (mode) {
    case VoipMode::kPlain: {
      // Cleartext UDP with an application signature a DPI box can see.
      static constexpr char kSig[] = "SIP/2.0 RTP-STREAM";
      sim::Host* src = from.node;
      const net::Ipv4Addr dst = to.addr();
      send = [src, dst](std::vector<std::uint8_t>&& payload,
                        sim::SimTime at) {
        const char* sig = kSig;
        for (std::size_t i = 0; sig[i] != '\0' &&
                                sim::AppHeader::kSize + i < payload.size();
             ++i) {
          payload[sim::AppHeader::kSize + i] =
              static_cast<std::uint8_t>(sig[i]);
        }
        src->transmit(net::make_udp_packet(src->address(), dst, 5060, 5060,
                                           payload),
                      at);
      };
      to.plain_rx.reset();
      break;
    }
    case VoipMode::kE2eOnly: {
      // Shared-key e2e encryption, headers exposed.
      crypto::AesKey key;
      crypto::ChaChaRng krng(e2e_seed_++);
      krng.fill(key);
      to.plain_rx.emplace(key, /*initiator=*/false);
      auto tx = std::make_shared<host::E2eSession>(key, /*initiator=*/true);
      sim::Host* src = from.node;
      const net::Ipv4Addr dst = to.addr();
      send = [src, dst, tx](std::vector<std::uint8_t>&& payload,
                            sim::SimTime at) {
        src->transmit(net::make_udp_packet(src->address(), dst, 5060, 5060,
                                           tx->seal(payload)),
                      at);
      };
      break;
    }
    case VoipMode::kNeutralized: {
      // The stack transmits at the engine instant it runs, so batched
      // (past-stamped) emission shifts its departures to the window
      // boundary; keep source_batch_window = 0 for exact-equivalence
      // runs of neutralized flows.
      host::NeutralizedHost* stack = from.stack.get();
      const net::Ipv4Addr dst = to.addr();
      sim::Engine* eng = &engine;
      send = [stack, dst, eng](std::vector<std::uint8_t>&& payload,
                               sim::SimTime) {
        stack->send(dst, std::move(payload), eng->now());
      };
      to.plain_rx.reset();
      break;
    }
  }

  if (config_.workload == WorkloadKind::kFixedSize) {
    sim::TrafficSource::Config cfg;
    cfg.flow_id = flow_id;
    cfg.payload_size = payload_size;
    cfg.packets_per_second = pps;
    cfg.start = start;
    cfg.stop = start + duration;
    cfg.seed = 1000 + flow_id;
    sim::Engine* eng = &engine;
    sources_.push_back(std::make_unique<sim::TrafficSource>(
        engine, cfg,
        [send = std::move(send), eng](std::vector<std::uint8_t>&& payload) {
          send(std::move(payload), eng->now());
        }));
    sources_.back()->start();
    return;
  }
  // Trace-driven kinds size packets from the trace; the call's
  // payload_size applies only to kFixedSize.
  (void)payload_size;

  // Trace-driven shapes: the same SendFn, but sizes (and for kPcap,
  // timing) come from a replayable trace instead of a fixed payload.
  sim::TraceWorkload::Config tcfg;
  tcfg.start = start;
  // Steady-state wire framing around the app payload, per transport, so
  // every mode offers the same byte load for the same trace:
  //   kPlain        IP(20) + UDP(8)
  //   kE2eOnly      IP + UDP + seal(seq 8 + tag 8)
  //   kNeutralized  IP + shim(12+4) + frame type(1) + seal(16) + flags(1)
  switch (mode) {
    case VoipMode::kPlain:
      tcfg.wire_overhead = net::kIpv4HeaderSize + net::kUdpHeaderSize;
      break;
    case VoipMode::kE2eOnly:
      tcfg.wire_overhead = net::kIpv4HeaderSize + net::kUdpHeaderSize +
                           host::kE2eSealOverhead;
      break;
    case VoipMode::kNeutralized:
      tcfg.wire_overhead = net::kIpv4HeaderSize + net::kShimBaseSize +
                           net::kShimInnerAddrSize + 1 +
                           host::kE2eSealOverhead + 1;
      break;
  }
  std::vector<sim::TracePacket> trace = flow_trace(flow_id, pps, duration);
  if (config_.workload == WorkloadKind::kPcap && !trace.empty()) {
    // Rescale the capture's span to the call's duration.
    sim::SimTime span = 0;
    for (const auto& p : trace) span = std::max(span, p.at);
    if (span > 0) {
      tcfg.time_scale =
          static_cast<double>(duration) / static_cast<double>(span);
    }
  }
  tcfg.batch_window = config_.source_batch_window;
  auto fn = std::move(send);
  trace_sources_.push_back(std::make_unique<sim::TraceWorkload>(
      engine, std::move(trace), tcfg,
      [fn = std::move(fn)](std::uint16_t, std::vector<std::uint8_t>&& payload,
                           sim::SimTime at) { fn(std::move(payload), at); }));
  trace_sources_.back()->start();
}

std::vector<sim::TracePacket> Fig1::flow_trace(std::uint16_t flow_id,
                                               double pps,
                                               sim::SimTime duration) {
  if (config_.workload == WorkloadKind::kImix) {
    sim::ImixConfig icfg = config_.imix;
    icfg.flows = 1;  // one schedule_voip call = one flow
    icfg.packets_per_second = pps;
    icfg.duration = duration;
    icfg.seed = config_.imix.seed * 0x9E37 + flow_id;
    auto trace = sim::imix_trace(icfg);
    for (auto& p : trace) p.flow_id = flow_id;
    return trace;
  }
  if (!pcap_.has_value()) {
    pcap_ = net::read_pcap_file(config_.pcap_path);
  }
  auto trace = sim::trace_from_pcap(*pcap_);
  for (auto& p : trace) p.flow_id = flow_id;
  return trace;
}

Fig1::FlowResult Fig1::collect(const ScenarioHost& to,
                               std::uint16_t flow_id) const {
  FlowResult result;
  const auto& stats = to.sink.flow(flow_id);
  result.received = stats.received;
  result.mean_latency_ms = stats.latency_ms.mean();
  result.p95_latency_ms = stats.latency_ms.p95();
  result.loss = stats.loss_rate();
  result.mos = sim::estimate_mos(
      result.mean_latency_ms == 0 ? 1000.0 : result.mean_latency_ms,
      stats.any ? result.loss : 1.0);
  return result;
}

core::NeutralizerStats Fig1::service_stats() const {
  return box != nullptr ? box->service().stats()
                        : sharded_box->aggregate_stats();
}

core::Neutralizer& Fig1::control_service() {
  if (box != nullptr) return box->service();
  // Dynamic-address requests pin to shard 0 (core/sharded_box.cpp), so
  // that is where the session state lives — on runtime worker 0 when
  // the box is runtime-backed.
  if (auto* rt = sharded_box->backing_runtime()) return rt->shard_mut(0);
  return sharded_box->cluster().shard(0);
}

std::optional<net::Ipv4Addr> Fig1::churn_address(std::uint64_t session) const {
  if (session >= churn_addr_.size() || churn_addr_[session] == 0) {
    return std::nullopt;
  }
  return net::Ipv4Addr(churn_addr_[session]);
}

void Fig1::schedule_session_churn(ScenarioHost& from) {
  if (!config_.dynamic_pool.has_value() ||
      !config_.session_churn.has_value()) {
    throw std::logic_error(
        "schedule_session_churn: set Fig1Config::dynamic_pool and "
        "::session_churn first");
  }
  if (churn_ != nullptr) {
    throw std::logic_error("schedule_session_churn: already scheduled");
  }
  churn_addr_.assign(config_.session_churn->sessions, 0);

  // Capture every kDynAddrResponse addressed to `from` before the host
  // stack sees it, recording session id (the request nonce) -> address.
  Fig1* self = this;
  from.shim_tap = [self](const net::Packet& pkt, sim::SimTime) {
    net::ParsedPacket p;
    try {
      p = net::parse_packet(pkt.view());
    } catch (const ParseError&) {
      return false;
    }
    if (!p.shim.has_value() ||
        p.shim->type != net::ShimType::kDynAddrResponse ||
        p.payload.size() != 4) {
      return false;
    }
    const std::uint64_t session = p.shim->nonce;
    if (session < self->churn_addr_.size()) {
      ByteReader r(p.payload);
      self->churn_addr_[session] = r.u32();
      ++self->churn_counters_.responses;
    }
    return true;
  };

  sim::Host* src = from.node;
  sim::SessionChurnWorkload::Config wcfg;
  wcfg.batch_window = config_.churn_batch_window;
  wcfg.crash_after = config_.churn_crash_after;
  wcfg.on_crash = config_.churn_on_crash;
  churn_ = std::make_unique<sim::SessionChurnWorkload>(
      engine, sim::churn_schedule(*config_.session_churn), wcfg,
      [self, src](const sim::SessionEvent& event, sim::SimTime at) {
        core::Neutralizer& service = self->control_service();
        // Collect lapsed leases first so an event at the same instant
        // sees post-expiry state, like a server running its lease
        // collector ahead of each control message.
        service.expire_dynamic_sessions(at);
        switch (event.kind) {
          case sim::SessionEvent::Kind::kArrive: {
            net::ShimHeader shim;
            shim.type = net::ShimType::kDynAddrRequest;
            shim.nonce = event.session;
            src->transmit(
                net::make_shim_packet(src->address(), kAnycast, shim, {}),
                at);
            ++self->churn_counters_.arrivals;
            break;
          }
          case sim::SessionEvent::Kind::kRenew: {
            const auto addr = self->churn_address(event.session);
            if (addr.has_value() && service.renew_dynamic(*addr, at)) {
              ++self->churn_counters_.renews;
            } else {
              ++self->churn_counters_.unmapped;
            }
            break;
          }
          case sim::SessionEvent::Kind::kDepart: {
            const auto addr = self->churn_address(event.session);
            if (addr.has_value() && service.release_dynamic(*addr)) {
              self->churn_addr_[event.session] = 0;
              ++self->churn_counters_.departs;
            } else {
              ++self->churn_counters_.unmapped;
            }
            break;
          }
          case sim::SessionEvent::Kind::kRekeyStorm:
            service.rekey_dynamic_sessions(at);
            ++self->churn_counters_.storms;
            break;
        }
      });
  churn_->start();
}

void Fig1::export_control_state(persist::ByteSink& sink) {
  persist::save_neutralizer(control_service(), sink);
}

void Fig1::restore_control_state(persist::ByteSource& source) {
  persist::load_neutralizer(control_service(), source);
}

Fig1::FlowResult Fig1::run_voip(VoipMode mode, ScenarioHost& from,
                                ScenarioHost& to, std::uint16_t flow_id,
                                double pps, sim::SimTime start,
                                sim::SimTime duration,
                                std::size_t payload_size) {
  schedule_voip(mode, from, to, flow_id, pps, start, duration, payload_size);
  engine.run_until(start + duration + sim::kSecond);
  return collect(to, flow_id);
}

}  // namespace nn::scenario
