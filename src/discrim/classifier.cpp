#include "discrim/classifier.hpp"

#include "discrim/dpi.hpp"

namespace nn::discrim {

bool MatchCriteria::matches(const net::Packet& pkt) const noexcept {
  net::ParsedPacket p;
  try {
    p = net::parse_packet(pkt.view());
  } catch (const ParseError&) {
    return false;
  }
  if (src_prefix && !src_prefix->contains(p.ip.src)) return false;
  if (dst_prefix && !dst_prefix->contains(p.ip.dst)) return false;
  if (ip_proto && p.ip.protocol != *ip_proto) return false;
  if (src_port && (!p.udp || p.udp->src_port != *src_port)) return false;
  if (dst_port && (!p.udp || p.udp->dst_port != *dst_port)) return false;
  if (dscp && p.ip.dscp != *dscp) return false;
  if (shim_type && (!p.shim || p.shim->type != *shim_type)) return false;
  if (min_size && pkt.size() < *min_size) return false;
  if (max_size && pkt.size() > *max_size) return false;
  if (!payload_signature.empty() &&
      !contains_signature(p.payload, payload_signature)) {
    return false;
  }
  if (require_high_entropy &&
      shannon_entropy(p.payload) < entropy_threshold) {
    return false;
  }
  return true;
}

MatchCriteria MatchCriteria::against_destination(net::Ipv4Prefix dst) {
  MatchCriteria m;
  m.dst_prefix = dst;
  return m;
}

MatchCriteria MatchCriteria::against_source(net::Ipv4Prefix src) {
  MatchCriteria m;
  m.src_prefix = src;
  return m;
}

MatchCriteria MatchCriteria::against_udp_port(std::uint16_t port) {
  MatchCriteria m;
  m.dst_port = port;
  return m;
}

MatchCriteria MatchCriteria::against_signature(std::string_view signature) {
  MatchCriteria m;
  m.payload_signature.assign(signature.begin(), signature.end());
  return m;
}

MatchCriteria MatchCriteria::against_encrypted() {
  MatchCriteria m;
  m.require_high_entropy = true;
  m.entropy_threshold = kEncryptedEntropyThreshold;
  return m;
}

MatchCriteria MatchCriteria::against_key_setup() {
  MatchCriteria m;
  m.shim_type = net::ShimType::kKeySetup;
  return m;
}

}  // namespace nn::discrim
