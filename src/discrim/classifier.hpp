// Packet classifier for the discriminatory ISP. Every capability the
// paper grants the adversary (§2, §3.6) is a criterion here:
// header fields, payload contents (DPI), packet size, encrypted-traffic
// detection (entropy), and key-setup-packet detection (shim type).
// Nothing else — the ISP cannot, e.g., decrypt inner addresses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace nn::discrim {

struct MatchCriteria {
  std::optional<net::Ipv4Prefix> src_prefix;
  std::optional<net::Ipv4Prefix> dst_prefix;
  std::optional<std::uint8_t> ip_proto;
  std::optional<std::uint16_t> src_port;  // UDP only
  std::optional<std::uint16_t> dst_port;  // UDP only
  std::optional<net::Dscp> dscp;
  std::optional<net::ShimType> shim_type;
  std::optional<std::size_t> min_size;
  std::optional<std::size_t> max_size;
  /// DPI: payload must contain these bytes.
  std::vector<std::uint8_t> payload_signature;
  /// Flags payloads whose entropy exceeds the threshold ("encrypted").
  bool require_high_entropy = false;
  double entropy_threshold = 6.5;

  /// All present criteria must hold. Malformed packets never match.
  [[nodiscard]] bool matches(const net::Packet& pkt) const noexcept;

  /// Convenience builders for the common discrimination rules.
  static MatchCriteria against_destination(net::Ipv4Prefix dst);
  static MatchCriteria against_source(net::Ipv4Prefix src);
  static MatchCriteria against_udp_port(std::uint16_t dst_port);
  static MatchCriteria against_signature(std::string_view signature);
  static MatchCriteria against_encrypted();
  static MatchCriteria against_key_setup();
};

}  // namespace nn::discrim
