// The discriminatory ISP's policy engine: an ordered rule table of
// (classifier, action) pairs, attached to routers as a transit policy.
// First matching rule wins. Actions are the paper's §2 capabilities:
// delay, probabilistic drop, and rate limiting — never modification.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "discrim/classifier.hpp"
#include "qos/token_bucket.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace nn::discrim {

struct DiscriminationAction {
  double drop_probability = 0.0;
  sim::SimTime added_delay = 0;
  /// Shared token bucket (one per rule, shared across the ISP's
  /// routers); packets exceeding the rate are dropped.
  std::shared_ptr<qos::TokenBucket> rate_limit;

  static DiscriminationAction drop() {
    return {1.0, 0, nullptr};
  }
  static DiscriminationAction degrade(double drop_prob, sim::SimTime delay) {
    return {drop_prob, delay, nullptr};
  }
  static DiscriminationAction throttle(double bytes_per_sec,
                                       double burst_bytes) {
    return {0.0, 0,
            std::make_shared<qos::TokenBucket>(bytes_per_sec, burst_bytes)};
  }
};

struct RuleStats {
  std::uint64_t hits = 0;
  std::uint64_t drops = 0;
  std::uint64_t delayed = 0;
};

/// Transit policy assembled from discrimination rules.
class DiscriminationPolicy final : public sim::TransitPolicy {
 public:
  explicit DiscriminationPolicy(std::string name, std::uint64_t seed = 1)
      : name_(std::move(name)), rng_(seed) {}

  DiscriminationPolicy& add_rule(std::string label, MatchCriteria match,
                                 DiscriminationAction action);

  sim::PolicyDecision process(const net::Packet& pkt,
                              sim::SimTime now) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] const RuleStats& rule_stats(std::size_t index) const {
    return rules_.at(index).stats;
  }
  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }

 private:
  struct Rule {
    std::string label;
    MatchCriteria match;
    DiscriminationAction action;
    RuleStats stats;
  };

  std::string name_;
  std::vector<Rule> rules_;
  SplitMix64 rng_;
};

}  // namespace nn::discrim
