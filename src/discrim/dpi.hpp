// Deep-packet-inspection primitives available to a discriminatory ISP:
// byte-signature search and a Shannon-entropy estimate used to flag
// encrypted traffic. These are the paper's §3.6 residual capabilities —
// an ISP can still "discriminate against encrypted traffic" as a class,
// just not against specific contents once they are encrypted.
#pragma once

#include <cstdint>
#include <span>

namespace nn::discrim {

/// Shannon entropy of the byte distribution, in bits/byte (0..8).
/// Returns 0 for empty input.
[[nodiscard]] double shannon_entropy(
    std::span<const std::uint8_t> data) noexcept;

/// True if `needle` occurs in `haystack` (naive search; packets are
/// small). Empty needles match nothing.
[[nodiscard]] bool contains_signature(
    std::span<const std::uint8_t> haystack,
    std::span<const std::uint8_t> needle) noexcept;

/// Heuristic used in experiments: payloads above this entropy are
/// treated as encrypted by the classifier's `require_high_entropy`.
inline constexpr double kEncryptedEntropyThreshold = 6.5;

}  // namespace nn::discrim
