#include "discrim/dpi.hpp"

#include <array>
#include <cmath>

namespace nn::discrim {

double shannon_entropy(std::span<const std::uint8_t> data) noexcept {
  if (data.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  for (std::uint8_t b : data) ++counts[b];
  const double n = static_cast<double>(data.size());
  double entropy = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

bool contains_signature(std::span<const std::uint8_t> haystack,
                        std::span<const std::uint8_t> needle) noexcept {
  if (needle.empty() || needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (haystack[i + j] != needle[j]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

}  // namespace nn::discrim
