#include "discrim/policy.hpp"

namespace nn::discrim {

DiscriminationPolicy& DiscriminationPolicy::add_rule(
    std::string label, MatchCriteria match, DiscriminationAction action) {
  rules_.push_back(Rule{std::move(label), std::move(match), std::move(action),
                        RuleStats{}});
  return *this;
}

sim::PolicyDecision DiscriminationPolicy::process(const net::Packet& pkt,
                                                  sim::SimTime now) {
  for (auto& rule : rules_) {
    if (!rule.match.matches(pkt)) continue;
    ++rule.stats.hits;
    if (rule.action.rate_limit &&
        !rule.action.rate_limit->try_consume(pkt.size(), now)) {
      ++rule.stats.drops;
      return sim::PolicyDecision::dropped();
    }
    if (rule.action.drop_probability > 0.0 &&
        rng_.chance(rule.action.drop_probability)) {
      ++rule.stats.drops;
      return sim::PolicyDecision::dropped();
    }
    if (rule.action.added_delay > 0) {
      ++rule.stats.delayed;
      return sim::PolicyDecision::delayed(rule.action.added_delay);
    }
    return sim::PolicyDecision::forward();
  }
  return sim::PolicyDecision::forward();
}

}  // namespace nn::discrim
