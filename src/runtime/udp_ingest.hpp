// UDP loopback front end for the threaded shard runtime: the first
// ingestion path where packets arrive from the kernel instead of from
// a simulator loop. One SO_REUSEPORT socket per ingress queue — the
// kernel hashes each datagram's 4-tuple across the group, which is
// exactly the NIC-RSS role the ring fabric was shaped for — and one
// reader thread per socket that recvmmsg()s batches and feeds them
// into `runtime.port(q)`. Each datagram payload is one serialized IPv4
// packet (packet-in-UDP encapsulation), the same framing the pcap
// fixtures use.
//
// Threading contract: reader thread q is the only driver of port(q),
// satisfying IngressPort's one-thread-per-queue rule. The owner must
// not touch those ports between start() and stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/udp.hpp"
#include "runtime/shard_runtime.hpp"

namespace nn::runtime {

struct UdpIngestConfig {
  /// UDP port to bind on 127.0.0.1; 0 lets the kernel pick (read the
  /// result from UdpIngestor::port()).
  std::uint16_t udp_port = 0;
  /// SO_RCVBUF request per socket; loopback blasts overrun the 208 KiB
  /// default long before the runtime is the bottleneck.
  int rcvbuf_bytes = 4 << 20;
  /// Reader wake-up period; bounds stop() latency.
  int recv_timeout_ms = 50;
  /// Max datagrams per recvmmsg() call.
  std::size_t recv_batch = 64;
  /// Receive buffer per datagram. The default accepts any UDP datagram;
  /// smaller values make the kernel truncate oversize ones, which the
  /// reader counts (`truncated`) and rejects instead of parsing.
  std::size_t max_datagram_bytes = net::kMaxUdpDatagram;
  /// When set, each datagram's source endpoint is recorded and carried
  /// to the egress lanes as the reflect-to-source reply (kForward
  /// mode). Off by default: distinct endpoints split worker bursts, so
  /// rewrite-mode appliances should not pay for what they ignore.
  bool record_reply = false;
};

/// Per-queue ingestion counters (socket side; ring-side counters live
/// in RuntimeStats::queues).
struct UdpQueueStats {
  std::uint64_t datagrams = 0;   ///< received from the kernel
  std::uint64_t submitted = 0;   ///< accepted by the ingress ring
  std::uint64_t rejected = 0;    ///< ring refused (kDrop) or runtime stopped
  std::uint64_t runts = 0;       ///< datagram shorter than an IPv4 header
  std::uint64_t truncated = 0;   ///< kernel-clipped datagrams (MSG_TRUNC)
};

class UdpIngestor {
 public:
  /// Binds one socket per `runtime.ingress_queues()`. The runtime
  /// reference must outlive the ingestor.
  UdpIngestor(ShardRuntime& runtime, UdpIngestConfig config = {});
  ~UdpIngestor();

  UdpIngestor(const UdpIngestor&) = delete;
  UdpIngestor& operator=(const UdpIngestor&) = delete;

  /// Spawns the reader threads. Returns false (with error() set) if
  /// any socket failed to bind — e.g. no SO_REUSEPORT on this kernel.
  bool start();
  /// Signals the readers, joins them, leaves counters readable. Each
  /// reader drains its socket before exiting — it keeps calling
  /// recv_batch() after observing the stop flag until a read comes back
  /// empty — so every datagram the kernel had already queued when
  /// stop() was called is still submitted (or counted as
  /// rejected/runt/truncated), never silently dropped between a
  /// successful receive and the flag check.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound UDP port (all sockets share it), 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  [[nodiscard]] std::size_t queue_count() const noexcept {
    return queues_.size();
  }
  [[nodiscard]] UdpQueueStats stats(std::size_t q) const;
  [[nodiscard]] UdpQueueStats stats_total() const;

 private:
  struct Queue {
    net::UdpSocket socket;
    std::thread thread;
    std::atomic<std::uint64_t> datagrams{0};
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> runts{0};
    std::atomic<std::uint64_t> truncated{0};
  };

  void reader_loop(std::size_t q);

  ShardRuntime& runtime_;
  UdpIngestConfig config_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> running_{false};
  std::uint16_t port_ = 0;
  std::string error_;
};

}  // namespace nn::runtime
