#include "runtime/udp_egress.hpp"

#include <chrono>

namespace nn::runtime {

namespace {

/// Same yield-then-sleep idle wait the ingest side uses: cheap while
/// the producer is likely mid-burst, kind to single-core hosts once
/// the lanes have clearly gone quiet.
struct Backoff {
  unsigned spins = 0;
  void pause() {
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() { spins = 0; }
};

}  // namespace

UdpEgressor::UdpEgressor(ShardRuntime& runtime, UdpEgressConfig config)
    : runtime_(runtime), config_(config) {
  lanes_.reserve(runtime_.worker_count());
  for (std::size_t w = 0; w < runtime_.worker_count(); ++w) {
    lanes_.push_back(std::make_unique<TxLane>());
  }
}

UdpEgressor::~UdpEgressor() { stop(); }

bool UdpEgressor::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  if (!net::UdpSocket::supported()) {
    error_ = "sockets unavailable on this platform";
    return false;
  }
  if (runtime_.config().egress != EgressMode::kForward) {
    error_ = "runtime is not in EgressMode::kForward";
    return false;
  }
  if (config_.mode == UdpEgressConfig::Mode::kRewrite &&
      config_.dest_port == 0) {
    error_ = "kRewrite mode needs a dest_port (there is no default next hop)";
    return false;
  }
  if (config_.tx_threads == 0 || config_.tx_threads > lanes_.size()) {
    error_ = "tx_threads must be in [1, worker_count]";
    return false;
  }
  if (config_.send_batch == 0) {
    error_ = "send_batch must be >= 1";
    return false;
  }
  stop_flag_.store(false, std::memory_order_release);

  // One bound socket per lane: binding (port 0, kernel-assigned) gives
  // each shard's output stream a distinct, queryable source port.
  for (std::size_t w = 0; w < lanes_.size(); ++w) {
    net::UdpSocket sock = net::UdpSocket::bind_loopback(0, false);
    if (!sock.valid()) {
      error_ = "lane " + std::to_string(w) + ": " + sock.error();
      for (auto& lane : lanes_) lane->socket.close();
      return false;
    }
    sock.set_send_buffer(config_.sndbuf_bytes);
    lanes_[w]->socket = std::move(sock);
    lanes_[w]->lane = runtime_.egress_lane(w);
  }

  running_.store(true, std::memory_order_release);
  threads_.reserve(config_.tx_threads);
  for (std::size_t t = 0; t < config_.tx_threads; ++t) {
    threads_.emplace_back([this, t] { tx_loop(t); });
  }
  return true;
}

void UdpEgressor::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_flag_.store(true, std::memory_order_release);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  for (auto& lane : lanes_) lane->socket.close();
  running_.store(false, std::memory_order_release);
}

void UdpEgressor::flush() {
  Backoff backoff;
  for (;;) {
    bool done = true;
    for (const auto& lane : lanes_) {
      if (!lane->lane.valid()) continue;
      if (lane->lane.size_approx() != 0) {
        done = false;
        break;
      }
      // Empty lane is not enough: a tx thread may hold popped items it
      // has not finished sending. popped is bumped *before* the send
      // and the outcome counters after it, so reading the outcome sum
      // first and popped second makes popped == settled proof that
      // nothing is in flight (settled only chases popped, and a stale
      // settled read can only make the test fail, never pass early).
      const std::uint64_t settled =
          lane->transmitted.load(std::memory_order_seq_cst) +
          lane->send_failures.load(std::memory_order_seq_cst);
      const std::uint64_t popped =
          lane->popped.load(std::memory_order_seq_cst);
      if (popped != settled) {
        done = false;
        break;
      }
    }
    if (done) return;
    backoff.pause();
  }
}

void UdpEgressor::tx_loop(std::size_t t) {
  (void)pin_current_thread(placement_cpu_for_egress(
      runtime_.config(), t, runtime_.worker_count(),
      runtime_.ingress_queues()));
  std::vector<EgressItem> items;
  Backoff backoff;
  for (;;) {
    // Drain-then-exit, like the ingest readers: read the flag before
    // the sweep, and only exit after a sweep in which every owned lane
    // came up empty — a survivor a worker pushed before runtime.stop()
    // returned is always transmitted, never stranded.
    const bool stopping = stop_flag_.load(std::memory_order_acquire);
    bool idle = true;
    for (std::size_t w = t; w < lanes_.size(); w += config_.tx_threads) {
      TxLane& lane = *lanes_[w];
      items.clear();
      if (lane.lane.pop_burst(items, config_.send_batch) == 0) continue;
      idle = false;
      // Popped is published before any send so flush() can tell "lane
      // empty because everything was sent" from "lane empty but a
      // batch is mid-send" (see the ordering argument there).
      lane.popped.store(
          lane.popped.load(std::memory_order_relaxed) + items.size(),
          std::memory_order_seq_cst);
      // Group consecutive items that share a destination into one
      // sendmmsg series. In kRewrite mode every destination is equal,
      // so the whole burst is one group; in kReflect mode the worker
      // already split bursts on reply changes, so groups stay long.
      std::size_t first = 0;
      for (std::size_t i = 1; i <= items.size(); ++i) {
        if (i < items.size() && items[i].reply == items[first].reply) {
          continue;
        }
        send_group(lane, items, first, i - first);
        first = i;
      }
    }
    if (idle) {
      if (stopping) break;
      backoff.pause();
    } else {
      backoff.reset();
    }
  }
}

void UdpEgressor::send_group(TxLane& lane,
                             const std::vector<EgressItem>& items,
                             std::size_t first, std::size_t count) {
  net::Ipv4Addr addr = config_.dest_addr;
  std::uint16_t port = config_.dest_port;
  if (config_.mode == UdpEgressConfig::Mode::kReflect) {
    const EgressEndpoint& reply = items[first].reply;
    if (reply.port == 0) {
      // Nothing recorded at ingest — unreflectable, surfaced as
      // failures rather than guessed at.
      lane.send_failures.store(
          lane.send_failures.load(std::memory_order_relaxed) + count,
          std::memory_order_relaxed);
      return;
    }
    addr = reply.addr;
    port = reply.port;
  }
  std::vector<std::span<const std::uint8_t>> bufs;
  bufs.reserve(count);
  for (std::size_t i = first; i < first + count; ++i) {
    bufs.push_back(items[i].pkt.view());
  }
  const std::size_t sent = lane.socket.send_batch(addr, port, bufs);
  lane.transmitted.store(
      lane.transmitted.load(std::memory_order_relaxed) + sent,
      std::memory_order_relaxed);
  if (sent < count) {
    lane.send_failures.store(
        lane.send_failures.load(std::memory_order_relaxed) + (count - sent),
        std::memory_order_relaxed);
  }
}

std::uint16_t UdpEgressor::lane_source_port(std::size_t w) const {
  return lanes_.at(w)->socket.local_port();
}

UdpEgressStats UdpEgressor::stats(std::size_t w) const {
  const TxLane& lane = *lanes_.at(w);
  UdpEgressStats s;
  s.popped = lane.popped.load(std::memory_order_acquire);
  s.transmitted = lane.transmitted.load(std::memory_order_relaxed);
  s.send_failures = lane.send_failures.load(std::memory_order_relaxed);
  return s;
}

UdpEgressStats UdpEgressor::stats_total() const {
  UdpEgressStats total;
  for (std::size_t w = 0; w < lanes_.size(); ++w) {
    const UdpEgressStats s = stats(w);
    total.popped += s.popped;
    total.transmitted += s.transmitted;
    total.send_failures += s.send_failures;
  }
  return total;
}

}  // namespace nn::runtime
