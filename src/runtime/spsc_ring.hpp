// Bounded single-producer / single-consumer ring queue — the channel
// between the ShardRuntime dispatcher and each worker core. Lock-free
// on the hot path: the producer writes only `tail_`, the consumer only
// `head_`, and each side keeps a cached copy of the other's cursor so
// the common case (space available / items available) touches no shared
// cache line at all. Head and tail live on separate cache lines to
// avoid false sharing; release stores pair with acquire loads so a
// popped element's bytes (and everything the producer wrote before
// pushing — the buffer-ownership handoff net/arena.hpp documents) are
// visible to the consumer.
//
// Exactly one producer thread and one consumer thread, fixed for the
// queue's lifetime. Capacity is rounded up to a power of two.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace nn::runtime {

/// std::hardware_destructive_interference_size is still patchy across
/// standard libraries; 64 bytes is right for every x86-64 and most
/// arm64 parts this project targets.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// `capacity` is a lower bound; the ring holds the next power of two.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer only. False (and `v` untouched) when the ring is full.
  bool try_push(T&& v) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == capacity()) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. False when the ring is empty.
  bool try_pop(T& out) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only: pops up to `max` elements into `out`, returning the
  /// count — one acquire fence amortized over the whole burst, which is
  /// how the worker forms its process_batch bursts.
  std::size_t pop_batch(T* out, std::size_t max) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return 0;
    }
    const std::size_t avail = cached_tail_ - head;
    const std::size_t n = avail < max ? avail : max;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Callable from either side (approximate from the other's view).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const noexcept { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Consumer cursor + the producer's cached copy of it sit on their own
  // cache lines (and likewise for the producer cursor), so steady-state
  // push/pop ping-pongs no lines between cores.
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLine) std::size_t cached_head_ = 0;  // producer-owned
  alignas(kCacheLine) std::size_t cached_tail_ = 0;  // consumer-owned
};

}  // namespace nn::runtime
