// ShardRuntime: the neutralizer cluster on real cores.
//
// PR 3's ShardedNeutralizer proved the semantics — N shards sharing one
// root key are byte-exactly equivalent to a single box — but executed
// every shard serially on one core. This subsystem supplies the missing
// half: a dispatcher thread hashes each packet with the same
// shard_for_packet flow hash the simulated cluster uses and hands it to
// one of N worker threads over a bounded SPSC ring; each worker owns a
// private Neutralizer + PacketArena and drains its ring in bursts
// through the same Neutralizer::drain_into seam the simulator drives.
//
//          submit()                try_push              drain_into
//   caller ───────► dispatcher ──┬─[SpscRing 0]─► worker 0 ─► egress 0
//        (shard_for_packet hash) ├─[SpscRing 1]─► worker 1 ─► egress 1
//                                └─[SpscRing N]─► worker N ─► egress N
//
// Ownership handoff (asserted where stated, documented in net/arena.hpp):
//   * A Packet's buffer belongs to whichever thread holds the Packet;
//     the ring push (release) / pop (acquire) pair is the handoff edge.
//   * Worker-owned state — Neutralizer, arena, egress — is constructed
//     on the control thread before the worker thread starts (the
//     std::thread constructor is the happens-before edge) and may be
//     touched by the control thread again only at quiescence: after
//     flush()/stop() returned, when the worker's processed count
//     (release) has been observed to equal the submitted count
//     (acquire). Accessors assert that.
//
// Quiescence protocol: the dispatcher counts submissions per worker
// (plain, single-threaded); each worker publishes its processed count
// with a release store after appending the burst's survivors to its
// egress. flush() spins (yield + short sleep) until the counts meet.
// stop() additionally raises the stop flag; workers drain whatever is
// already queued, then exit — no packet that submit() accepted is ever
// dropped by shutdown. The destructor calls stop().
//
// Backpressure: when a worker's ring is full the dispatcher either
// spin-waits for space (kBlock, the default — lossless, paces the
// caller to the slowest shard) or drops the packet and reports it
// (kDrop, what a line-rate NIC queue would do), counted per worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/neutralizer.hpp"
#include "net/arena.hpp"
#include "net/packet.hpp"
#include "runtime/spsc_ring.hpp"
#include "sim/engine.hpp"

namespace nn::runtime {

enum class BackpressurePolicy : std::uint8_t {
  kBlock,  // submit() waits for ring space (lossless)
  kDrop,   // submit() drops and returns false when the ring is full
};

struct RuntimeOptions {
  /// Per-worker ring slots (rounded up to a power of two). Bounds the
  /// dispatcher→worker in-flight window per shard.
  std::size_t ring_capacity = 1024;
  /// Largest burst a worker feeds one process_batch call.
  std::size_t max_batch = 64;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Pin worker i to CPU (i mod hardware_concurrency). Best-effort
  /// (Linux only, failures ignored) — keeps per-worker arenas and key
  /// caches hot in one core's private cache.
  bool pin_threads = true;
  /// Keep every survivor in the worker's egress vector (the collect /
  /// verify mode). When false survivors are recycled straight into the
  /// worker's arena — the closed-loop mode benchmarks run, where wire
  /// output would otherwise accumulate without bound.
  bool collect_egress = true;
  /// Freelist bound for each worker's PacketArena.
  std::size_t arena_max_free = 4096;
  /// When false the ctor does not launch threads; start() (or flush(),
  /// which implies it) launches them later. Lets tests fill rings
  /// deterministically before any worker runs.
  bool start_workers = true;
};

/// Per-worker counters. Dispatcher-side fields are exact; worker-side
/// fields are published with relaxed atomics and are exact once the
/// runtime is quiescent (flush()/stop() returned).
struct WorkerCounters {
  std::uint64_t submitted = 0;      // packets the dispatcher enqueued
  std::uint64_t dropped = 0;        // kDrop ring-full rejections
  std::uint64_t blocked_waits = 0;  // kBlock ring-full wait episodes
  std::uint64_t processed = 0;      // packets fully handled by the worker
  std::uint64_t survivors = 0;      // packets that produced wire output
  std::uint64_t batches = 0;        // process_batch calls
  std::uint64_t max_batch = 0;      // largest single burst
};

struct RuntimeStats {
  std::vector<WorkerCounters> workers;
  [[nodiscard]] WorkerCounters total() const noexcept {
    WorkerCounters t;
    for (const WorkerCounters& w : workers) {
      t.submitted += w.submitted;
      t.dropped += w.dropped;
      t.blocked_waits += w.blocked_waits;
      t.processed += w.processed;
      t.survivors += w.survivors;
      t.batches += w.batches;
      t.max_batch = t.max_batch > w.max_batch ? t.max_batch : w.max_batch;
    }
    return t;
  }
};

class ShardRuntime {
 public:
  /// `worker_count` workers (>= 1), all sharing `root_key` exactly like
  /// the shards of a ShardedNeutralizer.
  ShardRuntime(std::size_t worker_count, const core::NeutralizerConfig& config,
               const crypto::AesKey& root_key, RuntimeOptions options = {});
  ~ShardRuntime();  // stop(): drains queued packets, joins workers

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] const RuntimeOptions& options() const noexcept {
    return options_;
  }

  /// Launches the worker threads; idempotent, no-op after stop().
  void start();

  /// Where the dispatch hash sends `pkt` — same function, same answer
  /// as ShardedNeutralizer::shard_for.
  [[nodiscard]] std::size_t shard_for(const net::Packet& pkt) const noexcept;

  /// Dispatches one packet (single caller thread — the dispatcher role).
  /// `now` is the packet's arrival timestamp, forwarded to the worker's
  /// drain so epoch checks behave exactly as on the serial path;
  /// timestamps must be non-decreasing in submission order. Returns
  /// false iff the packet was dropped (kDrop policy, ring full, or the
  /// runtime is already stopped).
  bool submit(net::Packet&& pkt, sim::SimTime now = 0);

  /// Blocks until every accepted packet has been processed (workers are
  /// started if they were not yet). On return the runtime is quiescent
  /// and every accessor below is exact.
  void flush();

  /// Drains everything already queued, then joins the workers.
  /// Idempotent; submit() after stop() rejects. The destructor calls it.
  void stop();

  /// True when every accepted packet has been processed and published.
  [[nodiscard]] bool quiescent() const noexcept;

  // --- quiescence-gated accessors (assert quiescent()) ---------------

  /// Worker i's wire output in processing order — byte-identical to the
  /// same shard's drain output on the serial ShardedNeutralizer.
  [[nodiscard]] std::vector<net::Packet>& shard_egress(std::size_t i);
  /// All shards' egress merged in shard-major order (shard 0's stream,
  /// then shard 1's, ...) — the same aggregate order the serial
  /// harnesses produce when draining shard 0..N-1; moves the packets
  /// out of the per-shard buffers.
  [[nodiscard]] std::vector<net::Packet> merged_egress();
  /// Sum of every worker's NeutralizerStats.
  [[nodiscard]] core::NeutralizerStats aggregate_stats() const;
  [[nodiscard]] const core::Neutralizer& shard(std::size_t i) const;
  [[nodiscard]] net::PacketArena& arena(std::size_t i);

  /// Counter snapshot: dispatcher-side fields exact, worker-side fields
  /// exact at quiescence (relaxed reads otherwise).
  [[nodiscard]] RuntimeStats stats() const;

 private:
  // One slot of the dispatcher→worker ring: the packet plus its arrival
  // timestamp (workers split bursts on timestamp changes so a burst
  // never spans an epoch-visible instant).
  struct Ingress {
    net::Packet pkt;
    sim::SimTime now = 0;
  };

  struct Worker {
    Worker(const core::NeutralizerConfig& config,
           const crypto::AesKey& root_key, const RuntimeOptions& opt)
        : service(config, root_key),
          arena(opt.arena_max_free),
          ring(opt.ring_capacity) {}

    core::Neutralizer service;
    net::PacketArena arena;
    SpscRing<Ingress> ring;
    std::vector<net::Packet> pending;  // worker-local burst staging
    std::vector<net::Packet> egress;   // survivors, processing order
    std::vector<Ingress> staging;      // ring pop buffer

    // Dispatcher-owned (single producer thread, never touched by the
    // worker): exact without synchronization.
    std::uint64_t submitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t blocked_waits = 0;

    // Worker-published. `processed` is the quiescence signal: released
    // after the burst's survivors are in `egress`, acquired by
    // flush()/quiescent() — that pair is what makes reading `egress`
    // and `service` from the control thread safe afterwards.
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> survivors{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> max_batch{0};

    std::thread thread;
  };

  RuntimeOptions options_;
  // unique_ptr keeps worker addresses stable across the vector (threads
  // hold references) and lets Worker carry atomics (non-movable).
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_flag_{false};
  bool started_ = false;
  bool stopped_ = false;

  void worker_loop(Worker& w, std::size_t index);
  void assert_quiescent() const;
};

}  // namespace nn::runtime
