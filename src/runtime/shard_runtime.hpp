// ShardRuntime: the neutralizer cluster on real cores, fed through
// multiple RSS-style ingress queues.
//
// PR 3's ShardedNeutralizer proved the semantics — N shards sharing one
// root key are byte-exactly equivalent to a single box — and PR 5 first
// executed it on worker threads behind a single dispatcher. That lone
// dispatcher was the ceiling (bench_runtime: flat Mpps from 1 to 8
// workers), exactly the bottleneck a real NIC solves with RSS: several
// hardware RX queues, each owned by one core, all hashing flows with
// the same function. This runtime emulates that shape:
//
//   * Q ingress queues, each exposed as an IngressPort handle obtained
//     from port(q). Each port is a single-producer lane bundle: exactly
//     one thread may drive a given port at a time (the "one dispatcher
//     thread per RX queue" rule, stated instead of hidden).
//   * M workers, each owning a private Neutralizer + PacketArena.
//   * A Q x M ring fabric: one bounded SPSC ring per (queue, worker)
//     pair, so no ring ever gains a second producer or consumer and the
//     lock-free ring stays exactly as simple as the single-queue one.
//
//     port(0) ─► producer 0 ──┬─[ring 0,0]──► worker 0 ─► egress 0
//                             └─[ring 0,1]─┐   merge by arrival stamp,
//     port(1) ─► producer 1 ──┬─[ring 1,0]─┼─► split bursts on stamp
//                             └─[ring 1,1]─┘   change, drain_into
//                 shard_for_packet() picks the worker (= shard)
//
//   * On drain a worker pops a burst from each of its Q rings and
//     stable-merges by arrival timestamp, so a packet with an earlier
//     stamp is never processed after a later-stamped one *within a
//     drain*, and bursts still split on stamp changes — epoch checks
//     match the serial path packet-for-packet. Across ports the only
//     ordering guarantee is the one real RSS gives: per-port FIFO.
//     With one ingress queue the per-shard processing order is exactly
//     the submission order, byte-identical to the serial cluster.
//
// Ownership handoff (asserted where stated, documented in net/arena.hpp):
//   * A Packet's buffer belongs to whichever thread holds the Packet;
//     the ring push (release) / pop (acquire) pair is the handoff edge.
//   * Worker-owned state — Neutralizer, arena, egress — is constructed
//     on the control thread before the worker thread starts (the
//     std::thread constructor is the happens-before edge) and may be
//     touched by the control thread again only at quiescence: after
//     flush()/stop() returned, when every lane's processed count
//     (release) has been observed to equal its submitted count
//     (acquire). Accessors assert that.
//
// Quiescence protocol: each port's producer thread counts submissions
// per lane; each worker publishes per-lane processed counts with a
// release store after appending the burst's survivors to its egress.
// flush() spins (yield + short sleep) until every lane's counts meet;
// IngressPort::flush() waits on that port's lanes only. stop()
// additionally raises the stop flag; workers drain whatever is already
// queued in *all* their rings, then exit — no packet any port accepted
// is ever dropped by shutdown. The destructor calls stop().
//
// Backpressure: when a lane's ring is full the submitting port either
// spin-waits for space (kBlock, the default — lossless, paces that
// port to the slowest shard) or drops the packet and reports it
// (kDrop, what a line-rate NIC queue would do), counted per lane.
//
// Egress is a mode choice (EgressMode): collect survivors in per-worker
// vectors (verify), recycle them into the worker arena (closed-loop
// benches), or forward them into per-worker egress lanes — the same
// SPSC fabric run in the opposite direction, one ring per worker whose
// producer is that worker and whose consumer is one transmit thread
// (EgressLane is the consumer handle; UdpEgressor in udp_egress.hpp is
// the socket-backed consumer that closes the appliance loop).
//
// Header changelog:
//   * PR 8 removed ShardRuntime::submit(pkt, now) — the deprecated
//     port(0) sugar from the PR 5 single-dispatcher era. Spell it
//     runtime.port(0).submit(pkt, now); behavior is identical.
//   * PR 8 replaced RuntimeConfig::collect_egress (bool) with the
//     three-valued RuntimeConfig::egress (EgressMode): the old `true`
//     is kCollect, the old `false` is kRecycle, and kForward is new.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/neutralizer.hpp"
#include "net/arena.hpp"
#include "net/packet.hpp"
#include "runtime/spsc_ring.hpp"
#include "sim/engine.hpp"

namespace nn::runtime {

enum class BackpressurePolicy : std::uint8_t {
  kBlock,  // submit() waits for ring space (lossless)
  kDrop,   // submit() drops and returns false when the ring is full
};

/// What a worker does with a burst's survivors.
enum class EgressMode : std::uint8_t {
  kCollect,  // append to the worker's egress vector (verify mode)
  kRecycle,  // release straight into the worker's arena (closed loop —
             // benchmarks that would otherwise accumulate wire output)
  kForward,  // push into the worker's egress lane for a transmit
             // thread to drain (the appliance mode; see EgressLane)
};

/// Where a forwarded survivor should be transmitted when the egress
/// consumer runs in reflect-to-source mode: the UDP endpoint the
/// originating datagram came from, recorded at ingress and carried
/// through the fabric with the packet. A default-constructed endpoint
/// (port 0) means "nothing recorded" — rewrite-mode consumers ignore
/// it entirely.
struct EgressEndpoint {
  net::Ipv4Addr addr{};
  std::uint16_t port = 0;
  friend bool operator==(const EgressEndpoint&,
                         const EgressEndpoint&) = default;
};

/// One survivor handed from a worker to its egress lane.
struct EgressItem {
  net::Packet pkt;
  EgressEndpoint reply;
};

/// How runtime threads map onto CPUs. Pinning keeps each worker's
/// arena and key caches hot in one core's private cache; it is always
/// best-effort, but failures are *surfaced* in RuntimeStats
/// (WorkerCounters::pinned_cpu / affinity_failures) rather than
/// silently ignored, so a NUMA or cgroup misconfiguration is visible.
enum class PlacementPolicy : std::uint8_t {
  kNone,     // never touch thread affinity
  kCompact,  // worker m -> CPU m % ncpu; ingress thread q -> CPU
             // (workers + q) % ncpu — workers first, then dispatchers,
             // so on a big enough machine every thread owns a core
};

/// Every runtime knob in one validated place. The constructor calls
/// validate() and throws std::invalid_argument with the exact error
/// string below — no silent clamping (the old RuntimeOptions clamped
/// max_batch=0 to 1 in place; now it is a configuration error).
struct RuntimeConfig {
  /// Ingress queues (RSS RX queues). port(q) for q in [0, ingress_queues).
  std::size_t ingress_queues = 1;
  /// Per-(queue,worker) ring slots (rounded up to a power of two).
  /// Bounds the in-flight window per lane.
  std::size_t ring_capacity = 1024;
  /// Largest burst a worker feeds one process_batch call.
  std::size_t max_batch = 64;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  PlacementPolicy placement = PlacementPolicy::kCompact;
  /// Explicit per-worker CPU map (NUMA-aware deployments). Empty means
  /// "use `placement`"; otherwise it must name one CPU per worker, and
  /// a pin that fails at runtime shows up in RuntimeStats.
  std::vector<int> worker_cpus;
  /// What workers do with survivors: collect for inspection (default),
  /// recycle into the arena (closed-loop benches), or forward into the
  /// per-worker egress lanes (the appliance path — a consumer must be
  /// draining every lane, or kBlock workers stall on a full lane
  /// exactly like a port on a full ingress ring).
  EgressMode egress = EgressMode::kCollect;
  /// Freelist bound for each worker's PacketArena.
  std::size_t arena_max_free = 4096;
  /// When false the ctor does not launch threads; start() (or flush(),
  /// which implies it) launches them later. Lets tests fill rings
  /// deterministically before any worker runs.
  bool start_workers = true;

  /// Hard cap on ingress_queues — far above any sane deployment, it
  /// exists so a garbage value fails validation instead of allocating
  /// an absurd ring fabric.
  static constexpr std::size_t kMaxIngressQueues = 256;

  /// Empty string when the configuration is usable with `worker_count`
  /// workers; otherwise a human-readable description of the first
  /// problem found (the exact message the constructor throws with).
  [[nodiscard]] std::string validate(std::size_t worker_count) const;
};

/// Deprecated alias from the single-dispatcher era; new code should
/// spell RuntimeConfig.
using RuntimeOptions = RuntimeConfig;

/// Per-worker counters. Producer-side fields (submitted/dropped/
/// blocked_waits, summed over the worker's lanes) are exact once the
/// submitting ports are quiet; worker-side fields are exact once the
/// runtime is quiescent (flush()/stop() returned).
struct WorkerCounters {
  std::uint64_t submitted = 0;      // packets ports enqueued to this worker
  std::uint64_t dropped = 0;        // kDrop ring-full rejections
  std::uint64_t blocked_waits = 0;  // kBlock ring-full wait episodes
  std::uint64_t processed = 0;      // packets fully handled by the worker
  std::uint64_t survivors = 0;      // packets that produced wire output
  std::uint64_t egress_dropped = 0;  // survivors lost to a full egress
                                     // lane (kDrop policy, kForward mode)
  std::uint64_t batches = 0;        // process_batch calls
  std::uint64_t max_batch = 0;      // largest single burst
  /// CPU the worker thread is actually pinned to, -1 when unpinned
  /// (PlacementPolicy::kNone or a failed pin).
  int pinned_cpu = -1;
  /// 1 when a requested pin failed (observable NUMA/affinity
  /// misconfiguration), 0 otherwise.
  std::uint64_t affinity_failures = 0;
};

/// Per-ingress-queue counters: the same producer-side numbers sliced
/// by port instead of by worker.
struct QueueCounters {
  std::uint64_t submitted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t blocked_waits = 0;
};

struct RuntimeStats {
  std::vector<WorkerCounters> workers;
  std::vector<QueueCounters> queues;
  [[nodiscard]] WorkerCounters total() const noexcept {
    WorkerCounters t;
    t.pinned_cpu = -1;  // meaningless in aggregate
    for (const WorkerCounters& w : workers) {
      t.submitted += w.submitted;
      t.dropped += w.dropped;
      t.blocked_waits += w.blocked_waits;
      t.processed += w.processed;
      t.survivors += w.survivors;
      t.egress_dropped += w.egress_dropped;
      t.batches += w.batches;
      t.max_batch = t.max_batch > w.max_batch ? t.max_batch : w.max_batch;
      t.affinity_failures += w.affinity_failures;
    }
    return t;
  }
};

class ShardRuntime;

/// Handle to one ingress queue of a ShardRuntime — the explicit form
/// of what used to be ShardRuntime::submit()'s hidden single-caller
/// constraint. A port is a lightweight view (copyable, trivially
/// destructible); all copies address the same queue and together count
/// as ONE producer: at any moment at most one thread may be calling
/// submit()/submit_burst() on a given queue. Distinct queues are fully
/// independent and may be driven concurrently from distinct threads —
/// that is the whole point.
class IngressPort {
 public:
  IngressPort() = default;  // null handle; valid() is false

  [[nodiscard]] bool valid() const noexcept { return runtime_ != nullptr; }
  [[nodiscard]] std::size_t queue() const noexcept { return queue_; }

  /// Dispatches one packet through this queue. `now` is the packet's
  /// arrival timestamp, forwarded to the worker's drain so epoch checks
  /// behave exactly as on the serial path; timestamps must be
  /// non-decreasing per port. `reply` is the reflect-to-source endpoint
  /// carried to the egress lanes in kForward mode (leave defaulted when
  /// nothing downstream reflects — identical endpoints never force a
  /// burst split, so the default costs nothing). Returns false iff the
  /// packet was dropped (kDrop policy with a full ring, or the runtime
  /// is stopped).
  bool submit(net::Packet&& pkt, sim::SimTime now = 0,
              EgressEndpoint reply = {});

  /// Dispatches a whole burst (each packet moved-from on acceptance);
  /// returns how many were accepted. Under kBlock that is all of them
  /// (or the count accepted before stop()); under kDrop ring-full
  /// packets are dropped individually and counted, exactly as if
  /// submit() had been called per packet.
  std::size_t submit_burst(std::span<net::Packet> pkts, sim::SimTime now = 0);

  /// Blocks until every packet *this port* accepted has been processed
  /// (workers are started if they were not yet). Other ports' packets
  /// may still be in flight; ShardRuntime::flush() waits for all.
  void flush();

 private:
  friend class ShardRuntime;
  IngressPort(ShardRuntime* runtime, std::size_t queue) noexcept
      : runtime_(runtime), queue_(queue) {}

  ShardRuntime* runtime_ = nullptr;
  std::size_t queue_ = 0;
};

/// Consumer handle for one worker's egress lane (kForward mode) — the
/// mirror of IngressPort: a lightweight copyable view where all copies
/// address the same lane and together count as ONE consumer; at any
/// moment at most one thread may be calling pop_burst() on a given
/// lane. Distinct lanes are fully independent. Items pop in the exact
/// order the worker processed them, so transmitting a lane FIFO
/// preserves that shard's wire-output order on the wire.
class EgressLane {
 public:
  EgressLane() = default;  // null handle; valid() is false

  [[nodiscard]] bool valid() const noexcept { return runtime_ != nullptr; }
  [[nodiscard]] std::size_t lane() const noexcept { return lane_; }

  /// Pops up to `max` survivors into `out` (appended; not cleared).
  /// Returns how many were popped — 0 when the lane is currently
  /// empty, which is definitive only once the runtime is quiescent or
  /// stopped.
  std::size_t pop_burst(std::vector<EgressItem>& out, std::size_t max);

  /// Approximate occupancy (exact from the consumer side when the
  /// producing worker is quiescent).
  [[nodiscard]] std::size_t size_approx() const noexcept;

 private:
  friend class ShardRuntime;
  EgressLane(ShardRuntime* runtime, std::size_t lane) noexcept
      : runtime_(runtime), lane_(lane) {}

  ShardRuntime* runtime_ = nullptr;
  std::size_t lane_ = 0;
};

class ShardRuntime {
 public:
  /// `worker_count` workers (>= 1), all sharing `root_key` exactly like
  /// the shards of a ShardedNeutralizer. Throws std::invalid_argument
  /// with RuntimeConfig::validate()'s message on a bad configuration.
  ShardRuntime(std::size_t worker_count, const core::NeutralizerConfig& config,
               const crypto::AesKey& root_key, RuntimeConfig config_in = {});
  ~ShardRuntime();  // stop(): drains queued packets, joins workers

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t ingress_queues() const noexcept {
    return config_.ingress_queues;
  }
  [[nodiscard]] const RuntimeConfig& config() const noexcept {
    return config_;
  }
  /// Deprecated spelling of config() from the single-dispatcher era.
  [[nodiscard]] const RuntimeConfig& options() const noexcept {
    return config_;
  }

  /// Launches the worker threads; idempotent, thread-safe, no-op after
  /// stop().
  void start();

  /// The ingress handle for queue q (< ingress_queues()). See
  /// IngressPort for the one-producer-per-queue rule.
  [[nodiscard]] IngressPort port(std::size_t q) noexcept;

  /// The egress handle for worker w's survivor lane (kForward mode
  /// only — asserts on any other EgressMode). See EgressLane for the
  /// one-consumer-per-lane rule.
  [[nodiscard]] EgressLane egress_lane(std::size_t w) noexcept;

  /// Where the dispatch hash sends `pkt` — same function, same answer
  /// as ShardedNeutralizer::shard_for.
  [[nodiscard]] std::size_t shard_for(const net::Packet& pkt) const noexcept;

  /// Blocks until every packet accepted by every port has been
  /// processed (workers are started if they were not yet). On return
  /// the runtime is quiescent and every accessor below is exact —
  /// provided no port is being driven concurrently, in which case
  /// quiescence is a moving target and the wait is best-effort.
  void flush();

  /// Drains everything already queued on every lane, then joins the
  /// workers. Idempotent; submissions after stop() are rejected. Ports
  /// must be quiet (no concurrent submit) when stop() is called. The
  /// destructor calls it.
  void stop();

  /// True when every accepted packet has been processed and published.
  [[nodiscard]] bool quiescent() const noexcept;

  // --- quiescence-gated accessors (assert quiescent()) ---------------

  /// Worker i's wire output in processing order. With one ingress
  /// queue this is byte-identical to the same shard's drain output on
  /// the serial ShardedNeutralizer; with several queues the per-shard
  /// *set* of packets is identical but the interleaving across ports
  /// is the merge order (per-port FIFO, like hardware RSS).
  [[nodiscard]] std::vector<net::Packet>& shard_egress(std::size_t i);
  /// All shards' egress merged in shard-major order (shard 0's stream,
  /// then shard 1's, ...) — the same aggregate order the serial
  /// harnesses produce when draining shard 0..N-1; moves the packets
  /// out of the per-shard buffers.
  [[nodiscard]] std::vector<net::Packet> merged_egress();
  /// Sum of every worker's NeutralizerStats.
  [[nodiscard]] core::NeutralizerStats aggregate_stats() const;
  [[nodiscard]] const core::Neutralizer& shard(std::size_t i) const;
  /// Mutable shard access (e.g. §3.4 dynamic-address translation from
  /// a sim adapter between instants); same quiescence contract.
  [[nodiscard]] core::Neutralizer& shard_mut(std::size_t i);
  [[nodiscard]] net::PacketArena& arena(std::size_t i);

  /// Counter snapshot: producer-side fields exact once the submitting
  /// ports are quiet, worker-side fields exact at quiescence (relaxed
  /// reads otherwise).
  [[nodiscard]] RuntimeStats stats() const;

 private:
  friend class IngressPort;
  friend class EgressLane;

  // One slot of the port→worker ring: the packet, its arrival
  // timestamp (workers split bursts on timestamp changes so a burst
  // never spans an epoch-visible instant), the source queue (so the
  // worker credits the right lane's processed counter), and the
  // reflect-to-source endpoint forwarded to the egress lane.
  struct Ingress {
    net::Packet pkt;
    sim::SimTime now = 0;
    std::uint32_t queue = 0;
    EgressEndpoint reply;
  };

  // One (queue, worker) edge of the fabric: an SPSC ring plus its
  // counters. The queue's producer thread is the only writer of the
  // producer-side counters (single-writer relaxed atomics, so stats()
  // may read them from anywhere); the worker is the only writer of
  // `processed`, released after the burst's survivors are visible —
  // that release/acquire pair is what makes reading worker state from
  // the control thread safe at quiescence.
  struct Lane {
    explicit Lane(std::size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<Ingress> ring;
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> blocked_waits{0};
    alignas(kCacheLine) std::atomic<std::uint64_t> processed{0};
  };

  struct Worker {
    Worker(const core::NeutralizerConfig& config,
           const crypto::AesKey& root_key, const RuntimeConfig& cfg)
        : service(config, root_key),
          arena(cfg.arena_max_free),
          // The egress lane exists only in kForward mode; a 1-slot
          // stub keeps the member unconditional without the memory.
          tx_ring(cfg.egress == EgressMode::kForward ? cfg.ring_capacity
                                                     : 1) {
      lanes.reserve(cfg.ingress_queues);
      for (std::size_t q = 0; q < cfg.ingress_queues; ++q) {
        lanes.push_back(std::make_unique<Lane>(cfg.ring_capacity));
      }
    }

    core::Neutralizer service;
    net::PacketArena arena;
    std::vector<std::unique_ptr<Lane>> lanes;  // one per ingress queue
    // Survivor lane (kForward): this worker is the single producer,
    // one transmit thread the single consumer (EgressLane handle).
    SpscRing<EgressItem> tx_ring;
    std::vector<net::Packet> pending;   // worker-local burst staging
    std::vector<net::Packet> egress;    // survivors, processing order
    std::vector<net::Packet> scratch_egress;  // kForward drain buffer
    std::vector<Ingress> staging;       // ring pop + merge buffer
    std::vector<std::uint64_t> lane_counts;  // per-group credit scratch

    // Worker-published aggregates (relaxed; exact at quiescence).
    std::atomic<std::uint64_t> survivors{0};
    std::atomic<std::uint64_t> egress_dropped{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> max_batch{0};
    // Affinity outcome, published at thread start (relaxed).
    std::atomic<int> pinned_cpu{-1};
    std::atomic<bool> affinity_failed{false};

    std::thread thread;
  };

  RuntimeConfig config_;
  // unique_ptr keeps worker addresses stable across the vector (threads
  // hold references) and lets Worker carry atomics (non-movable).
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> stopped_{false};
  // start() may now be reached from several port threads at once (a
  // blocking submit on a full ring starts the workers); the mutex makes
  // the launch race-free. Cold path only.
  std::mutex start_mutex_;
  bool started_ = false;  // guarded by start_mutex_

  bool submit_on_queue(std::size_t queue, net::Packet&& pkt, sim::SimTime now,
                       EgressEndpoint reply);
  bool queue_quiescent(std::size_t queue) const noexcept;
  void worker_loop(Worker& w, std::size_t index);
  void emit_burst(Worker& w, sim::SimTime now, EgressEndpoint reply);
  void assert_quiescent() const;
};

/// CPU the placement policy assigns to worker `m` of `workers`, or -1
/// for "do not pin". Exposed so ingress front ends (UdpIngestor) can
/// place their queue threads consistently: queue q maps to
/// placement_cpu_for_ingress(cfg, q, workers).
[[nodiscard]] int placement_cpu_for_worker(const RuntimeConfig& cfg,
                                           std::size_t m,
                                           std::size_t workers) noexcept;
[[nodiscard]] int placement_cpu_for_ingress(const RuntimeConfig& cfg,
                                            std::size_t q,
                                            std::size_t workers) noexcept;
/// CPU for transmit thread `t`: after the workers and the ingress
/// threads, so a big enough machine gives every stage its own core —
/// worker 0..M-1, ingress M..M+Q-1, tx M+Q..M+Q+T-1 (all mod ncpu).
[[nodiscard]] int placement_cpu_for_egress(const RuntimeConfig& cfg,
                                           std::size_t t, std::size_t workers,
                                           std::size_t ingress) noexcept;

/// Best-effort pin of the calling thread to `cpu` (no-op, returning
/// true, when cpu < 0). Returns false when the platform call fails —
/// callers surface that in their stats rather than swallowing it.
bool pin_current_thread(int cpu) noexcept;

}  // namespace nn::runtime
