#include "runtime/shard_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "core/sharded_box.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace nn::runtime {

namespace {

/// Idle backoff shared by the ports' blocking waits and the workers'
/// empty polls: stay on cheap yields while the counterpart is likely
/// mid-burst, drop to a short sleep once the queue has clearly gone
/// quiet — essential on single-core hosts, where a spinning thread
/// would stall the very thread it is waiting on for a whole scheduling
/// quantum.
struct Backoff {
  unsigned spins = 0;
  void pause() {
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() { spins = 0; }
};

/// Single-writer counter bump: the only writer is the owning thread,
/// so load+store (no lock prefix) beats fetch_add on the hot path.
inline void bump(std::atomic<std::uint64_t>& c, std::uint64_t by,
                 std::memory_order publish_order) noexcept {
  c.store(c.load(std::memory_order_relaxed) + by, publish_order);
}

}  // namespace

bool pin_current_thread(int cpu) noexcept {
  if (cpu < 0) return true;  // "do not pin" is trivially successful
#if defined(__linux__)
  if (cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;  // no affinity support on this platform: surfaced, not hidden
#endif
}

int placement_cpu_for_worker(const RuntimeConfig& cfg, std::size_t m,
                             std::size_t workers) noexcept {
  (void)workers;
  if (!cfg.worker_cpus.empty()) {
    return cfg.worker_cpus[m % cfg.worker_cpus.size()];
  }
  if (cfg.placement == PlacementPolicy::kNone) return -1;
  const unsigned cpus = std::thread::hardware_concurrency();
  return cpus == 0 ? static_cast<int>(m) : static_cast<int>(m % cpus);
}

int placement_cpu_for_ingress(const RuntimeConfig& cfg, std::size_t q,
                              std::size_t workers) noexcept {
  if (cfg.placement == PlacementPolicy::kNone) return -1;
  const unsigned cpus = std::thread::hardware_concurrency();
  return cpus == 0 ? static_cast<int>(workers + q)
                   : static_cast<int>((workers + q) % cpus);
}

int placement_cpu_for_egress(const RuntimeConfig& cfg, std::size_t t,
                             std::size_t workers,
                             std::size_t ingress) noexcept {
  if (cfg.placement == PlacementPolicy::kNone) return -1;
  const unsigned cpus = std::thread::hardware_concurrency();
  const std::size_t slot = workers + ingress + t;
  return cpus == 0 ? static_cast<int>(slot)
                   : static_cast<int>(slot % cpus);
}

std::string RuntimeConfig::validate(std::size_t worker_count) const {
  if (worker_count == 0) {
    return "RuntimeConfig: worker_count must be >= 1 "
           "(the cluster needs at least one worker core)";
  }
  if (ingress_queues == 0) {
    return "RuntimeConfig: ingress_queues must be >= 1 "
           "(every packet enters through an IngressPort)";
  }
  if (ingress_queues > kMaxIngressQueues) {
    return "RuntimeConfig: ingress_queues must be <= " +
           std::to_string(kMaxIngressQueues) +
           " (kMaxIngressQueues; got " + std::to_string(ingress_queues) + ")";
  }
  if (ring_capacity == 0) {
    return "RuntimeConfig: ring_capacity must be >= 1 "
           "(it is rounded up to a power of two)";
  }
  if (max_batch == 0) {
    return "RuntimeConfig: max_batch must be >= 1 "
           "(a zero-packet burst would livelock the worker drain loop)";
  }
  if (!worker_cpus.empty() && worker_cpus.size() != worker_count) {
    return "RuntimeConfig: worker_cpus must name exactly one CPU per worker "
           "(" + std::to_string(worker_cpus.size()) + " entries for " +
           std::to_string(worker_count) + " workers)";
  }
  for (const int cpu : worker_cpus) {
    if (cpu < 0) {
      return "RuntimeConfig: worker_cpus entries must be >= 0 "
             "(use PlacementPolicy::kNone to leave threads unpinned)";
    }
  }
  return {};
}

ShardRuntime::ShardRuntime(std::size_t worker_count,
                           const core::NeutralizerConfig& config,
                           const crypto::AesKey& root_key,
                           RuntimeConfig config_in)
    : config_(std::move(config_in)) {
  const std::string err = config_.validate(worker_count);
  if (!err.empty()) throw std::invalid_argument(err);
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    // Worker state (Neutralizer, arena, ring fabric, backend binding
    // inside the AES contexts) is fully constructed here, on the
    // control thread, before any worker thread exists — the
    // std::thread constructor in start() is the happens-before edge
    // that publishes it.
    workers_.push_back(std::make_unique<Worker>(config, root_key, config_));
  }
  if (config_.start_workers) start();
}

ShardRuntime::~ShardRuntime() { stop(); }

void ShardRuntime::start() {
  // A blocking submit on a full ring may call start() from any port
  // thread; the mutex serializes the (cold) launch path.
  std::lock_guard<std::mutex> lock(start_mutex_);
  if (started_ || stopped_.load(std::memory_order_acquire)) return;
  started_ = true;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    w.thread = std::thread([this, &w, i] { worker_loop(w, i); });
  }
}

IngressPort ShardRuntime::port(std::size_t q) noexcept {
  assert(q < config_.ingress_queues && "port(q): no such ingress queue");
  return IngressPort(this, q);
}

std::size_t ShardRuntime::shard_for(const net::Packet& pkt) const noexcept {
  return core::shard_for_packet(pkt, workers_.size());
}

bool ShardRuntime::submit_on_queue(std::size_t queue, net::Packet&& pkt,
                                   sim::SimTime now, EgressEndpoint reply) {
  if (stopped_.load(std::memory_order_acquire)) return false;
  Worker& w = *workers_[shard_for(pkt)];
  Lane& lane = *w.lanes[queue];
  Ingress slot{std::move(pkt), now, static_cast<std::uint32_t>(queue),
               reply};
  if (!lane.ring.try_push(std::move(slot))) {
    if (config_.backpressure == BackpressurePolicy::kDrop) {
      bump(lane.dropped, 1, std::memory_order_relaxed);
      return false;  // slot (and the packet in it) destroyed here
    }
    bump(lane.blocked_waits, 1, std::memory_order_relaxed);
    // Blocking on a full ring only ends when a worker drains it — make
    // sure the workers exist even under start_workers=false (start()
    // is idempotent), or this loop would spin forever.
    start();
    Backoff backoff;
    do {
      backoff.pause();
    } while (!lane.ring.try_push(std::move(slot)));
  }
  bump(lane.submitted, 1, std::memory_order_relaxed);
  return true;
}

bool IngressPort::submit(net::Packet&& pkt, sim::SimTime now,
                         EgressEndpoint reply) {
  assert(valid() && "submit() on a null IngressPort");
  return runtime_->submit_on_queue(queue_, std::move(pkt), now, reply);
}

std::size_t IngressPort::submit_burst(std::span<net::Packet> pkts,
                                      sim::SimTime now) {
  assert(valid() && "submit_burst() on a null IngressPort");
  std::size_t accepted = 0;
  for (net::Packet& pkt : pkts) {
    if (runtime_->submit_on_queue(queue_, std::move(pkt), now, {})) {
      ++accepted;
    }
  }
  return accepted;
}

EgressLane ShardRuntime::egress_lane(std::size_t w) noexcept {
  assert(config_.egress == EgressMode::kForward &&
         "egress_lane(): runtime is not in EgressMode::kForward");
  assert(w < workers_.size() && "egress_lane(w): no such worker");
  return EgressLane(this, w);
}

std::size_t EgressLane::pop_burst(std::vector<EgressItem>& out,
                                  std::size_t max) {
  assert(valid() && "pop_burst() on a null EgressLane");
  auto& ring = runtime_->workers_[lane_]->tx_ring;
  const std::size_t base = out.size();
  out.resize(base + max);
  const std::size_t got = ring.pop_batch(out.data() + base, max);
  out.resize(base + got);
  return got;
}

std::size_t EgressLane::size_approx() const noexcept {
  assert(valid() && "size_approx() on a null EgressLane");
  return runtime_->workers_[lane_]->tx_ring.size_approx();
}

void IngressPort::flush() {
  assert(valid() && "flush() on a null IngressPort");
  runtime_->start();
  Backoff backoff;
  while (!runtime_->queue_quiescent(queue_)) backoff.pause();
}

bool ShardRuntime::queue_quiescent(std::size_t queue) const noexcept {
  for (const auto& w : workers_) {
    const Lane& lane = *w->lanes[queue];
    if (lane.processed.load(std::memory_order_acquire) !=
        lane.submitted.load(std::memory_order_relaxed)) {
      return false;
    }
  }
  return true;
}

bool ShardRuntime::quiescent() const noexcept {
  for (std::size_t q = 0; q < config_.ingress_queues; ++q) {
    if (!queue_quiescent(q)) return false;
  }
  return true;
}

void ShardRuntime::flush() {
  start();
  Backoff backoff;
  while (!quiescent()) backoff.pause();
}

void ShardRuntime::stop() {
  if (stopped_.load(std::memory_order_acquire)) return;
  // Workers only exit once every one of their rings is empty, so
  // packets in flight at the moment stop() is called are still
  // processed — shutdown loses nothing any port accepted.
  // Never-started workers are launched first for the same reason.
  start();
  stop_flag_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  stopped_.store(true, std::memory_order_release);
  assert(quiescent());
}

void ShardRuntime::worker_loop(Worker& w, std::size_t index) {
  const int want = placement_cpu_for_worker(config_, index, workers_.size());
  if (want >= 0) {
    const bool ok = pin_current_thread(want);
    w.pinned_cpu.store(ok ? want : -1, std::memory_order_relaxed);
    w.affinity_failed.store(!ok, std::memory_order_relaxed);
  }
  const std::size_t queues = config_.ingress_queues;
  w.staging.resize(config_.max_batch);
  w.lane_counts.assign(queues, 0);
  // Rotating scan start keeps one busy queue from starving the others
  // when a single pop fills max_batch.
  std::size_t scan_from = 0;
  Backoff backoff;
  for (;;) {
    std::size_t got = 0;
    for (std::size_t k = 0; k < queues && got < config_.max_batch; ++k) {
      const std::size_t q = queues > 1 ? (scan_from + k) % queues : 0;
      got += w.lanes[q]->ring.pop_batch(w.staging.data() + got,
                                        config_.max_batch - got);
    }
    if (queues > 1) scan_from = (scan_from + 1) % queues;
    if (got == 0) {
      // The stop flag is checked only when every ring reads empty, and
      // the flag is raised only once the ports are quiet (stop()'s
      // contract): observing it here with empty rings means there is
      // nothing left to drain, so exiting is race-free.
      if (stop_flag_.load(std::memory_order_acquire)) {
        bool empty = true;
        for (const auto& lane : w.lanes) empty = empty && lane->ring.empty();
        if (empty) break;
      }
      backoff.pause();
      continue;
    }
    backoff.reset();
    // Stamp-order merge across the worker's rings: pop_batch kept each
    // ring's FIFO order, the stable sort interleaves the rings by
    // arrival timestamp without reordering any single port's stream.
    // With one queue the burst is already in submission order.
    if (queues > 1 && got > 1) {
      std::stable_sort(w.staging.begin(),
                       w.staging.begin() + static_cast<std::ptrdiff_t>(got),
                       [](const Ingress& a, const Ingress& b) {
                         return a.now < b.now;
                       });
    }
    // Split the merged burst wherever the arrival timestamp changes: a
    // single process_batch call sees one `now`, and epoch validation
    // must match what the serial path would have decided per packet.
    // In kForward mode the burst also splits on reply-endpoint changes
    // so every sub-burst's survivors share one reflect destination
    // (batch boundaries never change output bytes, so the extra splits
    // cost throughput only, never correctness — and unrecorded
    // endpoints are all equal, so rewrite-mode feeds keep full bursts).
    const bool forward = config_.egress == EgressMode::kForward;
    std::size_t i = 0;
    while (i < got) {
      const sim::SimTime now = w.staging[i].now;
      const EgressEndpoint reply = w.staging[i].reply;
      w.pending.clear();
      std::fill(w.lane_counts.begin(), w.lane_counts.end(), 0);
      while (i < got && w.staging[i].now == now &&
             (!forward || w.staging[i].reply == reply)) {
        ++w.lane_counts[w.staging[i].queue];
        w.pending.push_back(std::move(w.staging[i++].pkt));
      }
      emit_burst(w, now, reply);
      // Published last, one release per contributing lane: pairs with
      // the acquire in queue_quiescent(), making everything above —
      // egress contents included — visible to whoever observes the
      // counts meet.
      for (std::size_t q = 0; q < queues; ++q) {
        if (w.lane_counts[q] == 0) continue;
        bump(w.lanes[q]->processed, w.lane_counts[q],
             std::memory_order_release);
      }
    }
  }
}

void ShardRuntime::emit_burst(Worker& w, sim::SimTime now,
                              EgressEndpoint reply) {
  const std::uint64_t burst = w.pending.size();
  std::size_t out = 0;
  switch (config_.egress) {
    case EgressMode::kCollect:
      out = w.service.drain_into(w.pending, now, &w.arena, w.egress);
      break;
    case EgressMode::kRecycle: {
      // Closed-loop mode: survivors go straight back to the arena so
      // benchmarks can run indefinitely without accumulating output.
      const std::size_t kept = w.service.process_batch(
          {w.pending.data(), w.pending.size()}, now, &w.arena);
      for (std::size_t k = 0; k < kept; ++k) {
        w.arena.release(std::move(w.pending[k]));
      }
      w.pending.clear();
      out = kept;
      break;
    }
    case EgressMode::kForward: {
      // Appliance mode: survivors go to this worker's egress lane in
      // processing order. The lane obeys the runtime's backpressure
      // policy: kBlock paces the worker to its transmit thread (so a
      // live consumer must be draining the lane), kDrop sheds and
      // counts, like a full NIC TX queue.
      w.scratch_egress.clear();
      out = w.service.drain_into(w.pending, now, &w.arena, w.scratch_egress);
      for (net::Packet& pkt : w.scratch_egress) {
        EgressItem item{std::move(pkt), reply};
        if (w.tx_ring.try_push(std::move(item))) continue;
        if (config_.backpressure == BackpressurePolicy::kDrop) {
          bump(w.egress_dropped, 1, std::memory_order_relaxed);
          continue;
        }
        Backoff backoff;
        do {
          backoff.pause();
        } while (!w.tx_ring.try_push(std::move(item)));
      }
      w.scratch_egress.clear();
      break;
    }
  }
  bump(w.survivors, out, std::memory_order_relaxed);
  bump(w.batches, 1, std::memory_order_relaxed);
  std::uint64_t seen = w.max_batch.load(std::memory_order_relaxed);
  while (burst > seen && !w.max_batch.compare_exchange_weak(
                             seen, burst, std::memory_order_relaxed)) {
  }
}

void ShardRuntime::assert_quiescent() const {
  assert(quiescent() &&
         "worker state may only be read at quiescence (flush()/stop())");
}

std::vector<net::Packet>& ShardRuntime::shard_egress(std::size_t i) {
  assert_quiescent();
  return workers_[i]->egress;
}

std::vector<net::Packet> ShardRuntime::merged_egress() {
  assert_quiescent();
  std::vector<net::Packet> out;
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->egress.size();
  out.reserve(total);
  for (auto& w : workers_) {
    for (auto& pkt : w->egress) out.push_back(std::move(pkt));
    w->egress.clear();
  }
  return out;
}

core::NeutralizerStats ShardRuntime::aggregate_stats() const {
  assert_quiescent();
  core::NeutralizerStats total;
  for (const auto& w : workers_) total += w->service.stats();
  return total;
}

const core::Neutralizer& ShardRuntime::shard(std::size_t i) const {
  assert_quiescent();
  return workers_[i]->service;
}

core::Neutralizer& ShardRuntime::shard_mut(std::size_t i) {
  assert_quiescent();
  return workers_[i]->service;
}

net::PacketArena& ShardRuntime::arena(std::size_t i) {
  assert_quiescent();
  return workers_[i]->arena;
}

RuntimeStats ShardRuntime::stats() const {
  RuntimeStats s;
  s.workers.reserve(workers_.size());
  s.queues.resize(config_.ingress_queues);
  for (const auto& w : workers_) {
    WorkerCounters c;
    for (std::size_t q = 0; q < config_.ingress_queues; ++q) {
      const Lane& lane = *w->lanes[q];
      const std::uint64_t submitted =
          lane.submitted.load(std::memory_order_relaxed);
      const std::uint64_t dropped =
          lane.dropped.load(std::memory_order_relaxed);
      const std::uint64_t blocked =
          lane.blocked_waits.load(std::memory_order_relaxed);
      c.submitted += submitted;
      c.dropped += dropped;
      c.blocked_waits += blocked;
      c.processed += lane.processed.load(std::memory_order_acquire);
      s.queues[q].submitted += submitted;
      s.queues[q].dropped += dropped;
      s.queues[q].blocked_waits += blocked;
    }
    c.survivors = w->survivors.load(std::memory_order_relaxed);
    c.egress_dropped = w->egress_dropped.load(std::memory_order_relaxed);
    c.batches = w->batches.load(std::memory_order_relaxed);
    c.max_batch = w->max_batch.load(std::memory_order_relaxed);
    c.pinned_cpu = w->pinned_cpu.load(std::memory_order_relaxed);
    c.affinity_failures =
        w->affinity_failed.load(std::memory_order_relaxed) ? 1 : 0;
    s.workers.push_back(c);
  }
  return s;
}

}  // namespace nn::runtime
