#include "runtime/shard_runtime.hpp"

#include <cassert>
#include <chrono>

#include "core/sharded_box.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace nn::runtime {

namespace {

/// Best-effort pinning of the calling thread to `cpu`; failures are
/// ignored (a container may expose fewer CPUs than advertised, and a
/// mis-pinned worker is merely slower, never wrong).
void pin_current_thread(std::size_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

/// Idle backoff shared by the dispatcher's waits and the worker's empty
/// polls: stay on cheap yields while the counterpart is likely mid-
/// burst, drop to a short sleep once the queue has clearly gone quiet —
/// essential on single-core hosts, where a spinning thread would stall
/// the very thread it is waiting on for a whole scheduling quantum.
struct Backoff {
  unsigned spins = 0;
  void pause() {
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() { spins = 0; }
};

}  // namespace

ShardRuntime::ShardRuntime(std::size_t worker_count,
                           const core::NeutralizerConfig& config,
                           const crypto::AesKey& root_key,
                           RuntimeOptions options)
    : options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;  // 0 would livelock
  const std::size_t n = worker_count == 0 ? 1 : worker_count;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Worker state (Neutralizer, arena, backend binding inside the AES
    // contexts) is fully constructed here, on the control thread,
    // before any worker thread exists — the std::thread constructor in
    // start() is the happens-before edge that publishes it.
    workers_.push_back(std::make_unique<Worker>(config, root_key, options_));
  }
  if (options_.start_workers) start();
}

ShardRuntime::~ShardRuntime() { stop(); }

void ShardRuntime::start() {
  if (started_ || stopped_) return;
  started_ = true;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    w.thread = std::thread([this, &w, i] { worker_loop(w, i); });
  }
}

std::size_t ShardRuntime::shard_for(const net::Packet& pkt) const noexcept {
  return core::shard_for_packet(pkt, workers_.size());
}

bool ShardRuntime::submit(net::Packet&& pkt, sim::SimTime now) {
  assert(!stopped_ && "submit() after stop()");
  if (stopped_) return false;
  Worker& w = *workers_[shard_for(pkt)];
  Ingress slot{std::move(pkt), now};
  if (!w.ring.try_push(std::move(slot))) {
    if (options_.backpressure == BackpressurePolicy::kDrop) {
      ++w.dropped;
      return false;  // slot (and the packet in it) destroyed here
    }
    ++w.blocked_waits;
    // Blocking on a full ring only ends when a worker drains it — make
    // sure the workers exist even under start_workers=false (start()
    // is idempotent), or this loop would spin forever.
    start();
    Backoff backoff;
    do {
      backoff.pause();
    } while (!w.ring.try_push(std::move(slot)));
  }
  ++w.submitted;
  return true;
}

bool ShardRuntime::quiescent() const noexcept {
  for (const auto& w : workers_) {
    if (w->processed.load(std::memory_order_acquire) != w->submitted) {
      return false;
    }
  }
  return true;
}

void ShardRuntime::flush() {
  start();
  Backoff backoff;
  while (!quiescent()) backoff.pause();
}

void ShardRuntime::stop() {
  if (stopped_) return;
  // Workers only exit once their ring is empty, so packets in flight at
  // the moment stop() is called are still processed — shutdown loses
  // nothing submit() accepted. Never-started workers are launched first
  // for the same reason.
  start();
  stop_flag_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  stopped_ = true;
  assert(quiescent());
}

void ShardRuntime::worker_loop(Worker& w, std::size_t index) {
  if (options_.pin_threads) {
    const unsigned cpus = std::thread::hardware_concurrency();
    pin_current_thread(cpus == 0 ? index : index % cpus);
  }
  w.staging.resize(options_.max_batch);
  Backoff backoff;
  for (;;) {
    const std::size_t n = w.ring.pop_batch(w.staging.data(), w.staging.size());
    if (n == 0) {
      // The stop flag is checked only when the ring reads empty, and
      // the flag is raised before join: once we observe it here there
      // will be no further pushes, so draining-then-exit is race-free.
      if (stop_flag_.load(std::memory_order_acquire) && w.ring.empty()) break;
      backoff.pause();
      continue;
    }
    backoff.reset();
    // Split the burst wherever the arrival timestamp changes: a single
    // process_batch call sees one `now`, and epoch validation must match
    // what the serial path would have decided per packet.
    std::size_t i = 0;
    while (i < n) {
      const sim::SimTime now = w.staging[i].now;
      w.pending.clear();
      while (i < n && w.staging[i].now == now) {
        w.pending.push_back(std::move(w.staging[i++].pkt));
      }
      const std::uint64_t burst = w.pending.size();
      std::size_t out = 0;
      if (options_.collect_egress) {
        out = w.service.drain_into(w.pending, now, &w.arena, w.egress);
      } else {
        // Closed-loop mode: survivors go straight back to the arena so
        // benchmarks can run indefinitely without accumulating output.
        const std::size_t kept = w.service.process_batch(
            {w.pending.data(), w.pending.size()}, now, &w.arena);
        for (std::size_t k = 0; k < kept; ++k) {
          w.arena.release(std::move(w.pending[k]));
        }
        w.pending.clear();
        out = kept;
      }
      w.survivors.fetch_add(out, std::memory_order_relaxed);
      w.batches.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t seen = w.max_batch.load(std::memory_order_relaxed);
      while (burst > seen && !w.max_batch.compare_exchange_weak(
                                 seen, burst, std::memory_order_relaxed)) {
      }
      // Published last: pairs with the acquire in quiescent(), making
      // everything above — egress contents included — visible to the
      // control thread once the counts meet.
      w.processed.fetch_add(burst, std::memory_order_release);
    }
  }
}

void ShardRuntime::assert_quiescent() const {
  assert(quiescent() &&
         "worker state may only be read at quiescence (flush()/stop())");
}

std::vector<net::Packet>& ShardRuntime::shard_egress(std::size_t i) {
  assert_quiescent();
  return workers_[i]->egress;
}

std::vector<net::Packet> ShardRuntime::merged_egress() {
  assert_quiescent();
  std::vector<net::Packet> out;
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->egress.size();
  out.reserve(total);
  for (auto& w : workers_) {
    for (auto& pkt : w->egress) out.push_back(std::move(pkt));
    w->egress.clear();
  }
  return out;
}

core::NeutralizerStats ShardRuntime::aggregate_stats() const {
  assert_quiescent();
  core::NeutralizerStats total;
  for (const auto& w : workers_) total += w->service.stats();
  return total;
}

const core::Neutralizer& ShardRuntime::shard(std::size_t i) const {
  assert_quiescent();
  return workers_[i]->service;
}

net::PacketArena& ShardRuntime::arena(std::size_t i) {
  assert_quiescent();
  return workers_[i]->arena;
}

RuntimeStats ShardRuntime::stats() const {
  RuntimeStats s;
  s.workers.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerCounters c;
    c.submitted = w->submitted;
    c.dropped = w->dropped;
    c.blocked_waits = w->blocked_waits;
    c.processed = w->processed.load(std::memory_order_acquire);
    c.survivors = w->survivors.load(std::memory_order_relaxed);
    c.batches = w->batches.load(std::memory_order_relaxed);
    c.max_batch = w->max_batch.load(std::memory_order_relaxed);
    s.workers.push_back(c);
  }
  return s;
}

}  // namespace nn::runtime
