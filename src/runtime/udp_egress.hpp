// UDP loopback back end for the threaded shard runtime — the mirror of
// UdpIngestor, closing the appliance loop: receive, neutralize,
// transmit. The runtime runs in EgressMode::kForward, so each worker
// pushes its survivors (in processing order) into a per-worker egress
// lane; the egressor owns every lane's consumer side and ships bursts
// with UdpSocket::send_batch (sendmmsg) to a configurable destination.
//
// Lane → socket mapping: one bound socket per lane, so every shard's
// output stream leaves through its own source port (read it back with
// lane_source_port(w)). That keeps the wire attribution exact — a
// receiver can demultiplex the transmitted stream per shard by source
// port and check byte-identity against the in-process collected egress
// — and it means a lane's datagrams are sent on a single socket in
// lane FIFO order, so the kernel preserves each shard's output order
// on loopback.
//
// Threading contract: transmit thread t owns lanes {w : w % tx_threads
// == t} — each lane has exactly one consumer (EgressLane's rule), each
// socket one sender. Threads are placed after the workers and ingress
// readers via placement_cpu_for_egress. Shutdown mirrors ingest:
// stop() raises the flag and the threads drain-then-exit, so every
// survivor a worker handed to a lane is transmitted (or counted as a
// send failure) before the thread joins. Call order for a clean
// appliance teardown: quiet the feeds, runtime.flush(), then
// egressor.flush()/stop(), then runtime.stop() — while workers might
// still block on a full lane (kBlock), a live egressor must be
// draining.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/udp.hpp"
#include "runtime/shard_runtime.hpp"

namespace nn::runtime {

struct UdpEgressConfig {
  /// Where survivors go on the wire.
  enum class Mode : std::uint8_t {
    kRewrite,  // every datagram to dest_addr:dest_port (next-hop mode)
    kReflect,  // each datagram back to the endpoint its originating
               // datagram came from (EgressItem::reply — the ingest
               // side must run with UdpIngestConfig::record_reply)
  };
  Mode mode = Mode::kRewrite;
  /// kRewrite destination. dest_port == 0 is a start() error in
  /// kRewrite mode (there is no "default" next hop).
  net::Ipv4Addr dest_addr = net::Ipv4Addr(127, 0, 0, 1);
  std::uint16_t dest_port = 0;
  /// Transmit threads; must be in [1, runtime.worker_count()]. Lanes
  /// are striped across threads (lane w -> thread w % tx_threads).
  std::size_t tx_threads = 1;
  /// Max datagrams per sendmmsg() call.
  std::size_t send_batch = 64;
  /// SO_SNDBUF request per lane socket.
  int sndbuf_bytes = 4 << 20;
};

/// Per-lane transmit counters. Exact once the egressor is stopped (or
/// flush() returned with the producers quiet); relaxed reads otherwise.
struct UdpEgressStats {
  std::uint64_t popped = 0;         ///< survivors taken off the lane
  std::uint64_t transmitted = 0;    ///< datagrams the kernel accepted
  std::uint64_t send_failures = 0;  ///< send errors + unreflectable
                                    ///< items (kReflect with no reply
                                    ///< endpoint recorded)
};

class UdpEgressor {
 public:
  /// The runtime must be configured with EgressMode::kForward and must
  /// outlive the egressor.
  UdpEgressor(ShardRuntime& runtime, UdpEgressConfig config = {});
  ~UdpEgressor();

  UdpEgressor(const UdpEgressor&) = delete;
  UdpEgressor& operator=(const UdpEgressor&) = delete;

  /// Opens one bound socket per worker lane and spawns the transmit
  /// threads. Returns false with error() set on a bad configuration
  /// (runtime not in kForward mode, kRewrite without a dest_port,
  /// tx_threads out of range) or a socket failure.
  bool start();

  /// Blocks until every survivor currently in the lanes has been
  /// popped and handed to the kernel (or counted as a failure).
  /// Meaningful only while the producers are quiet — i.e. after
  /// runtime.flush() — otherwise the wait is best-effort.
  void flush();

  /// Signals the transmit threads, lets them drain their lanes, joins
  /// them, closes the sockets. Counters stay readable. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }
  /// Source port lane w's datagrams leave from (0 before start()) —
  /// the per-shard demultiplexing key on the receive side.
  [[nodiscard]] std::uint16_t lane_source_port(std::size_t w) const;

  [[nodiscard]] UdpEgressStats stats(std::size_t w) const;
  [[nodiscard]] UdpEgressStats stats_total() const;

 private:
  struct TxLane {
    net::UdpSocket socket;
    EgressLane lane;  // consumer handle; this egressor is the consumer
    std::atomic<std::uint64_t> popped{0};
    std::atomic<std::uint64_t> transmitted{0};
    std::atomic<std::uint64_t> send_failures{0};
  };

  void tx_loop(std::size_t t);
  /// Sends items[first, first+count) — all sharing one destination —
  /// as one sendmmsg batch series on `lane`'s socket.
  void send_group(TxLane& lane, const std::vector<EgressItem>& items,
                  std::size_t first, std::size_t count);

  ShardRuntime& runtime_;
  UdpEgressConfig config_;
  std::vector<std::unique_ptr<TxLane>> lanes_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> running_{false};
  std::string error_;
};

}  // namespace nn::runtime
