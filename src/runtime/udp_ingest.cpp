#include "runtime/udp_ingest.hpp"

#include "net/ip.hpp"
#include "net/packet.hpp"

namespace nn::runtime {

UdpIngestor::UdpIngestor(ShardRuntime& runtime, UdpIngestConfig config)
    : runtime_(runtime), config_(config) {
  queues_.reserve(runtime_.ingress_queues());
  for (std::size_t q = 0; q < runtime_.ingress_queues(); ++q) {
    queues_.push_back(std::make_unique<Queue>());
  }
}

UdpIngestor::~UdpIngestor() { stop(); }

bool UdpIngestor::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  if (!net::UdpSocket::supported()) {
    error_ = "sockets unavailable on this platform";
    return false;
  }
  stop_flag_.store(false, std::memory_order_release);

  // First socket establishes the port (possibly kernel-assigned); the
  // rest join the SO_REUSEPORT group on the same port. REUSEPORT must
  // be set on every member including the first, or the later binds
  // fail with EADDRINUSE.
  std::uint16_t port = config_.udp_port;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    net::UdpSocket sock = net::UdpSocket::bind_loopback(port, true);
    if (!sock.valid()) {
      error_ = "queue " + std::to_string(q) + ": " + sock.error();
      for (auto& entry : queues_) entry->socket.close();
      return false;
    }
    sock.set_recv_buffer(config_.rcvbuf_bytes);
    sock.set_recv_timeout_ms(config_.recv_timeout_ms);
    if (q == 0) port = sock.local_port();
    queues_[q]->socket = std::move(sock);
  }
  port_ = port;

  running_.store(true, std::memory_order_release);
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    queues_[q]->thread = std::thread([this, q] { reader_loop(q); });
  }
  return true;
}

void UdpIngestor::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_flag_.store(true, std::memory_order_release);
  for (auto& entry : queues_) {
    if (entry->thread.joinable()) entry->thread.join();
  }
  for (auto& entry : queues_) entry->socket.close();
  running_.store(false, std::memory_order_release);
}

void UdpIngestor::reader_loop(std::size_t q) {
  Queue& queue = *queues_[q];
  (void)pin_current_thread(placement_cpu_for_ingress(
      runtime_.config(), q, runtime_.worker_count()));
  IngressPort ingress = runtime_.port(q);
  std::vector<net::UdpDatagram> batch;
  for (;;) {
    // Drain-then-exit: read the stop flag *before* the receive, so a
    // batch the kernel hands us after the flag was raised is still the
    // product of a pre-flag receive decision — every received datagram
    // below is always fully accounted (submitted/rejected/runt/
    // truncated) before the next flag check, and the loop only exits
    // on an empty read, i.e. once the socket has nothing queued left.
    const bool stopping = stop_flag_.load(std::memory_order_acquire);
    const std::size_t n = queue.socket.recv_batch(
        batch, config_.recv_batch, config_.max_datagram_bytes);
    if (n == 0) {
      if (stopping) break;
      continue;  // timeout tick: re-check the stop flag
    }
    queue.datagrams.fetch_add(n, std::memory_order_relaxed);
    for (auto& dgram : batch) {
      if (dgram.truncated) {
        // The kernel clipped the payload to fit our buffer; a prefix
        // of a packet must never be parsed as a packet.
        queue.truncated.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (dgram.bytes.size() < net::kIpv4HeaderSize) {
        queue.runts.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const EgressEndpoint reply =
          config_.record_reply
              ? EgressEndpoint{dgram.source, dgram.source_port}
              : EgressEndpoint{};
      net::Packet pkt{std::move(dgram.bytes)};
      if (ingress.submit(std::move(pkt), 0, reply)) {
        queue.submitted.fetch_add(1, std::memory_order_relaxed);
      } else {
        queue.rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

UdpQueueStats UdpIngestor::stats(std::size_t q) const {
  const Queue& queue = *queues_.at(q);
  UdpQueueStats s;
  s.datagrams = queue.datagrams.load(std::memory_order_relaxed);
  s.submitted = queue.submitted.load(std::memory_order_relaxed);
  s.rejected = queue.rejected.load(std::memory_order_relaxed);
  s.runts = queue.runts.load(std::memory_order_relaxed);
  s.truncated = queue.truncated.load(std::memory_order_relaxed);
  return s;
}

UdpQueueStats UdpIngestor::stats_total() const {
  UdpQueueStats total;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    const UdpQueueStats s = stats(q);
    total.datagrams += s.datagrams;
    total.submitted += s.submitted;
    total.rejected += s.rejected;
    total.runts += s.runts;
    total.truncated += s.truncated;
  }
  return total;
}

}  // namespace nn::runtime
