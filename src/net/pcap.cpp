#include "net/pcap.hpp"

#include <cstdio>

namespace nn::net {

namespace {

constexpr std::uint32_t kMagicMicro = 0xA1B2C3D4;
constexpr std::uint32_t kMagicNano = 0xA1B23C4D;

/// Sequential reader with a fixed byte order decided by the magic.
/// ByteReader is big-endian only; captures are usually little-endian,
/// so integers are assembled here.
class EndianReader {
 public:
  EndianReader(std::span<const std::uint8_t> data, bool little) noexcept
      : data_(data), little_(little) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  std::uint16_t u16() {
    const auto b = take(2);
    return little_ ? static_cast<std::uint16_t>(b[0] | (b[1] << 8))
                   : static_cast<std::uint16_t>((b[0] << 8) | b[1]);
  }
  std::uint32_t u32() {
    const auto b = take(4);
    if (little_) {
      return static_cast<std::uint32_t>(b[0]) |
             (static_cast<std::uint32_t>(b[1]) << 8) |
             (static_cast<std::uint32_t>(b[2]) << 16) |
             (static_cast<std::uint32_t>(b[3]) << 24);
    }
    return (static_cast<std::uint32_t>(b[0]) << 24) |
           (static_cast<std::uint32_t>(b[1]) << 16) |
           (static_cast<std::uint32_t>(b[2]) << 8) |
           static_cast<std::uint32_t>(b[3]);
  }
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) throw ParseError("pcap: truncated");
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool little_;
};

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

}  // namespace

PcapFile parse_pcap(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kPcapGlobalHeaderSize) {
    throw ParseError("pcap: truncated global header");
  }
  // The magic decides both byte order and timestamp resolution; read it
  // in both orders and see which one matches.
  const std::uint32_t magic_le = static_cast<std::uint32_t>(bytes[0]) |
                                 (static_cast<std::uint32_t>(bytes[1]) << 8) |
                                 (static_cast<std::uint32_t>(bytes[2]) << 16) |
                                 (static_cast<std::uint32_t>(bytes[3]) << 24);
  const std::uint32_t magic_be = (static_cast<std::uint32_t>(bytes[0]) << 24) |
                                 (static_cast<std::uint32_t>(bytes[1]) << 16) |
                                 (static_cast<std::uint32_t>(bytes[2]) << 8) |
                                 static_cast<std::uint32_t>(bytes[3]);
  bool little = true;
  bool nanosecond = false;
  if (magic_le == kMagicMicro || magic_le == kMagicNano) {
    nanosecond = magic_le == kMagicNano;
  } else if (magic_be == kMagicMicro || magic_be == kMagicNano) {
    little = false;
    nanosecond = magic_be == kMagicNano;
  } else {
    throw ParseError("pcap: bad magic");
  }

  EndianReader r(bytes, little);
  (void)r.u32();  // magic, already decoded
  const std::uint16_t version_major = r.u16();
  (void)r.u16();  // version_minor
  if (version_major != 2) throw ParseError("pcap: unsupported version");
  (void)r.u32();  // thiszone
  (void)r.u32();  // sigfigs
  PcapFile file;
  file.snaplen = r.u32();
  file.link_type = r.u32();

  while (r.remaining() > 0) {
    if (r.remaining() < kPcapRecordHeaderSize) {
      throw ParseError("pcap: truncated record header");
    }
    PcapRecord rec;
    const std::uint32_t ts_sec = r.u32();
    const std::uint32_t ts_sub = r.u32();
    const std::uint32_t caplen = r.u32();
    rec.orig_len = r.u32();
    rec.ts_ns = static_cast<std::int64_t>(ts_sec) * 1'000'000'000 +
                static_cast<std::int64_t>(ts_sub) * (nanosecond ? 1 : 1'000);
    if (caplen > kPcapMaxCaplen) {
      throw ParseError("pcap: record caplen exceeds sanity bound");
    }
    if (caplen > file.snaplen) {
      throw ParseError("pcap: record caplen exceeds snaplen");
    }
    if (rec.orig_len < caplen) {
      throw ParseError("pcap: record orig_len smaller than caplen");
    }
    if (caplen > r.remaining()) {
      throw ParseError("pcap: truncated record body");
    }
    const auto body = r.take(caplen);
    rec.bytes.assign(body.begin(), body.end());
    file.records.push_back(std::move(rec));
  }
  return file;
}

std::vector<std::uint8_t> serialize_pcap(const PcapFile& file) {
  std::vector<std::uint8_t> out;
  std::size_t total = kPcapGlobalHeaderSize;
  for (const auto& rec : file.records) {
    total += kPcapRecordHeaderSize + rec.bytes.size();
  }
  out.reserve(total);

  put_u32le(out, kMagicNano);
  put_u16le(out, 2);  // version 2.4
  put_u16le(out, 4);
  put_u32le(out, 0);  // thiszone
  put_u32le(out, 0);  // sigfigs
  put_u32le(out, file.snaplen);
  put_u32le(out, file.link_type);

  // Clamp to both the file's snaplen and the parser's sanity bound, so
  // serialize -> parse always round-trips.
  const std::size_t max_caplen =
      file.snaplen < kPcapMaxCaplen ? file.snaplen : kPcapMaxCaplen;
  for (const auto& rec : file.records) {
    const std::size_t caplen =
        rec.bytes.size() > max_caplen ? max_caplen : rec.bytes.size();
    put_u32le(out, static_cast<std::uint32_t>(rec.ts_ns / 1'000'000'000));
    put_u32le(out, static_cast<std::uint32_t>(rec.ts_ns % 1'000'000'000));
    put_u32le(out, static_cast<std::uint32_t>(caplen));
    // orig_len can never be smaller than what was captured.
    const std::uint32_t orig =
        rec.orig_len > caplen ? rec.orig_len
                              : static_cast<std::uint32_t>(caplen);
    put_u32le(out, orig);
    out.insert(out.end(), rec.bytes.begin(), rec.bytes.begin() +
                              static_cast<std::ptrdiff_t>(caplen));
  }
  return out;
}

PcapFile read_pcap_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw ParseError("pcap: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw ParseError("pcap: read error on " + path);
  return parse_pcap(bytes);
}

void write_pcap_file(const std::string& path, const PcapFile& file) {
  const auto bytes = serialize_pcap(file);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw ParseError("pcap: cannot create " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_rc = std::fclose(f);  // always close, even on short write
  if (written != bytes.size() || close_rc != 0) {
    throw ParseError("pcap: write error on " + path);
  }
}

std::optional<std::span<const std::uint8_t>> ipv4_of_record(
    const PcapFile& file, const PcapRecord& record) noexcept {
  std::span<const std::uint8_t> bytes = record.bytes;
  if (file.link_type == kLinkTypeEthernet) {
    constexpr std::size_t kEthHeader = 14;
    if (bytes.size() < kEthHeader) return std::nullopt;
    const std::uint16_t ethertype =
        static_cast<std::uint16_t>((bytes[12] << 8) | bytes[13]);
    if (ethertype != 0x0800) return std::nullopt;
    bytes = bytes.subspan(kEthHeader);
  } else if (file.link_type != kLinkTypeRawIp) {
    return std::nullopt;
  }
  if (bytes.empty() || (bytes[0] >> 4) != 4) return std::nullopt;
  return bytes;
}

}  // namespace nn::net
