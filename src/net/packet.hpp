// Packet: the unit that flows through the simulated network. It owns the
// fully serialized IPv4 datagram — classifiers, DPI, and the neutralizer
// all operate on real bytes, exactly as a middlebox would.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ip.hpp"
#include "net/shim.hpp"

namespace nn::net {

/// An owned, fully serialized IPv4 datagram. Moving a Packet moves the
/// buffer (a moved-from Packet is empty); PacketArena (net/arena.hpp)
/// recycles the buffers on the batched datapath.
struct Packet {
  std::vector<std::uint8_t> bytes;

  /// Total on-the-wire size in bytes (IP header included).
  [[nodiscard]] std::size_t size() const noexcept { return bytes.size(); }
  /// Read-only view of the serialized bytes; valid while the Packet
  /// lives and is not reallocated.
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return bytes;
  }
  /// Mutable view for in-place rewrites (the neutralizer datapath).
  [[nodiscard]] std::span<std::uint8_t> mutable_view() noexcept {
    return bytes;
  }

  friend bool operator==(const Packet&, const Packet&) = default;
};

/// Destination address of a serialized IPv4 packet. Precondition
/// (unchecked): pkt.size() >= kIpv4HeaderSize.
[[nodiscard]] inline Ipv4Addr packet_dst(const Packet& pkt) noexcept {
  return Ipv4Addr((static_cast<std::uint32_t>(pkt.bytes[16]) << 24) |
                  (static_cast<std::uint32_t>(pkt.bytes[17]) << 16) |
                  (static_cast<std::uint32_t>(pkt.bytes[18]) << 8) |
                  pkt.bytes[19]);
}

/// Structured read-only decomposition of a packet. Spans reference the
/// original buffer and are valid only while it lives.
struct ParsedPacket {
  Ipv4Header ip;
  std::optional<UdpHeader> udp;
  std::optional<ShimHeader> shim;
  std::span<const std::uint8_t> payload;
};

/// Parses IP and, when the protocol matches, the UDP or shim layer.
/// Throws ParseError on malformed packets (simulated routers drop those).
[[nodiscard]] ParsedPacket parse_packet(std::span<const std::uint8_t> bytes);

class PacketArena;

/// Builds IP+UDP+payload. When `arena` is non-null the buffer comes
/// from its freelist (heap otherwise); bytes are identical either way.
[[nodiscard]] Packet make_udp_packet(Ipv4Addr src, Ipv4Addr dst,
                                     std::uint16_t src_port,
                                     std::uint16_t dst_port,
                                     std::span<const std::uint8_t> payload,
                                     Dscp dscp = Dscp::kBestEffort,
                                     std::uint8_t ttl = 64,
                                     PacketArena* arena = nullptr);

/// Builds IP+shim+payload (protocol 253). When `arena` is non-null the
/// buffer comes from its freelist — this closes the last allocation on
/// the neutralizer's wire path: key-setup/lease/dyn-addr responses are
/// serialized into buffers recycled from the same batch's spent inputs.
[[nodiscard]] Packet make_shim_packet(Ipv4Addr src, Ipv4Addr dst,
                                      const ShimHeader& shim,
                                      std::span<const std::uint8_t> payload,
                                      Dscp dscp = Dscp::kBestEffort,
                                      std::uint8_t ttl = 64,
                                      PacketArena* arena = nullptr);

}  // namespace nn::net
