#include "net/udp.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define NN_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#else
#define NN_HAVE_SOCKETS 0
#endif

namespace nn::net {

namespace {

#if NN_HAVE_SOCKETS
sockaddr_in make_sockaddr(Ipv4Addr addr, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(addr.value());
  return sa;
}
#endif

}  // namespace

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), error_(std::move(other.error_)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    error_ = std::move(other.error_);
  }
  return *this;
}

UdpSocket::~UdpSocket() { close(); }

bool UdpSocket::supported() noexcept { return NN_HAVE_SOCKETS != 0; }

void UdpSocket::close() noexcept {
#if NN_HAVE_SOCKETS
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
}

UdpSocket UdpSocket::open() {
  UdpSocket s;
#if NN_HAVE_SOCKETS
  s.fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (s.fd_ < 0) s.error_ = std::strerror(errno);
#else
  s.error_ = "sockets unavailable on this platform";
#endif
  return s;
}

UdpSocket UdpSocket::bind_loopback(std::uint16_t port, bool reuse_port) {
  UdpSocket s = open();
#if NN_HAVE_SOCKETS
  if (!s.valid()) return s;
  if (reuse_port) {
    const int one = 1;
#ifdef SO_REUSEPORT
    if (::setsockopt(s.fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
        0) {
      s.error_ = std::string("SO_REUSEPORT: ") + std::strerror(errno);
      s.close();
      return s;
    }
#else
    (void)one;
    s.error_ = "SO_REUSEPORT unsupported";
    s.close();
    return s;
#endif
  }
  const sockaddr_in sa = make_sockaddr(Ipv4Addr(127, 0, 0, 1), port);
  if (::bind(s.fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    s.error_ = std::string("bind: ") + std::strerror(errno);
    s.close();
  }
#else
  (void)port;
  (void)reuse_port;
#endif
  return s;
}

std::uint16_t UdpSocket::local_port() const noexcept {
#if NN_HAVE_SOCKETS
  if (fd_ < 0) return 0;
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return 0;
  }
  return ntohs(sa.sin_port);
#else
  return 0;
#endif
}

bool UdpSocket::set_recv_buffer(int bytes) noexcept {
#if NN_HAVE_SOCKETS
  return fd_ >= 0 && ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes,
                                  sizeof(bytes)) == 0;
#else
  (void)bytes;
  return false;
#endif
}

bool UdpSocket::set_send_buffer(int bytes) noexcept {
#if NN_HAVE_SOCKETS
  return fd_ >= 0 && ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes,
                                  sizeof(bytes)) == 0;
#else
  (void)bytes;
  return false;
#endif
}

bool UdpSocket::set_recv_timeout_ms(int ms) noexcept {
#if NN_HAVE_SOCKETS
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return fd_ >= 0 &&
         ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
#else
  (void)ms;
  return false;
#endif
}

bool UdpSocket::send_to(Ipv4Addr addr, std::uint16_t port,
                        std::span<const std::uint8_t> payload) noexcept {
#if NN_HAVE_SOCKETS
  if (fd_ < 0) return false;
  const sockaddr_in sa = make_sockaddr(addr, port);
  const ssize_t n =
      ::sendto(fd_, payload.data(), payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  return n == static_cast<ssize_t>(payload.size());
#else
  (void)addr;
  (void)port;
  (void)payload;
  return false;
#endif
}

std::size_t UdpSocket::send_batch(
    Ipv4Addr addr, std::uint16_t port,
    std::span<const std::span<const std::uint8_t>> bufs) {
#if NN_HAVE_SOCKETS && defined(__linux__)
  if (fd_ < 0 || bufs.empty()) return 0;
  const sockaddr_in sa = make_sockaddr(addr, port);
  std::vector<mmsghdr> msgs(bufs.size());
  std::vector<iovec> iovs(bufs.size());
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    iovs[i].iov_base = const_cast<std::uint8_t*>(bufs[i].data());
    iovs[i].iov_len = bufs[i].size();
    msgs[i] = mmsghdr{};
    msgs[i].msg_hdr.msg_name =
        const_cast<void*>(static_cast<const void*>(&sa));
    msgs[i].msg_hdr.msg_namelen = sizeof(sa);
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  return drive_send_batch(msgs.size(), [&](std::size_t first,
                                           std::size_t count) {
    return ::sendmmsg(fd_, msgs.data() + first, static_cast<unsigned>(count),
                      0);
  });
#else
  std::size_t sent = 0;
  for (const auto& b : bufs) {
    if (!send_to(addr, port, b)) break;
    ++sent;
  }
  return sent;
#endif
}

std::size_t UdpSocket::recv_batch(std::vector<UdpDatagram>& out,
                                  std::size_t max,
                                  std::size_t max_datagram_bytes) {
  out.clear();
  if (fd_ < 0 || max == 0 || max_datagram_bytes == 0) return 0;
#if NN_HAVE_SOCKETS && defined(__linux__)
  std::vector<std::vector<std::uint8_t>> bufs(max);
  std::vector<mmsghdr> msgs(max);
  std::vector<iovec> iovs(max);
  std::vector<sockaddr_in> froms(max);
  for (std::size_t i = 0; i < max; ++i) {
    bufs[i].resize(max_datagram_bytes);
    iovs[i].iov_base = bufs[i].data();
    iovs[i].iov_len = bufs[i].size();
    msgs[i] = mmsghdr{};
    msgs[i].msg_hdr.msg_name = &froms[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(froms[i]);
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  // MSG_WAITFORONE: block for the first datagram (bounded by
  // SO_RCVTIMEO), then return with whatever else is already queued.
  const int n = ::recvmmsg(fd_, msgs.data(), static_cast<unsigned>(max),
                           MSG_WAITFORONE, nullptr);
  if (n <= 0) return 0;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    UdpDatagram d;
    // The kernel raises MSG_TRUNC in the per-message msg_flags when
    // the datagram did not fit the buffer; msg_len is then the stored
    // (clipped) length. Flag it so callers reject instead of parsing.
    d.truncated = (msgs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0;
    const std::size_t stored =
        msgs[i].msg_len < bufs[idx].size() ? msgs[i].msg_len
                                           : bufs[idx].size();
    bufs[idx].resize(stored);
    d.bytes = std::move(bufs[idx]);
    d.source = Ipv4Addr(ntohl(froms[idx].sin_addr.s_addr));
    d.source_port = ntohs(froms[idx].sin_port);
    out.push_back(std::move(d));
  }
  return out.size();
#elif NN_HAVE_SOCKETS
  std::vector<std::uint8_t> buf(max_datagram_bytes);
  sockaddr_in from{};
  socklen_t fromlen = sizeof(from);
  // MSG_TRUNC (where the platform has it) makes recvfrom return the
  // datagram's real length even when the buffer clipped it, which is
  // how truncation is detected on the fallback path.
  int flags = 0;
#ifdef MSG_TRUNC
  flags |= MSG_TRUNC;
#endif
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), flags,
                               reinterpret_cast<sockaddr*>(&from), &fromlen);
  if (n <= 0) return 0;
  UdpDatagram d;
  d.truncated = static_cast<std::size_t>(n) > buf.size();
  buf.resize(d.truncated ? buf.size() : static_cast<std::size_t>(n));
  d.bytes = std::move(buf);
  d.source = Ipv4Addr(ntohl(from.sin_addr.s_addr));
  d.source_port = ntohs(from.sin_port);
  out.push_back(std::move(d));
  return 1;
#else
  (void)max;
  (void)max_datagram_bytes;
  return 0;
#endif
}

}  // namespace nn::net
