#include "net/addr.hpp"

#include <charconv>
#include <stdexcept>

#include "util/bytes.hpp"

namespace nn::net {

namespace {
std::uint32_t parse_octet(std::string_view& s) {
  unsigned value = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || value > 255 || ptr == begin) {
    throw ParseError("Ipv4Addr: bad octet in '" + std::string(s) + "'");
  }
  s.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}
}  // namespace

Ipv4Addr Ipv4Addr::from_string(std::string_view s) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value = (value << 8) | parse_octet(s);
    if (i < 3) {
      if (s.empty() || s.front() != '.') {
        throw ParseError("Ipv4Addr: expected '.'");
      }
      s.remove_prefix(1);
    }
  }
  if (!s.empty()) throw ParseError("Ipv4Addr: trailing characters");
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  return std::to_string((value_ >> 24) & 0xFF) + "." +
         std::to_string((value_ >> 16) & 0xFF) + "." +
         std::to_string((value_ >> 8) & 0xFF) + "." +
         std::to_string(value_ & 0xFF);
}

Ipv4Prefix::Ipv4Prefix(Ipv4Addr base, int length) : length_(length) {
  if (length < 0 || length > 32) {
    throw std::invalid_argument("Ipv4Prefix: length must be in [0,32]");
  }
  base_ = Ipv4Addr(base.value() & mask());
}

Ipv4Prefix Ipv4Prefix::from_string(std::string_view s) {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) {
    throw ParseError("Ipv4Prefix: missing '/'");
  }
  const Ipv4Addr base = Ipv4Addr::from_string(s.substr(0, slash));
  int len = 0;
  const auto len_str = s.substr(slash + 1);
  const auto* begin = len_str.data();
  const auto* end = len_str.data() + len_str.size();
  auto [ptr, ec] = std::from_chars(begin, end, len);
  if (ec != std::errc{} || ptr != end) {
    throw ParseError("Ipv4Prefix: bad length");
  }
  return {base, len};
}

Ipv4Addr Ipv4Prefix::at(std::uint32_t offset) const {
  const std::uint32_t host_bits_max = length_ == 32 ? 0 : (~mask());
  if (offset > host_bits_max) {
    throw std::out_of_range("Ipv4Prefix::at: offset outside prefix");
  }
  return Ipv4Addr(base_.value() | offset);
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace nn::net
