#include "net/packet.hpp"

#include "net/arena.hpp"

namespace nn::net {

namespace {

ByteWriter writer_for(std::size_t size, PacketArena* arena) {
  return arena != nullptr ? ByteWriter(arena->acquire_buffer(size))
                          : ByteWriter(size);
}

}  // namespace

ParsedPacket parse_packet(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  ParsedPacket p;
  p.ip = Ipv4Header::parse(r);
  if (p.ip.total_length != bytes.size()) {
    throw ParseError("parse_packet: total_length mismatch");
  }
  if (p.ip.protocol == static_cast<std::uint8_t>(IpProto::kUdp)) {
    p.udp = UdpHeader::parse(r);
  } else if (p.ip.protocol == static_cast<std::uint8_t>(IpProto::kShim)) {
    p.shim = ShimHeader::parse(r);
  }
  p.payload = r.rest();
  return p;
}

Packet make_udp_packet(Ipv4Addr src, Ipv4Addr dst, std::uint16_t src_port,
                       std::uint16_t dst_port,
                       std::span<const std::uint8_t> payload, Dscp dscp,
                       std::uint8_t ttl, PacketArena* arena) {
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.dscp = dscp;
  ip.ttl = ttl;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  ip.total_length = static_cast<std::uint16_t>(kIpv4HeaderSize +
                                               kUdpHeaderSize + payload.size());
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderSize + payload.size());

  ByteWriter w = writer_for(ip.total_length, arena);
  ip.serialize(w);
  udp.serialize(w);
  w.raw(payload);
  return Packet{w.take()};
}

Packet make_shim_packet(Ipv4Addr src, Ipv4Addr dst, const ShimHeader& shim,
                        std::span<const std::uint8_t> payload, Dscp dscp,
                        std::uint8_t ttl, PacketArena* arena) {
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.dscp = dscp;
  ip.ttl = ttl;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kShim);
  ip.total_length = static_cast<std::uint16_t>(
      kIpv4HeaderSize + shim.serialized_size() + payload.size());

  ByteWriter w = writer_for(ip.total_length, arena);
  ip.serialize(w);
  shim.serialize(w);
  w.raw(payload);
  return Packet{w.take()};
}

}  // namespace nn::net
