// IPv4 header (RFC 791, no options) with DSCP access, plus the internet
// checksum. The neutralizer must preserve the DSCP field end to end
// (paper §3.4), so DSCP is a first-class concept here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace nn::net {

/// Diffserv code points used by the tiered-service experiments. Values
/// are the standard DSCP numbers (RFC 2474 / RFC 2597 / RFC 3246).
enum class Dscp : std::uint8_t {
  kBestEffort = 0,
  kAf11 = 10,
  kAf21 = 18,
  kAf31 = 26,
  kAf41 = 34,
  kExpeditedForwarding = 46,
};

/// IP protocol numbers used in this project.
enum class IpProto : std::uint8_t {
  kUdp = 17,
  // RFC 3692 experimental value; carries the neutralizer shim layer
  // (paper §2: "The protocol field in an IP header is set to a fixed
  // and known value").
  kShim = 253,
};

inline constexpr std::size_t kIpv4HeaderSize = 20;

/// RFC 1071 internet checksum over `data` (16-bit one's complement sum).
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data) noexcept;

struct Ipv4Header {
  Dscp dscp = Dscp::kBestEffort;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Addr src;
  Ipv4Addr dst;

  /// Serializes with a correct header checksum.
  void serialize(ByteWriter& w) const;

  /// Parses and verifies version/IHL and checksum; throws ParseError on
  /// malformed headers.
  static Ipv4Header parse(ByteReader& r);

  friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

inline constexpr std::size_t kUdpHeaderSize = 8;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload

  void serialize(ByteWriter& w) const;
  static UdpHeader parse(ByteReader& r);

  friend bool operator==(const UdpHeader&, const UdpHeader&) = default;
};

}  // namespace nn::net
