#include "net/shim.hpp"

namespace nn::net {

std::size_t ShimHeader::serialized_size() const noexcept {
  std::size_t size = kShimBaseSize;
  if (shim_type_has_inner_addr(type)) size += kShimInnerAddrSize;
  if (has_rekey_space()) size += kShimRekeyExtSize;
  return size;
}

void ShimHeader::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(flags);
  w.u16(key_epoch);
  w.u64(nonce);
  if (shim_type_has_inner_addr(type)) w.u32(inner_addr);
  if (has_rekey_space()) {
    if (rekey.has_value()) {
      w.u64(rekey->nonce);
      w.u16(rekey->epoch);
      w.raw(rekey->key);
    } else {
      w.zeros(kShimRekeyExtSize);  // reserved space for the neutralizer
    }
  }
}

ShimHeader ShimHeader::parse(ByteReader& r) {
  ShimHeader h;
  const std::uint8_t raw_type = r.u8();
  if (raw_type < 1 || raw_type > 8) {
    throw ParseError("ShimHeader: unknown type");
  }
  h.type = static_cast<ShimType>(raw_type);
  h.flags = r.u8();
  h.key_epoch = r.u16();
  h.nonce = r.u64();
  if (shim_type_has_inner_addr(h.type)) h.inner_addr = r.u32();
  if (h.has_rekey_space()) {
    RekeyExt ext;
    ext.nonce = r.u64();
    ext.epoch = r.u16();
    const auto key = r.take(crypto::kAesKeySize);
    std::copy(key.begin(), key.end(), ext.key.begin());
    if (h.flags & ShimFlags::kRekeyFilled) {
      h.rekey = ext;
    } else {
      h.rekey = std::nullopt;  // reserved-but-empty space
    }
  }
  return h;
}

ShimPacketView::ShimPacketView(std::span<std::uint8_t> packet)
    : bytes_(packet) {
  if (packet.size() < kIpv4HeaderSize + kShimBaseSize) {
    throw ParseError("ShimPacketView: packet too short");
  }
  if ((packet[0] >> 4) != 4 ||
      packet[9] != static_cast<std::uint8_t>(IpProto::kShim)) {
    throw ParseError("ShimPacketView: not an IPv4 shim packet");
  }
  const auto t = static_cast<std::uint8_t>(type());
  if (t < 1 || t > 8) throw ParseError("ShimPacketView: unknown shim type");
  if (packet.size() < payload_offset()) {
    throw ParseError("ShimPacketView: truncated shim fields");
  }
}

Ipv4Addr ShimPacketView::read_addr(std::size_t off) const noexcept {
  return Ipv4Addr((static_cast<std::uint32_t>(bytes_[off]) << 24) |
                  (static_cast<std::uint32_t>(bytes_[off + 1]) << 16) |
                  (static_cast<std::uint32_t>(bytes_[off + 2]) << 8) |
                  bytes_[off + 3]);
}

void ShimPacketView::write_addr(std::size_t off, Ipv4Addr a) noexcept {
  bytes_[off] = static_cast<std::uint8_t>(a.value() >> 24);
  bytes_[off + 1] = static_cast<std::uint8_t>(a.value() >> 16);
  bytes_[off + 2] = static_cast<std::uint8_t>(a.value() >> 8);
  bytes_[off + 3] = static_cast<std::uint8_t>(a.value());
}

std::uint16_t ShimPacketView::key_epoch() const noexcept {
  const std::size_t off = kIpv4HeaderSize + 2;
  return static_cast<std::uint16_t>((bytes_[off] << 8) | bytes_[off + 1]);
}

void ShimPacketView::set_key_epoch(std::uint16_t epoch) noexcept {
  const std::size_t off = kIpv4HeaderSize + 2;
  bytes_[off] = static_cast<std::uint8_t>(epoch >> 8);
  bytes_[off + 1] = static_cast<std::uint8_t>(epoch);
}

std::uint64_t ShimPacketView::nonce() const noexcept {
  const std::size_t off = kIpv4HeaderSize + 4;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | bytes_[off + static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint32_t ShimPacketView::inner_addr() const noexcept {
  const std::size_t off = kIpv4HeaderSize + kShimBaseSize;
  return (static_cast<std::uint32_t>(bytes_[off]) << 24) |
         (static_cast<std::uint32_t>(bytes_[off + 1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[off + 2]) << 8) | bytes_[off + 3];
}

void ShimPacketView::set_inner_addr(std::uint32_t v) noexcept {
  const std::size_t off = kIpv4HeaderSize + kShimBaseSize;
  bytes_[off] = static_cast<std::uint8_t>(v >> 24);
  bytes_[off + 1] = static_cast<std::uint8_t>(v >> 16);
  bytes_[off + 2] = static_cast<std::uint8_t>(v >> 8);
  bytes_[off + 3] = static_cast<std::uint8_t>(v);
}

std::size_t ShimPacketView::rekey_offset() const noexcept {
  std::size_t off = kIpv4HeaderSize + kShimBaseSize;
  if (shim_type_has_inner_addr(type())) off += kShimInnerAddrSize;
  return off;
}

std::size_t ShimPacketView::payload_offset() const noexcept {
  std::size_t off = rekey_offset();
  if (has_rekey_space()) off += kShimRekeyExtSize;
  return off;
}

void ShimPacketView::stamp_rekey(std::uint64_t nonce, std::uint16_t epoch,
                                 const crypto::AesKey& key) {
  if (!has_rekey_space()) {
    throw ParseError("ShimPacketView: no rekey space reserved");
  }
  std::size_t off = rekey_offset();
  for (int i = 0; i < 8; ++i) {
    bytes_[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  off += 8;
  bytes_[off] = static_cast<std::uint8_t>(epoch >> 8);
  bytes_[off + 1] = static_cast<std::uint8_t>(epoch);
  off += 2;
  std::copy(key.begin(), key.end(),
            bytes_.begin() + static_cast<std::ptrdiff_t>(off));
  set_flags(flags() | ShimFlags::kRekeyFilled);
}

RekeyExt ShimPacketView::rekey() const {
  if (!has_rekey_space()) {
    throw ParseError("ShimPacketView: no rekey extension");
  }
  RekeyExt ext;
  std::size_t off = rekey_offset();
  for (int i = 0; i < 8; ++i) {
    ext.nonce = (ext.nonce << 8) | bytes_[off + static_cast<std::size_t>(i)];
  }
  off += 8;
  ext.epoch = static_cast<std::uint16_t>((bytes_[off] << 8) | bytes_[off + 1]);
  off += 2;
  std::copy(bytes_.begin() + static_cast<std::ptrdiff_t>(off),
            bytes_.begin() + static_cast<std::ptrdiff_t>(off + 16),
            ext.key.begin());
  return ext;
}

std::span<std::uint8_t> ShimPacketView::payload() const noexcept {
  return bytes_.subspan(payload_offset());
}

void ShimPacketView::refresh_ip_checksum() noexcept {
  bytes_[10] = 0;
  bytes_[11] = 0;
  const std::uint16_t sum =
      internet_checksum(bytes_.subspan(0, kIpv4HeaderSize));
  bytes_[10] = static_cast<std::uint8_t>(sum >> 8);
  bytes_[11] = static_cast<std::uint8_t>(sum);
}

}  // namespace nn::net
