// Thin RAII wrapper over a POSIX UDP socket, scoped to exactly what the
// runtime's loopback front end needs: SO_REUSEPORT group binding (the
// kernel's software RSS — it hashes the 4-tuple across every socket
// bound to the same port), recvmmsg()/sendmmsg() batches, and a receive
// timeout so a blocking reader can poll a stop flag.
//
// Deliberately not a general networking layer: IPv4 only, datagrams
// only, no connect(). On non-Linux POSIX systems the batch calls
// degrade to a recvfrom()/sendto() loop; on platforms without sockets
// the whole type compiles but open() reports failure, so callers (and
// tests) gate on UdpSocket::supported().
#pragma once

#include <cerrno>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/addr.hpp"

namespace nn::net {

/// Largest payload an IPv4 UDP datagram can carry; the default receive
/// buffer size, so nothing is ever kernel-truncated unless the caller
/// asks for smaller buffers.
inline constexpr std::size_t kMaxUdpDatagram = 65535;

/// One datagram hand-back from UdpSocket::recv_batch.
struct UdpDatagram {
  std::vector<std::uint8_t> bytes;
  Ipv4Addr source;
  std::uint16_t source_port = 0;
  /// True when the kernel clipped the datagram to fit the receive
  /// buffer (per-message MSG_TRUNC). `bytes` then holds a prefix of
  /// the real payload — callers must reject it, never parse it.
  bool truncated = false;
};

/// Send-loop seam shared by UdpSocket::send_batch and its unit tests:
/// drives a sendmmsg-style call until all `total` messages are handed
/// to the kernel. `send_some(first, count)` must attempt messages
/// [first, first+count) and return how many the kernel accepted, or a
/// negative value with errno set. EINTR is retried (nothing was sent);
/// a partial send resumes from `first + n` so no delivered datagram is
/// ever sent twice. Returns how many messages were delivered — equal
/// to `total` unless a non-EINTR error (or a zero-progress return)
/// stopped the loop early.
template <typename SendSome>
std::size_t drive_send_batch(std::size_t total, SendSome&& send_some) {
  std::size_t sent = 0;
  while (sent < total) {
    const int n = send_some(sent, total - sent);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted before any delivery
      break;                         // real error: report what made it
    }
    if (n == 0) break;  // defensive: never spin without forward progress
    sent += static_cast<std::size_t>(n);
  }
  return sent;
}

class UdpSocket {
 public:
  UdpSocket() = default;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  ~UdpSocket();

  /// True when this build has a socket layer at all.
  static bool supported() noexcept;

  /// Unbound send-side socket.
  static UdpSocket open();

  /// Socket bound to 127.0.0.1:`port` (port 0 = kernel-assigned; read
  /// the outcome with local_port()). When `reuse_port` is set the
  /// SO_REUSEPORT option is applied before bind so several sockets can
  /// share the port and split the datagram stream.
  static UdpSocket bind_loopback(std::uint16_t port, bool reuse_port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Port this socket is bound to (0 if unbound/invalid).
  [[nodiscard]] std::uint16_t local_port() const noexcept;

  /// Last socket-layer error message, for logs and SkipWithError.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// SO_RCVBUF request (kernel may clamp; best effort).
  bool set_recv_buffer(int bytes) noexcept;
  /// SO_SNDBUF request (kernel may clamp; best effort).
  bool set_send_buffer(int bytes) noexcept;
  /// SO_RCVTIMEO so recv_batch wakes up to poll stop flags.
  bool set_recv_timeout_ms(int ms) noexcept;

  /// Sends one datagram to addr:port. Returns false on any error.
  bool send_to(Ipv4Addr addr, std::uint16_t port,
               std::span<const std::uint8_t> payload) noexcept;

  /// Sends many datagrams to the same destination with sendmmsg where
  /// available; returns how many the kernel accepted. EINTR is retried
  /// and partial batches resume without re-sending delivered datagrams
  /// (drive_send_batch above is the loop, exposed for unit tests).
  std::size_t send_batch(Ipv4Addr addr, std::uint16_t port,
                         std::span<const std::span<const std::uint8_t>> bufs);

  /// Receives up to `max` datagrams (recvmmsg where available),
  /// blocking up to the configured receive timeout for the first one.
  /// Returns 0 on timeout; out is cleared then filled. Each receive
  /// buffer is `max_datagram_bytes` long; a datagram that did not fit
  /// comes back clipped with its `truncated` flag set (per-message
  /// MSG_TRUNC) so callers can reject it instead of parsing a prefix.
  std::size_t recv_batch(std::vector<UdpDatagram>& out, std::size_t max,
                         std::size_t max_datagram_bytes = kMaxUdpDatagram);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string error_;
};

}  // namespace nn::net
