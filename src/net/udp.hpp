// Thin RAII wrapper over a POSIX UDP socket, scoped to exactly what the
// runtime's loopback front end needs: SO_REUSEPORT group binding (the
// kernel's software RSS — it hashes the 4-tuple across every socket
// bound to the same port), recvmmsg()/sendmmsg() batches, and a receive
// timeout so a blocking reader can poll a stop flag.
//
// Deliberately not a general networking layer: IPv4 only, datagrams
// only, no connect(). On non-Linux POSIX systems the batch calls
// degrade to a recvfrom()/sendto() loop; on platforms without sockets
// the whole type compiles but open() reports failure, so callers (and
// tests) gate on UdpSocket::supported().
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/addr.hpp"

namespace nn::net {

/// One datagram hand-back from UdpSocket::recv_batch.
struct UdpDatagram {
  std::vector<std::uint8_t> bytes;
  Ipv4Addr source;
  std::uint16_t source_port = 0;
};

class UdpSocket {
 public:
  UdpSocket() = default;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  ~UdpSocket();

  /// True when this build has a socket layer at all.
  static bool supported() noexcept;

  /// Unbound send-side socket.
  static UdpSocket open();

  /// Socket bound to 127.0.0.1:`port` (port 0 = kernel-assigned; read
  /// the outcome with local_port()). When `reuse_port` is set the
  /// SO_REUSEPORT option is applied before bind so several sockets can
  /// share the port and split the datagram stream.
  static UdpSocket bind_loopback(std::uint16_t port, bool reuse_port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Port this socket is bound to (0 if unbound/invalid).
  [[nodiscard]] std::uint16_t local_port() const noexcept;

  /// Last socket-layer error message, for logs and SkipWithError.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// SO_RCVBUF request (kernel may clamp; best effort).
  bool set_recv_buffer(int bytes) noexcept;
  /// SO_RCVTIMEO so recv_batch wakes up to poll stop flags.
  bool set_recv_timeout_ms(int ms) noexcept;

  /// Sends one datagram to addr:port. Returns false on any error.
  bool send_to(Ipv4Addr addr, std::uint16_t port,
               std::span<const std::uint8_t> payload) noexcept;

  /// Sends many datagrams to the same destination with sendmmsg where
  /// available; returns how many the kernel accepted.
  std::size_t send_batch(Ipv4Addr addr, std::uint16_t port,
                         std::span<const std::span<const std::uint8_t>> bufs);

  /// Receives up to `max` datagrams (recvmmsg where available),
  /// blocking up to the configured receive timeout for the first one.
  /// Returns 0 on timeout; out is cleared then filled.
  std::size_t recv_batch(std::vector<UdpDatagram>& out, std::size_t max);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string error_;
};

}  // namespace nn::net
