#include "net/ip.hpp"

namespace nn::net {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

void Ipv4Header::serialize(ByteWriter& w) const {
  const std::size_t start = w.size();
  w.u8(0x45);  // version 4, IHL 5 (no options)
  w.u8(static_cast<std::uint8_t>(static_cast<std::uint8_t>(dscp) << 2));
  w.u16(total_length);
  w.u16(identification);
  w.u16(0);  // flags/fragment: DF not modeled
  w.u8(ttl);
  w.u8(protocol);
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  const auto header = w.view().subspan(start, kIpv4HeaderSize);
  w.patch_u16(start + 10, internet_checksum(header));
}

Ipv4Header Ipv4Header::parse(ByteReader& r) {
  const auto raw = r.take(kIpv4HeaderSize);
  if (raw[0] != 0x45) {
    throw ParseError("Ipv4Header: unsupported version/IHL");
  }
  if (internet_checksum(raw) != 0) {
    throw ParseError("Ipv4Header: bad checksum");
  }
  Ipv4Header h;
  h.dscp = static_cast<Dscp>(raw[1] >> 2);
  h.total_length = static_cast<std::uint16_t>((raw[2] << 8) | raw[3]);
  h.identification = static_cast<std::uint16_t>((raw[4] << 8) | raw[5]);
  h.ttl = raw[8];
  h.protocol = raw[9];
  h.src = Ipv4Addr((static_cast<std::uint32_t>(raw[12]) << 24) |
                   (static_cast<std::uint32_t>(raw[13]) << 16) |
                   (static_cast<std::uint32_t>(raw[14]) << 8) | raw[15]);
  h.dst = Ipv4Addr((static_cast<std::uint32_t>(raw[16]) << 24) |
                   (static_cast<std::uint32_t>(raw[17]) << 16) |
                   (static_cast<std::uint32_t>(raw[18]) << 8) | raw[19]);
  return h;
}

void UdpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(0);  // checksum optional in IPv4; not modeled
}

UdpHeader UdpHeader::parse(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  r.skip(2);  // checksum
  if (h.length < kUdpHeaderSize) {
    throw ParseError("UdpHeader: length smaller than header");
  }
  return h;
}

}  // namespace nn::net
