// Minimal libpcap (tcpdump) capture-file support, from scratch and
// dependency-free: just enough to replay captured traces through the
// box (sim::TraceWorkload, examples/trace_replay) and to write tiny
// fixtures for tests. Parsing is header-only in the pcap sense — the
// record *payloads* are opaque bytes; only the global header and the
// 16-byte per-record headers are interpreted.
//
// Wire layout (classic pcap, not pcapng):
//
//   global header (24 B): magic, version, thiszone, sigfigs, snaplen,
//                         linktype
//   per record   (16 B):  ts_sec, ts_subsec, caplen, orig_len
//                         followed by caplen captured bytes
//
// All four magic variants are accepted: 0xa1b2c3d4 (microsecond) and
// 0xa1b23c4d (nanosecond), each in either byte order. Malformed input
// is rejected with ParseError, mirroring the shim fuzz layer's
// contract: truncated global/record headers, records whose caplen
// exceeds the declared snaplen or the remaining bytes, records whose
// orig_len is smaller than caplen, and absurd caplens that would ask
// the parser to allocate unbounded memory. Zero-length records
// (caplen == 0) are well-formed and kept — replay layers skip them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace nn::net {

/// LINKTYPE_ values (from the tcpdump registry) this reader knows how
/// to map to an IPv4 datagram.
inline constexpr std::uint32_t kLinkTypeEthernet = 1;
inline constexpr std::uint32_t kLinkTypeRawIp = 101;

inline constexpr std::size_t kPcapGlobalHeaderSize = 24;
inline constexpr std::size_t kPcapRecordHeaderSize = 16;

/// Upper bound on a single record's caplen; anything larger is treated
/// as a corrupt length field rather than a packet (jumbo frames top out
/// far below this).
inline constexpr std::uint32_t kPcapMaxCaplen = 256 * 1024;

/// One captured packet: capture timestamp (nanoseconds since the unix
/// epoch), the original on-the-wire length, and the captured bytes.
/// bytes.size() <= orig_len; a shortfall means the capture's snaplen
/// truncated the packet.
struct PcapRecord {
  std::int64_t ts_ns = 0;
  std::uint32_t orig_len = 0;
  std::vector<std::uint8_t> bytes;

  friend bool operator==(const PcapRecord&, const PcapRecord&) = default;
};

/// A parsed capture file: the global-header fields replay cares about
/// plus every record in file order.
struct PcapFile {
  std::uint32_t link_type = kLinkTypeRawIp;
  std::uint32_t snaplen = 65535;
  std::vector<PcapRecord> records;

  friend bool operator==(const PcapFile&, const PcapFile&) = default;
};

/// Parses a complete capture from memory. Throws ParseError on any
/// malformed structure (see file comment for the exact rejection set).
[[nodiscard]] PcapFile parse_pcap(std::span<const std::uint8_t> bytes);

/// Serializes to the canonical variant this writer emits: little-endian
/// nanosecond magic (0xa1b23c4d). Records whose bytes exceed
/// min(file.snaplen, kPcapMaxCaplen) are truncated to it on the way
/// out, so the result always re-parses.
[[nodiscard]] std::vector<std::uint8_t> serialize_pcap(const PcapFile& file);

/// Reads and parses a capture file from disk. Throws ParseError when
/// the file cannot be opened or is malformed.
[[nodiscard]] PcapFile read_pcap_file(const std::string& path);

/// Serializes and writes `file` to disk. Throws ParseError on I/O
/// failure.
void write_pcap_file(const std::string& path, const PcapFile& file);

/// The IPv4 datagram inside `record` given the file's link type: the
/// raw bytes for kLinkTypeRawIp, the bytes after the 14-byte Ethernet
/// header (EtherType 0x0800 only) for kLinkTypeEthernet. nullopt when
/// the record is empty, too short, not IPv4, or the link type is
/// unknown. The span aliases `record.bytes`.
[[nodiscard]] std::optional<std::span<const std::uint8_t>> ipv4_of_record(
    const PcapFile& file, const PcapRecord& record) noexcept;

}  // namespace nn::net
