// PacketArena: a freelist of packet buffers so the batched datapath can
// run allocation-free in steady state. acquire() recycles a released
// buffer when one is available (a vector resize within capacity does not
// touch the heap); release() returns a buffer to the freelist instead of
// freeing it. Single-threaded by design, like the simulator it serves —
// one arena per box/benchmark, not a global pool.
//
// Ownership handoff rules (the threaded runtime relies on these):
//   * An arena itself is never shared: every call on a given arena must
//     come from one thread at a time, with a happens-before edge between
//     threads if the arena ever changes hands (runtime workers bind
//     their arena before the thread starts and the control thread only
//     touches it again after quiescence — see runtime/shard_runtime.hpp,
//     which asserts that).
//   * Buffers, by contrast, migrate freely: a Packet acquired from
//     arena A may be released into arena B (the dispatcher→worker path
//     does exactly this). A buffer belongs to whichever thread holds the
//     Packet; the SPSC ring's release/acquire pair is the handoff edge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace nn::net {

struct PacketArenaStats {
  /// Buffers that had to come from the heap (freelist empty, or the
  /// recycled capacity was too small and the resize reallocated).
  std::uint64_t heap_allocations = 0;
  /// Buffers served entirely from the freelist.
  std::uint64_t reuses = 0;
  std::uint64_t released = 0;
  /// Releases dropped on the floor because the freelist was full.
  std::uint64_t freelist_overflow = 0;
};

class PacketArena {
 public:
  /// `max_free` bounds the freelist so a burst cannot pin memory
  /// forever; excess released buffers are simply freed.
  explicit PacketArena(std::size_t max_free = 4096) : max_free_(max_free) {
    free_.reserve(max_free < 64 ? max_free : std::size_t{64});
  }

  /// Returns a packet of exactly `size` bytes. Contents are
  /// unspecified (recycled buffers keep their old bytes) — callers
  /// overwrite the full packet, as every serializer here does.
  [[nodiscard]] Packet acquire(std::size_t size) {
    if (free_.empty()) {
      ++stats_.heap_allocations;
      return Packet{std::vector<std::uint8_t>(size)};
    }
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    if (buf.capacity() >= size) {
      ++stats_.reuses;
    } else {
      ++stats_.heap_allocations;  // resize below reallocates
    }
    buf.resize(size);
    return Packet{std::move(buf)};
  }

  /// Takes a recycled raw buffer (size 0, capacity >= `reserve` when a
  /// parked buffer is big enough) for serializers that build a packet
  /// incrementally — the arena-aware make_*_packet overloads feed this
  /// to a ByteWriter so control-path responses reuse spent data-packet
  /// buffers instead of allocating.
  [[nodiscard]] std::vector<std::uint8_t> acquire_buffer(std::size_t reserve) {
    if (free_.empty()) {
      ++stats_.heap_allocations;
      std::vector<std::uint8_t> buf;
      buf.reserve(reserve);
      return buf;
    }
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    if (buf.capacity() >= reserve) {
      ++stats_.reuses;
    } else {
      ++stats_.heap_allocations;  // reserve below reallocates
    }
    buf.clear();
    buf.reserve(reserve);
    return buf;
  }

  /// Copies `src` into a recycled buffer — the allocation-free way to
  /// refill a batch slot from a template packet.
  [[nodiscard]] Packet clone(const Packet& src) {
    Packet p = acquire(src.size());
    std::copy(src.bytes.begin(), src.bytes.end(), p.bytes.begin());
    return p;
  }

  /// Takes the packet's buffer for reuse. Empty buffers (moved-from
  /// packets) carry no capacity worth keeping and are ignored.
  void release(Packet&& pkt) {
    if (pkt.bytes.capacity() == 0) return;
    if (free_.size() >= max_free_) {
      ++stats_.freelist_overflow;
      pkt.bytes = {};
      return;
    }
    ++stats_.released;
    free_.push_back(std::move(pkt.bytes));
    pkt.bytes = {};
  }

  /// Buffers currently parked on the freelist.
  [[nodiscard]] std::size_t free_count() const noexcept {
    return free_.size();
  }
  /// Reuse/allocation counters since construction (never reset).
  [[nodiscard]] const PacketArenaStats& stats() const noexcept {
    return stats_;
  }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t max_free_;
  PacketArenaStats stats_;
};

}  // namespace nn::net
