// The neutralizer shim layer (paper §2: "additional fields needed by our
// design are carried in a shim layer between IP and an upper layer").
//
// Wire layout, following the IPv4 header (all big-endian):
//
//   byte 0      1        2..3
//   +--------+--------+----------------+
//   |  type  | flags  | key epoch      |
//   +--------+--------+----------------+
//   |            nonce (8 B)           |
//   +----------------------------------+
//   | inner address (4 B)              |  DataForward / DataReturn only
//   +----------------------------------+
//   | rekey ext: nonce' (8) Ks' (16)   |  iff flags & (KeyRequest|RekeyFilled)
//   +----------------------------------+
//   | type-specific payload ...        |
//
// The rekey extension space is *reserved by the source* when it sets
// KeyRequest, so the neutralizer can stamp (nonce', Ks') in place
// without growing the packet (paper §3.2: "it stamps a new nonce, and a
// new key K's into the packet").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/aes.hpp"
#include "net/addr.hpp"
#include "net/ip.hpp"
#include "util/bytes.hpp"

namespace nn::net {

enum class ShimType : std::uint8_t {
  // Source outside the neutral domain requests a symmetric key; payload
  // is the source's one-time RSA public key (§3.2).
  kKeySetup = 1,
  // Neutralizer's reply; payload is the RSA encryption of (nonce, Ks).
  kKeySetupResponse = 2,
  // Outside -> neutral domain data; inner address = encrypted true
  // destination.
  kDataForward = 3,
  // Neutral domain -> outside data. Sent by the customer with the
  // initiator's address in the inner field (clear on the neutral
  // segment); the neutralizer swaps in the encrypted customer address.
  kDataReturn = 4,
  // Customer inside the neutral domain requests a key without
  // encryption (§3.3) — the request never crosses a discriminatory ISP.
  kKeyLease = 5,
  kKeyLeaseResponse = 6,
  // §3.4 guaranteed-service support: a customer starting a QoS session
  // requests a dynamic address "that allows the discriminatory ISP to
  // identify a flow, but does not allow it to map the flow to a
  // specific customer". Request/response stay inside the neutral domain.
  kDynAddrRequest = 7,
  kDynAddrResponse = 8,
};

[[nodiscard]] constexpr bool shim_type_has_inner_addr(ShimType t) noexcept {
  return t == ShimType::kDataForward || t == ShimType::kDataReturn;
}

struct ShimFlags {
  // Source asks the neutralizer for a fresh (nonce', Ks'); implies the
  // 24-byte rekey extension space is reserved (zero) in the packet.
  static constexpr std::uint8_t kKeyRequest = 0x01;
  // Neutralizer has stamped (nonce', Ks') into the extension.
  static constexpr std::uint8_t kRekeyFilled = 0x02;
  // The nonce names a *leased* key (reverse-direction communication,
  // paper §3.3) derived from the nonce alone rather than from
  // (nonce, srcIP) — the neutralizer recomputes it statelessly either
  // way.
  static constexpr std::uint8_t kLeaseKey = 0x04;
};

struct RekeyExt {
  std::uint64_t nonce = 0;
  // Epoch of the master key the stamped Ks' was derived from; carried
  // in the extension (not the shim epoch field) so the echo names the
  // right key even across a rotation.
  std::uint16_t epoch = 0;
  crypto::AesKey key{};

  friend bool operator==(const RekeyExt&, const RekeyExt&) = default;
};

inline constexpr std::size_t kShimBaseSize = 12;       // type..nonce
inline constexpr std::size_t kShimInnerAddrSize = 4;
inline constexpr std::size_t kShimRekeyExtSize = 26;

struct ShimHeader {
  ShimType type = ShimType::kKeySetup;
  std::uint8_t flags = 0;
  std::uint16_t key_epoch = 0;
  std::uint64_t nonce = 0;
  // Meaning depends on type: encrypted destination (DataForward after
  // encryption), initiator address (DataReturn before neutralization)
  // or encrypted customer address (after).
  std::uint32_t inner_addr = 0;
  std::optional<RekeyExt> rekey;  // nullopt = zero-filled reserved space

  [[nodiscard]] bool has_rekey_space() const noexcept {
    return (flags & (ShimFlags::kKeyRequest | ShimFlags::kRekeyFilled)) != 0;
  }
  [[nodiscard]] std::size_t serialized_size() const noexcept;

  void serialize(ByteWriter& w) const;
  static ShimHeader parse(ByteReader& r);

  friend bool operator==(const ShimHeader&, const ShimHeader&) = default;
};

/// Zero-copy mutable view of a serialized shim packet (IPv4 + shim).
/// This is the neutralizer's datapath interface: field reads/rewrites
/// happen in place, mirroring what a Click element does to a packet
/// buffer. Construction validates structure; accessors are unchecked.
class ShimPacketView {
 public:
  /// Throws ParseError if the buffer is not an IPv4+shim packet large
  /// enough for the fields its flags promise.
  explicit ShimPacketView(std::span<std::uint8_t> packet);

  [[nodiscard]] Ipv4Addr src() const noexcept { return read_addr(12); }
  [[nodiscard]] Ipv4Addr dst() const noexcept { return read_addr(16); }
  void set_src(Ipv4Addr a) noexcept { write_addr(12, a); }
  void set_dst(Ipv4Addr a) noexcept { write_addr(16, a); }
  [[nodiscard]] Dscp dscp() const noexcept {
    return static_cast<Dscp>(bytes_[1] >> 2);
  }

  [[nodiscard]] ShimType type() const noexcept {
    return static_cast<ShimType>(bytes_[kIpv4HeaderSize]);
  }
  [[nodiscard]] std::uint8_t flags() const noexcept {
    return bytes_[kIpv4HeaderSize + 1];
  }
  void set_flags(std::uint8_t f) noexcept { bytes_[kIpv4HeaderSize + 1] = f; }
  [[nodiscard]] std::uint16_t key_epoch() const noexcept;
  void set_key_epoch(std::uint16_t epoch) noexcept;
  [[nodiscard]] std::uint64_t nonce() const noexcept;
  [[nodiscard]] std::uint32_t inner_addr() const noexcept;
  void set_inner_addr(std::uint32_t v) noexcept;

  [[nodiscard]] bool has_rekey_space() const noexcept {
    return (flags() & (ShimFlags::kKeyRequest | ShimFlags::kRekeyFilled)) != 0;
  }
  /// Stamps (nonce', epoch', Ks') and sets kRekeyFilled. Precondition
  /// (checked): rekey space present.
  void stamp_rekey(std::uint64_t nonce, std::uint16_t epoch,
                   const crypto::AesKey& key);
  [[nodiscard]] RekeyExt rekey() const;

  /// Payload after all shim fields.
  [[nodiscard]] std::span<std::uint8_t> payload() const noexcept;

  /// Recomputes the IPv4 header checksum after address rewrites.
  void refresh_ip_checksum() noexcept;

 private:
  std::span<std::uint8_t> bytes_;

  [[nodiscard]] Ipv4Addr read_addr(std::size_t off) const noexcept;
  void write_addr(std::size_t off, Ipv4Addr a) noexcept;
  [[nodiscard]] std::size_t rekey_offset() const noexcept;
  [[nodiscard]] std::size_t payload_offset() const noexcept;
};

}  // namespace nn::net
