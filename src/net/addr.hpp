// IPv4 address and prefix value types. Strongly typed so simulator code
// cannot confuse an address with other 32-bit quantities.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace nn::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parses dotted-quad notation; throws ParseError on malformed input.
  static Ipv4Addr from_string(std::string_view s);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] constexpr bool is_unspecified() const noexcept {
    return value_ == 0;
  }

  friend constexpr bool operator==(Ipv4Addr, Ipv4Addr) noexcept = default;
  friend constexpr std::strong_ordering operator<=>(Ipv4Addr,
                                                    Ipv4Addr) noexcept =
      default;

 private:
  std::uint32_t value_ = 0;
};

/// CIDR prefix, e.g. 10.1.0.0/16.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// Throws std::invalid_argument if length > 32. The base address is
  /// masked down to the prefix, so Ipv4Prefix(10.1.2.3/16) == 10.1.0.0/16.
  Ipv4Prefix(Ipv4Addr base, int length);

  /// Parses "a.b.c.d/len".
  static Ipv4Prefix from_string(std::string_view s);

  [[nodiscard]] constexpr Ipv4Addr base() const noexcept { return base_; }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
    return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
  }
  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const noexcept {
    return (addr.value() & mask()) == base_.value();
  }
  /// Address at `offset` within the prefix (for address assignment).
  [[nodiscard]] Ipv4Addr at(std::uint32_t offset) const;

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(Ipv4Prefix, Ipv4Prefix) noexcept = default;

 private:
  Ipv4Addr base_;
  int length_ = 0;
};

}  // namespace nn::net

template <>
struct std::hash<nn::net::Ipv4Addr> {
  std::size_t operator()(nn::net::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
