// Multi-homed site support (paper §3.5): a site publishes one
// neutralizer address per provider; sources choose which to use, which
// moves inbound path control from the site's BGP to the sources —
// "we can borrow any technique that can balance traffic load in that
// [IPv6 multi-address] context … two hosts may always use
// trial-and-error to find a path that's working for them."
//
// Strategies:
//   kFixed    — always the first address (the degenerate baseline);
//   kRandom   — uniform per-flow choice;
//   kWeighted — static weights (e.g. provisioned capacities);
//   kProbe    — trial-and-error: epsilon-greedy on an EWMA of observed
//               success/latency, the paper's suggestion.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/addr.hpp"
#include "util/rng.hpp"

namespace nn::multihome {

enum class Strategy {
  kFixed,
  kRandom,
  kWeighted,
  kProbe,
};

class NeutralizerSelector {
 public:
  struct Option {
    net::Ipv4Addr anycast;
    double weight = 1.0;  // kWeighted only
  };

  NeutralizerSelector(Strategy strategy, std::vector<Option> options,
                      std::uint64_t seed = 1);

  /// Picks the neutralizer for the next flow/packet.
  [[nodiscard]] net::Ipv4Addr pick();

  /// Feedback for kProbe: report whether traffic through `addr`
  /// succeeded and its observed latency (lower score = better).
  void report(net::Ipv4Addr addr, bool success, double latency_ms);

  [[nodiscard]] std::size_t option_count() const noexcept {
    return options_.size();
  }
  [[nodiscard]] double score(net::Ipv4Addr addr) const;

 private:
  struct State {
    Option option;
    double ewma_score;  // latency-ms equivalent; failures count heavily
    std::uint64_t picks = 0;
  };

  Strategy strategy_;
  std::vector<State> options_;
  SplitMix64 rng_;
  static constexpr double kAlpha = 0.3;        // EWMA gain
  static constexpr double kFailurePenalty = 1000.0;
  static constexpr double kExploreEpsilon = 0.1;

  [[nodiscard]] std::size_t index_of(net::Ipv4Addr addr) const;
};

}  // namespace nn::multihome
