#include "multihome/selector.hpp"

namespace nn::multihome {

NeutralizerSelector::NeutralizerSelector(Strategy strategy,
                                         std::vector<Option> options,
                                         std::uint64_t seed)
    : strategy_(strategy), rng_(seed) {
  if (options.empty()) {
    throw std::invalid_argument("NeutralizerSelector: no options");
  }
  for (auto& opt : options) {
    if (opt.weight <= 0) {
      throw std::invalid_argument("NeutralizerSelector: weight must be > 0");
    }
    // Optimistic initialization so kProbe explores everything once.
    options_.push_back(State{opt, 0.0, 0});
  }
}

std::size_t NeutralizerSelector::index_of(net::Ipv4Addr addr) const {
  for (std::size_t i = 0; i < options_.size(); ++i) {
    if (options_[i].option.anycast == addr) return i;
  }
  throw std::invalid_argument("NeutralizerSelector: unknown address");
}

net::Ipv4Addr NeutralizerSelector::pick() {
  std::size_t chosen = 0;
  switch (strategy_) {
    case Strategy::kFixed:
      chosen = 0;
      break;
    case Strategy::kRandom:
      chosen = rng_.uniform(options_.size());
      break;
    case Strategy::kWeighted: {
      double total = 0;
      for (const auto& s : options_) total += s.option.weight;
      double draw = rng_.uniform_double() * total;
      for (std::size_t i = 0; i < options_.size(); ++i) {
        draw -= options_[i].option.weight;
        if (draw <= 0) {
          chosen = i;
          break;
        }
        chosen = i;
      }
      break;
    }
    case Strategy::kProbe: {
      if (rng_.uniform_double() < kExploreEpsilon) {
        chosen = rng_.uniform(options_.size());
      } else {
        double best = options_[0].ewma_score;
        for (std::size_t i = 1; i < options_.size(); ++i) {
          if (options_[i].ewma_score < best) {
            best = options_[i].ewma_score;
            chosen = i;
          }
        }
      }
      break;
    }
  }
  ++options_[chosen].picks;
  return options_[chosen].option.anycast;
}

void NeutralizerSelector::report(net::Ipv4Addr addr, bool success,
                                 double latency_ms) {
  State& s = options_[index_of(addr)];
  const double sample = success ? latency_ms : kFailurePenalty;
  s.ewma_score = (1.0 - kAlpha) * s.ewma_score + kAlpha * sample;
}

double NeutralizerSelector::score(net::Ipv4Addr addr) const {
  return options_[index_of(addr)].ewma_score;
}

}  // namespace nn::multihome
