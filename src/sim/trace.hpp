// Packet tracing: a transit policy that records a tcpdump-style line
// per packet. The debugging workhorse for experiment topologies — drop
// it on any router and read what actually crossed the wire.
#pragma once

#include <string>
#include <vector>

#include "sim/node.hpp"

namespace nn::sim {

class TracePolicy final : public TransitPolicy {
 public:
  explicit TracePolicy(std::size_t max_records = 100000)
      : max_records_(max_records) {}

  PolicyDecision process(const net::Packet& pkt, SimTime now) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "trace";
  }

  struct Record {
    SimTime at = 0;
    net::Ipv4Addr src;
    net::Ipv4Addr dst;
    std::uint8_t protocol = 0;
    std::size_t size = 0;
    // Shim details when applicable.
    bool is_shim = false;
    std::uint8_t shim_type = 0;
    std::uint64_t nonce = 0;

    [[nodiscard]] std::string to_string() const;
  };

  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t total_seen() const noexcept { return seen_; }
  void clear() { records_.clear(); }

  /// All records as one newline-separated dump.
  [[nodiscard]] std::string dump() const;

 private:
  std::size_t max_records_;
  std::vector<Record> records_;
  std::uint64_t seen_ = 0;
};

}  // namespace nn::sim
