// Synthetic application workloads: measurement headers stamped into
// payloads, CBR/Poisson traffic sources, and flow sinks. These stand in
// for the paper's motivating applications (Vonage-style VoIP, web/bulk
// cross traffic) on the simulated topologies.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nn::sim {

/// 16-byte measurement header at the front of generated payloads; the
/// rest of the payload is padding to the configured size.
struct AppHeader {
  static constexpr std::size_t kSize = 16;
  static constexpr std::uint16_t kMagic = 0x4E4E;  // "NN"

  std::uint16_t flow_id = 0;
  std::uint32_t seq = 0;
  SimTime sent_at = 0;

  /// Builds a payload of `payload_size` bytes (>= kSize) with the
  /// header at the front and zero padding after.
  [[nodiscard]] std::vector<std::uint8_t> build_payload(
      std::size_t payload_size) const;

  /// Returns nullopt if the payload is too short or the magic differs
  /// (e.g. encrypted payloads observed mid-path).
  static std::optional<AppHeader> parse(std::span<const std::uint8_t> payload);
};

/// Packet-rate traffic generator. Transport-agnostic: it produces
/// payloads and hands them to a SendFn, which may be a raw UDP sender
/// or a neutralized/encrypted session.
class TrafficSource {
 public:
  using SendFn = std::function<void(std::vector<std::uint8_t>&& payload)>;

  struct Config {
    std::uint16_t flow_id = 0;
    std::size_t payload_size = 160;  // G.711 20ms frame
    double packets_per_second = 50;
    SimTime start = 0;
    SimTime stop = 10 * kSecond;
    bool poisson = false;  // false = CBR
    std::uint64_t seed = 1;
  };

  TrafficSource(Engine& engine, Config config, SendFn send);

  /// Schedules the first transmission. Idempotent: repeated calls are
  /// no-ops. (A second start used to double-schedule the emission
  /// chain, doubling the flow's rate — and in Poisson mode interleaving
  /// two emission chains over the one RNG, perturbing both streams.)
  void start();

  [[nodiscard]] std::uint32_t sent() const noexcept { return next_seq_; }

 private:
  Engine& engine_;
  Config config_;
  SendFn send_;
  SplitMix64 rng_;
  std::uint32_t next_seq_ = 0;
  bool started_ = false;

  void emit();
  [[nodiscard]] SimTime interval();
};

/// Receives payloads (via any transport) and aggregates per-flow
/// latency/loss statistics.
class FlowSink {
 public:
  struct FlowStats {
    std::uint64_t received = 0;
    /// Payload bytes received (AppHeader included) — with variable-size
    /// workloads this is what distinguishes an IMIX flow from a CBR one.
    std::uint64_t bytes = 0;
    std::uint32_t max_seq_seen = 0;
    bool any = false;
    nn::Histogram latency_ms;

    /// Loss inferred from the sequence-number horizon.
    [[nodiscard]] double loss_rate() const noexcept {
      if (!any) return 0.0;
      const double expected = static_cast<double>(max_seq_seen) + 1.0;
      return 1.0 - static_cast<double>(received) / expected;
    }
  };

  /// Feed a received payload; ignores payloads without an AppHeader.
  void on_payload(std::span<const std::uint8_t> payload, SimTime now);

  [[nodiscard]] const FlowStats& flow(std::uint16_t id) const;
  [[nodiscard]] bool has_flow(std::uint16_t id) const {
    return flows_.contains(id);
  }
  [[nodiscard]] std::uint64_t total_received() const noexcept {
    return total_;
  }

 private:
  std::unordered_map<std::uint16_t, FlowStats> flows_;
  std::uint64_t total_ = 0;
  static const FlowStats kEmpty;
};

/// Simplified ITU-T E-model MOS estimate from one-way latency and loss
/// (G.711-style Ie curve). Used as the "VoIP quality" metric in the
/// discrimination experiments (paper §1's Vonage scenario).
[[nodiscard]] double estimate_mos(double one_way_latency_ms,
                                  double loss_rate) noexcept;

}  // namespace nn::sim
