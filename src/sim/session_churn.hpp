// Session-scale churn workloads for the §3.4 control plane.
//
// The data-path workloads (trace_workload.hpp) exercise packets; this
// one exercises *state*: a deterministic arrival/departure process over
// up to millions of dynamic-address sessions, with configurable lease
// lifetimes, renewal jitter, explicit-release vs lapse-and-expire
// endings, and epoch-rekey storms that hit every resident session in
// the same instant. The schedule is a pure function of its config —
// per-session randomness is keyed by (seed, session id), so the same
// config produces the same lifecycle for session k no matter how many
// other sessions interleave — which is what lets the churn soak assert
// byte-identity across 1/2/4/8-shard deployments.
//
// SessionChurnWorkload replays a schedule on a sim::Engine through an
// OpFn, exactly like TraceWorkload replays packets through a SendFn;
// scenario/fig1.* wires the OpFn to dynamic-address requests, renewals,
// releases, and Neutralizer::rekey_dynamic_sessions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"

namespace nn::sim {

/// One control-plane event. `session` is the workload's own session id
/// (dense, 0-based) — the scenario maps it to whatever handle the
/// control plane hands back (the dynamic address).
struct SessionEvent {
  enum class Kind : std::uint8_t {
    kArrive,      ///< session requests a dynamic address
    kRenew,       ///< session renews its lease before expiry
    kDepart,      ///< session releases its address explicitly
    kRekeyStorm,  ///< every resident session rekeys (session unused)
  };

  SimTime at = 0;
  Kind kind = Kind::kArrive;
  std::uint64_t session = 0;

  friend bool operator==(const SessionEvent&, const SessionEvent&) = default;
};

/// Configuration for churn_schedule(). Lifecycle of one session:
/// arrive; while the lease holds, renew with `renew_probability` (at a
/// jittered instant strictly before expiry) up to `max_renewals` times;
/// then either depart explicitly (`depart_probability`) or lapse and
/// let the server's lease collector expire it. `lease == 0` makes
/// sessions permanent (arrive-only — how the benches build a resident
/// population). Storms fire on every multiple of `rekey_interval` up to
/// `horizon`.
struct SessionChurnConfig {
  std::size_t sessions = 0;
  double arrivals_per_second = 1000;
  bool poisson = false;  ///< false = CBR arrival spacing
  SimTime lease = 0;
  double renew_probability = 0.5;
  /// Renewals fire uniformly inside [expiry - jitter·lease, expiry).
  double renewal_jitter = 0.25;
  std::size_t max_renewals = 4;
  /// Of the sessions that stop renewing: fraction that release
  /// explicitly; the rest lapse (exercising the expiry path).
  double depart_probability = 0.5;
  SimTime rekey_interval = 0;  ///< 0 = no storms
  /// Events at or beyond `horizon` are dropped (sessions still alive
  /// stay resident — the reconciliation tail). 0 = unbounded, in which
  /// case `rekey_interval` must be 0 too (no storm stop condition).
  SimTime horizon = 0;
  std::uint64_t seed = 1;
};

/// Deterministic schedule: same config, same events (sorted by time,
/// ties in generation order).
[[nodiscard]] std::vector<SessionEvent> churn_schedule(
    const SessionChurnConfig& config);

/// Replays a schedule on the engine. Transport-agnostic like
/// TraceWorkload: each due event is handed to the OpFn with its replay
/// time (`at` equals the engine clock unbatched; batched windows hand
/// over past-stamped groups, same contract as TraceWorkload::SendFn).
class SessionChurnWorkload {
 public:
  using OpFn = std::function<void(const SessionEvent& event, SimTime at)>;

  struct Config {
    SimTime start = 0;
    /// 0 = one engine event per schedule entry; positive = wake on
    /// global multiples of the window and deliver everything due,
    /// stamped with its own time (see TraceWorkload::Config).
    SimTime batch_window = 0;
    /// Fault injection for the persistence subsystem: after exactly
    /// `crash_after` events have been delivered, `on_crash` fires once
    /// (before the next event is handed over). The callback typically
    /// tears the box down and crash-recovers it from snapshot +
    /// journal; delivery then continues against the recovered box, so
    /// a differential against an uncrashed run covers the whole
    /// post-recovery tail. 0 = never.
    std::uint64_t crash_after = 0;
    std::function<void(SimTime now)> on_crash;
  };

  /// The schedule need not be sorted; events replay in time order
  /// (ties keep schedule order).
  SessionChurnWorkload(Engine& engine, std::vector<SessionEvent> schedule,
                       Config config, OpFn op);

  /// Schedules the replay. Idempotent like TraceWorkload::start().
  void start();

  /// Events handed to the OpFn so far.
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::size_t schedule_size() const noexcept {
    return schedule_.size();
  }

 private:
  Engine& engine_;
  std::vector<SessionEvent> schedule_;
  Config config_;
  OpFn op_;
  std::size_t next_ = 0;
  std::uint64_t delivered_ = 0;
  bool started_ = false;
  bool crashed_ = false;

  void emit_due();
  [[nodiscard]] SimTime replay_time(std::size_t index) const noexcept;
  [[nodiscard]] SimTime next_wakeup() const noexcept;
};

}  // namespace nn::sim
