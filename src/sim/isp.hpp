// ISP domain: a named group of routers with a customer address space.
// Used by experiments to say "AT&T applies this policy at its borders"
// in one line.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/addr.hpp"
#include "sim/node.hpp"

namespace nn::sim {

class Isp {
 public:
  Isp(std::string name, net::Ipv4Prefix customer_space)
      : name_(std::move(name)), customer_space_(customer_space) {}

  void add_router(Router& r) { routers_.push_back(&r); }

  /// Attaches the policy to every router of the domain. In the threat
  /// model (§2) an ISP can only act inside its own network, which this
  /// models exactly.
  void apply_policy(const std::shared_ptr<TransitPolicy>& policy) {
    for (Router* r : routers_) r->add_policy(policy);
  }
  void clear_policies() {
    for (Router* r : routers_) r->clear_policies();
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const net::Ipv4Prefix& customer_space() const noexcept {
    return customer_space_;
  }
  [[nodiscard]] bool is_customer(net::Ipv4Addr addr) const noexcept {
    return customer_space_.contains(addr);
  }
  [[nodiscard]] const std::vector<Router*>& routers() const noexcept {
    return routers_;
  }

 private:
  std::string name_;
  net::Ipv4Prefix customer_space_;
  std::vector<Router*> routers_;
};

}  // namespace nn::sim
