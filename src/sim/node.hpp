// Simulation nodes: the Node base, Host endpoints, and Router with
// pluggable transit policies.
//
// The transit-policy interface deliberately takes a *const* packet: the
// paper's threat model (§2) lets a discriminatory ISP "eavesdrop on all
// traffic, perform traffic analysis, delay or drop packets within its
// network" but NOT modify them. The type system enforces that boundary.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace nn::sim {

class Network;

struct NodeId {
  std::uint32_t value = UINT32_MAX;

  [[nodiscard]] bool valid() const noexcept { return value != UINT32_MAX; }
  friend bool operator==(NodeId, NodeId) noexcept = default;
};

/// One stamped delivery from a batch-aware link: the packet plus its
/// exact arrival time. A burst-mode link delivers a whole transmission
/// train at one engine event; `at` preserves each packet's per-packet
/// timing (`at <= now()` for link deliveries — the event fires once
/// the last packet of the train has arrived).
struct Delivery {
  net::Packet pkt;
  SimTime at = 0;
};

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Called when a packet is delivered to this node by a link (or by
  /// local delivery).
  virtual void receive(net::Packet&& pkt) = 0;

  /// Stamped delivery: `at` is the packet's exact arrival time, which
  /// can sit earlier than now() when a burst-mode link coalesced the
  /// train it rode in. Stamp-aware nodes (Host, Router, the boxes)
  /// override this; the default drops the stamp.
  virtual void receive_at(net::Packet&& pkt, SimTime at) {
    (void)at;
    receive(std::move(pkt));
  }

  /// Whole-train delivery from a burst-mode link. Default: unroll into
  /// per-packet receive_at() calls, preserving stamps and order.
  virtual void receive_burst(std::span<Delivery> train) {
    for (Delivery& d : train) receive_at(std::move(d.pkt), d.at);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  /// Primary unicast address (set by Network::assign_address).
  [[nodiscard]] net::Ipv4Addr address() const noexcept { return address_; }

 protected:
  [[nodiscard]] Network& network() const;
  /// Routes a packet into the network from this node. `when` is the
  /// packet's virtual departure time: kUnstamped means "now"; a future
  /// time defers the wire arrival (the egress link schedules it); a
  /// past time preserves upstream timing through a coalesced delivery.
  void send(net::Packet&& pkt, SimTime when = kUnstamped);

 private:
  friend class Network;
  Network* network_ = nullptr;
  NodeId id_{};
  net::Ipv4Addr address_;
  std::string name_;
};

/// Decision returned by a transit policy for one packet.
struct PolicyDecision {
  bool drop = false;
  SimTime extra_delay = 0;

  static PolicyDecision forward() noexcept { return {}; }
  static PolicyDecision dropped() noexcept { return {true, 0}; }
  static PolicyDecision delayed(SimTime d) noexcept { return {false, d}; }
};

/// A policy applied to packets in transit through a router. Policies
/// observe but cannot modify packets (threat model §2).
class TransitPolicy {
 public:
  virtual ~TransitPolicy() = default;
  virtual PolicyDecision process(const net::Packet& pkt, SimTime now) = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept {
    return "policy";
  }
};

/// End host: delivers packets to an application handler.
class Host : public Node {
 public:
  using Handler = std::function<void(net::Packet&&)>;
  using StampedHandler = std::function<void(net::Packet&&, SimTime)>;

  explicit Host(std::string name) : Node(std::move(name)) {}

  void set_handler(Handler handler) {
    handler_ = std::move(handler);
    stamped_handler_ = nullptr;
  }
  /// Arrival-time-aware handler for burst-mode topologies: the second
  /// argument is the packet's exact arrival even when a coalescing
  /// link delivered its whole train in one event. The latest
  /// set_handler / set_stamped_handler call wins.
  void set_stamped_handler(StampedHandler handler) {
    stamped_handler_ = std::move(handler);
    handler_ = nullptr;
  }
  /// Current handler (copyable), so applications can chain: install a
  /// filter that passes non-matching packets to the previous handler.
  [[nodiscard]] Handler handler() const { return handler_; }
  void receive(net::Packet&& pkt) override;
  void receive_at(net::Packet&& pkt, SimTime at) override;

  /// Sends a packet into the network (public so protocol stacks and
  /// traffic generators can transmit on the host's behalf). `when`
  /// stamps the packet's virtual departure (batched trace replay hands
  /// past-dated sends); kUnstamped means "now".
  void transmit(net::Packet&& pkt, SimTime when = kUnstamped) {
    send(std::move(pkt), when);
  }

  [[nodiscard]] std::uint64_t received_packets() const noexcept {
    return received_;
  }

 private:
  Handler handler_;
  StampedHandler stamped_handler_;
  std::uint64_t received_ = 0;
};

struct RouterStats {
  std::uint64_t forwarded = 0;
  std::uint64_t policy_dropped = 0;
  std::uint64_t ttl_dropped = 0;
  std::uint64_t no_route_dropped = 0;
  std::uint64_t consumed = 0;
};

/// IP router: applies transit policies, decrements TTL, forwards.
class Router : public Node {
 public:
  explicit Router(std::string name) : Node(std::move(name)) {}

  /// Policies run in attachment order; the first drop wins, delays add.
  void add_policy(std::shared_ptr<TransitPolicy> policy) {
    policies_.push_back(std::move(policy));
  }
  void clear_policies() { policies_.clear(); }

  void receive(net::Packet&& pkt) override;
  void receive_at(net::Packet&& pkt, SimTime at) override;

  [[nodiscard]] const RouterStats& stats() const noexcept { return stats_; }

 protected:
  /// True if this node terminates packets addressed to `dst`. The
  /// default matches the router's unicast address; the neutralizer box
  /// extends it with its anycast service address.
  [[nodiscard]] virtual bool is_local_destination(net::Ipv4Addr dst) const {
    return dst == address() && !address().is_unspecified();
  }
  /// Hook for subclasses (e.g. the neutralizer box) to process packets
  /// addressed to this node. Default: count and drop.
  virtual void consume(net::Packet&& pkt);
  /// Stamped flavor of consume(); stamp-aware subclasses (the boxes)
  /// override this one. Default: drop the stamp.
  virtual void consume_at(net::Packet&& pkt, SimTime at) {
    (void)at;
    consume(std::move(pkt));
  }
  /// Forwards after policy/TTL handling.
  void forward(net::Packet&& pkt);
  /// Stamped forward: the departure rides the packet's own timeline.
  void forward(net::Packet&& pkt, SimTime at);

  RouterStats stats_;

 private:
  std::vector<std::shared_ptr<TransitPolicy>> policies_;
};

}  // namespace nn::sim
