#include "sim/link.hpp"

#include <cmath>
#include <utility>

namespace nn::sim {

Link::Link(Engine& engine, const LinkConfig& config, DeliverFn deliver)
    : engine_(engine), config_(config), deliver_(std::move(deliver)) {
  if (config_.queue_factory) {
    queue_ = config_.queue_factory();
  } else {
    queue_ = std::make_unique<DropTailQueue>(config_.queue_bytes);
  }
}

SimTime Link::tx_time(std::size_t bytes) const noexcept {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return static_cast<SimTime>(std::llround(seconds * 1e9));
}

void Link::send(net::Packet&& pkt) {
  if (transmitting_) {
    if (!queue_->enqueue(std::move(pkt))) {
      ++stats_.dropped_packets;
    }
    return;
  }
  start_transmission(std::move(pkt));
}

void Link::start_transmission(net::Packet&& pkt) {
  transmitting_ = true;
  const SimTime serialize = tx_time(pkt.size());
  ++stats_.tx_packets;
  stats_.tx_bytes += pkt.size();
  // Delivery happens after serialization + propagation; the link frees
  // up after serialization alone.
  engine_.schedule_in(
      serialize + config_.propagation,
      [this, p = std::move(pkt)]() mutable { deliver_(std::move(p)); });
  engine_.schedule_in(serialize, [this] { transmission_done(); });
}

void Link::transmission_done() {
  transmitting_ = false;
  if (auto next = queue_->dequeue()) {
    start_transmission(std::move(*next));
  }
}

}  // namespace nn::sim
