#include "sim/link.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace nn::sim {

Link::Link(Engine& engine, const LinkConfig& config, DeliverFn deliver)
    : engine_(engine),
      config_(config),
      deliver_(std::move(deliver)),
      burst_mode_(config.burst_packets > 1) {
  if (config_.queue_factory) {
    queue_ = config_.queue_factory();
  } else {
    queue_ = std::make_unique<DropTailQueue>(config_.queue_bytes);
  }
}

SimTime Link::tx_time(std::size_t bytes) const noexcept {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return static_cast<SimTime>(std::llround(seconds * 1e9));
}

void Link::send(net::Packet&& pkt, SimTime when) {
  if (when > engine_.now()) {
    // In-flight arrival (a stamped emission dated ahead of the event
    // that produced it): defer the send to the packet's own instant so
    // queueing and drop decisions run against that instant's state,
    // exactly as per-packet mode would see them.
    engine_.schedule_at(when, [this, p = std::move(pkt), when]() mutable {
      send(std::move(p), when);
    });
    return;
  }
  if (burst_mode_) {
    const SimTime now = engine_.now();
    if (when != kUnstamped && (when < now || !pending_.empty())) {
      // A past stamp means this instant is replaying earlier virtual
      // time (a batched source window, a delivered train's chain), and
      // same-instant senders need not call in stamp order: buffer and
      // replay everything in stamp order at the end of the instant. A
      // now-stamped arrival joins only when earlier-stamped ones are
      // already waiting, so the common live send stays synchronous.
      pending_.emplace_back(when, std::move(pkt));
      request_schedule();
      return;
    }
    arrive(std::move(pkt), when == kUnstamped ? now : when);
    return;
  }
  if (transmitting_) {
    const std::size_t size = pkt.size();
    if (!queue_->enqueue(std::move(pkt))) {
      ++stats_.dropped_packets;
      stats_.dropped_bytes += size;
    }
    return;
  }
  start_transmission(std::move(pkt));
}

// ---------------------------------------------------------------------------
// Classic per-packet path: two events per packet.

void Link::start_transmission(net::Packet&& pkt) {
  transmitting_ = true;
  const SimTime serialize = tx_time(pkt.size());
  ++stats_.tx_packets;
  stats_.tx_bytes += pkt.size();
  // Delivery happens after serialization + propagation; the link frees
  // up after serialization alone.
  engine_.schedule_in(serialize + config_.propagation,
                      [this, p = std::move(pkt)]() mutable {
                        ++stats_.delivery_events;
                        deliver_(std::move(p));
                      });
  engine_.schedule_in(serialize, [this] { transmission_done(); });
}

void Link::transmission_done() {
  transmitting_ = false;
  if (auto next = queue_->dequeue()) {
    start_transmission(std::move(*next));
  }
}

// ---------------------------------------------------------------------------
// Burst path. The link runs on a virtual serialization timeline
// (vfree_ = the instant the wire goes quiet) and spends engine events
// only at train boundaries. Invariant threaded through everything
// below: a packet sitting in the egress queue arrived at or before
// vfree_, so the next train always starts exactly at vfree_.

void Link::arrive(net::Packet&& pkt, SimTime v) {
  const SimTime now = engine_.now();
  if (transmitting_ && now >= vfree_ && !train_event_scheduled_ &&
      queue_->empty() && train_.size() < config_.burst_packets &&
      train_bytes_ < config_.burst_bytes) {
    // The active train formed earlier in this same instant (its
    // delivery event is still deferred) and has fully serialized in
    // virtual time: a stamped chain arriving back-to-back extends it
    // in place, so a whole forwarded train costs one delivery event
    // downstream too instead of one per packet.
    extend_train(std::move(pkt), std::max(v, vfree_));
    return;
  }
  while (transmitting_ && now >= vfree_) {
    // The active train has fully serialized; only its delivery event
    // is still in flight. Seal it so this packet sees the wire as it
    // really is — and keep going: the backlog train formed from the
    // queue may itself end before `now`, in which case this packet
    // must not queue behind it (it would be past-dated into a train
    // that finished before it arrived).
    seal_train();
    transmitting_ = false;
    if (!queue_->empty()) begin_train_from_queue();
  }
  if (!transmitting_) {
    begin_train_with(std::move(pkt), std::max(v, vfree_));
    return;
  }
  // Mid-train arrival: un-commit the not-yet-started tail so this
  // packet competes with it in the queue — drop and priority decisions
  // then match per-packet mode exactly. The backlog re-forms into the
  // next train at the next arrival that crosses vfree_ (the seal loop
  // above) or at this train's own delivery event, both of which chain
  // from vfree_ in virtual time, so no dedicated free event is needed.
  abort_tail(now);
  const std::size_t size = pkt.size();
  if (!queue_->enqueue(std::move(pkt))) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += size;
  }
}

void Link::begin_train_with(net::Packet&& pkt, SimTime start) {
  // An arrival on a free wire transmits alone, exactly like classic
  // start_transmission; coalescing only ever feeds on queued backlog.
  transmitting_ = true;
  ++train_gen_;
  train_.clear();
  train_starts_.clear();
  train_bytes_ = pkt.size();
  const SimTime end = start + tx_time(pkt.size());
  train_starts_.push_back(start);
  train_.push_back(Delivery{std::move(pkt), end + config_.propagation});
  vfree_ = end;
  commit_train();
}

void Link::begin_train_from_queue() {
  transmitting_ = true;
  ++train_gen_;
  train_.clear();
  train_starts_.clear();
  train_bytes_ = 0;
  scratch_.clear();
  // Form only as much train as has *actually* serialized by now: the
  // byte cap is the wire capacity of [vfree_, now], and dequeue_burst
  // includes the packet that crosses it. Committing further would be
  // speculation about packets that start serializing in the future —
  // exactly the trains a later arrival would have to abort — so this
  // stop rule makes mid-train aborts structurally impossible for
  // queue-formed trains while keeping the timeline byte-exact (any
  // committed prefix is; the cap only bounds speculation).
  const SimTime window = engine_.now() - vfree_;
  const double cap_bytes =
      window > 0
          ? static_cast<double>(window) * config_.bandwidth_bps / 8.0e9
          : 0.0;
  const std::size_t time_cap =
      cap_bytes >= static_cast<double>(SIZE_MAX)
          ? SIZE_MAX
          : static_cast<std::size_t>(cap_bytes);
  queue_->dequeue_burst(config_.burst_packets,
                        std::min(config_.burst_bytes, time_cap), scratch_);
  if (scratch_.empty()) {
    // Zero cap (formation at the exact free instant, or a degenerate
    // burst_bytes): take one anyway so the wire never idles over work.
    if (auto p = queue_->dequeue()) scratch_.push_back(std::move(*p));
  }
  SimTime t = vfree_;
  train_.reserve(scratch_.size());
  train_starts_.reserve(scratch_.size());
  for (net::Packet& p : scratch_) {
    train_starts_.push_back(t);
    t += tx_time(p.size());
    train_bytes_ += p.size();
    train_.push_back(Delivery{std::move(p), t + config_.propagation});
  }
  scratch_.clear();
  vfree_ = t;
  commit_train();
}

void Link::commit_train() {
  // A train still serializing past `now` cannot be extended (extension
  // needs now >= vfree_), so its delivery event is scheduled on the
  // spot — an uncongested link keeps costing exactly one event per
  // packet. Only a past-dated train (a stamped chain replaying earlier
  // virtual time) defers scheduling to the end of the instant, where
  // one event covers however far the chain extended it.
  if (vfree_ > engine_.now()) {
    train_event_scheduled_ = true;
    schedule_delivery();
    return;
  }
  train_event_scheduled_ = false;
  request_schedule();
}

void Link::extend_train(net::Packet&& pkt, SimTime start) {
  const SimTime end = start + tx_time(pkt.size());
  train_bytes_ += pkt.size();
  train_starts_.push_back(start);
  train_.push_back(Delivery{std::move(pkt), end + config_.propagation});
  vfree_ = end;
}

void Link::request_schedule() {
  // The running flush finishes with a scheduling pass of its own, so
  // re-arming from inside it would only buy a no-op callback.
  if (in_flush_) return;
  engine_.defer_once(this, [this] { flush_deferred(); });
}

void Link::flush_deferred() {
  in_flush_ = true;
  std::stable_sort(
      pending_.begin(), pending_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [v, p] : pending_) arrive(std::move(p), v);
  pending_.clear();
  in_flush_ = false;
  flush_schedules();
}

void Link::flush_schedules() {
  for (const auto& [gen, at] : sched_backlog_) {
    engine_.schedule_at(at, [this, gen] { on_delivery(gen); });
  }
  sched_backlog_.clear();
  if (transmitting_ && !train_event_scheduled_) {
    train_event_scheduled_ = true;
    schedule_delivery();
  }
}

void Link::schedule_delivery() {
  const std::uint64_t gen = train_gen_;
  engine_.schedule_at(vfree_ + config_.propagation,
                      [this, gen] { on_delivery(gen); });
}

void Link::seal_train() {
  for (const Delivery& d : train_) {
    ++stats_.tx_packets;
    stats_.tx_bytes += d.pkt.size();
  }
  ++stats_.trains;
  stats_.max_train = std::max<std::uint64_t>(stats_.max_train, train_.size());
  if (!train_event_scheduled_ && !train_.empty()) {
    // Sealed before its deferred event was created (a later arrival in
    // the same instant ended it): park the event for flush_schedules.
    sched_backlog_.emplace_back(train_gen_, train_.back().at);
    request_schedule();
  }
  sealed_.emplace_back(train_gen_, std::move(train_));
  train_.clear();
  train_starts_.clear();
}

void Link::abort_tail(SimTime now) {
  // Packets whose virtual serialization start is still ahead of `now`
  // have not begun transmitting; hand them back to the queue. The head
  // always stays: forming the train started it (per-packet mode's
  // dequeue-on-done did the same before any same-instant send ran).
  std::size_t split = train_.size();
  for (std::size_t i = 1; i < train_.size(); ++i) {
    if (train_starts_[i] >= now) {
      split = i;
      break;
    }
  }
  if (split == train_.size()) return;
  scratch_.clear();
  for (std::size_t i = split; i < train_.size(); ++i) {
    train_bytes_ -= train_[i].pkt.size();
    scratch_.push_back(std::move(train_[i].pkt));
  }
  train_.resize(split);
  vfree_ = train_starts_[split];
  train_starts_.resize(split);
  queue_->requeue_front(std::move(scratch_));
  scratch_.clear();
  ++train_gen_;
  ++stats_.train_aborts;
  // Any already-scheduled event is now stale (old generation); commit
  // the truncated train again for a replacement.
  commit_train();
}

void Link::on_delivery(std::uint64_t gen) {
  if (transmitting_ && gen == train_gen_) {
    // Nothing arrived during this train, so no free event sealed it;
    // seal and free here (its serialization ended at or before this
    // event's time).
    seal_train();
    transmitting_ = false;
  }
  if (sealed_.empty() || sealed_.front().first != gen) return;  // stale
  std::vector<Delivery> train = std::move(sealed_.front().second);
  sealed_.pop_front();
  ++stats_.delivery_events;
  if (burst_deliver_) {
    burst_deliver_(std::span<Delivery>(train));
  } else {
    for (Delivery& d : train) deliver_(std::move(d.pkt));
  }
  // With zero propagation this event and a free event can share an
  // instant with this event sequenced first; pick up any backlog so
  // the wire never idles with work queued.
  if (!transmitting_ && !queue_->empty()) begin_train_from_queue();
}

}  // namespace nn::sim
