#include "sim/trace.hpp"

#include <sstream>

#include "net/shim.hpp"

namespace nn::sim {

namespace {
const char* shim_type_name(std::uint8_t t) {
  switch (static_cast<net::ShimType>(t)) {
    case net::ShimType::kKeySetup:
      return "KEY_SETUP";
    case net::ShimType::kKeySetupResponse:
      return "KEY_SETUP_RESP";
    case net::ShimType::kDataForward:
      return "DATA_FWD";
    case net::ShimType::kDataReturn:
      return "DATA_RET";
    case net::ShimType::kKeyLease:
      return "KEY_LEASE";
    case net::ShimType::kKeyLeaseResponse:
      return "KEY_LEASE_RESP";
    case net::ShimType::kDynAddrRequest:
      return "DYN_REQ";
    case net::ShimType::kDynAddrResponse:
      return "DYN_RESP";
  }
  return "?";
}
}  // namespace

PolicyDecision TracePolicy::process(const net::Packet& pkt, SimTime now) {
  ++seen_;
  if (records_.size() < max_records_ && pkt.size() >= net::kIpv4HeaderSize) {
    Record r;
    r.at = now;
    r.src = net::Ipv4Addr((static_cast<std::uint32_t>(pkt.bytes[12]) << 24) |
                          (static_cast<std::uint32_t>(pkt.bytes[13]) << 16) |
                          (static_cast<std::uint32_t>(pkt.bytes[14]) << 8) |
                          pkt.bytes[15]);
    r.dst = net::Ipv4Addr((static_cast<std::uint32_t>(pkt.bytes[16]) << 24) |
                          (static_cast<std::uint32_t>(pkt.bytes[17]) << 16) |
                          (static_cast<std::uint32_t>(pkt.bytes[18]) << 8) |
                          pkt.bytes[19]);
    r.protocol = pkt.bytes[9];
    r.size = pkt.size();
    if (r.protocol == static_cast<std::uint8_t>(net::IpProto::kShim) &&
        pkt.size() >= net::kIpv4HeaderSize + net::kShimBaseSize) {
      r.is_shim = true;
      r.shim_type = pkt.bytes[net::kIpv4HeaderSize];
      for (int i = 0; i < 8; ++i) {
        r.nonce = (r.nonce << 8) |
                  pkt.bytes[net::kIpv4HeaderSize + 4 +
                            static_cast<std::size_t>(i)];
      }
    }
    records_.push_back(r);
  }
  return PolicyDecision::forward();
}

std::string TracePolicy::Record::to_string() const {
  std::ostringstream os;
  os << static_cast<double>(at) / static_cast<double>(kMillisecond) << "ms "
     << src.to_string() << " > " << dst.to_string() << " ";
  if (is_shim) {
    os << shim_type_name(shim_type) << " nonce=" << std::hex << nonce
       << std::dec;
  } else {
    os << "proto=" << static_cast<int>(protocol);
  }
  os << " len=" << size;
  return os.str();
}

std::string TracePolicy::dump() const {
  std::ostringstream os;
  for (const auto& r : records_) os << r.to_string() << "\n";
  return os.str();
}

}  // namespace nn::sim
