#include "sim/queue.hpp"

namespace nn::sim {

bool DropTailQueue::enqueue(net::Packet&& pkt) {
  if (bytes_ + pkt.size() > capacity_bytes_) return false;
  bytes_ += pkt.size();
  queue_.push_back(std::move(pkt));
  return true;
}

std::optional<net::Packet> DropTailQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  net::Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= pkt.size();
  return pkt;
}

}  // namespace nn::sim
