#include "sim/queue.hpp"

namespace nn::sim {

std::size_t QueueDisc::dequeue_burst(std::size_t max_packets,
                                     std::size_t max_bytes,
                                     std::vector<net::Packet>& out) {
  std::size_t popped = 0;
  std::size_t bytes = 0;
  while (popped < max_packets && bytes < max_bytes) {
    auto pkt = dequeue();
    if (!pkt.has_value()) break;
    bytes += pkt->size();
    out.push_back(std::move(*pkt));
    ++popped;
  }
  return popped;
}

bool DropTailQueue::enqueue(net::Packet&& pkt) {
  // bytes_ <= capacity is an invariant, so compare against the
  // remaining headroom instead of summing — `bytes_ + size` could wrap
  // for an effectively-unbounded capacity of SIZE_MAX.
  if (pkt.size() > capacity_bytes_ - bytes_) {
    note_drop(pkt);
    return false;
  }
  bytes_ += pkt.size();
  queue_.push_back(std::move(pkt));
  return true;
}

std::optional<net::Packet> DropTailQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  net::Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= pkt.size();
  return pkt;
}

std::size_t DropTailQueue::dequeue_burst(std::size_t max_packets,
                                         std::size_t max_bytes,
                                         std::vector<net::Packet>& out) {
  std::size_t popped = 0;
  std::size_t taken = 0;
  while (popped < max_packets && taken < max_bytes && !queue_.empty()) {
    net::Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    bytes_ -= pkt.size();
    taken += pkt.size();
    out.push_back(std::move(pkt));
    ++popped;
  }
  return popped;
}

void DropTailQueue::requeue_front(std::vector<net::Packet>&& pkts) {
  for (auto it = pkts.rbegin(); it != pkts.rend(); ++it) {
    bytes_ += it->size();
    queue_.push_front(std::move(*it));
  }
  pkts.clear();
}

}  // namespace nn::sim
