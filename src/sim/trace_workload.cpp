#include "sim/trace_workload.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "util/rng.hpp"

namespace nn::sim {

std::vector<SizeClass> classic_imix() {
  return {{40, 7.0}, {576, 4.0}, {1500, 1.0}};
}

std::vector<TracePacket> imix_trace(const ImixConfig& config) {
  std::vector<SizeClass> classes =
      config.classes.empty() ? classic_imix() : config.classes;
  double total_weight = 0;
  for (const auto& c : classes) total_weight += c.weight;

  std::vector<TracePacket> trace;
  if (config.packets_per_second <= 0 || config.duration <= 0 ||
      config.flows == 0 || total_weight <= 0) {
    return trace;
  }
  trace.reserve(static_cast<std::size_t>(
      config.packets_per_second *
      (static_cast<double>(config.duration) / kSecond) * 1.1));

  SplitMix64 rng(config.seed);
  const double mean_ns = 1e9 / config.packets_per_second;
  // flow_id is 16 bits; clamp so flows can never alias by wrapping.
  const std::uint64_t flows =
      config.flows < 65536 ? config.flows : std::size_t{65536};
  // First packet at t=0 (like TrafficSource), so pps * duration packets
  // come out and workload kinds are comparable at identical rates.
  double at = 0;
  while (true) {
    const SimTime when = static_cast<SimTime>(std::llround(at));
    if (when >= config.duration) break;
    at += config.poisson ? rng.exponential(mean_ns) : mean_ns;
    TracePacket pkt;
    pkt.at = when;
    pkt.flow_id = static_cast<std::uint16_t>(rng.uniform(flows));
    double draw = rng.uniform_double() * total_weight;
    pkt.wire_size = classes.back().wire_size;
    for (const auto& c : classes) {
      if (draw < c.weight) {
        pkt.wire_size = c.wire_size;
        break;
      }
      draw -= c.weight;
    }
    trace.push_back(pkt);
  }
  return trace;
}

std::vector<TracePacket> trace_from_pcap(const net::PcapFile& file) {
  // Flow key: (src, dst, proto, src port, dst port), ports zero when the
  // captured bytes do not reach them. Values are flow ids in order of
  // first appearance.
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  std::map<Key, std::size_t> flows;
  std::vector<TracePacket> trace;
  std::int64_t t0 = 0;
  bool first = true;

  for (const auto& rec : file.records) {
    const auto ip = net::ipv4_of_record(file, rec);
    if (!ip.has_value() || ip->size() < 20) continue;
    const auto& b = *ip;
    const std::uint32_t src = (static_cast<std::uint32_t>(b[12]) << 24) |
                              (static_cast<std::uint32_t>(b[13]) << 16) |
                              (static_cast<std::uint32_t>(b[14]) << 8) | b[15];
    const std::uint32_t dst = (static_cast<std::uint32_t>(b[16]) << 24) |
                              (static_cast<std::uint32_t>(b[17]) << 16) |
                              (static_cast<std::uint32_t>(b[18]) << 8) | b[19];
    const std::uint8_t proto = b[9];
    const std::size_t ihl = static_cast<std::size_t>(b[0] & 0x0F) * 4;
    std::uint32_t ports = 0;
    // ihl < 20 is a corrupt header (pcap leaves payloads unvalidated);
    // fall back to ports = 0 rather than reading ports from inside IP.
    if ((proto == 6 || proto == 17) && ihl >= 20 && b.size() >= ihl + 4) {
      ports = (static_cast<std::uint32_t>(b[ihl]) << 24) |
              (static_cast<std::uint32_t>(b[ihl + 1]) << 16) |
              (static_cast<std::uint32_t>(b[ihl + 2]) << 8) | b[ihl + 3];
    }
    const Key key{(static_cast<std::uint64_t>(src) << 32) | dst,
                  (static_cast<std::uint64_t>(proto) << 32) | ports};
    const std::size_t flow = flows.emplace(key, flows.size()).first->second;

    if (first) {
      t0 = rec.ts_ns;
      first = false;
    }
    TracePacket pkt;
    pkt.at = rec.ts_ns >= t0 ? rec.ts_ns - t0 : 0;
    pkt.flow_id = static_cast<std::uint16_t>(flow);
    // Wire size is the IP datagram's length: strip the L2 framing
    // (Ethernet header) from orig_len so raw-IP and Ethernet captures
    // of the same traffic replay identically.
    const std::uint32_t l2 =
        static_cast<std::uint32_t>(rec.bytes.size() - b.size());
    pkt.wire_size = rec.orig_len > l2 ? rec.orig_len - l2
                                      : static_cast<std::uint32_t>(b.size());
    trace.push_back(pkt);
  }
  return trace;
}

std::uint64_t trace_wire_bytes(const std::vector<TracePacket>& trace) {
  std::uint64_t total = 0;
  for (const auto& pkt : trace) total += pkt.wire_size;
  return total;
}

TraceWorkload::TraceWorkload(Engine& engine, std::vector<TracePacket> trace,
                             Config config, SendFn send)
    : engine_(engine),
      trace_(std::move(trace)),
      config_(config),
      send_(std::move(send)) {
  std::stable_sort(trace_.begin(), trace_.end(),
                   [](const TracePacket& a, const TracePacket& b) {
                     return a.at < b.at;
                   });
  std::size_t max_flow = 0;
  for (const auto& pkt : trace_) {
    max_flow = std::max(max_flow, static_cast<std::size_t>(pkt.flow_id));
  }
  flow_seq_.assign(trace_.empty() ? 0 : max_flow + 1, 0);
}

SimTime TraceWorkload::replay_time(std::size_t index) const noexcept {
  return config_.start +
         static_cast<SimTime>(std::llround(
             static_cast<double>(trace_[index].at) * config_.time_scale));
}

void TraceWorkload::start() {
  if (started_) return;
  started_ = true;
  if (trace_.empty()) return;
  engine_.schedule_at(next_wakeup(), [this] { emit_due(); });
}

SimTime TraceWorkload::next_wakeup() const noexcept {
  const SimTime r = replay_time(next_);
  if (config_.batch_window <= 0) return r;
  // Wakeups land on global multiples of the window (the first one
  // strictly after the next record), so separately batched workloads
  // flush at the same instants and a burst link can merge their
  // windows in exact stamp order (Link buffers and sorts same-instant
  // past-stamped arrivals).
  return (r / config_.batch_window + 1) * config_.batch_window;
}

void TraceWorkload::emit_due() {
  // Batched replay emits only strictly past records: every stamp then
  // predates its emission instant, so burst links can recognize the
  // whole window as a replay and merge it with other sources' windows
  // in stamp order. A record landing exactly on the wake instant rides
  // the next window. Unbatched replay wakes at the record's own time.
  const SimTime horizon = engine_.now() - (config_.batch_window > 0 ? 1 : 0);
  while (next_ < trace_.size() && replay_time(next_) <= horizon) {
    const SimTime at = replay_time(next_);
    const TracePacket& rec = trace_[next_++];
    AppHeader h;
    h.flow_id = rec.flow_id;
    h.seq = flow_seq_[rec.flow_id]++;
    h.sent_at = at;
    const std::size_t payload =
        rec.wire_size > config_.wire_overhead
            ? rec.wire_size - config_.wire_overhead
            : 0;
    send_(rec.flow_id, h.build_payload(std::max(payload, AppHeader::kSize)),
          at);
    ++sent_;
  }
  if (next_ < trace_.size()) {
    // A batch window sleeps past the next record so a whole window of
    // records comes due at once; their stamps carry the exact times.
    engine_.schedule_at(next_wakeup(), [this] { emit_due(); });
  }
}

}  // namespace nn::sim
