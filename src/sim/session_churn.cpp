#include "sim/session_churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace nn::sim {

namespace {

// Per-session RNG stream: the stream for session `id` depends only on
// (seed, id), so adding or removing other sessions — or changing the
// arrival process — never perturbs an existing session's lifecycle.
// The multiplier is SplitMix64's odd MCG constant; +1 keeps session 0
// from collapsing onto the bare seed.
SplitMix64 session_rng(std::uint64_t seed, std::uint64_t id) {
  return SplitMix64(seed ^ (0x5851F42D4C957F2DULL * (id + 1)));
}

}  // namespace

std::vector<SessionEvent> churn_schedule(const SessionChurnConfig& config) {
  if (config.rekey_interval > 0 && config.horizon <= 0) {
    throw std::invalid_argument(
        "churn_schedule: rekey storms need a horizon to stop at");
  }
  std::vector<SessionEvent> events;
  if (config.sessions > 0 && config.arrivals_per_second > 0) {
    // Generous guess: arrive + a few renewals + an ending per session.
    events.reserve(config.sessions * 3);
    const double mean_ns = 1e9 / config.arrivals_per_second;
    SplitMix64 arrivals(config.seed);
    double clock = 0;
    for (std::uint64_t id = 0; id < config.sessions; ++id) {
      const SimTime arrive = static_cast<SimTime>(std::llround(clock));
      clock += config.poisson ? arrivals.exponential(mean_ns) : mean_ns;
      if (config.horizon > 0 && arrive >= config.horizon) break;
      events.push_back({arrive, SessionEvent::Kind::kArrive, id});
      if (config.lease <= 0) continue;  // permanent session

      SplitMix64 rng = session_rng(config.seed, id);
      SimTime held_since = arrive;
      std::size_t renewals = 0;
      for (;;) {
        const SimTime expiry = held_since + config.lease;
        if (renewals < config.max_renewals &&
            rng.chance(config.renew_probability)) {
          // Uniform in [expiry - jitter*lease, expiry), clamped strictly
          // between the previous event and the expiry so a renewal can
          // never race its own lease collection.
          const double back =
              rng.uniform_double() * config.renewal_jitter *
              static_cast<double>(config.lease);
          SimTime renew_at = expiry - static_cast<SimTime>(std::llround(back));
          renew_at = std::clamp(renew_at, held_since + 1, expiry - 1);
          if (config.horizon > 0 && renew_at >= config.horizon) break;
          events.push_back({renew_at, SessionEvent::Kind::kRenew, id});
          held_since = renew_at;
          ++renewals;
          continue;
        }
        if (rng.chance(config.depart_probability)) {
          // Explicit release strictly before the lease would lapse,
          // drawn from the same window as renewals.
          const double back =
              rng.uniform_double() * config.renewal_jitter *
              static_cast<double>(config.lease);
          SimTime depart_at = expiry - static_cast<SimTime>(std::llround(back));
          depart_at = std::clamp(depart_at, held_since + 1, expiry - 1);
          if (!(config.horizon > 0 && depart_at >= config.horizon)) {
            events.push_back({depart_at, SessionEvent::Kind::kDepart, id});
          }
        }
        // Else: lapse silently — the server's expire_due() collects it.
        break;
      }
    }
  }
  if (config.rekey_interval > 0) {
    for (SimTime at = config.rekey_interval; at <= config.horizon;
         at += config.rekey_interval) {
      events.push_back({at, SessionEvent::Kind::kRekeyStorm, 0});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const SessionEvent& a, const SessionEvent& b) {
                     return a.at < b.at;
                   });
  return events;
}

SessionChurnWorkload::SessionChurnWorkload(Engine& engine,
                                           std::vector<SessionEvent> schedule,
                                           Config config, OpFn op)
    : engine_(engine),
      schedule_(std::move(schedule)),
      config_(config),
      op_(std::move(op)) {
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const SessionEvent& a, const SessionEvent& b) {
                     return a.at < b.at;
                   });
}

SimTime SessionChurnWorkload::replay_time(std::size_t index) const noexcept {
  return config_.start + schedule_[index].at;
}

void SessionChurnWorkload::start() {
  if (started_) return;
  started_ = true;
  if (schedule_.empty()) return;
  engine_.schedule_at(next_wakeup(), [this] { emit_due(); });
}

SimTime SessionChurnWorkload::next_wakeup() const noexcept {
  const SimTime r = replay_time(next_);
  if (config_.batch_window <= 0) return r;
  // Same global alignment as TraceWorkload: wakeups land on multiples
  // of the window so a churn workload and a batched packet workload
  // flush at the same instants.
  return (r / config_.batch_window + 1) * config_.batch_window;
}

void SessionChurnWorkload::emit_due() {
  // Mirrors TraceWorkload::emit_due: batched replay hands over only
  // strictly past events (stamped with their own times); unbatched
  // replay wakes at each event's own instant.
  const SimTime horizon = engine_.now() - (config_.batch_window > 0 ? 1 : 0);
  while (next_ < schedule_.size() && replay_time(next_) <= horizon) {
    const SimTime at = replay_time(next_);
    if (!crashed_ && config_.crash_after > 0 && config_.on_crash &&
        delivered_ == config_.crash_after) {
      // Fires between events: the previous instant's group commit is
      // durable, the upcoming event was never journaled — the sharpest
      // possible crash point.
      crashed_ = true;
      config_.on_crash(at);
    }
    const SessionEvent& event = schedule_[next_++];
    op_(event, at);
    ++delivered_;
  }
  if (next_ < schedule_.size()) {
    engine_.schedule_at(next_wakeup(), [this] { emit_due(); });
  }
}

}  // namespace nn::sim
