// Queue disciplines for link egress queues. The base interface is here;
// DSCP-aware disciplines (strict priority, WFQ) live in nn_qos and plug
// into the same links — that is how a "discriminatory ISP [provides]
// differentiated services according to the DSCPs" (paper §3.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace nn::sim {

/// Packets a discipline rejected on enqueue, with their bytes. The
/// byte counter is exact: a rejected packet never perturbs
/// byte_count(), it is only tallied here.
struct QueueDropStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const QueueDropStats&,
                         const QueueDropStats&) noexcept = default;
};

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  /// Returns false (and drops) when the queue is full.
  virtual bool enqueue(net::Packet&& pkt) = 0;
  virtual std::optional<net::Packet> dequeue() = 0;

  /// Bulk dequeue for batch-aware links: pops packets exactly as
  /// repeated dequeue() would and appends them to `out`, stopping when
  /// `max_packets` have been popped, the queue empties, or the bytes
  /// popped so far reach `max_bytes` (the packet that crosses the
  /// bound is included, mirroring a link that finishes serializing the
  /// frame it started). Returns the number of packets popped. The
  /// default loops dequeue(); disciplines override it to skip the
  /// per-packet scheduling rescan.
  virtual std::size_t dequeue_burst(std::size_t max_packets,
                                    std::size_t max_bytes,
                                    std::vector<net::Packet>& out);

  /// Returns packets to the head of the queue: afterwards dequeue()
  /// yields them, in order, before anything still queued. Only valid
  /// with a suffix of the packets obtained from the most recent
  /// dequeue_burst(), before any other queue operation — the
  /// burst-abort path of a batch-aware link, which un-commits the
  /// not-yet-serialized tail of a train when a new arrival must
  /// compete with it. Restores scheduler state (WFQ deficits etc.)
  /// exactly, as if the suffix had never been popped.
  virtual void requeue_front(std::vector<net::Packet>&& pkts) = 0;

  [[nodiscard]] virtual std::size_t packet_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t byte_count() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return packet_count() == 0; }

  [[nodiscard]] const QueueDropStats& drop_stats() const noexcept {
    return drop_stats_;
  }

 protected:
  /// enqueue() implementations call this on the reject path.
  void note_drop(const net::Packet& pkt) noexcept {
    drop_stats_.packets += 1;
    drop_stats_.bytes += pkt.size();
  }

 private:
  QueueDropStats drop_stats_;
};

/// Plain FIFO with a byte-capacity drop-tail bound.
class DropTailQueue final : public QueueDisc {
 public:
  explicit DropTailQueue(std::size_t capacity_bytes) noexcept
      : capacity_bytes_(capacity_bytes) {}

  bool enqueue(net::Packet&& pkt) override;
  std::optional<net::Packet> dequeue() override;
  std::size_t dequeue_burst(std::size_t max_packets, std::size_t max_bytes,
                            std::vector<net::Packet>& out) override;
  void requeue_front(std::vector<net::Packet>&& pkts) override;
  [[nodiscard]] std::size_t packet_count() const noexcept override {
    return queue_.size();
  }
  [[nodiscard]] std::size_t byte_count() const noexcept override {
    return bytes_;
  }

 private:
  std::deque<net::Packet> queue_;
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
};

/// Factory signature used by LinkConfig so each link builds its own
/// queue instance.
using QueueFactory = std::function<std::unique_ptr<QueueDisc>()>;

}  // namespace nn::sim
