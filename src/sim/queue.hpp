// Queue disciplines for link egress queues. The base interface is here;
// DSCP-aware disciplines (strict priority, WFQ) live in nn_qos and plug
// into the same links — that is how a "discriminatory ISP [provides]
// differentiated services according to the DSCPs" (paper §3.4).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "net/packet.hpp"

namespace nn::sim {

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  /// Returns false (and drops) when the queue is full.
  virtual bool enqueue(net::Packet&& pkt) = 0;
  virtual std::optional<net::Packet> dequeue() = 0;

  [[nodiscard]] virtual std::size_t packet_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t byte_count() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return packet_count() == 0; }
};

/// Plain FIFO with a byte-capacity drop-tail bound.
class DropTailQueue final : public QueueDisc {
 public:
  explicit DropTailQueue(std::size_t capacity_bytes) noexcept
      : capacity_bytes_(capacity_bytes) {}

  bool enqueue(net::Packet&& pkt) override;
  std::optional<net::Packet> dequeue() override;
  [[nodiscard]] std::size_t packet_count() const noexcept override {
    return queue_.size();
  }
  [[nodiscard]] std::size_t byte_count() const noexcept override {
    return bytes_;
  }

 private:
  std::deque<net::Packet> queue_;
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
};

/// Factory signature used by LinkConfig so each link builds its own
/// queue instance.
using QueueFactory = std::function<std::unique_ptr<QueueDisc>()>;

}  // namespace nn::sim
