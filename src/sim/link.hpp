// Unidirectional point-to-point link: serialization delay (bandwidth),
// propagation delay, and an egress queue discipline. Network::connect
// creates one in each direction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/queue.hpp"

namespace nn::sim {

struct LinkConfig {
  double bandwidth_bps = 1e9;          // 1 Gbps default
  SimTime propagation = kMillisecond;  // one-way
  std::size_t queue_bytes = 256 * 1024;
  // Optional custom queue discipline (e.g. qos::PriorityQueueDisc);
  // nullptr selects DropTailQueue(queue_bytes).
  QueueFactory queue_factory;
};

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_packets = 0;
};

class Link {
 public:
  using DeliverFn = std::function<void(net::Packet&&)>;

  Link(Engine& engine, const LinkConfig& config, DeliverFn deliver);

  /// Queues or begins transmitting the packet; drops (and counts) when
  /// the egress queue is full.
  void send(net::Packet&& pkt);

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool busy() const noexcept { return transmitting_; }

 private:
  Engine& engine_;
  LinkConfig config_;
  DeliverFn deliver_;
  std::unique_ptr<QueueDisc> queue_;
  bool transmitting_ = false;
  LinkStats stats_;

  void start_transmission(net::Packet&& pkt);
  void transmission_done();
  [[nodiscard]] SimTime tx_time(std::size_t bytes) const noexcept;
};

}  // namespace nn::sim
