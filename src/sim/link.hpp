// Unidirectional point-to-point link: serialization delay (bandwidth),
// propagation delay, and an egress queue discipline. Network::connect
// creates one in each direction.
//
// Two delivery modes share the same timing model:
//
//  - Per-packet (burst_packets == 1, the default and the differential-
//    testing baseline): every packet costs two engine events, one when
//    its serialization finishes (the link frees up) and one when it
//    arrives after propagation.
//  - Burst (burst_packets > 1): a whole back-to-back transmission
//    train is formed at once via QueueDisc::dequeue_burst and delivered
//    by a single engine event at the train's end; each packet keeps
//    its exact per-packet arrival stamp (Delivery::at). A mid-train
//    arrival un-commits the not-yet-serialized tail back into the
//    queue (QueueDisc::requeue_front) so drop and priority decisions
//    match per-packet mode exactly. See docs/ARCHITECTURE.md,
//    "Batch-aware link delivery".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/node.hpp"
#include "sim/queue.hpp"

namespace nn::sim {

struct LinkConfig {
  double bandwidth_bps = 1e9;          // 1 Gbps default
  SimTime propagation = kMillisecond;  // one-way
  std::size_t queue_bytes = 256 * 1024;
  // Optional custom queue discipline (e.g. qos::PriorityQueueDisc);
  // nullptr selects DropTailQueue(queue_bytes).
  QueueFactory queue_factory;
  /// Burst coalescing window: how many packets (and bytes) one engine
  /// event may deliver as a single transmission train. 1 keeps the
  /// classic two-events-per-packet delivery; larger values amortize
  /// engine events across a train while preserving per-packet arrival
  /// stamps and drop accounting exactly.
  std::size_t burst_packets = 1;
  std::size_t burst_bytes = SIZE_MAX;
};

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  /// Engine events that delivered packets: one per packet in
  /// per-packet mode, one per train in burst mode.
  std::uint64_t delivery_events = 0;
  /// Coalesced trains delivered (burst mode only).
  std::uint64_t trains = 0;
  std::uint64_t max_train = 0;
  /// Trains truncated because an arrival had to compete with their
  /// not-yet-serialized tail.
  std::uint64_t train_aborts = 0;
};

class Link {
 public:
  using DeliverFn = std::function<void(net::Packet&&)>;
  using BurstDeliverFn = std::function<void(std::span<Delivery>)>;

  Link(Engine& engine, const LinkConfig& config, DeliverFn deliver);

  /// Installs the stamped whole-train sink used in burst mode
  /// (Network::connect wires it to Node::receive_burst). Without one,
  /// burst mode falls back to per-packet DeliverFn calls at the train
  /// event, dropping the stamps.
  void set_burst_deliver(BurstDeliverFn fn) { burst_deliver_ = std::move(fn); }

  /// Queues or begins transmitting the packet; drops (and counts) when
  /// the egress queue is full. `when` is the packet's virtual arrival
  /// time at this link: kUnstamped means "now"; a future time defers
  /// the arrival to its own instant (stamped box emissions); a past
  /// time threads upstream burst timing through serialization math.
  void send(net::Packet&& pkt, SimTime when = kUnstamped);

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool busy() const noexcept { return transmitting_; }
  /// The egress queue discipline (drop stats, occupancy) for tests.
  [[nodiscard]] const QueueDisc& queue() const noexcept { return *queue_; }

 private:
  Engine& engine_;
  LinkConfig config_;
  DeliverFn deliver_;
  BurstDeliverFn burst_deliver_;
  std::unique_ptr<QueueDisc> queue_;
  bool transmitting_ = false;
  bool burst_mode_ = false;
  LinkStats stats_;

  // Burst mode: the active train (committed packets with their arrival
  // stamps, plus each packet's virtual serialization start), the
  // train's virtual end (vfree_), and sealed trains awaiting their
  // delivery event. Generation counters invalidate events scheduled
  // for trains that were later truncated by an abort.
  std::vector<Delivery> train_;
  std::vector<SimTime> train_starts_;
  std::vector<net::Packet> scratch_;
  std::deque<std::pair<std::uint64_t, std::vector<Delivery>>> sealed_;
  SimTime vfree_ = 0;
  std::uint64_t train_gen_ = 0;
  std::size_t train_bytes_ = 0;
  // Delivery events are scheduled lazily at the end of the instant a
  // train forms (Engine::defer_once), so a stamped back-to-back chain
  // arriving within one instant extends the active train instead of
  // paying one event per packet. Trains sealed before their event
  // exists park (generation, delivery time) in sched_backlog_.
  bool train_event_scheduled_ = false;
  std::vector<std::pair<std::uint64_t, SimTime>> sched_backlog_;
  // Past-stamped arrivals landing within one instant can reach the link
  // out of stamp order (separately batched sources, merging upstream
  // trains): they buffer here and replay in stamp order at the end of
  // the instant, which is the order per-packet mode's events would have
  // interleaved them.
  std::vector<std::pair<SimTime, net::Packet>> pending_;
  bool in_flush_ = false;

  // Classic (per-packet) path.
  void start_transmission(net::Packet&& pkt);
  void transmission_done();

  // Burst path.
  void arrive(net::Packet&& pkt, SimTime v);
  void begin_train_with(net::Packet&& pkt, SimTime start);
  void begin_train_from_queue();
  void commit_train();
  void extend_train(net::Packet&& pkt, SimTime start);
  void request_schedule();
  void flush_deferred();
  void flush_schedules();
  void schedule_delivery();
  void seal_train();
  void abort_tail(SimTime now);
  void on_delivery(std::uint64_t gen);

  [[nodiscard]] SimTime tx_time(std::size_t bytes) const noexcept;
};

}  // namespace nn::sim
