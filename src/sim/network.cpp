#include "sim/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace nn::sim {

void Network::register_node(std::unique_ptr<Node> node) {
  node->network_ = this;
  node->id_ = NodeId{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  routes_valid_ = false;
}

void Network::connect(Node& a, Node& b, const LinkConfig& config) {
  connect(a, b, config, config);
}

void Network::connect(Node& a, Node& b, const LinkConfig& ab,
                      const LinkConfig& ba) {
  Node* bp = &b;
  Node* ap = &a;
  auto ab_link =
      std::make_unique<Link>(engine_, ab, [bp](net::Packet&& pkt) {
        bp->receive(std::move(pkt));
      });
  ab_link->set_burst_deliver(
      [bp](std::span<Delivery> train) { bp->receive_burst(train); });
  auto ba_link =
      std::make_unique<Link>(engine_, ba, [ap](net::Packet&& pkt) {
        ap->receive(std::move(pkt));
      });
  ba_link->set_burst_deliver(
      [ap](std::span<Delivery> train) { ap->receive_burst(train); });
  adjacency_[a.id().value].push_back(Edge{b.id(), std::move(ab_link)});
  adjacency_[b.id().value].push_back(Edge{a.id(), std::move(ba_link)});
  routes_valid_ = false;
}

void Network::assign_address(Node& node, net::Ipv4Addr addr) {
  if (unicast_owner_.contains(addr)) {
    throw std::invalid_argument("address already assigned: " +
                                addr.to_string());
  }
  unicast_owner_[addr] = node.id();
  if (node.address_.is_unspecified()) node.address_ = addr;
}

void Network::assign_prefix(Node& node, net::Ipv4Prefix prefix) {
  prefix_owner_.emplace_back(prefix, node.id());
}

void Network::join_anycast(Node& node, net::Ipv4Addr group,
                           std::size_t weight) {
  anycast_groups_[group].push_back(AnycastMember{node.id(), weight});
}

void Network::compute_routes() {
  const std::size_t n = nodes_.size();
  const auto inf = std::numeric_limits<std::size_t>::max();
  next_hop_.assign(n, std::vector<NodeId>(n));
  distance_.assign(n, std::vector<std::size_t>(n, inf));

  // BFS from every node; first-hop recorded per destination.
  for (std::size_t src = 0; src < n; ++src) {
    auto& dist = distance_[src];
    auto& hops = next_hop_[src];
    dist[src] = 0;
    std::queue<std::size_t> frontier;
    frontier.push(src);
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop();
      for (const auto& edge : adjacency_[cur]) {
        const std::size_t peer = edge.peer.value;
        if (dist[peer] != inf) continue;
        dist[peer] = dist[cur] + 1;
        // First hop toward peer: either the edge itself (cur == src) or
        // whatever first hop led to cur.
        hops[peer] = cur == src ? edge.peer : hops[cur];
        frontier.push(peer);
      }
    }
  }
  routes_valid_ = true;
}

std::optional<NodeId> Network::owner_of(net::Ipv4Addr addr) const {
  if (const auto it = unicast_owner_.find(addr); it != unicast_owner_.end()) {
    return it->second;
  }
  // Longest prefix match.
  std::optional<NodeId> best;
  int best_len = -1;
  for (const auto& [prefix, owner] : prefix_owner_) {
    if (prefix.contains(addr) && prefix.length() > best_len) {
      best = owner;
      best_len = prefix.length();
    }
  }
  return best;
}

std::optional<NodeId> Network::resolve_destination(NodeId src,
                                                   net::Ipv4Addr dst) const {
  // Anycast: nearest group member by hop distance; equidistant members
  // are split by advertised capacity weight (highest wins), then by
  // registration order — all deterministic.
  if (const auto it = anycast_groups_.find(dst); it != anycast_groups_.end()) {
    const auto& members = it->second;
    std::optional<NodeId> best;
    std::size_t best_dist = std::numeric_limits<std::size_t>::max();
    std::size_t best_weight = 0;
    for (const AnycastMember& member : members) {
      const std::size_t d = distance_[src.value][member.node.value];
      if (d == std::numeric_limits<std::size_t>::max()) continue;
      if (d < best_dist || (d == best_dist && member.weight > best_weight)) {
        best = member.node;
        best_dist = d;
        best_weight = member.weight;
      }
    }
    return best;
  }
  return owner_of(dst);
}

void Network::send_from(NodeId src, net::Packet&& pkt, SimTime when) {
  if (!routes_valid_) {
    throw std::logic_error("Network::send_from before compute_routes()");
  }
  if (pkt.size() < net::kIpv4HeaderSize) {
    ++stats_.unroutable_dropped;
    return;
  }
  const auto target = resolve_destination(src, net::packet_dst(pkt));
  if (!target.has_value()) {
    ++stats_.unroutable_dropped;
    return;
  }
  if (*target == src) {
    deliver_local(*target, std::move(pkt), when);
    return;
  }
  const NodeId hop = next_hop_[src.value][target->value];
  if (!hop.valid()) {
    ++stats_.unroutable_dropped;  // disconnected
    return;
  }
  for (auto& edge : adjacency_[src.value]) {
    if (edge.peer == hop) {
      edge.link->send(std::move(pkt), when);
      return;
    }
  }
  ++stats_.unroutable_dropped;  // should not happen with valid routes
}

void Network::deliver_local(NodeId target, net::Packet&& pkt, SimTime when) {
  ++stats_.delivered_local;
  // Schedule (rather than call) so local delivery is still asynchronous
  // and cannot reenter the sender's stack. The receive keeps the
  // packet's own stamp even when the event fires later (coalesced
  // upstream timing).
  Node* node = nodes_[target.value].get();
  const SimTime at = when == kUnstamped ? engine_.now() : when;
  engine_.schedule_at(std::max(at, engine_.now()),
                      [node, p = std::move(pkt), at]() mutable {
                        node->receive_at(std::move(p), at);
                      });
}

Link* Network::link_between(NodeId a, NodeId b) {
  for (auto& edge : adjacency_[a.value]) {
    if (edge.peer == b) return edge.link.get();
  }
  return nullptr;
}

std::size_t Network::hop_distance(NodeId from, NodeId to) const {
  if (!routes_valid_) {
    throw std::logic_error("Network::hop_distance before compute_routes()");
  }
  return distance_[from.value][to.value];
}

}  // namespace nn::sim
