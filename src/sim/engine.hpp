// Discrete-event simulation engine. Single-threaded, deterministic:
// events at equal timestamps fire in scheduling order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace nn::sim {

/// Simulated time in nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Sentinel "no timestamp" for stamped-send APIs (Link::send,
/// Network::send_from): the packet's virtual arrival time is simply
/// the moment the call runs.
inline constexpr SimTime kUnstamped = -1;

class Engine {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now).
  void schedule_at(SimTime at, std::function<void()> fn);
  /// Schedules `fn` `delay` from now.
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs `fn` at the *end of the current instant*: after every already-
  /// scheduled event with timestamp == now() has fired, before the
  /// clock advances (or when the queue drains). Deferred callbacks run
  /// in registration order and may defer again or schedule new events
  /// at >= now(). This is the batching hook: a node can collect every
  /// packet delivered at one timestamp and process them as one batch.
  void defer(std::function<void()> fn) { deferred_.push_back(std::move(fn)); }

  /// Keyed one-shot defer: like defer(), but at most one callback per
  /// `key` is registered at a time — re-registering before it fires is
  /// a no-op. This is how a box arranges exactly one batch drain per
  /// instant without tracking its own "drain scheduled" flag: every
  /// delivery calls defer_once(this, drain). The key clears right
  /// before the callback runs, so the callback may re-arm itself.
  void defer_once(const void* key, std::function<void()> fn);

  /// Runs one event; returns false if none pending.
  bool step();
  /// Runs until the queue empties or `max_events` fire.
  void run(std::size_t max_events = SIZE_MAX);
  /// Runs events with timestamp <= `until`, then advances the clock to
  /// `until` even if idle.
  void run_until(SimTime until);

  [[nodiscard]] std::size_t pending() const noexcept {
    return queue_.size() + deferred_.size();
  }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tie-breaker for deterministic ordering
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::deque<std::function<void()>> deferred_;
  std::unordered_set<const void*> deferred_keys_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;

  [[nodiscard]] bool deferred_due() const noexcept {
    return !deferred_.empty() &&
           (queue_.empty() || queue_.top().at > now_);
  }
};

}  // namespace nn::sim
