// Trace-driven workloads: replayable packet schedules built either from
// a captured pcap trace (net/pcap.hpp) or from synthetic IMIX
// generators, fed through the same SendFn plumbing as TrafficSource.
// This is how discrimination and saturation experiments run against
// realistic traffic — variable packet sizes and many interleaved flows —
// instead of the fixed-size CBR streams the early experiments used.
//
// A trace is just a vector<TracePacket>: (relative time, flow, target
// wire size). imix_trace() synthesizes one; trace_from_pcap() converts
// a capture (flows are 5-tuples, timestamps made relative); callers can
// also build their own. TraceWorkload then replays the schedule on a
// sim::Engine, stamping an AppHeader per packet so FlowSink latency,
// loss, and byte accounting keep working unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/pcap.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace nn::sim {

/// One packet of a replayable workload: when (relative to the workload
/// start), which flow, and the packet's target size on the wire in
/// bytes (headers included).
struct TracePacket {
  SimTime at = 0;
  std::uint16_t flow_id = 0;
  std::uint32_t wire_size = 0;

  friend bool operator==(const TracePacket&, const TracePacket&) = default;
};

/// One packet-size class of a synthetic mix: a wire size and its
/// relative weight in the draw.
struct SizeClass {
  std::uint32_t wire_size = 0;
  double weight = 0;
};

/// The classic Internet mix: 40/576/1500-byte packets at 7:4:1.
[[nodiscard]] std::vector<SizeClass> classic_imix();

/// Configuration for imix_trace(). `packets_per_second` is the
/// aggregate rate over all flows; each packet draws its flow uniformly
/// and its size class by weight, so many concurrent sessions interleave
/// (which is what spreads a sharded box's dispatch hash).
struct ImixConfig {
  std::vector<SizeClass> classes;  // empty = classic_imix()
  /// Concurrent sessions; clamped to 65536 (TracePacket::flow_id is 16
  /// bits — more would silently alias flows).
  std::size_t flows = 8;
  double packets_per_second = 1000;
  SimTime duration = kSecond;
  bool poisson = false;  // false = CBR aggregate spacing
  std::uint64_t seed = 1;
};

/// Deterministic synthetic IMIX trace: same config, same trace.
[[nodiscard]] std::vector<TracePacket> imix_trace(const ImixConfig& config);

/// Converts a parsed capture into a replayable trace. Flows are IPv4
/// (src, dst, proto, ports) tuples numbered in order of first
/// appearance — TracePacket::flow_id is 16 bits, so a capture with more
/// than 65536 distinct tuples wraps and aliases flows (fine for load
/// shape, wrong for per-flow stats; split such captures first).
/// Timestamps are made relative to the first record (earlier
/// out-of-order records clamp to 0); wire size is the record's original
/// on-the-wire length. Records that do not decode to IPv4 for the
/// file's link type are skipped.
[[nodiscard]] std::vector<TracePacket> trace_from_pcap(
    const net::PcapFile& file);

/// Total wire bytes of a trace (for offered-load arithmetic).
[[nodiscard]] std::uint64_t trace_wire_bytes(
    const std::vector<TracePacket>& trace);

/// Replays a trace on the engine. Like TrafficSource it is
/// transport-agnostic: each due record becomes an AppHeader-stamped
/// payload handed to the SendFn along with its flow id; the transport
/// (raw UDP sender, neutralized session, ...) adds its own headers.
class TraceWorkload {
 public:
  /// `at` is the record's replay time — equal to the engine clock for
  /// unbatched replay, and the record's own (past) instant when a
  /// batch window hands a whole group over at once. Transports that
  /// forward it into a stamped send (Host::transmit, Link::send) keep
  /// the virtual timeline exact either way.
  using SendFn = std::function<void(std::uint16_t flow_id,
                                    std::vector<std::uint8_t>&& payload,
                                    SimTime at)>;

  struct Config {
    SimTime start = 0;
    /// Multiplies every trace timestamp: 2.0 replays at half speed.
    double time_scale = 1.0;
    /// Bytes the transport will add around the payload; subtracted from
    /// each record's wire size (clamped to AppHeader::kSize) so the
    /// replayed packet lands near the recorded size. Default: the
    /// neutralized data-packet framing, IP (20) + shim base (12) +
    /// inner address (4).
    std::size_t wire_overhead = 36;
    /// 0 replays each record at its own engine event. A positive window
    /// wakes once per window and emits every record that came due,
    /// stamped with its own replay time — one event per window instead
    /// of one per packet, feeding burst-mode links whole stamped chains.
    /// Wakeups land on global multiples of the window, so concurrently
    /// batched workloads flush at the same instants and burst links
    /// merge their windows in exact stamp order.
    SimTime batch_window = 0;
  };

  /// The trace need not be sorted; records are replayed in timestamp
  /// order (ties keep trace order).
  TraceWorkload(Engine& engine, std::vector<TracePacket> trace, Config config,
                SendFn send);

  /// Schedules the replay. Idempotent like TrafficSource::start().
  void start();

  /// Packets handed to the SendFn so far.
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  /// Records in the trace (the replay target).
  [[nodiscard]] std::size_t trace_size() const noexcept {
    return trace_.size();
  }

 private:
  Engine& engine_;
  std::vector<TracePacket> trace_;
  Config config_;
  SendFn send_;
  std::vector<std::uint32_t> flow_seq_;  // per-flow AppHeader sequence
  std::size_t next_ = 0;
  std::uint64_t sent_ = 0;
  bool started_ = false;

  void emit_due();
  [[nodiscard]] SimTime replay_time(std::size_t index) const noexcept;
  [[nodiscard]] SimTime next_wakeup() const noexcept;
};

}  // namespace nn::sim
