// Network: node/link container, address ownership, shortest-path
// routing, and anycast groups.
//
// Anycast is load-bearing for the reproduction: the paper (§3) gives
// every neutralizer of an ISP one shared anycast address, so "any
// neutralizer can decrypt the destination address and forward the
// packet"; routing delivers to the nearest instance.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/node.hpp"

namespace nn::sim {

struct NetworkStats {
  std::uint64_t unroutable_dropped = 0;
  std::uint64_t delivered_local = 0;
};

class Network {
 public:
  explicit Network(Engine& engine) : engine_(engine) {}

  /// Constructs a node of type T in place and registers it.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *node;
    register_node(std::move(node));
    return ref;
  }

  /// Connects a<->b with symmetric link configs (two unidirectional
  /// links). Call compute_routes() after the topology is final.
  void connect(Node& a, Node& b, const LinkConfig& config);
  /// Asymmetric variant.
  void connect(Node& a, Node& b, const LinkConfig& ab, const LinkConfig& ba);

  /// Assigns a /32 unicast address owned by `node` (also sets the
  /// node's primary address if unset).
  void assign_address(Node& node, net::Ipv4Addr addr);
  /// Assigns a covering prefix (longest-prefix-match routing).
  void assign_prefix(Node& node, net::Ipv4Prefix prefix);
  /// Adds the node to an anycast group address. `weight` advertises the
  /// member's service capacity (e.g. a sharded neutralizer box joins
  /// with its shard count): among members equidistant from a sender,
  /// the highest weight wins, with ties falling back to registration
  /// order — so the default weight of 1 preserves the historical
  /// first-added tie-break exactly.
  void join_anycast(Node& node, net::Ipv4Addr group, std::size_t weight = 1);

  /// (Re)computes all-pairs next hops by BFS hop count. Must be called
  /// after topology changes and before traffic flows.
  void compute_routes();

  /// Routes a packet from `src` toward its IP destination: local
  /// delivery, anycast resolution, /32, then longest prefix match.
  /// `when` is the packet's virtual departure time (kUnstamped = now);
  /// it threads through Link::send so stamped box emissions keep their
  /// per-packet timing under burst delivery.
  void send_from(NodeId src, net::Packet&& pkt, SimTime when = kUnstamped);

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] SimTime now() const noexcept { return engine_.now(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id.value); }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }

  /// Resolves the owning node for a unicast address (nullopt for
  /// anycast or unknown addresses).
  [[nodiscard]] std::optional<NodeId> owner_of(net::Ipv4Addr addr) const;

  /// Link from `a` toward neighbor `b`, if adjacent (for stats).
  [[nodiscard]] Link* link_between(NodeId a, NodeId b);

  /// Hop distance between nodes (SIZE_MAX if unreachable); exposed for
  /// tests and multihoming strategies.
  [[nodiscard]] std::size_t hop_distance(NodeId from, NodeId to) const;

 private:
  struct Edge {
    NodeId peer;
    std::unique_ptr<Link> link;
  };
  struct AnycastMember {
    NodeId node;
    std::size_t weight;
  };

  Engine& engine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  std::unordered_map<net::Ipv4Addr, NodeId> unicast_owner_;
  std::vector<std::pair<net::Ipv4Prefix, NodeId>> prefix_owner_;
  std::unordered_map<net::Ipv4Addr, std::vector<AnycastMember>>
      anycast_groups_;
  // next_hop_[src][dst] = neighbor on a shortest path (or invalid).
  std::vector<std::vector<NodeId>> next_hop_;
  std::vector<std::vector<std::size_t>> distance_;
  bool routes_valid_ = false;
  NetworkStats stats_;

  void register_node(std::unique_ptr<Node> node);
  void deliver_local(NodeId target, net::Packet&& pkt, SimTime when);
  [[nodiscard]] std::optional<NodeId> resolve_destination(
      NodeId src, net::Ipv4Addr dst) const;
};

}  // namespace nn::sim
