#include "sim/node.hpp"

#include <cassert>

#include "sim/network.hpp"

namespace nn::sim {

Network& Node::network() const {
  assert(network_ != nullptr && "node not registered with a Network");
  return *network_;
}

void Node::send(net::Packet&& pkt, SimTime when) {
  network().send_from(id_, std::move(pkt), when);
}

void Host::receive(net::Packet&& pkt) {
  receive_at(std::move(pkt), network().now());
}

void Host::receive_at(net::Packet&& pkt, SimTime at) {
  ++received_;
  if (stamped_handler_) {
    stamped_handler_(std::move(pkt), at);
    return;
  }
  if (handler_) handler_(std::move(pkt));
}

void Router::receive(net::Packet&& pkt) {
  receive_at(std::move(pkt), network().now());
}

void Router::receive_at(net::Packet&& pkt, SimTime at) {
  // Packets addressed to this router itself are consumed (the
  // neutralizer box overrides consume()/consume_at()).
  const auto dst = net::Ipv4Addr((static_cast<std::uint32_t>(pkt.bytes[16]) << 24) |
                                 (static_cast<std::uint32_t>(pkt.bytes[17]) << 16) |
                                 (static_cast<std::uint32_t>(pkt.bytes[18]) << 8) |
                                 pkt.bytes[19]);
  if (is_local_destination(dst)) {
    ++stats_.consumed;
    consume_at(std::move(pkt), at);
    return;
  }

  SimTime delay = 0;
  for (auto& policy : policies_) {
    const PolicyDecision d = policy->process(pkt, at);
    if (d.drop) {
      ++stats_.policy_dropped;
      return;
    }
    delay += d.extra_delay;
  }
  if (delay > 0) {
    network().engine().schedule_at(
        at + delay, [this, p = std::move(pkt), when = at + delay]() mutable {
          forward(std::move(p), when);
        });
  } else {
    forward(std::move(pkt), at);
  }
}

void Router::consume(net::Packet&& pkt) {
  (void)pkt;  // default: swallow
}

void Router::forward(net::Packet&& pkt) {
  forward(std::move(pkt), network().now());
}

void Router::forward(net::Packet&& pkt, SimTime at) {
  // Decrement TTL in place and refresh the header checksum.
  std::uint8_t& ttl = pkt.bytes[8];
  if (ttl <= 1) {
    ++stats_.ttl_dropped;
    return;
  }
  --ttl;
  pkt.bytes[10] = 0;
  pkt.bytes[11] = 0;
  const std::uint16_t sum = net::internet_checksum(
      std::span<const std::uint8_t>(pkt.bytes).subspan(0, net::kIpv4HeaderSize));
  pkt.bytes[10] = static_cast<std::uint8_t>(sum >> 8);
  pkt.bytes[11] = static_cast<std::uint8_t>(sum);

  ++stats_.forwarded;
  send(std::move(pkt), at);
}

}  // namespace nn::sim
