#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/bytes.hpp"

namespace nn::sim {

std::vector<std::uint8_t> AppHeader::build_payload(
    std::size_t payload_size) const {
  const std::size_t size = std::max(payload_size, kSize);
  ByteWriter w(size);
  w.u16(kMagic);
  w.u16(flow_id);
  w.u32(seq);
  w.u64(static_cast<std::uint64_t>(sent_at));
  w.zeros(size - kSize);
  return w.take();
}

std::optional<AppHeader> AppHeader::parse(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < kSize) return std::nullopt;
  ByteReader r(payload);
  if (r.u16() != kMagic) return std::nullopt;
  AppHeader h;
  h.flow_id = r.u16();
  h.seq = r.u32();
  h.sent_at = static_cast<SimTime>(r.u64());
  return h;
}

TrafficSource::TrafficSource(Engine& engine, Config config, SendFn send)
    : engine_(engine),
      config_(config),
      send_(std::move(send)),
      rng_(config.seed) {}

void TrafficSource::start() {
  if (started_) return;
  started_ = true;
  engine_.schedule_at(config_.start, [this] { emit(); });
}

SimTime TrafficSource::interval() {
  const double mean_ns = 1e9 / config_.packets_per_second;
  if (config_.poisson) {
    return static_cast<SimTime>(std::llround(rng_.exponential(mean_ns)));
  }
  return static_cast<SimTime>(std::llround(mean_ns));
}

void TrafficSource::emit() {
  if (engine_.now() >= config_.stop) return;
  AppHeader h;
  h.flow_id = config_.flow_id;
  h.seq = next_seq_++;
  h.sent_at = engine_.now();
  send_(h.build_payload(config_.payload_size));
  engine_.schedule_in(interval(), [this] { emit(); });
}

const FlowSink::FlowStats FlowSink::kEmpty{};

void FlowSink::on_payload(std::span<const std::uint8_t> payload, SimTime now) {
  const auto header = AppHeader::parse(payload);
  if (!header.has_value()) return;
  auto& stats = flows_[header->flow_id];
  ++stats.received;
  stats.bytes += payload.size();
  ++total_;
  stats.max_seq_seen = std::max(stats.max_seq_seen, header->seq);
  stats.any = true;
  stats.latency_ms.add(static_cast<double>(now - header->sent_at) /
                       static_cast<double>(kMillisecond));
}

const FlowSink::FlowStats& FlowSink::flow(std::uint16_t id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? kEmpty : it->second;
}

double estimate_mos(double one_way_latency_ms, double loss_rate) noexcept {
  // Simplified E-model: R = 93.2 - Id - Ie_eff.
  const double d = one_way_latency_ms;
  double id = 0.024 * d;
  if (d > 177.3) id += 0.11 * (d - 177.3);
  const double ppl = std::clamp(loss_rate, 0.0, 1.0) * 100.0;
  const double ie_eff = 95.0 * ppl / (ppl + 4.3);
  double r = 93.2 - id - ie_eff;
  r = std::clamp(r, 0.0, 100.0);
  const double mos = 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r);
  return std::clamp(mos, 1.0, 5.0);
}

}  // namespace nn::sim
