#include "sim/engine.hpp"

#include <utility>

namespace nn::sim {

void Engine::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) at = now_;  // never schedule into the past
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Engine::defer_once(const void* key, std::function<void()> fn) {
  if (!deferred_keys_.insert(key).second) return;
  deferred_.push_back([this, key, f = std::move(fn)] {
    deferred_keys_.erase(key);
    f();
  });
}

bool Engine::step() {
  if (deferred_due()) {
    // One deferred callback per step, FIFO, so step()/run(max_events)
    // keep their one-event granularity. A callback may defer again
    // (appends behind the others, same instant) or schedule events.
    auto fn = std::move(deferred_.front());
    deferred_.pop_front();
    ++executed_;
    fn();
    return true;
  }
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the function object must be moved
  // out before pop, so copy the handle first.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

void Engine::run(std::size_t max_events) {
  for (std::size_t i = 0; i < max_events && step(); ++i) {
  }
}

void Engine::run_until(SimTime until) {
  while ((!queue_.empty() && queue_.top().at <= until) || deferred_due()) {
    step();
  }
  if (now_ < until) now_ = until;
}

}  // namespace nn::sim
