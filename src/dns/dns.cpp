#include "dns/dns.hpp"

#include "crypto/aes_modes.hpp"
#include "util/bytes.hpp"

namespace nn::dns {

namespace {

constexpr std::uint8_t kPlain = 0;
constexpr std::uint8_t kEncrypted = 1;
constexpr std::uint8_t kFound = 1;
constexpr std::uint8_t kNxDomain = 0;

std::array<std::uint8_t, 12> dns_iv(std::uint16_t txid, bool response) {
  std::array<std::uint8_t, 12> iv{};
  iv[0] = static_cast<std::uint8_t>(txid >> 8);
  iv[1] = static_cast<std::uint8_t>(txid);
  iv[2] = response ? 'R' : 'Q';
  iv[3] = 'D';
  iv[4] = 'N';
  iv[5] = 'S';
  return iv;
}

}  // namespace

std::vector<std::uint8_t> DomainRecords::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(name.size()));
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
  w.u32(address.value());
  w.u8(static_cast<std::uint8_t>(neutralizers.size()));
  for (const auto& n : neutralizers) w.u32(n.value());
  w.u16(static_cast<std::uint16_t>(public_key.size()));
  w.raw(public_key);
  return w.take();
}

std::optional<DomainRecords> DomainRecords::parse(
    std::span<const std::uint8_t> data) {
  try {
    ByteReader r(data);
    DomainRecords rec;
    const std::uint8_t name_len = r.u8();
    const auto name_bytes = r.take(name_len);
    rec.name.assign(name_bytes.begin(), name_bytes.end());
    rec.address = net::Ipv4Addr(r.u32());
    const std::uint8_t n_neut = r.u8();
    for (std::uint8_t i = 0; i < n_neut; ++i) {
      rec.neutralizers.emplace_back(r.u32());
    }
    const std::uint16_t key_len = r.u16();
    rec.public_key = r.bytes(key_len);
    if (!r.empty()) return std::nullopt;
    return rec;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

host::PeerInfo to_peer_info(const DomainRecords& records,
                            std::size_t which_neutralizer) {
  host::PeerInfo info;
  info.addr = records.address;
  if (which_neutralizer < records.neutralizers.size()) {
    info.anycast = records.neutralizers[which_neutralizer];
  }
  info.public_key = crypto::RsaPublicKey::parse(records.public_key);
  return info;
}

// ---------------------------------------------------------------------------
// ResolverApp
// ---------------------------------------------------------------------------

ResolverApp::ResolverApp(sim::Host& node, sim::Engine& engine,
                         RecordStore store,
                         std::optional<crypto::RsaPrivateKey> identity)
    : node_(node), store_(std::move(store)) {
  (void)engine;
  if (identity.has_value()) {
    pub_ = identity->pub;
    identity_.emplace(*identity);
  }
  node_.set_handler([this](net::Packet&& pkt) { on_packet(std::move(pkt)); });
}

const crypto::RsaPublicKey& ResolverApp::public_key() const {
  if (!pub_.has_value()) {
    throw std::logic_error("ResolverApp: no identity configured");
  }
  return *pub_;
}

void ResolverApp::on_packet(net::Packet&& pkt) {
  net::ParsedPacket p;
  try {
    p = net::parse_packet(pkt.view());
  } catch (const ParseError&) {
    return;
  }
  if (!p.udp.has_value() || p.udp->dst_port != kDnsPort) return;

  std::uint16_t txid = 0;
  std::uint8_t mode = kPlain;
  std::string name;
  crypto::AesKey reply_key{};
  try {
    ByteReader r(p.payload);
    txid = r.u16();
    mode = r.u8();
    if (mode == kPlain) {
      const std::uint8_t len = r.u8();
      const auto bytes = r.take(len);
      name.assign(bytes.begin(), bytes.end());
    } else if (mode == kEncrypted && identity_.has_value()) {
      const std::uint16_t ct_len = r.u16();
      const auto ct = r.take(ct_len);
      const auto plain = identity_->decrypt(ct);
      if (!plain.has_value() || plain->size() < 17) return;
      ByteReader q(*plain);
      const auto key = q.take(16);
      std::copy(key.begin(), key.end(), reply_key.begin());
      const std::uint8_t len = q.u8();
      const auto bytes = q.take(len);
      name.assign(bytes.begin(), bytes.end());
    } else {
      return;  // encrypted query to a resolver with no identity
    }
  } catch (const ParseError&) {
    return;
  }

  const auto records = store_.lookup(name);
  ByteWriter body;
  body.u8(records.has_value() ? kFound : kNxDomain);
  if (records.has_value()) body.raw(records->serialize());

  ByteWriter reply;
  reply.u16(txid);
  reply.u8(mode);
  if (mode == kEncrypted) {
    auto enc = body.take();
    crypto::Ctr(reply_key).crypt(dns_iv(txid, /*response=*/true), enc);
    reply.raw(enc);
  } else {
    reply.raw(body.view());
  }
  ++served_;
  node_.transmit(net::make_udp_packet(node_.address(), p.ip.src, kDnsPort,
                                      p.udp->src_port, reply.view()));
}

// ---------------------------------------------------------------------------
// StubResolverApp
// ---------------------------------------------------------------------------

StubResolverApp::StubResolverApp(
    sim::Host& node, sim::Engine& engine, net::Ipv4Addr resolver,
    std::optional<crypto::RsaPublicKey> resolver_key, std::uint64_t seed)
    : node_(node),
      engine_(engine),
      resolver_(resolver),
      resolver_key_(std::move(resolver_key)),
      rng_(seed) {
  auto next = node_.handler();
  node_.set_handler([this, next](net::Packet&& pkt) {
    on_packet(std::move(pkt), next);
  });
}

void StubResolverApp::resolve(const std::string& name, bool encrypted,
                              Callback cb) {
  if (name.size() > 255) {
    cb(std::nullopt);
    return;
  }
  const auto txid = static_cast<std::uint16_t>(rng_.next_u64());
  Pending pending;
  pending.cb = std::move(cb);
  pending.encrypted = encrypted;

  ByteWriter query;
  query.u16(txid);
  if (encrypted) {
    if (!resolver_key_.has_value()) {
      pending.cb(std::nullopt);
      return;
    }
    rng_.fill(pending.key);
    ByteWriter inner;
    inner.raw(pending.key);
    inner.u8(static_cast<std::uint8_t>(name.size()));
    inner.raw(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
    const auto ct = crypto::rsa_encrypt(rng_, *resolver_key_, inner.view());
    query.u8(kEncrypted);
    query.u16(static_cast<std::uint16_t>(ct.size()));
    query.raw(ct);
  } else {
    query.u8(kPlain);
    query.u8(static_cast<std::uint8_t>(name.size()));
    query.raw(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
  }
  pending_[txid] = std::move(pending);
  node_.transmit(net::make_udp_packet(node_.address(), resolver_, kDnsPort,
                                      kDnsPort, query.view()));
}

void StubResolverApp::on_packet(net::Packet&& pkt,
                                const sim::Host::Handler& next) {
  net::ParsedPacket p;
  try {
    p = net::parse_packet(pkt.view());
  } catch (const ParseError&) {
    return;
  }
  if (!p.udp.has_value() || p.udp->src_port != kDnsPort ||
      p.ip.src != resolver_) {
    if (next) next(std::move(pkt));
    return;
  }

  try {
    ByteReader r(p.payload);
    const std::uint16_t txid = r.u16();
    const std::uint8_t mode = r.u8();
    const auto it = pending_.find(txid);
    if (it == pending_.end() || (it->second.encrypted != (mode == kEncrypted))) {
      return;
    }
    Pending pending = std::move(it->second);
    pending_.erase(it);

    std::vector<std::uint8_t> body(r.rest().begin(), r.rest().end());
    if (mode == kEncrypted) {
      crypto::Ctr(pending.key).crypt(dns_iv(txid, /*response=*/true), body);
    }
    ++answered_;
    if (body.empty() || body[0] == kNxDomain) {
      pending.cb(std::nullopt);
      return;
    }
    pending.cb(DomainRecords::parse(
        std::span<const std::uint8_t>(body).subspan(1)));
  } catch (const ParseError&) {
    return;
  }
}

}  // namespace nn::dns
