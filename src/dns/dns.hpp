// Bootstrapping substrate (paper §3.1): a destination publishes its
// address, its neutralizers' anycast addresses, and its public key in
// DNS; sources fetch them before connecting.
//
// Because "a discriminatory ISP may eavesdrop on its customer's DNS
// queries and discriminate DNS queries based on the query destination",
// the client can also send *encrypted* queries to a third-party
// resolver: the query name is hidden under a fresh AES key transported
// with RSA, and the response comes back AES-encrypted. An on-path
// classifier sees only the resolver's address and noise.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/chacha.hpp"
#include "crypto/rsa.hpp"
#include "host/host.hpp"
#include "sim/network.hpp"

namespace nn::dns {

inline constexpr std::uint16_t kDnsPort = 53;

/// The records a neutralized site publishes (§3.1, §3.5).
struct DomainRecords {
  std::string name;
  net::Ipv4Addr address;                       // A
  std::vector<net::Ipv4Addr> neutralizers;     // NEUT (≥2 when multi-homed)
  std::vector<std::uint8_t> public_key;        // KEY (serialized RSA key)

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<DomainRecords> parse(
      std::span<const std::uint8_t> data);

  friend bool operator==(const DomainRecords&, const DomainRecords&) = default;
};

/// Builds host-stack bootstrap info from published records.
[[nodiscard]] host::PeerInfo to_peer_info(const DomainRecords& records,
                                          std::size_t which_neutralizer = 0);

/// Authoritative record store.
class RecordStore {
 public:
  void add(DomainRecords records) {
    store_[records.name] = std::move(records);
  }
  [[nodiscard]] std::optional<DomainRecords> lookup(
      const std::string& name) const {
    const auto it = store_.find(name);
    if (it == store_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }

 private:
  std::unordered_map<std::string, DomainRecords> store_;
};

/// Resolver application attached to a simulation host. Serves plaintext
/// queries always; serves encrypted queries when constructed with an
/// identity key (third-party resolvers per §3.1).
class ResolverApp {
 public:
  ResolverApp(sim::Host& node, sim::Engine& engine, RecordStore store,
              std::optional<crypto::RsaPrivateKey> identity);

  [[nodiscard]] std::uint64_t queries_served() const noexcept {
    return served_;
  }
  [[nodiscard]] const crypto::RsaPublicKey& public_key() const;

 private:
  sim::Host& node_;
  RecordStore store_;
  std::optional<crypto::RsaDecryptor> identity_;
  std::optional<crypto::RsaPublicKey> pub_;
  std::uint64_t served_ = 0;

  void on_packet(net::Packet&& pkt);
};

/// Stub-resolver application for client hosts. Chains onto the host's
/// existing packet handler: non-DNS traffic still reaches the previous
/// handler (e.g. the NeutralizedHost stack).
class StubResolverApp {
 public:
  using Callback = std::function<void(std::optional<DomainRecords>)>;

  /// `resolver_key` enables encrypted queries; without it only
  /// plaintext queries are possible.
  StubResolverApp(sim::Host& node, sim::Engine& engine,
                  net::Ipv4Addr resolver,
                  std::optional<crypto::RsaPublicKey> resolver_key,
                  std::uint64_t seed = 1);

  /// Issues a query. Encrypted queries require a resolver key.
  /// The callback fires with nullopt on NXDOMAIN or malformed replies
  /// (lost packets simply never call back; DNS retry policy is the
  /// caller's concern).
  void resolve(const std::string& name, bool encrypted, Callback cb);

  [[nodiscard]] std::uint64_t answered() const noexcept { return answered_; }

 private:
  struct Pending {
    Callback cb;
    crypto::AesKey key;  // encrypted queries only
    bool encrypted = false;
  };

  sim::Host& node_;
  sim::Engine& engine_;
  net::Ipv4Addr resolver_;
  std::optional<crypto::RsaPublicKey> resolver_key_;
  crypto::ChaChaRng rng_;
  std::unordered_map<std::uint16_t, Pending> pending_;
  std::uint64_t answered_ = 0;

  void on_packet(net::Packet&& pkt, const sim::Host::Handler& next);
};

}  // namespace nn::dns
