// RSA for the neutralizer protocol (paper §3.2).
//
// Two roles, with deliberately asymmetric cost:
//   * The *source* generates a short (512-bit) one-time key pair and
//     performs the expensive private-key decryption of the key-setup
//     response.
//   * The *neutralizer* performs only the public-key encryption with
//     e = 3 — "as few as two multiplications" (paper §3.2) — keeping the
//     middlebox cheap and DoS-resistant.
// Strong 1024-bit keys are used by the end-to-end encryption layer and
// by the onion-routing baseline.
//
// Padding is PKCS#1 v1.5 type 2 (random nonzero pad bytes). The paper's
// security argument does not rest on padding strength: the 512-bit key
// is used once and replaced within two RTTs by the neutralizer-stamped
// strong key Ks' (§3.2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/bigint.hpp"
#include "util/rng.hpp"

namespace nn::crypto {

struct RsaPublicKey {
  BigUInt n;
  BigUInt e;

  /// Modulus size in bytes (= ciphertext size).
  [[nodiscard]] std::size_t modulus_bytes() const {
    return (n.bit_length() + 7) / 8;
  }
  /// Largest message PKCS#1 v1.5 can carry under this modulus.
  [[nodiscard]] std::size_t max_message_bytes() const {
    return modulus_bytes() >= 11 ? modulus_bytes() - 11 : 0;
  }

  /// Wire format: u16 modulus length ‖ modulus (BE) ‖ u32 exponent.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static RsaPublicKey parse(std::span<const std::uint8_t> data);

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  BigUInt d;
  BigUInt p, q;      // prime factors
  BigUInt dp, dq;    // d mod (p-1), d mod (q-1)
  BigUInt qinv;      // q^{-1} mod p
};

/// Generates an RSA key pair: modulus of exactly `bits` bits, public
/// exponent `e` (default 3, matching the paper's efficiency argument).
[[nodiscard]] RsaPrivateKey rsa_generate(Rng& rng, std::size_t bits,
                                         std::uint64_t e = 3);

/// Textbook public operation m^e mod n (no padding). Exposed for tests
/// and the benchmark that counts raw modular multiplications.
[[nodiscard]] BigUInt rsa_public_op(const RsaPublicKey& key, const BigUInt& m);

/// Textbook private operation c^d mod n via CRT.
[[nodiscard]] BigUInt rsa_private_op(const RsaPrivateKey& key,
                                     const BigUInt& c);

/// PKCS#1-v1.5-type-2 encrypt. Throws std::invalid_argument if the
/// message is too long for the modulus.
[[nodiscard]] std::vector<std::uint8_t> rsa_encrypt(
    Rng& rng, const RsaPublicKey& key, std::span<const std::uint8_t> msg);

/// Reusable workspace for rsa_encrypt_into: the padded block, both
/// bigint operands, and the exponentiation temporaries. One per
/// encrypting thread (the Neutralizer owns one per instance).
struct RsaScratch {
  BigIntScratch math;
  std::vector<std::uint8_t> block;
  BigUInt m;
  BigUInt c;
};

/// rsa_encrypt writing the ciphertext into `out` (capacity reused), all
/// temporaries drawn from `scratch`: byte-identical to rsa_encrypt —
/// same padding draws from `rng`, same exceptions — with zero heap
/// allocation once the scratch and `out` are warm (for exponents under
/// 2^20 and moduli up to 2048 bits; larger fall back to the allocating
/// path, still correct).
void rsa_encrypt_into(Rng& rng, const RsaPublicKey& key,
                      std::span<const std::uint8_t> msg, RsaScratch& scratch,
                      std::vector<std::uint8_t>& out);

/// Decrypt + unpad; nullopt on malformed padding (treat as a dropped
/// packet, never as a distinguishable error, to avoid oracle behavior).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> rsa_decrypt(
    const RsaPrivateKey& key, std::span<const std::uint8_t> ciphertext);

/// Precomputed CRT decryptor: caches the Montgomery contexts for p and
/// q so a host that decrypts many key-setup responses (or an onion
/// relay) does not pay the setup cost per packet.
class RsaDecryptor {
 public:
  explicit RsaDecryptor(const RsaPrivateKey& key);

  [[nodiscard]] BigUInt private_op(const BigUInt& c) const;
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> decrypt(
      std::span<const std::uint8_t> ciphertext) const;

  [[nodiscard]] const RsaPrivateKey& key() const noexcept { return key_; }

 private:
  RsaPrivateKey key_;
  Montgomery mont_p_;
  Montgomery mont_q_;
};

}  // namespace nn::crypto
