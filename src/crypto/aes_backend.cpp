#include "crypto/aes_backend.hpp"

#include <cstdlib>

namespace nn::crypto {

namespace detail {
#if defined(__x86_64__) || defined(_M_X64)
// Defined in aes_backend_aesni.cpp (the only TU built with -maes):
// returns the ops table when cpuid reports AES+PCLMUL, else nullptr.
const AesBackendOps* aesni_backend_probe() noexcept;
#else
// aes_backend_aesni.cpp is excluded from non-x86 builds.
inline const AesBackendOps* aesni_backend_probe() noexcept { return nullptr; }
#endif
}  // namespace detail

namespace {

const AesBackendOps* g_override = nullptr;

const AesBackendOps& choose_backend() noexcept {
  const char* requested = std::getenv("NN_AES_BACKEND");
  if (requested != nullptr && *requested != '\0' &&
      std::string_view(requested) != "auto") {
    if (const AesBackendOps* ops = backend_by_name(requested)) return *ops;
    // Unknown or unavailable request: fall back rather than abort so a
    // forced-aesni config still runs (slowly) on plain hardware.
    return portable_backend();
  }
  if (const AesBackendOps* ni = aesni_backend()) return *ni;
  return portable_backend();
}

}  // namespace

const AesBackendOps* aesni_backend() noexcept {
  static const AesBackendOps* ops = detail::aesni_backend_probe();
  return ops;
}

std::span<const AesBackendOps* const> available_backends() noexcept {
  static const std::array<const AesBackendOps*, 2> all = {
      &portable_backend(), aesni_backend()};
  return {all.data(), all[1] != nullptr ? std::size_t{2} : std::size_t{1}};
}

const AesBackendOps* backend_by_name(std::string_view name) noexcept {
  for (const AesBackendOps* ops : available_backends()) {
    if (ops->name == name) return ops;
  }
  return nullptr;
}

const AesBackendOps& active_backend() noexcept {
  static const AesBackendOps& chosen = choose_backend();
  return g_override != nullptr ? *g_override : chosen;
}

ScopedBackendOverride::ScopedBackendOverride(const AesBackendOps& ops) noexcept
    : previous_(g_override) {
  g_override = &ops;
}

ScopedBackendOverride::~ScopedBackendOverride() { g_override = previous_; }

}  // namespace nn::crypto
