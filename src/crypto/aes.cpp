// Portable AES-128 backend (table code) and the Aes128 facade bits
// that are not header-only. This backend is the correctness reference:
// every accelerated backend must match it byte-for-byte
// (tests/crypto/test_backend_equivalence.cpp).
#include "crypto/aes.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace nn::crypto {

namespace {

// S-box and its inverse, generated at compile time from the AES
// definition (multiplicative inverse in GF(2^8) followed by the affine
// transform) so no opaque magic tables appear in the source.
constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1B;  // x^8 + x^4 + x^3 + x + 1
    b >>= 1;
  }
  return p;
}

constexpr std::uint8_t gf_inverse(std::uint8_t a) {
  if (a == 0) return 0;
  // a^254 = a^{-1} in GF(2^8)
  std::uint8_t result = 1;
  std::uint8_t base = a;
  int e = 254;
  while (e > 0) {
    if (e & 1) result = gf_mul(result, base);
    base = gf_mul(base, base);
    e >>= 1;
  }
  return result;
}

constexpr std::array<std::uint8_t, 256> make_sbox() {
  std::array<std::uint8_t, 256> box{};
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t inv = gf_inverse(static_cast<std::uint8_t>(i));
    std::uint8_t x = inv;
    std::uint8_t y = inv;
    for (int r = 0; r < 4; ++r) {
      y = static_cast<std::uint8_t>((y << 1) | (y >> 7));
      x ^= y;
    }
    box[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x ^ 0x63);
  }
  return box;
}

constexpr std::array<std::uint8_t, 256> kSbox = make_sbox();

constexpr std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (int i = 0; i < 256; ++i) inv[kSbox[static_cast<std::size_t>(i)]] =
      static_cast<std::uint8_t>(i);
  return inv;
}

constexpr std::array<std::uint8_t, 256> kInvSbox = make_inv_sbox();

constexpr std::uint32_t rot_word(std::uint32_t w) {
  return (w << 8) | (w >> 24);
}

constexpr std::uint32_t sub_word(std::uint32_t w) {
  return (static_cast<std::uint32_t>(kSbox[(w >> 24) & 0xFF]) << 24) |
         (static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xFF]) << 16) |
         (static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xFF]) << 8) |
         static_cast<std::uint32_t>(kSbox[w & 0xFF]);
}

constexpr std::array<std::uint32_t, 10> kRcon = [] {
  std::array<std::uint32_t, 10> rcon{};
  std::uint8_t c = 1;
  for (int i = 0; i < 10; ++i) {
    rcon[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(c) << 24;
    c = gf_mul(c, 2);
  }
  return rcon;
}();

constexpr int kRounds = 10;

void portable_expand_key(const std::uint8_t* key, AesSchedule& sched) {
  // FIPS-197 key expansion on 32-bit words, then serialized to the
  // schedule's block byte order (word w big-endian at bytes [4w, 4w+4)).
  std::array<std::uint32_t, 4 * (kRounds + 1)> rk{};
  for (int i = 0; i < 4; ++i) {
    rk[static_cast<std::size_t>(i)] =
        (static_cast<std::uint32_t>(key[4 * i]) << 24) |
        (static_cast<std::uint32_t>(key[4 * i + 1]) << 16) |
        (static_cast<std::uint32_t>(key[4 * i + 2]) << 8) |
        static_cast<std::uint32_t>(key[4 * i + 3]);
  }
  for (std::size_t i = 4; i < rk.size(); ++i) {
    std::uint32_t temp = rk[i - 1];
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp)) ^ kRcon[i / 4 - 1];
    }
    rk[i] = rk[i - 4] ^ temp;
  }
  for (std::size_t w = 0; w < rk.size(); ++w) {
    sched.enc[4 * w] = static_cast<std::uint8_t>(rk[w] >> 24);
    sched.enc[4 * w + 1] = static_cast<std::uint8_t>(rk[w] >> 16);
    sched.enc[4 * w + 2] = static_cast<std::uint8_t>(rk[w] >> 8);
    sched.enc[4 * w + 3] = static_cast<std::uint8_t>(rk[w]);
  }
  // The portable inverse cipher walks the encryption keys backwards
  // (no AESIMC-style transform); sched.dec stays unused — the layout
  // is backend-defined and a portable schedule is never fed to other
  // backends' ops.
}

inline void add_round_key(std::uint8_t state[16], const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) state[i] ^= rk[i];
}

inline void sub_bytes(std::uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) state[i] = kSbox[state[i]];
}

inline void inv_sub_bytes(std::uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) state[i] = kInvSbox[state[i]];
}

// State layout: state[4*c + r] = byte at row r, column c (FIPS-197
// column-major order, i.e. the natural byte order of the input block).
inline void shift_rows(std::uint8_t s[16]) {
  std::uint8_t t;
  // row 1: shift left by 1
  t = s[1];
  s[1] = s[5];
  s[5] = s[9];
  s[9] = s[13];
  s[13] = t;
  // row 2: shift left by 2
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // row 3: shift left by 3 (= right by 1)
  t = s[15];
  s[15] = s[11];
  s[11] = s[7];
  s[7] = s[3];
  s[3] = t;
}

inline void inv_shift_rows(std::uint8_t s[16]) {
  std::uint8_t t;
  // row 1: shift right by 1
  t = s[13];
  s[13] = s[9];
  s[9] = s[5];
  s[5] = s[1];
  s[1] = t;
  // row 2: shift right by 2
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // row 3: shift right by 3 (= left by 1)
  t = s[3];
  s[3] = s[7];
  s[7] = s[11];
  s[11] = s[15];
  s[15] = t;
}

inline std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1B : 0));
}

inline void mix_columns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    const std::uint8_t all = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
    col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
    col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
    col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
    col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
  }
}

// Compile-time multiplication tables for the inverse MixColumns
// coefficients; bit-by-bit gf_mul per byte would dominate decryption.
constexpr std::array<std::uint8_t, 256> make_mul_table(std::uint8_t k) {
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    t[static_cast<std::size_t>(i)] = gf_mul(static_cast<std::uint8_t>(i), k);
  }
  return t;
}
constexpr auto kMul9 = make_mul_table(9);
constexpr auto kMul11 = make_mul_table(11);
constexpr auto kMul13 = make_mul_table(13);
constexpr auto kMul14 = make_mul_table(14);

inline void inv_mix_columns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(kMul14[a0] ^ kMul11[a1] ^ kMul13[a2] ^
                                       kMul9[a3]);
    col[1] = static_cast<std::uint8_t>(kMul9[a0] ^ kMul14[a1] ^ kMul11[a2] ^
                                       kMul13[a3]);
    col[2] = static_cast<std::uint8_t>(kMul13[a0] ^ kMul9[a1] ^ kMul14[a2] ^
                                       kMul11[a3]);
    col[3] = static_cast<std::uint8_t>(kMul11[a0] ^ kMul13[a1] ^ kMul9[a2] ^
                                       kMul14[a3]);
  }
}

void encrypt_one(const AesSchedule& sched, const std::uint8_t* in,
                 std::uint8_t* out) {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, sched.enc.data());
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, sched.enc.data() + 16 * round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, sched.enc.data() + 16 * kRounds);
  std::memcpy(out, s, 16);
}

void decrypt_one(const AesSchedule& sched, const std::uint8_t* in,
                 std::uint8_t* out) {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, sched.enc.data() + 16 * kRounds);
  for (int round = kRounds - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, sched.enc.data() + 16 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, sched.enc.data());
  std::memcpy(out, s, 16);
}

void portable_encrypt_blocks(const AesSchedule& sched, const std::uint8_t* in,
                             std::uint8_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    encrypt_one(sched, in + 16 * i, out + 16 * i);
  }
}

void portable_decrypt_blocks(const AesSchedule& sched, const std::uint8_t* in,
                             std::uint8_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    decrypt_one(sched, in + 16 * i, out + 16 * i);
  }
}

void portable_cbc_decrypt(const AesSchedule& sched, const std::uint8_t iv[16],
                          const std::uint8_t* in, std::uint8_t* out,
                          std::size_t n) {
  // `prev` is a copy so in-place decryption (out == in) is safe.
  std::uint8_t prev[16];
  std::memcpy(prev, iv, 16);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t c[16];
    std::memcpy(c, in + 16 * i, 16);
    std::uint8_t p[16];
    decrypt_one(sched, c, p);
    for (int j = 0; j < 16; ++j) out[16 * i + j] = p[j] ^ prev[j];
    std::memcpy(prev, c, 16);
  }
}

void portable_ctr_xor(const AesSchedule& sched, const std::uint8_t iv[12],
                      std::uint32_t counter0, std::uint8_t* data,
                      std::size_t len) {
  std::uint8_t counter[16];
  std::memcpy(counter, iv, 12);
  std::uint32_t ctr = counter0;
  std::size_t pos = 0;
  while (pos < len) {
    counter[12] = static_cast<std::uint8_t>(ctr >> 24);
    counter[13] = static_cast<std::uint8_t>(ctr >> 16);
    counter[14] = static_cast<std::uint8_t>(ctr >> 8);
    counter[15] = static_cast<std::uint8_t>(ctr);
    std::uint8_t ks[16];
    encrypt_one(sched, counter, ks);
    const std::size_t chunk = std::min<std::size_t>(16, len - pos);
    for (std::size_t j = 0; j < chunk; ++j) data[pos + j] ^= ks[j];
    pos += chunk;
    ++ctr;
  }
}

void portable_encrypt_blocks_multi(const AesSchedule* scheds,
                                   const std::uint8_t* in, std::uint8_t* out,
                                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    encrypt_one(scheds[i], in + 16 * i, out + 16 * i);
  }
}

constexpr AesBackendOps kPortableOps = {
    "portable",
    portable_expand_key,
    portable_encrypt_blocks,
    portable_decrypt_blocks,
    portable_encrypt_blocks_multi,
    portable_cbc_decrypt,
    portable_ctr_xor,
};

}  // namespace

const AesBackendOps& portable_backend() noexcept { return kPortableOps; }

Aes128::Aes128(std::span<const std::uint8_t> key) : ops_(&active_backend()) {
  if (key.size() != kAesKeySize) {
    throw std::invalid_argument("Aes128: key must be 16 bytes");
  }
  ops_->expand_key(key.data(), sched_);
}

}  // namespace nn::crypto
