// AES-NI backend. This is the only translation unit compiled with
// -maes -mpclmul -msse4.1 (see CMakeLists.txt), so every function that
// may execute AES instructions lives here, behind the cpuid probe —
// nothing in this file runs unless `aesni_backend_probe()` returned
// non-null on this machine.
//
// The batch entry points keep 8 blocks in flight: AESENC/AESDEC have a
// ~4-cycle latency but single-cycle throughput, so independent blocks
// interleave essentially for free while a lone block serializes on the
// latency chain. CBC *decrypt* is data-parallel (block i needs only
// ciphertext block i-1) and pipelines the same way; CBC encrypt is
// inherently serial and is not offered batched.

#if defined(__x86_64__) || defined(_M_X64)

#include <wmmintrin.h>  // AESENC/AESDEC/AESKEYGENASSIST
#include <smmintrin.h>  // _mm_insert_epi32

#include <cstring>

#include "crypto/aes_backend.hpp"

namespace nn::crypto {
namespace {

// --- key schedule ----------------------------------------------------

template <int Rcon>
inline __m128i expand_step(__m128i key) {
  __m128i gen = _mm_aeskeygenassist_si128(key, Rcon);
  gen = _mm_shuffle_epi32(gen, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, gen);
}

void aesni_expand_key(const std::uint8_t* key, AesSchedule& sched) {
  __m128i rk[11];
  rk[0] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  rk[1] = expand_step<0x01>(rk[0]);
  rk[2] = expand_step<0x02>(rk[1]);
  rk[3] = expand_step<0x04>(rk[2]);
  rk[4] = expand_step<0x08>(rk[3]);
  rk[5] = expand_step<0x10>(rk[4]);
  rk[6] = expand_step<0x20>(rk[5]);
  rk[7] = expand_step<0x40>(rk[6]);
  rk[8] = expand_step<0x80>(rk[7]);
  rk[9] = expand_step<0x1B>(rk[8]);
  rk[10] = expand_step<0x36>(rk[9]);
  auto* enc = reinterpret_cast<__m128i*>(sched.enc.data());
  for (int r = 0; r <= 10; ++r) _mm_store_si128(enc + r, rk[r]);
  // Equivalent-inverse-cipher keys for AESDEC: reversed order, middle
  // rounds through AESIMC (FIPS-197 §5.3.5).
  auto* dec = reinterpret_cast<__m128i*>(sched.dec.data());
  _mm_store_si128(dec + 0, rk[10]);
  for (int r = 1; r <= 9; ++r) {
    _mm_store_si128(dec + r, _mm_aesimc_si128(rk[10 - r]));
  }
  _mm_store_si128(dec + 10, rk[0]);
}

// --- block transforms ------------------------------------------------

struct RoundKeys {
  __m128i rk[11];
  explicit RoundKeys(const std::uint8_t* sched) {
    const auto* p = reinterpret_cast<const __m128i*>(sched);
    for (int r = 0; r <= 10; ++r) rk[r] = _mm_load_si128(p + r);
  }
};

inline __m128i encrypt_one(const RoundKeys& k, __m128i b) {
  b = _mm_xor_si128(b, k.rk[0]);
  for (int r = 1; r < 10; ++r) b = _mm_aesenc_si128(b, k.rk[r]);
  return _mm_aesenclast_si128(b, k.rk[10]);
}

inline __m128i decrypt_one(const RoundKeys& k, __m128i b) {
  b = _mm_xor_si128(b, k.rk[0]);
  for (int r = 1; r < 10; ++r) b = _mm_aesdec_si128(b, k.rk[r]);
  return _mm_aesdeclast_si128(b, k.rk[10]);
}

inline constexpr std::size_t kLanes = 8;

// Runs 8 independent blocks through the cipher together. `Enc` selects
// the instruction; the loop body is identical otherwise.
template <bool Enc>
inline void crypt_lanes(const RoundKeys& k, __m128i (&b)[kLanes]) {
  for (auto& lane : b) lane = _mm_xor_si128(lane, k.rk[0]);
  for (int r = 1; r < 10; ++r) {
    for (auto& lane : b) {
      lane = Enc ? _mm_aesenc_si128(lane, k.rk[r])
                 : _mm_aesdec_si128(lane, k.rk[r]);
    }
  }
  for (auto& lane : b) {
    lane = Enc ? _mm_aesenclast_si128(lane, k.rk[10])
               : _mm_aesdeclast_si128(lane, k.rk[10]);
  }
}

template <bool Enc>
void crypt_blocks(const std::uint8_t* sched, const std::uint8_t* in,
                  std::uint8_t* out, std::size_t n) {
  const RoundKeys k(sched);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m128i b[kLanes];
    for (std::size_t j = 0; j < kLanes; ++j) {
      b[j] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in + 16 * (i + j)));
    }
    crypt_lanes<Enc>(k, b);
    for (std::size_t j = 0; j < kLanes; ++j) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + j)), b[j]);
    }
  }
  for (; i < n; ++i) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     Enc ? encrypt_one(k, b) : decrypt_one(k, b));
  }
}

void aesni_encrypt_blocks(const AesSchedule& sched, const std::uint8_t* in,
                          std::uint8_t* out, std::size_t n) {
  crypt_blocks<true>(sched.enc.data(), in, out, n);
}

void aesni_decrypt_blocks(const AesSchedule& sched, const std::uint8_t* in,
                          std::uint8_t* out, std::size_t n) {
  crypt_blocks<false>(sched.dec.data(), in, out, n);
}

void aesni_encrypt_blocks_multi(const AesSchedule* scheds,
                                const std::uint8_t* in, std::uint8_t* out,
                                std::size_t n) {
  // Same 8-lane interleave as crypt_blocks, but each lane loads its own
  // round key every round: AESENC throughput still hides the latency
  // chain, the extra cost is one (L1-resident) key load per lane/round.
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m128i b[kLanes];
    const __m128i* rk[kLanes];
    for (std::size_t j = 0; j < kLanes; ++j) {
      b[j] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in + 16 * (i + j)));
      rk[j] = reinterpret_cast<const __m128i*>(scheds[i + j].enc.data());
      b[j] = _mm_xor_si128(b[j], _mm_load_si128(rk[j]));
    }
    for (int r = 1; r < 10; ++r) {
      for (std::size_t j = 0; j < kLanes; ++j) {
        b[j] = _mm_aesenc_si128(b[j], _mm_load_si128(rk[j] + r));
      }
    }
    for (std::size_t j = 0; j < kLanes; ++j) {
      b[j] = _mm_aesenclast_si128(b[j], _mm_load_si128(rk[j] + 10));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + j)), b[j]);
    }
  }
  for (; i < n; ++i) {
    const RoundKeys k(scheds[i].enc.data());
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     encrypt_one(k, b));
  }
}

void aesni_cbc_decrypt(const AesSchedule& sched, const std::uint8_t iv[16],
                       const std::uint8_t* in, std::uint8_t* out,
                       std::size_t n) {
  const RoundKeys k(sched.dec.data());
  // `prev` is carried in a register so in-place decryption (out == in)
  // is safe: each ciphertext block is consumed before it is overwritten.
  __m128i prev = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m128i c[kLanes];
    __m128i b[kLanes];
    for (std::size_t j = 0; j < kLanes; ++j) {
      c[j] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in + 16 * (i + j)));
      b[j] = c[j];
    }
    crypt_lanes<false>(k, b);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     _mm_xor_si128(b[0], prev));
    for (std::size_t j = 1; j < kLanes; ++j) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (i + j)),
                       _mm_xor_si128(b[j], c[j - 1]));
    }
    prev = c[kLanes - 1];
  }
  for (; i < n; ++i) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     _mm_xor_si128(decrypt_one(k, c), prev));
    prev = c;
  }
}

void aesni_ctr_xor(const AesSchedule& sched, const std::uint8_t iv[12],
                   std::uint32_t counter0, std::uint8_t* data,
                   std::size_t len) {
  const RoundKeys k(sched.enc.data());
  alignas(16) std::uint8_t base[16] = {};
  std::memcpy(base, iv, 12);
  const __m128i iv_block =
      _mm_load_si128(reinterpret_cast<const __m128i*>(base));
  const auto counter_block = [&](std::uint32_t ctr) {
    return _mm_insert_epi32(iv_block,
                            static_cast<int>(__builtin_bswap32(ctr)), 3);
  };

  std::uint32_t ctr = counter0;
  std::size_t pos = 0;
  while (len - pos >= 16 * kLanes) {
    __m128i b[kLanes];
    for (std::size_t j = 0; j < kLanes; ++j) b[j] = counter_block(ctr++);
    crypt_lanes<true>(k, b);
    for (std::size_t j = 0; j < kLanes; ++j) {
      const auto* src =
          reinterpret_cast<const __m128i*>(data + pos + 16 * j);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(data + pos + 16 * j),
                       _mm_xor_si128(_mm_loadu_si128(src), b[j]));
    }
    pos += 16 * kLanes;
  }
  while (pos < len) {
    const __m128i ks = encrypt_one(k, counter_block(ctr++));
    alignas(16) std::uint8_t ks_bytes[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(ks_bytes), ks);
    const std::size_t chunk = len - pos < 16 ? len - pos : 16;
    for (std::size_t j = 0; j < chunk; ++j) data[pos + j] ^= ks_bytes[j];
    pos += chunk;
  }
}

constexpr AesBackendOps kAesniOps = {
    "aesni",
    aesni_expand_key,
    aesni_encrypt_blocks,
    aesni_decrypt_blocks,
    aesni_encrypt_blocks_multi,
    aesni_cbc_decrypt,
    aesni_ctr_xor,
};

}  // namespace

namespace detail {

const AesBackendOps* aesni_backend_probe() noexcept {
  // The whole TU is compiled with -maes -mpclmul -msse4.1, so require
  // all three features before handing out code that may use them.
  if (__builtin_cpu_supports("aes") && __builtin_cpu_supports("pclmul") &&
      __builtin_cpu_supports("sse4.1")) {
    return &kAesniOps;
  }
  return nullptr;
}

}  // namespace detail
}  // namespace nn::crypto

#endif  // x86-64
