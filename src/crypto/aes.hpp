// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// The paper's neutralizer (§4) uses "128-bit AES for both hashing and
// encryption/decryption": the per-source key Ks is derived with an
// AES-based keyed hash (we use AES-CMAC, see aes_modes.hpp) and the inner
// destination address is encrypted with AES. This file provides the raw
// block transform both directions; modes live in aes_modes.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace nn::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAesKeySize = 16;  // AES-128

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;
using AesKey = std::array<std::uint8_t, kAesKeySize>;

/// Expanded-key AES-128 context. Cheap to copy; no secret erasure is
/// attempted (out of scope for this reproduction).
class Aes128 {
 public:
  explicit Aes128(const AesKey& key) noexcept { expand_key(key); }
  explicit Aes128(std::span<const std::uint8_t> key);

  void encrypt_block(const AesBlock& in, AesBlock& out) const noexcept;
  void decrypt_block(const AesBlock& in, AesBlock& out) const noexcept;

  [[nodiscard]] AesBlock encrypt(const AesBlock& in) const noexcept {
    AesBlock out;
    encrypt_block(in, out);
    return out;
  }
  [[nodiscard]] AesBlock decrypt(const AesBlock& in) const noexcept {
    AesBlock out;
    decrypt_block(in, out);
    return out;
  }

 private:
  static constexpr int kRounds = 10;
  // Round keys as 4 words per round, 11 rounds.
  std::array<std::uint32_t, 4 * (kRounds + 1)> rk_{};

  void expand_key(const AesKey& key) noexcept;
};

}  // namespace nn::crypto
