// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// The paper's neutralizer (§4) uses "128-bit AES for both hashing and
// encryption/decryption": the per-source key Ks is derived with an
// AES-based keyed hash (we use AES-CMAC, see aes_modes.hpp) and the inner
// destination address is encrypted with AES. This class is a thin facade
// over the runtime-dispatched backends in aes_backend.hpp: the portable
// table code (aes.cpp) or hardware AES-NI (aes_backend_aesni.cpp),
// selected once per process. Modes live in aes_modes.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/aes_backend.hpp"

namespace nn::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAesKeySize = 16;  // AES-128

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;
using AesKey = std::array<std::uint8_t, kAesKeySize>;

/// Expanded-key AES-128 context. Cheap to copy; no secret erasure is
/// attempted (out of scope for this reproduction). The backend is bound
/// at construction (the process-wide `active_backend()` by default) and
/// the expanded schedule is only ever fed back to that same backend.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key) noexcept : Aes128(key, active_backend()) {}
  Aes128(const AesKey& key, const AesBackendOps& ops) noexcept : ops_(&ops) {
    ops_->expand_key(key.data(), sched_);
  }
  explicit Aes128(std::span<const std::uint8_t> key);

  void encrypt_block(const AesBlock& in, AesBlock& out) const noexcept {
    ops_->encrypt_blocks(sched_, in.data(), out.data(), 1);
  }
  void decrypt_block(const AesBlock& in, AesBlock& out) const noexcept {
    ops_->decrypt_blocks(sched_, in.data(), out.data(), 1);
  }

  [[nodiscard]] AesBlock encrypt(const AesBlock& in) const noexcept {
    AesBlock out;
    encrypt_block(in, out);
    return out;
  }
  [[nodiscard]] AesBlock decrypt(const AesBlock& in) const noexcept {
    AesBlock out;
    decrypt_block(in, out);
    return out;
  }

  /// Whole-batch ECB over `n` independent 16-byte blocks. Accelerated
  /// backends keep several blocks in flight; this is the entry point
  /// the batched CMAC/CTR paths build on. In-place (`in == out`) is
  /// allowed.
  void encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t n) const noexcept {
    ops_->encrypt_blocks(sched_, in, out, n);
  }
  void decrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t n) const noexcept {
    ops_->decrypt_blocks(sched_, in, out, n);
  }

  /// Pipelined CBC decrypt of `n` chained blocks (in-place allowed).
  void cbc_decrypt(const AesBlock& iv, const std::uint8_t* in,
                   std::uint8_t* out, std::size_t n) const noexcept {
    ops_->cbc_decrypt(sched_, iv.data(), in, out, n);
  }

  /// CTR keystream XOR: counter block = iv ‖ be32(counter0 + i).
  void ctr_xor(std::span<const std::uint8_t, 12> iv, std::uint32_t counter0,
               std::span<std::uint8_t> data) const noexcept {
    ops_->ctr_xor(sched_, iv.data(), counter0, data.data(), data.size());
  }

  [[nodiscard]] const AesBackendOps& backend() const noexcept { return *ops_; }
  [[nodiscard]] std::string_view backend_name() const noexcept {
    return ops_->name;
  }

 private:
  AesSchedule sched_;
  const AesBackendOps* ops_;
};

}  // namespace nn::crypto
