#include "crypto/bigint.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "util/bytes.hpp"

namespace nn::crypto {

using u64 = std::uint64_t;
__extension__ typedef unsigned __int128 u128;

void BigUInt::normalize() noexcept {
  while (!w_.empty() && w_.back() == 0) w_.pop_back();
}

BigUInt::BigUInt(u64 v) {
  if (v != 0) w_.push_back(v);
}

BigUInt BigUInt::from_bytes_be(std::span<const std::uint8_t> bytes) {
  BigUInt out;
  out.w_.assign((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // byte i is the (size-1-i)-th least significant byte
    const std::size_t pos = bytes.size() - 1 - i;
    out.w_[pos / 8] |= static_cast<u64>(bytes[i]) << (8 * (pos % 8));
  }
  out.normalize();
  return out;
}

std::vector<std::uint8_t> BigUInt::to_bytes_be(std::size_t min_len) const {
  std::vector<std::uint8_t> out;
  write_bytes_be(min_len, out);
  return out;
}

void BigUInt::assign_bytes_be(std::span<const std::uint8_t> bytes) {
  w_.assign((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t pos = bytes.size() - 1 - i;
    w_[pos / 8] |= static_cast<u64>(bytes[i]) << (8 * (pos % 8));
  }
  normalize();
}

void BigUInt::write_bytes_be(std::size_t min_len,
                             std::vector<std::uint8_t>& out) const {
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t len = std::max(nbytes, min_len);
  out.assign(len, 0);
  for (std::size_t pos = 0; pos < nbytes; ++pos) {
    out[len - 1 - pos] =
        static_cast<std::uint8_t>(w_[pos / 8] >> (8 * (pos % 8)));
  }
}

BigUInt BigUInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(nn::from_hex(padded));
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = nn::to_hex(to_bytes_be());
  const std::size_t first = s.find_first_not_of('0');
  return s.substr(first);
}

std::size_t BigUInt::bit_length() const noexcept {
  if (w_.empty()) return 0;
  const u64 top = w_.back();
  return (w_.size() - 1) * 64 +
         (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigUInt::bit(std::size_t i) const noexcept {
  const std::size_t word = i / 64;
  if (word >= w_.size()) return false;
  return (w_[word] >> (i % 64)) & 1;
}

void BigUInt::set_bit(std::size_t i) {
  const std::size_t word = i / 64;
  if (word >= w_.size()) w_.resize(word + 1, 0);
  w_[word] |= u64{1} << (i % 64);
}

std::strong_ordering operator<=>(const BigUInt& a, const BigUInt& b) noexcept {
  if (a.w_.size() != b.w_.size()) return a.w_.size() <=> b.w_.size();
  for (std::size_t i = a.w_.size(); i-- > 0;) {
    if (a.w_[i] != b.w_[i]) return a.w_[i] <=> b.w_[i];
  }
  return std::strong_ordering::equal;
}

BigUInt operator+(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  const std::size_t n = std::max(a.w_.size(), b.w_.size());
  out.w_.assign(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 av = i < a.w_.size() ? a.w_[i] : 0;
    const u64 bv = i < b.w_.size() ? b.w_[i] : 0;
    const u128 sum = static_cast<u128>(av) + bv + carry;
    out.w_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out.w_[n] = carry;
  out.normalize();
  return out;
}

BigUInt operator-(const BigUInt& a, const BigUInt& b) {
  if (a < b) throw std::underflow_error("BigUInt subtraction underflow");
  BigUInt out;
  out.w_.assign(a.w_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.w_.size(); ++i) {
    const u64 bv = i < b.w_.size() ? b.w_[i] : 0;
    const u128 lhs = static_cast<u128>(a.w_[i]);
    const u128 rhs = static_cast<u128>(bv) + borrow;
    if (lhs >= rhs) {
      out.w_[i] = static_cast<u64>(lhs - rhs);
      borrow = 0;
    } else {
      out.w_[i] = static_cast<u64>((static_cast<u128>(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  out.normalize();
  return out;
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return {};
  BigUInt out;
  out.w_.assign(a.w_.size() + b.w_.size(), 0);
  for (std::size_t i = 0; i < a.w_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < b.w_.size(); ++j) {
      const u128 cur =
          static_cast<u128>(a.w_[i]) * b.w_[j] + out.w_[i + j] + carry;
      out.w_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.w_[i + b.w_.size()] = carry;
  }
  out.normalize();
  return out;
}

BigUInt operator<<(const BigUInt& a, std::size_t bits) {
  if (a.is_zero() || bits == 0) return a;
  const std::size_t words = bits / 64;
  const std::size_t rem = bits % 64;
  BigUInt out;
  out.w_.assign(a.w_.size() + words + 1, 0);
  for (std::size_t i = 0; i < a.w_.size(); ++i) {
    out.w_[i + words] |= rem ? (a.w_[i] << rem) : a.w_[i];
    if (rem) out.w_[i + words + 1] |= a.w_[i] >> (64 - rem);
  }
  out.normalize();
  return out;
}

BigUInt operator>>(const BigUInt& a, std::size_t bits) {
  const std::size_t words = bits / 64;
  if (words >= a.w_.size()) return {};
  const std::size_t rem = bits % 64;
  BigUInt out;
  out.w_.assign(a.w_.size() - words, 0);
  for (std::size_t i = 0; i < out.w_.size(); ++i) {
    out.w_[i] = rem ? (a.w_[i + words] >> rem) : a.w_[i + words];
    if (rem && i + words + 1 < a.w_.size()) {
      out.w_[i] |= a.w_[i + words + 1] << (64 - rem);
    }
  }
  out.normalize();
  return out;
}

BigUIntDivMod BigUInt::divmod(const BigUInt& a, const BigUInt& b) {
  if (b.is_zero()) throw std::domain_error("BigUInt division by zero");
  if (a < b) return {BigUInt{}, a};
  if (b.w_.size() == 1) {
    return {a.div_u64(b.w_[0]), BigUInt{a.mod_u64(b.w_[0])}};
  }

  // Knuth TAOCP vol. 2 Algorithm D with 64-bit digits. This sits under
  // the RSA public operation (e = 3 is two multiply-reduce steps), so
  // it must be fast — the neutralizer's key-setup rate depends on it.
  const int shift = __builtin_clzll(b.w_.back());
  const BigUInt u_n = a << static_cast<std::size_t>(shift);
  const BigUInt v_n = b << static_cast<std::size_t>(shift);
  std::vector<u64> u = u_n.w_;
  const std::vector<u64>& v = v_n.w_;
  const std::size_t n = v.size();
  // (a << shift) has at least as many digits as a; pad one extra.
  u.resize(std::max(u.size(), a.w_.size() + (shift ? 1u : 0u)), 0);
  u.push_back(0);
  const std::size_t m = u.size() - 1 - n;

  BigUInt quotient;
  quotient.w_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate the next quotient digit from the top two dividend digits.
    const u128 num = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u64 qhat, rhat;
    if (u[j + n] >= v[n - 1]) {
      qhat = ~u64{0};
      rhat = static_cast<u64>(num - static_cast<u128>(qhat) * v[n - 1]);
    } else {
      qhat = static_cast<u64>(num / v[n - 1]);
      rhat = static_cast<u64>(num % v[n - 1]);
    }
    // Refine using the third digit (at most two corrections).
    while (static_cast<u128>(qhat) * v[n - 2] >
           ((static_cast<u128>(rhat) << 64) | u[j + n - 2])) {
      --qhat;
      const u128 next = static_cast<u128>(rhat) + v[n - 1];
      if (next >> 64) break;  // rhat overflowed: qhat is now exact enough
      rhat = static_cast<u64>(next);
    }

    // u[j..j+n] -= qhat * v (multiply-and-subtract with signed borrow
    // tracking, Hacker's Delight divmnu64 style).
    __extension__ typedef __int128 i128;
    u64 borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 product = static_cast<u128>(qhat) * v[i];
      const i128 t = static_cast<i128>(static_cast<u128>(u[i + j])) -
                     borrow - static_cast<u64>(product);
      u[i + j] = static_cast<u64>(t);
      borrow = static_cast<u64>(product >> 64) -
               static_cast<u64>(t >> 64);  // t>>64 is -1 when t < 0
    }
    const i128 top = static_cast<i128>(static_cast<u128>(u[j + n])) - borrow;
    u[j + n] = static_cast<u64>(top);
    const bool went_negative = top < 0;

    if (went_negative) {
      // qhat was one too large: add v back once.
      --qhat;
      u128 add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = static_cast<u128>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<u64>(sum);
        add_carry = sum >> 64;
      }
      u[j + n] += static_cast<u64>(add_carry);
    }
    quotient.w_[j] = qhat;
  }

  BigUInt remainder;
  remainder.w_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  remainder.normalize();
  remainder = remainder >> static_cast<std::size_t>(shift);
  quotient.normalize();
  return {quotient, remainder};
}

// ---------------------------------------------------------------------------
// BigIntScratch: allocation-free small-exponent modular exponentiation
// ---------------------------------------------------------------------------

namespace {
std::size_t sig_words(const u64* w, std::size_t n) noexcept {
  while (n > 0 && w[n - 1] == 0) --n;
  return n;
}
}  // namespace

bool BigIntScratch::pow_u64_mod(const BigUInt& base, u64 e, const BigUInt& n,
                                BigUInt& out) {
  const std::size_t k = n.w_.size();
  // k < 2 keeps the Algorithm D digit estimation (which reads v[n-2])
  // in range; base >= n is refused so the fallback path reproduces
  // rsa_public_op's domain error.
  if (k < 2 || k > kMaxWords) return false;
  if (base >= n) return false;
  k_ = k;
  shift_ = __builtin_clzll(n.w_.back());
  // vn_ = n << shift_: the top bit lands at bit 63, so it stays k words.
  for (std::size_t i = k; i-- > 0;) {
    vn_[i] = shift_ ? (n.w_[i] << shift_) |
                          (i > 0 ? n.w_[i - 1] >> (64 - shift_) : 0)
                    : n.w_[i];
  }
  // Right-to-left square-and-multiply — the same ladder rsa_public_op
  // walks, so the arithmetic (and hence the bytes) is identical.
  std::size_t blen = base.w_.size();
  std::copy(base.w_.begin(), base.w_.end(), base_.begin());
  acc_[0] = 1;
  std::size_t alen = 1;
  while (e > 0) {
    if (e & 1) {
      mulmod(acc_.data(), alen, base_.data(), blen, acc_.data());
      alen = sig_words(acc_.data(), k_);
    }
    e >>= 1;
    if (e) {
      mulmod(base_.data(), blen, base_.data(), blen, base_.data());
      blen = sig_words(base_.data(), k_);
    }
  }
  out.w_.assign(acc_.begin(), acc_.begin() + static_cast<std::ptrdiff_t>(alen));
  return true;
}

void BigIntScratch::mulmod(const u64* a, std::size_t alen, const u64* b,
                           std::size_t blen, u64* dest) {
  if (alen == 0 || blen == 0) {
    std::fill(dest, dest + k_, 0);
    return;
  }
  // prod_ = a * b (schoolbook, same as BigUInt::operator*).
  std::fill(prod_.begin(),
            prod_.begin() + static_cast<std::ptrdiff_t>(alen + blen), 0);
  for (std::size_t i = 0; i < alen; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < blen; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + prod_[i + j] + carry;
      prod_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    prod_[i + blen] = carry;
  }
  const std::size_t plen = sig_words(prod_.data(), alen + blen);
  if (plen < k_) {
    // Fewer words than the modulus means the product is already
    // reduced.
    std::copy(prod_.begin(), prod_.begin() + static_cast<std::ptrdiff_t>(plen),
              dest);
    std::fill(dest + plen, dest + k_, 0);
    return;
  }
  // u_ = prod_ << shift_, with a spill word and Algorithm D's extra
  // top digit. Uses (a << s) mod (n << s) == (a mod n) << s, so the
  // modulus normalization is paid once in pow_u64_mod, not per call.
  const std::size_t ulen = plen + 2;
  if (shift_) {
    u_[0] = prod_[0] << shift_;
    for (std::size_t i = 1; i < plen; ++i) {
      u_[i] = (prod_[i] << shift_) | (prod_[i - 1] >> (64 - shift_));
    }
    u_[plen] = prod_[plen - 1] >> (64 - shift_);
  } else {
    std::copy(prod_.begin(), prod_.begin() + static_cast<std::ptrdiff_t>(plen),
              u_.begin());
    u_[plen] = 0;
  }
  u_[plen + 1] = 0;

  // Quotient-free Algorithm D: identical digit estimation and
  // multiply-subtract as BigUInt::divmod, but no quotient is stored —
  // u_[0..k_) ends as the (shifted) remainder.
  const std::size_t m = ulen - 1 - k_;
  const u64* v = vn_.data();
  for (std::size_t j = m + 1; j-- > 0;) {
    const u128 num = (static_cast<u128>(u_[j + k_]) << 64) | u_[j + k_ - 1];
    u64 qhat, rhat;
    if (u_[j + k_] >= v[k_ - 1]) {
      qhat = ~u64{0};
      rhat = static_cast<u64>(num - static_cast<u128>(qhat) * v[k_ - 1]);
    } else {
      qhat = static_cast<u64>(num / v[k_ - 1]);
      rhat = static_cast<u64>(num % v[k_ - 1]);
    }
    while (static_cast<u128>(qhat) * v[k_ - 2] >
           ((static_cast<u128>(rhat) << 64) | u_[j + k_ - 2])) {
      --qhat;
      const u128 next = static_cast<u128>(rhat) + v[k_ - 1];
      if (next >> 64) break;
      rhat = static_cast<u64>(next);
    }
    __extension__ typedef __int128 i128;
    u64 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 product = static_cast<u128>(qhat) * v[i];
      const i128 t = static_cast<i128>(static_cast<u128>(u_[i + j])) - borrow -
                     static_cast<u64>(product);
      u_[i + j] = static_cast<u64>(t);
      borrow = static_cast<u64>(product >> 64) - static_cast<u64>(t >> 64);
    }
    const i128 top = static_cast<i128>(static_cast<u128>(u_[j + k_])) - borrow;
    u_[j + k_] = static_cast<u64>(top);
    if (top < 0) {
      u128 add_carry = 0;
      for (std::size_t i = 0; i < k_; ++i) {
        const u128 sum = static_cast<u128>(u_[i + j]) + v[i] + add_carry;
        u_[i + j] = static_cast<u64>(sum);
        add_carry = sum >> 64;
      }
      u_[j + k_] += static_cast<u64>(add_carry);
    }
  }

  // Denormalize the remainder (it occupies u_[0..k_) entirely).
  if (shift_) {
    for (std::size_t i = 0; i < k_; ++i) {
      dest[i] = (u_[i] >> shift_) |
                (i + 1 < k_ ? u_[i + 1] << (64 - shift_) : 0);
    }
  } else {
    std::copy(u_.begin(), u_.begin() + static_cast<std::ptrdiff_t>(k_), dest);
  }
}

std::uint64_t BigUInt::mod_u64(u64 m) const {
  if (m == 0) throw std::domain_error("BigUInt mod by zero");
  u128 rem = 0;
  for (std::size_t i = w_.size(); i-- > 0;) {
    rem = ((rem << 64) | w_[i]) % m;
  }
  return static_cast<u64>(rem);
}

BigUInt BigUInt::div_u64(u64 d) const {
  if (d == 0) throw std::domain_error("BigUInt division by zero");
  BigUInt out;
  out.w_.assign(w_.size(), 0);
  u128 rem = 0;
  for (std::size_t i = w_.size(); i-- > 0;) {
    rem = (rem << 64) | w_[i];
    out.w_[i] = static_cast<u64>(rem / d);
    rem %= d;
  }
  out.normalize();
  return out;
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic (CIOS multiplication)
// ---------------------------------------------------------------------------

Montgomery::Montgomery(const BigUInt& modulus) : n_big_(modulus) {
  if (modulus.is_zero() || !modulus.is_odd()) {
    throw std::domain_error("Montgomery modulus must be odd and nonzero");
  }
  k_ = modulus.w_.size();
  n_ = modulus.w_;
  // Newton's iteration for n^{-1} mod 2^64, then negate.
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n_[0] * inv;
  n0inv_ = ~inv + 1;
  // rr = (2^(64k))^2 mod n, computed with plain big-int ops (setup only).
  BigUInt r = BigUInt{1} << (64 * k_);
  BigUInt rmod = r % modulus;
  rr_ = to_words((rmod * rmod) % modulus);
}

std::vector<u64> Montgomery::to_words(const BigUInt& x) const {
  std::vector<u64> out(k_, 0);
  std::copy(x.w_.begin(), x.w_.end(), out.begin());
  return out;
}

std::vector<u64> Montgomery::mul(const std::vector<u64>& a,
                                 const std::vector<u64>& b) const {
  // CIOS: interleaved multiply and Montgomery reduction.
  std::vector<u64> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<u64>(cur);
    t[k_ + 1] = static_cast<u64>(cur >> 64);

    // m chosen so (t + m*n) ≡ 0 mod 2^64; add m*n and shift one word.
    const u64 m = t[0] * n0inv_;
    u128 c0 = static_cast<u128>(m) * n_[0] + t[0];
    carry = static_cast<u64>(c0 >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      const u128 cur2 = static_cast<u128>(m) * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur2);
      carry = static_cast<u64>(cur2 >> 64);
    }
    cur = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<u64>(cur);
    t[k_] = t[k_ + 1] + static_cast<u64>(cur >> 64);
    t[k_ + 1] = 0;
  }
  // Result is t[0..k]; subtract n once if t >= n.
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (t[i] != n_[i]) {
        ge = t[i] > n_[i];
        break;
      }
    }
  }
  std::vector<u64> out(k_, 0);
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 lhs = static_cast<u128>(t[i]);
      const u128 rhs = static_cast<u128>(n_[i]) + borrow;
      if (lhs >= rhs) {
        out[i] = static_cast<u64>(lhs - rhs);
        borrow = 0;
      } else {
        out[i] = static_cast<u64>((static_cast<u128>(1) << 64) + lhs - rhs);
        borrow = 1;
      }
    }
  } else {
    std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_),
              out.begin());
  }
  return out;
}

BigUInt Montgomery::exp(const BigUInt& base, const BigUInt& exponent) const {
  const BigUInt reduced = base % n_big_;
  if (exponent.is_zero()) {
    return n_big_.is_one() ? BigUInt{} : BigUInt{1};
  }
  const std::vector<u64> base_m = mul(to_words(reduced), rr_);
  std::vector<u64> one(k_, 0);
  one[0] = 1;
  // acc starts at R mod n (the Montgomery representation of 1).
  std::vector<u64> acc = mul(one, rr_);
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    acc = mul(acc, acc);
    if (exponent.bit(i)) acc = mul(acc, base_m);
  }
  acc = mul(acc, one);  // convert out of Montgomery form
  BigUInt out;
  out.w_ = std::move(acc);
  out.normalize();
  return out;
}

BigUInt BigUInt::mod_exp(const BigUInt& base, const BigUInt& exp,
                         const BigUInt& modulus) {
  if (modulus.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (modulus.is_one()) return {};
  if (modulus.is_odd()) return Montgomery(modulus).exp(base, exp);
  // Even modulus: plain square-and-multiply with division-based
  // reduction. Rare (no RSA/Miller-Rabin use), correctness over speed.
  BigUInt result{1};
  BigUInt b = base % modulus;
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = (result * result) % modulus;
    if (exp.bit(i)) result = (result * b) % modulus;
  }
  return result;
}

// ---------------------------------------------------------------------------
// gcd / modular inverse
// ---------------------------------------------------------------------------

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

namespace {
// Minimal signed value for the extended-Euclid coefficient track.
struct Signed {
  BigUInt mag;
  bool neg = false;
};

Signed sub_signed(const Signed& a, const Signed& b) {
  // a - b
  if (a.neg == b.neg) {
    if (a.mag >= b.mag) return {a.mag - b.mag, a.neg};
    return {b.mag - a.mag, !a.neg};
  }
  return {a.mag + b.mag, a.neg};
}

Signed mul_signed(const Signed& a, const BigUInt& k) {
  return {a.mag * k, a.neg};
}
}  // namespace

BigUInt BigUInt::mod_inverse(const BigUInt& a, const BigUInt& m) {
  if (m.is_zero()) throw std::domain_error("mod_inverse: zero modulus");
  BigUInt old_r = a % m;
  BigUInt r = m;
  Signed old_s{BigUInt{1}, false};
  Signed s{BigUInt{}, false};
  while (!r.is_zero()) {
    auto [q, rem] = divmod(old_r, r);
    old_r = std::move(r);
    r = std::move(rem);
    Signed new_s = sub_signed(old_s, mul_signed(s, q));
    old_s = std::move(s);
    s = std::move(new_s);
  }
  if (!old_r.is_one()) {
    throw std::domain_error("mod_inverse: arguments not coprime");
  }
  if (old_s.neg) return m - (old_s.mag % m);
  return old_s.mag % m;
}

// ---------------------------------------------------------------------------
// Randomness and primality
// ---------------------------------------------------------------------------

BigUInt BigUInt::random_bits(Rng& rng, std::size_t bits) {
  if (bits == 0) return {};
  BigUInt out;
  out.w_.assign((bits + 63) / 64, 0);
  for (auto& w : out.w_) w = rng.next_u64();
  const std::size_t top = (bits - 1) % 64;
  out.w_.back() &= (top == 63) ? ~u64{0} : ((u64{1} << (top + 1)) - 1);
  out.set_bit(bits - 1);
  out.normalize();
  return out;
}

BigUInt BigUInt::random_below(Rng& rng, const BigUInt& bound) {
  if (bound.is_zero()) throw std::domain_error("random_below: zero bound");
  const std::size_t bits = bound.bit_length();
  // Rejection sampling over [0, 2^bits).
  for (;;) {
    BigUInt out;
    out.w_.assign((bits + 63) / 64, 0);
    for (auto& w : out.w_) w = rng.next_u64();
    const std::size_t top = (bits - 1) % 64;
    out.w_.back() &= (top == 63) ? ~u64{0} : ((u64{1} << (top + 1)) - 1);
    out.normalize();
    if (out < bound) return out;
  }
}

namespace {
// Odd primes below 2048 for trial division, generated on first use.
const std::vector<u64>& small_primes() {
  static const std::vector<u64> primes = [] {
    std::vector<u64> out;
    std::array<bool, 2048> composite{};
    for (u64 p = 3; p < composite.size(); p += 2) {
      if (!composite[p]) {
        out.push_back(p);
        for (u64 q = p * p; q < composite.size(); q += 2 * p) {
          composite[q] = true;
        }
      }
    }
    return out;
  }();
  return primes;
}
}  // namespace

bool is_probable_prime(const BigUInt& n, Rng& rng, int rounds) {
  if (n < BigUInt{2}) return false;
  if (n == BigUInt{2} || n == BigUInt{3}) return true;
  if (!n.is_odd()) return false;
  for (u64 p : small_primes()) {
    if (n == BigUInt{p}) return true;
    if (n.mod_u64(p) == 0) return false;
  }
  // n - 1 = d * 2^s with d odd
  const BigUInt n_minus_1 = n - BigUInt{1};
  BigUInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  const Montgomery mont(n);
  const BigUInt two{2};
  const BigUInt n_minus_3 = n - BigUInt{3};
  for (int round = 0; round < rounds; ++round) {
    const BigUInt a = BigUInt::random_below(rng, n_minus_3) + two;  // [2, n-2]
    BigUInt x = mont.exp(a, d);
    if (x.is_one() || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < s; ++i) {
      x = mont.exp(x, two);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigUInt random_prime(Rng& rng, std::size_t bits, std::uint64_t coprime_e) {
  if (bits < 8) throw std::domain_error("random_prime: need >= 8 bits");
  for (;;) {
    BigUInt candidate = BigUInt::random_bits(rng, bits);
    candidate.set_bit(0);         // odd
    candidate.set_bit(bits - 2);  // top two bits set => product has 2*bits
    if (coprime_e != 0) {
      // gcd(p-1, e) must be 1. p is odd so p-1 is even; for odd e it is
      // enough to check (p-1) mod each prime factor of e. e is small
      // (3 or 65537 in practice), so check e directly when prime-like.
      const BigUInt p_minus_1 = candidate - BigUInt{1};
      if (BigUInt::gcd(p_minus_1, BigUInt{coprime_e}) != BigUInt{1}) continue;
    }
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace nn::crypto
