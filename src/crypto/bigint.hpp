// Arbitrary-precision unsigned integers sized for RSA (512–2048 bits).
//
// Implemented from scratch for this reproduction because the neutralizer's
// key-setup path (paper §3.2) is built on short-RSA public-key operations
// and no external crypto library is assumed. The hot path — modular
// exponentiation — uses Montgomery multiplication (CIOS); everything else
// favors clarity over speed.
//
// NOTE on side channels: exponentiation is left-to-right square-and-
// multiply and NOT constant-time. The paper's threat model (§2) excludes
// the neutralizer's own ISP as an adversary and remote timing is out of
// scope for this reproduction; a deployment would swap in a fixed-window
// constant-time ladder.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace nn::crypto {

class BigUInt;

/// Result pair of BigUInt::divmod.
struct BigUIntDivMod;

class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(std::uint64_t v);

  /// Big-endian byte import/export (the wire format of RSA fields).
  static BigUInt from_bytes_be(std::span<const std::uint8_t> bytes);
  /// Exports big-endian, left-padded with zeros to at least `min_len`.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes_be(
      std::size_t min_len = 0) const;

  /// In-place variants of the byte conversions: same results, but the
  /// destination's existing capacity is reused, so a warm caller (the
  /// neutralizer's key-setup path) performs no allocation.
  void assign_bytes_be(std::span<const std::uint8_t> bytes);
  void write_bytes_be(std::size_t min_len,
                      std::vector<std::uint8_t>& out) const;

  static BigUInt from_hex(std::string_view hex);
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const noexcept { return w_.empty(); }
  [[nodiscard]] bool is_odd() const noexcept {
    return !w_.empty() && (w_[0] & 1);
  }
  [[nodiscard]] bool is_one() const noexcept {
    return w_.size() == 1 && w_[0] == 1;
  }
  /// Number of significant bits; 0 for zero.
  [[nodiscard]] std::size_t bit_length() const noexcept;
  [[nodiscard]] bool bit(std::size_t i) const noexcept;
  void set_bit(std::size_t i);
  [[nodiscard]] std::size_t word_count() const noexcept { return w_.size(); }
  /// Low 64 bits (value mod 2^64).
  [[nodiscard]] std::uint64_t low_u64() const noexcept {
    return w_.empty() ? 0 : w_[0];
  }

  friend bool operator==(const BigUInt& a, const BigUInt& b) noexcept {
    return a.w_ == b.w_;
  }
  friend std::strong_ordering operator<=>(const BigUInt& a,
                                          const BigUInt& b) noexcept;

  friend BigUInt operator+(const BigUInt& a, const BigUInt& b);
  /// Throws std::underflow_error if b > a (values are unsigned).
  friend BigUInt operator-(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator<<(const BigUInt& a, std::size_t bits);
  friend BigUInt operator>>(const BigUInt& a, std::size_t bits);

  BigUInt& operator+=(const BigUInt& b) { return *this = *this + b; }
  BigUInt& operator-=(const BigUInt& b) { return *this = *this - b; }
  BigUInt& operator*=(const BigUInt& b) { return *this = *this * b; }

  /// Throws std::domain_error on division by zero.
  static BigUIntDivMod divmod(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator/(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator%(const BigUInt& a, const BigUInt& b);

  /// Division/remainder by a machine word (used by RSA keygen: solving
  /// e·d ≡ 1 with small e, and trial division by small primes).
  [[nodiscard]] std::uint64_t mod_u64(std::uint64_t m) const;
  [[nodiscard]] BigUInt div_u64(std::uint64_t d) const;

  /// (base ^ exp) mod modulus. Montgomery CIOS when the modulus is odd
  /// (all RSA/Miller–Rabin uses); plain square-and-multiply otherwise.
  static BigUInt mod_exp(const BigUInt& base, const BigUInt& exp,
                         const BigUInt& modulus);

  /// Modular inverse via extended Euclid. Throws std::domain_error when
  /// gcd(a, m) != 1.
  static BigUInt mod_inverse(const BigUInt& a, const BigUInt& m);

  static BigUInt gcd(BigUInt a, BigUInt b);

  /// Uniform in [0, bound).
  static BigUInt random_below(Rng& rng, const BigUInt& bound);
  /// Exactly `bits` bits (top bit set) of randomness.
  static BigUInt random_bits(Rng& rng, std::size_t bits);

 private:
  // Little-endian 64-bit words; no trailing zero words; empty == 0.
  std::vector<std::uint64_t> w_;

  void normalize() noexcept;
  friend class Montgomery;
  friend class BigIntScratch;
};

struct BigUIntDivMod {
  BigUInt quotient;
  BigUInt remainder;
};

inline BigUInt operator/(const BigUInt& a, const BigUInt& b) {
  return BigUInt::divmod(a, b).quotient;
}
inline BigUInt operator%(const BigUInt& a, const BigUInt& b) {
  return BigUInt::divmod(a, b).remainder;
}

/// Miller–Rabin probabilistic primality test. `rounds` random witnesses
/// (error probability ≤ 4^-rounds) after trial division by small primes.
[[nodiscard]] bool is_probable_prime(const BigUInt& n, Rng& rng,
                                     int rounds = 32);

/// Random prime with exactly `bits` bits (top two bits set, so products
/// of two such primes have exactly 2·bits bits). If `coprime_e` is
/// nonzero, guarantees gcd(p − 1, coprime_e) == 1 (an RSA keygen
/// requirement).
[[nodiscard]] BigUInt random_prime(Rng& rng, std::size_t bits,
                                   std::uint64_t coprime_e = 0);

/// Fixed-capacity workspace for small-exponent modular exponentiation
/// (the neutralizer's e = 3 RSA public operation). All temporaries —
/// the product, the normalized modulus, and the Knuth-D dividend — live
/// in member arrays sized for 2048-bit operands, so a warm caller's
/// exponentiations touch the heap never. The remainder is computed by
/// a quotient-free Algorithm D pass over a pre-shifted modulus, using
/// the identity (a << s) mod (n << s) == (a mod n) << s.
class BigIntScratch {
 public:
  /// 2048-bit operand ceiling — covers every key size this repo mints
  /// (512-bit one-time keys, 1024-bit e2e/onion keys).
  static constexpr std::size_t kMaxWords = 32;

  /// out = base^e mod n. Returns false — leaving `out` untouched — when
  /// the operands don't fit this workspace (n under 2 or over kMaxWords
  /// words, or base >= n); the caller falls back to the general path,
  /// which also reproduces rsa_public_op's domain errors.
  bool pow_u64_mod(const BigUInt& base, std::uint64_t e, const BigUInt& n,
                   BigUInt& out);

 private:
  /// dest[0..k_) = (a[0..alen) * b[0..blen)) mod n, via prod_/u_.
  void mulmod(const std::uint64_t* a, std::size_t alen, const std::uint64_t* b,
              std::size_t blen, std::uint64_t* dest);

  std::size_t k_ = 0;  // modulus word count
  int shift_ = 0;      // normalization shift (clz of the top word)
  std::array<std::uint64_t, kMaxWords> vn_{};          // modulus << shift_
  std::array<std::uint64_t, 2 * kMaxWords> prod_{};    // raw product
  std::array<std::uint64_t, 2 * kMaxWords + 2> u_{};   // shifted dividend
  std::array<std::uint64_t, kMaxWords> acc_{};         // running result
  std::array<std::uint64_t, kMaxWords> base_{};        // running base power
};

/// Montgomery context for repeated multiplications mod one odd modulus
/// (exposed because Miller–Rabin and RSA-CRT reuse it across many
/// exponentiations).
class Montgomery {
 public:
  /// Throws std::domain_error if the modulus is even or zero.
  explicit Montgomery(const BigUInt& modulus);

  [[nodiscard]] BigUInt exp(const BigUInt& base, const BigUInt& exponent) const;
  [[nodiscard]] const BigUInt& modulus() const noexcept { return n_big_; }

 private:
  BigUInt n_big_;
  std::vector<std::uint64_t> n_;   // modulus words (size k_)
  std::vector<std::uint64_t> rr_;  // R^2 mod n
  std::uint64_t n0inv_ = 0;        // -n^{-1} mod 2^64
  std::size_t k_ = 0;

  [[nodiscard]] std::vector<std::uint64_t> mul(
      const std::vector<std::uint64_t>& a,
      const std::vector<std::uint64_t>& b) const;
  [[nodiscard]] std::vector<std::uint64_t> to_words(const BigUInt& x) const;
};

}  // namespace nn::crypto
