// AES modes used by the neutralizer datapath:
//
//  * AES-CMAC (RFC 4493) — the paper's "keyed hash". The neutralizer's
//    per-source key is Ks = CMAC(KM, nonce ‖ srcIP ‖ tag) (paper §3.2:
//    "Ks = hash(KM, nonce, srcIP)"), and CMAC also serves as the MAC of
//    the e2e encryption layer.
//  * AES-CTR — stream encryption of the inner (hidden) address and of
//    e2e payloads.
//  * AES-CBC — block encryption for whole-payload workloads; decrypt is
//    data-parallel and rides the pipelined backend entry point.
//
// Every mode binds the runtime-dispatched backend at construction (see
// aes_backend.hpp) and offers whole-batch entry points where the
// algorithm allows independent blocks in flight.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.hpp"

namespace nn::crypto {

/// AES-CMAC per RFC 4493. 128-bit tag.
class Cmac {
 public:
  explicit Cmac(const AesKey& key) noexcept : Cmac(key, active_backend()) {}
  Cmac(const AesKey& key, const AesBackendOps& ops) noexcept;

  /// One-shot MAC over `msg`.
  [[nodiscard]] AesBlock mac(std::span<const std::uint8_t> msg) const noexcept;

  /// Truncated tag (first `len` bytes of the full MAC), len <= 16.
  [[nodiscard]] std::vector<std::uint8_t> mac_truncated(
      std::span<const std::uint8_t> msg, std::size_t len) const;

  /// Batch MAC over `n` independent messages of exactly one complete
  /// block each (the shape of every key-derivation input): tag_i =
  /// E(msg_i ⊕ K1). All n blocks go through the cipher in one batched
  /// call, so an accelerated backend pipelines them. `msgs` and `tags`
  /// may be the same array.
  void mac_single_blocks(const AesBlock* msgs, AesBlock* tags,
                         std::size_t n) const noexcept;

  /// Batch MAC over `n` independent equal-length messages laid out
  /// contiguously (`msgs + i * msg_len`). The CMAC chain of one message
  /// is serial, so parallelism comes from running the n chains in
  /// lockstep: one batched cipher call per message block index.
  /// Bit-identical to calling mac() per message.
  void mac_batch(const std::uint8_t* msgs, std::size_t msg_len, std::size_t n,
                 AesBlock* tags) const noexcept;

  [[nodiscard]] const Aes128& cipher() const noexcept { return cipher_; }

 private:
  Aes128 cipher_;
  AesBlock k1_{};
  AesBlock k2_{};
};

/// AES-CTR keystream generator / encryptor. The counter block is
/// iv (12 bytes) ‖ 32-bit big-endian block counter starting at 0.
class Ctr {
 public:
  explicit Ctr(const AesKey& key) noexcept : cipher_(key) {}
  Ctr(const AesKey& key, const AesBackendOps& ops) noexcept
      : cipher_(key, ops) {}

  /// XORs `data` in place with the keystream for (iv, starting block 0).
  /// Encrypt and decrypt are the same operation.
  void crypt(std::span<const std::uint8_t, 12> iv,
             std::span<std::uint8_t> data) const noexcept {
    cipher_.ctr_xor(iv, 0, data);
  }

  /// Convenience: returns the transformed copy.
  [[nodiscard]] std::vector<std::uint8_t> crypt_copy(
      std::span<const std::uint8_t, 12> iv,
      std::span<const std::uint8_t> data) const;

 private:
  Aes128 cipher_;
};

/// AES-CBC over whole blocks (no padding: callers own framing, and the
/// paper's payloads are block-aligned). Encrypt is inherently serial;
/// decrypt is pipelined through the backend batch entry point.
class Cbc {
 public:
  explicit Cbc(const AesKey& key) noexcept : cipher_(key) {}
  Cbc(const AesKey& key, const AesBackendOps& ops) noexcept
      : cipher_(key, ops) {}

  /// In-place; data.size() must be a multiple of the block size.
  void encrypt(const AesBlock& iv, std::span<std::uint8_t> data) const;
  void decrypt(const AesBlock& iv, std::span<std::uint8_t> data) const;

 private:
  Aes128 cipher_;
};

/// Derives the paper's per-source key: Ks = CMAC(KM, nonce ‖ srcIP ‖ "NNKS").
/// Kept here (rather than in nn_core) so host and neutralizer share one
/// definition and tests can cross-check both sides.
[[nodiscard]] AesKey derive_source_key(const AesKey& master_key,
                                       std::uint64_t nonce,
                                       std::uint32_t src_ip) noexcept;

/// Same derivation against a pre-keyed CMAC — the neutralizer datapath
/// caches one Cmac per master-key epoch and saves the AES key schedule
/// on every packet.
[[nodiscard]] AesKey derive_source_key(const Cmac& keyed_master,
                                       std::uint64_t nonce,
                                       std::uint32_t src_ip) noexcept;

/// Derives a *leased* key (paper §3.3 reverse-direction setup): bound to
/// the nonce alone, Ks = CMAC(KM, nonce ‖ 0 ‖ "NNKL"), so the neutralizer
/// can recompute it from any packet carrying the nonce regardless of
/// which outside host is on the other end.
[[nodiscard]] AesKey derive_lease_key(const AesKey& master_key,
                                      std::uint64_t nonce) noexcept;
[[nodiscard]] AesKey derive_lease_key(const Cmac& keyed_master,
                                      std::uint64_t nonce) noexcept;

/// One pending key derivation of either flavor (lease keys ignore
/// `src_ip`); the batched datapath collects these per keyed master.
struct KeyDeriveRequest {
  std::uint64_t nonce = 0;
  std::uint32_t src_ip = 0;
  bool lease = false;
};

/// Batched key derivation: out[i] = derive_{source,lease}_key(reqs[i]),
/// bit-identical to the scalar helpers, with all requests pipelined
/// through one batched CMAC per chunk.
void derive_keys_batch(const Cmac& keyed_master,
                       std::span<const KeyDeriveRequest> reqs,
                       AesKey* out) noexcept;

/// Encrypts/decrypts a 4-byte IPv4 address with AES-CTR keyed by Ks.
/// The IV binds the nonce and direction so forward and return packets
/// use distinct keystreams.
[[nodiscard]] std::uint32_t crypt_address(const AesKey& ks,
                                          std::uint64_t nonce,
                                          bool return_direction,
                                          std::uint32_t addr) noexcept;

/// One pending address encryption/decryption; the batched datapath
/// collects one per data packet. Unlike KeyDeriveRequest these do not
/// share a key — every packet's address is crypted under its own
/// session key, which is why the batch rides the multi-key ECB backend
/// entry point (AesBackendOps::encrypt_blocks_multi).
struct AddressCryptRequest {
  AesKey ks{};
  std::uint64_t nonce = 0;
  bool return_direction = false;
  std::uint32_t addr = 0;
};

/// Batched address crypt: out[i] = crypt_address(reqs[i]), bit-identical
/// to the scalar helper, with the per-request key schedules expanded up
/// front and all first counter blocks pipelined through one multi-key
/// ECB call per chunk.
void crypt_address_batch(std::span<const AddressCryptRequest> reqs,
                         std::uint32_t* out) noexcept;

}  // namespace nn::crypto
