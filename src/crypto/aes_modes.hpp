// AES modes used by the neutralizer datapath:
//
//  * AES-CMAC (RFC 4493) — the paper's "keyed hash". The neutralizer's
//    per-source key is Ks = CMAC(KM, nonce ‖ srcIP ‖ tag) (paper §3.2:
//    "Ks = hash(KM, nonce, srcIP)"), and CMAC also serves as the MAC of
//    the e2e encryption layer.
//  * AES-CTR — stream encryption of the inner (hidden) address and of
//    e2e payloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.hpp"

namespace nn::crypto {

/// AES-CMAC per RFC 4493. 128-bit tag.
class Cmac {
 public:
  explicit Cmac(const AesKey& key) noexcept;

  /// One-shot MAC over `msg`.
  [[nodiscard]] AesBlock mac(std::span<const std::uint8_t> msg) const noexcept;

  /// Truncated tag (first `len` bytes of the full MAC), len <= 16.
  [[nodiscard]] std::vector<std::uint8_t> mac_truncated(
      std::span<const std::uint8_t> msg, std::size_t len) const;

 private:
  Aes128 cipher_;
  AesBlock k1_{};
  AesBlock k2_{};
};

/// AES-CTR keystream generator / encryptor. The counter block is
/// iv (12 bytes) ‖ 32-bit big-endian block counter starting at 0.
class Ctr {
 public:
  explicit Ctr(const AesKey& key) noexcept : cipher_(key) {}

  /// XORs `data` in place with the keystream for (iv, starting block 0).
  /// Encrypt and decrypt are the same operation.
  void crypt(std::span<const std::uint8_t, 12> iv,
             std::span<std::uint8_t> data) const noexcept;

  /// Convenience: returns the transformed copy.
  [[nodiscard]] std::vector<std::uint8_t> crypt_copy(
      std::span<const std::uint8_t, 12> iv,
      std::span<const std::uint8_t> data) const;

 private:
  Aes128 cipher_;
};

/// Derives the paper's per-source key: Ks = CMAC(KM, nonce ‖ srcIP ‖ "NNKS").
/// Kept here (rather than in nn_core) so host and neutralizer share one
/// definition and tests can cross-check both sides.
[[nodiscard]] AesKey derive_source_key(const AesKey& master_key,
                                       std::uint64_t nonce,
                                       std::uint32_t src_ip) noexcept;

/// Same derivation against a pre-keyed CMAC — the neutralizer datapath
/// caches one Cmac per master-key epoch and saves the AES key schedule
/// on every packet.
[[nodiscard]] AesKey derive_source_key(const Cmac& keyed_master,
                                       std::uint64_t nonce,
                                       std::uint32_t src_ip) noexcept;

/// Derives a *leased* key (paper §3.3 reverse-direction setup): bound to
/// the nonce alone, Ks = CMAC(KM, nonce ‖ 0 ‖ "NNKL"), so the neutralizer
/// can recompute it from any packet carrying the nonce regardless of
/// which outside host is on the other end.
[[nodiscard]] AesKey derive_lease_key(const AesKey& master_key,
                                      std::uint64_t nonce) noexcept;
[[nodiscard]] AesKey derive_lease_key(const Cmac& keyed_master,
                                      std::uint64_t nonce) noexcept;

/// Encrypts/decrypts a 4-byte IPv4 address with AES-CTR keyed by Ks.
/// The IV binds the nonce and direction so forward and return packets
/// use distinct keystreams.
[[nodiscard]] std::uint32_t crypt_address(const AesKey& ks,
                                          std::uint64_t nonce,
                                          bool return_direction,
                                          std::uint32_t addr) noexcept;

}  // namespace nn::crypto
