#include "crypto/rsa.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace nn::crypto {

std::vector<std::uint8_t> RsaPublicKey::serialize() const {
  ByteWriter w;
  const auto mod = n.to_bytes_be();
  w.u16(static_cast<std::uint16_t>(mod.size()));
  w.raw(mod);
  w.u32(static_cast<std::uint32_t>(e.low_u64()));
  return w.take();
}

RsaPublicKey RsaPublicKey::parse(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint16_t mod_len = r.u16();
  const auto mod = r.take(mod_len);
  const std::uint32_t exp = r.u32();
  RsaPublicKey key;
  key.n = BigUInt::from_bytes_be(mod);
  key.e = BigUInt{exp};
  if (key.n.is_zero() || key.e < BigUInt{3}) {
    throw ParseError("RsaPublicKey: degenerate key");
  }
  return key;
}

RsaPrivateKey rsa_generate(Rng& rng, std::size_t bits, std::uint64_t e) {
  if (bits < 128 || bits % 2 != 0) {
    throw std::invalid_argument("rsa_generate: bits must be even and >= 128");
  }
  if (e < 3 || e % 2 == 0) {
    throw std::invalid_argument("rsa_generate: e must be odd and >= 3");
  }
  const std::size_t half = bits / 2;
  RsaPrivateKey key;
  key.p = random_prime(rng, half, e);
  do {
    key.q = random_prime(rng, half, e);
  } while (key.q == key.p);
  if (key.p < key.q) std::swap(key.p, key.q);  // p > q for CRT recombination
  key.pub.n = key.p * key.q;
  key.pub.e = BigUInt{e};

  const BigUInt p1 = key.p - BigUInt{1};
  const BigUInt q1 = key.q - BigUInt{1};
  const BigUInt phi = p1 * q1;
  key.d = BigUInt::mod_inverse(BigUInt{e}, phi);
  key.dp = key.d % p1;
  key.dq = key.d % q1;
  // p is prime: q^{-1} mod p = q^{p-2} mod p (Fermat), avoiding a
  // second extended-Euclid path.
  key.qinv = BigUInt::mod_exp(key.q % key.p, key.p - BigUInt{2}, key.p);
  return key;
}

BigUInt rsa_public_op(const RsaPublicKey& key, const BigUInt& m) {
  if (m >= key.n) throw std::invalid_argument("rsa_public_op: m >= n");
  // Small exponents (e = 3 is the paper's choice) go through plain
  // square-and-multiply: for e = 3 this is literally two modular
  // multiplications, cheaper than setting up Montgomery state for a
  // one-time key.
  if (key.e < BigUInt{1 << 20}) {
    BigUInt result{1};
    BigUInt base = m;
    std::uint64_t e = key.e.low_u64();
    while (e > 0) {
      if (e & 1) result = (result * base) % key.n;
      e >>= 1;
      if (e) base = (base * base) % key.n;
    }
    return result;
  }
  return BigUInt::mod_exp(m, key.e, key.n);
}

namespace {

BigUInt crt_combine(const RsaPrivateKey& key, const BigUInt& m1,
                    const BigUInt& m2) {
  // h = qinv * (m1 - m2) mod p ; m = m2 + h*q
  BigUInt diff = m1 >= m2 ? m1 - m2 : key.p - ((m2 - m1) % key.p);
  const BigUInt h = (key.qinv * diff) % key.p;
  return m2 + h * key.q;
}

void pkcs1_pad_into(Rng& rng, std::span<const std::uint8_t> msg,
                    std::size_t k, std::vector<std::uint8_t>& block) {
  if (msg.size() + 11 > k) {
    throw std::invalid_argument("rsa_encrypt: message too long for modulus");
  }
  block.assign(k, 0);
  block[0] = 0x00;
  block[1] = 0x02;
  const std::size_t pad_len = k - 3 - msg.size();
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b;
    do {
      b = static_cast<std::uint8_t>(rng.next_u64());
    } while (b == 0);
    block[2 + i] = b;
  }
  block[2 + pad_len] = 0x00;
  std::copy(msg.begin(), msg.end(), block.begin() + 3 +
                                        static_cast<std::ptrdiff_t>(pad_len));
}

std::optional<std::vector<std::uint8_t>> pkcs1_unpad(
    std::span<const std::uint8_t> block) {
  if (block.size() < 11 || block[0] != 0x00 || block[1] != 0x02) {
    return std::nullopt;
  }
  std::size_t sep = 0;
  for (std::size_t i = 2; i < block.size(); ++i) {
    if (block[i] == 0x00) {
      sep = i;
      break;
    }
  }
  if (sep < 10) return std::nullopt;  // require >= 8 pad bytes
  return std::vector<std::uint8_t>(block.begin() +
                                       static_cast<std::ptrdiff_t>(sep + 1),
                                   block.end());
}

}  // namespace

BigUInt rsa_private_op(const RsaPrivateKey& key, const BigUInt& c) {
  if (c >= key.pub.n) throw std::invalid_argument("rsa_private_op: c >= n");
  const BigUInt m1 = BigUInt::mod_exp(c % key.p, key.dp, key.p);
  const BigUInt m2 = BigUInt::mod_exp(c % key.q, key.dq, key.q);
  return crt_combine(key, m1, m2);
}

std::vector<std::uint8_t> rsa_encrypt(Rng& rng, const RsaPublicKey& key,
                                      std::span<const std::uint8_t> msg) {
  RsaScratch scratch;
  std::vector<std::uint8_t> out;
  rsa_encrypt_into(rng, key, msg, scratch, out);
  return out;
}

void rsa_encrypt_into(Rng& rng, const RsaPublicKey& key,
                      std::span<const std::uint8_t> msg, RsaScratch& scratch,
                      std::vector<std::uint8_t>& out) {
  const std::size_t k = key.modulus_bytes();
  pkcs1_pad_into(rng, msg, k, scratch.block);
  scratch.m.assign_bytes_be(scratch.block);
  // Small exponents (the neutralizer's e = 3) run entirely inside the
  // fixed scratch workspace; anything it refuses — oversized modulus,
  // m >= n, big exponent — falls back to the general path, which is
  // the same math and raises the same errors rsa_encrypt always has.
  const bool scratch_ok =
      key.e < BigUInt{1 << 20} &&
      scratch.math.pow_u64_mod(scratch.m, key.e.low_u64(), key.n, scratch.c);
  if (!scratch_ok) scratch.c = rsa_public_op(key, scratch.m);
  scratch.c.write_bytes_be(k, out);
}

std::optional<std::vector<std::uint8_t>> rsa_decrypt(
    const RsaPrivateKey& key, std::span<const std::uint8_t> ciphertext) {
  const std::size_t k = key.pub.modulus_bytes();
  if (ciphertext.size() != k) return std::nullopt;
  const BigUInt c = BigUInt::from_bytes_be(ciphertext);
  if (c >= key.pub.n) return std::nullopt;
  const auto block = rsa_private_op(key, c).to_bytes_be(k);
  return pkcs1_unpad(block);
}

RsaDecryptor::RsaDecryptor(const RsaPrivateKey& key)
    : key_(key), mont_p_(key.p), mont_q_(key.q) {}

BigUInt RsaDecryptor::private_op(const BigUInt& c) const {
  if (c >= key_.pub.n) throw std::invalid_argument("RsaDecryptor: c >= n");
  const BigUInt m1 = mont_p_.exp(c % key_.p, key_.dp);
  const BigUInt m2 = mont_q_.exp(c % key_.q, key_.dq);
  return crt_combine(key_, m1, m2);
}

std::optional<std::vector<std::uint8_t>> RsaDecryptor::decrypt(
    std::span<const std::uint8_t> ciphertext) const {
  const std::size_t k = key_.pub.modulus_bytes();
  if (ciphertext.size() != k) return std::nullopt;
  const BigUInt c = BigUInt::from_bytes_be(ciphertext);
  if (c >= key_.pub.n) return std::nullopt;
  const auto block = private_op(c).to_bytes_be(k);
  return pkcs1_unpad(block);
}

}  // namespace nn::crypto
