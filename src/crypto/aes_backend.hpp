// Runtime-dispatched AES-128 backends.
//
// The neutralizer spends nearly all of its per-packet budget in
// symmetric crypto (CMAC tag/key derivation + address decryption), so
// the raw block transform is pluggable: a portable table implementation
// (aes.cpp) always exists, and on x86-64 an AES-NI implementation
// (aes_backend_aesni.cpp, compiled with -maes -mpclmul) is selected at
// startup when cpuid reports support. Selection happens exactly once,
// on first use; the `NN_AES_BACKEND` environment variable overrides it
// (`portable`, `aesni`, or `auto`). Requesting an unavailable backend
// falls back to portable rather than crashing — CI runs the forced-
// portable configuration on AES-NI-capable runners this way.
//
// Every backend implements the same whole-batch entry points (N blocks
// per call) so the accelerated paths can keep 4-8 blocks in flight to
// hide AESENC/AESDEC latency; the portable backend simply loops. A
// schedule produced by one backend's `expand_key` must only be consumed
// by that same backend's block functions: the decryption half is
// backend-specific (AES-NI stores AESIMC-transformed equivalent-inverse
// round keys, the portable code walks the encryption keys backwards).
//
// Thread-safety audit (the runtime's workers depend on this):
//   * The ops tables are immutable statics and every entry point is a
//     pure function of its arguments — concurrent calls from any number
//     of threads are safe.
//   * `active_backend()` resolves through a magic static (thread-safe
//     initialization); after first use it is a read-only lookup.
//   * The ONE mutable global is ScopedBackendOverride's slot, which is
//     deliberately unsynchronized: overrides are a single-threaded
//     test/bench hook and must not be created or destroyed while other
//     threads construct cipher objects. runtime::ShardRuntime
//     constructs every worker's Neutralizer (and thus binds backends)
//     on the control thread before any worker thread starts, so worker
//     threads never race this slot.
//   * Cipher objects (Aes128/Cmac/Ctr/Cbc) carry their own expanded
//     schedule and are safe to *use* concurrently from the one thread
//     that owns them; nothing here shares per-key state across threads.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace nn::crypto {

inline constexpr std::size_t kAesScheduleBytes = 16 * 11;  // AES-128

/// Expanded round keys, encryption and decryption halves, 16-byte
/// aligned so SIMD backends can use aligned loads. Round key r of the
/// encryption schedule lives at bytes [16r, 16r+16) in block byte
/// order; the decryption half's layout is backend-defined.
struct AesSchedule {
  alignas(16) std::array<std::uint8_t, kAesScheduleBytes> enc{};
  alignas(16) std::array<std::uint8_t, kAesScheduleBytes> dec{};
};

/// One AES implementation. All function pointers are non-null and
/// operate on whole batches of 16-byte blocks; `in`/`out` may alias
/// only when exactly equal (in-place). No alignment is required of the
/// data pointers.
struct AesBackendOps {
  /// Stable identifier ("portable", "aesni") used by NN_AES_BACKEND,
  /// backend_by_name(), and bench suffixes.
  std::string_view name;

  /// Expands a 16-byte key into both schedule halves. The result must
  /// only be consumed by this backend's block functions.
  void (*expand_key)(const std::uint8_t* key, AesSchedule& sched);

  /// ECB over `n` independent blocks (the batch CMAC/CTR workhorse).
  void (*encrypt_blocks)(const AesSchedule& sched, const std::uint8_t* in,
                         std::uint8_t* out, std::size_t n);
  void (*decrypt_blocks)(const AesSchedule& sched, const std::uint8_t* in,
                         std::uint8_t* out, std::size_t n);

  /// ECB over `n` independent blocks, each under its *own* schedule:
  /// out[i] = E(scheds[i], in[i]). This is the multi-session shape of
  /// the datapath's per-packet address decrypt — every packet is keyed
  /// by its own session key, so a single-schedule batch cannot pipeline
  /// it, while this entry point keeps blocks from different keys in
  /// flight together. Every schedule must come from this backend's
  /// `expand_key`.
  void (*encrypt_blocks_multi)(const AesSchedule* scheds,
                               const std::uint8_t* in, std::uint8_t* out,
                               std::size_t n);

  /// CBC decrypt of `n` chained blocks. Unlike CBC encrypt this is
  /// data-parallel (block i needs only ciphertext block i-1), so
  /// accelerated backends pipeline it.
  void (*cbc_decrypt)(const AesSchedule& sched, const std::uint8_t iv[16],
                      const std::uint8_t* in, std::uint8_t* out,
                      std::size_t n);

  /// CTR keystream XOR over `data`: counter block = iv(12) ‖ be32
  /// counter starting at `counter0`, incremented per 16-byte block.
  void (*ctr_xor)(const AesSchedule& sched, const std::uint8_t iv[12],
                  std::uint32_t counter0, std::uint8_t* data,
                  std::size_t len);
};

/// The portable (always-available) backend.
[[nodiscard]] const AesBackendOps& portable_backend() noexcept;

/// The AES-NI backend, or nullptr when this build/CPU cannot run it.
[[nodiscard]] const AesBackendOps* aesni_backend() noexcept;

/// Backends usable on this machine, portable first.
[[nodiscard]] std::span<const AesBackendOps* const>
available_backends() noexcept;

/// Lookup by name ("portable", "aesni"); nullptr when unknown or
/// unavailable on this machine.
[[nodiscard]] const AesBackendOps* backend_by_name(
    std::string_view name) noexcept;

/// The process-wide backend every default-constructed cipher uses.
/// Chosen once: NN_AES_BACKEND override if set, else the fastest
/// available. Stable for the life of the process apart from
/// ScopedBackendOverride below.
[[nodiscard]] const AesBackendOps& active_backend() noexcept;

/// Test/bench hook: forces `active_backend()` to return `ops` for the
/// lifetime of the object. Not thread-safe, and it only affects cipher
/// objects constructed while the override is live (a schedule keeps the
/// backend it was expanded with).
class ScopedBackendOverride {
 public:
  explicit ScopedBackendOverride(const AesBackendOps& ops) noexcept;
  ~ScopedBackendOverride();
  ScopedBackendOverride(const ScopedBackendOverride&) = delete;
  ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;

 private:
  const AesBackendOps* previous_;
};

}  // namespace nn::crypto
