// ChaCha20 block function (RFC 7539) and a DRBG built on it.
//
// The project needs a *seedable, deterministic* cryptographic RNG so
// every experiment (key generation, nonces, padding) is reproducible
// from a seed recorded in the harness output.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/rng.hpp"

namespace nn::crypto {

/// Computes one 64-byte ChaCha20 block (RFC 7539 §2.3).
void chacha20_block(const std::array<std::uint8_t, 32>& key,
                    std::uint32_t counter,
                    const std::array<std::uint8_t, 12>& nonce,
                    std::span<std::uint8_t, 64> out) noexcept;

/// Deterministic random bit generator: ChaCha20 keystream under a
/// seed-derived key. Forward-secure reseeding is not needed here — the
/// goal is reproducibility, not long-lived key protection.
class ChaChaRng final : public Rng {
 public:
  explicit ChaChaRng(std::uint64_t seed) noexcept;
  explicit ChaChaRng(const std::array<std::uint8_t, 32>& key) noexcept;

  std::uint64_t next_u64() override;

 private:
  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 12> nonce_{};
  std::array<std::uint8_t, 64> block_{};
  std::uint32_t counter_ = 0;
  std::size_t offset_ = 64;  // forces refill on first use

  void refill() noexcept;
};

}  // namespace nn::crypto
