#include "crypto/aes_modes.hpp"

#include <algorithm>
#include <stdexcept>

namespace nn::crypto {

namespace {
// Doubling in GF(2^128) with the CMAC polynomial (RFC 4493 subkey step).
AesBlock gf_double(const AesBlock& in) noexcept {
  AesBlock out{};
  std::uint8_t carry = 0;
  for (std::size_t i = kAesBlockSize; i-- > 0;) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
    carry = static_cast<std::uint8_t>(in[i] >> 7);
  }
  if (carry) out[kAesBlockSize - 1] ^= 0x87;
  return out;
}
}  // namespace

Cmac::Cmac(const AesKey& key) noexcept : cipher_(key) {
  const AesBlock zero{};
  const AesBlock l = cipher_.encrypt(zero);
  k1_ = gf_double(l);
  k2_ = gf_double(k1_);
}

AesBlock Cmac::mac(std::span<const std::uint8_t> msg) const noexcept {
  const std::size_t n_blocks =
      msg.empty() ? 1 : (msg.size() + kAesBlockSize - 1) / kAesBlockSize;
  const bool last_complete =
      !msg.empty() && msg.size() % kAesBlockSize == 0;

  AesBlock x{};
  // All blocks but the last.
  for (std::size_t b = 0; b + 1 < n_blocks; ++b) {
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      x[i] ^= msg[b * kAesBlockSize + i];
    }
    x = cipher_.encrypt(x);
  }
  // Last block: XOR with K1 if complete, pad + XOR with K2 otherwise.
  AesBlock last{};
  const std::size_t off = (n_blocks - 1) * kAesBlockSize;
  if (last_complete) {
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      last[i] = static_cast<std::uint8_t>(msg[off + i] ^ k1_[i]);
    }
  } else {
    const std::size_t rem = msg.size() - off;
    for (std::size_t i = 0; i < rem; ++i) last[i] = msg[off + i];
    last[rem] = 0x80;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] ^= k2_[i];
  }
  for (std::size_t i = 0; i < kAesBlockSize; ++i) x[i] ^= last[i];
  return cipher_.encrypt(x);
}

std::vector<std::uint8_t> Cmac::mac_truncated(std::span<const std::uint8_t> msg,
                                              std::size_t len) const {
  if (len > kAesBlockSize) {
    throw std::invalid_argument("Cmac: truncated tag longer than block");
  }
  const AesBlock full = mac(msg);
  return {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len)};
}

void Ctr::crypt(std::span<const std::uint8_t, 12> iv,
                std::span<std::uint8_t> data) const noexcept {
  AesBlock counter{};
  std::copy(iv.begin(), iv.end(), counter.begin());
  std::uint32_t block_index = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    counter[12] = static_cast<std::uint8_t>(block_index >> 24);
    counter[13] = static_cast<std::uint8_t>(block_index >> 16);
    counter[14] = static_cast<std::uint8_t>(block_index >> 8);
    counter[15] = static_cast<std::uint8_t>(block_index);
    const AesBlock ks = cipher_.encrypt(counter);
    const std::size_t n = std::min(kAesBlockSize, data.size() - pos);
    for (std::size_t i = 0; i < n; ++i) data[pos + i] ^= ks[i];
    pos += n;
    ++block_index;
  }
}

std::vector<std::uint8_t> Ctr::crypt_copy(
    std::span<const std::uint8_t, 12> iv,
    std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  crypt(iv, out);
  return out;
}

AesKey derive_source_key(const Cmac& keyed_master, std::uint64_t nonce,
                         std::uint32_t src_ip) noexcept {
  // CMAC(KM, nonce ‖ srcIP ‖ "NNKS"): the paper's Ks = hash(KM, nonce, srcIP).
  std::array<std::uint8_t, 16> msg{};
  for (int i = 0; i < 8; ++i) {
    msg[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  msg[8] = static_cast<std::uint8_t>(src_ip >> 24);
  msg[9] = static_cast<std::uint8_t>(src_ip >> 16);
  msg[10] = static_cast<std::uint8_t>(src_ip >> 8);
  msg[11] = static_cast<std::uint8_t>(src_ip);
  msg[12] = 'N';
  msg[13] = 'N';
  msg[14] = 'K';
  msg[15] = 'S';
  const AesBlock tag = keyed_master.mac(msg);
  AesKey out;
  std::copy(tag.begin(), tag.end(), out.begin());
  return out;
}

AesKey derive_source_key(const AesKey& master_key, std::uint64_t nonce,
                         std::uint32_t src_ip) noexcept {
  return derive_source_key(Cmac(master_key), nonce, src_ip);
}

AesKey derive_lease_key(const Cmac& keyed_master,
                        std::uint64_t nonce) noexcept {
  std::array<std::uint8_t, 16> msg{};
  for (int i = 0; i < 8; ++i) {
    msg[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  // Bytes 8..11 stay zero: domain-separated from derive_source_key by
  // the trailing tag.
  msg[12] = 'N';
  msg[13] = 'N';
  msg[14] = 'K';
  msg[15] = 'L';
  const AesBlock tag = keyed_master.mac(msg);
  AesKey out;
  std::copy(tag.begin(), tag.end(), out.begin());
  return out;
}

AesKey derive_lease_key(const AesKey& master_key,
                        std::uint64_t nonce) noexcept {
  return derive_lease_key(Cmac(master_key), nonce);
}

std::uint32_t crypt_address(const AesKey& ks, std::uint64_t nonce,
                            bool return_direction,
                            std::uint32_t addr) noexcept {
  std::array<std::uint8_t, 12> iv{};
  for (int i = 0; i < 8; ++i) {
    iv[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  iv[8] = return_direction ? 0x52 : 0x46;  // 'R' / 'F'
  std::array<std::uint8_t, 4> buf{
      static_cast<std::uint8_t>(addr >> 24),
      static_cast<std::uint8_t>(addr >> 16),
      static_cast<std::uint8_t>(addr >> 8),
      static_cast<std::uint8_t>(addr),
  };
  Ctr(ks).crypt(iv, buf);
  return (static_cast<std::uint32_t>(buf[0]) << 24) |
         (static_cast<std::uint32_t>(buf[1]) << 16) |
         (static_cast<std::uint32_t>(buf[2]) << 8) |
         static_cast<std::uint32_t>(buf[3]);
}

}  // namespace nn::crypto
