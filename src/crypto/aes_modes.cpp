#include "crypto/aes_modes.hpp"

#include <algorithm>
#include <stdexcept>

namespace nn::crypto {

namespace {
// Doubling in GF(2^128) with the CMAC polynomial (RFC 4493 subkey step).
AesBlock gf_double(const AesBlock& in) noexcept {
  AesBlock out{};
  std::uint8_t carry = 0;
  for (std::size_t i = kAesBlockSize; i-- > 0;) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
    carry = static_cast<std::uint8_t>(in[i] >> 7);
  }
  if (carry) out[kAesBlockSize - 1] ^= 0x87;
  return out;
}
}  // namespace

Cmac::Cmac(const AesKey& key, const AesBackendOps& ops) noexcept
    : cipher_(key, ops) {
  const AesBlock zero{};
  const AesBlock l = cipher_.encrypt(zero);
  k1_ = gf_double(l);
  k2_ = gf_double(k1_);
}

AesBlock Cmac::mac(std::span<const std::uint8_t> msg) const noexcept {
  const std::size_t n_blocks =
      msg.empty() ? 1 : (msg.size() + kAesBlockSize - 1) / kAesBlockSize;
  const bool last_complete =
      !msg.empty() && msg.size() % kAesBlockSize == 0;

  AesBlock x{};
  // All blocks but the last.
  for (std::size_t b = 0; b + 1 < n_blocks; ++b) {
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      x[i] ^= msg[b * kAesBlockSize + i];
    }
    x = cipher_.encrypt(x);
  }
  // Last block: XOR with K1 if complete, pad + XOR with K2 otherwise.
  AesBlock last{};
  const std::size_t off = (n_blocks - 1) * kAesBlockSize;
  if (last_complete) {
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      last[i] = static_cast<std::uint8_t>(msg[off + i] ^ k1_[i]);
    }
  } else {
    const std::size_t rem = msg.size() - off;
    for (std::size_t i = 0; i < rem; ++i) last[i] = msg[off + i];
    last[rem] = 0x80;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] ^= k2_[i];
  }
  for (std::size_t i = 0; i < kAesBlockSize; ++i) x[i] ^= last[i];
  return cipher_.encrypt(x);
}

void Cmac::mac_single_blocks(const AesBlock* msgs, AesBlock* tags,
                             std::size_t n) const noexcept {
  // One complete block: X = 0, last = msg ⊕ K1, tag = E(X ⊕ last) —
  // a single cipher call per message, all n pipelined together.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < kAesBlockSize; ++j) {
      tags[i][j] = static_cast<std::uint8_t>(msgs[i][j] ^ k1_[j]);
    }
  }
  cipher_.encrypt_blocks(tags->data(), tags->data(), n);
}

void Cmac::mac_batch(const std::uint8_t* msgs, std::size_t msg_len,
                     std::size_t n, AesBlock* tags) const noexcept {
  if (n == 0) return;
  const std::size_t n_blocks =
      msg_len == 0 ? 1 : (msg_len + kAesBlockSize - 1) / kAesBlockSize;
  const bool last_complete = msg_len != 0 && msg_len % kAesBlockSize == 0;

  // tags[] doubles as the running CMAC state of each lane.
  for (std::size_t i = 0; i < n; ++i) tags[i] = AesBlock{};
  for (std::size_t b = 0; b + 1 < n_blocks; ++b) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t* block = msgs + i * msg_len + b * kAesBlockSize;
      for (std::size_t j = 0; j < kAesBlockSize; ++j) tags[i][j] ^= block[j];
    }
    cipher_.encrypt_blocks(tags->data(), tags->data(), n);
  }
  const std::size_t off = (n_blocks - 1) * kAesBlockSize;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* msg = msgs + i * msg_len;
    AesBlock last{};
    if (last_complete) {
      for (std::size_t j = 0; j < kAesBlockSize; ++j) {
        last[j] = static_cast<std::uint8_t>(msg[off + j] ^ k1_[j]);
      }
    } else {
      const std::size_t rem = msg_len - off;
      for (std::size_t j = 0; j < rem; ++j) last[j] = msg[off + j];
      last[rem] = 0x80;
      for (std::size_t j = 0; j < kAesBlockSize; ++j) last[j] ^= k2_[j];
    }
    for (std::size_t j = 0; j < kAesBlockSize; ++j) tags[i][j] ^= last[j];
  }
  cipher_.encrypt_blocks(tags->data(), tags->data(), n);
}

std::vector<std::uint8_t> Cmac::mac_truncated(std::span<const std::uint8_t> msg,
                                              std::size_t len) const {
  if (len > kAesBlockSize) {
    throw std::invalid_argument("Cmac: truncated tag longer than block");
  }
  const AesBlock full = mac(msg);
  return {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len)};
}

std::vector<std::uint8_t> Ctr::crypt_copy(
    std::span<const std::uint8_t, 12> iv,
    std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  crypt(iv, out);
  return out;
}

void Cbc::encrypt(const AesBlock& iv, std::span<std::uint8_t> data) const {
  if (data.size() % kAesBlockSize != 0) {
    throw std::invalid_argument("Cbc: data not block-aligned");
  }
  AesBlock prev = iv;
  for (std::size_t off = 0; off < data.size(); off += kAesBlockSize) {
    for (std::size_t j = 0; j < kAesBlockSize; ++j) prev[j] ^= data[off + j];
    prev = cipher_.encrypt(prev);
    std::copy(prev.begin(), prev.end(), data.begin() +
                                            static_cast<std::ptrdiff_t>(off));
  }
}

void Cbc::decrypt(const AesBlock& iv, std::span<std::uint8_t> data) const {
  if (data.size() % kAesBlockSize != 0) {
    throw std::invalid_argument("Cbc: data not block-aligned");
  }
  cipher_.cbc_decrypt(iv, data.data(), data.data(),
                      data.size() / kAesBlockSize);
}

namespace {

AesBlock source_key_msg(std::uint64_t nonce, std::uint32_t src_ip) noexcept {
  // nonce ‖ srcIP ‖ "NNKS": the paper's Ks = hash(KM, nonce, srcIP).
  AesBlock msg{};
  for (int i = 0; i < 8; ++i) {
    msg[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  msg[8] = static_cast<std::uint8_t>(src_ip >> 24);
  msg[9] = static_cast<std::uint8_t>(src_ip >> 16);
  msg[10] = static_cast<std::uint8_t>(src_ip >> 8);
  msg[11] = static_cast<std::uint8_t>(src_ip);
  msg[12] = 'N';
  msg[13] = 'N';
  msg[14] = 'K';
  msg[15] = 'S';
  return msg;
}

AesBlock lease_key_msg(std::uint64_t nonce) noexcept {
  AesBlock msg{};
  for (int i = 0; i < 8; ++i) {
    msg[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  // Bytes 8..11 stay zero: domain-separated from derive_source_key by
  // the trailing tag.
  msg[12] = 'N';
  msg[13] = 'N';
  msg[14] = 'K';
  msg[15] = 'L';
  return msg;
}

}  // namespace

AesKey derive_source_key(const Cmac& keyed_master, std::uint64_t nonce,
                         std::uint32_t src_ip) noexcept {
  return keyed_master.mac(source_key_msg(nonce, src_ip));
}

AesKey derive_source_key(const AesKey& master_key, std::uint64_t nonce,
                         std::uint32_t src_ip) noexcept {
  return derive_source_key(Cmac(master_key), nonce, src_ip);
}

AesKey derive_lease_key(const Cmac& keyed_master,
                        std::uint64_t nonce) noexcept {
  return keyed_master.mac(lease_key_msg(nonce));
}

AesKey derive_lease_key(const AesKey& master_key,
                        std::uint64_t nonce) noexcept {
  return derive_lease_key(Cmac(master_key), nonce);
}

void derive_keys_batch(const Cmac& keyed_master,
                       std::span<const KeyDeriveRequest> reqs,
                       AesKey* out) noexcept {
  // Stage fixed-size chunks on the stack; AesKey and AesBlock are the
  // same 16-byte array type, so tags land directly in `out`.
  constexpr std::size_t kChunk = 32;
  std::array<AesBlock, kChunk> msgs;
  std::size_t done = 0;
  while (done < reqs.size()) {
    const std::size_t n = std::min(kChunk, reqs.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      const KeyDeriveRequest& r = reqs[done + i];
      msgs[i] = r.lease ? lease_key_msg(r.nonce)
                        : source_key_msg(r.nonce, r.src_ip);
    }
    keyed_master.mac_single_blocks(msgs.data(), out + done, n);
    done += n;
  }
}

void crypt_address_batch(std::span<const AddressCryptRequest> reqs,
                         std::uint32_t* out) noexcept {
  // Fixed-size chunks keep the schedule scratch on the stack (32 × 352 B
  // ≈ 11 KiB). Only the first keystream block of each request is needed
  // (an address is 4 bytes), so one multi-key ECB call per chunk covers
  // the whole CTR computation.
  constexpr std::size_t kChunk = 32;
  alignas(16) std::array<AesSchedule, kChunk> scheds;
  std::array<AesBlock, kChunk> counters;
  const AesBackendOps& ops = active_backend();
  std::size_t done = 0;
  while (done < reqs.size()) {
    const std::size_t n = std::min(kChunk, reqs.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      const AddressCryptRequest& r = reqs[done + i];
      ops.expand_key(r.ks.data(), scheds[i]);
      // Counter block 0 of the scalar path: nonce ‖ direction ‖ 0^3 ‖
      // be32(0) — must stay bit-identical to crypt_address below.
      AesBlock& c = counters[i];
      c.fill(0);
      for (int b = 0; b < 8; ++b) {
        c[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(r.nonce >> (56 - 8 * b));
      }
      c[8] = r.return_direction ? 0x52 : 0x46;  // 'R' / 'F'
    }
    ops.encrypt_blocks_multi(scheds.data(), counters[0].data(),
                             counters[0].data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const AddressCryptRequest& r = reqs[done + i];
      const AesBlock& ks = counters[i];
      out[done + i] =
          r.addr ^ ((static_cast<std::uint32_t>(ks[0]) << 24) |
                    (static_cast<std::uint32_t>(ks[1]) << 16) |
                    (static_cast<std::uint32_t>(ks[2]) << 8) |
                    static_cast<std::uint32_t>(ks[3]));
    }
    done += n;
  }
}

std::uint32_t crypt_address(const AesKey& ks, std::uint64_t nonce,
                            bool return_direction,
                            std::uint32_t addr) noexcept {
  std::array<std::uint8_t, 12> iv{};
  for (int i = 0; i < 8; ++i) {
    iv[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  iv[8] = return_direction ? 0x52 : 0x46;  // 'R' / 'F'
  std::array<std::uint8_t, 4> buf{
      static_cast<std::uint8_t>(addr >> 24),
      static_cast<std::uint8_t>(addr >> 16),
      static_cast<std::uint8_t>(addr >> 8),
      static_cast<std::uint8_t>(addr),
  };
  Ctr(ks).crypt(iv, buf);
  return (static_cast<std::uint32_t>(buf[0]) << 24) |
         (static_cast<std::uint32_t>(buf[1]) << 16) |
         (static_cast<std::uint32_t>(buf[2]) << 8) |
         static_cast<std::uint32_t>(buf[3]);
}

}  // namespace nn::crypto
