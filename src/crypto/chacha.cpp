#include "crypto/chacha.hpp"

namespace nn::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  a += b;
  d = rotl(d ^ a, 16);
  c += d;
  b = rotl(b ^ c, 12);
  a += b;
  d = rotl(d ^ a, 8);
  c += d;
  b = rotl(b ^ c, 7);
}

inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

void chacha20_block(const std::array<std::uint8_t, 32>& key,
                    std::uint32_t counter,
                    const std::array<std::uint8_t, 12>& nonce,
                    std::span<std::uint8_t, 64> out) noexcept {
  std::uint32_t state[16];
  state[0] = 0x61707865;  // "expa"
  state[1] = 0x3320646e;  // "nd 3"
  state[2] = 0x79622d32;  // "2-by"
  state[3] = 0x6b206574;  // "te k"
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint32_t w[16];
  for (int i = 0; i < 16; ++i) w[i] = state[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, w[i] + state[i]);
  }
}

ChaChaRng::ChaChaRng(std::uint64_t seed) noexcept {
  // Expand the 64-bit seed into the key by simple repetition + counter;
  // uniqueness of streams comes from distinct seeds.
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 8; ++b) {
      key_[static_cast<std::size_t>(8 * i + b)] =
          static_cast<std::uint8_t>((seed + static_cast<std::uint64_t>(i)) >>
                                    (8 * b));
    }
  }
}

ChaChaRng::ChaChaRng(const std::array<std::uint8_t, 32>& key) noexcept
    : key_(key) {}

void ChaChaRng::refill() noexcept {
  chacha20_block(key_, counter_++, nonce_, block_);
  offset_ = 0;
}

std::uint64_t ChaChaRng::next_u64() {
  if (offset_ + 8 > block_.size()) refill();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(block_[offset_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  offset_ += 8;
  return v;
}

}  // namespace nn::crypto
