#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nn {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value for SplitMix64 seeded with 0 (Vigna's reference code).
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next_u64(), 0xE220A8397B1DCDAFULL);
}

TEST(Rng, FillCoversBuffer) {
  SplitMix64 rng(7);
  std::vector<std::uint8_t> buf(37, 0);
  rng.fill(buf);
  // With 37 random bytes the chance they are all zero is negligible.
  bool any_nonzero = false;
  for (auto b : buf) any_nonzero |= b != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, UniformRespectsBound) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformBound1AlwaysZero) {
  SplitMix64 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, RangeInclusive) {
  SplitMix64 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values should appear in 200 draws
}

TEST(Rng, UniformDoubleInUnitInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyCorrectMean) {
  SplitMix64 rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.25);
}

}  // namespace
}  // namespace nn
