#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace nn {
namespace {

TEST(ByteWriter, WritesBigEndianIntegers) {
  ByteWriter w;
  w.u8(0xAB).u16(0x1234).u32(0xDEADBEEF).u64(0x0102030405060708ULL);
  const auto bytes = w.take();
  const std::vector<std::uint8_t> expected = {
      0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF,
      0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(bytes, expected);
}

TEST(ByteReader, ReadsBackWhatWriterWrote) {
  ByteWriter w;
  w.u8(7).u16(65535).u32(123456789).u64(0xFFFFFFFFFFFFFFFFULL);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 123456789u);
  EXPECT_EQ(r.u64(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, ThrowsOnTruncatedInput) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  ByteReader r(three);
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_THROW(r.u16(), ParseError);
}

TEST(ByteReader, TakeAndRest) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  ByteReader r(data);
  auto head = r.take(2);
  EXPECT_EQ(head[0], 1);
  EXPECT_EQ(head[1], 2);
  auto rest = r.rest();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 3);
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(ByteReader, SkipAdvances) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4};
  ByteReader r(data);
  r.skip(3);
  EXPECT_EQ(r.u8(), 4);
  EXPECT_THROW(r.skip(1), ParseError);
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  w.u16(0).u32(0xAABBCCDD);
  w.patch_u16(0, 0xBEEF);
  const auto bytes = w.take();
  EXPECT_EQ(bytes[0], 0xBE);
  EXPECT_EQ(bytes[1], 0xEF);
}

TEST(ByteWriter, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.u8(1);
  EXPECT_THROW(w.patch_u16(0, 5), std::out_of_range);
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xAB, 0xFF, 0x7E};
  EXPECT_EQ(to_hex(data), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), data);
  EXPECT_EQ(from_hex("0001ABFF7E"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), ParseError);
  EXPECT_THROW(from_hex("zz"), ParseError);
}

TEST(CtEqual, ComparesCorrectly) {
  const std::vector<std::uint8_t> a = {1, 2, 3};
  const std::vector<std::uint8_t> b = {1, 2, 3};
  const std::vector<std::uint8_t> c = {1, 2, 4};
  const std::vector<std::uint8_t> d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

}  // namespace
}  // namespace nn
