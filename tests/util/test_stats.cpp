#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace nn {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Histogram, PercentilesOnKnownData) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.median(), 50.5, 1e-9);
  EXPECT_NEAR(h.p95(), 95.05, 1e-9);
  EXPECT_NEAR(h.mean(), 50.5, 1e-9);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.median(), 42.0);
  EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(Histogram, AddAfterQueryStillSorts) {
  Histogram h;
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.median(), 5.0);
  h.add(1.0);
  h.add(9.0);
  EXPECT_DOUBLE_EQ(h.median(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  EXPECT_NE(h.summary().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace nn
