#include "baseline/stateful.hpp"

#include <gtest/gtest.h>

#include "crypto/aes_modes.hpp"
#include "net/shim.hpp"
#include "util/bytes.hpp"

namespace nn::baseline {
namespace {

using net::Ipv4Addr;
using net::ShimHeader;
using net::ShimType;

const Ipv4Addr kAnycast(200, 0, 0, 1);
const Ipv4Addr kAnn(10, 1, 0, 2);
const Ipv4Addr kGoogle(20, 0, 0, 10);

core::NeutralizerConfig config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

class StatefulTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::ChaChaRng rng(0x5F);
    onetime_ = new crypto::RsaPrivateKey(crypto::rsa_generate(rng, 512, 3));
  }
  static void TearDownTestSuite() {
    delete onetime_;
    onetime_ = nullptr;
  }

  std::pair<std::uint64_t, crypto::AesKey> setup(StatefulNeutralizer& n,
                                                 Ipv4Addr src) {
    ShimHeader shim;
    shim.type = ShimType::kKeySetup;
    shim.nonce = 1;
    auto resp = n.process(
        net::make_shim_packet(src, kAnycast, shim, onetime_->pub.serialize()),
        0);
    EXPECT_TRUE(resp.has_value());
    const auto parsed = net::parse_packet(resp->view());
    const auto plain = crypto::rsa_decrypt(*onetime_, parsed.payload);
    EXPECT_TRUE(plain.has_value());
    ByteReader r(*plain);
    const std::uint64_t nonce = r.u64();
    crypto::AesKey ks{};
    const auto key = r.take(16);
    std::copy(key.begin(), key.end(), ks.begin());
    return {nonce, ks};
  }

  static crypto::RsaPrivateKey* onetime_;
};

crypto::RsaPrivateKey* StatefulTest::onetime_ = nullptr;

net::Packet forward_packet(std::uint64_t nonce, const crypto::AesKey& ks,
                           Ipv4Addr src, Ipv4Addr dst) {
  ShimHeader shim;
  shim.type = ShimType::kDataForward;
  shim.nonce = nonce;
  shim.inner_addr = crypto::crypt_address(ks, nonce, false, dst.value());
  return net::make_shim_packet(src, kAnycast, shim,
                               std::vector<std::uint8_t>{9});
}

TEST_F(StatefulTest, ForwardWorksLikeStatelessVariant) {
  StatefulNeutralizer n(config());
  const auto [nonce, ks] = setup(n, kAnn);
  auto out = n.process(forward_packet(nonce, ks, kAnn, kGoogle), 0);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(net::parse_packet(out->view()).ip.dst, kGoogle);
}

TEST_F(StatefulTest, StateGrowsLinearlyWithSources) {
  // The measurable §3.2 difference: table entries per source.
  StatefulNeutralizer n(config());
  EXPECT_EQ(n.table_entries(), 0u);
  for (int i = 0; i < 50; ++i) {
    setup(n, Ipv4Addr(10, 1, 1, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(n.table_entries(), 50u);
  EXPECT_GT(n.state_bytes(), 50u * 20u);
}

TEST_F(StatefulTest, ReplicaFailoverBreaks) {
  // Two replicas do NOT share state: a key minted by one is useless at
  // the other — the fault-tolerance argument for statelessness (§3.2).
  StatefulNeutralizer a(config(), 1);
  StatefulNeutralizer b(config(), 2);
  const auto [nonce, ks] = setup(a, kAnn);
  EXPECT_TRUE(a.process(forward_packet(nonce, ks, kAnn, kGoogle), 0)
                  .has_value());
  EXPECT_FALSE(b.process(forward_packet(nonce, ks, kAnn, kGoogle), 0)
                   .has_value());
}

TEST_F(StatefulTest, SourceBindingEnforced) {
  StatefulNeutralizer n(config());
  const auto [nonce, ks] = setup(n, kAnn);
  // Another host replaying Ann's nonce is rejected by the stored source.
  EXPECT_FALSE(
      n.process(forward_packet(nonce, ks, Ipv4Addr(10, 1, 0, 99), kGoogle), 0)
          .has_value());
}

TEST_F(StatefulTest, ReturnPathUsesTable) {
  StatefulNeutralizer n(config());
  const auto [nonce, ks] = setup(n, kAnn);
  ShimHeader shim;
  shim.type = ShimType::kDataReturn;
  shim.nonce = nonce;
  shim.inner_addr = kAnn.value();
  auto out = n.process(
      net::make_shim_packet(kGoogle, kAnycast, shim,
                            std::vector<std::uint8_t>{1}),
      0);
  ASSERT_TRUE(out.has_value());
  const auto parsed = net::parse_packet(out->view());
  EXPECT_EQ(parsed.ip.src, kAnycast);
  EXPECT_EQ(parsed.ip.dst, kAnn);
  EXPECT_EQ(crypto::crypt_address(ks, nonce, true, parsed.shim->inner_addr),
            kGoogle.value());
}

TEST_F(StatefulTest, UnknownNonceRejected) {
  StatefulNeutralizer n(config());
  crypto::AesKey ks{};
  EXPECT_FALSE(
      n.process(forward_packet(12345, ks, kAnn, kGoogle), 0).has_value());
}

}  // namespace
}  // namespace nn::baseline
