#include "baseline/onion.hpp"

#include <gtest/gtest.h>

namespace nn::baseline {
namespace {

class OnionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::ChaChaRng rng(0x10);
    keys_ = new std::vector<crypto::RsaPrivateKey>();
    for (int i = 0; i < 3; ++i) {
      keys_->push_back(crypto::rsa_generate(rng, 1024, 3));
    }
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }

  OnionTest() {
    for (const auto& key : *keys_) relays_.emplace_back(key);
  }

  std::vector<OnionRelay*> path() {
    std::vector<OnionRelay*> p;
    for (auto& r : relays_) p.push_back(&r);
    return p;
  }

  static std::vector<crypto::RsaPrivateKey>* keys_;
  std::vector<OnionRelay> relays_;
};

std::vector<crypto::RsaPrivateKey>* OnionTest::keys_ = nullptr;

TEST_F(OnionTest, CircuitBuildCostsOneRsaPerHop) {
  OnionClient client(1);
  const auto circuit = client.build_circuit(path());
  EXPECT_EQ(circuit.path.size(), 3u);
  EXPECT_EQ(client.rsa_encryptions(), 3u);
  for (auto& relay : relays_) {
    EXPECT_EQ(relay.stats().rsa_decryptions, 1u);
    EXPECT_EQ(relay.circuit_count(), 1u);
  }
}

TEST_F(OnionTest, OnionPeelsToPlaintextOnlyAtExit) {
  OnionClient client(2);
  auto circuit = client.build_circuit(path());
  const std::vector<std::uint8_t> payload = {'t', 'o', 'r'};
  auto cell = client.wrap(circuit, payload);
  EXPECT_NE(cell, payload);  // encrypted on the wire

  // Peel layer by layer: only after the final relay is it plaintext.
  auto partial = cell;
  ASSERT_TRUE(relays_[0].process_cell(circuit.circuit_ids[0], partial));
  EXPECT_NE(partial, payload);
  ASSERT_TRUE(relays_[1].process_cell(circuit.circuit_ids[1], partial));
  EXPECT_NE(partial, payload);
  ASSERT_TRUE(relays_[2].process_cell(circuit.circuit_ids[2], partial));
  EXPECT_EQ(partial, payload);
}

TEST_F(OnionTest, TransitHelperMatchesManualPeeling) {
  OnionClient client(3);
  auto circuit = client.build_circuit(path());
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto out = OnionClient::transit(circuit, client.wrap(circuit, payload));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST_F(OnionTest, MultipleCellsKeepDistinctKeystreams) {
  OnionClient client(4);
  auto circuit = client.build_circuit(path());
  const std::vector<std::uint8_t> payload(64, 0x55);
  const auto c1 = client.wrap(circuit, payload);
  const auto c2 = client.wrap(circuit, payload);
  EXPECT_NE(c1, c2);  // per-cell counter IVs
  EXPECT_EQ(*OnionClient::transit(circuit, c1), payload);
  EXPECT_EQ(*OnionClient::transit(circuit, c2), payload);
}

TEST_F(OnionTest, UnknownCircuitRejected) {
  std::vector<std::uint8_t> cell(16, 0);
  EXPECT_FALSE(relays_[0].process_cell(999, cell));
}

TEST_F(OnionTest, StateGrowsPerCircuitAndShrinksOnDestroy) {
  OnionClient client(5);
  const std::size_t before = relays_[0].state_bytes();
  std::vector<OnionClient::Circuit> circuits;
  for (int i = 0; i < 10; ++i) circuits.push_back(client.build_circuit(path()));
  EXPECT_EQ(relays_[0].circuit_count(), 10u);
  EXPECT_GT(relays_[0].state_bytes(), before);
  // This is exactly the §5 contrast: the neutralizer's per-source state
  // is zero regardless of how many sources set up keys.
  for (auto& c : circuits) {
    for (std::size_t i = 0; i < c.path.size(); ++i) {
      c.path[i]->destroy_circuit(c.circuit_ids[i]);
    }
  }
  EXPECT_EQ(relays_[0].circuit_count(), 0u);
}

TEST_F(OnionTest, MalformedCreateRejected) {
  std::vector<std::uint8_t> garbage(128, 0xAB);
  EXPECT_FALSE(relays_[0].create_circuit(garbage).has_value());
}

}  // namespace
}  // namespace nn::baseline
