#include "discrim/classifier.hpp"

#include <gtest/gtest.h>

#include "host/e2e.hpp"

namespace nn::discrim {
namespace {

using net::Dscp;
using net::Ipv4Addr;
using net::Ipv4Prefix;

net::Packet voip_packet(Ipv4Addr src, Ipv4Addr dst) {
  const std::string sig = "SIP/2.0 INVITE";
  std::vector<std::uint8_t> payload(sig.begin(), sig.end());
  payload.resize(160, 0);
  return net::make_udp_packet(src, dst, 5060, 5060, payload);
}

TEST(MatchCriteria, DestinationPrefix) {
  const auto rule =
      MatchCriteria::against_destination(Ipv4Prefix::from_string("20.0.0.0/16"));
  EXPECT_TRUE(rule.matches(voip_packet(Ipv4Addr(1, 1, 1, 1),
                                       Ipv4Addr(20, 0, 0, 10))));
  EXPECT_FALSE(rule.matches(voip_packet(Ipv4Addr(1, 1, 1, 1),
                                        Ipv4Addr(21, 0, 0, 10))));
}

TEST(MatchCriteria, SourcePrefix) {
  const auto rule =
      MatchCriteria::against_source(Ipv4Prefix::from_string("10.0.0.0/8"));
  EXPECT_TRUE(rule.matches(voip_packet(Ipv4Addr(10, 9, 9, 9),
                                       Ipv4Addr(20, 0, 0, 1))));
  EXPECT_FALSE(rule.matches(voip_packet(Ipv4Addr(11, 0, 0, 1),
                                        Ipv4Addr(20, 0, 0, 1))));
}

TEST(MatchCriteria, UdpPort) {
  const auto rule = MatchCriteria::against_udp_port(5060);
  EXPECT_TRUE(rule.matches(voip_packet(Ipv4Addr(1, 1, 1, 1),
                                       Ipv4Addr(2, 2, 2, 2))));
  auto other = net::make_udp_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                                    53, 53, std::vector<std::uint8_t>{1});
  EXPECT_FALSE(rule.matches(other));
}

TEST(MatchCriteria, DpiSignatureFindsPlaintextVoip) {
  const auto rule = MatchCriteria::against_signature("SIP/2.0");
  EXPECT_TRUE(rule.matches(voip_packet(Ipv4Addr(1, 1, 1, 1),
                                       Ipv4Addr(2, 2, 2, 2))));
}

TEST(MatchCriteria, DpiSignatureDefeatedByEncryption) {
  // The paper's first line of defense: e2e encryption hides contents.
  const auto rule = MatchCriteria::against_signature("SIP/2.0");
  crypto::AesKey key;
  key.fill(0x5A);
  host::E2eSession session(key, true);
  const std::string sig = "SIP/2.0 INVITE";
  std::vector<std::uint8_t> payload(sig.begin(), sig.end());
  payload.resize(160, 0);
  const auto sealed = session.seal(payload);
  const auto pkt = net::make_udp_packet(Ipv4Addr(1, 1, 1, 1),
                                        Ipv4Addr(2, 2, 2, 2), 5060, 5060,
                                        sealed);
  EXPECT_FALSE(rule.matches(pkt));
}

TEST(MatchCriteria, EntropyFlagsEncryptedTraffic) {
  const auto rule = MatchCriteria::against_encrypted();
  // Plaintext VoIP: low entropy, not flagged.
  EXPECT_FALSE(rule.matches(voip_packet(Ipv4Addr(1, 1, 1, 1),
                                        Ipv4Addr(2, 2, 2, 2))));
  // Encrypted payload: flagged (a §3.6 residual capability).
  crypto::AesKey key{};
  host::E2eSession session(key, true);
  std::vector<std::uint8_t> payload(160, 'A');
  const auto pkt = net::make_udp_packet(Ipv4Addr(1, 1, 1, 1),
                                        Ipv4Addr(2, 2, 2, 2), 1, 2,
                                        session.seal(payload));
  EXPECT_TRUE(rule.matches(pkt));
}

TEST(MatchCriteria, ShimTypeSpotsKeySetups) {
  const auto rule = MatchCriteria::against_key_setup();
  net::ShimHeader shim;
  shim.type = net::ShimType::kKeySetup;
  const auto setup = net::make_shim_packet(
      Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), shim,
      std::vector<std::uint8_t>(70, 0));
  EXPECT_TRUE(rule.matches(setup));

  shim.type = net::ShimType::kDataForward;
  const auto data = net::make_shim_packet(
      Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), shim,
      std::vector<std::uint8_t>(70, 0));
  EXPECT_FALSE(rule.matches(data));
}

TEST(MatchCriteria, SizeBounds) {
  MatchCriteria rule;
  rule.min_size = 100;
  rule.max_size = 200;
  EXPECT_TRUE(rule.matches(voip_packet(Ipv4Addr(1, 1, 1, 1),
                                       Ipv4Addr(2, 2, 2, 2))));  // 188 B
  rule.max_size = 150;
  EXPECT_FALSE(rule.matches(voip_packet(Ipv4Addr(1, 1, 1, 1),
                                        Ipv4Addr(2, 2, 2, 2))));
}

TEST(MatchCriteria, DscpMatch) {
  MatchCriteria rule;
  rule.dscp = Dscp::kExpeditedForwarding;
  auto pkt = net::make_udp_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                                  1, 2, std::vector<std::uint8_t>{1},
                                  Dscp::kExpeditedForwarding);
  EXPECT_TRUE(rule.matches(pkt));
  rule.dscp = Dscp::kBestEffort;
  EXPECT_FALSE(rule.matches(pkt));
}

TEST(MatchCriteria, ConjunctionOfCriteria) {
  MatchCriteria rule;
  rule.dst_prefix = Ipv4Prefix::from_string("20.0.0.0/16");
  rule.dst_port = 5060;
  rule.payload_signature = {'S', 'I', 'P'};
  EXPECT_TRUE(rule.matches(voip_packet(Ipv4Addr(1, 1, 1, 1),
                                       Ipv4Addr(20, 0, 0, 1))));
  // Wrong destination: conjunction fails.
  EXPECT_FALSE(rule.matches(voip_packet(Ipv4Addr(1, 1, 1, 1),
                                        Ipv4Addr(30, 0, 0, 1))));
}

TEST(MatchCriteria, MalformedPacketNeverMatches) {
  MatchCriteria anything;  // all-empty criteria matches everything...
  net::Packet garbage;
  garbage.bytes = {1, 2, 3};
  EXPECT_FALSE(anything.matches(garbage));  // ...except unparseable bytes
}

}  // namespace
}  // namespace nn::discrim
