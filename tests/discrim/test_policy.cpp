#include "discrim/policy.hpp"

#include <gtest/gtest.h>

namespace nn::discrim {
namespace {

using net::Ipv4Addr;
using net::Ipv4Prefix;

net::Packet pkt_to(Ipv4Addr dst, std::size_t payload = 100) {
  return net::make_udp_packet(Ipv4Addr(1, 1, 1, 1), dst, 1, 2,
                              std::vector<std::uint8_t>(payload, 0));
}

TEST(DiscriminationPolicy, NoRulesForwardsEverything) {
  DiscriminationPolicy policy("empty");
  const auto d = policy.process(pkt_to(Ipv4Addr(2, 2, 2, 2)), 0);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.extra_delay, 0);
}

TEST(DiscriminationPolicy, DropRule) {
  DiscriminationPolicy policy("drop-vonage");
  policy.add_rule("vonage",
                  MatchCriteria::against_destination(
                      Ipv4Prefix::from_string("20.0.0.0/16")),
                  DiscriminationAction::drop());
  EXPECT_TRUE(policy.process(pkt_to(Ipv4Addr(20, 0, 0, 5)), 0).drop);
  EXPECT_FALSE(policy.process(pkt_to(Ipv4Addr(30, 0, 0, 5)), 0).drop);
  EXPECT_EQ(policy.rule_stats(0).hits, 1u);
  EXPECT_EQ(policy.rule_stats(0).drops, 1u);
}

TEST(DiscriminationPolicy, DelayRule) {
  DiscriminationPolicy policy("degrade");
  policy.add_rule("slow",
                  MatchCriteria::against_destination(
                      Ipv4Prefix::from_string("20.0.0.0/16")),
                  DiscriminationAction::degrade(0.0, 30 * sim::kMillisecond));
  const auto d = policy.process(pkt_to(Ipv4Addr(20, 0, 0, 5)), 0);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.extra_delay, 30 * sim::kMillisecond);
  EXPECT_EQ(policy.rule_stats(0).delayed, 1u);
}

TEST(DiscriminationPolicy, ProbabilisticDropApproximatesRate) {
  DiscriminationPolicy policy("lossy", /*seed=*/7);
  policy.add_rule("loss",
                  MatchCriteria::against_destination(
                      Ipv4Prefix::from_string("20.0.0.0/16")),
                  DiscriminationAction::degrade(0.25, 0));
  int drops = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    if (policy.process(pkt_to(Ipv4Addr(20, 0, 0, 5)), 0).drop) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.25, 0.03);
}

TEST(DiscriminationPolicy, RateLimitThrottles) {
  DiscriminationPolicy policy("throttle");
  policy.add_rule("limit",
                  MatchCriteria::against_destination(
                      Ipv4Prefix::from_string("20.0.0.0/16")),
                  DiscriminationAction::throttle(1000.0, 256.0));
  // First packets fit the burst; sustained load is dropped.
  int forwarded = 0;
  for (int i = 0; i < 10; ++i) {
    if (!policy.process(pkt_to(Ipv4Addr(20, 0, 0, 5), 100), 0).drop) {
      ++forwarded;
    }
  }
  EXPECT_LE(forwarded, 2);  // 256-byte burst fits two 128-byte packets
  // Sustained: 128-byte packets every 100 ms against a 1000 B/s limit
  // admit roughly rate/size = ~78% of offered packets.
  int later = 0;
  const int offered = 90;
  for (int i = 0; i < offered; ++i) {
    const sim::SimTime t = sim::kSecond + i * 100 * sim::kMillisecond;
    if (!policy.process(pkt_to(Ipv4Addr(20, 0, 0, 5), 100), t).drop) {
      ++later;
    }
  }
  EXPECT_GE(later, 55);
  EXPECT_LE(later, 80);
}

TEST(DiscriminationPolicy, FirstMatchingRuleWins) {
  DiscriminationPolicy policy("ordered");
  policy
      .add_rule("allow-dns", MatchCriteria::against_udp_port(53),
                DiscriminationAction{})  // forward explicitly
      .add_rule("drop-rest", MatchCriteria{}, DiscriminationAction::drop());
  auto dns = net::make_udp_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                                  1000, 53, std::vector<std::uint8_t>{1});
  EXPECT_FALSE(policy.process(dns, 0).drop);
  EXPECT_TRUE(policy.process(pkt_to(Ipv4Addr(2, 2, 2, 2)), 0).drop);
}

TEST(DiscriminationPolicy, SharedBucketAcrossPolicies) {
  // One token bucket shared by two router policies models an ISP-wide
  // aggregate limit.
  const auto action = DiscriminationAction::throttle(1000.0, 128.0);
  DiscriminationPolicy a("r1"), b("r2");
  a.add_rule("limit", MatchCriteria{}, action);
  b.add_rule("limit", MatchCriteria{}, action);
  EXPECT_FALSE(a.process(pkt_to(Ipv4Addr(2, 2, 2, 2), 100), 0).drop);
  // The shared bucket is now empty; the other router drops.
  EXPECT_TRUE(b.process(pkt_to(Ipv4Addr(2, 2, 2, 2), 100), 0).drop);
}

}  // namespace
}  // namespace nn::discrim
