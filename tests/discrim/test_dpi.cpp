#include "discrim/dpi.hpp"

#include <gtest/gtest.h>

#include "crypto/chacha.hpp"

namespace nn::discrim {
namespace {

TEST(ShannonEntropy, EmptyIsZero) {
  EXPECT_EQ(shannon_entropy({}), 0.0);
}

TEST(ShannonEntropy, ConstantBytesAreZero) {
  std::vector<std::uint8_t> data(256, 0x41);
  EXPECT_EQ(shannon_entropy(data), 0.0);
}

TEST(ShannonEntropy, UniformBytesApproachEight) {
  std::vector<std::uint8_t> data(256);
  for (int i = 0; i < 256; ++i) data[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  EXPECT_NEAR(shannon_entropy(data), 8.0, 1e-9);
}

TEST(ShannonEntropy, TwoSymbolsIsOneBit) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(0);
    data.push_back(1);
  }
  EXPECT_NEAR(shannon_entropy(data), 1.0, 1e-9);
}

TEST(ShannonEntropy, EnglishTextBelowThresholdCiphertextAbove) {
  const std::string text =
      "the quick brown fox jumps over the lazy dog and keeps on running "
      "because the networks of the world must remain open to innovation";
  EXPECT_LT(shannon_entropy(std::vector<std::uint8_t>(text.begin(), text.end())),
            kEncryptedEntropyThreshold);

  crypto::ChaChaRng rng(1);
  std::vector<std::uint8_t> ciphertext(256);
  rng.fill(ciphertext);
  EXPECT_GT(shannon_entropy(ciphertext), kEncryptedEntropyThreshold);
}

TEST(ContainsSignature, FindsSubstringAnywhere) {
  const std::vector<std::uint8_t> hay = {'a', 'b', 'c', 'd', 'e'};
  EXPECT_TRUE(contains_signature(hay, std::vector<std::uint8_t>{'a', 'b'}));
  EXPECT_TRUE(contains_signature(hay, std::vector<std::uint8_t>{'c', 'd'}));
  EXPECT_TRUE(contains_signature(hay, std::vector<std::uint8_t>{'e'}));
  EXPECT_TRUE(contains_signature(hay, hay));
}

TEST(ContainsSignature, RejectsAbsentAndDegenerate) {
  const std::vector<std::uint8_t> hay = {'a', 'b', 'c'};
  EXPECT_FALSE(contains_signature(hay, std::vector<std::uint8_t>{'x'}));
  EXPECT_FALSE(contains_signature(hay, std::vector<std::uint8_t>{'c', 'a'}));
  EXPECT_FALSE(contains_signature(hay, {}));  // empty needle: no match
  EXPECT_FALSE(
      contains_signature(hay, std::vector<std::uint8_t>{'a', 'b', 'c', 'd'}));
}

}  // namespace
}  // namespace nn::discrim
