#include "dns/dns.hpp"

#include <gtest/gtest.h>

#include "discrim/classifier.hpp"

namespace nn::dns {
namespace {

using net::Ipv4Addr;

DomainRecords google_records() {
  DomainRecords rec;
  rec.name = "www.google.com";
  rec.address = Ipv4Addr(20, 0, 0, 10);
  rec.neutralizers = {Ipv4Addr(200, 0, 0, 1), Ipv4Addr(201, 0, 0, 1)};
  crypto::ChaChaRng rng(1);
  rec.public_key = crypto::rsa_generate(rng, 512, 3).pub.serialize();
  return rec;
}

TEST(DomainRecords, SerializeParseRoundTrip) {
  const auto rec = google_records();
  const auto parsed = DomainRecords::parse(rec.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rec);
}

TEST(DomainRecords, ParseRejectsTruncatedAndTrailing) {
  auto bytes = google_records().serialize();
  auto truncated = bytes;
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(DomainRecords::parse(truncated).has_value());
  bytes.push_back(0);
  EXPECT_FALSE(DomainRecords::parse(bytes).has_value());
}

TEST(DomainRecords, ToPeerInfoSelectsNeutralizer) {
  const auto rec = google_records();
  const auto info0 = to_peer_info(rec, 0);
  EXPECT_EQ(info0.addr, rec.address);
  EXPECT_EQ(info0.anycast, Ipv4Addr(200, 0, 0, 1));
  const auto info1 = to_peer_info(rec, 1);
  EXPECT_EQ(info1.anycast, Ipv4Addr(201, 0, 0, 1));
  // Out of range: no anycast (treated as non-neutralized peer).
  EXPECT_TRUE(to_peer_info(rec, 5).anycast.is_unspecified());
}

TEST(RecordStore, LookupSemantics) {
  RecordStore store;
  store.add(google_records());
  EXPECT_TRUE(store.lookup("www.google.com").has_value());
  EXPECT_FALSE(store.lookup("www.nosuch.com").has_value());
  EXPECT_EQ(store.size(), 1u);
}

/// Simulation fixture: client — attRouter — resolver.
class DnsSimTest : public ::testing::Test {
 protected:
  DnsSimTest() : net(engine) {
    client_node = &net.add<sim::Host>("client");
    att = &net.add<sim::Router>("att");
    resolver_node = &net.add<sim::Host>("resolver");
    sim::LinkConfig cfg;
    net.connect(*client_node, *att, cfg);
    net.connect(*att, *resolver_node, cfg);
    net.assign_address(*client_node, Ipv4Addr(10, 1, 0, 2));
    net.assign_address(*resolver_node, Ipv4Addr(9, 9, 9, 9));
    net.compute_routes();

    RecordStore store;
    store.add(google_records());
    crypto::ChaChaRng rng(7);
    resolver_identity = crypto::rsa_generate(rng, 1024, 3);
    resolver = std::make_unique<ResolverApp>(*resolver_node, engine, store,
                                             resolver_identity);
    stub = std::make_unique<StubResolverApp>(*client_node, engine,
                                             Ipv4Addr(9, 9, 9, 9),
                                             resolver_identity.pub, 3);
  }

  sim::Engine engine;
  sim::Network net;
  sim::Host* client_node;
  sim::Router* att;
  sim::Host* resolver_node;
  crypto::RsaPrivateKey resolver_identity{};
  std::unique_ptr<ResolverApp> resolver;
  std::unique_ptr<StubResolverApp> stub;
};

TEST_F(DnsSimTest, PlaintextQueryResolves) {
  std::optional<DomainRecords> result;
  stub->resolve("www.google.com", /*encrypted=*/false,
                [&](std::optional<DomainRecords> r) { result = std::move(r); });
  engine.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->address, Ipv4Addr(20, 0, 0, 10));
  EXPECT_EQ(resolver->queries_served(), 1u);
}

TEST_F(DnsSimTest, NxDomainReturnsNull) {
  bool called = false;
  std::optional<DomainRecords> result;
  stub->resolve("www.unknown.com", false,
                [&](std::optional<DomainRecords> r) {
                  called = true;
                  result = std::move(r);
                });
  engine.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.has_value());
}

TEST_F(DnsSimTest, EncryptedQueryResolves) {
  std::optional<DomainRecords> result;
  stub->resolve("www.google.com", /*encrypted=*/true,
                [&](std::optional<DomainRecords> r) { result = std::move(r); });
  engine.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->name, "www.google.com");
}

TEST_F(DnsSimTest, PlaintextQueryIsClassifiableEncryptedIsNot) {
  // The §3.1 attack: AT&T delays DNS lookups that name google.
  const auto rule = discrim::MatchCriteria::against_signature("google");
  struct Recorder : sim::TransitPolicy {
    const discrim::MatchCriteria* rule;
    int matches = 0;
    sim::PolicyDecision process(const net::Packet& pkt,
                                sim::SimTime) override {
      if (rule->matches(pkt)) ++matches;
      return sim::PolicyDecision::forward();
    }
  };
  auto rec = std::make_shared<Recorder>();
  rec->rule = &rule;
  att->add_policy(rec);

  std::optional<DomainRecords> r1, r2;
  stub->resolve("www.google.com", false,
                [&](std::optional<DomainRecords> r) { r1 = std::move(r); });
  engine.run();
  EXPECT_GT(rec->matches, 0);  // plaintext qname visible

  rec->matches = 0;
  stub->resolve("www.google.com", true,
                [&](std::optional<DomainRecords> r) { r2 = std::move(r); });
  engine.run();
  EXPECT_EQ(rec->matches, 0);  // encrypted qname invisible
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, *r1);  // same answer either way
}

TEST_F(DnsSimTest, EncryptedQueryWithoutResolverKeyFailsFast) {
  StubResolverApp no_key(*client_node, engine, Ipv4Addr(9, 9, 9, 9),
                         std::nullopt, 4);
  bool called = false;
  no_key.resolve("www.google.com", true,
                 [&](std::optional<DomainRecords> r) {
                   called = true;
                   EXPECT_FALSE(r.has_value());
                 });
  EXPECT_TRUE(called);
}

TEST_F(DnsSimTest, BootstrapFeedsHostStack) {
  // End-to-end §3.1: resolve, then hand the records to a host stack.
  std::optional<DomainRecords> result;
  stub->resolve("www.google.com", true,
                [&](std::optional<DomainRecords> r) { result = std::move(r); });
  engine.run();
  ASSERT_TRUE(result.has_value());
  const auto info = to_peer_info(*result);
  EXPECT_EQ(info.addr, Ipv4Addr(20, 0, 0, 10));
  EXPECT_EQ(info.anycast, Ipv4Addr(200, 0, 0, 1));
  EXPECT_GT(info.public_key.n.bit_length(), 0u);
}

}  // namespace
}  // namespace nn::dns
