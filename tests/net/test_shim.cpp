#include "net/shim.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace nn::net {
namespace {

ShimHeader sample_data_forward(std::uint8_t flags = 0) {
  ShimHeader h;
  h.type = ShimType::kDataForward;
  h.flags = flags;
  h.key_epoch = 7;
  h.nonce = 0x1122334455667788ULL;
  h.inner_addr = 0xC0A80101;
  return h;
}

TEST(ShimHeader, SizeByType) {
  ShimHeader setup;
  setup.type = ShimType::kKeySetup;
  EXPECT_EQ(setup.serialized_size(), kShimBaseSize);

  EXPECT_EQ(sample_data_forward().serialized_size(),
            kShimBaseSize + kShimInnerAddrSize);
  EXPECT_EQ(sample_data_forward(ShimFlags::kKeyRequest).serialized_size(),
            kShimBaseSize + kShimInnerAddrSize + kShimRekeyExtSize);
}

TEST(ShimHeader, RoundTripBasic) {
  const auto h = sample_data_forward();
  ByteWriter w;
  h.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(ShimHeader::parse(r), h);
}

TEST(ShimHeader, RoundTripAllTypes) {
  for (auto t : {ShimType::kKeySetup, ShimType::kKeySetupResponse,
                 ShimType::kDataForward, ShimType::kDataReturn,
                 ShimType::kKeyLease, ShimType::kKeyLeaseResponse}) {
    ShimHeader h;
    h.type = t;
    h.nonce = 42;
    h.key_epoch = 3;
    if (shim_type_has_inner_addr(t)) h.inner_addr = 0xDEADBEEF;
    ByteWriter w;
    h.serialize(w);
    const auto bytes = w.take();
    ByteReader r(bytes);
    EXPECT_EQ(ShimHeader::parse(r), h) << static_cast<int>(t);
  }
}

TEST(ShimHeader, KeyRequestReservesZeroedSpace) {
  const auto h = sample_data_forward(ShimFlags::kKeyRequest);
  ByteWriter w;
  h.serialize(w);
  const auto bytes = w.take();
  // Extension must be zero-filled.
  for (std::size_t i = kShimBaseSize + kShimInnerAddrSize; i < bytes.size();
       ++i) {
    EXPECT_EQ(bytes[i], 0) << "byte " << i;
  }
  ByteReader r(bytes);
  const auto parsed = ShimHeader::parse(r);
  EXPECT_TRUE(parsed.has_rekey_space());
  EXPECT_FALSE(parsed.rekey.has_value());  // not yet stamped
}

TEST(ShimHeader, RekeyFilledRoundTrips) {
  auto h = sample_data_forward(
      static_cast<std::uint8_t>(ShimFlags::kKeyRequest | ShimFlags::kRekeyFilled));
  RekeyExt ext;
  ext.nonce = 999;
  ext.epoch = 12;
  ext.key.fill(0xAB);
  h.rekey = ext;
  ByteWriter w;
  h.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  const auto parsed = ShimHeader::parse(r);
  ASSERT_TRUE(parsed.rekey.has_value());
  EXPECT_EQ(parsed.rekey->nonce, 999u);
  EXPECT_EQ(parsed.rekey->epoch, 12);
  EXPECT_EQ(parsed.rekey->key, ext.key);
}

TEST(ShimHeader, ParseRejectsUnknownType) {
  ByteWriter w;
  w.u8(99).u8(0).u16(0).u64(0);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(ShimHeader::parse(r), ParseError);
}

TEST(ShimHeader, ParseRejectsTruncated) {
  const auto h = sample_data_forward(ShimFlags::kKeyRequest);
  ByteWriter w;
  h.serialize(w);
  auto bytes = w.take();
  bytes.resize(bytes.size() - 10);
  ByteReader r(bytes);
  EXPECT_THROW(ShimHeader::parse(r), ParseError);
}

// --- ShimPacketView -------------------------------------------------------

Packet sample_packet(std::uint8_t flags = 0) {
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  return make_shim_packet(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8),
                          sample_data_forward(flags), payload,
                          Dscp::kExpeditedForwarding);
}

TEST(ShimPacketView, ReadsFields) {
  auto pkt = sample_packet();
  ShimPacketView v(pkt.mutable_view());
  EXPECT_EQ(v.src(), Ipv4Addr(1, 2, 3, 4));
  EXPECT_EQ(v.dst(), Ipv4Addr(5, 6, 7, 8));
  EXPECT_EQ(v.dscp(), Dscp::kExpeditedForwarding);
  EXPECT_EQ(v.type(), ShimType::kDataForward);
  EXPECT_EQ(v.key_epoch(), 7);
  EXPECT_EQ(v.nonce(), 0x1122334455667788ULL);
  EXPECT_EQ(v.inner_addr(), 0xC0A80101u);
  ASSERT_EQ(v.payload().size(), 4u);
  EXPECT_EQ(v.payload()[0], 9);
}

TEST(ShimPacketView, RewritesAddressesWithValidChecksum) {
  auto pkt = sample_packet();
  ShimPacketView v(pkt.mutable_view());
  v.set_src(Ipv4Addr(99, 99, 99, 99));
  v.set_dst(Ipv4Addr(10, 0, 0, 1));
  v.set_inner_addr(0x01020304);
  v.refresh_ip_checksum();
  // Full parse must succeed (checksum valid) and see the new values.
  const auto parsed = parse_packet(pkt.view());
  EXPECT_EQ(parsed.ip.src, Ipv4Addr(99, 99, 99, 99));
  EXPECT_EQ(parsed.ip.dst, Ipv4Addr(10, 0, 0, 1));
  ASSERT_TRUE(parsed.shim.has_value());
  EXPECT_EQ(parsed.shim->inner_addr, 0x01020304u);
  // DSCP must be untouched by address rewrites (paper §3.4).
  EXPECT_EQ(parsed.ip.dscp, Dscp::kExpeditedForwarding);
}

TEST(ShimPacketView, StampRekeyInPlace) {
  auto pkt = sample_packet(ShimFlags::kKeyRequest);
  const std::size_t before = pkt.size();
  ShimPacketView v(pkt.mutable_view());
  crypto::AesKey key;
  key.fill(0x5C);
  v.stamp_rekey(0xABCDEF, 3, key);
  EXPECT_EQ(pkt.size(), before);  // in-place: no growth
  const auto ext = v.rekey();
  EXPECT_EQ(ext.nonce, 0xABCDEFu);
  EXPECT_EQ(ext.epoch, 3);
  EXPECT_EQ(ext.key, key);
  EXPECT_TRUE(v.flags() & ShimFlags::kRekeyFilled);
  // Payload is still beyond the extension.
  ASSERT_EQ(v.payload().size(), 4u);
  EXPECT_EQ(v.payload()[0], 9);
}

TEST(ShimPacketView, StampWithoutSpaceThrows) {
  auto pkt = sample_packet();
  ShimPacketView v(pkt.mutable_view());
  crypto::AesKey key{};
  EXPECT_THROW(v.stamp_rekey(1, 0, key), ParseError);
  EXPECT_THROW((void)v.rekey(), ParseError);
}

TEST(ShimPacketView, RejectsNonShimPacket) {
  const std::vector<std::uint8_t> payload = {1};
  auto pkt = make_udp_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 10,
                             20, payload);
  EXPECT_THROW(ShimPacketView{pkt.mutable_view()}, ParseError);
}

TEST(ShimPacketView, RejectsTruncated) {
  auto pkt = sample_packet(ShimFlags::kKeyRequest);
  pkt.bytes.resize(kIpv4HeaderSize + kShimBaseSize + 2);
  EXPECT_THROW(ShimPacketView{pkt.mutable_view()}, ParseError);
}

}  // namespace
}  // namespace nn::net
