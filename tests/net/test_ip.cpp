#include "net/ip.hpp"

#include <gtest/gtest.h>

namespace nn::net {
namespace {

TEST(InternetChecksum, Rfc1071Example) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLength) {
  const std::vector<std::uint8_t> data = {0x01};
  // 0x0100 padded -> sum = 0x0100, complement = 0xFEFF
  EXPECT_EQ(internet_checksum(data), 0xFEFF);
}

TEST(InternetChecksum, VerifiesToZero) {
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd,
                                    0x00, 0x00, 0x40, 0x11, 0x00, 0x00,
                                    0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00,
                                    0x00, 0x02};
  const std::uint16_t sum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.dscp = Dscp::kExpeditedForwarding;
  h.total_length = 120;
  h.identification = 0xBEEF;
  h.ttl = 17;
  h.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  h.src = Ipv4Addr(10, 0, 0, 1);
  h.dst = Ipv4Addr(192, 168, 7, 9);

  ByteWriter w;
  h.serialize(w);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), kIpv4HeaderSize);

  ByteReader r(bytes);
  EXPECT_EQ(Ipv4Header::parse(r), h);
}

TEST(Ipv4Header, ParseRejectsCorruptedChecksum) {
  Ipv4Header h;
  h.total_length = 20;
  ByteWriter w;
  h.serialize(w);
  auto bytes = w.take();
  bytes[12] ^= 0x01;  // flip a source-address bit
  ByteReader r(bytes);
  EXPECT_THROW(Ipv4Header::parse(r), ParseError);
}

TEST(Ipv4Header, ParseRejectsWrongVersion) {
  Ipv4Header h;
  h.total_length = 20;
  ByteWriter w;
  h.serialize(w);
  auto bytes = w.take();
  bytes[0] = 0x46;  // IHL 6: options unsupported
  ByteReader r(bytes);
  EXPECT_THROW(Ipv4Header::parse(r), ParseError);
}

TEST(Ipv4Header, DscpSurvivesRoundTrip) {
  for (Dscp d : {Dscp::kBestEffort, Dscp::kAf11, Dscp::kAf41,
                 Dscp::kExpeditedForwarding}) {
    Ipv4Header h;
    h.dscp = d;
    h.total_length = 20;
    ByteWriter w;
    h.serialize(w);
    const auto bytes = w.take();
    ByteReader r(bytes);
    EXPECT_EQ(Ipv4Header::parse(r).dscp, d);
  }
}

TEST(UdpHeader, SerializeParseRoundTrip) {
  UdpHeader u;
  u.src_port = 5060;
  u.dst_port = 53;
  u.length = 100;
  ByteWriter w;
  u.serialize(w);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), kUdpHeaderSize);
  ByteReader r(bytes);
  EXPECT_EQ(UdpHeader::parse(r), u);
}

TEST(UdpHeader, RejectsLengthBelowHeader) {
  ByteWriter w;
  w.u16(1).u16(2).u16(7).u16(0);  // length 7 < 8
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(UdpHeader::parse(r), ParseError);
}

}  // namespace
}  // namespace nn::net
