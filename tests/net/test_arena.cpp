#include "net/arena.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace nn::net {
namespace {

TEST(PacketArena, FirstAcquireComesFromHeap) {
  PacketArena arena;
  auto p = arena.acquire(128);
  EXPECT_EQ(p.size(), 128u);
  EXPECT_EQ(arena.stats().heap_allocations, 1u);
  EXPECT_EQ(arena.stats().reuses, 0u);
}

TEST(PacketArena, ReleaseThenAcquireReusesBuffer) {
  PacketArena arena;
  auto p = arena.acquire(256);
  const std::uint8_t* data = p.bytes.data();
  arena.release(std::move(p));
  EXPECT_EQ(arena.free_count(), 1u);

  auto q = arena.acquire(100);  // smaller fits in the recycled capacity
  EXPECT_EQ(q.bytes.data(), data);
  EXPECT_EQ(q.size(), 100u);
  EXPECT_EQ(arena.stats().reuses, 1u);
  EXPECT_EQ(arena.stats().heap_allocations, 1u);
  EXPECT_EQ(arena.free_count(), 0u);
}

TEST(PacketArena, GrowingPastRecycledCapacityCountsAsHeap) {
  PacketArena arena;
  arena.release(arena.acquire(16));
  auto p = arena.acquire(1 << 16);  // forces a realloc
  EXPECT_EQ(p.size(), std::size_t{1} << 16);
  EXPECT_EQ(arena.stats().heap_allocations, 2u);
  EXPECT_EQ(arena.stats().reuses, 0u);
}

TEST(PacketArena, SteadyStateIsAllocationFree) {
  PacketArena arena;
  // Warm-up round allocates; every later round must be pure reuse.
  for (int i = 0; i < 8; ++i) arena.release(arena.acquire(112));
  const auto warm = arena.stats().heap_allocations;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) arena.release(arena.acquire(112));
  }
  EXPECT_EQ(arena.stats().heap_allocations, warm);
  EXPECT_GE(arena.stats().reuses, 800u);
}

TEST(PacketArena, CloneCopiesBytesWithoutHeapInSteadyState) {
  PacketArena arena;
  Packet tmpl;
  tmpl.bytes.resize(64);
  std::iota(tmpl.bytes.begin(), tmpl.bytes.end(), std::uint8_t{0});

  arena.release(arena.acquire(64));  // prime the freelist
  const auto warm = arena.stats().heap_allocations;
  auto copy = arena.clone(tmpl);
  EXPECT_EQ(copy, tmpl);
  EXPECT_EQ(arena.stats().heap_allocations, warm);
}

TEST(PacketArena, EmptyBuffersAreNotHoarded) {
  PacketArena arena;
  arena.release(Packet{});  // moved-from packets carry no capacity
  EXPECT_EQ(arena.free_count(), 0u);
}

TEST(PacketArena, FreelistIsBounded) {
  PacketArena arena(/*max_free=*/2);
  for (int i = 0; i < 5; ++i) {
    arena.release(Packet{std::vector<std::uint8_t>(32)});
  }
  EXPECT_EQ(arena.free_count(), 2u);
  EXPECT_EQ(arena.stats().freelist_overflow, 3u);
}

}  // namespace
}  // namespace nn::net
