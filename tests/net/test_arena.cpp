#include "net/arena.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "net/shim.hpp"

namespace nn::net {
namespace {

TEST(PacketArena, FirstAcquireComesFromHeap) {
  PacketArena arena;
  auto p = arena.acquire(128);
  EXPECT_EQ(p.size(), 128u);
  EXPECT_EQ(arena.stats().heap_allocations, 1u);
  EXPECT_EQ(arena.stats().reuses, 0u);
}

TEST(PacketArena, ReleaseThenAcquireReusesBuffer) {
  PacketArena arena;
  auto p = arena.acquire(256);
  const std::uint8_t* data = p.bytes.data();
  arena.release(std::move(p));
  EXPECT_EQ(arena.free_count(), 1u);

  auto q = arena.acquire(100);  // smaller fits in the recycled capacity
  EXPECT_EQ(q.bytes.data(), data);
  EXPECT_EQ(q.size(), 100u);
  EXPECT_EQ(arena.stats().reuses, 1u);
  EXPECT_EQ(arena.stats().heap_allocations, 1u);
  EXPECT_EQ(arena.free_count(), 0u);
}

TEST(PacketArena, GrowingPastRecycledCapacityCountsAsHeap) {
  PacketArena arena;
  arena.release(arena.acquire(16));
  auto p = arena.acquire(1 << 16);  // forces a realloc
  EXPECT_EQ(p.size(), std::size_t{1} << 16);
  EXPECT_EQ(arena.stats().heap_allocations, 2u);
  EXPECT_EQ(arena.stats().reuses, 0u);
}

TEST(PacketArena, SteadyStateIsAllocationFree) {
  PacketArena arena;
  // Warm-up round allocates; every later round must be pure reuse.
  for (int i = 0; i < 8; ++i) arena.release(arena.acquire(112));
  const auto warm = arena.stats().heap_allocations;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) arena.release(arena.acquire(112));
  }
  EXPECT_EQ(arena.stats().heap_allocations, warm);
  EXPECT_GE(arena.stats().reuses, 800u);
}

TEST(PacketArena, CloneCopiesBytesWithoutHeapInSteadyState) {
  PacketArena arena;
  Packet tmpl;
  tmpl.bytes.resize(64);
  std::iota(tmpl.bytes.begin(), tmpl.bytes.end(), std::uint8_t{0});

  arena.release(arena.acquire(64));  // prime the freelist
  const auto warm = arena.stats().heap_allocations;
  auto copy = arena.clone(tmpl);
  EXPECT_EQ(copy, tmpl);
  EXPECT_EQ(arena.stats().heap_allocations, warm);
}

TEST(PacketArena, EmptyBuffersAreNotHoarded) {
  PacketArena arena;
  arena.release(Packet{});  // moved-from packets carry no capacity
  EXPECT_EQ(arena.free_count(), 0u);
}

TEST(PacketArena, FreelistIsBounded) {
  PacketArena arena(/*max_free=*/2);
  for (int i = 0; i < 5; ++i) {
    arena.release(Packet{std::vector<std::uint8_t>(32)});
  }
  EXPECT_EQ(arena.free_count(), 2u);
  EXPECT_EQ(arena.stats().freelist_overflow, 3u);
}

TEST(PacketArena, AcquireBufferRecyclesEmptySizedCapacity) {
  PacketArena arena;
  // Cold: heap-backed, empty, capacity at least the reservation.
  auto buf = arena.acquire_buffer(64);
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 64u);
  EXPECT_EQ(arena.stats().heap_allocations, 1u);

  // Warm: a released 64-byte packet buffer serves a 32-byte reservation
  // with no allocation; bytes from the previous life are cleared away
  // (size 0), only the capacity survives.
  arena.release(Packet{std::vector<std::uint8_t>(64, 0xEE)});
  auto warm = arena.acquire_buffer(32);
  EXPECT_TRUE(warm.empty());
  EXPECT_GE(warm.capacity(), 64u);
  EXPECT_EQ(arena.stats().reuses, 1u);
  EXPECT_EQ(arena.stats().heap_allocations, 1u);

  // Too-small recycled buffer: still returned, counted as a heap hit
  // because the reserve reallocates.
  arena.release(Packet{std::vector<std::uint8_t>(8)});
  auto grown = arena.acquire_buffer(128);
  EXPECT_GE(grown.capacity(), 128u);
  EXPECT_EQ(arena.stats().heap_allocations, 2u);
}

TEST(PacketArena, ArenaAwareShimPacketMatchesHeapSerialization) {
  // Same inputs, same bytes — the arena only changes where the buffer
  // came from. (This is the make_shim_packet overload the neutralizer's
  // control path uses.)
  PacketArena arena;
  arena.release(Packet{std::vector<std::uint8_t>(128)});
  ShimHeader shim;
  shim.type = ShimType::kKeyLeaseResponse;
  shim.nonce = 0x1234;
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const Packet heap_built = make_shim_packet(Ipv4Addr(1, 2, 3, 4),
                                             Ipv4Addr(5, 6, 7, 8), shim,
                                             payload);
  const Packet arena_built =
      make_shim_packet(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8), shim,
                       payload, Dscp::kBestEffort, 64, &arena);
  EXPECT_EQ(arena_built, heap_built);
  EXPECT_EQ(arena.stats().reuses, 1u);
}

}  // namespace
}  // namespace nn::net
