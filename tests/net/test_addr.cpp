#include "net/addr.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace nn::net {
namespace {

TEST(Ipv4Addr, FromOctetsAndValue) {
  constexpr Ipv4Addr a(10, 1, 2, 3);
  EXPECT_EQ(a.value(), 0x0A010203u);
  EXPECT_EQ(a.to_string(), "10.1.2.3");
}

TEST(Ipv4Addr, FromStringRoundTrip) {
  for (const char* s : {"0.0.0.0", "255.255.255.255", "192.168.1.1",
                        "8.8.8.8", "1.2.3.4"}) {
    EXPECT_EQ(Ipv4Addr::from_string(s).to_string(), s);
  }
}

TEST(Ipv4Addr, FromStringRejectsMalformed) {
  for (const char* s : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                        "1..2.3", "1.2.3.4 "}) {
    EXPECT_THROW(Ipv4Addr::from_string(s), ParseError) << s;
  }
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4), Ipv4Addr::from_string("1.2.3.4"));
  EXPECT_TRUE(Ipv4Addr().is_unspecified());
}

TEST(Ipv4Prefix, MasksBaseAddress) {
  const Ipv4Prefix p(Ipv4Addr(10, 1, 2, 3), 16);
  EXPECT_EQ(p.base(), Ipv4Addr(10, 1, 0, 0));
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Ipv4Prefix, Contains) {
  const auto p = Ipv4Prefix::from_string("10.1.0.0/16");
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 1, 255, 255)));
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 1, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Addr(10, 2, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Addr(11, 1, 0, 0)));
}

TEST(Ipv4Prefix, ZeroLengthContainsEverything) {
  const Ipv4Prefix p(Ipv4Addr(), 0);
  EXPECT_TRUE(p.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_TRUE(p.contains(Ipv4Addr()));
}

TEST(Ipv4Prefix, HostRoute) {
  const Ipv4Prefix p(Ipv4Addr(8, 8, 8, 8), 32);
  EXPECT_TRUE(p.contains(Ipv4Addr(8, 8, 8, 8)));
  EXPECT_FALSE(p.contains(Ipv4Addr(8, 8, 8, 9)));
}

TEST(Ipv4Prefix, AtOffset) {
  const auto p = Ipv4Prefix::from_string("10.1.0.0/16");
  EXPECT_EQ(p.at(1), Ipv4Addr(10, 1, 0, 1));
  EXPECT_EQ(p.at(0xFFFF), Ipv4Addr(10, 1, 255, 255));
  EXPECT_THROW((void)p.at(0x10000), std::out_of_range);
}

TEST(Ipv4Prefix, RejectsBadLength) {
  EXPECT_THROW(Ipv4Prefix(Ipv4Addr(), 33), std::invalid_argument);
  EXPECT_THROW(Ipv4Prefix::from_string("1.2.3.4"), ParseError);
  EXPECT_THROW(Ipv4Prefix::from_string("1.2.3.4/ab"), ParseError);
}

TEST(Ipv4Addr, HashUsableInContainers) {
  std::hash<Ipv4Addr> h;
  EXPECT_NE(h(Ipv4Addr(1, 2, 3, 4)), h(Ipv4Addr(4, 3, 2, 1)));
}

}  // namespace
}  // namespace nn::net
