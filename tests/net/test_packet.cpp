#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace nn::net {
namespace {

TEST(Packet, UdpBuildAndParse) {
  const std::vector<std::uint8_t> payload = {'h', 'i'};
  const auto pkt = make_udp_packet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                                   1234, 5678, payload, Dscp::kAf41, 32);
  EXPECT_EQ(pkt.size(), kIpv4HeaderSize + kUdpHeaderSize + 2);
  const auto p = parse_packet(pkt.view());
  EXPECT_EQ(p.ip.src, Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(p.ip.dst, Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(p.ip.dscp, Dscp::kAf41);
  EXPECT_EQ(p.ip.ttl, 32);
  ASSERT_TRUE(p.udp.has_value());
  EXPECT_EQ(p.udp->src_port, 1234);
  EXPECT_EQ(p.udp->dst_port, 5678);
  EXPECT_FALSE(p.shim.has_value());
  ASSERT_EQ(p.payload.size(), 2u);
  EXPECT_EQ(p.payload[0], 'h');
}

TEST(Packet, ShimBuildAndParse) {
  ShimHeader shim;
  shim.type = ShimType::kKeySetup;
  shim.nonce = 31337;
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB, 0xCC};
  const auto pkt = make_shim_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                                    shim, payload);
  const auto p = parse_packet(pkt.view());
  ASSERT_TRUE(p.shim.has_value());
  EXPECT_EQ(p.shim->type, ShimType::kKeySetup);
  EXPECT_EQ(p.shim->nonce, 31337u);
  EXPECT_FALSE(p.udp.has_value());
  EXPECT_EQ(p.payload.size(), 3u);
}

TEST(Packet, ParseRejectsLengthMismatch) {
  const std::vector<std::uint8_t> payload(10, 0);
  auto pkt = make_udp_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1, 2,
                             payload);
  pkt.bytes.push_back(0);  // trailing garbage
  EXPECT_THROW((void)parse_packet(pkt.view()), ParseError);
}

TEST(Packet, PaperDataPacketIs112Bytes) {
  // Paper §4: 64-byte payload, "total packet size is 112 bytes after
  // adding headers, nonce, encrypted destination IP address, and
  // alignment padding". Our layout: 20 (IP) + 12 (shim base) + 4 (inner
  // addr) + 64 + 12 pad = 112. We reproduce it with 12 bytes of payload
  // padding, yielding exactly the paper's wire size.
  ShimHeader shim;
  shim.type = ShimType::kDataForward;
  std::vector<std::uint8_t> payload(64 + 12, 0);
  const auto pkt = make_shim_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                                    shim, payload);
  EXPECT_EQ(pkt.size(), 112u);
}

TEST(Packet, EqualityIsByteWise) {
  const std::vector<std::uint8_t> payload = {1};
  const auto a = make_udp_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 1,
                                 2, payload);
  auto b = a;
  EXPECT_EQ(a, b);
  b.bytes[0] ^= 1;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace nn::net
