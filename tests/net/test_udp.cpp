// UdpSocket hardening coverage: the drive_send_batch seam (EINTR
// retry, partial-send resume) exercised with injected short returns,
// and kernel truncation (MSG_TRUNC) surfaced through recv_batch
// against a real loopback socket.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/udp.hpp"

namespace nn::net {
namespace {

const Ipv4Addr kLoopback(127, 0, 0, 1);

TEST(DriveSendBatch, DeliversEverythingInOneCall) {
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  const std::size_t sent =
      drive_send_batch(8, [&](std::size_t first, std::size_t count) {
        calls.emplace_back(first, count);
        return static_cast<int>(count);
      });
  EXPECT_EQ(sent, 8u);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], std::make_pair(std::size_t{0}, std::size_t{8}));
}

TEST(DriveSendBatch, PartialSendsResumeFromOffsetWithoutResending) {
  // The kernel accepts 3, then 2, then the rest: every retry must start
  // exactly where the previous call left off — a datagram handed to
  // the kernel is never sent twice.
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  const int script[] = {3, 2, 5};
  std::size_t turn = 0;
  const std::size_t sent =
      drive_send_batch(10, [&](std::size_t first, std::size_t count) {
        calls.emplace_back(first, count);
        return script[turn++];
      });
  EXPECT_EQ(sent, 10u);
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 10}, {3, 7}, {5, 5}};
  EXPECT_EQ(calls, expected);
}

TEST(DriveSendBatch, RetriesEintrWithoutLosingPosition) {
  // EINTR means the call was interrupted before delivering anything:
  // retry the same slice, then carry on.
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  std::size_t turn = 0;
  const std::size_t sent =
      drive_send_batch(6, [&](std::size_t first, std::size_t count) {
        calls.emplace_back(first, count);
        switch (turn++) {
          case 0:
            return 4;
          case 1:
            errno = EINTR;
            return -1;
          default:
            return static_cast<int>(count);
        }
      });
  EXPECT_EQ(sent, 6u);
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 6}, {4, 2}, {4, 2}};
  EXPECT_EQ(calls, expected);
}

TEST(DriveSendBatch, HardErrorStopsAndReportsDeliveredCount) {
  std::size_t turn = 0;
  const std::size_t sent =
      drive_send_batch(10, [&](std::size_t, std::size_t) {
        if (turn++ == 0) return 7;
        errno = EMSGSIZE;
        return -1;
      });
  EXPECT_EQ(sent, 7u);  // what made it, not zero and not total
  EXPECT_EQ(turn, 2u);
}

TEST(DriveSendBatch, ZeroProgressBreaksInsteadOfSpinning) {
  std::size_t turn = 0;
  const std::size_t sent = drive_send_batch(4, [&](std::size_t, std::size_t) {
    ++turn;
    return 0;
  });
  EXPECT_EQ(sent, 0u);
  EXPECT_EQ(turn, 1u);  // one look, no livelock
}

TEST(UdpTruncationTest, OversizeDatagramComesBackFlaggedAndClipped) {
  if (!UdpSocket::supported()) GTEST_SKIP() << "no socket layer";
  UdpSocket rx = UdpSocket::bind_loopback(0, false);
  ASSERT_TRUE(rx.valid()) << rx.error();
  rx.set_recv_timeout_ms(2000);
  UdpSocket tx = UdpSocket::open();
  ASSERT_TRUE(tx.valid()) << tx.error();

  std::vector<std::uint8_t> big(200);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(tx.send_to(kLoopback, rx.local_port(), big));

  // A 16-byte receive buffer forces the kernel to clip: the datagram
  // must come back truncated-flagged with exactly the 16-byte prefix,
  // never silently parsed as a short datagram.
  std::vector<UdpDatagram> got;
  ASSERT_EQ(rx.recv_batch(got, 4, 16), 1u);
  EXPECT_TRUE(got[0].truncated);
  ASSERT_EQ(got[0].bytes.size(), 16u);
  EXPECT_TRUE(std::equal(got[0].bytes.begin(), got[0].bytes.end(),
                         big.begin()));

  // A datagram that fits the same small buffer is untouched.
  const std::vector<std::uint8_t> small = {9, 8, 7};
  ASSERT_TRUE(tx.send_to(kLoopback, rx.local_port(), small));
  ASSERT_EQ(rx.recv_batch(got, 4, 16), 1u);
  EXPECT_FALSE(got[0].truncated);
  EXPECT_EQ(got[0].bytes, small);
}

TEST(UdpTruncationTest, DefaultBufferNeverTruncates) {
  if (!UdpSocket::supported()) GTEST_SKIP() << "no socket layer";
  UdpSocket rx = UdpSocket::bind_loopback(0, false);
  ASSERT_TRUE(rx.valid()) << rx.error();
  rx.set_recv_timeout_ms(2000);
  UdpSocket tx = UdpSocket::open();
  ASSERT_TRUE(tx.valid()) << tx.error();
  const std::vector<std::uint8_t> payload(1400, 0xAB);
  ASSERT_TRUE(tx.send_to(kLoopback, rx.local_port(), payload));
  std::vector<UdpDatagram> got;
  ASSERT_EQ(rx.recv_batch(got, 4), 1u);
  EXPECT_FALSE(got[0].truncated);
  EXPECT_EQ(got[0].bytes, payload);
}

TEST(UdpSocketOptionTest, SendBufferRequestSucceedsOnValidSocket) {
  if (!UdpSocket::supported()) GTEST_SKIP() << "no socket layer";
  UdpSocket s = UdpSocket::open();
  ASSERT_TRUE(s.valid()) << s.error();
  EXPECT_TRUE(s.set_send_buffer(1 << 20));
  UdpSocket closed;
  EXPECT_FALSE(closed.set_send_buffer(1 << 20));
}

}  // namespace
}  // namespace nn::net
