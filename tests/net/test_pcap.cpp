// Edge-case/fuzz tests for the minimal pcap reader, in the same spirit
// (and with the same mutation-soup harness style) as test_shim_fuzz:
// malformed captures must be rejected with ParseError — never a crash,
// an out-of-bounds access, or an unbounded allocation. The CI sanitizer
// job enforces the memory half of that contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/chacha.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "util/bytes.hpp"

namespace nn::net {
namespace {

PcapFile sample_file() {
  PcapFile file;
  file.link_type = kLinkTypeRawIp;
  file.snaplen = 2048;
  const Ipv4Addr src(10, 1, 0, 2);
  const Ipv4Addr dst(20, 0, 0, 10);
  std::int64_t ts = 1'700'000'000LL * 1'000'000'000;
  for (const std::size_t wire : {40, 576, 1500, 40, 40}) {
    PcapRecord rec;
    rec.ts_ns = ts;
    ts += 800'000;
    auto pkt = make_udp_packet(src, dst, 5060, 5060,
                               std::vector<std::uint8_t>(
                                   wire - kIpv4HeaderSize - kUdpHeaderSize,
                                   0xAB));
    rec.orig_len = static_cast<std::uint32_t>(pkt.size());
    rec.bytes = std::move(pkt.bytes);
    file.records.push_back(std::move(rec));
  }
  return file;
}

/// Feeds the parser an arbitrary buffer: it must either parse or throw
/// ParseError; any other exception (or a sanitizer report) fails.
bool feed_parser(const std::vector<std::uint8_t>& bytes) {
  try {
    const PcapFile f = parse_pcap(bytes);
    (void)f;
    return true;
  } catch (const ParseError&) {
    return false;
  }
}

TEST(Pcap, RoundTripPreservesEverything) {
  const PcapFile file = sample_file();
  const auto bytes = serialize_pcap(file);
  const PcapFile back = parse_pcap(bytes);
  EXPECT_EQ(back, file);
}

TEST(Pcap, MicrosecondMagicTruncatesToMicroseconds) {
  // Rewrite the serialized nanosecond magic to the classic microsecond
  // one; timestamps must come back floored to microsecond resolution.
  PcapFile file = sample_file();
  file.records[0].ts_ns += 123;  // sub-microsecond part
  auto bytes = serialize_pcap(file);
  bytes[0] = 0xD4;
  bytes[1] = 0xC3;
  bytes[2] = 0xB2;
  bytes[3] = 0xA1;
  // The subsecond field now holds nanoseconds but is read as µs; that
  // only matters for this test's expectation if we also rewrite it.
  // Instead just assert the parse succeeds and keeps record count.
  const PcapFile back = parse_pcap(bytes);
  ASSERT_EQ(back.records.size(), file.records.size());
}

TEST(Pcap, BigEndianCaptureParses) {
  // Hand-build a big-endian microsecond capture with ByteWriter (which
  // is natively big-endian): one 4-byte record.
  ByteWriter w;
  w.u32(0xA1B2C3D4);  // magic, big-endian on the wire => swapped reader
  w.u16(2).u16(4);
  w.u32(0).u32(0);
  w.u32(65535);            // snaplen
  w.u32(kLinkTypeRawIp);   // linktype
  w.u32(1000).u32(500);    // ts 1000s + 500us
  w.u32(4).u32(4);         // caplen, orig_len
  w.u8(0xDE).u8(0xAD).u8(0xBE).u8(0xEF);
  auto bytes = w.take();

  const PcapFile file = parse_pcap(bytes);
  EXPECT_EQ(file.link_type, kLinkTypeRawIp);
  EXPECT_EQ(file.snaplen, 65535u);
  ASSERT_EQ(file.records.size(), 1u);
  EXPECT_EQ(file.records[0].ts_ns, 1000LL * 1'000'000'000 + 500'000);
  EXPECT_EQ(file.records[0].orig_len, 4u);
  EXPECT_EQ(file.records[0].bytes,
            (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(Pcap, TruncationSweepRejectsEverythingOffARecordBoundary) {
  const auto whole = serialize_pcap(sample_file());
  // Record boundaries: offsets at which a prefix is itself a valid
  // (shorter) capture.
  std::vector<std::size_t> boundaries{kPcapGlobalHeaderSize};
  {
    const PcapFile file = parse_pcap(whole);
    std::size_t off = kPcapGlobalHeaderSize;
    for (const auto& rec : file.records) {
      off += kPcapRecordHeaderSize + rec.bytes.size();
      boundaries.push_back(off);
    }
  }
  for (std::size_t len = 0; len <= whole.size(); ++len) {
    const std::vector<std::uint8_t> prefix(whole.begin(),
                                           whole.begin() +
                                               static_cast<long>(len));
    const bool ok = feed_parser(prefix);
    const bool on_boundary =
        std::find(boundaries.begin(), boundaries.end(), len) !=
        boundaries.end();
    EXPECT_EQ(ok, on_boundary) << "prefix length " << len;
  }
}

TEST(Pcap, TruncatedGlobalHeaderRejected) {
  for (std::size_t len = 0; len < kPcapGlobalHeaderSize; ++len) {
    EXPECT_THROW((void)parse_pcap(std::vector<std::uint8_t>(len, 0xA1)),
                 ParseError)
        << len;
  }
}

TEST(Pcap, BadMagicRejected) {
  auto bytes = serialize_pcap(sample_file());
  bytes[0] ^= 0xFF;
  EXPECT_THROW((void)parse_pcap(bytes), ParseError);
}

TEST(Pcap, CaplenBeyondSnaplenRejected) {
  // A record claiming more captured bytes than the capture's snaplen is
  // structurally impossible; a writer can only produce it by lying.
  PcapFile file = sample_file();
  const auto good = serialize_pcap(file);
  PcapFile small = file;
  small.snaplen = 100;  // below the 576/1500-byte records
  const auto truncated = serialize_pcap(small);
  // The writer clamps, so the serialized form re-parses...
  const PcapFile back = parse_pcap(truncated);
  for (const auto& rec : back.records) {
    EXPECT_LE(rec.bytes.size(), 100u);
    EXPECT_GE(rec.orig_len, rec.bytes.size());
  }
  // ...but hand-shrinking the snaplen field of an untruncated capture
  // must be rejected at the first oversized record.
  auto lying = good;
  lying[16] = 50;  // snaplen (little-endian u32 at offset 16)
  lying[17] = 0;
  lying[18] = 0;
  lying[19] = 0;
  EXPECT_THROW((void)parse_pcap(lying), ParseError);
}

TEST(Pcap, OrigLenSmallerThanCaplenRejected) {
  auto bytes = serialize_pcap(sample_file());
  // First record header starts at 24; orig_len is its fourth u32.
  const std::size_t orig_off = kPcapGlobalHeaderSize + 12;
  bytes[orig_off] = 1;  // 40-byte record now claims orig_len == 1
  bytes[orig_off + 1] = 0;
  bytes[orig_off + 2] = 0;
  bytes[orig_off + 3] = 0;
  EXPECT_THROW((void)parse_pcap(bytes), ParseError);
}

TEST(Pcap, AbsurdCaplenRejectedWithoutAllocating) {
  ByteWriter w;  // big-endian capture, one lying record header
  w.u32(0xA1B2C3D4);
  w.u16(2).u16(4);
  w.u32(0).u32(0);
  w.u32(0xFFFFFFFF);  // snaplen wide open
  w.u32(kLinkTypeRawIp);
  w.u32(0).u32(0);
  w.u32(0x40000000);  // 1 GiB caplen
  w.u32(0x40000000);
  EXPECT_THROW((void)parse_pcap(w.take()), ParseError);
}

TEST(Pcap, ZeroLengthRecordsAreKept) {
  PcapFile file;
  file.snaplen = 64;
  PcapRecord rec;
  rec.ts_ns = 5;
  rec.orig_len = 1500;  // fully truncated capture of a 1500B packet
  file.records.push_back(rec);
  const PcapFile back = parse_pcap(serialize_pcap(file));
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_TRUE(back.records[0].bytes.empty());
  EXPECT_EQ(back.records[0].orig_len, 1500u);
  // Replay layers skip them at the IPv4 step.
  EXPECT_FALSE(ipv4_of_record(back, back.records[0]).has_value());
}

TEST(Pcap, Ipv4OfRecordHandlesLinkTypes) {
  const PcapFile raw = sample_file();
  const auto ip = ipv4_of_record(raw, raw.records[0]);
  ASSERT_TRUE(ip.has_value());
  EXPECT_NO_THROW((void)parse_packet(*ip));

  // Ethernet framing: 14-byte header, EtherType 0x0800.
  PcapFile eth = raw;
  eth.link_type = kLinkTypeEthernet;
  for (auto& rec : eth.records) {
    std::vector<std::uint8_t> framed(14, 0x00);
    framed[12] = 0x08;
    framed[13] = 0x00;
    framed.insert(framed.end(), rec.bytes.begin(), rec.bytes.end());
    rec.bytes = std::move(framed);
    rec.orig_len += 14;
  }
  const auto eth_ip = ipv4_of_record(eth, eth.records[0]);
  ASSERT_TRUE(eth_ip.has_value());
  EXPECT_NO_THROW((void)parse_packet(*eth_ip));

  // Non-IP EtherType is skipped, not misparsed.
  PcapFile arp = eth;
  arp.records[0].bytes[12] = 0x08;
  arp.records[0].bytes[13] = 0x06;
  EXPECT_FALSE(ipv4_of_record(arp, arp.records[0]).has_value());

  PcapFile unknown = raw;
  unknown.link_type = 147;  // private use
  EXPECT_FALSE(ipv4_of_record(unknown, unknown.records[0]).has_value());
}

TEST(Pcap, SingleByteMutationSweep) {
  const auto whole = serialize_pcap(sample_file());
  for (std::size_t pos = 0; pos < whole.size(); ++pos) {
    for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
      auto mutated = whole;
      mutated[pos] ^= mask;
      (void)feed_parser(mutated);  // must not crash; verdict is free
    }
  }
}

TEST(Pcap, RandomBufferSoup) {
  crypto::ChaChaRng rng(0x9CA9);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> soup(rng.next_u64() % 128);
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)feed_parser(soup);
  }
}

TEST(Pcap, FileIoRoundTrip) {
  const PcapFile file = sample_file();
  const std::string path = testing::TempDir() + "/nn_test_roundtrip.pcap";
  write_pcap_file(path, file);
  EXPECT_EQ(read_pcap_file(path), file);
  EXPECT_THROW((void)read_pcap_file(path + ".does-not-exist"), ParseError);
}

#ifdef NN_PCAP_FIXTURE
TEST(Pcap, CommittedFixtureHasTheDocumentedShape) {
  // The fixture examples/trace_replay replays: raw-IPv4 link type,
  // classic IMIX at exactly 7:4:1 over 48 records, every record a
  // parseable UDP datagram.
  const PcapFile file = read_pcap_file(NN_PCAP_FIXTURE);
  EXPECT_EQ(file.link_type, kLinkTypeRawIp);
  ASSERT_EQ(file.records.size(), 48u);
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& rec : file.records) {
    const auto ip = ipv4_of_record(file, rec);
    ASSERT_TRUE(ip.has_value());
    const ParsedPacket p = parse_packet(*ip);
    ASSERT_TRUE(p.udp.has_value());
    switch (rec.orig_len) {
      case 40: ++counts[0]; break;
      case 576: ++counts[1]; break;
      case 1500: ++counts[2]; break;
      default: FAIL() << "unexpected wire size " << rec.orig_len;
    }
    EXPECT_EQ(rec.bytes.size(), rec.orig_len);
  }
  EXPECT_EQ(counts[0], 28u);  // 7 :
  EXPECT_EQ(counts[1], 16u);  // 4 :
  EXPECT_EQ(counts[2], 4u);   // 1
}
#endif

}  // namespace
}  // namespace nn::net
