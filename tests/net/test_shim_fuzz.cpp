// Negative/fuzz tests for the shim wire parsers: truncated,
// magic-corrupted, and length-lying buffers must be rejected with
// ParseError — never a crash or out-of-bounds access. The CI sanitizer
// job (ASan+UBSan) runs these with memory checking on, which is where
// the "without UB" half of the contract is enforced.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/chacha.hpp"
#include "net/packet.hpp"
#include "net/shim.hpp"
#include "util/bytes.hpp"

namespace nn::net {
namespace {

const Ipv4Addr kSrc(10, 1, 0, 2);
const Ipv4Addr kDst(200, 0, 0, 1);

net::Packet sample_forward(std::uint8_t flags) {
  ShimHeader shim;
  shim.type = ShimType::kDataForward;
  shim.flags = flags;
  shim.key_epoch = 1;
  shim.nonce = 0x1122334455667788ULL;
  shim.inner_addr = 0xDEADBEEF;
  return make_shim_packet(kSrc, kDst, shim,
                          std::vector<std::uint8_t>(64, 0xE5));
}

net::Packet sample_key_setup() {
  ShimHeader shim;
  shim.type = ShimType::kKeySetup;
  shim.nonce = 0xAABB;
  return make_shim_packet(kSrc, kDst, shim,
                          std::vector<std::uint8_t>(40, 0x31));
}

/// Exercises both parsers on an arbitrary buffer; returns whether each
/// accepted. A parser may accept or throw ParseError — anything else
/// (any other exception, or memory errors under the sanitizers) fails.
std::pair<bool, bool> feed_parsers(const std::vector<std::uint8_t>& bytes) {
  bool view_ok = false;
  bool parse_ok = false;
  std::vector<std::uint8_t> mut = bytes;
  try {
    const ShimPacketView view(mut);
    // Touch every unchecked accessor the datapath uses.
    (void)view.type();
    (void)view.flags();
    (void)view.key_epoch();
    (void)view.nonce();
    (void)view.src();
    (void)view.dst();
    if (shim_type_has_inner_addr(view.type())) (void)view.inner_addr();
    if (view.has_rekey_space()) (void)view.rekey();
    (void)view.payload();
    view_ok = true;
  } catch (const ParseError&) {
  }
  try {
    const ParsedPacket p = parse_packet(bytes);
    (void)p;
    parse_ok = true;
  } catch (const ParseError&) {
  }
  return {view_ok, parse_ok};
}

TEST(ShimFuzz, TruncationSweepRejectsOrParses) {
  for (const auto& whole :
       {sample_forward(0), sample_forward(ShimFlags::kKeyRequest),
        sample_key_setup()}) {
    std::size_t view_rejects = 0;
    for (std::size_t len = 0; len < whole.size(); ++len) {
      const std::vector<std::uint8_t> prefix(whole.bytes.begin(),
                                             whole.bytes.begin() +
                                                 static_cast<long>(len));
      const auto [view_ok, parse_ok] = feed_parsers(prefix);
      // parse_packet cross-checks total_length, so every truncation is
      // detected; the view only needs the shim fields, so payload-only
      // truncation may legitimately pass.
      EXPECT_FALSE(parse_ok) << "truncated to " << len;
      if (!view_ok) ++view_rejects;
    }
    EXPECT_GT(view_rejects, 0u);
    const auto [view_ok, parse_ok] = feed_parsers(whole.bytes);
    EXPECT_TRUE(view_ok);
    EXPECT_TRUE(parse_ok);
  }
}

TEST(ShimFuzz, TypeByteSweepOnlyKnownTypesParse) {
  const auto whole = sample_forward(0);
  for (int t = 0; t < 256; ++t) {
    auto mutated = whole.bytes;
    mutated[kIpv4HeaderSize] = static_cast<std::uint8_t>(t);
    const auto [view_ok, parse_ok] = feed_parsers(mutated);
    if (t < 1 || t > 8) {
      EXPECT_FALSE(view_ok) << "type " << t;
      EXPECT_FALSE(parse_ok) << "type " << t;
    }
  }
}

TEST(ShimFuzz, CorruptedIpMagicRejected) {
  const auto whole = sample_forward(0);
  {
    auto mutated = whole.bytes;
    mutated[0] = 0x65;  // version 6
    const auto [view_ok, parse_ok] = feed_parsers(mutated);
    EXPECT_FALSE(view_ok);
    EXPECT_FALSE(parse_ok);
  }
  {
    auto mutated = whole.bytes;
    mutated[9] = 17;  // protocol: UDP, not shim
    const auto [view_ok, parse_ok] = feed_parsers(mutated);
    EXPECT_FALSE(view_ok);
    EXPECT_FALSE(parse_ok);
  }
}

TEST(ShimFuzz, LyingTotalLengthRejected) {
  const auto whole = sample_forward(0);
  for (const int delta : {-20, -1, 1, 37}) {
    auto mutated = whole.bytes;
    const std::uint16_t lying = static_cast<std::uint16_t>(
        static_cast<int>(whole.size()) + delta);
    mutated[2] = static_cast<std::uint8_t>(lying >> 8);
    mutated[3] = static_cast<std::uint8_t>(lying);
    // Recompute the header checksum so the length check itself (not the
    // checksum) is what rejects the packet.
    mutated[10] = 0;
    mutated[11] = 0;
    const std::uint16_t sum = internet_checksum(
        std::span<const std::uint8_t>(mutated).subspan(0, kIpv4HeaderSize));
    mutated[10] = static_cast<std::uint8_t>(sum >> 8);
    mutated[11] = static_cast<std::uint8_t>(sum);
    EXPECT_THROW((void)parse_packet(mutated), ParseError) << delta;
  }
}

TEST(ShimFuzz, LyingRekeyFlagOnShortBufferRejected) {
  // The flags byte promises a 26-byte rekey extension the buffer does
  // not carry: the view's structural validation must refuse it.
  auto lying = sample_forward(0);
  lying.bytes[kIpv4HeaderSize + 1] = ShimFlags::kKeyRequest;
  std::vector<std::uint8_t> short_buf(
      lying.bytes.begin(),
      lying.bytes.begin() + kIpv4HeaderSize + kShimBaseSize +
          kShimInnerAddrSize + 4);
  EXPECT_THROW((void)ShimPacketView(short_buf), ParseError);
}

TEST(ShimFuzz, SingleByteMutationSweep) {
  for (const auto& whole :
       {sample_forward(ShimFlags::kKeyRequest), sample_key_setup()}) {
    for (std::size_t pos = 0; pos < whole.size(); ++pos) {
      for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
        auto mutated = whole.bytes;
        mutated[pos] ^= mask;
        (void)feed_parsers(mutated);  // must not crash; verdict is free
      }
    }
  }
}

TEST(ShimFuzz, RandomBufferSoup) {
  crypto::ChaChaRng rng(0xF0220);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> soup(rng.next_u64() % 96);
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)feed_parsers(soup);
  }
}

}  // namespace
}  // namespace nn::net
