// Published known-answer vectors, run under every backend available on
// this machine. Cross-backend agreement (test_backend_equivalence.cpp)
// proves the backends match *each other*; these vectors pin them to
// NIST's published outputs so a shared bug cannot hide:
//
//  * AES-128 ECB — NIST SP 800-38A Appendix F.1.1 / F.1.2
//  * AES-128 CBC — NIST SP 800-38A Appendix F.2.1 / F.2.2
//  * AES-128 CMAC — NIST SP 800-38B Appendix D.1 (= RFC 4493 §4)
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/aes_backend.hpp"
#include "crypto/aes_modes.hpp"
#include "util/bytes.hpp"

namespace nn::crypto {
namespace {

// SP 800-38A / 38B vectors all share this key and plaintext corpus.
constexpr std::string_view kKeyHex = "2b7e151628aed2a6abf7158809cf4f3c";
constexpr std::string_view kPlainHex =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";

AesKey key_from_hex(std::string_view hex) {
  const auto bytes = nn::from_hex(hex);
  AesKey out{};
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return out;
}

AesBlock block_from_hex(std::string_view hex) {
  const auto bytes = nn::from_hex(hex);
  AesBlock out{};
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return out;
}

class NistVectors : public ::testing::TestWithParam<const AesBackendOps*> {
 protected:
  const AesBackendOps& ops_ = *GetParam();
};

std::string backend_param_name(
    const ::testing::TestParamInfo<const AesBackendOps*>& info) {
  return std::string(info.param->name);
}

// SP 800-38A F.1.1 (ECB-AES128.Encrypt) / F.1.2 (ECB-AES128.Decrypt),
// all four blocks in one batched call.
TEST_P(NistVectors, Sp800_38a_Ecb) {
  const Aes128 aes(key_from_hex(kKeyHex), ops_);
  const auto pt = nn::from_hex(kPlainHex);
  const auto expected = nn::from_hex(
      "3ad77bb40d7a3660a89ecaf32466ef97"
      "f5d3d58503b9699de785895a96fdbaaf"
      "43b1cd7f598ece23881b00e3ed030688"
      "7b0c785e27e8ad3f8223207104725dd4");
  std::vector<std::uint8_t> ct(pt.size());
  aes.encrypt_blocks(pt.data(), ct.data(), pt.size() / kAesBlockSize);
  EXPECT_EQ(nn::to_hex(ct), nn::to_hex(expected));
  std::vector<std::uint8_t> back(ct.size());
  aes.decrypt_blocks(ct.data(), back.data(), ct.size() / kAesBlockSize);
  EXPECT_EQ(nn::to_hex(back), kPlainHex);
}

// SP 800-38A F.2.1 (CBC-AES128.Encrypt) / F.2.2 (CBC-AES128.Decrypt).
TEST_P(NistVectors, Sp800_38a_Cbc) {
  const Cbc cbc(key_from_hex(kKeyHex), ops_);
  const AesBlock iv = block_from_hex("000102030405060708090a0b0c0d0e0f");
  const auto expected = nn::from_hex(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7");
  std::vector<std::uint8_t> data = nn::from_hex(kPlainHex);
  cbc.encrypt(iv, data);
  EXPECT_EQ(nn::to_hex(data), nn::to_hex(expected));
  cbc.decrypt(iv, data);
  EXPECT_EQ(nn::to_hex(data), kPlainHex);
}

// SP 800-38B Appendix D.1 (CMAC-AES128): Mlen = 0, 128, 320, 512 bits.
TEST_P(NistVectors, Sp800_38b_Cmac) {
  const Cmac cmac(key_from_hex(kKeyHex), ops_);
  const auto corpus = nn::from_hex(kPlainHex);
  const struct {
    std::size_t len;
    std::string_view tag;
  } cases[] = {
      {0, "bb1d6929e95937287fa37d129b756746"},
      {16, "070a16b46b4d4144f79bdd9dd04a287c"},
      {40, "dfa66747de9ae63030ca32611497c827"},
      {64, "51f0bebf7e3b9d92fc49741779363cfe"},
  };
  for (const auto& c : cases) {
    const std::span<const std::uint8_t> msg(corpus.data(), c.len);
    EXPECT_EQ(nn::to_hex(cmac.mac(msg)), c.tag) << "Mlen=" << c.len * 8;
    // The batched entry point must hit the same published tag.
    AesBlock tag{};
    cmac.mac_batch(corpus.data(), c.len, 1, &tag);
    EXPECT_EQ(nn::to_hex(tag), c.tag) << "batched Mlen=" << c.len * 8;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, NistVectors,
                         ::testing::ValuesIn(available_backends().begin(),
                                             available_backends().end()),
                         backend_param_name);

}  // namespace
}  // namespace nn::crypto
