#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace nn::crypto {
namespace {

AesBlock block_from_hex(std::string_view hex) {
  const auto bytes = nn::from_hex(hex);
  AesBlock out{};
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return out;
}

AesKey key_from_hex(std::string_view hex) {
  const auto bytes = nn::from_hex(hex);
  AesKey out{};
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return out;
}

// FIPS-197 Appendix C.1 known-answer test.
TEST(Aes128, Fips197AppendixC1) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto pt = block_from_hex("00112233445566778899aabbccddeeff");
  const auto ct = aes.encrypt(pt);
  EXPECT_EQ(nn::to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes.decrypt(ct), pt);
}

// NIST SP 800-38A F.1.1 (ECB-AES128 block 1).
TEST(Aes128, Sp800_38aEcbVector) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto pt = block_from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(nn::to_hex(aes.encrypt(pt)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

// All four SP 800-38A ECB-AES128 blocks.
TEST(Aes128, Sp800_38aEcbAllBlocks) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const char* pts[] = {
      "6bc1bee22e409f96e93d7e117393172a", "ae2d8a571e03ac9c9eb76fac45af8e51",
      "30c81c46a35ce411e5fbc1191a0a52ef", "f69f2445df4f9b17ad2b417be66c3710"};
  const char* cts[] = {
      "3ad77bb40d7a3660a89ecaf32466ef97", "f5d3d58503b9699de785895a96fdbaaf",
      "43b1cd7f598ece23881b00e3ed030688", "7b0c785e27e8ad3f8223207104725dd4"};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(nn::to_hex(aes.encrypt(block_from_hex(pts[i]))), cts[i]);
  }
}

TEST(Aes128, DecryptInvertsEncryptRandom) {
  SplitMix64 rng(101);
  for (int i = 0; i < 200; ++i) {
    AesKey key{};
    AesBlock pt{};
    rng.fill(key);
    rng.fill(pt);
    const Aes128 aes(key);
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  }
}

TEST(Aes128, DifferentKeysGiveDifferentCiphertext) {
  const auto pt = block_from_hex("00000000000000000000000000000000");
  const Aes128 a(key_from_hex("00000000000000000000000000000000"));
  const Aes128 b(key_from_hex("00000000000000000000000000000001"));
  EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

TEST(Aes128, SpanConstructorValidatesLength) {
  const std::vector<std::uint8_t> short_key(15, 0);
  EXPECT_THROW(Aes128{std::span<const std::uint8_t>(short_key)},
               std::invalid_argument);
  const std::vector<std::uint8_t> ok_key(16, 0);
  EXPECT_NO_THROW(Aes128{std::span<const std::uint8_t>(ok_key)});
}

// Avalanche sanity: flipping one plaintext bit changes ~half the output.
TEST(Aes128, AvalancheEffect) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  auto pt = block_from_hex("6bc1bee22e409f96e93d7e117393172a");
  const auto ct1 = aes.encrypt(pt);
  pt[0] ^= 0x01;
  const auto ct2 = aes.encrypt(pt);
  int diff_bits = 0;
  for (std::size_t i = 0; i < kAesBlockSize; ++i) {
    diff_bits += __builtin_popcount(ct1[i] ^ ct2[i]);
  }
  EXPECT_GT(diff_bits, 32);
  EXPECT_LT(diff_bits, 96);
}

}  // namespace
}  // namespace nn::crypto
