// Cross-backend equivalence: every backend available on this machine
// must produce byte-identical output to the portable reference for
// every entry point, key, block count, alignment, and — through the
// neutralizer datapath — every packet. On AES-NI hardware this pits
// the hardware pipeline against the table code; on other machines the
// suite degenerates to portable-vs-portable and still checks the batch
// entry points against their scalar definitions.
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/neutralizer.hpp"
#include "crypto/aes_backend.hpp"
#include "crypto/aes_modes.hpp"
#include "net/shim.hpp"
#include "util/rng.hpp"

namespace nn::crypto {
namespace {

class BackendEquivalence
    : public ::testing::TestWithParam<const AesBackendOps*> {
 protected:
  const AesBackendOps& reference_ = portable_backend();
  const AesBackendOps& candidate_ = *GetParam();
};

std::string backend_param_name(
    const ::testing::TestParamInfo<const AesBackendOps*>& info) {
  return std::string(info.param->name);
}

TEST_P(BackendEquivalence, SingleBlockEncryptDecrypt) {
  SplitMix64 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    AesKey key{};
    AesBlock pt{};
    rng.fill(key);
    rng.fill(pt);
    const Aes128 ref(key, reference_);
    const Aes128 cand(key, candidate_);
    const AesBlock ct = ref.encrypt(pt);
    EXPECT_EQ(cand.encrypt(pt), ct);
    EXPECT_EQ(cand.decrypt(ct), pt);
    EXPECT_EQ(ref.decrypt(ct), pt);
  }
}

TEST_P(BackendEquivalence, EcbBatchAllBlockCounts) {
  SplitMix64 rng(7);
  AesKey key{};
  rng.fill(key);
  const Aes128 ref(key, reference_);
  const Aes128 cand(key, candidate_);
  // Counts straddling the 8-lane pipeline width: remainders, one full
  // batch, full batches + remainder.
  for (std::size_t n : {1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 64u, 100u}) {
    std::vector<std::uint8_t> pt(16 * n);
    rng.fill(pt);
    std::vector<std::uint8_t> a(16 * n);
    std::vector<std::uint8_t> b(16 * n);
    ref.encrypt_blocks(pt.data(), a.data(), n);
    cand.encrypt_blocks(pt.data(), b.data(), n);
    EXPECT_EQ(a, b) << "encrypt n=" << n;
    std::vector<std::uint8_t> back(16 * n);
    cand.decrypt_blocks(b.data(), back.data(), n);
    EXPECT_EQ(back, pt) << "decrypt n=" << n;
    // In-place operation must match out-of-place.
    cand.encrypt_blocks(pt.data(), pt.data(), n);
    EXPECT_EQ(pt, b) << "in-place n=" << n;
  }
}

TEST_P(BackendEquivalence, MultiKeyEcbMatchesPerKeySingleBlock) {
  // encrypt_blocks_multi must equal n independent single-schedule
  // encryptions — every block under its own key, counts straddling the
  // 8-lane pipeline, in-place included. Schedules are expanded by the
  // backend that consumes them (they are not interchangeable).
  SplitMix64 rng(17);
  for (std::size_t n : {1u, 2u, 7u, 8u, 9u, 16u, 17u, 33u}) {
    std::vector<AesKey> keys(n);
    std::vector<std::uint8_t> pt(16 * n);
    for (auto& k : keys) rng.fill(k);
    rng.fill(pt);

    std::vector<AesSchedule> cand_scheds(n);
    for (std::size_t i = 0; i < n; ++i) {
      candidate_.expand_key(keys[i].data(), cand_scheds[i]);
    }
    std::vector<std::uint8_t> got(16 * n);
    candidate_.encrypt_blocks_multi(cand_scheds.data(), pt.data(), got.data(),
                                    n);

    std::vector<std::uint8_t> want(16 * n);
    for (std::size_t i = 0; i < n; ++i) {
      AesSchedule ref_sched;
      reference_.expand_key(keys[i].data(), ref_sched);
      reference_.encrypt_blocks(ref_sched, pt.data() + 16 * i,
                                want.data() + 16 * i, 1);
    }
    EXPECT_EQ(got, want) << "n=" << n;

    // In-place must match out-of-place.
    std::vector<std::uint8_t> in_place = pt;
    candidate_.encrypt_blocks_multi(cand_scheds.data(), in_place.data(),
                                    in_place.data(), n);
    EXPECT_EQ(in_place, want) << "in-place n=" << n;
  }
}

TEST_P(BackendEquivalence, CbcDecryptMatchesAndInverts) {
  SplitMix64 rng(11);
  AesKey key{};
  rng.fill(key);
  for (std::size_t n : {1u, 2u, 7u, 8u, 9u, 24u, 32u, 33u}) {
    AesBlock iv{};
    rng.fill(iv);
    std::vector<std::uint8_t> plain(16 * n);
    rng.fill(plain);
    // Encrypt with the reference (CBC encrypt is serial everywhere),
    // decrypt with both.
    std::vector<std::uint8_t> ct = plain;
    Cbc(key, reference_).encrypt(iv, ct);
    std::vector<std::uint8_t> a = ct;
    std::vector<std::uint8_t> b = ct;
    Cbc(key, reference_).decrypt(iv, a);
    Cbc(key, candidate_).decrypt(iv, b);
    EXPECT_EQ(a, plain) << "n=" << n;
    EXPECT_EQ(b, plain) << "n=" << n;
  }
}

TEST_P(BackendEquivalence, UnalignedBuffers) {
  // Batch entry points take raw pointers; nothing may assume 16-byte
  // alignment. Offset the working buffers by every sub-word shift.
  SplitMix64 rng(13);
  AesKey key{};
  rng.fill(key);
  const Aes128 ref(key, reference_);
  const Aes128 cand(key, candidate_);
  constexpr std::size_t kBlocks = 11;
  for (std::size_t offset = 1; offset <= 15; ++offset) {
    std::vector<std::uint8_t> backing(16 * kBlocks + 32);
    rng.fill(backing);
    std::uint8_t* pt = backing.data() + offset;
    std::vector<std::uint8_t> a(16 * kBlocks);
    std::vector<std::uint8_t> out_backing(16 * kBlocks + 32);
    std::uint8_t* b = out_backing.data() + offset;
    ref.encrypt_blocks(pt, a.data(), kBlocks);
    cand.encrypt_blocks(pt, b, kBlocks);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b)) << "offset=" << offset;

    AesBlock iv{};
    rng.fill(iv);
    std::vector<std::uint8_t> cbc_a(a);
    ref.cbc_decrypt(iv, cbc_a.data(), cbc_a.data(), kBlocks);
    cand.cbc_decrypt(iv, b, b, kBlocks);
    EXPECT_TRUE(std::equal(cbc_a.begin(), cbc_a.end(), b))
        << "cbc offset=" << offset;
  }
}

TEST_P(BackendEquivalence, CtrAllLengthsAndOffsets) {
  SplitMix64 rng(17);
  AesKey key{};
  rng.fill(key);
  std::array<std::uint8_t, 12> iv{};
  rng.fill(iv);
  const Ctr ref(key, reference_);
  const Ctr cand(key, candidate_);
  for (std::size_t len : {0u, 1u, 4u, 15u, 16u, 17u, 112u, 127u, 128u,
                          129u, 1000u}) {
    std::vector<std::uint8_t> data(len + 3);
    rng.fill(data);
    // Unaligned start as seen by real packet payloads.
    std::vector<std::uint8_t> a(data);
    std::vector<std::uint8_t> b(data);
    ref.crypt(iv, std::span<std::uint8_t>(a.data() + 3, len));
    cand.crypt(iv, std::span<std::uint8_t>(b.data() + 3, len));
    EXPECT_EQ(a, b) << "len=" << len;
    // Round trip through the candidate.
    cand.crypt(iv, std::span<std::uint8_t>(b.data() + 3, len));
    EXPECT_EQ(b, data) << "len=" << len;
  }
}

TEST_P(BackendEquivalence, CmacAllLengths) {
  SplitMix64 rng(19);
  AesKey key{};
  rng.fill(key);
  const Cmac ref(key, reference_);
  const Cmac cand(key, candidate_);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 32u, 33u, 64u, 112u,
                          255u}) {
    std::vector<std::uint8_t> msg(len);
    rng.fill(msg);
    EXPECT_EQ(ref.mac(msg), cand.mac(msg)) << "len=" << len;
  }
}

TEST_P(BackendEquivalence, CmacBatchMatchesSerial) {
  SplitMix64 rng(23);
  AesKey key{};
  rng.fill(key);
  const Cmac cand(key, candidate_);
  for (std::size_t msg_len : {16u, 112u, 113u, 48u}) {
    for (std::size_t n : {1u, 2u, 8u, 9u, 33u}) {
      std::vector<std::uint8_t> msgs(msg_len * n);
      rng.fill(msgs);
      std::vector<AesBlock> tags(n);
      cand.mac_batch(msgs.data(), msg_len, n, tags.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(tags[i],
                  cand.mac({msgs.data() + i * msg_len, msg_len}))
            << "msg_len=" << msg_len << " i=" << i;
      }
    }
  }
}

TEST_P(BackendEquivalence, KeyDerivationMatches) {
  SplitMix64 rng(29);
  AesKey km{};
  rng.fill(km);
  const Cmac ref(km, reference_);
  const Cmac cand(km, candidate_);
  std::vector<KeyDeriveRequest> reqs;
  for (int i = 0; i < 37; ++i) {
    reqs.push_back({rng.next_u64(),
                    static_cast<std::uint32_t>(rng.next_u64()), i % 3 == 0});
  }
  std::vector<AesKey> batch(reqs.size());
  derive_keys_batch(cand, reqs, batch.data());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const AesKey scalar =
        reqs[i].lease ? derive_lease_key(ref, reqs[i].nonce)
                      : derive_source_key(ref, reqs[i].nonce, reqs[i].src_ip);
    EXPECT_EQ(batch[i], scalar) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendEquivalence,
                         ::testing::ValuesIn(available_backends().begin(),
                                             available_backends().end()),
                         backend_param_name);

// --- dispatch behavior ----------------------------------------------

TEST(BackendDispatch, PortableAlwaysAvailable) {
  ASSERT_GE(available_backends().size(), 1u);
  EXPECT_EQ(available_backends()[0]->name, "portable");
  EXPECT_EQ(backend_by_name("portable"), &portable_backend());
  EXPECT_EQ(backend_by_name("nonsense"), nullptr);
}

TEST(BackendDispatch, EnvOverrideHonored) {
  // CI's forced-portable job sets NN_AES_BACKEND=portable on AES-NI
  // runners; this assertion is what keeps that contract honest. With
  // the variable unset the fastest available backend must win.
  const char* forced = std::getenv("NN_AES_BACKEND");
  if (forced != nullptr && *forced != '\0' &&
      std::string_view(forced) != "auto") {
    if (const AesBackendOps* want = backend_by_name(forced)) {
      EXPECT_EQ(&active_backend(), want);
    } else {
      EXPECT_EQ(&active_backend(), &portable_backend());
    }
  } else if (aesni_backend() != nullptr) {
    EXPECT_EQ(&active_backend(), aesni_backend());
  } else {
    EXPECT_EQ(&active_backend(), &portable_backend());
  }
}

TEST(BackendDispatch, ScopedOverrideSwapsAndRestores) {
  const AesBackendOps* before = &active_backend();
  {
    ScopedBackendOverride force(portable_backend());
    EXPECT_EQ(&active_backend(), &portable_backend());
  }
  EXPECT_EQ(&active_backend(), before);
}

// --- full-datapath equivalence ---------------------------------------

// The neutralizer must emit byte-identical packets no matter which
// backend the process selected. Runs the paper's forward workload under
// every available backend and diffs the wire bytes.
TEST(BackendDispatch, NeutralizerOutputIdenticalAcrossBackends) {
  const net::Ipv4Addr anycast(200, 0, 0, 1);
  const net::Ipv4Addr source(10, 1, 0, 2);
  const net::Ipv4Addr customer(20, 0, 0, 10);
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = anycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  crypto::AesKey root{};
  root.fill(0xD0);

  std::vector<std::vector<std::uint8_t>> outputs_per_backend;
  std::vector<core::NeutralizerStats> stats_per_backend;
  for (const AesBackendOps* ops : available_backends()) {
    ScopedBackendOverride force(*ops);
    core::Neutralizer service(cfg, root);
    const core::MasterKeySchedule sched(root);

    std::vector<net::Packet> batch;
    for (std::uint64_t n = 1; n <= 32; ++n) {
      const AesKey ks =
          derive_source_key(sched.current_key(0), n, source.value());
      net::ShimHeader shim;
      shim.type = net::ShimType::kDataForward;
      shim.flags = n % 4 == 0 ? net::ShimFlags::kKeyRequest : 0;
      shim.key_epoch = 0;
      shim.nonce = n;
      shim.inner_addr = crypt_address(ks, n, false, customer.value());
      std::vector<std::uint8_t> payload(64, 0xE5);
      batch.push_back(net::make_shim_packet(source, anycast, shim, payload));
    }
    const std::size_t count =
        service.process_batch({batch.data(), batch.size()}, 0);
    std::vector<std::uint8_t> wire;
    for (std::size_t i = 0; i < count; ++i) {
      wire.insert(wire.end(), batch[i].bytes.begin(), batch[i].bytes.end());
    }
    outputs_per_backend.push_back(std::move(wire));
    stats_per_backend.push_back(service.stats());
  }
  for (std::size_t i = 1; i < outputs_per_backend.size(); ++i) {
    EXPECT_EQ(outputs_per_backend[i], outputs_per_backend[0])
        << "backend " << available_backends()[i]->name;
    EXPECT_EQ(stats_per_backend[i], stats_per_backend[0]);
  }
}

}  // namespace
}  // namespace nn::crypto
