#include "crypto/chacha.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace nn::crypto {
namespace {

// RFC 7539 §2.3.2 block function test vector.
TEST(ChaCha20, Rfc7539BlockVector) {
  std::array<std::uint8_t, 32> key{};
  for (std::size_t i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce{};
  nonce[3] = 0x09;
  nonce[7] = 0x4a;
  std::array<std::uint8_t, 64> out{};
  chacha20_block(key, 1, nonce, out);
  EXPECT_EQ(nn::to_hex(out),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaChaRng, DeterministicFromSeed) {
  ChaChaRng a(1234), b(1234);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(ChaChaRng, DifferentSeedsDiverge) {
  ChaChaRng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 16; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(ChaChaRng, KeyConstructorMatchesBlockFunction) {
  std::array<std::uint8_t, 32> key{};
  key[0] = 0xAA;
  ChaChaRng rng(key);
  std::array<std::uint8_t, 64> block{};
  std::array<std::uint8_t, 12> nonce{};
  chacha20_block(key, 0, nonce, block);
  // First u64 from the RNG must equal the little-endian first 8 bytes.
  std::uint64_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    expected |= static_cast<std::uint64_t>(block[static_cast<std::size_t>(i)])
                << (8 * i);
  }
  EXPECT_EQ(rng.next_u64(), expected);
}

TEST(ChaChaRng, CrossesBlockBoundary) {
  ChaChaRng rng(99);
  // 64-byte block = 8 u64s; drawing more must reseed seamlessly.
  std::uint64_t last = 0;
  for (int i = 0; i < 24; ++i) last = rng.next_u64();
  EXPECT_NE(last, 0u);  // overwhelmingly likely
}

TEST(ChaChaRng, UniformBytesLookRandom) {
  ChaChaRng rng(7);
  std::array<int, 256> counts{};
  std::array<std::uint8_t, 8192> buf{};
  rng.fill(buf);
  for (auto b : buf) ++counts[b];
  // Expected 32 per bucket; loose sanity bounds.
  for (int c : counts) {
    EXPECT_GT(c, 5);
    EXPECT_LT(c, 100);
  }
}

}  // namespace
}  // namespace nn::crypto
