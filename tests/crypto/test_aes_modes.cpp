#include "crypto/aes_modes.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace nn::crypto {
namespace {

AesKey key_from_hex(std::string_view hex) {
  const auto bytes = nn::from_hex(hex);
  AesKey out{};
  std::copy(bytes.begin(), bytes.end(), out.begin());
  return out;
}

const AesKey kRfc4493Key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");

// RFC 4493 test vectors (examples 1-4).
TEST(Cmac, Rfc4493Example1EmptyMessage) {
  const Cmac cmac(kRfc4493Key);
  EXPECT_EQ(nn::to_hex(cmac.mac({})), "bb1d6929e95937287fa37d129b756746");
}

TEST(Cmac, Rfc4493Example2OneBlock) {
  const Cmac cmac(kRfc4493Key);
  const auto msg = nn::from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(nn::to_hex(cmac.mac(msg)), "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(Cmac, Rfc4493Example3FortyBytes) {
  const Cmac cmac(kRfc4493Key);
  const auto msg = nn::from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411");
  EXPECT_EQ(nn::to_hex(cmac.mac(msg)), "dfa66747de9ae63030ca32611497c827");
}

TEST(Cmac, Rfc4493Example4FourBlocks) {
  const Cmac cmac(kRfc4493Key);
  const auto msg = nn::from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(nn::to_hex(cmac.mac(msg)), "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(Cmac, TruncationTakesPrefix) {
  const Cmac cmac(kRfc4493Key);
  const auto msg = nn::from_hex("6bc1bee22e409f96e93d7e117393172a");
  const auto t8 = cmac.mac_truncated(msg, 8);
  EXPECT_EQ(nn::to_hex(t8), "070a16b46b4d4144");
  EXPECT_THROW(cmac.mac_truncated(msg, 17), std::invalid_argument);
}

TEST(Cmac, DistinctMessagesDistinctTags) {
  const Cmac cmac(kRfc4493Key);
  std::vector<std::uint8_t> a = {1, 2, 3};
  std::vector<std::uint8_t> b = {1, 2, 4};
  EXPECT_NE(cmac.mac(a), cmac.mac(b));
}

// Parameterized property: CMAC over different lengths never collides
// with a tag on a truncated prefix (checks padding/domain separation).
class CmacLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CmacLengths, PrefixExtensionChangesTag) {
  SplitMix64 rng(GetParam() * 31 + 7);
  AesKey key{};
  rng.fill(key);
  const Cmac cmac(key);
  std::vector<std::uint8_t> msg(GetParam());
  rng.fill(msg);
  auto extended = msg;
  extended.push_back(0x00);
  EXPECT_NE(cmac.mac(msg), cmac.mac(extended));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CmacLengths,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 63,
                                           64, 100, 255));

TEST(Ctr, RoundTripIsIdentity) {
  SplitMix64 rng(55);
  AesKey key{};
  rng.fill(key);
  const Ctr ctr(key);
  std::array<std::uint8_t, 12> iv{};
  rng.fill(iv);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 64u, 113u, 1000u}) {
    std::vector<std::uint8_t> data(len);
    rng.fill(data);
    const auto original = data;
    ctr.crypt(iv, data);
    if (len > 4) {
      EXPECT_NE(data, original);
    }
    ctr.crypt(iv, data);
    EXPECT_EQ(data, original) << "len=" << len;
  }
}

TEST(Ctr, KeystreamMatchesManualEcb) {
  // CTR of zeros = raw keystream; block i must equal AES(iv ‖ ctr=i).
  const AesKey key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Ctr ctr(key);
  const Aes128 aes(key);
  std::array<std::uint8_t, 12> iv{};
  for (std::size_t i = 0; i < iv.size(); ++i) {
    iv[i] = static_cast<std::uint8_t>(i);
  }
  std::vector<std::uint8_t> zeros(48, 0);
  ctr.crypt(iv, zeros);
  for (std::uint32_t blk = 0; blk < 3; ++blk) {
    AesBlock counter{};
    std::copy(iv.begin(), iv.end(), counter.begin());
    counter[15] = static_cast<std::uint8_t>(blk);
    const auto ks = aes.encrypt(counter);
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      EXPECT_EQ(zeros[blk * kAesBlockSize + i], ks[i]);
    }
  }
}

TEST(Ctr, DifferentIvsDifferentStreams) {
  SplitMix64 rng(66);
  AesKey key{};
  rng.fill(key);
  const Ctr ctr(key);
  std::array<std::uint8_t, 12> iv1{};
  std::array<std::uint8_t, 12> iv2{};
  iv2[11] = 1;
  std::vector<std::uint8_t> a(32, 0);
  std::vector<std::uint8_t> b(32, 0);
  ctr.crypt(iv1, a);
  ctr.crypt(iv2, b);
  EXPECT_NE(a, b);
}

TEST(Ctr, CryptCopyLeavesInputIntact) {
  AesKey key{};
  const Ctr ctr(key);
  std::array<std::uint8_t, 12> iv{};
  const std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5};
  const auto ct = ctr.crypt_copy(iv, msg);
  EXPECT_EQ(msg.size(), ct.size());
  EXPECT_EQ(msg[0], 1);  // unchanged
  const auto rt = ctr.crypt_copy(iv, ct);
  EXPECT_EQ(rt, msg);
}

TEST(DeriveSourceKey, DeterministicAndKeyed) {
  AesKey km{};
  km[0] = 0x42;
  const auto k1 = derive_source_key(km, 12345, 0x0A000001);
  const auto k2 = derive_source_key(km, 12345, 0x0A000001);
  EXPECT_EQ(k1, k2);
  // Different nonce, source, or master key => different Ks.
  EXPECT_NE(k1, derive_source_key(km, 12346, 0x0A000001));
  EXPECT_NE(k1, derive_source_key(km, 12345, 0x0A000002));
  AesKey km2{};
  km2[0] = 0x43;
  EXPECT_NE(k1, derive_source_key(km2, 12345, 0x0A000001));
}

TEST(CryptAddress, RoundTripsAndDirectionSeparated) {
  AesKey ks{};
  ks[3] = 0x99;
  const std::uint32_t addr = 0xC0A80101;  // 192.168.1.1
  const auto enc_fwd = crypt_address(ks, 777, false, addr);
  EXPECT_NE(enc_fwd, addr);
  EXPECT_EQ(crypt_address(ks, 777, false, enc_fwd), addr);
  // Return direction uses a different keystream.
  const auto enc_ret = crypt_address(ks, 777, true, addr);
  EXPECT_NE(enc_ret, enc_fwd);
  EXPECT_EQ(crypt_address(ks, 777, true, enc_ret), addr);
}

TEST(CryptAddress, NonceBindsKeystream) {
  AesKey ks{};
  const std::uint32_t addr = 0x08080808;
  EXPECT_NE(crypt_address(ks, 1, false, addr),
            crypt_address(ks, 2, false, addr));
}

TEST(CryptAddress, BatchMatchesScalarAcrossChunkBoundaries) {
  // Every request carries its own key and direction; sizes straddle the
  // 32-request chunk the batch implementation stages internally.
  SplitMix64 rng(0xADD2);
  for (const std::size_t n : {0u, 1u, 5u, 31u, 32u, 33u, 70u}) {
    std::vector<AddressCryptRequest> reqs(n);
    for (auto& r : reqs) {
      rng.fill(r.ks);
      r.nonce = rng.next_u64();
      r.return_direction = (rng.next_u64() & 1) != 0;
      r.addr = static_cast<std::uint32_t>(rng.next_u64());
    }
    std::vector<std::uint32_t> got(n);
    crypt_address_batch(reqs, got.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i],
                crypt_address(reqs[i].ks, reqs[i].nonce,
                              reqs[i].return_direction, reqs[i].addr))
          << "n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace nn::crypto
