#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "crypto/chacha.hpp"
#include "util/bytes.hpp"

namespace nn::crypto {
namespace {

// Key generation is the slow part; share fixtures across tests.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ChaChaRng rng(2026);
    key512_ = new RsaPrivateKey(rsa_generate(rng, 512, 3));
    key1024_ = new RsaPrivateKey(rsa_generate(rng, 1024, 3));
  }
  static void TearDownTestSuite() {
    delete key512_;
    delete key1024_;
    key512_ = nullptr;
    key1024_ = nullptr;
  }
  static RsaPrivateKey* key512_;
  static RsaPrivateKey* key1024_;
};

RsaPrivateKey* RsaTest::key512_ = nullptr;
RsaPrivateKey* RsaTest::key1024_ = nullptr;

TEST_F(RsaTest, ModulusHasExactBitLength) {
  EXPECT_EQ(key512_->pub.n.bit_length(), 512u);
  EXPECT_EQ(key1024_->pub.n.bit_length(), 1024u);
  EXPECT_EQ(key512_->pub.modulus_bytes(), 64u);
  EXPECT_EQ(key1024_->pub.modulus_bytes(), 128u);
}

TEST_F(RsaTest, FactorsMultiplyToModulus) {
  EXPECT_EQ(key512_->p * key512_->q, key512_->pub.n);
  ChaChaRng rng(1);
  EXPECT_TRUE(is_probable_prime(key512_->p, rng));
  EXPECT_TRUE(is_probable_prime(key512_->q, rng));
}

TEST_F(RsaTest, PublicPrivateAreInverses) {
  ChaChaRng rng(3);
  for (int i = 0; i < 10; ++i) {
    const BigUInt m = BigUInt::random_below(rng, key512_->pub.n);
    const BigUInt c = rsa_public_op(key512_->pub, m);
    EXPECT_EQ(rsa_private_op(*key512_, c), m);
  }
}

TEST_F(RsaTest, PublicOpWithE3IsCube) {
  const BigUInt m{12345};
  const BigUInt expected = (m * m * m) % key512_->pub.n;
  EXPECT_EQ(rsa_public_op(key512_->pub, m), expected);
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  ChaChaRng rng(4);
  const std::vector<std::uint8_t> msg = {'n', 'o', 'n', 'c', 'e', '+',
                                         'K', 's', 0x00, 0xFF, 0x80};
  const auto ct = rsa_encrypt(rng, key512_->pub, msg);
  EXPECT_EQ(ct.size(), 64u);
  const auto pt = rsa_decrypt(*key512_, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST_F(RsaTest, EncryptionIsRandomized) {
  ChaChaRng rng(5);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  EXPECT_NE(rsa_encrypt(rng, key512_->pub, msg),
            rsa_encrypt(rng, key512_->pub, msg));
}

TEST_F(RsaTest, MaxLengthMessage) {
  ChaChaRng rng(6);
  std::vector<std::uint8_t> msg(key512_->pub.max_message_bytes(), 0xA5);
  const auto ct = rsa_encrypt(rng, key512_->pub, msg);
  const auto pt = rsa_decrypt(*key512_, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST_F(RsaTest, OverlongMessageThrows) {
  ChaChaRng rng(7);
  std::vector<std::uint8_t> msg(key512_->pub.max_message_bytes() + 1, 0);
  EXPECT_THROW(rsa_encrypt(rng, key512_->pub, msg), std::invalid_argument);
}

TEST_F(RsaTest, TamperedCiphertextFailsCleanly) {
  ChaChaRng rng(8);
  const std::vector<std::uint8_t> msg = {9, 9, 9};
  auto ct = rsa_encrypt(rng, key512_->pub, msg);
  ct[10] ^= 0xFF;
  const auto pt = rsa_decrypt(*key512_, ct);
  // Either padding fails (nullopt) or the recovered bytes differ.
  if (pt.has_value()) {
    EXPECT_NE(*pt, msg);
  }
}

TEST_F(RsaTest, WrongLengthCiphertextRejected) {
  std::vector<std::uint8_t> short_ct(63, 1);
  EXPECT_EQ(rsa_decrypt(*key512_, short_ct), std::nullopt);
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  const auto wire = key512_->pub.serialize();
  EXPECT_EQ(wire.size(), 2u + 64u + 4u);
  const auto parsed = RsaPublicKey::parse(wire);
  EXPECT_EQ(parsed, key512_->pub);
}

TEST_F(RsaTest, ParseRejectsDegenerateKey) {
  nn::ByteWriter w;
  w.u16(1).u8(0).u32(3);  // zero modulus
  EXPECT_THROW(RsaPublicKey::parse(w.view()), nn::ParseError);
}

TEST_F(RsaTest, DecryptorMatchesOneShot) {
  ChaChaRng rng(9);
  const RsaDecryptor dec(*key512_);
  for (int i = 0; i < 5; ++i) {
    const std::vector<std::uint8_t> msg = {static_cast<std::uint8_t>(i), 7};
    const auto ct = rsa_encrypt(rng, key512_->pub, msg);
    const auto a = rsa_decrypt(*key512_, ct);
    const auto b = dec.decrypt(ct);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
  }
  const BigUInt m{424242};
  EXPECT_EQ(dec.private_op(rsa_public_op(key512_->pub, m)), m);
}

TEST_F(RsaTest, StrongKeyRoundTrip) {
  ChaChaRng rng(10);
  const std::vector<std::uint8_t> msg(32, 0xE2);  // e2e session key size
  const auto ct = rsa_encrypt(rng, key1024_->pub, msg);
  EXPECT_EQ(ct.size(), 128u);
  const auto pt = rsa_decrypt(*key1024_, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST(RsaGenerate, RejectsBadParameters) {
  ChaChaRng rng(11);
  EXPECT_THROW(rsa_generate(rng, 100, 3), std::invalid_argument);   // < 128
  EXPECT_THROW(rsa_generate(rng, 513, 3), std::invalid_argument);   // odd
  EXPECT_THROW(rsa_generate(rng, 512, 4), std::invalid_argument);   // even e
  EXPECT_THROW(rsa_generate(rng, 512, 1), std::invalid_argument);   // e < 3
}

TEST(RsaGenerate, E65537Works) {
  ChaChaRng rng(12);
  const auto key = rsa_generate(rng, 256, 65537);
  const BigUInt m{999};
  EXPECT_EQ(rsa_private_op(key, rsa_public_op(key.pub, m)), m);
}

TEST_F(RsaTest, EncryptIntoMatchesAllocatingPath) {
  // The scratch path the neutralizer's control plane runs must be
  // byte-identical to rsa_encrypt: same padding draws, same ciphertext.
  RsaScratch scratch;
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 16; ++i) {
    ChaChaRng rng_a(100 + i);
    ChaChaRng rng_b(100 + i);
    std::vector<std::uint8_t> msg(1 + static_cast<std::size_t>(i) * 3,
                                  static_cast<std::uint8_t>(0x10 + i));
    const auto ref = rsa_encrypt(rng_a, key512_->pub, msg);
    // Scratch and output are deliberately reused across messages of
    // different lengths — state bleed between calls would show up as a
    // mismatch or a failed decrypt.
    rsa_encrypt_into(rng_b, key512_->pub, msg, scratch, out);
    EXPECT_EQ(out, ref) << "message " << i;
    const auto pt = rsa_decrypt(*key512_, out);
    ASSERT_TRUE(pt.has_value());
    EXPECT_EQ(*pt, msg);
  }
}

TEST_F(RsaTest, EncryptIntoMatchesOnStrongKeys) {
  // 1024-bit moduli stay inside the fixed-size workspace too.
  RsaScratch scratch;
  std::vector<std::uint8_t> out;
  ChaChaRng rng_a(77);
  ChaChaRng rng_b(77);
  const std::vector<std::uint8_t> msg(32, 0xE2);
  const auto ref = rsa_encrypt(rng_a, key1024_->pub, msg);
  rsa_encrypt_into(rng_b, key1024_->pub, msg, scratch, out);
  EXPECT_EQ(out, ref);
}

TEST_F(RsaTest, EncryptIntoReproducesDomainErrors) {
  RsaScratch scratch;
  std::vector<std::uint8_t> out{0xAB};
  ChaChaRng rng(78);
  std::vector<std::uint8_t> msg(key512_->pub.max_message_bytes() + 1, 0);
  EXPECT_THROW(rsa_encrypt_into(rng, key512_->pub, msg, scratch, out),
               std::invalid_argument);
}

TEST(RsaOps, RangeChecks) {
  ChaChaRng rng(13);
  const auto key = rsa_generate(rng, 128, 3);
  EXPECT_THROW(rsa_public_op(key.pub, key.pub.n), std::invalid_argument);
  EXPECT_THROW(rsa_private_op(key, key.pub.n), std::invalid_argument);
}

}  // namespace
}  // namespace nn::crypto
