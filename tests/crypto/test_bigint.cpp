#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/rng.hpp"

namespace nn::crypto {
namespace {

TEST(BigUInt, ZeroBasics) {
  BigUInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z, BigUInt{0});
}

TEST(BigUInt, HexRoundTrip) {
  const auto x = BigUInt::from_hex("deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(x.to_hex(), "deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(x.bit_length(), 128u);
}

TEST(BigUInt, BytesRoundTripWithPadding) {
  const auto x = BigUInt::from_hex("abcd");
  const auto bytes = x.to_bytes_be(8);
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(bytes[6], 0xAB);
  EXPECT_EQ(bytes[7], 0xCD);
  EXPECT_EQ(BigUInt::from_bytes_be(bytes), x);
}

TEST(BigUInt, OddHexLength) {
  const auto x = BigUInt::from_hex("f00");
  EXPECT_EQ(x, BigUInt{0xF00});
}

TEST(BigUInt, AdditionWithCarryPropagation) {
  const auto x = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  const auto y = BigUInt{1};
  EXPECT_EQ((x + y).to_hex(), "100000000000000000000000000000000");
}

TEST(BigUInt, SubtractionWithBorrow) {
  const auto x = BigUInt::from_hex("100000000000000000000000000000000");
  const auto y = BigUInt{1};
  EXPECT_EQ((x - y).to_hex(), "ffffffffffffffffffffffffffffffff");
}

TEST(BigUInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt{1} - BigUInt{2}, std::underflow_error);
}

TEST(BigUInt, MultiplicationKnownValue) {
  // 0xFFFFFFFFFFFFFFFF^2 = 0xFFFFFFFFFFFFFFFE0000000000000001
  const auto x = BigUInt{0xFFFFFFFFFFFFFFFFULL};
  EXPECT_EQ((x * x).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigUInt, ShiftLeftRightInverse) {
  const auto x = BigUInt::from_hex("123456789abcdef0fedcba9876543210");
  EXPECT_EQ((x << 77) >> 77, x);
  EXPECT_EQ((x << 64) >> 64, x);
  EXPECT_EQ((x << 1) >> 1, x);
}

TEST(BigUInt, ShiftRightDropsBits) {
  EXPECT_EQ(BigUInt{0b1011} >> 2, BigUInt{0b10});
  EXPECT_EQ(BigUInt{1} >> 1, BigUInt{});
}

TEST(BigUInt, CompareOrdering) {
  EXPECT_LT(BigUInt{5}, BigUInt{6});
  EXPECT_GT(BigUInt::from_hex("10000000000000000"), BigUInt{0xFFFFFFFFFFFFFFFFULL});
  EXPECT_EQ(BigUInt{42}, BigUInt{42});
}

TEST(BigUInt, DivModSmall) {
  const auto [q, r] = BigUInt::divmod(BigUInt{100}, BigUInt{7});
  EXPECT_EQ(q, BigUInt{14});
  EXPECT_EQ(r, BigUInt{2});
}

TEST(BigUInt, DivModByZeroThrows) {
  EXPECT_THROW(BigUInt::divmod(BigUInt{1}, BigUInt{}), std::domain_error);
  EXPECT_THROW((void)BigUInt{1}.mod_u64(0), std::domain_error);
  EXPECT_THROW((void)BigUInt{1}.div_u64(0), std::domain_error);
}

TEST(BigUInt, DivModLargerDivisor) {
  const auto [q, r] = BigUInt::divmod(BigUInt{5}, BigUInt{100});
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, BigUInt{5});
}

TEST(BigUInt, ModU64MatchesDivmod) {
  SplitMix64 rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto a = BigUInt::random_bits(rng, 192);
    const std::uint64_t m = rng.next_u64() | 1;
    EXPECT_EQ(BigUInt{a.mod_u64(m)}, a % BigUInt{m});
  }
}

TEST(BigUInt, DivU64MatchesDivmod) {
  SplitMix64 rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto a = BigUInt::random_bits(rng, 192);
    const std::uint64_t d = rng.next_u64() | 1;
    EXPECT_EQ(a.div_u64(d), a / BigUInt{d});
  }
}

// Property sweep: a = q*b + r with 0 <= r < b, across operand widths.
class DivModProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DivModProperty, EuclideanInvariant) {
  const auto [abits, bbits] = GetParam();
  SplitMix64 rng(static_cast<std::uint64_t>(abits * 1000 + bbits));
  for (int i = 0; i < 25; ++i) {
    const auto a = BigUInt::random_bits(rng, static_cast<std::size_t>(abits));
    const auto b = BigUInt::random_bits(rng, static_cast<std::size_t>(bbits));
    const auto [q, r] = BigUInt::divmod(a, b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, DivModProperty,
    ::testing::Values(std::pair{64, 32}, std::pair{128, 64},
                      std::pair{256, 128}, std::pair{512, 256},
                      std::pair{1024, 512}, std::pair{1024, 1024},
                      std::pair{80, 512}, std::pair{512, 37}));

// Algebraic identities on random operands.
class BigUIntAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(BigUIntAlgebra, RingIdentities) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  const auto a = BigUInt::random_bits(rng, 200 + GetParam() * 17 % 300);
  const auto b = BigUInt::random_bits(rng, 100 + GetParam() * 31 % 400);
  const auto c = BigUInt::random_bits(rng, 150 + GetParam() * 13 % 200);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ(a * BigUInt{1}, a);
  EXPECT_EQ(a * BigUInt{}, BigUInt{});
  EXPECT_EQ(a + BigUInt{}, a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigUIntAlgebra, ::testing::Range(1, 21));

TEST(BigUInt, ModExpSmallKnown) {
  // 4^13 mod 497 = 445 (classic example)
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{4}, BigUInt{13}, BigUInt{497}),
            BigUInt{445});
}

TEST(BigUInt, ModExpAgainstU64Reference) {
  SplitMix64 rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t base = rng.next_u64() % 1000003;
    const std::uint64_t exp = rng.next_u64() % 100;
    const std::uint64_t mod = (rng.next_u64() % 999983) | 1;  // odd
    // u64 reference via __int128 arithmetic
    __extension__ typedef unsigned __int128 u128ref;
    u128ref acc = 1 % mod;
    for (std::uint64_t e = 0; e < exp; ++e) {
      acc = acc * base % mod;
    }
    EXPECT_EQ(
        BigUInt::mod_exp(BigUInt{base}, BigUInt{exp}, BigUInt{mod}).low_u64(),
        static_cast<std::uint64_t>(acc))
        << "base=" << base << " exp=" << exp << " mod=" << mod;
  }
}

TEST(BigUInt, ModExpEvenModulusMatchesOdd) {
  // Cross-check the Montgomery path against the division-based path on
  // an odd modulus by comparing via a known relation: x mod 2m determines
  // x mod m. Simpler: compute with both code paths on even modulus
  // reference values.
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{7}, BigUInt{5}, BigUInt{100}),
            BigUInt{7 * 7 * 7 * 7 * 7 % 100});
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{3}, BigUInt{20}, BigUInt{1 << 20}),
            BigUInt{3486784401ULL % (1 << 20)});
}

TEST(BigUInt, ModExpEdgeCases) {
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{5}, BigUInt{}, BigUInt{7}), BigUInt{1});
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{5}, BigUInt{3}, BigUInt{1}), BigUInt{});
  EXPECT_THROW(BigUInt::mod_exp(BigUInt{5}, BigUInt{3}, BigUInt{}),
               std::domain_error);
}

TEST(BigUInt, ModExpFermatLittleTheorem) {
  // a^(p-1) ≡ 1 mod p for prime p and gcd(a,p)=1; p = 2^61 - 1 (prime).
  const BigUInt p = (BigUInt{1} << 61) - BigUInt{1};
  SplitMix64 rng(6);
  for (int i = 0; i < 20; ++i) {
    const BigUInt a = BigUInt::random_below(rng, p - BigUInt{2}) + BigUInt{1};
    EXPECT_EQ(BigUInt::mod_exp(a, p - BigUInt{1}, p), BigUInt{1});
  }
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery(BigUInt{10}), std::domain_error);
  EXPECT_THROW(Montgomery(BigUInt{}), std::domain_error);
}

TEST(Montgomery, MatchesPlainModExpOnWideOperands) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10; ++i) {
    BigUInt mod = BigUInt::random_bits(rng, 256);
    mod.set_bit(0);  // make odd
    const auto base = BigUInt::random_bits(rng, 300);
    const auto exp = BigUInt::random_bits(rng, 64);
    const Montgomery mont(mod);
    // Reference: square-and-multiply with division-based reduction.
    BigUInt ref{1};
    BigUInt b = base % mod;
    for (std::size_t bit = exp.bit_length(); bit-- > 0;) {
      ref = (ref * ref) % mod;
      if (exp.bit(bit)) ref = (ref * b) % mod;
    }
    EXPECT_EQ(mont.exp(base, exp), ref);
  }
}

TEST(BigUInt, GcdKnownValues) {
  EXPECT_EQ(BigUInt::gcd(BigUInt{48}, BigUInt{18}), BigUInt{6});
  EXPECT_EQ(BigUInt::gcd(BigUInt{17}, BigUInt{5}), BigUInt{1});
  EXPECT_EQ(BigUInt::gcd(BigUInt{0}, BigUInt{5}), BigUInt{5});
  EXPECT_EQ(BigUInt::gcd(BigUInt{5}, BigUInt{0}), BigUInt{5});
}

TEST(BigUInt, ModInverseKnownAndProperty) {
  EXPECT_EQ(BigUInt::mod_inverse(BigUInt{3}, BigUInt{11}), BigUInt{4});
  SplitMix64 rng(8);
  for (int i = 0; i < 30; ++i) {
    const auto m = BigUInt::random_bits(rng, 128);
    auto a = BigUInt::random_below(rng, m);
    if (BigUInt::gcd(a, m) != BigUInt{1}) continue;
    const auto inv = BigUInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigUInt{1});
    EXPECT_LT(inv, m);
  }
}

TEST(BigUInt, ModInverseNotCoprimeThrows) {
  EXPECT_THROW(BigUInt::mod_inverse(BigUInt{4}, BigUInt{8}), std::domain_error);
}

TEST(BigUInt, RandomBitsHasExactLength) {
  SplitMix64 rng(9);
  for (std::size_t bits : {1u, 7u, 64u, 65u, 256u, 511u, 512u}) {
    EXPECT_EQ(BigUInt::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(BigUInt, RandomBelowIsBelow) {
  SplitMix64 rng(10);
  const auto bound = BigUInt::from_hex("10000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigUInt::random_below(rng, bound), bound);
  }
}

TEST(Primality, KnownPrimes) {
  SplitMix64 rng(11);
  EXPECT_TRUE(is_probable_prime(BigUInt{2}, rng));
  EXPECT_TRUE(is_probable_prime(BigUInt{3}, rng));
  EXPECT_TRUE(is_probable_prime(BigUInt{65537}, rng));
  // 2^61 - 1 is a Mersenne prime.
  EXPECT_TRUE(is_probable_prime((BigUInt{1} << 61) - BigUInt{1}, rng));
  // 2^127 - 1 is a Mersenne prime.
  EXPECT_TRUE(is_probable_prime((BigUInt{1} << 127) - BigUInt{1}, rng));
}

TEST(Primality, KnownComposites) {
  SplitMix64 rng(12);
  EXPECT_FALSE(is_probable_prime(BigUInt{1}, rng));
  EXPECT_FALSE(is_probable_prime(BigUInt{0}, rng));
  EXPECT_FALSE(is_probable_prime(BigUInt{561}, rng));    // Carmichael
  EXPECT_FALSE(is_probable_prime(BigUInt{41041}, rng));  // Carmichael
  EXPECT_FALSE(is_probable_prime((BigUInt{1} << 67) - BigUInt{1}, rng));
  // Product of two 64-bit-ish primes.
  const auto p = BigUInt{0xFFFFFFFFFFFFFFC5ULL};  // largest 64-bit prime
  EXPECT_FALSE(is_probable_prime(p * p, rng));
}

TEST(Primality, RandomPrimeProperties) {
  SplitMix64 rng(13);
  const auto p = random_prime(rng, 128, 3);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.bit(126));  // second-highest bit forced
  EXPECT_TRUE(p.is_odd());
  EXPECT_EQ(BigUInt::gcd(p - BigUInt{1}, BigUInt{3}), BigUInt{1});
  EXPECT_TRUE(is_probable_prime(p, rng));
}

}  // namespace
}  // namespace nn::crypto
