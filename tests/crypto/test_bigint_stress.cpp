// Stress tests targeting the Knuth Algorithm D division paths that the
// uniform-random property sweep rarely exercises: qhat overestimation
// (the add-back branch), divisors with extreme top digits, and
// carry-chain saturation.
#include <gtest/gtest.h>

#include "crypto/bigint.hpp"
#include "crypto/chacha.hpp"
#include "crypto/rsa.hpp"
#include "util/rng.hpp"

namespace nn::crypto {
namespace {

void check_divmod(const BigUInt& a, const BigUInt& b) {
  const auto [q, r] = BigUInt::divmod(a, b);
  EXPECT_LT(r, b);
  EXPECT_EQ(q * b + r, a) << "a=" << a.to_hex() << " b=" << b.to_hex();
}

BigUInt all_ones(std::size_t words) {
  BigUInt x;
  for (std::size_t i = 0; i < words * 64; ++i) x.set_bit(i);
  return x;
}

TEST(BigUIntStress, AllOnesPatterns) {
  for (std::size_t aw : {1u, 2u, 3u, 4u, 8u, 16u}) {
    for (std::size_t bw : {1u, 2u, 3u, 4u, 8u}) {
      check_divmod(all_ones(aw), all_ones(bw));
    }
  }
}

TEST(BigUIntStress, DividendJustBelowAndAboveMultiples) {
  SplitMix64 rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto b = BigUInt::random_bits(rng, 128 + i);
    const auto q = BigUInt::random_bits(rng, 200);
    const BigUInt product = q * b;
    check_divmod(product, b);                 // exact multiple
    check_divmod(product + BigUInt{1}, b);    // one above
    if (!product.is_zero()) {
      check_divmod(product - BigUInt{1}, b);  // one below
    }
  }
}

TEST(BigUIntStress, DivisorTopDigitBoundaries) {
  // Divisor top word at the normalization boundaries: 0x8000…,
  // 0xFFFF…, and 0x8000…+1.
  SplitMix64 rng(2);
  for (int i = 0; i < 30; ++i) {
    BigUInt b_hi;
    b_hi.set_bit(255);  // 0x8000... top word
    check_divmod(BigUInt::random_bits(rng, 500), b_hi);

    const auto b_max = all_ones(4);  // 0xFFFF... everywhere
    check_divmod(BigUInt::random_bits(rng, 500), b_max);

    BigUInt b_mid = b_hi + BigUInt{1};
    check_divmod(BigUInt::random_bits(rng, 500), b_mid);
  }
}

TEST(BigUIntStress, QhatCorrectionTriggers) {
  // The classic add-back trigger family (Knuth 4.3.1 exercise 21-style):
  // dividends of the form (B^2)/2-ish over divisors just above B/2.
  const BigUInt base_hi = BigUInt{0x8000000000000000ULL};
  BigUInt v = (base_hi << 64) + BigUInt{1};  // 0x8000…0001 (two words)
  BigUInt u = (base_hi << 192);              // huge power-of-two multiple
  check_divmod(u, v);
  check_divmod(u - BigUInt{1}, v);
  check_divmod(u + BigUInt{1}, v);

  // And a dense sweep around it.
  SplitMix64 rng(3);
  for (int i = 0; i < 200; ++i) {
    BigUInt vv = (base_hi << 64) + BigUInt{rng.next_u64() & 0xFFFF};
    BigUInt uu = (base_hi << 192) + BigUInt::random_bits(rng, 100);
    check_divmod(uu, vv);
  }
}

TEST(BigUIntStress, SingleWordDivisorFastPathAgrees) {
  SplitMix64 rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto a = BigUInt::random_bits(rng, 320);
    const std::uint64_t d = rng.next_u64() | 1;
    const auto [q, r] = BigUInt::divmod(a, BigUInt{d});
    EXPECT_EQ(q, a.div_u64(d));
    EXPECT_EQ(r.low_u64(), a.mod_u64(d));
  }
}

TEST(BigUIntStress, WideRandomSweep) {
  SplitMix64 rng(5);
  for (int i = 0; i < 300; ++i) {
    const std::size_t abits = 1 + rng.uniform(2048);
    const std::size_t bbits = 1 + rng.uniform(1024);
    check_divmod(BigUInt::random_bits(rng, abits),
                 BigUInt::random_bits(rng, bbits));
  }
}

TEST(BigUIntStress, MontgomeryAgreesWithDivisionReduction) {
  SplitMix64 rng(6);
  for (int i = 0; i < 40; ++i) {
    BigUInt mod = BigUInt::random_bits(rng, 512);
    mod.set_bit(0);
    const auto base = BigUInt::random_bits(rng, 700);
    const auto exp = BigUInt::random_bits(rng, 32);
    BigUInt ref{1};
    BigUInt b = base % mod;
    for (std::size_t bit = exp.bit_length(); bit-- > 0;) {
      ref = (ref * ref) % mod;
      if (exp.bit(bit)) ref = (ref * b) % mod;
    }
    EXPECT_EQ(BigUInt::mod_exp(base, exp, mod), ref);
  }
}

TEST(BigUIntStress, ScratchPowAgreesWithModExp) {
  // The fixed-workspace exponentiation behind the neutralizer's scratch
  // RSA path must agree with the general mod_exp for every (base, e, n)
  // it accepts, across odd and even moduli and word-count boundaries.
  SplitMix64 rng(8);
  BigIntScratch scratch;
  for (int i = 0; i < 200; ++i) {
    const std::size_t nbits = 128 + rng.uniform(1921);  // 2..32 words
    BigUInt n = BigUInt::random_bits(rng, nbits);
    if (rng.chance(0.5)) n.set_bit(0);  // odd (RSA-like) half the time
    const BigUInt base = BigUInt::random_below(rng, n);
    const std::uint64_t e = 1 + rng.uniform(1 << 20);
    BigUInt out;
    ASSERT_TRUE(scratch.pow_u64_mod(base, e, n, out)) << "i=" << i;
    EXPECT_EQ(out, BigUInt::mod_exp(base, BigUInt{e}, n)) << "i=" << i;
  }
}

TEST(BigUIntStress, ScratchPowRejectsOutOfDomainOperands) {
  SplitMix64 rng(9);
  BigIntScratch scratch;
  const BigUInt sentinel{0xDEAD};
  // base >= n falls back to the general path (which reports the
  // domain error); out must be left untouched.
  const BigUInt n = BigUInt::random_bits(rng, 512);
  BigUInt out = sentinel;
  EXPECT_FALSE(scratch.pow_u64_mod(n, 3, n, out));
  EXPECT_EQ(out, sentinel);
  // Single-word and oversized moduli don't fit the workspace.
  out = sentinel;
  EXPECT_FALSE(scratch.pow_u64_mod(BigUInt{2}, 3, BigUInt{97}, out));
  EXPECT_EQ(out, sentinel);
  const BigUInt huge = BigUInt::random_bits(
      rng, (BigIntScratch::kMaxWords + 1) * 64);
  out = sentinel;
  EXPECT_FALSE(scratch.pow_u64_mod(BigUInt{2}, 3, huge, out));
  EXPECT_EQ(out, sentinel);
}

TEST(BigUIntStress, ScratchPowReusableAcrossModuli) {
  // One scratch, many key sizes interleaved — the workspace re-sizes
  // its view of the modulus on every call.
  SplitMix64 rng(10);
  BigIntScratch scratch;
  for (int i = 0; i < 60; ++i) {
    const std::size_t nbits = (i % 2 == 0) ? 512 : 1024;
    BigUInt n = BigUInt::random_bits(rng, nbits);
    n.set_bit(0);
    const BigUInt base = BigUInt::random_below(rng, n);
    BigUInt out;
    ASSERT_TRUE(scratch.pow_u64_mod(base, 3, n, out));
    EXPECT_EQ(out, (base * base * base) % n);
  }
}

TEST(BigUIntStress, RsaRoundTripManyKeys) {
  // Whole-stack agreement across fresh keys (keygen exercises division,
  // gcd, inverse, Montgomery, and primality together).
  crypto::ChaChaRng rng(7);
  for (int i = 0; i < 4; ++i) {
    const auto key = rsa_generate(rng, 512, 3);
    for (int j = 0; j < 5; ++j) {
      const BigUInt m = BigUInt::random_below(rng, key.pub.n);
      EXPECT_EQ(rsa_private_op(key, rsa_public_op(key.pub, m)), m);
    }
  }
}

}  // namespace
}  // namespace nn::crypto
