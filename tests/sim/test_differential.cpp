// Differential-testing layer for batch-aware link delivery: the same
// seeded workload runs through the Fig. 1 topology twice — once with
// classic per-packet links (the baseline) and once with burst
// coalescing — across workload shapes (fixed-size, IMIX, the committed
// pcap capture), shard counts, queue disciplines, and congestion
// levels. Every observable must be identical: per-flow delivery counts
// and latency distributions, neutralizer service stats, and the
// per-link wire stats (tx/drop packets and bytes) on every link of the
// topology.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/neutralizer.hpp"
#include "qos/scheduler.hpp"
#include "scenario/fig1.hpp"
#include "sim/link.hpp"

namespace nn::scenario {
namespace {

struct FlowSpec {
  ScenarioHost Fig1::* from;
  ScenarioHost Fig1::* to;
  std::uint16_t flow_id;
  double pps;
};

struct Outcome {
  std::vector<Fig1::FlowResult> flows;
  core::NeutralizerStats service;
  // (tx_packets, tx_bytes, dropped_packets, dropped_bytes) per
  // unidirectional link, in a fixed topology order.
  std::vector<std::array<std::uint64_t, 4>> links;
};

void collect_link(Outcome& out, Fig1& fig, sim::NodeId a, sim::NodeId b) {
  for (const auto [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
    const sim::Link* link = fig.net.link_between(x, y);
    ASSERT_NE(link, nullptr);
    out.links.push_back({link->stats().tx_packets, link->stats().tx_bytes,
                         link->stats().dropped_packets,
                         link->stats().dropped_bytes});
  }
}

Outcome run_scenario(Fig1Config cfg, const std::vector<FlowSpec>& flows,
                     sim::SimTime duration) {
  Fig1 fig(std::move(cfg));
  for (const FlowSpec& f : flows) {
    fig.schedule_voip(VoipMode::kNeutralized, fig.*(f.from), fig.*(f.to),
                      f.flow_id, f.pps, 10 * sim::kMillisecond, duration);
  }
  fig.engine.run_until(duration + sim::kSecond);
  Outcome out;
  for (const FlowSpec& f : flows) {
    out.flows.push_back(fig.collect(fig.*(f.to), f.flow_id));
  }
  out.service = fig.service_stats();
  collect_link(out, fig, fig.ann.node->id(), fig.att_access->id());
  collect_link(out, fig, fig.bob.node->id(), fig.att_access->id());
  collect_link(out, fig, fig.att_voip.node->id(), fig.att_access->id());
  collect_link(out, fig, fig.att_access->id(), fig.att_peering->id());
  const sim::NodeId box_id = fig.box != nullptr
                                 ? fig.box->id()
                                 : fig.sharded_box->id();
  collect_link(out, fig, fig.att_peering->id(), box_id);
  collect_link(out, fig, box_id, fig.cogent_core->id());
  collect_link(out, fig, fig.cogent_core->id(), fig.vonage.node->id());
  collect_link(out, fig, fig.cogent_core->id(), fig.google.node->id());
  collect_link(out, fig, fig.cogent_core->id(), fig.youtube.node->id());
  return out;
}

void expect_identical(const Outcome& classic, const Outcome& burst,
                      const std::string& where) {
  ASSERT_EQ(classic.flows.size(), burst.flows.size()) << where;
  for (std::size_t i = 0; i < classic.flows.size(); ++i) {
    const auto& c = classic.flows[i];
    const auto& b = burst.flows[i];
    EXPECT_EQ(c.received, b.received) << where << " flow " << i;
    // Latencies derive from delivery stamps; identical stamps make the
    // derived doubles bit-identical, so compare exactly.
    EXPECT_EQ(c.mean_latency_ms, b.mean_latency_ms) << where << " flow " << i;
    EXPECT_EQ(c.p95_latency_ms, b.p95_latency_ms) << where << " flow " << i;
    EXPECT_EQ(c.loss, b.loss) << where << " flow " << i;
    EXPECT_EQ(c.mos, b.mos) << where << " flow " << i;
  }
  EXPECT_EQ(classic.service.key_setups, burst.service.key_setups) << where;
  EXPECT_EQ(classic.service.data_forwarded, burst.service.data_forwarded)
      << where;
  EXPECT_EQ(classic.service.data_returned, burst.service.data_returned)
      << where;
  EXPECT_EQ(classic.service.rejected, burst.service.rejected) << where;
  ASSERT_EQ(classic.links.size(), burst.links.size()) << where;
  for (std::size_t i = 0; i < classic.links.size(); ++i) {
    EXPECT_EQ(classic.links[i], burst.links[i]) << where << " link " << i;
  }
}

void run_differential(Fig1Config base, const std::vector<FlowSpec>& flows,
                      sim::SimTime duration, const std::string& where) {
  base.link_burst_packets = 1;
  const Outcome classic = run_scenario(base, flows, duration);
  for (const std::size_t window : {4, 32}) {
    Fig1Config bcfg = base;
    bcfg.link_burst_packets = window;
    const Outcome burst = run_scenario(bcfg, flows, duration);
    expect_identical(classic, burst,
                     where + "/window=" + std::to_string(window));
  }
}

// Two concurrent flows from ONE source host: every link then carries a
// single ingress stream whose stamps arrive in monotonic order, which
// is the burst mode's exactness regime (docs/ARCHITECTURE.md). Flows
// from different hosts interleave in virtual time across separately-
// coalesced trains, and a contended downstream link then serves them
// in train order rather than stamp order — counts stay identical but
// individual waits can shift (see MultiSourceMergeKeepsCounts below).
const std::vector<FlowSpec> kTwoFlows = {
    {&Fig1::ann, &Fig1::google, 1, 997},
    {&Fig1::ann, &Fig1::youtube, 2, 1409},
};

TEST(Differential, FixedSizeAcrossShardCounts) {
  for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    Fig1Config cfg;
    cfg.box_shards = shards;
    cfg.att_uplink_bps = 12e6;  // congested: queueing and trains form
    run_differential(cfg, kTwoFlows, sim::kSecond / 4,
                     "fixed/shards=" + std::to_string(shards));
  }
}

TEST(Differential, ServiceCostStampedEmissions) {
  // Non-zero service times make the boxes emit future-stamped packets;
  // both the fixed-latency single box and the per-shard serial servers
  // must behave identically under coalesced delivery.
  for (const std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
    Fig1Config cfg;
    cfg.box_shards = shards;
    cfg.att_uplink_bps = 12e6;
    cfg.box_costs.data_path = sim::SimTime{8311};  // ~120 kpps, non-resonant
    cfg.box_costs.key_setup = 41 * sim::kMicrosecond;
    run_differential(cfg, kTwoFlows, sim::kSecond / 4,
                     "cost/shards=" + std::to_string(shards));
  }
}

TEST(Differential, ImixUnderQueueDisciplines) {
  struct Discipline {
    std::string name;
    sim::QueueFactory factory;
  };
  const Discipline disciplines[] = {
      {"droptail", nullptr},
      {"prio",
       [] { return std::make_unique<qos::StrictPriorityQueue>(48 * 1024); }},
      {"wfq",
       [] {
         return std::make_unique<qos::WfqQueue>(
             std::vector<std::uint32_t>{4, 2, 1}, 48 * 1024);
       }},
  };
  for (const Discipline& d : disciplines) {
    Fig1Config cfg;
    cfg.workload = WorkloadKind::kImix;
    cfg.box_shards = 4;
    cfg.att_uplink_bps = 10e6;
    cfg.att_uplink_queue = d.factory;
    run_differential(cfg, kTwoFlows, sim::kSecond / 4, "imix/" + d.name);
  }
}

TEST(Differential, PcapReplayAcrossShardCounts) {
  for (const std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
    Fig1Config cfg;
    cfg.workload = WorkloadKind::kPcap;
    cfg.pcap_path = NN_PCAP_FIXTURE;
    cfg.box_shards = shards;
    cfg.att_uplink_bps = 12e6;
    run_differential(cfg, kTwoFlows, sim::kSecond / 4,
                     "pcap/shards=" + std::to_string(shards));
  }
}

TEST(Differential, BatchedPlainReplayStaysExact) {
  // Windowed trace replay (one engine event per window, records past-
  // stamped) + burst links must reproduce the per-record, per-packet
  // baseline exactly for plain transports, which thread the stamp all
  // the way through (source -> Host::transmit -> Link::send).
  auto run_plain = [&](std::size_t window, sim::SimTime batch) {
    Fig1Config cfg;
    cfg.workload = WorkloadKind::kImix;
    cfg.att_uplink_bps = 12e6;
    cfg.link_burst_packets = window;
    cfg.source_batch_window = batch;
    Fig1 fig(cfg);
    fig.schedule_voip(VoipMode::kPlain, fig.ann, fig.google, 1, 997,
                      10 * sim::kMillisecond, sim::kSecond / 4);
    fig.schedule_voip(VoipMode::kPlain, fig.ann, fig.youtube, 2, 1409,
                      10 * sim::kMillisecond, sim::kSecond / 4);
    fig.engine.run_until(sim::kSecond + sim::kSecond / 4);
    Outcome out;
    out.flows.push_back(fig.collect(fig.google, 1));
    out.flows.push_back(fig.collect(fig.youtube, 2));
    out.service = fig.service_stats();
    collect_link(out, fig, fig.ann.node->id(), fig.att_access->id());
    collect_link(out, fig, fig.att_access->id(), fig.att_peering->id());
    collect_link(out, fig, fig.cogent_core->id(), fig.google.node->id());
    return out;
  };
  const Outcome classic = run_plain(1, 0);
  for (const sim::SimTime batch :
       {2 * sim::kMillisecond, 5 * sim::kMillisecond}) {
    const Outcome burst = run_plain(32, batch);
    expect_identical(classic, burst,
                     "plain-batched/batch=" + std::to_string(batch));
  }
}

TEST(Differential, MultiSourceMergeKeepsCounts) {
  // Flows from different hosts ride separately-coalesced trains, so a
  // shared downstream link sees their stamps interleaved across train
  // boundaries and may serve them in train order instead of global
  // stamp order. Burst mode still moves exactly the same packets —
  // delivery counts, loss, service stats, and per-link wire counters
  // stay identical — but individual queue waits can shift by up to a
  // train's serialization time, so latency gets a bound, not equality.
  const std::vector<FlowSpec> cross_flows = {
      {&Fig1::ann, &Fig1::google, 1, 997},
      {&Fig1::bob, &Fig1::youtube, 2, 1409},
  };
  Fig1Config base;
  base.att_uplink_bps = 12e6;
  base.link_burst_packets = 1;
  const Outcome classic = run_scenario(base, cross_flows, sim::kSecond / 4);
  Fig1Config bcfg = base;
  bcfg.link_burst_packets = 32;
  const Outcome burst = run_scenario(bcfg, cross_flows, sim::kSecond / 4);

  ASSERT_EQ(classic.flows.size(), burst.flows.size());
  for (std::size_t i = 0; i < classic.flows.size(); ++i) {
    const auto& c = classic.flows[i];
    const auto& b = burst.flows[i];
    EXPECT_EQ(c.received, b.received) << "flow " << i;
    EXPECT_EQ(c.loss, b.loss) << "flow " << i;
    EXPECT_NEAR(c.mean_latency_ms, b.mean_latency_ms, 0.25) << "flow " << i;
    EXPECT_NEAR(c.p95_latency_ms, b.p95_latency_ms, 1.0) << "flow " << i;
  }
  EXPECT_EQ(classic.service.key_setups, burst.service.key_setups);
  EXPECT_EQ(classic.service.data_forwarded, burst.service.data_forwarded);
  EXPECT_EQ(classic.service.data_returned, burst.service.data_returned);
  EXPECT_EQ(classic.service.rejected, burst.service.rejected);
  ASSERT_EQ(classic.links.size(), burst.links.size());
  for (std::size_t i = 0; i < classic.links.size(); ++i) {
    EXPECT_EQ(classic.links[i], burst.links[i]) << "link " << i;
  }
}

TEST(Differential, BurstModeSpendsFewerEngineEvents) {
  // The point of the mode: same wire behavior, fewer engine events on a
  // congested path.
  const std::vector<FlowSpec> flows = kTwoFlows;
  Fig1Config cfg;
  cfg.att_uplink_bps = 12e6;

  auto count_events = [&](std::size_t window) {
    Fig1Config c = cfg;
    c.link_burst_packets = window;
    Fig1 fig(c);
    for (const FlowSpec& f : flows) {
      fig.schedule_voip(VoipMode::kNeutralized, fig.*(f.from), fig.*(f.to),
                        f.flow_id, f.pps, 10 * sim::kMillisecond,
                        sim::kSecond / 4);
    }
    fig.engine.run_until(sim::kSecond / 4 + sim::kSecond);
    return fig.engine.executed();
  };
  const std::size_t classic_events = count_events(1);
  const std::size_t burst_events = count_events(32);
  EXPECT_LT(burst_events, classic_events);
}

}  // namespace
}  // namespace nn::scenario
