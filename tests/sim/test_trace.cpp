#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "net/shim.hpp"

namespace nn::sim {
namespace {

net::Packet udp_pkt() {
  return net::make_udp_packet(net::Ipv4Addr(1, 2, 3, 4),
                              net::Ipv4Addr(5, 6, 7, 8), 10, 20,
                              std::vector<std::uint8_t>(16, 0));
}

net::Packet shim_pkt() {
  net::ShimHeader shim;
  shim.type = net::ShimType::kDataForward;
  shim.nonce = 0xABCD;
  shim.inner_addr = 1;
  return net::make_shim_packet(net::Ipv4Addr(1, 2, 3, 4),
                               net::Ipv4Addr(200, 0, 0, 1), shim,
                               std::vector<std::uint8_t>(8, 0));
}

TEST(TracePolicy, RecordsHeadersAndForwards) {
  TracePolicy trace;
  const auto d = trace.process(udp_pkt(), 5 * kMillisecond);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.extra_delay, 0);
  ASSERT_EQ(trace.records().size(), 1u);
  const auto& r = trace.records()[0];
  EXPECT_EQ(r.src, net::Ipv4Addr(1, 2, 3, 4));
  EXPECT_EQ(r.dst, net::Ipv4Addr(5, 6, 7, 8));
  EXPECT_EQ(r.protocol, 17);
  EXPECT_FALSE(r.is_shim);
}

TEST(TracePolicy, DecodesShimDetails) {
  TracePolicy trace;
  (void)trace.process(shim_pkt(), 0);
  ASSERT_EQ(trace.records().size(), 1u);
  const auto& r = trace.records()[0];
  EXPECT_TRUE(r.is_shim);
  EXPECT_EQ(r.shim_type, static_cast<std::uint8_t>(net::ShimType::kDataForward));
  EXPECT_EQ(r.nonce, 0xABCDu);
  EXPECT_NE(r.to_string().find("DATA_FWD"), std::string::npos);
  EXPECT_NE(r.to_string().find("1.2.3.4"), std::string::npos);
}

TEST(TracePolicy, BoundsMemoryButKeepsCounting) {
  TracePolicy trace(3);
  for (int i = 0; i < 10; ++i) (void)trace.process(udp_pkt(), i);
  EXPECT_EQ(trace.records().size(), 3u);
  EXPECT_EQ(trace.total_seen(), 10u);
}

TEST(TracePolicy, DumpAndClear) {
  TracePolicy trace;
  (void)trace.process(udp_pkt(), 0);
  (void)trace.process(shim_pkt(), kMillisecond);
  const auto dump = trace.dump();
  EXPECT_NE(dump.find("proto=17"), std::string::npos);
  EXPECT_NE(dump.find("DATA_FWD"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

}  // namespace
}  // namespace nn::sim
