// System-level properties of the simulator: determinism (identical
// seeds give bit-identical outcomes) and conservation (every packet is
// accounted for as delivered or dropped somewhere).
#include <gtest/gtest.h>

#include "discrim/policy.hpp"
#include "scenario/fig1.hpp"

namespace nn::sim {
namespace {

scenario::Fig1::FlowResult run_once() {
  scenario::Fig1 fig;
  auto policy =
      std::make_shared<discrim::DiscriminationPolicy>("det-test", 99);
  policy->add_rule("degrade",
                   discrim::MatchCriteria::against_destination(
                       net::Ipv4Prefix(scenario::kVonageAddr, 32)),
                   discrim::DiscriminationAction::degrade(0.3, kMillisecond));
  fig.att->apply_policy(policy);
  return fig.run_voip(scenario::VoipMode::kNeutralized, fig.ann, fig.vonage,
                      1, 50, kSecond, 3 * kSecond);
}

TEST(SimProperties, IdenticalSeedsGiveIdenticalOutcomes) {
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.received, b.received);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_DOUBLE_EQ(a.p95_latency_ms, b.p95_latency_ms);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
}

TEST(SimProperties, PacketConservationUnderOverload) {
  // Feed more than a link can carry; every packet must be delivered,
  // queued-then-delivered, or counted as a drop. Nothing vanishes.
  Engine engine;
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e6;
  cfg.propagation = kMillisecond;
  cfg.queue_bytes = 10 * 1024;
  std::uint64_t delivered = 0;
  Link link(engine, cfg, [&](net::Packet&&) { ++delivered; });

  const int kSent = 2000;
  for (int i = 0; i < kSent; ++i) {
    engine.schedule_at(i * 100 * kMicrosecond, [&] {
      link.send(net::make_udp_packet(net::Ipv4Addr(1, 1, 1, 1),
                                     net::Ipv4Addr(2, 2, 2, 2), 1, 2,
                                     std::vector<std::uint8_t>(472, 0)));
    });
  }
  engine.run();
  EXPECT_EQ(delivered + link.stats().dropped_packets,
            static_cast<std::uint64_t>(kSent));
  EXPECT_GT(link.stats().dropped_packets, 0u);  // it really was overloaded
  EXPECT_EQ(link.stats().tx_packets, delivered);
}

TEST(SimProperties, RouterAccountingIsComplete) {
  // host -> router -> sink with a probabilistically dropping policy:
  // forwarded + policy_dropped must equal what the router received.
  Engine engine;
  Network net(engine);
  auto& src = net.add<Host>("src");
  auto& router = net.add<Router>("r");
  auto& dst = net.add<Host>("dst");
  LinkConfig cfg;
  net.connect(src, router, cfg);
  net.connect(router, dst, cfg);
  net.assign_address(src, net::Ipv4Addr(1, 0, 0, 1));
  net.assign_address(dst, net::Ipv4Addr(1, 0, 0, 2));
  net.compute_routes();

  auto policy = std::make_shared<discrim::DiscriminationPolicy>("half", 5);
  policy->add_rule("coin", discrim::MatchCriteria{},
                   discrim::DiscriminationAction::degrade(0.5, 0));
  router.add_policy(policy);

  const int kSent = 1000;
  for (int i = 0; i < kSent; ++i) {
    engine.schedule_at(i * kMillisecond, [&] {
      src.transmit(net::make_udp_packet(src.address(), dst.address(), 1, 2,
                                        std::vector<std::uint8_t>(32, 0)));
    });
  }
  engine.run();
  const auto& rs = router.stats();
  EXPECT_EQ(rs.forwarded + rs.policy_dropped,
            static_cast<std::uint64_t>(kSent));
  EXPECT_EQ(dst.received_packets(), rs.forwarded);
  EXPECT_NEAR(static_cast<double>(rs.policy_dropped), 500.0, 80.0);
}

TEST(SimProperties, NeutralizerConservation) {
  // Everything entering the neutralizer is forwarded, returned,
  // answered, or rejected — never silently lost.
  scenario::Fig1 fig;
  fig.run_voip(scenario::VoipMode::kNeutralized, fig.ann, fig.google, 1, 100,
               kSecond, 3 * kSecond);
  const auto& s = fig.box->service().stats();
  const auto& consumed = fig.box->stats().consumed;
  EXPECT_EQ(s.key_setups + s.key_leases + s.data_forwarded + s.data_returned +
                s.rejected,
            consumed);
}

}  // namespace
}  // namespace nn::sim
