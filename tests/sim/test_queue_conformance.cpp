// QueueDisc conformance suite: for every discipline in the tree
// (DropTailQueue, qos::StrictPriorityQueue, qos::WfqQueue),
// dequeue_burst must be observationally identical to repeated
// dequeue() under the same caps — including with enqueues interleaved
// between bursts and byte-capacity drops — and requeue_front must
// restore the exact future the queue would have had if the requeued
// suffix had never been popped (for WFQ that includes the DRR deficits
// and round-robin cursor).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "qos/scheduler.hpp"
#include "sim/queue.hpp"

namespace nn::sim {
namespace {

constexpr net::Dscp kDscps[] = {
    net::Dscp::kBestEffort, net::Dscp::kAf11,
    net::Dscp::kAf21,       net::Dscp::kAf31,
    net::Dscp::kAf41,       net::Dscp::kExpeditedForwarding,
};

net::Packet make_pkt(std::uint32_t tag, std::size_t payload, net::Dscp dscp) {
  // The tag rides in the payload so byte-compare failures identify the
  // exact packet that diverged.
  std::vector<std::uint8_t> body(payload, 0);
  for (std::size_t i = 0; i < body.size() && i < 4; ++i) {
    body[i] = static_cast<std::uint8_t>(tag >> (8 * i));
  }
  return net::make_udp_packet(net::Ipv4Addr(1, 1, 1, 1),
                              net::Ipv4Addr(2, 2, 2, 2), 7, 9, body, dscp);
}

struct QueueParam {
  std::string name;
  std::function<std::unique_ptr<QueueDisc>()> make;
};

class QueueConformance : public ::testing::TestWithParam<QueueParam> {};

/// Pops from `q` with plain dequeue() using dequeue_burst's stop rule.
std::vector<net::Packet> reference_burst(QueueDisc& q, std::size_t max_packets,
                                         std::size_t max_bytes) {
  std::vector<net::Packet> out;
  std::size_t taken = 0;
  while (out.size() < max_packets && taken < max_bytes) {
    auto pkt = q.dequeue();
    if (!pkt.has_value()) break;
    taken += pkt->size();
    out.push_back(std::move(*pkt));
  }
  return out;
}

void expect_same_packets(const std::vector<net::Packet>& a,
                         const std::vector<net::Packet>& b,
                         const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bytes, b[i].bytes) << where << " packet " << i;
  }
}

TEST_P(QueueConformance, BurstEqualsRepeatedDequeueUnderInterleaving) {
  auto burst_q = GetParam().make();
  auto ref_q = GetParam().make();

  std::mt19937 rng(0xC04F);
  std::uniform_int_distribution<std::size_t> payload(0, 1472);
  std::uniform_int_distribution<std::size_t> burst_len(2, 40);
  std::uniform_int_distribution<int> coin(0, 99);
  std::uint32_t tag = 0;

  for (int round = 0; round < 400; ++round) {
    // A gust of enqueues, identical on both queues; capacity rejects
    // must agree packet-for-packet.
    const int gust = coin(rng) % 12;
    for (int g = 0; g < gust; ++g) {
      const std::size_t size = payload(rng);
      const net::Dscp dscp = kDscps[tag % std::size(kDscps)];
      net::Packet pkt = make_pkt(tag, size, dscp);
      net::Packet twin{pkt};
      ++tag;
      const bool accepted = burst_q->enqueue(std::move(pkt));
      const bool ref_accepted = ref_q->enqueue(std::move(twin));
      ASSERT_EQ(accepted, ref_accepted) << "round " << round;
    }
    // Then a burst with randomized caps, byte cap sometimes binding.
    const std::size_t max_packets = burst_len(rng);
    const std::size_t max_bytes =
        coin(rng) < 50 ? SIZE_MAX : (payload(rng) + 1) * 3;
    std::vector<net::Packet> got;
    burst_q->dequeue_burst(max_packets, max_bytes, got);
    const auto want = reference_burst(*ref_q, max_packets, max_bytes);
    expect_same_packets(got, want, "round " + std::to_string(round));
    ASSERT_EQ(burst_q->packet_count(), ref_q->packet_count());
    ASSERT_EQ(burst_q->byte_count(), ref_q->byte_count());
    ASSERT_TRUE(burst_q->drop_stats() == ref_q->drop_stats())
        << "round " << round;
  }
}

TEST_P(QueueConformance, RequeueRestoresTheExactFuture) {
  std::mt19937 rng(0x5EED);
  std::uniform_int_distribution<std::size_t> payload(0, 600);
  std::uniform_int_distribution<std::size_t> pick(0, 30);

  for (int round = 0; round < 200; ++round) {
    auto q = GetParam().make();
    auto ref = GetParam().make();
    const std::size_t fill = 5 + pick(rng);
    for (std::size_t i = 0; i < fill; ++i) {
      const std::size_t size = payload(rng);
      const net::Dscp dscp = kDscps[(i * 7 + static_cast<std::size_t>(round)) %
                                    std::size(kDscps)];
      net::Packet pkt =
          make_pkt(static_cast<std::uint32_t>(i), size, dscp);
      net::Packet twin{pkt};
      const bool a = q->enqueue(std::move(pkt));
      const bool b = ref->enqueue(std::move(twin));
      ASSERT_EQ(a, b);
    }

    // Burst k packets, hand a suffix of s back, then drain both queues
    // dry. q's total output must equal ref's: burst prefix, then
    // everything else in the order the untouched ref queue yields it.
    std::vector<net::Packet> burst;
    const std::size_t k = 1 + pick(rng) % fill;
    q->dequeue_burst(k, SIZE_MAX, burst);
    const std::size_t popped = burst.size();
    const std::size_t s = popped == 0 ? 0 : pick(rng) % (popped + 1);

    std::vector<net::Packet> q_order;
    for (std::size_t i = 0; i + s < popped; ++i) {
      q_order.push_back(std::move(burst[i]));
    }
    std::vector<net::Packet> suffix;
    for (std::size_t i = popped - s; i < popped; ++i) {
      suffix.push_back(std::move(burst[i]));
    }
    q->requeue_front(std::move(suffix));
    while (auto pkt = q->dequeue()) q_order.push_back(std::move(*pkt));

    std::vector<net::Packet> ref_order;
    for (std::size_t i = 0; i + s < popped; ++i) {
      ref_order.push_back(std::move(*ref->dequeue()));
    }
    while (auto pkt = ref->dequeue()) ref_order.push_back(std::move(*pkt));

    expect_same_packets(q_order, ref_order, "round " + std::to_string(round));
    EXPECT_EQ(q->packet_count(), 0u);
    EXPECT_EQ(q->byte_count(), 0u);
  }
}

TEST_P(QueueConformance, BurstEdgeCaps) {
  auto q = GetParam().make();
  std::vector<net::Packet> out;

  // Zero caps take nothing.
  ASSERT_TRUE(q->enqueue(make_pkt(1, 100, net::Dscp::kBestEffort)));
  EXPECT_EQ(q->dequeue_burst(0, SIZE_MAX, out), 0u);
  EXPECT_EQ(q->dequeue_burst(10, 0, out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(q->packet_count(), 1u);

  // The packet that crosses max_bytes is included (caps are "stop
  // after", not "fit under"), matching the reference stop rule.
  ASSERT_TRUE(q->enqueue(make_pkt(2, 100, net::Dscp::kBestEffort)));
  const std::size_t first = q->byte_count() / 2;
  EXPECT_EQ(q->dequeue_burst(10, first + 1, out), 2u);
  EXPECT_EQ(q->packet_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, QueueConformance,
    ::testing::Values(
        QueueParam{"DropTail",
                   [] { return std::make_unique<DropTailQueue>(64 * 1024); }},
        QueueParam{"DropTailTight",
                   [] { return std::make_unique<DropTailQueue>(4000); }},
        QueueParam{"StrictPriority",
                   [] {
                     return std::make_unique<qos::StrictPriorityQueue>(8000);
                   }},
        QueueParam{"Wfq",
                   [] {
                     return std::make_unique<qos::WfqQueue>(
                         std::vector<std::uint32_t>{4, 2, 1}, 8000);
                   }}),
    [](const ::testing::TestParamInfo<QueueParam>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// DropTailQueue reject-path exactness (the enqueue byte-accounting fix):
// a rejected packet must leave occupancy untouched and be tallied
// exactly in drop_stats, and an unbounded queue must never reject even
// when `bytes + size` would overflow the naive comparison.

TEST(DropTailQueueStats, RejectedPacketIsCountedExactly) {
  DropTailQueue q(100);
  net::Packet fits = make_pkt(1, 50, net::Dscp::kBestEffort);    // 78 bytes
  net::Packet reject = make_pkt(2, 72, net::Dscp::kBestEffort);  // 100 bytes
  const std::size_t reject_size = reject.size();
  ASSERT_TRUE(q.enqueue(std::move(fits)));
  const std::size_t occupancy = q.byte_count();
  ASSERT_FALSE(q.enqueue(std::move(reject)));
  EXPECT_EQ(q.byte_count(), occupancy);
  EXPECT_EQ(q.packet_count(), 1u);
  EXPECT_EQ(q.drop_stats().packets, 1u);
  EXPECT_EQ(q.drop_stats().bytes, reject_size);
}

TEST(DropTailQueueStats, UnboundedCapacityNeverRejects) {
  DropTailQueue q(SIZE_MAX);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(q.enqueue(make_pkt(static_cast<std::uint32_t>(i), 1400,
                                   net::Dscp::kBestEffort)));
  }
  EXPECT_EQ(q.drop_stats().packets, 0u);
}

TEST(DropTailQueueStats, PacketLargerThanCapacityRejectsCleanly) {
  DropTailQueue q(10);
  net::Packet big = make_pkt(1, 100, net::Dscp::kBestEffort);
  const std::size_t size = big.size();
  EXPECT_FALSE(q.enqueue(std::move(big)));
  EXPECT_EQ(q.byte_count(), 0u);
  EXPECT_EQ(q.drop_stats().packets, 1u);
  EXPECT_EQ(q.drop_stats().bytes, size);
}

}  // namespace
}  // namespace nn::sim
