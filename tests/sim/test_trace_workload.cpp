// Trace-driven workload tests: IMIX generator statistics and
// determinism, pcap-to-trace conversion, engine replay through
// TraceWorkload, shard-dispatch spread under a realistic mix, and the
// 1-vs-4-shard byte-identity of replaying the committed fixture (the
// unit-level twin of examples/trace_replay).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/replay.hpp"
#include "core/sharded_box.hpp"
#include "net/pcap.hpp"
#include "sim/trace_workload.hpp"
#include "sim/workload.hpp"

namespace nn::sim {
namespace {

TEST(ImixTrace, ClassicRatiosAndDeterminism) {
  ImixConfig cfg;
  cfg.flows = 16;
  cfg.packets_per_second = 20000;
  cfg.duration = kSecond;
  cfg.seed = 7;
  const auto trace = imix_trace(cfg);
  ASSERT_NEAR(static_cast<double>(trace.size()), 20000, 2);

  std::map<std::uint32_t, std::size_t> by_size;
  std::set<std::uint16_t> flows_seen;
  for (const auto& p : trace) {
    ++by_size[p.wire_size];
    flows_seen.insert(p.flow_id);
  }
  ASSERT_EQ(by_size.size(), 3u);
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(static_cast<double>(by_size[40]) / n, 7.0 / 12.0, 0.02);
  EXPECT_NEAR(static_cast<double>(by_size[576]) / n, 4.0 / 12.0, 0.02);
  EXPECT_NEAR(static_cast<double>(by_size[1500]) / n, 1.0 / 12.0, 0.02);
  EXPECT_EQ(flows_seen.size(), 16u);  // every session participates

  // Same seed, same trace; different seed, different trace.
  EXPECT_EQ(imix_trace(cfg), trace);
  cfg.seed = 8;
  EXPECT_NE(imix_trace(cfg), trace);
}

TEST(ImixTrace, TimestampsCoverTheDurationInOrder) {
  ImixConfig cfg;
  cfg.packets_per_second = 1000;
  cfg.duration = 100 * kMillisecond;
  cfg.poisson = true;
  cfg.seed = 3;
  const auto trace = imix_trace(cfg);
  ASSERT_FALSE(trace.empty());
  SimTime prev = 0;
  for (const auto& p : trace) {
    EXPECT_GE(p.at, prev);
    EXPECT_LT(p.at, cfg.duration);
    prev = p.at;
  }
  EXPECT_GT(trace.back().at, cfg.duration / 2);
}

TEST(ImixTrace, DegenerateConfigsProduceEmptyTraces) {
  ImixConfig cfg;
  cfg.packets_per_second = 0;
  EXPECT_TRUE(imix_trace(cfg).empty());
  cfg.packets_per_second = 100;
  cfg.flows = 0;
  EXPECT_TRUE(imix_trace(cfg).empty());
  cfg.flows = 1;
  cfg.duration = 0;
  EXPECT_TRUE(imix_trace(cfg).empty());
}

TEST(ImixTrace, CustomDistribution) {
  ImixConfig cfg;
  cfg.classes = {{100, 1.0}, {200, 1.0}};
  cfg.packets_per_second = 10000;
  cfg.seed = 9;
  const auto trace = imix_trace(cfg);
  std::size_t small = 0;
  for (const auto& p : trace) {
    ASSERT_TRUE(p.wire_size == 100 || p.wire_size == 200);
    if (p.wire_size == 100) ++small;
  }
  EXPECT_NEAR(static_cast<double>(small) / static_cast<double>(trace.size()),
              0.5, 0.03);
}

net::PcapFile capture_of_two_flows() {
  net::PcapFile file;
  file.link_type = net::kLinkTypeRawIp;
  const net::Ipv4Addr a(10, 1, 0, 2), b(10, 1, 0, 3), d(20, 0, 0, 10);
  std::int64_t ts = 999'000'000'000LL;
  for (int i = 0; i < 6; ++i) {
    net::PcapRecord rec;
    rec.ts_ns = ts;
    ts += 1'000'000;
    auto pkt = net::make_udp_packet(i % 2 == 0 ? a : b, d, 5060, 5060,
                                    std::vector<std::uint8_t>(100, 1));
    rec.orig_len = static_cast<std::uint32_t>(pkt.size());
    rec.bytes = std::move(pkt.bytes);
    file.records.push_back(std::move(rec));
  }
  return file;
}

TEST(TraceFromPcap, FlowsAreFiveTuplesTimesAreRelative) {
  const auto trace = trace_from_pcap(capture_of_two_flows());
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0].at, 0);
  EXPECT_EQ(trace[1].at, kMillisecond);
  EXPECT_EQ(trace[5].at, 5 * kMillisecond);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].flow_id, i % 2);  // alternating sources
    EXPECT_EQ(trace[i].wire_size, 128u);
  }
  EXPECT_EQ(trace_wire_bytes(trace), 6u * 128u);
}

TEST(TraceFromPcap, EthernetFramingIsStrippedFromWireSize) {
  // The same traffic captured at L2 must replay with the same IP-level
  // wire sizes as a raw-IP capture.
  net::PcapFile eth = capture_of_two_flows();
  eth.link_type = net::kLinkTypeEthernet;
  for (auto& rec : eth.records) {
    std::vector<std::uint8_t> framed(14, 0x00);
    framed[12] = 0x08;
    framed[13] = 0x00;
    framed.insert(framed.end(), rec.bytes.begin(), rec.bytes.end());
    rec.bytes = std::move(framed);
    rec.orig_len += 14;
  }
  const auto trace = trace_from_pcap(eth);
  ASSERT_EQ(trace.size(), 6u);
  for (const auto& p : trace) EXPECT_EQ(p.wire_size, 128u);
}

TEST(TraceFromPcap, NonIpAndEmptyRecordsAreSkipped) {
  net::PcapFile file = capture_of_two_flows();
  net::PcapRecord junk;
  junk.ts_ns = 0;
  junk.orig_len = 60;
  junk.bytes.assign(60, 0x66);  // version nibble 6: not IPv4
  file.records.insert(file.records.begin(), junk);
  net::PcapRecord empty;
  empty.orig_len = 1500;
  file.records.push_back(empty);
  EXPECT_EQ(trace_from_pcap(file).size(), 6u);
}

TEST(TraceWorkload, ReplaysSizesFlowsAndTimingThroughTheEngine) {
  Engine engine;
  std::vector<TracePacket> trace = {
      {0, 0, 576},
      {2 * kMillisecond, 1, 1500},
      {2 * kMillisecond, 0, 40},  // same-instant with the previous one
      {5 * kMillisecond, 1, 576},
  };
  TraceWorkload::Config cfg;
  cfg.start = kSecond;
  cfg.wire_overhead = 36;

  FlowSink sink;
  std::vector<std::pair<SimTime, std::size_t>> seen;
  TraceWorkload wl(engine, trace, cfg,
                   [&](std::uint16_t, std::vector<std::uint8_t>&& payload,
                       SimTime at) {
                     seen.emplace_back(at, payload.size());
                     sink.on_payload(payload, at);
                   });
  wl.start();
  wl.start();  // idempotent
  engine.run();

  ASSERT_EQ(wl.sent(), 4u);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (std::pair<SimTime, std::size_t>{kSecond, 540}));
  EXPECT_EQ(seen[1].first, kSecond + 2 * kMillisecond);
  EXPECT_EQ(seen[1].second, 1464u);
  // 40-wire record clamps to the AppHeader minimum.
  EXPECT_EQ(seen[2], (std::pair<SimTime, std::size_t>{
                         kSecond + 2 * kMillisecond, AppHeader::kSize}));
  EXPECT_EQ(seen[3].first, kSecond + 5 * kMillisecond);

  // AppHeader stamping: per-flow sequence numbers, zero loss at the sink.
  EXPECT_EQ(sink.flow(0).received, 2u);
  EXPECT_EQ(sink.flow(1).received, 2u);
  EXPECT_EQ(sink.flow(0).loss_rate(), 0.0);
  EXPECT_EQ(sink.flow(1).loss_rate(), 0.0);
  EXPECT_EQ(sink.flow(0).bytes, 540u + AppHeader::kSize);
}

TEST(TraceWorkload, TimeScaleStretchesTheSchedule) {
  Engine engine;
  std::vector<TracePacket> trace = {{10 * kMillisecond, 0, 576}};
  TraceWorkload::Config cfg;
  cfg.time_scale = 3.0;
  std::vector<SimTime> at;
  TraceWorkload wl(engine, trace, cfg,
                   [&](std::uint16_t, std::vector<std::uint8_t>&&,
                       SimTime when) { at.push_back(when); });
  wl.start();
  engine.run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 30 * kMillisecond);
}

// --- realistic mixes against the sharded box -------------------------

const net::Ipv4Addr kAnycast(200, 0, 0, 1);

core::NeutralizerConfig service_config() {
  core::NeutralizerConfig cfg;
  cfg.anycast_addr = kAnycast;
  cfg.customer_space = net::Ipv4Prefix::from_string("20.0.0.0/16");
  return cfg;
}

crypto::AesKey root_key() {
  crypto::AesKey k;
  k.fill(0xD0);
  return k;
}

/// Neutralized DataForward packets for a trace, one session per flow —
/// the same shared mapping examples/trace_replay uses
/// (core::synth_forward_packet), so drift is impossible by
/// construction.
std::vector<net::Packet> neutralized_replay(
    const std::vector<TracePacket>& trace) {
  const core::MasterKeySchedule sched(root_key());
  std::vector<net::Packet> out;
  for (const auto& rec : trace) {
    out.push_back(core::synth_forward_packet(sched, kAnycast,
                                             net::Ipv4Addr(20, 0, 0, 10),
                                             rec.flow_id, rec.wire_size));
  }
  return out;
}

TEST(TraceWorkload, ImixSessionsSpreadAcrossShards) {
  // The point of per-flow interleaving: a realistic many-session mix
  // must load every shard, or the cluster scaling claim is hollow.
  ImixConfig cfg;
  cfg.flows = 64;
  cfg.packets_per_second = 2000;
  cfg.duration = kSecond;
  cfg.seed = 0x5EED;
  const auto packets = neutralized_replay(imix_trace(cfg));
  std::size_t loaded[4] = {0, 0, 0, 0};
  for (const auto& pkt : packets) {
    ++loaded[core::shard_for_packet(pkt, 4)];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(loaded[s], packets.size() / 16) << "shard " << s << " starved";
  }
}

TEST(TraceWorkload, FixtureReplayIsShardCountInvariant) {
#ifndef NN_PCAP_FIXTURE
  GTEST_SKIP() << "fixture path not configured";
#else
  // The acceptance property behind examples/trace_replay: replaying the
  // committed capture through 1 and 4 shards yields byte-identical
  // aggregate output and stats.
  const auto capture = net::read_pcap_file(NN_PCAP_FIXTURE);
  const auto trace = trace_from_pcap(capture);
  ASSERT_FALSE(trace.empty());
  const auto replay = neutralized_replay(trace);

  std::vector<net::Packet> outs[2];
  core::ShardedNeutralizer one(1, service_config(), root_key());
  core::ShardedNeutralizer four(4, service_config(), root_key());
  std::size_t i = 0;
  for (auto* cluster : {&one, &four}) {
    for (const auto& pkt : replay) cluster->enqueue(net::Packet(pkt));
    for (std::size_t s = 0; s < cluster->shard_count(); ++s) {
      cluster->drain_shard(s, 0, outs[i]);
    }
    ++i;
  }
  ASSERT_EQ(outs[0].size(), replay.size());  // all fixture flows forward
  const auto by_bytes = [](const net::Packet& a, const net::Packet& b) {
    return a.bytes < b.bytes;
  };
  std::sort(outs[0].begin(), outs[0].end(), by_bytes);
  std::sort(outs[1].begin(), outs[1].end(), by_bytes);
  EXPECT_EQ(outs[0], outs[1]);
  EXPECT_EQ(one.aggregate_stats(), four.aggregate_stats());
#endif
}

}  // namespace
}  // namespace nn::sim
