// Burst-mode Link tests: scripted timing exactness, a randomized
// single-link differential against per-packet mode (the baseline burst
// coalescing must reproduce byte-for-byte, stamp-for-stamp, drop-for-
// drop), and the engine-event economics the mode exists for.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "qos/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/queue.hpp"

namespace nn::sim {
namespace {

net::Packet make_pkt(std::uint32_t tag, std::size_t payload,
                     net::Dscp dscp = net::Dscp::kBestEffort) {
  std::vector<std::uint8_t> body(payload, 0);
  for (std::size_t i = 0; i < body.size() && i < 4; ++i) {
    body[i] = static_cast<std::uint8_t>(tag >> (8 * i));
  }
  return net::make_udp_packet(net::Ipv4Addr(1, 1, 1, 1),
                              net::Ipv4Addr(2, 2, 2, 2), 7, 9, body, dscp);
}

struct Send {
  SimTime at;
  net::Packet pkt;
};

struct LoggedDelivery {
  SimTime at;
  std::vector<std::uint8_t> bytes;

  friend bool operator==(const LoggedDelivery&,
                         const LoggedDelivery&) = default;
};

struct RunResult {
  std::vector<LoggedDelivery> deliveries;
  LinkStats stats;
  QueueDropStats queue_drops;
  std::size_t executed = 0;
};

/// Replays `sends` through one link and logs every delivery with its
/// arrival stamp. Per-packet mode logs at the delivery event's own
/// time; burst mode logs the per-packet stamps a single train event
/// carries — the differential asserts they are the same thing.
RunResult run_link(const LinkConfig& cfg, const std::vector<Send>& sends) {
  Engine e;
  RunResult result;
  Link link(e, cfg, [&](net::Packet&& pkt) {
    result.deliveries.push_back({e.now(), std::move(pkt.bytes)});
  });
  link.set_burst_deliver([&](std::span<Delivery> train) {
    for (Delivery& d : train) {
      result.deliveries.push_back({d.at, std::move(d.pkt.bytes)});
    }
  });
  for (const Send& s : sends) {
    e.schedule_at(s.at, [&link, p = s.pkt]() mutable {
      link.send(std::move(p));
    });
  }
  e.run();
  result.stats = link.stats();
  result.queue_drops = link.queue().drop_stats();
  result.executed = e.executed();
  return result;
}

void expect_equivalent(const RunResult& classic, const RunResult& burst,
                       const std::string& where) {
  ASSERT_EQ(classic.deliveries.size(), burst.deliveries.size()) << where;
  for (std::size_t i = 0; i < classic.deliveries.size(); ++i) {
    EXPECT_EQ(classic.deliveries[i].at, burst.deliveries[i].at)
        << where << " delivery " << i;
    EXPECT_EQ(classic.deliveries[i].bytes, burst.deliveries[i].bytes)
        << where << " delivery " << i;
  }
  EXPECT_EQ(classic.stats.tx_packets, burst.stats.tx_packets) << where;
  EXPECT_EQ(classic.stats.tx_bytes, burst.stats.tx_bytes) << where;
  EXPECT_EQ(classic.stats.dropped_packets, burst.stats.dropped_packets)
      << where;
  EXPECT_EQ(classic.stats.dropped_bytes, burst.stats.dropped_bytes) << where;
  EXPECT_TRUE(classic.queue_drops == burst.queue_drops) << where;
}

TEST(LinkBurst, TrainKeepsExactPerPacketStamps) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;  // 1 byte per microsecond
  cfg.propagation = 5 * kMillisecond;
  std::vector<Send> sends;
  for (std::uint32_t i = 0; i < 3; ++i) {
    sends.push_back({0, make_pkt(i, 72)});  // 100 bytes each
  }
  const auto classic = run_link(cfg, sends);
  cfg.burst_packets = 64;
  const auto burst = run_link(cfg, sends);

  // Serialization back-to-back: 100/200/300 us, plus 5 ms propagation.
  ASSERT_EQ(burst.deliveries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(burst.deliveries[i].at,
              static_cast<SimTime>(i + 1) * 100 * kMicrosecond +
                  5 * kMillisecond);
  }
  expect_equivalent(classic, burst, "three back-to-back");
  // The queued pair coalesces: one event delivers the two-packet train.
  EXPECT_EQ(classic.stats.delivery_events, 3u);
  EXPECT_EQ(burst.stats.delivery_events, 2u);
  EXPECT_EQ(burst.stats.max_train, 2u);
}

TEST(LinkBurst, BurstByteCapSplitsTrains) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.propagation = 0;
  cfg.burst_packets = 64;
  cfg.burst_bytes = 150;  // every 100-byte packet crosses the cap alone
  std::vector<Send> sends;
  for (std::uint32_t i = 0; i < 6; ++i) sends.push_back({0, make_pkt(i, 72)});
  const auto burst = run_link(cfg, sends);
  ASSERT_EQ(burst.deliveries.size(), 6u);
  // The cap admits the crossing packet, so trains carry at most 2.
  EXPECT_LE(burst.stats.max_train, 2u);
  LinkConfig classic_cfg = cfg;
  classic_cfg.burst_packets = 1;
  classic_cfg.burst_bytes = SIZE_MAX;
  expect_equivalent(run_link(classic_cfg, sends), burst, "byte-capped");
}

TEST(LinkBurst, RandomizedDifferentialAcrossDisciplines) {
  struct Scenario {
    std::string name;
    QueueFactory factory;  // nullptr = default drop-tail
    std::size_t queue_bytes;
  };
  const Scenario scenarios[] = {
      {"droptail-roomy", nullptr, 256 * 1024},
      {"droptail-tight", nullptr, 3000},
      {"prio",
       [] { return std::make_unique<qos::StrictPriorityQueue>(4000); }, 0},
      {"wfq",
       [] {
         return std::make_unique<qos::WfqQueue>(
             std::vector<std::uint32_t>{4, 2, 1}, 4000);
       },
       0},
  };
  constexpr net::Dscp kDscps[] = {net::Dscp::kBestEffort, net::Dscp::kAf21,
                                  net::Dscp::kExpeditedForwarding};

  std::mt19937 rng(0xB0257);
  std::uniform_int_distribution<std::size_t> payload(0, 1472);
  std::uniform_int_distribution<SimTime> gap(0, 60 * kMicrosecond);
  std::uniform_int_distribution<int> coin(0, 99);

  for (const Scenario& sc : scenarios) {
    for (const double bps : {8e6, 1e9}) {
      for (const SimTime prop : {SimTime{0}, 2 * kMillisecond}) {
        std::vector<Send> sends;
        SimTime t = 0;
        for (std::uint32_t i = 0; i < 400; ++i) {
          // Half the arrivals ride the previous instant (back-to-back
          // trains); the rest open random gaps, some of which land
          // mid-train and force aborts.
          if (coin(rng) >= 50) t += gap(rng);
          sends.push_back(
              {t, make_pkt(i, payload(rng), kDscps[i % std::size(kDscps)])});
        }
        LinkConfig cfg;
        cfg.bandwidth_bps = bps;
        cfg.propagation = prop;
        cfg.queue_factory = sc.factory;
        if (sc.queue_bytes > 0) cfg.queue_bytes = sc.queue_bytes;
        const auto classic = run_link(cfg, sends);
        for (const std::size_t window : {2, 8, 64}) {
          LinkConfig bcfg = cfg;
          bcfg.burst_packets = window;
          const auto burst = run_link(bcfg, sends);
          expect_equivalent(classic, burst,
                            sc.name + "/bps=" + std::to_string(bps) +
                                "/prop=" + std::to_string(prop) +
                                "/window=" + std::to_string(window));
        }
      }
    }
  }
}

TEST(LinkBurst, CongestedLinkAmortizesEngineEvents) {
  // A saturating same-instant blast: classic mode spends 2 events per
  // packet, burst mode roughly 2 per train.
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.propagation = kMillisecond;
  cfg.queue_bytes = 10 * 1024 * 1024;
  std::vector<Send> sends;
  for (std::uint32_t i = 0; i < 512; ++i) sends.push_back({0, make_pkt(i, 72)});
  const auto classic = run_link(cfg, sends);
  cfg.burst_packets = 64;
  const auto burst = run_link(cfg, sends);
  expect_equivalent(classic, burst, "blast");

  const std::size_t classic_link_events = classic.executed - sends.size();
  const std::size_t burst_link_events = burst.executed - sends.size();
  EXPECT_EQ(classic_link_events, 2 * sends.size());
  EXPECT_LT(burst_link_events, classic_link_events / 8);
}

TEST(LinkBurst, UncongestedLinkCostsOneEventPerPacket) {
  // Spaced arrivals never queue, so the delivery event doubles as the
  // free event: exactly one engine event per packet.
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.propagation = kMillisecond;
  cfg.burst_packets = 64;
  std::vector<Send> sends;
  for (std::uint32_t i = 0; i < 100; ++i) {
    sends.push_back({static_cast<SimTime>(i) * 10 * kMillisecond,
                     make_pkt(i, 72)});
  }
  const auto burst = run_link(cfg, sends);
  EXPECT_EQ(burst.deliveries.size(), 100u);
  EXPECT_EQ(burst.executed - sends.size(), sends.size());
  EXPECT_EQ(burst.stats.trains, 100u);
}

}  // namespace
}  // namespace nn::sim
